// Command sipserver runs the untrusted "cloud" prover as a TCP service:
// a dataset engine that ingests uploaded streams once into maintained
// prover state and answers any number of verified queries over it (see
// cmd/sipclient for the data-owner side).
//
//	sipserver -listen :7408
//	sipserver -listen :7408 -idle-timeout 2m   # drop stalled clients
//	sipserver -listen :7408 -cheat-drop 1      # dishonest cloud: drops the
//	                                           # last update before proving
//
// Clients either keep a private per-connection dataset (the v1 flow) or
// open named datasets shared across connections (sipclient -dataset):
// many owners can ingest into and query one dataset concurrently, and
// the Nth query costs no stream replay.
//
// The -cheat-drop flag exists to demonstrate, end to end over a real
// socket, that a cheating cloud is caught: every v1 query against a
// doctored store is rejected.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7408", "address to listen on")
	cheatDrop := flag.Int("cheat-drop", 0, "misbehave: drop this many trailing updates before proving (v1 connections)")
	workers := flag.Int("workers", runtime.NumCPU(), "prover worker-pool size (1 = serial)")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "disconnect clients idle for this long (0 = never)")
	maxLogu := flag.Int("max-logu", 26, "largest log2 universe a client may open")
	maxDatasets := flag.Int("max-datasets", wire.DefaultMaxDatasets, "cap on named datasets (each pins O(u) memory)")
	flag.Parse()
	if *maxLogu < 1 || *maxLogu > 61 {
		log.Fatalf("-max-logu %d outside the supported range [1,61]", *maxLogu)
	}

	f := field.Mersenne()
	eng := engine.New(f, *workers)
	eng.SetMaxDatasets(*maxDatasets)
	srv := &wire.Server{
		F:           f,
		Workers:     *workers,
		Engine:      eng,
		IdleTimeout: *idle,
		MaxUniverse: uint64(1) << *maxLogu,
	}
	if *cheatDrop > 0 {
		n := *cheatDrop
		srv.Corrupt = func(ups []stream.Update) []stream.Update {
			if len(ups) < n {
				return nil
			}
			return ups[:len(ups)-n]
		}
		log.Printf("running DISHONESTLY: dropping %d trailing updates before proving", n)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("sipserver (p = 2^61-1) listening on %s; datasets persist across connections", ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, wire.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}

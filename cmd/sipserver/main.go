// Command sipserver runs the untrusted "cloud" prover as a TCP service:
// it ingests uploaded streams and answers verified queries (see
// cmd/sipclient for the data-owner side).
//
//	sipserver -listen :7408
//	sipserver -listen :7408 -cheat-drop 1   # dishonest cloud: drops the
//	                                        # last update before proving
//
// The -cheat-drop flag exists to demonstrate, end to end over a real
// socket, that a cheating cloud is caught: every client query against a
// doctored store is rejected.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"runtime"

	"repro/internal/field"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7408", "address to listen on")
	cheatDrop := flag.Int("cheat-drop", 0, "misbehave: drop this many trailing updates before proving")
	workers := flag.Int("workers", runtime.NumCPU(), "prover worker-pool size (1 = serial)")
	flag.Parse()

	srv := &wire.Server{F: field.Mersenne(), Workers: *workers}
	if *cheatDrop > 0 {
		n := *cheatDrop
		srv.Corrupt = func(ups []stream.Update) []stream.Update {
			if len(ups) < n {
				return nil
			}
			return ups[:len(ups)-n]
		}
		log.Printf("running DISHONESTLY: dropping %d trailing updates before proving", n)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("sipserver (p = 2^61-1) listening on %s", ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, wire.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}

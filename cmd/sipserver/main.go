// Command sipserver runs the untrusted "cloud" prover as a TCP service:
// a dataset engine that ingests uploaded streams once into maintained
// prover state and answers any number of verified queries over it (see
// cmd/sipclient for the data-owner side).
//
//	sipserver -listen :7408
//	sipserver -listen :7408 -idle-timeout 2m   # drop stalled clients
//	sipserver -listen :7408 -data-dir /var/lib/sip \
//	          -mem-budget 1073741824 -checkpoint-interval 30s
//	sipserver -listen :7408 -cheat-drop 1      # dishonest cloud: removes an
//	                                           # item from its counts before
//	                                           # proving
//
// Clients either keep a private per-connection dataset (the v1 flow) or
// open named datasets shared across connections (sipclient -dataset):
// many owners can ingest into and query one dataset concurrently, and
// the Nth query costs no stream replay. That includes CIRCUIT queries
// (sipclient -circuit): GKR provers over named circuit families build
// straight from the maintained counts, parallelized by -workers.
//
// With -data-dir set, named datasets are durable: dirty datasets
// checkpoint in the background every -checkpoint-interval (crash loss is
// bounded by that interval), a restart recovers every checkpointed
// dataset with no re-ingestion, and -mem-budget caps resident table
// memory across all datasets — the least-recently-used ones spill to
// disk and rehydrate transparently when queried. Checkpoint I/O runs
// outside the engine lock (per-dataset residency latch), so concurrent
// evictions and rehydrations of different datasets overlap.
//
// The budget governs v1 private datasets too: every hello is charged
// for its O(u) tables (refused with a budget error when the server is
// full) and released when the connection ends. -max-private remains as
// a count backstop for servers running without -mem-budget.
//
// The -cheat-drop flag exists to demonstrate, end to end over a real
// socket, that a cheating cloud is caught: every v1 query against a
// doctored store is rejected.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7408", "address to listen on")
	cheatDrop := flag.Int("cheat-drop", 0, "misbehave: remove this many items from the maintained counts before proving (v1 connections)")
	workers := flag.Int("workers", runtime.NumCPU(), "prover worker-pool size (1 = serial)")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "disconnect clients idle for this long (0 = never)")
	maxLogu := flag.Int("max-logu", 26, "largest log2 universe a client may open")
	maxDatasets := flag.Int("max-datasets", wire.DefaultMaxDatasets, "cap on named datasets")
	maxPrivate := flag.Int("max-private", wire.DefaultMaxPrivateDatasets, "count backstop on concurrent v1 private datasets (-1 = no cap; the byte-level defense is -mem-budget)")
	maxQueries := flag.Int("max-queries", wire.DefaultMaxConcurrentQueries, "multiplexed query conversations in flight per connection (-1 = no cap); excess channel opens are refused with a budget frame")
	proofBudget := flag.Int64("proof-cache-budget", wire.DefaultProofCacheBudget, "bytes of posted Fiat–Shamir proofs kept for PROOF requests (one proof per dataset-version and query, served to every verifier; negative = disabled)")
	dataDir := flag.String("data-dir", "", "checkpoint directory: enables eviction, durability, and restart recovery")
	memBudget := flag.Int64("mem-budget", 0, "aggregate resident dataset memory in bytes; LRU datasets evict to -data-dir (0 = unlimited)")
	ckptEvery := flag.Duration("checkpoint-interval", 30*time.Second, "background checkpoint interval for dirty datasets (needs -data-dir; 0 = only on eviction/shutdown)")
	flag.Parse()
	if *maxLogu < 1 || *maxLogu > 61 {
		log.Fatalf("-max-logu %d outside the supported range [1,61]", *maxLogu)
	}
	if *memBudget > 0 && *dataDir == "" {
		log.Printf("warning: -mem-budget without -data-dir is a hard admission cap (nothing can be evicted)")
	}

	f := field.Mersenne()
	eng := engine.New(f, *workers)
	eng.SetMaxDatasets(*maxDatasets)
	srv := &wire.Server{
		F:                    f,
		Workers:              *workers,
		Engine:               eng,
		IdleTimeout:          *idle,
		MaxUniverse:          uint64(1) << *maxLogu,
		MaxPrivateDatasets:   *maxPrivate,
		MaxConcurrentQueries: *maxQueries,
		MemBudget:            *memBudget,
		DataDir:              *dataDir,
		ProofCacheBudget:     *proofBudget,
	}
	if *dataDir != "" {
		srv.CheckpointEvery = *ckptEvery
		// Recover eagerly so the count is visible in the log; Serve's own
		// recovery scan is idempotent and will find nothing new. The
		// budget must be in force first — Recover loads datasets resident
		// only until it fills.
		if *memBudget > 0 {
			eng.SetBudget(*memBudget)
		}
		if err := eng.SetDataDir(*dataDir); err != nil {
			log.Fatalf("data dir: %v", err)
		}
		n, err := eng.Recover()
		switch {
		case errors.Is(err, engine.ErrPartialRecovery):
			// A damaged file must not take the healthy datasets down.
			log.Printf("warning: %v", err)
		case err != nil:
			log.Fatalf("recovering datasets: %v", err)
		}
		if n > 0 {
			log.Printf("recovered %d dataset(s) from %s: %v", n, *dataDir, eng.Names())
		}
	}
	if *cheatDrop > 0 {
		n := int64(*cheatDrop)
		srv.Corrupt = func(counts []int64) []int64 {
			// Remove n items: walk the counts from the top of the universe,
			// stepping each entry toward zero — the counts a cloud that
			// "lost" n updates would hold.
			left := n
			for i := len(counts) - 1; i >= 0 && left > 0; i-- {
				for counts[i] != 0 && left > 0 {
					if counts[i] > 0 {
						counts[i]--
					} else {
						counts[i]++
					}
					left--
				}
			}
			return counts
		}
		log.Printf("running DISHONESTLY: removing %d items from the maintained counts before proving", n)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	if *dataDir != "" {
		log.Printf("durable datasets in %s (budget %d bytes, checkpoint every %v)", *dataDir, *memBudget, *ckptEvery)
	}
	log.Printf("sipserver (p = 2^61-1) listening on %s; datasets persist across connections", ln.Addr())
	switch {
	case *proofBudget < 0:
		log.Printf("proof cache disabled: every PROOF request regenerates (concurrent requests still coalesce)")
	case *proofBudget == 0:
		log.Printf("proof cache: %d bytes for posted proofs (one per dataset-version and query)", int64(wire.DefaultProofCacheBudget))
	default:
		log.Printf("proof cache: %d bytes for posted proofs (one per dataset-version and query)", *proofBudget)
	}
	err = srv.Serve(ln)
	if cerr := srv.Close(); cerr != nil {
		log.Printf("shutdown: %v", cerr)
	}
	pc := srv.Stats().ProofCache
	log.Printf("proof cache: %d hits (%d coalesced), %d misses, %d evictions, %d proofs / %d bytes resident",
		pc.Hits, pc.Coalesced, pc.Misses, pc.Evictions, pc.Entries, pc.Bytes)
	// The engine is ours, not the server's: stop its checkpointer and
	// flush dirty datasets so shutdown is loss-free.
	if cerr := eng.Close(); cerr != nil {
		log.Printf("engine shutdown: %v", cerr)
	}
	if err != nil && !errors.Is(err, wire.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}

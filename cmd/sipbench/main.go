// Command sipbench regenerates the experimental series of Cormode, Thaler
// & Yi (VLDB 2011), §5 — one experiment per figure plus the in-text
// claims — printing rows that correspond to the paper's plots.
//
// Usage:
//
//	sipbench -experiment fig2a          # verifier stream time vs n
//	sipbench -experiment fig2b          # prover time vs u
//	sipbench -experiment fig2c          # space & communication vs u
//	sipbench -experiment fig3a          # SUB-VECTOR prover/verifier time
//	sipbench -experiment fig3b          # SUB-VECTOR space & communication
//	sipbench -experiment tamper         # §5 robustness: all tampering rejected
//	sipbench -experiment branching      # §3.1 footnote-1 ℓ/d ablation
//	sipbench -experiment gkr            # §3 remark: GKR vs native F2
//	sipbench -experiment freq           # §6.2 frequency-based functions
//	sipbench -experiment ipv6           # §5 closing extrapolation
//	sipbench -experiment mux            # multiplexed conversations: k overlapped
//	                                    # vs k serial on one connection
//	sipbench -experiment fanout         # proof-cache fan-out: k verifiers of one
//	                                    # query, cached replay vs interactive
//	sipbench -experiment shard          # shard scaling: concurrent queries over
//	                                    # S engine processes behind the router
//	sipbench -experiment all
//
// -maxlogu bounds the sweeps (default 20 multi-round, 16 one-round; the
// one-round prover is Θ(u^{3/2}) and dominates quickly, exactly as in
// Figure 2(b)).
//
// -workers sets the prover's worker-pool size (default: all cores; 1 runs
// the serial prover). Transcripts, space, and communication are identical
// for every value — only prover wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/gkrbench"
	"repro/internal/harness"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run (fig2a fig2b fig2c fig3a fig3b tamper branching gkr freq ipv6 mux fanout shard all)")
	maxLogU := flag.Int("maxlogu", 20, "largest log2(u) for multi-round sweeps")
	maxLogUOne := flag.Int("maxlogu1", 16, "largest log2(u) for one-round sweeps (prover is Θ(u^{3/2}))")
	span := flag.Uint64("span", 1000, "SUB-VECTOR query span (the paper uses 1000)")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", runtime.NumCPU(), "prover worker-pool size (1 = serial; transcripts are identical for every value)")
	maxK := flag.Int("maxk", 1000, "largest verifier count for the fanout experiment")
	flag.Parse()

	f := field.Mersenne()
	run := func(name string, fn func(field.Field) error) {
		switch *experiment {
		case name, "all":
			fmt.Printf("== %s ==\n", name)
			if err := fn(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}

	run("fig2a", func(f field.Field) error { return fig2a(f, *maxLogU, *maxLogUOne, *seed, *workers) })
	run("fig2b", func(f field.Field) error { return fig2b(f, *maxLogU, *maxLogUOne, *seed, *workers) })
	run("fig2c", func(f field.Field) error { return fig2c(f, *maxLogU, *maxLogUOne, *seed, *workers) })
	run("fig3a", func(f field.Field) error { return fig3(f, *maxLogU, *span, *seed, *workers, true) })
	run("fig3b", func(f field.Field) error { return fig3(f, *maxLogU, *span, *seed, *workers, false) })
	run("tamper", func(f field.Field) error { return tamper(f, *seed) })
	run("branching", func(f field.Field) error { return branching(f, *seed) })
	run("gkr", func(f field.Field) error { return gkr(f, *seed, *workers) })
	run("freq", func(f field.Field) error { return freq(f, *seed, *workers) })
	run("ipv6", func(f field.Field) error { return ipv6(f, *seed, *workers) })
	run("mux", func(f field.Field) error { return mux(f, *seed) })
	run("fanout", func(f field.Field) error { return fanout(f, *seed, *maxK) })
	run("shard", func(f field.Field) error { return shardScale(f, *seed) })
	run("splitshard", func(f field.Field) error { return splitShardScale(f, *seed) })
}

// shard: horizontal scaling through the router — D datasets pinned
// round-robin across S engine processes, each process capped at a
// memory budget that holds only two datasets' field tables. One engine
// under the working set thrashes its residency governor (every query
// round evicts and rehydrates); sharding scales the aggregate budget
// with S, so at S = 4 the whole working set is resident. The direct row
// is the same batch against one engine with no router, so the S = 1
// delta is the router's proxying overhead.
func shardScale(f field.Field, seed uint64) error {
	const logu = 16
	const nDatasets = 8
	const rounds = 3
	u := uint64(1) << logu
	cost, err := engine.TableCost(u)
	if err != nil {
		return err
	}
	budget := 2*cost + cost/2
	fmt.Printf("Shard scaling: %d datasets, %d rounds of one concurrent F2 query each, u = 2^%d, per-engine budget = 2 datasets\n", nDatasets, rounds, logu)

	dsName := func(i int) string { return fmt.Sprintf("ds-%d", i) }
	streams := make([][]stream.Update, nDatasets)
	for i := range streams {
		streams[i] = stream.UnitIncrements(u, int(2*u), field.NewSplitMix64(seed+uint64(i)))
	}
	newVerifier := func(i int) (*core.FkVerifier, error) {
		proto, err := core.NewSelfJoinSize(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(field.NewSplitMix64(seed + uint64(100+i)))
		if err := v.ObserveBatch(streams[i], runtime.NumCPU()); err != nil {
			return nil, err
		}
		return v, nil
	}

	// ingest loads every dataset through addr; queryAll runs one query
	// per dataset concurrently (each on its own connection — an OPEN pins
	// a connection to its dataset's shard) and returns the wall clock.
	ingest := func(addr string) error {
		for i := 0; i < nDatasets; i++ {
			cl, err := wire.Dial(addr)
			if err != nil {
				return err
			}
			if _, err := cl.OpenDataset(dsName(i), u); err == nil {
				_, err = cl.Ingest(streams[i])
			}
			cl.Close()
			if err != nil {
				return err
			}
		}
		return nil
	}
	queryAll := func(addr string) (time.Duration, error) {
		// Verifier sessions are single-conversation: one per (round, dataset),
		// all built (and fed the stream) before the clock starts.
		vs := make([][]*core.FkVerifier, rounds)
		cls := make([]*wire.Client, nDatasets)
		for round := range vs {
			vs[round] = make([]*core.FkVerifier, nDatasets)
			for i := range vs[round] {
				var err error
				if vs[round][i], err = newVerifier(i); err != nil {
					return 0, err
				}
			}
		}
		for i := range cls {
			var err error
			if cls[i], err = wire.Dial(addr); err != nil {
				return 0, err
			}
			defer cls[i].Close()
			if _, err = cls[i].OpenDataset(dsName(i), u); err != nil {
				return 0, err
			}
		}
		t0 := time.Now()
		for round := 0; round < rounds; round++ {
			errs := make(chan error, nDatasets)
			for i := 0; i < nDatasets; i++ {
				go func(round, i int) {
					_, err := cls[i].Query(wire.QuerySelfJoinSize, wire.QueryParams{}, vs[round][i])
					errs <- err
				}(round, i)
			}
			for i := 0; i < nDatasets; i++ {
				if err := <-errs; err != nil {
					return 0, err
				}
			}
		}
		return time.Since(t0), nil
	}

	var base time.Duration
	fmt.Printf("%8s %14s %10s\n", "shards", "wall", "speedup")
	for _, S := range []int{0, 1, 2, 4} {
		var addr string
		var cleanup []func()
		newServer := func() (string, error) {
			dir, err := os.MkdirTemp("", "sipbench-shard-*")
			if err != nil {
				return "", err
			}
			cleanup = append(cleanup, func() { os.RemoveAll(dir) })
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return "", err
			}
			srv := &wire.Server{F: f, Workers: 1, MemBudget: budget, DataDir: dir}
			go func() { _ = srv.Serve(ln) }()
			cleanup = append(cleanup, func() { srv.Close() })
			return ln.Addr().String(), nil
		}
		if S == 0 {
			if addr, err = newServer(); err != nil {
				return err
			}
		} else {
			tbl := &shard.Table{Routes: map[string]string{}}
			for s := 0; s < S; s++ {
				saddr, err := newServer()
				if err != nil {
					return err
				}
				tbl.Shards = append(tbl.Shards, shard.ShardInfo{Name: fmt.Sprintf("s%d", s), Addr: saddr})
			}
			for i := 0; i < nDatasets; i++ {
				tbl.Routes[dsName(i)] = fmt.Sprintf("s%d", i%S)
			}
			r, err := shard.NewRouter(tbl)
			if err != nil {
				return err
			}
			rln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go func() { _ = r.Serve(rln) }()
			cleanup = append(cleanup, func() { r.Close() })
			addr = rln.Addr().String()
		}
		err = ingest(addr)
		var wall time.Duration
		if err == nil {
			wall, err = queryAll(addr)
		}
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%d", S)
		if S == 0 {
			label = "direct"
			base = wall
		}
		fmt.Printf("%8s %14s %9.2fx\n", label, wall.Round(time.Microsecond), float64(base)/float64(wall))
	}
	return nil
}

// splitshard: vertical scaling of ONE dataset through the split-universe
// router — the whole universe lives on S engine processes (one slice
// each, one worker each), and each Fiat–Shamir proof generation runs as
// S partial provers folded into one transcript by the router. Prover
// work is linear in resident table size, so S slices cut each shard's
// share to U/S and the shards compute their partials concurrently; the
// metric is proof-generation wall clock (each round bumps the dataset
// version, so every fetch is a cache miss — one full prover run). The
// direct row is the same dataset on one engine with no router: the
// S = 1 delta is the price of the aggregation seam itself (one extra
// hop per sum-check round plus the router's fold), and S = 2, 4 show
// the cross-process speedup — bounded by physical cores, since on a
// single-CPU host the concurrent slice provers serialize and the curve
// stays flat at the S = 1 wall. (S = 1 beating direct is real, not the
// seam: the split path samples its Fiat-Shamir challenges directly via
// core.SumcheckChallenges, while the engine's whole-proof path derives
// them by replaying a verifier.) The proof bytes are bit-identical in
// every row — the equality tests pin that; this table prices it.
func splitShardScale(f field.Field, seed uint64) error {
	const logu = 22
	const rounds = 3
	u := uint64(1) << logu
	const n = 1 << 16
	ups := stream.UnitIncrements(u, n, field.NewSplitMix64(seed))
	bump := stream.UnitIncrements(u, 1, field.NewSplitMix64(seed+999))
	fmt.Printf("Split-universe scaling: F2 proof generation at u = 2^%d across S single-worker engines, %d proofs\n", logu, rounds)
	fmt.Printf("(host has %d CPU(s); slice provers run concurrently, so expect speedup over the S=1 row of about min(S, CPUs))\n", runtime.NumCPU())

	var base time.Duration
	fmt.Printf("%8s %14s %10s\n", "slices", "wall", "speedup")
	for _, S := range []int{0, 1, 2, 4} {
		var addr string
		var cleanup []func()
		newServer := func() (string, error) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return "", err
			}
			srv := &wire.Server{F: f, Workers: 1}
			go func() { _ = srv.Serve(ln) }()
			cleanup = append(cleanup, func() { srv.Close() })
			return ln.Addr().String(), nil
		}
		var err error
		if S == 0 {
			if addr, err = newServer(); err != nil {
				return err
			}
		} else {
			sp := &shard.SplitSpec{Slices: S}
			tbl := &shard.Table{Splits: map[string]*shard.SplitSpec{"huge": sp}}
			for s := 0; s < S; s++ {
				saddr, err := newServer()
				if err != nil {
					return err
				}
				name := fmt.Sprintf("s%d", s)
				tbl.Shards = append(tbl.Shards, shard.ShardInfo{Name: name, Addr: saddr})
				sp.Owners = append(sp.Owners, name)
			}
			r, err := shard.NewRouter(tbl)
			if err != nil {
				return err
			}
			rln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go func() { _ = r.Serve(rln) }()
			cleanup = append(cleanup, func() { r.Close() })
			addr = rln.Addr().String()
		}

		wall, err := func() (time.Duration, error) {
			cl, err := wire.Dial(addr)
			if err != nil {
				return 0, err
			}
			defer cl.Close()
			if _, err := cl.OpenDataset("huge", u); err != nil {
				return 0, err
			}
			if _, err := cl.Ingest(ups); err != nil {
				return 0, err
			}
			// Warm the path once (table materialization, first-connection
			// costs), then time rounds of version-bumped proof misses.
			if _, err := cl.FetchProof(wire.QuerySelfJoinSize, wire.QueryParams{}, 0); err != nil {
				return 0, err
			}
			t0 := time.Now()
			for round := 0; round < rounds; round++ {
				if _, err := cl.Ingest(bump); err != nil {
					return 0, err
				}
				if _, err := cl.FetchProof(wire.QuerySelfJoinSize, wire.QueryParams{}, 0); err != nil {
					return 0, err
				}
			}
			return time.Since(t0), nil
		}()
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%d", S)
		if S == 0 {
			label = "direct"
			base = wall
		}
		fmt.Printf("%8s %14s %9.2fx\n", label, wall.Round(time.Microsecond), float64(base)/float64(wall))
	}
	return nil
}

// fanout: the Fiat–Shamir proof cache under verifier fan-out — k
// verifiers of one query over one dataset at u = 2^18, interactive
// conversations (the server reruns its prover per verifier) versus
// cached replay (the server generates one posted proof, every further
// request is a cache hit). Both columns exclude stream observation:
// every verifier fingerprints the stream as it flows by, whichever way
// it later checks the answer. The cached column times the first fetch
// (the miss — the one prover run), then every further fetch plus each
// verifier's offline replay of the posted transcript; only the
// verifiers' untimed pre-seeding is shared with the interactive arm.
func fanout(f field.Field, seed uint64, maxK int) error {
	const logu = 18
	u := uint64(1) << logu
	const n = 1 << 14
	fmt.Printf("Proof-cache fan-out: k verifiers of one F2 query, u = 2^%d, n = %d\n", logu, n)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &wire.Server{F: f, Workers: 1} // one core of prover: the resource the cache conserves
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	cl, err := wire.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer cl.Close()
	cl.FieldModulus = f.Modulus()

	kind, params := wire.QuerySelfJoinSize, wire.QueryParams{}
	fmt.Printf("%6s %14s %14s %10s %12s\n", "k", "interactive", "cached", "speedup", "hits/misses")
	for _, k := range []int{1, 10, 100, 1000} {
		if k > maxK {
			break
		}
		// A fresh dataset per k keeps the cache accounting exact: one
		// miss generates the round's proof, every other fetch must hit.
		name := fmt.Sprintf("fanout%d", k)
		ups := stream.UnitIncrements(u, n, field.NewSplitMix64(seed+uint64(k)))
		if _, err := cl.OpenDataset(name, u); err != nil {
			return err
		}
		if _, err := cl.Ingest(ups); err != nil {
			return err
		}

		seedVerifier := func(rng field.RNG) (*core.FkVerifier, error) {
			proto, err := core.NewSelfJoinSize(f, u)
			if err != nil {
				return nil, err
			}
			v := proto.NewVerifier(rng)
			return v, v.ObserveBatch(ups, runtime.NumCPU())
		}
		ivs := make([]*core.FkVerifier, k)
		for i := range ivs {
			// Interactive verifiers draw secret randomness each.
			if ivs[i], err = seedVerifier(field.NewSplitMix64(seed + uint64(2000+i))); err != nil {
				return err
			}
		}

		t0 := time.Now()
		for i := 0; i < k; i++ {
			if _, err := cl.Query(kind, params, ivs[i]); err != nil {
				return err
			}
		}
		interactive := time.Since(t0)

		before := srv.Stats().ProofCache
		t0 = time.Now()
		pf0, err := cl.FetchProof(kind, params, 0)
		if err != nil {
			return err
		}
		missTime := time.Since(t0)

		// Untimed: seed the k offline verifiers. Every one derives the
		// same challenges from the posted binding — that is the point:
		// one transcript serves them all.
		binding := pf0.Binding
		cvs := make([]*core.FkVerifier, k)
		for i := range cvs {
			if cvs[i], err = seedVerifier(binding.RNG()); err != nil {
				return err
			}
		}

		t0 = time.Now()
		if err := binding.Verify(pf0, cvs[0]); err != nil {
			return fmt.Errorf("k=%d: offline verification rejected the posted proof: %v", k, err)
		}
		for i := 1; i < k; i++ {
			pf, err := cl.FetchProof(kind, params, binding.Version)
			if err != nil {
				return err
			}
			if err := binding.Verify(pf, cvs[i]); err != nil {
				return fmt.Errorf("k=%d verifier %d: %v", k, i, err)
			}
		}
		cached := missTime + time.Since(t0)
		st := srv.Stats().ProofCache
		hits, misses := st.Hits-before.Hits, st.Misses-before.Misses
		if misses != 1 || hits < uint64(k-1) {
			return fmt.Errorf("k=%d: %d hits / %d misses, want ≥%d / 1", k, hits, misses, k-1)
		}
		fmt.Printf("%6d %14s %14s %9.2fx %9d/%d\n", k,
			interactive.Round(time.Microsecond), cached.Round(time.Microsecond),
			float64(interactive)/float64(cached), hits, misses)
	}
	return nil
}

// mux: the wire layer's multiplexed conversations — k F2 query
// conversations overlapped on one connection versus the same k run
// serially, over a real loopback socket. Each conversation runs in its
// own server goroutine; on c cores expect up to min(k, c)× speedup, and
// parity on one core.
func mux(f field.Field, seed uint64) error {
	const logu = 16
	u := uint64(1) << logu
	fmt.Printf("Multiplexed conversations: k overlapped vs k serial F2 queries, one connection, u = 2^%d\n", logu)
	ups := stream.UnitIncrements(u, int(2*u), field.NewSplitMix64(seed))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &wire.Server{F: f, Workers: 1} // single-threaded provers: only the overlap parallelizes
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	cl, err := wire.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer cl.Close()
	if _, err := cl.OpenDataset("mux", u); err != nil {
		return err
	}
	if _, err := cl.Ingest(ups); err != nil {
		return err
	}

	newVerifier := func(vseed uint64) (*core.FkVerifier, error) {
		proto, err := core.NewSelfJoinSize(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(field.NewSplitMix64(vseed))
		if err := v.ObserveBatch(ups, runtime.NumCPU()); err != nil {
			return nil, err
		}
		return v, nil
	}

	fmt.Printf("%4s %14s %14s %10s\n", "k", "serial", "overlapped", "speedup")
	for _, k := range []int{1, 2, 4, 8} {
		vs := make([]*core.FkVerifier, 2*k)
		for i := range vs {
			if vs[i], err = newVerifier(seed + uint64(1000+i)); err != nil {
				return err
			}
		}
		t0 := time.Now()
		for i := 0; i < k; i++ {
			if _, err := cl.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, vs[i]); err != nil {
				return err
			}
		}
		serial := time.Since(t0)
		t0 = time.Now()
		handles := make([]*wire.QueryHandle, k)
		for i := 0; i < k; i++ {
			if handles[i], err = cl.QueryAsync(wire.QuerySelfJoinSize, wire.QueryParams{}, vs[k+i]); err != nil {
				return err
			}
		}
		for _, h := range handles {
			if _, err := h.Wait(); err != nil {
				return err
			}
		}
		overlapped := time.Since(t0)
		fmt.Printf("%4d %14s %14s %9.2fx\n", k,
			serial.Round(time.Microsecond), overlapped.Round(time.Microsecond),
			float64(serial)/float64(overlapped))
	}
	return nil
}

func logRange(lo, hi int) []int {
	var out []int
	for l := lo; l <= hi; l += 2 {
		out = append(out, l)
	}
	return out
}

// fig2a: verifier stream-processing time vs input size n (Figure 2(a)).
func fig2a(f field.Field, maxMulti, maxOne int, seed uint64, workers int) error {
	fmt.Println("Figure 2(a): verifier's time to process the stream (u = n)")
	fmt.Printf("%-12s %12s %14s %16s %14s\n", "protocol", "n", "stream-time", "updates/sec", "check-time")
	for _, lg := range logRange(10, maxMulti) {
		row, err := harness.F2MultiRound(f, 1<<lg, 1000, seed, workers)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12d %14s %16.0f %14s\n", row.Protocol, row.N, row.StreamTime, row.UpdatesPerSec, row.CheckTime)
	}
	for _, lg := range logRange(10, maxOne) {
		row, err := harness.F2OneRound(f, 1<<lg, 1000, seed, workers)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12d %14s %16.0f %14s\n", row.Protocol, row.N, row.StreamTime, row.UpdatesPerSec, row.CheckTime)
	}
	return nil
}

// fig2b: prover's proof-generation time vs universe size (Figure 2(b)).
func fig2b(f field.Field, maxMulti, maxOne int, seed uint64, workers int) error {
	fmt.Println("Figure 2(b): prover's time to generate the proof")
	fmt.Printf("%-12s %12s %14s %16s\n", "protocol", "u", "prove-time", "updates/sec")
	for _, lg := range logRange(10, maxMulti) {
		row, err := harness.F2MultiRound(f, 1<<lg, 1000, seed, workers)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12d %14s %16.0f\n", row.Protocol, row.U, row.ProveTime, float64(row.N)/row.ProveTime.Seconds())
	}
	for _, lg := range logRange(10, maxOne) {
		row, err := harness.F2OneRound(f, 1<<lg, 1000, seed, workers)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12d %14s %16.0f\n", row.Protocol, row.U, row.ProveTime, float64(row.N)/row.ProveTime.Seconds())
	}
	return nil
}

// fig2c: verifier space and communication vs universe size (Figure 2(c)).
func fig2c(f field.Field, maxMulti, maxOne int, seed uint64, workers int) error {
	fmt.Println("Figure 2(c): size of communication and working space")
	fmt.Printf("%-12s %12s %14s %14s\n", "protocol", "u", "space-bytes", "comm-bytes")
	for _, lg := range logRange(10, maxMulti) {
		row, err := harness.F2MultiRound(f, 1<<lg, 1000, seed, workers)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12d %14d %14d\n", row.Protocol, row.U, row.SpaceBytes, row.CommBytes)
	}
	for _, lg := range logRange(10, maxOne) {
		row, err := harness.F2OneRound(f, 1<<lg, 1000, seed, workers)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12d %14d %14d\n", row.Protocol, row.U, row.SpaceBytes, row.CommBytes)
	}
	return nil
}

// fig3: SUB-VECTOR times (a) or space/communication (b) — Figure 3.
func fig3(f field.Field, maxLogU int, span, seed uint64, workers int, times bool) error {
	if times {
		fmt.Printf("Figure 3(a): SUB-VECTOR verifier and prover time (span %d)\n", span)
		fmt.Printf("%12s %14s %14s %14s\n", "u", "stream-time", "prove-time", "check-time")
	} else {
		fmt.Printf("Figure 3(b): SUB-VECTOR space and communication (span %d)\n", span)
		fmt.Printf("%12s %8s %14s %14s %18s\n", "u", "k", "space-bytes", "comm-bytes", "comm-minus-answer")
	}
	for _, lg := range logRange(10, maxLogU) {
		row, err := harness.SubVectorRun(f, 1<<lg, span, 1000, seed, workers)
		if err != nil {
			return err
		}
		if times {
			fmt.Printf("%12d %14s %14s %14s\n", row.U, row.StreamTime, row.ProveTime, row.CheckTime)
		} else {
			fmt.Printf("%12d %8d %14d %14d %18d\n", row.U, row.K, row.SpaceBytes, row.CommBytes, row.CommBytes-16*row.K)
		}
	}
	return nil
}

// tamper: §5 in-text robustness experiment.
func tamper(f field.Field, seed uint64) error {
	fmt.Println("Tamper suite (§5): every dishonest prover must be rejected")
	outcomes, err := harness.TamperSuite(f, 1<<10, seed)
	if err != nil {
		return err
	}
	allRejected := true
	for _, o := range outcomes {
		verdict := "REJECTED (correct)"
		if !o.Rejected {
			verdict = "ACCEPTED (soundness failure!)"
			allRejected = false
		}
		fmt.Printf("%-16s %-24s %s\n", o.Query, o.Mode, verdict)
	}
	if !allRejected {
		return fmt.Errorf("a dishonest prover was accepted")
	}
	fmt.Println("all tampering attempts rejected — matches the paper")
	return nil
}

// branching: §3.1 footnote 1 ℓ/d ablation.
func branching(f field.Field, seed uint64) error {
	fmt.Println("Branching-factor ablation (§3.1 fn. 1): F2 over u = 2^12")
	rows, err := harness.BranchingSweep(f, 1<<12, []int{2, 4, 8, 16, 64}, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %6s %10s %12s %14s %14s\n", "ell", "d", "rounds", "comm-words", "space-bytes", "prove-time")
	for _, r := range rows {
		fmt.Printf("%6d %6d %10d %12d %14d %14s\n", r.Ell, r.D, r.Rounds, r.CommWords, r.SpaceBytes, r.ProveTime)
	}
	return nil
}

// gkr: §3 remark — the specialized F2 protocol vs the Theorem-3 (GKR)
// circuit protocol — plus the engine dividend (snapshot-built provers vs
// stream replay) and the parallel prover (serial vs -workers).
func gkr(f field.Field, seed uint64, workers int) error {
	fmt.Println("GKR ablation (§3 remark): native F2 vs Muggles circuit protocol")
	fmt.Printf("%8s %12s | %14s %14s | %14s %14s\n",
		"u", "protocol", "comm-words", "rounds", "prove-time", "check-time")
	for _, lg := range []int{4, 6, 8, 10} {
		native, gkrRow, err := gkrbench.CompareF2(f, uint64(1)<<lg, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %12s | %14d %14d | %14s %14s\n",
			uint64(1)<<lg, "native", native.CommWords, native.Rounds, native.ProveTime, native.CheckTime)
		fmt.Printf("%8d %12s | %14d %14d | %14s %14s\n",
			uint64(1)<<lg, "gkr", gkrRow.CommWords, gkrRow.Rounds, gkrRow.ProveTime, gkrRow.CheckTime)
	}

	specs := []circuit.Spec{
		{Name: circuit.FamilyF2},
		{Name: circuit.FamilyCount},
		{Name: circuit.FamilyMatMul, Arg: 64},
	}

	fmt.Println("\nEngine-backed GKR: prover setup from maintained counts vs stream replay")
	fmt.Println("(u = 2^12, n = 8u updates; ingest is untimed — the engine maintains it anyway)")
	fmt.Printf("%8s %10s | %14s %14s | %14s %10s\n",
		"family", "source", "setup", "prove", "comm-words", "speedup")
	const lg = 12
	u := uint64(1) << lg
	for _, spec := range specs {
		replay, snapshot, err := gkrbench.CompareSetup(f, u, int(8*u), workers, spec, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%8s %10s | %14s %14s | %14d %10s\n",
			spec.Name, replay.Source, replay.Setup, replay.Prove, replay.CommWords, "")
		fmt.Printf("%8s %10s | %14s %14s | %14d %9.2fx\n",
			spec.Name, snapshot.Source, snapshot.Setup, snapshot.Prove, snapshot.CommWords,
			float64(replay.Setup)/float64(snapshot.Setup))
	}

	fmt.Println("\nParallel GKR prover: serial vs worker pool (transcripts bit-identical)")
	fmt.Printf("%8s | %14s %14s %10s\n", "family", "serial", fmt.Sprintf("workers=%d", workers), "speedup")
	for _, spec := range specs {
		_, serialRun, err := gkrbench.CompareSetup(f, u, int(8*u), 1, spec, seed)
		if err != nil {
			return err
		}
		_, parRun, err := gkrbench.CompareSetup(f, u, int(8*u), workers, spec, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%8s | %14s %14s %9.2fx\n", spec.Name,
			serialRun.Prove.Round(time.Microsecond), parRun.Prove.Round(time.Microsecond),
			float64(serialRun.Prove)/float64(parRun.Prove))
	}
	return nil
}

// freq: §6.2 frequency-based functions.
func freq(f field.Field, seed uint64, workers int) error {
	fmt.Println("Frequency-based functions (§6.2): F0 at φ = u^{-1/2}")
	fmt.Printf("%10s %10s %12s %14s %14s\n", "u", "F0", "comm-words", "prove-time", "check-time")
	for _, lg := range []int{8, 10, 12} {
		row, err := harness.F0Run(f, uint64(1)<<lg, seed, workers)
		if err != nil {
			return err
		}
		fmt.Printf("%10d %10d %12d %14s %14s\n", row.U, row.F0, row.CommWords, row.ProveTime, row.CheckTime)
	}
	return nil
}

// ipv6: §5 closing extrapolation to 1TB of IPv6 addresses.
func ipv6(f field.Field, seed uint64, workers int) error {
	row, err := harness.F2MultiRound(f, 1<<20, 1000, seed, workers)
	if err != nil {
		return err
	}
	proveRate := float64(row.N) / row.ProveTime.Seconds()
	est := harness.IPv6Extrapolate(row.U, proveRate)
	fmt.Println("IPv6 extrapolation (§5): 1TB ≈ 6×10^10 addresses, log u = 128")
	fmt.Printf("measured prover rate at u=2^%d: %.1f M updates/s\n", est.MeasuredLogU, est.MeasuredRate/1e6)
	fmt.Printf("estimated prover time for 1TB IPv6: %.0f seconds (%.0f minutes)\n",
		est.EstimatedSeconds, est.EstimatedSeconds/60)
	fmt.Println("(the paper, on 2011 hardware at 20M upd/s, estimated ~12,000s / 200 min)")
	return nil
}

// Command sipclient is the data owner: it uploads a synthetic stream to a
// sipserver while keeping only O(log u) verification state, then runs a
// battery of verified queries and reports results and costs.
//
//	sipclient -addr localhost:7408 -logu 16 -n 65536 -seed 7
//	sipclient -addr localhost:7408 -dataset metrics -queries 5
//
// Without -dataset the client uses the v1 flow: a private per-connection
// dataset that dies with the connection. With -dataset it opens (or
// creates) the named dataset on the server — shared across every
// connection that opens the same name — ingests into it, and repeats the
// query battery -queries times to show the amortization: the stream is
// ingested once, and every query (first and Nth alike) skips the replay.
//
// Point it at a server started with -cheat-drop to watch every v1 query
// get rejected.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7408", "sipserver address")
	logu := flag.Int("logu", 16, "log2 of the universe size")
	n := flag.Int("n", 1<<16, "stream length (unit increments)")
	seed := flag.Uint64("seed", 7, "workload seed")
	dataset := flag.String("dataset", "", "named shared dataset (empty = private v1 connection)")
	queries := flag.Int("queries", 1, "how many times to run the query battery (with -dataset)")
	flag.Parse()

	f := field.Mersenne()
	u := uint64(1) << *logu
	gen := field.NewSplitMix64(*seed)
	ups := stream.UnitIncrements(u, *n, gen)

	// Probe before the expensive verifier passes: a shared dataset that
	// already holds updates this client never observed can never verify,
	// so fail fast. A separate short-lived connection keeps the server's
	// idle-timeout clock out of the local observation pass.
	if *dataset != "" {
		probe, err := wire.Dial(*addr)
		if err != nil {
			log.Fatalf("dial: %v", err)
		}
		prior, err := probe.OpenDataset(*dataset, u)
		check(err)
		probe.Close()
		if prior != 0 {
			log.Fatalf("dataset %q already holds %d updates this client never observed; "+
				"verification summaries must cover the whole stream — use a fresh name", *dataset, prior)
		}
	}

	// Verifiers are created before the upload: the single streaming pass.
	// One set per battery round — each conversation consumes its verifier.
	rounds := 1
	if *dataset != "" {
		rounds = *queries
		if rounds < 1 {
			rounds = 1
		}
	}
	rng := field.CryptoRNG{}
	f2vs := make([]*core.FkVerifier, rounds)
	rqvs := make([]*core.SubVectorVerifier, rounds)
	hhvs := make([]*core.HeavyHittersVerifier, rounds)
	for r := 0; r < rounds; r++ {
		f2proto, err := core.NewSelfJoinSize(f, u)
		check(err)
		f2vs[r] = f2proto.NewVerifier(rng)
		rqproto, err := core.NewRangeQuery(f, u)
		check(err)
		rqvs[r] = rqproto.NewVerifier(rng)
		hhproto, err := core.NewHeavyHitters(f, u)
		check(err)
		hhvs[r] = hhproto.NewVerifier(rng)
	}

	// The F2 summary is a plain LDE evaluation, so the whole batch can be
	// folded in through a worker pool; the tree-based summaries stream.
	for r := 0; r < rounds; r++ {
		check(f2vs[r].ObserveBatch(ups, runtime.NumCPU()))
	}
	for _, up := range ups {
		for r := 0; r < rounds; r++ {
			check(rqvs[r].Observe(up))
			check(hhvs[r].Observe(up))
		}
	}

	// Connect for real only now that the heavy local pass is done, so
	// the server's idle timeout never sees a silent connection.
	client, err := wire.Dial(*addr)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if *dataset != "" {
		prior, err := client.OpenDataset(*dataset, u)
		check(err)
		if prior != 0 {
			log.Fatalf("dataset %q gained %d updates from another uploader during the local pass; use a fresh name", *dataset, prior)
		}
		_, err = client.Ingest(ups)
		check(err)
		fmt.Printf("ingested %d updates into shared dataset %q over universe 2^%d\n", len(ups), *dataset, *logu)
	} else {
		check(client.Hello(u))
		check(client.SendUpdates(ups))
		check(client.EndStream())
		fmt.Printf("uploaded %d updates over universe 2^%d; verifier state is O(log u)\n", len(ups), *logu)
	}

	for r := 0; r < rounds; r++ {
		if rounds > 1 {
			fmt.Printf("--- query round %d/%d (no re-upload, no server-side replay) ---\n", r+1, rounds)
		}
		t0 := time.Now()

		// SELF-JOIN SIZE.
		stats, err := client.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, f2vs[r])
		report("SELF-JOIN SIZE (F2)", stats, err)
		if err == nil {
			res, rerr := f2vs[r].Result()
			check(rerr)
			fmt.Printf("  F2 = %d\n", res)
		}

		// RANGE QUERY over a small window.
		lo, hi := u/4, u/4+99
		check(rqvs[r].SetQuery(lo, hi))
		stats, err = client.Query(wire.QueryRangeQuery, wire.QueryParams{A: lo, B: hi}, rqvs[r])
		report(fmt.Sprintf("RANGE QUERY [%d,%d]", lo, hi), stats, err)
		if err == nil {
			entries, rerr := rqvs[r].Result()
			check(rerr)
			fmt.Printf("  %d nonzero entries verified\n", len(entries))
		}

		// HEAVY HITTERS.
		phi := 0.001
		check(hhvs[r].SetQuery(phi))
		stats, err = client.Query(wire.QueryHeavyHitters, wire.QueryParams{Phi: phi}, hhvs[r])
		report(fmt.Sprintf("HEAVY HITTERS (φ=%g)", phi), stats, err)
		if err == nil {
			hh, _, rerr := hhvs[r].Result()
			check(rerr)
			fmt.Printf("  %d heavy hitters verified complete\n", len(hh))
		}
		fmt.Printf("round wall time: %v\n", time.Since(t0).Round(time.Millisecond))
	}
}

func report(name string, stats core.Stats, err error) {
	switch {
	case err == nil:
		fmt.Printf("%s: ACCEPTED — %d rounds, %d bytes of proof traffic\n", name, stats.Rounds, stats.CommBytes())
	case errors.Is(err, core.ErrRejected):
		fmt.Printf("%s: REJECTED — the cloud is cheating (%v)\n", name, err)
	default:
		fmt.Printf("%s: transport error: %v\n", name, err)
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

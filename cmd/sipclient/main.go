// Command sipclient is the data owner: it uploads a synthetic stream to a
// sipserver while keeping only O(log u) verification state, then runs a
// battery of verified queries and reports results and costs.
//
//	sipclient -addr localhost:7408 -logu 16 -n 65536 -seed 7
//	sipclient -addr localhost:7408 -dataset metrics -queries 5
//
// Without -dataset the client uses the v1 flow: a private per-connection
// dataset that dies with the connection. With -dataset it opens (or
// creates) the named dataset on the server — shared across every
// connection that opens the same name — ingests into it, and repeats the
// query battery -queries times to show the amortization: the stream is
// ingested once, and every query (first and Nth alike) skips the replay.
//
// -concurrency N overlaps up to N query rounds on the one connection:
// every conversation runs on its own multiplexed channel
// (wire.Client.QueryAsync), so a slow proof never blocks the others —
// the paper's many-cheap-conversations regime over a single socket.
//
// -circuit NAME adds a CIRCUIT conversation to every round: the GKR
// protocol over the named circuit family (F2, COUNT, MATMUL; see
// -circuit-arg) runs on the same multiplexed connection against the
// same maintained dataset — no extra upload, no server-side replay.
//
// -cached (requires -dataset) replaces the interactive conversations
// with non-interactive replay: each query fetches the server's posted
// Fiat–Shamir proof for the dataset's current version — generated once
// and served from the proof cache to every verifier that asks — and
// verifies it offline against a verifier built from the proof binding's
// deterministic challenge stream and this client's own copy of the
// updates. No prover work happens on the server after the first fetch
// of each (version, query).
//
// -kinds picks the query battery. "all" (the default) runs self-join
// size, range query, and heavy hitters. "seam" runs the split-universe
// seam — self-join size, the F3 frequency moment, and a range sum — the
// kinds a dataset split across shards serves, so this is the battery to
// point at a siprouter fronting a Splits table. In -cached mode each
// ACCEPTED line carries the sha256 of the posted proof bytes: fetch the
// same dataset through a router and through a single engine and the
// digests must match — the split-universe bit-identity check.
//
// Point it at a server started with -cheat-drop to watch every v1 query
// get rejected.
package main

import (
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/fs"
	"repro/internal/gkr"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7408", "sipserver address")
	logu := flag.Int("logu", 16, "log2 of the universe size")
	n := flag.Int("n", 1<<16, "stream length (unit increments)")
	seed := flag.Uint64("seed", 7, "workload seed")
	dataset := flag.String("dataset", "", "named shared dataset (empty = private v1 connection)")
	queries := flag.Int("queries", 1, "how many times to run the query battery (with -dataset)")
	concurrency := flag.Int("concurrency", 1, "query rounds overlapped on the one connection (multiplexed conversations)")
	circuitName := flag.String("circuit", "", fmt.Sprintf("add a CIRCUIT (GKR) conversation per round; families: %v", circuit.Families()))
	circuitArg := flag.Uint64("circuit-arg", 0, "circuit family argument (MATMUL: matrix dimension n, 0 = default)")
	cached := flag.Bool("cached", false, "verify posted Fiat–Shamir proofs offline instead of running interactive conversations (requires -dataset)")
	kinds := flag.String("kinds", "all", `query battery: "all" (F2, range query, heavy hitters) or "seam" (F2, F3 moment, range sum — what a split-universe dataset serves)`)
	flag.Parse()
	if *cached && *dataset == "" {
		log.Fatal("-cached requires -dataset: only named datasets post proofs")
	}
	if *kinds != "all" && *kinds != "seam" {
		log.Fatalf(`-kinds must be "all" or "seam", got %q`, *kinds)
	}
	seam := *kinds == "seam"
	if seam && *circuitName != "" {
		log.Fatal("-kinds seam excludes -circuit: a split dataset cannot serve CIRCUIT conversations")
	}
	if *concurrency < 1 {
		*concurrency = 1
	}
	// Each round holds three conversations at once (four with -circuit);
	// a server caps in-flight conversations per connection (sipserver
	// -max-queries, default wire.DefaultMaxConcurrentQueries) and refuses
	// the excess.
	convsPerRound := 3
	if *circuitName != "" {
		convsPerRound = 4
	}
	if convsPerRound**concurrency > wire.DefaultMaxConcurrentQueries {
		log.Printf("warning: -concurrency %d holds up to %d conversations; a default server caps them at %d per connection and refuses the rest (REFUSED lines, not failures)",
			*concurrency, convsPerRound**concurrency, wire.DefaultMaxConcurrentQueries)
	}

	f := field.Mersenne()
	u := uint64(1) << *logu
	gen := field.NewSplitMix64(*seed)
	ups := stream.UnitIncrements(u, *n, gen)

	// Probe before the expensive verifier passes: a shared dataset that
	// already holds updates this client never observed can never verify,
	// so fail fast. A separate short-lived connection keeps the server's
	// idle-timeout clock out of the local observation pass.
	if *dataset != "" {
		probe, err := wire.Dial(*addr)
		if err != nil {
			log.Fatalf("dial: %v", err)
		}
		prior, err := probe.OpenDataset(*dataset, u)
		check(err)
		probe.Close()
		if prior != 0 {
			log.Fatalf("dataset %q already holds %d updates this client never observed; "+
				"verification summaries must cover the whole stream — use a fresh name", *dataset, prior)
		}
	}

	// Verifiers are created before the upload: the single streaming pass.
	// One set per battery round — each conversation consumes its verifier.
	rounds := 1
	if *dataset != "" {
		rounds = *queries
		if rounds < 1 {
			rounds = 1
		}
	}
	rng := field.CryptoRNG{}
	qlo, qhi := u/4, u/4+99
	// seamBattery is the -kinds seam query set: exactly the kinds the
	// split-universe partial-prover seam covers, so the same invocation
	// works against a single sipserver and a siprouter splitting the
	// dataset across shards.
	seamBattery := []struct {
		name   string
		kind   wire.QueryKind
		params wire.QueryParams
	}{
		{"SELF-JOIN SIZE (F2)", wire.QuerySelfJoinSize, wire.QueryParams{}},
		{"F3 MOMENT", wire.QueryFk, wire.QueryParams{K: 3}},
		{fmt.Sprintf("RANGE SUM [%d,%d]", qlo, qhi), wire.QueryRangeSum, wire.QueryParams{A: qlo, B: qhi}},
	}
	f2vs := make([]*core.FkVerifier, rounds)
	rqvs := make([]*core.SubVectorVerifier, rounds)
	hhvs := make([]*core.HeavyHittersVerifier, rounds)
	var gkvs []*gkr.VerifierSession
	if *circuitName != "" {
		gkvs = make([]*gkr.VerifierSession, rounds)
	}
	var seamVs [][]engine.StreamVerifier
	// In -cached mode the challenge randomness comes from each proof's
	// binding, which is only known after the fetch — verifiers are built
	// per fetched proof inside the round instead of up front.
	if !*cached && seam {
		seamVs = make([][]engine.StreamVerifier, rounds)
		for r := range seamVs {
			seamVs[r] = make([]engine.StreamVerifier, len(seamBattery))
			for i, q := range seamBattery {
				v, err := engine.NewStreamVerifier(f, u, q.kind, q.params, rng)
				check(err)
				seamVs[r][i] = v
			}
		}
		for _, up := range ups {
			for r := range seamVs {
				for _, v := range seamVs[r] {
					check(v.Observe(up))
				}
			}
		}
	} else if !*cached {
		for r := 0; r < rounds; r++ {
			f2proto, err := core.NewSelfJoinSize(f, u)
			check(err)
			f2vs[r] = f2proto.NewVerifier(rng)
			rqproto, err := core.NewRangeQuery(f, u)
			check(err)
			rqvs[r] = rqproto.NewVerifier(rng)
			hhproto, err := core.NewHeavyHitters(f, u)
			check(err)
			hhvs[r] = hhproto.NewVerifier(rng)
			if gkvs != nil {
				vs, err := gkr.NewVerifierFor(f, circuit.Spec{Name: *circuitName, Arg: *circuitArg}, u, rng)
				check(err)
				gkvs[r] = vs
			}
		}

		// The F2 summary is a plain LDE evaluation, so the whole batch can
		// be folded in through a worker pool; the tree-based summaries
		// stream.
		for r := 0; r < rounds; r++ {
			check(f2vs[r].ObserveBatch(ups, runtime.NumCPU()))
		}
		for _, up := range ups {
			for r := 0; r < rounds; r++ {
				check(rqvs[r].Observe(up))
				check(hhvs[r].Observe(up))
				if gkvs != nil {
					check(gkvs[r].Observe(up))
				}
			}
		}
	}

	// Connect for real only now that the heavy local pass is done, so
	// the server's idle timeout never sees a silent connection.
	client, err := wire.Dial(*addr)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer client.Close()
	client.FieldModulus = f.Modulus()
	if *dataset != "" {
		prior, err := client.OpenDataset(*dataset, u)
		check(err)
		if prior != 0 {
			log.Fatalf("dataset %q gained %d updates from another uploader during the local pass; use a fresh name", *dataset, prior)
		}
		_, err = client.Ingest(ups)
		check(err)
		fmt.Printf("ingested %d updates into shared dataset %q over universe 2^%d\n", len(ups), *dataset, *logu)
	} else {
		check(client.Hello(u))
		check(client.SendUpdates(ups))
		check(client.EndStream())
		fmt.Printf("uploaded %d updates over universe 2^%d; verifier state is O(log u)\n", len(ups), *logu)
	}

	// Each round's three conversations run on their own multiplexed
	// channels; -concurrency bounds how many whole rounds are in flight
	// on the connection at once.
	lo, hi := u/4, u/4+99
	phi := 0.001
	// Every error inside a round is reported as that round's output —
	// never log.Fatal/os.Exit from a round goroutine, which would
	// discard the other rounds' buffered results.
	runRound := func(r int) []string {
		t0 := time.Now()
		var lines []string
		fail := func(name string, err error) {
			transportFailed.Store(true)
			lines = append(lines, fmt.Sprintf("%s: %v", name, err))
		}
		if err := rqvs[r].SetQuery(lo, hi); err != nil {
			fail("RANGE QUERY", err)
			return lines
		}
		if err := hhvs[r].SetQuery(phi); err != nil {
			fail("HEAVY HITTERS", err)
			return lines
		}
		f2h, err := client.QueryAsync(wire.QuerySelfJoinSize, wire.QueryParams{}, f2vs[r])
		if err != nil {
			fail("SELF-JOIN SIZE (F2)", err)
			return lines
		}
		rqh, err := client.QueryAsync(wire.QueryRangeQuery, wire.QueryParams{A: lo, B: hi}, rqvs[r])
		if err != nil {
			fail("RANGE QUERY", err)
			return lines
		}
		hhh, err := client.QueryAsync(wire.QueryHeavyHitters, wire.QueryParams{Phi: phi}, hhvs[r])
		if err != nil {
			fail("HEAVY HITTERS", err)
			return lines
		}
		var gkh *wire.QueryHandle
		if gkvs != nil {
			gkh, err = client.QueryAsync(wire.QueryCircuit, wire.QueryParams{Circuit: *circuitName, A: *circuitArg}, gkvs[r])
			if err != nil {
				fail(fmt.Sprintf("CIRCUIT %s", *circuitName), err)
				return lines
			}
		}

		stats, err := f2h.Wait()
		lines = append(lines, report("SELF-JOIN SIZE (F2)", stats, err))
		if err == nil {
			if res, rerr := f2vs[r].Result(); rerr != nil {
				fail("SELF-JOIN SIZE (F2) result", rerr)
			} else {
				lines = append(lines, fmt.Sprintf("  F2 = %d", res))
			}
		}
		stats, err = rqh.Wait()
		lines = append(lines, report(fmt.Sprintf("RANGE QUERY [%d,%d]", lo, hi), stats, err))
		if err == nil {
			if entries, rerr := rqvs[r].Result(); rerr != nil {
				fail("RANGE QUERY result", rerr)
			} else {
				lines = append(lines, fmt.Sprintf("  %d nonzero entries verified", len(entries)))
			}
		}
		stats, err = hhh.Wait()
		lines = append(lines, report(fmt.Sprintf("HEAVY HITTERS (φ=%g)", phi), stats, err))
		if err == nil {
			if hhRes, _, rerr := hhvs[r].Result(); rerr != nil {
				fail("HEAVY HITTERS result", rerr)
			} else {
				lines = append(lines, fmt.Sprintf("  %d heavy hitters verified complete", len(hhRes)))
			}
		}
		if gkh != nil {
			stats, err = gkh.Wait()
			lines = append(lines, report(fmt.Sprintf("CIRCUIT %s (GKR)", *circuitName), stats, err))
			if err == nil {
				if outs, rerr := gkvs[r].Outputs(); rerr != nil {
					fail("CIRCUIT result", rerr)
				} else {
					lines = append(lines, fmt.Sprintf("  %d circuit outputs verified", len(outs)))
				}
			}
		}
		lines = append(lines, fmt.Sprintf("round wall time: %v", time.Since(t0).Round(time.Millisecond)))
		return lines
	}

	// runSeamRound is the interactive seam battery: the three seam kinds
	// overlapped on their own mux channels, identical against a single
	// engine and a split-universe router.
	runSeamRound := func(r int) []string {
		t0 := time.Now()
		var lines []string
		handles := make([]*wire.QueryHandle, len(seamBattery))
		for i, q := range seamBattery {
			h, err := client.QueryAsync(q.kind, q.params, seamVs[r][i])
			if err != nil {
				transportFailed.Store(true)
				lines = append(lines, fmt.Sprintf("%s: %v", q.name, err))
				return lines
			}
			handles[i] = h
		}
		for i, q := range seamBattery {
			stats, err := handles[i].Wait()
			lines = append(lines, report(q.name, stats, err))
			if err != nil {
				continue
			}
			switch v := seamVs[r][i].(type) {
			case *core.FkVerifier:
				if res, rerr := v.Result(); rerr == nil {
					lines = append(lines, fmt.Sprintf("  moment = %d", res))
				}
			case *core.RangeSumVerifier:
				if res, rerr := v.Result(); rerr == nil {
					lines = append(lines, fmt.Sprintf("  range sum = %d", res))
				}
			}
		}
		lines = append(lines, fmt.Sprintf("round wall time: %v", time.Since(t0).Round(time.Millisecond)))
		return lines
	}

	// runCachedRound is the non-interactive battery: fetch each query's
	// posted proof (one server-side generation per dataset version, every
	// later fetch a cache hit), rebuild the verifier from the binding's
	// challenge stream, replay offline.
	runCachedRound := func(r int) []string {
		t0 := time.Now()
		var lines []string
		lo, hi := u/4, u/4+99
		phi := 0.001
		fetchVerify := func(name string, kind wire.QueryKind, params wire.QueryParams) core.VerifierSession {
			var built core.VerifierSession
			pf, stats, err := client.QueryCached(kind, params, 0,
				func(b fs.Binding) (core.VerifierSession, error) {
					v, err := engine.NewStreamVerifier(f, u, kind, params, b.RNG())
					if err != nil {
						return nil, err
					}
					for _, up := range ups {
						if err := v.Observe(up); err != nil {
							return nil, err
						}
					}
					built = v
					return v, nil
				})
			if err != nil {
				lines = append(lines, report(name, stats, err))
				return nil
			}
			// The digest makes bit-identity checkable from the outside:
			// the same dataset fetched through a split-universe router and
			// through a single engine must print the same sha256.
			sum := sha256.Sum256(pf.Encode())
			lines = append(lines, fmt.Sprintf("%s: ACCEPTED offline — posted proof v%d, %d recorded rounds, %d proof bytes, sha256 %x",
				name, pf.Version, stats.Rounds, stats.CommBytes(), sum))
			return built
		}
		if seam {
			for _, q := range seamBattery {
				v := fetchVerify(q.name, q.kind, q.params)
				if v == nil {
					continue
				}
				switch sv := v.(type) {
				case *core.FkVerifier:
					if res, err := sv.Result(); err == nil {
						lines = append(lines, fmt.Sprintf("  moment = %d", res))
					}
				case *core.RangeSumVerifier:
					if res, err := sv.Result(); err == nil {
						lines = append(lines, fmt.Sprintf("  range sum = %d", res))
					}
				}
			}
			lines = append(lines, fmt.Sprintf("round wall time: %v", time.Since(t0).Round(time.Millisecond)))
			return lines
		}
		if v := fetchVerify("SELF-JOIN SIZE (F2)", wire.QuerySelfJoinSize, wire.QueryParams{}); v != nil {
			if res, err := v.(*core.FkVerifier).Result(); err == nil {
				lines = append(lines, fmt.Sprintf("  F2 = %d", res))
			}
		}
		if v := fetchVerify(fmt.Sprintf("RANGE QUERY [%d,%d]", lo, hi), wire.QueryRangeQuery, wire.QueryParams{A: lo, B: hi}); v != nil {
			if entries, err := v.(*core.SubVectorVerifier).Result(); err == nil {
				lines = append(lines, fmt.Sprintf("  %d nonzero entries verified", len(entries)))
			}
		}
		if v := fetchVerify(fmt.Sprintf("HEAVY HITTERS (φ=%g)", phi), wire.QueryHeavyHitters, wire.QueryParams{Phi: phi}); v != nil {
			if hhRes, _, err := v.(*core.HeavyHittersVerifier).Result(); err == nil {
				lines = append(lines, fmt.Sprintf("  %d heavy hitters verified complete", len(hhRes)))
			}
		}
		if *circuitName != "" {
			if v := fetchVerify(fmt.Sprintf("CIRCUIT %s (GKR)", *circuitName), wire.QueryCircuit, wire.QueryParams{Circuit: *circuitName, A: *circuitArg}); v != nil {
				if outs, err := v.(*gkr.VerifierSession).Outputs(); err == nil {
					lines = append(lines, fmt.Sprintf("  %d circuit outputs verified", len(outs)))
				}
			}
		}
		lines = append(lines, fmt.Sprintf("round wall time: %v", time.Since(t0).Round(time.Millisecond)))
		return lines
	}

	t0 := time.Now()
	results := make([][]string, rounds)
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			defer func() { <-sem }()
			switch {
			case *cached:
				results[r] = runCachedRound(r)
			case seam:
				results[r] = runSeamRound(r)
			default:
				results[r] = runRound(r)
			}
		}(r)
	}
	wg.Wait()
	for r, lines := range results {
		if rounds > 1 {
			fmt.Printf("--- query round %d/%d (no re-upload, no server-side replay) ---\n", r+1, rounds)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	if rounds > 1 {
		fmt.Printf("%d rounds, concurrency %d: total wall time %v\n",
			rounds, *concurrency, time.Since(t0).Round(time.Millisecond))
	}
	if transportFailed.Load() {
		os.Exit(1)
	}
}

// transportFailed is set by any round that hit a transport error; the
// process exits nonzero after every completed round has been printed
// (an os.Exit from inside a round goroutine would discard the others'
// buffered output).
var transportFailed atomic.Bool

func report(name string, stats core.Stats, err error) string {
	switch {
	case err == nil:
		return fmt.Sprintf("%s: ACCEPTED — %d rounds, %d bytes of proof traffic", name, stats.Rounds, stats.CommBytes())
	case errors.Is(err, core.ErrRejected):
		return fmt.Sprintf("%s: REJECTED — the cloud is cheating (%v)", name, err)
	case errors.Is(err, wire.ErrBudget):
		// A healthy server at its concurrent-query cap, not a transport
		// failure: the conversation was refused, not broken.
		return fmt.Sprintf("%s: REFUSED — server at capacity, lower -concurrency (%v)", name, err)
	default:
		transportFailed.Store(true)
		return fmt.Sprintf("%s: transport error: %v", name, err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Command sipclient is the data owner: it uploads a synthetic stream to a
// sipserver while keeping only O(log u) verification state, then runs a
// battery of verified queries and reports results and costs.
//
//	sipclient -addr localhost:7408 -logu 16 -n 65536 -seed 7
//
// Point it at a server started with -cheat-drop to watch every query get
// rejected.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7408", "sipserver address")
	logu := flag.Int("logu", 16, "log2 of the universe size")
	n := flag.Int("n", 1<<16, "stream length (unit increments)")
	seed := flag.Uint64("seed", 7, "workload seed")
	flag.Parse()

	f := field.Mersenne()
	u := uint64(1) << *logu
	gen := field.NewSplitMix64(*seed)
	ups := stream.UnitIncrements(u, *n, gen)

	client, err := wire.Dial(*addr)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer client.Close()
	if err := client.Hello(u); err != nil {
		log.Fatalf("hello: %v", err)
	}

	// Verifiers are created before the upload: the single streaming pass.
	rng := field.CryptoRNG{}
	f2proto, err := core.NewSelfJoinSize(f, u)
	check(err)
	f2v := f2proto.NewVerifier(rng)
	rqproto, err := core.NewRangeQuery(f, u)
	check(err)
	rqv := rqproto.NewVerifier(rng)
	hhproto, err := core.NewHeavyHitters(f, u)
	check(err)
	hhv := hhproto.NewVerifier(rng)

	// The F2 summary is a plain LDE evaluation, so the whole batch can be
	// folded in through a worker pool; the tree-based summaries stream.
	check(f2v.ObserveBatch(ups, runtime.NumCPU()))
	for _, up := range ups {
		check(rqv.Observe(up))
		check(hhv.Observe(up))
	}
	check(client.SendUpdates(ups))
	check(client.EndStream())
	fmt.Printf("uploaded %d updates over universe 2^%d; verifier state is O(log u)\n", len(ups), *logu)

	// SELF-JOIN SIZE.
	stats, err := client.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, f2v)
	report("SELF-JOIN SIZE (F2)", stats, err)
	if err == nil {
		res, rerr := f2v.Result()
		check(rerr)
		fmt.Printf("  F2 = %d\n", res)
	}

	// RANGE QUERY over a small window.
	lo, hi := u/4, u/4+99
	check(rqv.SetQuery(lo, hi))
	stats, err = client.Query(wire.QueryRangeQuery, wire.QueryParams{A: lo, B: hi}, rqv)
	report(fmt.Sprintf("RANGE QUERY [%d,%d]", lo, hi), stats, err)
	if err == nil {
		entries, rerr := rqv.Result()
		check(rerr)
		fmt.Printf("  %d nonzero entries verified\n", len(entries))
	}

	// HEAVY HITTERS.
	phi := 0.001
	check(hhv.SetQuery(phi))
	stats, err = client.Query(wire.QueryHeavyHitters, wire.QueryParams{Phi: phi}, hhv)
	report(fmt.Sprintf("HEAVY HITTERS (φ=%g)", phi), stats, err)
	if err == nil {
		hh, _, rerr := hhv.Result()
		check(rerr)
		fmt.Printf("  %d heavy hitters verified complete\n", len(hh))
	}
}

func report(name string, stats core.Stats, err error) {
	switch {
	case err == nil:
		fmt.Printf("%s: ACCEPTED — %d rounds, %d bytes of proof traffic\n", name, stats.Rounds, stats.CommBytes())
	case errors.Is(err, core.ErrRejected):
		fmt.Printf("%s: REJECTED — the cloud is cheating (%v)\n", name, err)
	default:
		fmt.Printf("%s: transport error: %v\n", name, err)
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Command siprouter fronts N sipserver shards with one client-facing
// address: named datasets are placed on shards by consistent hashing
// (overridable per dataset in the routing table), and the v2 mux wire
// protocol is proxied transparently — sipclient and sip.Client work
// against a router exactly as against a single sipserver.
//
//	siprouter -listen :7400 -table shards.json
//	siprouter -table shards.json -rebalance mydata=shard2
//	siprouter -table shards.json -rebalance-slice huge:1=shard3
//	siprouter -table shards.json -evacuate shard1=shard2
//
// The routing table is JSON:
//
//	{
//	  "Shards": [
//	    {"Name": "shard1", "Addr": "127.0.0.1:7408", "DataDir": "/var/lib/sip/shard1"},
//	    {"Name": "shard2", "Addr": "127.0.0.1:7409", "DataDir": "/var/lib/sip/shard2"}
//	  ],
//	  "Routes": {"pinned-dataset": "shard2"},
//	  "Splits": {"huge": {"Slices": 2, "Owners": ["shard1", "shard2"]}}
//	}
//
// A dataset under "Splits" is split-universe: each owner holds one
// power-of-two slice of the padded index space and the router folds the
// owners' partial sum-check messages into the single transcript a
// client sees — transcripts and cached-proof bytes are bit-identical to
// one engine holding the whole dataset. Clients open such a dataset by
// name, exactly as a routed one; only mux-channel queries are served
// (the seam covers self-join size, k-th moments, and range sums).
//
// -rebalance moves one dataset by checkpoint handoff: the source shard
// persists and releases it (engine.Release), the checkpoint file moves
// between data dirs, the target adopts it (engine.Adopt), and the route
// is pinned in the table file. Transcripts and cached-proof bytes are
// bit-identical across the move. The data dirs must be reachable from
// where siprouter runs (same host or a shared filesystem).
//
// -rebalance-slice moves one slice of a split dataset the same way:
// the slice's owner releases it, the checkpoint file moves, the target
// adopts, and the owner list in the table is updated. Ingest through a
// live router retries transparently across the move.
//
// -evacuate is the shard-loss path: with a shard's process dead but its
// data dir intact, every checkpoint it held is moved to the target,
// adopted, and routed. Run it only once the lost shard is actually down.
//
// -aggregate-stats makes the router answer a client's stats request
// itself: it fans out to every shard, sums the proof-cache counters,
// and returns the merged reply with a per-shard breakdown (plus its own
// split-proof cache under "router").
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/shard"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7400", "address to listen on")
	tablePath := flag.String("table", "", "routing table JSON (required)")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "disconnect clients idle for this long (0 = never)")
	rebalance := flag.String("rebalance", "", "move a dataset and exit: dataset=targetShard")
	rebalanceSlice := flag.String("rebalance-slice", "", "move one slice of a split dataset and exit: dataset:slice=targetShard")
	evacuate := flag.String("evacuate", "", "adopt a dead shard's checkpoints and exit: lostShard=targetShard")
	aggStats := flag.Bool("aggregate-stats", false, "answer stats requests with merged per-shard counters instead of forwarding")
	dialBudget := flag.Duration("dial-retry-budget", 2*time.Second, "total time to spend retrying an unreachable shard before failing typed")
	flag.Parse()
	if *tablePath == "" {
		log.Fatalf("-table is required")
	}
	tbl, err := shard.LoadTable(*tablePath)
	if err != nil {
		log.Fatalf("routing table: %v", err)
	}
	r, err := shard.NewRouter(tbl)
	if err != nil {
		log.Fatalf("router: %v", err)
	}
	r.IdleTimeout = *idle
	r.TablePath = *tablePath
	r.AggregateStats = *aggStats
	r.DialRetryBudget = *dialBudget

	switch {
	case *rebalance != "":
		ds, target, err := splitPair(*rebalance)
		if err != nil {
			log.Fatalf("-rebalance: %v", err)
		}
		if err := r.Rebalance(ds, target); err != nil {
			log.Fatalf("rebalance: %v", err)
		}
		log.Printf("dataset %q now served by shard %q (route pinned in %s)", ds, target, *tablePath)
		return
	case *rebalanceSlice != "":
		spec, target, err := splitPair(*rebalanceSlice)
		if err != nil {
			log.Fatalf("-rebalance-slice: %v", err)
		}
		colon := strings.LastIndex(spec, ":")
		if colon <= 0 || colon == len(spec)-1 {
			log.Fatalf("-rebalance-slice: want dataset:slice=targetShard, got %q", *rebalanceSlice)
		}
		ds := spec[:colon]
		slice, err := strconv.Atoi(spec[colon+1:])
		if err != nil {
			log.Fatalf("-rebalance-slice: slice index %q: %v", spec[colon+1:], err)
		}
		if err := r.RebalanceSlice(ds, slice, target); err != nil {
			log.Fatalf("rebalance-slice: %v", err)
		}
		log.Printf("slice %d of %q now served by shard %q (owner list updated in %s)", slice, ds, target, *tablePath)
		return
	case *evacuate != "":
		lost, target, err := splitPair(*evacuate)
		if err != nil {
			log.Fatalf("-evacuate: %v", err)
		}
		moved, err := r.Evacuate(lost, target)
		for _, ds := range moved {
			log.Printf("dataset %q recovered from %q onto %q", ds, lost, target)
		}
		if err != nil {
			log.Fatalf("evacuate: %v", err)
		}
		log.Printf("evacuated %d dataset(s); routes pinned in %s", len(moved), *tablePath)
		return
	}

	// Probe each shard before serving: a router fronting unreachable or
	// half-recovered shards should say so at startup, not on the first
	// client's open.
	for _, s := range tbl.Shards {
		st, err := probeShard(s.Addr)
		if err != nil {
			log.Printf("warning: shard %q (%s) is unreachable: %v", s.Name, s.Addr, err)
			continue
		}
		log.Printf("shard %q (%s): %d dataset(s) recovered at startup", s.Name, s.Addr, st.DatasetsRecovered)
		for _, f := range st.RecoveryFailures {
			log.Printf("warning: shard %q failed to recover a checkpoint: %s", s.Name, f)
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("siprouter listening on %s, fronting %d shard(s) from %s", ln.Addr(), len(tbl.Shards), *tablePath)
	err = r.Serve(ln)
	if cerr := r.Close(); cerr != nil {
		log.Printf("shutdown: %v", cerr)
	}
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
}

// probeShard fetches one shard's operational stats over a short-lived
// admin connection.
func probeShard(addr string) (wire.ServerStats, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return wire.ServerStats{}, err
	}
	defer c.Close()
	c.Timeout = 10 * time.Second
	return c.ServerStats()
}

func splitPair(s string) (string, string, error) {
	i := strings.Index(s, "=")
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("want name=target, got %q", s)
	}
	return s[:i], s[i+1:], nil
}

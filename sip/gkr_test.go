package sip_test

import (
	"errors"
	"testing"

	"repro/sip"
)

// TestCircuitFamilies pins the public registry listing.
func TestCircuitFamilies(t *testing.T) {
	fams := sip.CircuitFamilies()
	want := map[string]bool{sip.CircuitF2: false, sip.CircuitCount: false, sip.CircuitMatMul: false}
	for _, name := range fams {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("family %q missing from CircuitFamilies() = %v", name, fams)
		}
	}
}

// TestVerifyCircuitMatMul checks the one-call convenience end to end:
// the verified output vector is the true matrix product.
func TestVerifyCircuitMatMul(t *testing.T) {
	f := sip.Mersenne()
	const n = 4
	const u = n * n
	// A as a stream of row-major updates.
	var a [u]int64
	var ups []sip.Update
	rng := sip.NewSeededRNG(77)
	for i := range a {
		a[i] = int64(rng.Uint64()%7) - 3
		ups = append(ups, sip.Update{Index: uint64(i), Delta: a[i]})
	}
	outs, _, err := sip.VerifyCircuit(f, u, ups, sip.CircuitSpec{Name: sip.CircuitMatMul, Arg: n}, sip.NewSeededRNG(78))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != n*n {
		t.Fatalf("got %d outputs, want %d", len(outs), n*n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want sip.Elem
			for k := 0; k < n; k++ {
				want = f.Add(want, f.Mul(f.FromInt64(a[i*n+k]), f.FromInt64(a[k*n+j])))
			}
			if outs[i*n+j] != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, outs[i*n+j], want)
			}
		}
	}
}

// TestVerifyCircuitRejectsTamper drives a CIRCUIT conversation with a
// tampering prover; the verifier must reject with ErrRejected.
func TestVerifyCircuitRejectsTamper(t *testing.T) {
	f := sip.Mersenne()
	const u = 64
	var ups []sip.Update
	for i := uint64(0); i < u; i++ {
		ups = append(ups, sip.Update{Index: i, Delta: int64(i%5) - 2})
	}
	spec := sip.CircuitSpec{Name: sip.CircuitF2}
	v, err := sip.NewCircuitVerifier(f, spec, u, sip.NewSeededRNG(80))
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := sip.NewDataset(f, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	p, err := ds.Snapshot().NewProver(sip.QueryCircuit, sip.QueryParams{Circuit: spec.Name})
	if err != nil {
		t.Fatal(err)
	}
	tampered := &sip.TamperedProver{P: p, T: func(round int, m sip.Msg) sip.Msg {
		if round == 1 && len(m.Elems) > 0 {
			m.Elems[0] = f.Add(m.Elems[0], 1)
		}
		return m
	}}
	if _, err := sip.Run(tampered, v); !errors.Is(err, sip.ErrRejected) {
		t.Fatalf("tampered circuit proof: err = %v, want ErrRejected", err)
	}
}

// TestVerifyCircuitUnknown pins the typed error surface.
func TestVerifyCircuitUnknown(t *testing.T) {
	_, _, err := sip.VerifyCircuit(sip.Mersenne(), 16, nil, sip.CircuitSpec{Name: "NOPE"}, sip.NewSeededRNG(1))
	if !errors.Is(err, sip.ErrUnknownCircuit) {
		t.Fatalf("err = %v, want ErrUnknownCircuit", err)
	}
}

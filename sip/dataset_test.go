package sip_test

import (
	"errors"
	"testing"

	"repro/sip"
)

// TestDatasetIngestOnceProveMany is the package-level amortization
// contract: one dataset serves many verified queries of different kinds,
// ingestion continues between queries, and nothing is re-streamed into
// the prover.
func TestDatasetIngestOnceProveMany(t *testing.T) {
	f := sip.Mersenne()
	const u = 1 << 10
	rng := sip.NewSeededRNG(2024)
	var ups []sip.Update
	for i := 0; i < 4096; i++ {
		ups = append(ups, sip.Update{Index: rng.Uint64() % u, Delta: 1})
	}

	ds, err := sip.NewDataset(f, u, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	snap := ds.Snapshot()

	// Several queries of different kinds against the same snapshot.
	f2proto, err := sip.NewSelfJoinSize(f, u)
	if err != nil {
		t.Fatal(err)
	}
	hhproto, err := sip.NewHeavyHitters(f, u)
	if err != nil {
		t.Fatal(err)
	}
	f2v := f2proto.NewVerifier(sip.NewSeededRNG(1))
	hhv := hhproto.NewVerifier(sip.NewSeededRNG(2))
	for _, up := range ups {
		if err := f2v.Observe(up); err != nil {
			t.Fatal(err)
		}
		if err := hhv.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	p, err := snap.NewProver(sip.QuerySelfJoinSize, sip.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sip.Run(p, f2v); err != nil {
		t.Fatalf("F2 rejected: %v", err)
	}
	if err := hhv.SetQuery(0.01); err != nil {
		t.Fatal(err)
	}
	hp, err := snap.NewProver(sip.QueryHeavyHitters, sip.QueryParams{Phi: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sip.Run(hp, hhv); err != nil {
		t.Fatalf("heavy hitters rejected: %v", err)
	}

	// Ingest more, snapshot again, and verify against the grown stream;
	// the old snapshot's conversation above was unaffected.
	extra := []sip.Update{{Index: 7, Delta: 3}, {Index: 9, Delta: 1}}
	if err := ds.Ingest(extra); err != nil {
		t.Fatal(err)
	}
	all := append(append([]sip.Update(nil), ups...), extra...)
	v2 := f2proto.NewVerifier(sip.NewSeededRNG(3))
	for _, up := range all {
		if err := v2.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	p2, err := ds.Snapshot().NewProver(sip.QuerySelfJoinSize, sip.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sip.Run(p2, v2); err != nil {
		t.Fatalf("F2 after further ingestion rejected: %v", err)
	}
}

// TestEngineNamedDatasets: the registry is create-or-attach.
func TestEngineNamedDatasets(t *testing.T) {
	eng := sip.NewEngine(sip.Mersenne(), 0)
	a, err := eng.Open("clickstream", 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Ingest([]sip.Update{{Index: 1, Delta: 2}}); err != nil {
		t.Fatal(err)
	}
	b, err := eng.Open("clickstream", 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if b.Updates() != 1 {
		t.Fatalf("attached dataset has %d updates, want 1", b.Updates())
	}
	if _, err := eng.Open("clickstream", 1<<13); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}

// TestEngineDurableBudgeted drives the public durability surface: a
// budget below the working set forces LRU eviction to the data dir,
// queries against evicted datasets still verify, admission past the
// budget fails with the typed sip.ErrBudget, and a fresh engine over
// the same dir recovers everything.
func TestEngineDurableBudgeted(t *testing.T) {
	f := sip.Mersenne()
	const u = 1 << 9 // pads to itself: one dataset = 512*16 resident bytes
	dir := t.TempDir()

	eng := sip.NewEngine(f, 0)
	if err := eng.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	eng.SetBudget(512 * 16)

	rng := sip.NewSeededRNG(7)
	var ups []sip.Update
	for i := 0; i < 2000; i++ {
		ups = append(ups, sip.Update{Index: rng.Uint64() % u, Delta: 1})
	}
	proto, err := sip.NewSelfJoinSize(f, u)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(sip.NewSeededRNG(8))
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}

	a, err := eng.Open("a", u)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Open("b", u); err != nil { // evicts "a"
		t.Fatal(err)
	}
	if a.Resident() {
		t.Fatal("a still resident past the budget")
	}
	snap, err := a.SnapshotErr() // transparent rehydration
	if err != nil {
		t.Fatal(err)
	}
	p, err := snap.NewProver(sip.QuerySelfJoinSize, sip.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sip.Run(p, v); err != nil {
		t.Fatalf("F2 against a rehydrated dataset rejected: %v", err)
	}

	// The budget is Σ across the engine, not per dataset: a third
	// admission succeeds only by evicting, and with eviction disabled
	// (no data dir) it would fail — exercise the typed error via a
	// second, memory-only engine.
	mem := sip.NewEngine(f, 0)
	mem.SetBudget(512 * 16)
	if _, err := mem.Open("one", u); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Open("two", u); !errors.Is(err, sip.ErrBudget) {
		t.Fatalf("over-budget open = %v, want sip.ErrBudget", err)
	}

	// Restart: recover both datasets from disk.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2 := sip.NewEngine(f, 0)
	if err := eng2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	n, err := eng2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d datasets, want 2", n)
	}
	a2, ok := eng2.Get("a")
	if !ok {
		t.Fatal("dataset a missing after recovery")
	}
	if a2.Updates() != uint64(len(ups)) {
		t.Fatalf("a recovered with %d updates, want %d", a2.Updates(), len(ups))
	}
}

package sip_test

import (
	"errors"
	"testing"

	"repro/internal/stream"
	"repro/sip"
)

func TestVerifySelfJoinSize(t *testing.T) {
	const u = 1 << 10
	rng := sip.NewSeededRNG(1)
	ups := stream.UniformDeltas(u, 100, sip.NewSeededRNG(2))
	got, stats, err := sip.VerifySelfJoinSize(sip.Mersenne(), u, ups, rng)
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	a, _ := stream.Apply(ups, u)
	var want uint64
	for _, v := range a {
		want += uint64(v) * uint64(v)
	}
	if uint64(got) != want {
		t.Fatalf("F2 = %d, want %d", got, want)
	}
	if stats.CommBytes() > 1024 {
		t.Errorf("F2 communication %d bytes exceeds the paper's <1KB claim", stats.CommBytes())
	}
}

func TestVerifyRangeSum(t *testing.T) {
	const u = 1 << 12
	pairs, err := stream.DistinctKV(u, 300, 1000, sip.NewSeededRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	ups := stream.KVUpdates(pairs)
	got, _, err := sip.VerifyRangeSum(sip.Mersenne(), u, ups, 1000, 3000, sip.NewSeededRNG(4))
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	var want int64
	for _, p := range pairs {
		if p.Key >= 1000 && p.Key <= 3000 {
			want += int64(p.Value)
		}
	}
	if got != want {
		t.Fatalf("range sum = %d, want %d", got, want)
	}
}

func TestVerifyRangeQuery(t *testing.T) {
	const u = 1 << 8
	ups := []sip.Update{{Index: 10, Delta: 2}, {Index: 20, Delta: 1}, {Index: 200, Delta: 5}}
	entries, _, err := sip.VerifyRangeQuery(sip.Mersenne(), u, ups, 5, 100, sip.NewSeededRNG(5))
	if err != nil {
		t.Fatalf("rejected: %v", err)
	}
	if len(entries) != 2 || entries[0] != (sip.Entry{Index: 10, Value: 2}) || entries[1] != (sip.Entry{Index: 20, Value: 1}) {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestVerifyHeavyHittersAndF0(t *testing.T) {
	const u = 1 << 9
	ups, err := stream.Zipf(u, 5000, 1.3, sip.NewSeededRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	hh, _, err := sip.VerifyHeavyHitters(sip.Mersenne(), u, ups, 0.05, sip.NewSeededRNG(7))
	if err != nil {
		t.Fatalf("HH rejected: %v", err)
	}
	if len(hh) == 0 {
		t.Fatal("zipf(1.3) produced no heavy hitters at φ=0.05")
	}
	f0, _, err := sip.VerifyF0(sip.Mersenne(), u, ups, sip.NewSeededRNG(8))
	if err != nil {
		t.Fatalf("F0 rejected: %v", err)
	}
	a, _ := stream.Apply(ups, u)
	var want sip.Elem
	for _, c := range a {
		if c != 0 {
			want++
		}
	}
	if f0 != want {
		t.Fatalf("F0 = %d, want %d", f0, want)
	}
}

// TestDictionaryWorkflow exercises the motivating key-value store example
// end to end through the public API.
func TestDictionaryWorkflow(t *testing.T) {
	const u = 1 << 10
	proto, err := sip.NewDictionary(sip.Mersenne(), u)
	if err != nil {
		t.Fatal(err)
	}
	puts := []sip.KVPair{{Key: 42, Value: 7}, {Key: 100, Value: 0}, {Key: 999, Value: 123}}
	var ups []sip.Update
	for _, kv := range puts {
		up, err := proto.PutUpdate(kv.Key, kv.Value)
		if err != nil {
			t.Fatal(err)
		}
		ups = append(ups, up)
	}
	for _, q := range []struct {
		key   uint64
		want  uint64
		found bool
	}{{42, 7, true}, {100, 0, true}, {999, 123, true}, {43, 0, false}} {
		v := proto.NewVerifier(sip.NewSeededRNG(9))
		p := proto.NewProver()
		for _, up := range ups {
			if err := v.Observe(up); err != nil {
				t.Fatal(err)
			}
			if err := p.Observe(up); err != nil {
				t.Fatal(err)
			}
		}
		if err := v.SetQuery(q.key); err != nil {
			t.Fatal(err)
		}
		if err := p.SetQuery(q.key); err != nil {
			t.Fatal(err)
		}
		if _, err := sip.Run(p, v); err != nil {
			t.Fatalf("get(%d) rejected: %v", q.key, err)
		}
		val, found, err := v.Value()
		if err != nil {
			t.Fatal(err)
		}
		if val != q.want || found != q.found {
			t.Fatalf("get(%d) = (%d,%v), want (%d,%v)", q.key, val, found, q.want, q.found)
		}
	}
}

// TestTamperThroughFacade: the robustness experiment is reachable through
// the public API.
func TestTamperThroughFacade(t *testing.T) {
	const u = 256
	proto, err := sip.NewSelfJoinSize(sip.Mersenne(), u)
	if err != nil {
		t.Fatal(err)
	}
	ups := stream.UniformDeltas(u, 10, sip.NewSeededRNG(10))
	v := proto.NewVerifier(sip.NewSeededRNG(11))
	p := proto.NewProver()
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
		if err := p.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	tp := &sip.TamperedProver{P: p, T: func(r int, m sip.Msg) sip.Msg {
		if r == 1 && len(m.Elems) > 0 {
			m.Elems[0]++
		}
		return m
	}}
	if _, err := sip.Run(tp, v); !errors.Is(err, sip.ErrRejected) {
		t.Fatalf("tampered run not rejected: %v", err)
	}
}

func TestFieldHelpers(t *testing.T) {
	f, err := sip.FieldForUniverse(1000)
	if err != nil {
		t.Fatal(err)
	}
	if f.Modulus() < 1000 || f.Modulus() > 2000 {
		t.Errorf("FieldForUniverse(1000) modulus %d outside [1000,2000]", f.Modulus())
	}
	if _, err := sip.NewField(15); err == nil {
		t.Error("composite modulus accepted")
	}
	if sip.Mersenne().Modulus() != (1<<61)-1 {
		t.Error("Mersenne modulus wrong")
	}
	// Both RNG kinds satisfy the interface and produce values.
	var rngs []sip.RNG = []sip.RNG{sip.NewSeededRNG(1), sip.NewCryptoRNG()}
	for _, r := range rngs {
		_ = r.Uint64()
	}
}

// TestVerifyProofFacade: generate a proof through the engine facade,
// round-trip it through the codec, and verify it offline with a
// verifier built from the binding's deterministic challenge stream.
func TestVerifyProofFacade(t *testing.T) {
	const u = 1 << 9
	f := sip.Mersenne()
	ups := stream.UniformDeltas(u, 80, sip.NewSeededRNG(21))
	ds, err := sip.NewDataset(f, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	pf, err := ds.Snapshot().GenerateProof(sip.QuerySelfJoinSize, sip.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err = sip.DecodeProof(pf.Encode())
	if err != nil {
		t.Fatal(err)
	}
	v, err := sip.NewQueryVerifier(f, u, sip.QuerySelfJoinSize, sip.QueryParams{}, pf.Binding.RNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := sip.VerifyProof(pf, v); err != nil {
		t.Fatalf("offline verification rejected: %v", err)
	}
	// Tampering with a recorded message must fail.
	pf.Messages[0].Elems[0]++
	v2, err := sip.NewQueryVerifier(f, u, sip.QuerySelfJoinSize, sip.QueryParams{}, pf.Binding.RNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range ups {
		if err := v2.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := sip.VerifyProof(pf, v2); err == nil {
		t.Fatal("tampered proof accepted")
	}
}

package sip_test

import (
	"testing"

	"repro/sip"
)

// TestParallelProverPublicAPI exercises the Workers knob exactly as a
// library user would: same stream, serial and parallel provers, identical
// verified results.
func TestParallelProverPublicAPI(t *testing.T) {
	const u = 1 << 12
	f := sip.Mersenne()
	ups := make([]sip.Update, 0, u)
	rng := sip.NewSeededRNG(123)
	for i := uint64(0); i < u; i++ {
		ups = append(ups, sip.Update{Index: i, Delta: int64(rng.Uint64() % 1000)})
	}

	results := make([]sip.Elem, 0, 3)
	for _, workers := range []int{0, 4, -1} {
		proto, err := sip.NewSelfJoinSize(f, u)
		if err != nil {
			t.Fatal(err)
		}
		proto.Workers = workers
		v := proto.NewVerifier(sip.NewSeededRNG(456))
		p := proto.NewProver()
		for _, up := range ups {
			if err := v.Observe(up); err != nil {
				t.Fatal(err)
			}
			if err := p.Observe(up); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sip.Run(p, v); err != nil {
			t.Fatalf("workers=%d: rejected: %v", workers, err)
		}
		res, err := v.Result()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if results[0] != results[1] || results[0] != results[2] {
		t.Fatalf("results differ across worker counts: %v", results)
	}
}

// Package sip is the public API of this repository: streaming interactive
// proofs for outsourced data, reproducing Cormode, Thaler & Yi,
// "Verifying Computations with Streaming Interactive Proofs" (VLDB 2011).
//
// The model: a space-limited verifier (the data owner) and an untrusted
// prover (the cloud) both observe a stream of (index, delta) updates to an
// implicit vector a of length u. The verifier keeps only O(log u) words.
// After the stream, the two run a short interactive protocol through which
// the prover convinces the verifier of the exact answer to a query that
// would require Ω(u) space to answer unaided. A correct prover is always
// accepted; any cheating prover is rejected except with probability
// ~log(u)/p (≈10⁻¹⁶ for the default field, p = 2⁶¹−1).
//
// Supported queries (paper section in parentheses):
//
//	SELF-JOIN SIZE / F2, frequency moments Fk   (§3.1, §3.2)
//	INNER PRODUCT / join size, RANGE-SUM        (§3.2)
//	SUB-VECTOR, RANGE QUERY, INDEX, DICTIONARY,
//	PREDECESSOR, SUCCESSOR                      (§4)
//	HEAVY HITTERS, k-LARGEST                    (§6.1)
//	F0, inverse distribution, Fmax              (§6.2)
//	CIRCUIT: GKR over layered arithmetic
//	circuits — F2 cross-check, COUNT,
//	MATMUL (verified matrix product)            (§3 Remarks, Thm. 3, App. A)
//
// Typical use:
//
//	proto, _ := sip.NewSelfJoinSize(sip.Mersenne(), 1<<20)
//	proto.Workers = -1            // prover uses every core (optional)
//	v := proto.NewVerifier(rng)   // data owner: O(log u) space
//	p := proto.NewProver()        // cloud: stores the data
//	for _, up := range updates {
//	    v.Observe(up)
//	    p.Observe(up)
//	}
//	stats, err := sip.Run(p, v)   // interactive verification
//	f2, _ := v.Result()
//
// # Parallel proving
//
// The prover is the expensive party (Θ(u log u)-ish field work for the
// multi-round protocols, Θ(u^{3/2}) one-round), and its table scans are
// embarrassingly parallel. Every protocol struct carries a Workers field:
// 0 (default) proves serially, n > 0 fans each scan out across n
// goroutines, and -1 selects runtime.NumCPU(). Because all arithmetic is
// exact field arithmetic combined in deterministic chunk order, the
// transcript — every message, every claim — is bit-identical for every
// worker count; only wall-clock time changes. The verifier's costs are
// already logarithmic and are unaffected.
//
// # Persistent datasets: ingest once, prove many
//
// The session API above rebuilds prover state per conversation. A
// Dataset instead maintains that state across queries — the paper's
// actual deployment, where the cloud holds the data and answers a whole
// workload over it:
//
//	ds, _ := sip.NewDataset(sip.Mersenne(), 1<<20, -1)
//	ds.Ingest(batch)                        // once per batch, not per query
//	snap := ds.Snapshot()                   // O(1), immutable view
//	p, _ := snap.NewProver(sip.QuerySelfJoinSize, sip.QueryParams{})
//	stats, err := sip.Run(p, v)             // v observed the same stream
//
// Every later query skips the Θ(stream) rebuild: provers are constructed
// from the maintained tables with transcripts bit-identical to the
// streaming path. Ingestion can continue between queries — snapshots are
// copy-on-write, so in-flight conversations never observe a torn state.
// An Engine names datasets so many connections (see internal/wire's v2
// protocol, cmd/sipserver and cmd/sipclient) share them.
//
// Over the wire, conversations are multiplexed: each query runs on its
// own channel of the connection in its own server goroutine against its
// own snapshot (wire.Client.QueryAsync, or plain Query from many
// goroutines), so one slow proof never serializes the cheap ones and
// ingestion keeps flowing between conversation frames —
// examples/concurrentqueries and sipclient -concurrency demonstrate
// the regime, and transcripts stay bit-identical to serial runs.
//
// # Durability and memory governance
//
// The prover carries the O(u) state in this protocol family, so a
// long-lived multi-tenant engine must govern that state explicitly. An
// Engine can be given a data directory and a memory budget:
//
//	eng := sip.NewEngine(sip.Mersenne(), -1)
//	eng.SetDataDir("/var/lib/sip")      // enables checkpoints + eviction
//	eng.SetBudget(1 << 30)              // Σ resident table bytes across datasets
//	eng.StartCheckpointer(30 * time.Second)
//	defer eng.Close()                   // stop + final flush: loss-free shutdown
//	n, _ := eng.Recover()               // after a restart: reload every dataset
//
// Admission control at Open (and at rehydration) keeps resident tables
// under the budget by evicting least-recently-used datasets: each one
// checkpoints to the data dir (a versioned, checksummed, atomically
// renamed file), frees its tables, and rehydrates transparently on its
// next use — query transcripts are bit-identical across an
// evict/rehydrate cycle. When eviction cannot make room, admission
// fails with ErrBudget. Persist checkpoints dirty datasets on demand;
// StartCheckpointer does it on an interval, bounding crash loss to that
// interval; Recover rebuilds the registry from the data dir after a
// restart, so no stream is ever re-ingested.
//
// Every dataset carries its own residency latch, so the checkpoint I/O
// of one dataset's eviction or rehydration never blocks operations on
// any other — a fleet of datasets thrashing through a tight budget
// overlaps its transitions instead of queueing them behind one lock.
// The budget also governs state outside the registry:
// Engine.AdmitBytes / Engine.ReleaseBytes reserve and return budget
// bytes for caller-managed tables (the wire server charges every v1
// private dataset this way for the connection's lifetime).
//
// For production the verifier's randomness must come from
// sip.NewCryptoRNG(); deterministic seeds are for tests and experiments.
package sip

import (
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/fs"
	"repro/internal/gkr"
	"repro/internal/stream"
)

// Field is a prime field Z_p; all protocol checks are Schwartz–Zippel
// identity tests over it.
type Field = field.Field

// Elem is a field element.
type Elem = field.Elem

// RNG is the verifier's randomness source.
type RNG = field.RNG

// Update is one stream element: a_Index += Delta.
type Update = stream.Update

// KVPair is a key–value association for dictionary-style workloads.
type KVPair = stream.KVPair

// Stats is the cost accounting of one protocol run (rounds and words).
type Stats = core.Stats

// Msg is a protocol message (exposed for custom transports).
type Msg = core.Msg

// ProverSession and VerifierSession are the conversation state machines;
// all protocols implement them, and custom transports drive them.
type (
	ProverSession   = core.ProverSession
	VerifierSession = core.VerifierSession
)

// Entry is a reported sub-vector entry.
type Entry = core.Entry

// HeavyHitter is a verified heavy item.
type HeavyHitter = core.HeavyHitter

// Tamperer mutates prover messages (for robustness experiments).
type Tamperer = core.Tamperer

// TamperedProver wraps a prover session with a Tamperer.
type TamperedProver = core.TamperedProver

// ErrRejected is returned (wrapped) whenever a verifier refuses a proof.
var ErrRejected = core.ErrRejected

// ErrBudget is returned (wrapped) when admitting a dataset's tables —
// or an AdmitBytes reservation, such as the wire server makes for each
// v1 private dataset — would exceed the engine's memory budget
// (Engine.SetBudget) and evicting least-recently-used datasets could
// not make room.
var ErrBudget = engine.ErrBudget

// Mersenne returns the default field Z_p with p = 2^61 - 1, the modulus
// used throughout the paper's experiments.
func Mersenne() Field { return field.Mersenne() }

// NewField returns Z_p for a caller-chosen prime p < 2^62.
func NewField(p uint64) (Field, error) { return field.New(p) }

// FieldForUniverse returns a field with u ≤ p ≤ 2u (the paper's minimal
// parameterization via Bertrand's postulate).
func FieldForUniverse(u uint64) (Field, error) { return field.ForUniverse(u) }

// NewSeededRNG returns a deterministic generator for reproducible
// experiments. Do not use for real verification.
func NewSeededRNG(seed uint64) RNG { return field.NewSplitMix64(seed) }

// NewCryptoRNG returns a cryptographically secure generator; protocol
// soundness against a real adversary requires it.
func NewCryptoRNG() RNG { return field.CryptoRNG{} }

// Run drives a complete local conversation between a prover and a
// verifier session. A nil error means the verifier accepted.
func Run(p ProverSession, v VerifierSession) (Stats, error) { return core.Run(p, v) }

// ---------------------------------------------------------------------
// Persistent dataset engine

// Engine is a registry of named datasets — the multi-tenant state of a
// prover service.
type Engine = engine.Engine

// Dataset is a persistently maintained frequency vector: ingest updates
// once, construct provers for any number of queries from snapshots.
type Dataset = engine.Dataset

// Snapshot is an immutable view of a dataset at one ingestion epoch.
type Snapshot = engine.Snapshot

// QueryKind selects which query a snapshot prover answers.
type QueryKind = engine.QueryKind

// QueryParams carries the per-kind query parameters.
type QueryParams = engine.QueryParams

// The query kinds a dataset answers.
const (
	QuerySelfJoinSize = engine.QuerySelfJoinSize
	QueryFk           = engine.QueryFk
	QueryRangeSum     = engine.QueryRangeSum
	QueryRangeQuery   = engine.QueryRangeQuery
	QueryIndex        = engine.QueryIndex
	QueryDictionary   = engine.QueryDictionary
	QueryPredecessor  = engine.QueryPredecessor
	QuerySuccessor    = engine.QuerySuccessor
	QueryKLargest     = engine.QueryKLargest
	QueryHeavyHitters = engine.QueryHeavyHitters
	QueryF0           = engine.QueryF0
	QueryFmax         = engine.QueryFmax
	QueryCircuit      = engine.QueryCircuit
)

// ---------------------------------------------------------------------
// Non-interactive replay (Fiat–Shamir proof cache)
//
// Interactive conversations cost the server one prover run per
// verifier. The replay layer instead posts ONE proof per
// (dataset, version, query): the verifier's challenges are derived
// deterministically from a transcript hash over the proof's binding
// (field modulus, universe, dataset name, dataset version, query), so
// any client that agrees on the binding re-derives the same challenges,
// replays the recorded conversation through its own verifier session,
// and accepts or rejects offline. The wire server caches these proofs
// (wire.Server.ProofCacheBudget, internal/proofcache) and serves k
// concurrent verifiers of one query with one prover run
// (wire.Client.FetchProof / QueryCached, sipclient -cached). See
// DESIGN.md, "Transcript-hash schedule", for the absorption order and
// the soundness model.
//
// SOUNDNESS CAVEAT — data must be committed first. The streaming
// verifier samples all of its randomness up front, so the Fiat–Shamir
// challenges here depend only on the public binding, not on the data or
// the prover's messages, and the dataset version is a predictable
// counter. A party that can choose what to ingest AFTER computing the
// next version's challenge point could craft data that fools that
// point. Replay proofs are therefore sound only in the model where
// ingestion is committed before the proof at that version exists — the
// engine enforces the version bump on ingest, but nothing in this API
// can verify that the data itself was not chosen adversarially against
// a precomputed challenge. Deployments where the data source is
// untrusted should keep using interactive queries with a secret
// CryptoRNG (Query/NewQueryVerifier), whose challenges the prover never
// learns in advance.

// Proof is one recorded Fiat–Shamir conversation: binding, prover
// messages, transcript digest.
type Proof = fs.Proof

// ProofBinding names what a proof commits to; both ends derive the
// verifier's challenge randomness from it (ProofBinding.RNG).
type ProofBinding = fs.Binding

// ProofQuery is the canonical query descriptor inside a binding.
type ProofQuery = fs.Query

// StreamVerifier is a verifier session that also observes stream
// updates — what a client keeps for offline proof verification.
type StreamVerifier = engine.StreamVerifier

// NewQueryVerifier returns the streaming verifier session for one query
// kind over [0, u) with no observed state. For offline verification,
// build it with the proof binding's RNG, Observe your own copy of the
// stream, then call VerifyProof.
func NewQueryVerifier(f Field, u uint64, kind QueryKind, params QueryParams, rng RNG) (StreamVerifier, error) {
	return engine.NewStreamVerifier(f, u, kind, params, rng)
}

// DecodeProof parses an encoded proof, rejecting malformed input.
func DecodeProof(b []byte) (*Proof, error) { return fs.DecodeProof(b) }

// VerifyProof replays a posted proof against v, which must have been
// built from pf.Binding.RNG() and observed the client's own view of the
// stream. A nil error certifies the recorded answer against the
// client's fingerprint at the proof's dataset version; any flipped bit
// in the proof fails.
func VerifyProof(pf *Proof, v VerifierSession) error { return pf.Binding.Verify(pf, v) }

// ---------------------------------------------------------------------
// GKR / circuit workload (Theorem 3, Appendix A)
//
// The CIRCUIT query runs the paper's general-purpose construction: any
// layered arithmetic circuit over the dataset's frequency vector,
// verified layer by layer with a streaming verifier that keeps O(log u)
// words per layer. Circuits come from a registry of named families;
// select one by name (and optional argument) in QueryParams.Circuit /
// QueryParams.A — locally via Snapshot.NewProver, or over the wire where
// the name travels in the query frame.

// CircuitSpec names a circuit family and its argument (for MATMUL, the
// matrix dimension n; 0 selects a default spanning the universe).
type CircuitSpec = circuit.Spec

// The built-in circuit families.
const (
	CircuitF2     = circuit.FamilyF2     // Σ a_i² via squaring + sum tree (cross-checks the native F2 protocol)
	CircuitCount  = circuit.FamilyCount  // Σ a_i via a binary add tree
	CircuitMatMul = circuit.FamilyMatMul // C = A·A for the n×n matrix read row-major from the vector
)

// CircuitFamilies lists the registered circuit family names, sorted.
func CircuitFamilies() []string { return circuit.Families() }

// ErrUnknownCircuit is returned (wrapped) when a CircuitSpec names no
// registered family.
var ErrUnknownCircuit = circuit.ErrUnknownFamily

// CircuitVerifier is the verifier session for a CIRCUIT query: observe
// the stream, then drive it against a prover with Run (or hand it to
// the wire client). After acceptance, Outputs returns the verified
// output vector of the circuit.
type CircuitVerifier = gkr.VerifierSession

// NewCircuitVerifier returns the streaming verifier for one circuit
// family over [0, u). It keeps O(log² u) words and must observe the
// same stream as the dataset it queries.
func NewCircuitVerifier(f Field, spec CircuitSpec, u uint64, rng RNG) (*CircuitVerifier, error) {
	return gkr.NewVerifierFor(f, spec, u, rng)
}

// NewEngine returns an empty dataset registry. workers is the prover
// fan-out handed to every dataset (0 serial, -1 all cores). The engine
// starts memory-only and unbudgeted; see Engine.SetDataDir,
// Engine.SetBudget, Engine.Persist, Engine.StartCheckpointer,
// Engine.Recover, and Engine.Close for durability and governance.
func NewEngine(f Field, workers int) *Engine { return engine.New(f, workers) }

// NewDataset returns a standalone dataset over a universe of size ≥ u.
func NewDataset(f Field, u uint64, workers int) (*Dataset, error) {
	return engine.NewDataset(f, u, workers)
}

// ---------------------------------------------------------------------
// Protocol constructors (aliases into internal/core)

// Fk is the frequency-moment protocol (F2 = SELF-JOIN SIZE).
type Fk = core.Fk

// InnerProduct is the two-stream join-size protocol.
type InnerProduct = core.InnerProduct

// RangeSum is the keyed range-aggregation protocol.
type RangeSum = core.RangeSum

// SubVector is the reporting-query workhorse (RANGE QUERY et al.).
type SubVector = core.SubVector

// Index, Dictionary, Predecessor, Successor and KLargest specialize
// SubVector per §4.2 and §6.1.
type (
	Index       = core.Index
	Dictionary  = core.Dictionary
	Predecessor = core.Predecessor
	Successor   = core.Successor
	KLargest    = core.KLargest
)

// HeavyHitters is the §6.1 protocol.
type HeavyHitters = core.HeavyHitters

// FrequencyBased is the §6.2 protocol family; Fmax composes it with an
// INDEX witness.
type (
	FrequencyBased = core.FrequencyBased
	Fmax           = core.Fmax
)

// NewSelfJoinSize returns the SELF-JOIN SIZE (F2) protocol over [0, u).
func NewSelfJoinSize(f Field, u uint64) (*Fk, error) { return core.NewSelfJoinSize(f, u) }

// NewFk returns the k-th frequency moment protocol over [0, u).
func NewFk(f Field, u uint64, k int) (*Fk, error) { return core.NewFk(f, u, k) }

// NewInnerProduct returns the INNER PRODUCT protocol over [0, u).
func NewInnerProduct(f Field, u uint64) (*InnerProduct, error) { return core.NewInnerProduct(f, u) }

// NewRangeSum returns the RANGE-SUM protocol over [0, u).
func NewRangeSum(f Field, u uint64) (*RangeSum, error) { return core.NewRangeSum(f, u) }

// NewSubVector returns the SUB-VECTOR protocol over [0, u).
func NewSubVector(f Field, u uint64) (*SubVector, error) { return core.NewSubVector(f, u) }

// NewRangeQuery returns the RANGE QUERY protocol over [0, u).
func NewRangeQuery(f Field, u uint64) (*SubVector, error) { return core.NewRangeQuery(f, u) }

// NewIndex returns the INDEX protocol over [0, u).
func NewIndex(f Field, u uint64) (*Index, error) { return core.NewIndex(f, u) }

// NewDictionary returns the verified key-value store protocol over [0, u).
func NewDictionary(f Field, u uint64) (*Dictionary, error) { return core.NewDictionary(f, u) }

// NewPredecessor returns the PREDECESSOR protocol over [0, u).
func NewPredecessor(f Field, u uint64) (*Predecessor, error) { return core.NewPredecessor(f, u) }

// NewSuccessor returns the SUCCESSOR protocol over [0, u).
func NewSuccessor(f Field, u uint64) (*Successor, error) { return core.NewSuccessor(f, u) }

// NewKLargest returns the k-th largest protocol over [0, u).
func NewKLargest(f Field, u uint64) (*KLargest, error) { return core.NewKLargest(f, u) }

// NewHeavyHitters returns the φ-heavy-hitters protocol over [0, u).
func NewHeavyHitters(f Field, u uint64) (*HeavyHitters, error) { return core.NewHeavyHitters(f, u) }

// NewF0 returns the distinct-count protocol over [0, u); phi = 0 selects
// the paper's default φ = u^{-1/2}.
func NewF0(f Field, u uint64, phi float64) (*FrequencyBased, error) { return core.NewF0(f, u, phi) }

// NewInverseDistribution returns the "how many items occur exactly k
// times" protocol over [0, u).
func NewInverseDistribution(f Field, u uint64, phi float64, k int64) (*FrequencyBased, error) {
	return core.NewInverseDistribution(f, u, phi, k)
}

// NewFrequencyBased returns the generic Σ h(a_i) protocol over [0, u).
func NewFrequencyBased(f Field, u uint64, phi float64, h func(int64) Elem) (*FrequencyBased, error) {
	return core.NewFrequencyBased(f, u, phi, h)
}

// NewFmax returns the maximum-frequency protocol over [0, u).
func NewFmax(f Field, u uint64, phi float64) (*Fmax, error) { return core.NewFmax(f, u, phi) }

// MultiFk is the §7 "Multiple Queries" direct-sum batch: several
// frequency-moment queries verified in one conversation sharing a single
// random point and challenge schedule.
type MultiFk = core.MultiFk

// NewMultiFk returns a batch protocol with one slot per entry of ks.
func NewMultiFk(f Field, u uint64, ks []int) (*MultiFk, error) { return core.NewMultiFk(f, u, ks) }

// ---------------------------------------------------------------------
// One-call conveniences
//
// These run the full lifecycle (stream → conversation) locally. They are
// the quickest way to use the library when prover and verifier live in
// the same process; for genuinely outsourced data use the session API
// with the wire transport in cmd/sipserver and cmd/sipclient.

// VerifySelfJoinSize streams updates into both parties and verifies F2.
func VerifySelfJoinSize(f Field, u uint64, updates []Update, rng RNG) (Elem, Stats, error) {
	proto, err := NewSelfJoinSize(f, u)
	if err != nil {
		return 0, Stats{}, err
	}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	for _, up := range updates {
		if err := v.Observe(up); err != nil {
			return 0, Stats{}, err
		}
		if err := p.Observe(up); err != nil {
			return 0, Stats{}, err
		}
	}
	stats, err := Run(p, v)
	if err != nil {
		return 0, stats, err
	}
	res, err := v.Result()
	return res, stats, err
}

// VerifyRangeSum streams key-value updates and verifies the sum over
// [qL, qR], returned as a signed integer.
func VerifyRangeSum(f Field, u uint64, updates []Update, qL, qR uint64, rng RNG) (int64, Stats, error) {
	proto, err := NewRangeSum(f, u)
	if err != nil {
		return 0, Stats{}, err
	}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	for _, up := range updates {
		if err := v.Observe(up); err != nil {
			return 0, Stats{}, err
		}
		if err := p.Observe(up); err != nil {
			return 0, Stats{}, err
		}
	}
	if err := v.SetQuery(qL, qR); err != nil {
		return 0, Stats{}, err
	}
	if err := p.SetQuery(qL, qR); err != nil {
		return 0, Stats{}, err
	}
	stats, err := Run(p, v)
	if err != nil {
		return 0, stats, err
	}
	res, err := v.SignedResult()
	return res, stats, err
}

// VerifyRangeQuery streams updates and verifies the nonzero entries in
// [qL, qR].
func VerifyRangeQuery(f Field, u uint64, updates []Update, qL, qR uint64, rng RNG) ([]Entry, Stats, error) {
	proto, err := NewRangeQuery(f, u)
	if err != nil {
		return nil, Stats{}, err
	}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	for _, up := range updates {
		if err := v.Observe(up); err != nil {
			return nil, Stats{}, err
		}
		if err := p.Observe(up); err != nil {
			return nil, Stats{}, err
		}
	}
	if err := v.SetQuery(qL, qR); err != nil {
		return nil, Stats{}, err
	}
	if err := p.SetQuery(qL, qR); err != nil {
		return nil, Stats{}, err
	}
	stats, err := Run(p, v)
	if err != nil {
		return nil, stats, err
	}
	entries, err := v.Result()
	return entries, stats, err
}

// VerifyHeavyHitters streams updates and verifies the φ-heavy hitters.
func VerifyHeavyHitters(f Field, u uint64, updates []Update, phi float64, rng RNG) ([]HeavyHitter, Stats, error) {
	proto, err := NewHeavyHitters(f, u)
	if err != nil {
		return nil, Stats{}, err
	}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	for _, up := range updates {
		if err := v.Observe(up); err != nil {
			return nil, Stats{}, err
		}
		if err := p.Observe(up); err != nil {
			return nil, Stats{}, err
		}
	}
	if err := v.SetQuery(phi); err != nil {
		return nil, Stats{}, err
	}
	if err := p.SetQuery(phi); err != nil {
		return nil, Stats{}, err
	}
	stats, err := Run(p, v)
	if err != nil {
		return nil, stats, err
	}
	hh, _, err := v.Result()
	return hh, stats, err
}

// VerifyCircuit streams updates into a dataset and a circuit verifier,
// then verifies the named circuit's full output vector over the final
// frequency vector (e.g. CircuitMatMul: every entry of C = A·A).
func VerifyCircuit(f Field, u uint64, updates []Update, spec CircuitSpec, rng RNG) ([]Elem, Stats, error) {
	v, err := NewCircuitVerifier(f, spec, u, rng)
	if err != nil {
		return nil, Stats{}, err
	}
	ds, err := NewDataset(f, u, 0)
	if err != nil {
		return nil, Stats{}, err
	}
	for _, up := range updates {
		if err := v.Observe(up); err != nil {
			return nil, Stats{}, err
		}
	}
	if err := ds.Ingest(updates); err != nil {
		return nil, Stats{}, err
	}
	p, err := ds.Snapshot().NewProver(QueryCircuit, QueryParams{Circuit: spec.Name, A: spec.Arg})
	if err != nil {
		return nil, Stats{}, err
	}
	stats, err := Run(p, v)
	if err != nil {
		return nil, stats, err
	}
	outs, err := v.Outputs()
	return outs, stats, err
}

// VerifyF0 streams updates and verifies the number of distinct items.
func VerifyF0(f Field, u uint64, updates []Update, rng RNG) (Elem, Stats, error) {
	proto, err := NewF0(f, u, 0)
	if err != nil {
		return 0, Stats{}, err
	}
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	for _, up := range updates {
		if err := v.Observe(up); err != nil {
			return 0, Stats{}, err
		}
		if err := p.Observe(up); err != nil {
			return 0, Stats{}, err
		}
	}
	stats, err := Run(p, v)
	if err != nil {
		return 0, stats, err
	}
	res, err := v.Result()
	return res, stats, err
}

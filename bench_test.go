// Benchmarks regenerating every figure of the paper's experimental study
// (§5) plus the ablations identified in DESIGN.md. Each benchmark family
// corresponds to one figure; cmd/sipbench runs the same harness as wider
// printed sweeps.
//
// Custom metrics reported alongside ns/op:
//
//	upd/s       stream-processing or proving throughput in updates/second
//	space-B     verifier working space in bytes
//	comm-B      total conversation size in bytes
package repro_test

import (
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/ccm"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/gkr"
	"repro/internal/gkrbench"
	"repro/internal/harness"
	"repro/internal/hashtree"
	"repro/internal/lde"
	"repro/internal/merkle"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/sumcheck"
	"repro/internal/wire"
)

var f61 = field.Mersenne()

// mustUpdates builds the paper's §5 workload: u = n, counts uniform in
// [0, 1000].
func mustUpdates(u uint64, seed uint64) []stream.Update {
	return stream.UniformDeltas(u, 1000, field.NewSplitMix64(seed))
}

// ---------------------------------------------------------------------
// Figure 2(a): verifier's stream-processing time (multi-round vs
// one-round), linear in n for both, one-round slightly faster.

func BenchmarkFig2aVerifierMultiRound(b *testing.B) {
	for _, logu := range []int{14, 16, 18} {
		u := uint64(1) << logu
		b.Run(fmt.Sprintf("n=2^%d", logu), func(b *testing.B) {
			proto, err := core.NewSelfJoinSize(f61, u)
			if err != nil {
				b.Fatal(err)
			}
			ups := mustUpdates(u, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := proto.NewVerifier(field.NewSplitMix64(2))
				for _, up := range ups {
					if err := v.Observe(up); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(ups))*float64(b.N)/b.Elapsed().Seconds(), "upd/s")
		})
	}
}

func BenchmarkFig2aVerifierOneRound(b *testing.B) {
	for _, logu := range []int{14, 16, 18} {
		u := uint64(1) << logu
		b.Run(fmt.Sprintf("n=2^%d", logu), func(b *testing.B) {
			proto, err := ccm.New(f61, u)
			if err != nil {
				b.Fatal(err)
			}
			ups := mustUpdates(proto.U, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := proto.NewVerifier(field.NewSplitMix64(2))
				for _, up := range ups {
					if err := v.Observe(up.Index, up.Delta); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(ups))*float64(b.N)/b.Elapsed().Seconds(), "upd/s")
		})
	}
}

// ---------------------------------------------------------------------
// Figure 2(b): prover's proof-generation time — multi-round linear,
// one-round Θ(u^{3/2}) (the "steeper line").

func BenchmarkFig2bProverMultiRound(b *testing.B) {
	for _, logu := range []int{14, 16, 18} {
		u := uint64(1) << logu
		b.Run(fmt.Sprintf("u=2^%d", logu), func(b *testing.B) {
			proto, err := core.NewSelfJoinSize(f61, u)
			if err != nil {
				b.Fatal(err)
			}
			ups := mustUpdates(u, 1)
			v0 := proto.NewVerifier(field.NewSplitMix64(3))
			p0 := proto.NewProver()
			for _, up := range ups {
				if err := v0.Observe(up); err != nil {
					b.Fatal(err)
				}
				if err := p0.Observe(up); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Fresh verifier each round (same stream summary).
				v := proto.NewVerifier(field.NewSplitMix64(3))
				p := proto.NewProver()
				for _, up := range ups {
					_ = v.Observe(up)
					_ = p.Observe(up)
				}
				b.StartTimer()
				if _, err := core.Run(p, v); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(ups))*float64(b.N)/b.Elapsed().Seconds(), "upd/s")
		})
	}
}

func BenchmarkFig2bProverOneRound(b *testing.B) {
	for _, logu := range []int{12, 14, 16} {
		u := uint64(1) << logu
		b.Run(fmt.Sprintf("u=2^%d", logu), func(b *testing.B) {
			proto, err := ccm.New(f61, u)
			if err != nil {
				b.Fatal(err)
			}
			ups := mustUpdates(proto.U, 1)
			p := proto.NewProver()
			for _, up := range ups {
				if err := p.Observe(up.Index, up.Delta); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.Prove()
			}
			b.ReportMetric(float64(len(ups))*float64(b.N)/b.Elapsed().Seconds(), "upd/s")
		})
	}
}

// ---------------------------------------------------------------------
// Figure 2(c): verifier space and communication — Θ(log u) vs Θ(√u).

func BenchmarkFig2cSpaceComm(b *testing.B) {
	for _, logu := range []int{12, 16, 20} {
		u := uint64(1) << logu
		b.Run(fmt.Sprintf("multi-round/u=2^%d", logu), func(b *testing.B) {
			var row harness.F2Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.F2MultiRound(f61, u, 1000, 4, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.SpaceBytes), "space-B")
			b.ReportMetric(float64(row.CommBytes), "comm-B")
		})
		if logu > 16 {
			continue // one-round prover too slow beyond 2^16
		}
		b.Run(fmt.Sprintf("one-round/u=2^%d", logu), func(b *testing.B) {
			var row harness.F2Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.F2OneRound(f61, u, 1000, 4, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.SpaceBytes), "space-B")
			b.ReportMetric(float64(row.CommBytes), "comm-B")
		})
	}
}

// ---------------------------------------------------------------------
// Figure 3(a): SUB-VECTOR prover and verifier time (span 1000, as in the
// paper).

func BenchmarkFig3aSubVector(b *testing.B) {
	for _, logu := range []int{14, 16, 18} {
		u := uint64(1) << logu
		b.Run(fmt.Sprintf("u=2^%d", logu), func(b *testing.B) {
			proto, err := core.NewSubVector(f61, u)
			if err != nil {
				b.Fatal(err)
			}
			ups := mustUpdates(u, 5)
			qL := (u - 1000) / 2
			qR := qL + 999
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v := proto.NewVerifier(field.NewSplitMix64(6))
				p := proto.NewProver()
				for _, up := range ups {
					_ = v.Observe(up)
					_ = p.Observe(up)
				}
				if err := v.SetQuery(qL, qR); err != nil {
					b.Fatal(err)
				}
				if err := p.SetQuery(qL, qR); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := core.Run(p, v); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(ups))*float64(b.N)/b.Elapsed().Seconds(), "upd/s")
		})
	}
}

// ---------------------------------------------------------------------
// Figure 3(b): SUB-VECTOR space and communication — O(log u) plus the
// k reported values.

func BenchmarkFig3bSpaceComm(b *testing.B) {
	for _, logu := range []int{12, 16, 20} {
		u := uint64(1) << logu
		b.Run(fmt.Sprintf("u=2^%d", logu), func(b *testing.B) {
			var row harness.SubVectorRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.SubVectorRun(f61, u, 1000, 1000, 7, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.SpaceBytes), "space-B")
			b.ReportMetric(float64(row.CommBytes), "comm-B")
			b.ReportMetric(float64(row.CommBytes-16*row.K), "overhead-B")
		})
	}
}

// ---------------------------------------------------------------------
// Parallel prover engine: multi-round F2 proof generation with the table
// scans fanned out across a worker pool. The timed region is exactly the
// prover's work (claimed total + every round message + every fold) driven
// by a fixed challenge schedule, so serial and parallel runs do identical
// field work and emit bit-identical transcripts; only wall-clock changes.
// Expected: ≥2× speedup at log u = 18 with 4+ workers on 4+ cores.

// proveF2 runs the complete prover side for one conversation and returns
// the transcript words (for cross-checking serial vs parallel).
func proveF2(b *testing.B, cfg sumcheck.Config, table []field.Elem, challenges []field.Elem) []field.Elem {
	b.Helper()
	p, err := sumcheck.NewProver(cfg, table)
	if err != nil {
		b.Fatal(err)
	}
	out := []field.Elem{p.Total()}
	for j := 0; j < cfg.Rounds(); j++ {
		msg, err := p.RoundMessage()
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, msg...)
		if j < cfg.Rounds()-1 {
			if err := p.Fold(challenges[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
	return out
}

func BenchmarkProverF2Workers(b *testing.B) {
	const logu = 18
	params, err := lde.NewParams(2, logu)
	if err != nil {
		b.Fatal(err)
	}
	ups := mustUpdates(params.U, 15)
	a, err := stream.Apply(ups, params.U)
	if err != nil {
		b.Fatal(err)
	}
	table := make([]field.Elem, params.U)
	for i, v := range a {
		table[i] = f61.FromInt64(v)
	}
	challenges := f61.RandVec(field.NewSplitMix64(16), params.D)

	serialCfg := sumcheck.Config{Field: f61, Params: params, Combiner: sumcheck.Power{K: 2}}
	want := proveF2(b, serialCfg, table, challenges)

	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		cfg := serialCfg
		cfg.Workers = workers
		// workers=1 must be bit-identical to the serial (Workers=0) path;
		// so must every other count.
		got := proveF2(b, cfg, table, challenges)
		if len(got) != len(want) {
			b.Fatalf("workers=%d: transcript has %d words, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				b.Fatalf("workers=%d: transcript word %d = %d, serial = %d", workers, i, got[i], want[i])
			}
		}
		b.Run(fmt.Sprintf("logu=%d/workers=%d", logu, workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = proveF2(b, cfg, table, challenges)
			}
			b.ReportMetric(float64(params.U)*float64(b.N)/b.Elapsed().Seconds(), "upd/s")
		})
	}
}

// BenchmarkProverSubVectorWorkers: the §4 reporting prover (hash-tree
// levels) under the same worker sweep.
func BenchmarkProverSubVectorWorkers(b *testing.B) {
	const logu = 18
	u := uint64(1) << logu
	ups := mustUpdates(u, 17)
	qL := (u - 1000) / 2
	qR := qL + 999
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("logu=%d/workers=%d", logu, workers), func(b *testing.B) {
			proto, err := core.NewSubVector(f61, u)
			if err != nil {
				b.Fatal(err)
			}
			proto.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v := proto.NewVerifier(field.NewSplitMix64(18))
				p := proto.NewProver()
				for _, up := range ups {
					_ = v.Observe(up)
					_ = p.Observe(up)
				}
				if err := v.SetQuery(qL, qR); err != nil {
					b.Fatal(err)
				}
				if err := p.SetQuery(qL, qR); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := core.Run(p, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// §5 in-text: "The time to check the proof is essentially negligible:
// less than a millisecond across all data sizes."

func BenchmarkVerifierCheckF2(b *testing.B) {
	// Setup once: an honest transcript over u = 2^18, recorded at the
	// sum-check level so a fresh verifier costs O(1) to construct. The
	// timed region is pure proof checking.
	const logu = 18
	params, err := lde.NewParams(2, logu)
	if err != nil {
		b.Fatal(err)
	}
	ups := mustUpdates(params.U, 8)
	a, err := stream.Apply(ups, params.U)
	if err != nil {
		b.Fatal(err)
	}
	table := make([]field.Elem, params.U)
	for i, v := range a {
		table[i] = f61.FromInt64(v)
	}
	cfg := sumcheck.Config{Field: f61, Params: params, Combiner: sumcheck.Power{K: 2}}
	pt := lde.RandomPoint(f61, params, field.NewSplitMix64(9))
	val, err := lde.EvalDense(pt, table)
	if err != nil {
		b.Fatal(err)
	}
	expected := f61.Mul(val, val)
	p, err := sumcheck.NewProver(cfg, table)
	if err != nil {
		b.Fatal(err)
	}
	claim := p.Total()
	rec, err := sumcheck.NewVerifier(cfg, pt.R, claim, expected)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sumcheck.Run(p, rec, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := sumcheck.NewVerifier(cfg, pt.R, claim, expected)
		if err != nil {
			b.Fatal(err)
		}
		for _, msg := range tr.Messages {
			if err := v.Receive(msg); err != nil {
				b.Fatal(err)
			}
		}
		if !v.Accepted() {
			b.Fatal("transcript not accepted")
		}
	}
}

// ---------------------------------------------------------------------
// Ablation (§3 Remarks): native F2 vs the Theorem-3 GKR construction.

func BenchmarkAblationGKRvsNative(b *testing.B) {
	for _, logu := range []int{6, 8, 10} {
		u := uint64(1) << logu
		b.Run(fmt.Sprintf("u=2^%d", logu), func(b *testing.B) {
			var native, gkrRow gkrbench.Row
			var err error
			for i := 0; i < b.N; i++ {
				native, gkrRow, err = gkrbench.CompareF2(f61, u, 10)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(native.CommWords), "native-words")
			b.ReportMetric(float64(gkrRow.CommWords), "gkr-words")
			b.ReportMetric(float64(gkrRow.CommWords)/float64(native.CommWords), "gkr/native")
		})
	}
}

// BenchmarkGKRProverWorkers: one full CIRCUIT conversation from an
// engine snapshot, serial vs all-cores worker pool. Transcripts are
// bit-identical for every worker count (pinned by the package tests);
// only the timing moves. The verifier's stream observation runs outside
// the timer — only prover construction and the conversation are timed.
func BenchmarkGKRProverWorkers(b *testing.B) {
	const logu = 12
	u := uint64(1) << logu
	ups := stream.UniformDeltas(u, int64(4*u), field.NewSplitMix64(31))
	for _, spec := range []circuit.Spec{
		{Name: circuit.FamilyF2},
		{Name: circuit.FamilyMatMul, Arg: 64},
	} {
		for _, workers := range []int{1, runtime.NumCPU()} {
			ds, err := engine.NewDataset(f61, u, workers)
			if err != nil {
				b.Fatal(err)
			}
			if err := ds.Ingest(ups); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/workers=%d", spec.Name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					vs, err := gkr.NewVerifierFor(f61, spec, u, field.NewSplitMix64(32))
					if err != nil {
						b.Fatal(err)
					}
					for _, up := range ups {
						if err := vs.Observe(up); err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
					p, err := ds.Snapshot().NewProver(engine.QueryCircuit, engine.QueryParams{Circuit: spec.Name, A: spec.Arg})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := core.Run(p, vs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGKRSetupSnapshotVsReplay: the engine dividend for the GKR
// workload — prover construction plus full conversation with the input
// replayed per query vs borrowed from the maintained counts.
func BenchmarkGKRSetupSnapshotVsReplay(b *testing.B) {
	const logu = 12
	u := uint64(1) << logu
	for _, source := range []string{"replay", "snapshot"} {
		b.Run(fmt.Sprintf("MATMUL/%s/logu=%d", source, logu), func(b *testing.B) {
			var setup, prove float64
			for i := 0; i < b.N; i++ {
				replay, snapshot, err := gkrbench.CompareSetup(f61, u, int(8*u), -1, circuit.Spec{Name: circuit.FamilyMatMul, Arg: 64}, 17)
				if err != nil {
					b.Fatal(err)
				}
				run := replay
				if source == "snapshot" {
					run = snapshot
				}
				setup += run.Setup.Seconds()
				prove += run.Prove.Seconds()
			}
			b.ReportMetric(setup/float64(b.N)*1e9, "setup-ns")
			b.ReportMetric(prove/float64(b.N)*1e9, "prove-ns")
		})
	}
}

// ---------------------------------------------------------------------
// Ablation (§3.1 footnote 1): branching factor ℓ vs rounds/communication.

func BenchmarkAblationBranching(b *testing.B) {
	for _, ell := range []int{2, 4, 16} {
		b.Run(fmt.Sprintf("ell=%d", ell), func(b *testing.B) {
			var rows []harness.BranchingRow
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = harness.BranchingSweep(f61, 1<<12, []int{ell}, 11)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows[0].CommWords), "comm-words")
			b.ReportMetric(float64(rows[0].Rounds), "rounds")
		})
	}
}

// ---------------------------------------------------------------------
// §6.2: frequency-based functions at (log u, √u log u).

func BenchmarkFreqBasedF0(b *testing.B) {
	for _, logu := range []int{8, 10} {
		u := uint64(1) << logu
		b.Run(fmt.Sprintf("u=2^%d", logu), func(b *testing.B) {
			var row harness.F0Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = harness.F0Run(f61, u, 12, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.CommWords), "comm-words")
		})
	}
}

// ---------------------------------------------------------------------
// Substrate ablation: the algebraic streaming root (O(log u)/update,
// constant space) vs a Merkle rebuild (the prior-work baseline that
// needs the whole tree).

func BenchmarkRootMaintenance(b *testing.B) {
	const logu = 14
	params, err := hashtree.NewParams(logu)
	if err != nil {
		b.Fatal(err)
	}
	ups := mustUpdates(params.U, 13)
	b.Run("algebraic-streaming", func(b *testing.B) {
		h := hashtree.NewHasher(f61, params, hashtree.Affine, field.NewSplitMix64(14))
		ev := hashtree.NewRootEvaluator(h)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			up := ups[i%len(ups)]
			if err := ev.Update(up.Index, up.Delta); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(8*ev.SpaceWords()), "space-B")
	})
	b.Run("merkle-rebuild", func(b *testing.B) {
		a, err := stream.Apply(ups, params.U)
		if err != nil {
			b.Fatal(err)
		}
		leaves := make([][]byte, params.U)
		for i, v := range a {
			leaves[i] = []byte{byte(v), byte(v >> 8)}
		}
		b.ResetTimer()
		var tree *merkle.Tree
		for i := 0; i < b.N; i++ {
			tree, err = merkle.Build(leaves)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(32*tree.UpdateCost()), "space-B")
	})
}

// ---------------------------------------------------------------------
// Dataset-engine amortization: the per-query prover setup cost of the
// old stream-replay path versus construction from a maintained dataset
// snapshot (ingest once, prove many). The stream is 4× the universe, the
// shape of a long-lived dataset; conversation costs are identical either
// way (transcripts are bit-identical), so only setup is timed.

func amortUpdates(u uint64) []stream.Update {
	return stream.UnitIncrements(u, int(4*u), field.NewSplitMix64(77))
}

func BenchmarkProverSetupReplay(b *testing.B) {
	const logu = 18
	u := uint64(1) << logu
	ups := amortUpdates(u)
	for _, kind := range []struct {
		name string
		kind wire.QueryKind
		p    wire.QueryParams
	}{
		{"F2", wire.QuerySelfJoinSize, wire.QueryParams{}},
		{"RangeQuery", wire.QueryRangeQuery, wire.QueryParams{A: 10, B: 1000}},
		{"CircuitF2", wire.QueryCircuit, wire.QueryParams{Circuit: circuit.FamilyF2}},
	} {
		b.Run(fmt.Sprintf("%s/logu=%d", kind.name, logu), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wire.BuildProver(f61, u, kind.kind, kind.p, ups, -1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(ups))*float64(b.N)/b.Elapsed().Seconds(), "upd/s")
		})
	}
}

func BenchmarkProverSetupSnapshot(b *testing.B) {
	const logu = 18
	u := uint64(1) << logu
	ups := amortUpdates(u)
	ds, err := engine.NewDataset(f61, u, -1)
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.Ingest(ups); err != nil {
		b.Fatal(err)
	}
	for _, kind := range []struct {
		name string
		kind engine.QueryKind
		p    engine.QueryParams
	}{
		{"F2", engine.QuerySelfJoinSize, engine.QueryParams{}},
		{"RangeQuery", engine.QueryRangeQuery, engine.QueryParams{A: 10, B: 1000}},
		{"CircuitF2", engine.QueryCircuit, engine.QueryParams{Circuit: circuit.FamilyF2}},
	} {
		b.Run(fmt.Sprintf("%s/logu=%d", kind.name, logu), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ds.Snapshot().NewProver(kind.kind, kind.p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDatasetIngest: the one-time batch ingestion the snapshot path
// pays instead of per-query replay.
func BenchmarkDatasetIngest(b *testing.B) {
	const logu = 18
	u := uint64(1) << logu
	ups := amortUpdates(u)
	for _, workers := range []int{1, -1} {
		b.Run(fmt.Sprintf("logu=%d/workers=%d", logu, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds, err := engine.NewDataset(f61, u, workers)
				if err != nil {
					b.Fatal(err)
				}
				if err := ds.Ingest(ups); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(ups))*float64(b.N)/b.Elapsed().Seconds(), "upd/s")
		})
	}
}

// ---------------------------------------------------------------------
// Durable engine: checkpoint codec throughput and the latency a query
// pays when its dataset was evicted to disk (cold) versus resident
// (warm). The dataset is the amortization workload's: log u = 18,
// n = 4u unit increments.

func checkpointFixture(b *testing.B) (*engine.Snapshot, *store.Checkpoint) {
	b.Helper()
	const logu = 18
	u := uint64(1) << logu
	ds, err := engine.NewDataset(f61, u, -1)
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.Ingest(amortUpdates(u)); err != nil {
		b.Fatal(err)
	}
	snap := ds.Snapshot()
	return snap, &store.Checkpoint{
		Universe: u,
		Modulus:  f61.Modulus(),
		Total:    snap.Total(),
		Updates:  snap.Updates(),
		Counts:   snap.Counts(),
	}
}

func BenchmarkCheckpointSave(b *testing.B) {
	_, ckpt := checkpointFixture(b)
	path := filepath.Join(b.TempDir(), "ds.ckpt")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Save(path, ckpt); err != nil {
			b.Fatal(err)
		}
	}
	bytes := float64(8 * len(ckpt.Counts))
	b.ReportMetric(bytes*float64(b.N)/b.Elapsed().Seconds()/(1<<20), "MB/s")
}

func BenchmarkCheckpointLoad(b *testing.B) {
	_, ckpt := checkpointFixture(b)
	path := filepath.Join(b.TempDir(), "ds.ckpt")
	if err := store.Save(path, ckpt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Load(path, f61.Modulus()); err != nil {
			b.Fatal(err)
		}
	}
	bytes := float64(8 * len(ckpt.Counts))
	b.ReportMetric(bytes*float64(b.N)/b.Elapsed().Seconds()/(1<<20), "MB/s")
}

// BenchmarkConcurrentRehydrate: k = 4 datasets rehydrated at once, the
// fleet shape the per-dataset residency latch exists for. Eight
// datasets (4 mains + 4 decoys) share a four-dataset budget, so every
// sweep over one group forces the other to disk. "serial" issues the
// four main rehydrations one after another — the effective behavior of
// an engine whose checkpoint I/O runs under the engine lock — and
// "overlapped" issues them from four goroutines; with the latch, the
// loads and O(u) field-image rebuilds proceed outside the engine lock,
// so the overlapped wall-clock approaches 1× the single-dataset cost
// instead of 4×. Dataset workers are 0 (serial per-dataset rebuild) so
// the measured speedup isolates cross-dataset overlap. The acceptance
// bar for PR 4 is ≥1.5× serial/overlapped at log u = 18.
func BenchmarkConcurrentRehydrate(b *testing.B) {
	const (
		logu = 18
		k    = 4
	)
	u := uint64(1) << logu
	setup := func(b *testing.B) (mains, decoys [k]*engine.Dataset) {
		b.Helper()
		eng := engine.New(f61, 0)
		if err := eng.SetDataDir(b.TempDir()); err != nil {
			b.Fatal(err)
		}
		eng.SetBudget(int64(u) * 16 * k)
		ups := amortUpdates(u)
		for i := 0; i < k; i++ {
			ds, err := eng.Open(fmt.Sprintf("main%d", i), u)
			if err != nil {
				b.Fatal(err)
			}
			if err := ds.Ingest(ups); err != nil {
				b.Fatal(err)
			}
			mains[i] = ds
		}
		for i := 0; i < k; i++ {
			ds, err := eng.Open(fmt.Sprintf("decoy%d", i), u) // evicts the mains
			if err != nil {
				b.Fatal(err)
			}
			decoys[i] = ds
		}
		// One full warm-up cycle so every checkpoint is on disk and every
		// later eviction is a clean, instant one.
		for _, m := range mains {
			if _, err := m.SnapshotErr(); err != nil {
				b.Fatal(err)
			}
		}
		for _, d := range decoys {
			if _, err := d.SnapshotErr(); err != nil {
				b.Fatal(err)
			}
		}
		return mains, decoys
	}
	run := func(b *testing.B, overlap bool) {
		mains, decoys := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Sweep the decoys back in: the mains go to disk.
			for _, d := range decoys {
				if _, err := d.SnapshotErr(); err != nil {
					b.Fatal(err)
				}
			}
			for _, m := range mains {
				if m.Resident() {
					b.Fatal("main still resident after the decoy sweep")
				}
			}
			b.StartTimer()
			if overlap {
				var wg sync.WaitGroup
				for _, m := range mains {
					wg.Add(1)
					go func(m *engine.Dataset) {
						defer wg.Done()
						if _, err := m.SnapshotErr(); err != nil {
							b.Error(err)
						}
					}(m)
				}
				wg.Wait()
			} else {
				for _, m := range mains {
					if _, err := m.SnapshotErr(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "rehydrates/s")
	}
	b.Run(fmt.Sprintf("serial/logu=%d/k=%d", logu, k), func(b *testing.B) { run(b, false) })
	b.Run(fmt.Sprintf("overlapped/logu=%d/k=%d", logu, k), func(b *testing.B) { run(b, true) })
}

// ---------------------------------------------------------------------
// Multiplexed wire conversations: k query conversations overlapped on
// ONE connection versus the same k run serially, over a real loopback
// socket. Each conversation runs in its own server goroutine against
// its own snapshot, so on a multi-core runner the overlapped wall-clock
// approaches 1× the single-conversation cost instead of k×; on a 1-core
// runner parity is expected (as with BenchmarkConcurrentRehydrate).
// Before timing, the benchmark asserts the mux contract: overlapped
// transcripts are bit-identical to serial ones for every query kind ×
// server worker count exercised.

// benchRecordingVerifier records the prover messages a verifier session
// consumes, for serial-vs-overlapped transcript comparison.
type benchRecordingVerifier struct {
	inner core.VerifierSession
	msgs  []core.Msg
}

func (r *benchRecordingVerifier) record(m core.Msg) {
	r.msgs = append(r.msgs, core.Msg{
		Ints:  append([]uint64(nil), m.Ints...),
		Elems: append([]field.Elem(nil), m.Elems...),
	})
}

func (r *benchRecordingVerifier) Begin(m core.Msg) (core.Msg, bool, error) {
	r.record(m)
	return r.inner.Begin(m)
}

func (r *benchRecordingVerifier) Step(m core.Msg) (core.Msg, bool, error) {
	r.record(m)
	return r.inner.Step(m)
}

func benchSameTranscript(b *testing.B, want, got []core.Msg, context string) {
	b.Helper()
	if len(want) != len(got) {
		b.Fatalf("%s: round counts differ: %d vs %d", context, len(want), len(got))
	}
	for r := range want {
		if len(want[r].Ints) != len(got[r].Ints) || len(want[r].Elems) != len(got[r].Elems) {
			b.Fatalf("%s: round %d shapes differ", context, r)
		}
		for i := range want[r].Ints {
			if want[r].Ints[i] != got[r].Ints[i] {
				b.Fatalf("%s: round %d int %d differs", context, r, i)
			}
		}
		for i := range want[r].Elems {
			if want[r].Elems[i] != got[r].Elems[i] {
				b.Fatalf("%s: round %d elem %d differs", context, r, i)
			}
		}
	}
}

func BenchmarkMuxQueries(b *testing.B) {
	const (
		logu = 16
		k    = 4
	)
	u := uint64(1) << logu
	ups := stream.UnitIncrements(u, int(2*u), field.NewSplitMix64(91))

	// Verifier factories; one verifier per conversation (it is consumed).
	newF2V := func(seed uint64) core.VerifierSession {
		proto, err := core.NewSelfJoinSize(f61, u)
		if err != nil {
			b.Fatal(err)
		}
		v := proto.NewVerifier(field.NewSplitMix64(seed))
		if err := v.ObserveBatch(ups, runtime.NumCPU()); err != nil {
			b.Fatal(err)
		}
		return v
	}
	qL, qR := u/4, u/4+999
	newRQV := func(seed uint64) core.VerifierSession {
		proto, err := core.NewRangeQuery(f61, u)
		if err != nil {
			b.Fatal(err)
		}
		v := proto.NewVerifier(field.NewSplitMix64(seed))
		for _, up := range ups {
			if err := v.Observe(up); err != nil {
				b.Fatal(err)
			}
		}
		if err := v.SetQuery(qL, qR); err != nil {
			b.Fatal(err)
		}
		return v
	}
	kinds := []struct {
		name   string
		kind   wire.QueryKind
		params wire.QueryParams
		newV   func(uint64) core.VerifierSession
	}{
		{"F2", wire.QuerySelfJoinSize, wire.QueryParams{}, newF2V},
		{"RangeQuery", wire.QueryRangeQuery, wire.QueryParams{A: qL, B: qR}, newRQV},
	}

	start := func(workers int) (*wire.Client, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := &wire.Server{F: f61, Workers: workers}
		go func() { _ = srv.Serve(ln) }()
		cl, err := wire.Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cl.OpenDataset("bench", u); err != nil {
			b.Fatal(err)
		}
		if _, err := cl.Ingest(ups); err != nil {
			b.Fatal(err)
		}
		return cl, func() { cl.Close(); _ = srv.Close() }
	}

	// Transcript contract, per kind × worker count: the want transcripts
	// come from the serial path at workers=0 and every other combination
	// must coincide bit for bit.
	want := make([][]core.Msg, len(kinds))
	for _, workers := range []int{0, -1} {
		cl, stop := start(workers)
		// Serial.
		serial := make([][]core.Msg, len(kinds))
		for i, q := range kinds {
			rec := &benchRecordingVerifier{inner: q.newV(uint64(300 + i))}
			if _, err := cl.Query(q.kind, q.params, rec); err != nil {
				b.Fatalf("serial %s workers=%d: %v", q.name, workers, err)
			}
			serial[i] = rec.msgs
		}
		// Overlapped, same seeds.
		recs := make([]*benchRecordingVerifier, len(kinds))
		handles := make([]*wire.QueryHandle, len(kinds))
		for i, q := range kinds {
			recs[i] = &benchRecordingVerifier{inner: q.newV(uint64(300 + i))}
			h, err := cl.QueryAsync(q.kind, q.params, recs[i])
			if err != nil {
				b.Fatal(err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			if _, err := h.Wait(); err != nil {
				b.Fatalf("overlapped %s workers=%d: %v", kinds[i].name, workers, err)
			}
		}
		for i, q := range kinds {
			if workers == 0 {
				want[i] = serial[i]
			}
			benchSameTranscript(b, want[i], serial[i], fmt.Sprintf("serial %s workers=%d", q.name, workers))
			benchSameTranscript(b, want[i], recs[i].msgs, fmt.Sprintf("overlapped %s workers=%d", q.name, workers))
		}
		stop()
	}

	// Timing: k F2 conversations on one connection, serial vs overlapped.
	// Server workers = 0 so each prover is single-threaded and the only
	// parallelism is the cross-conversation overlap under test.
	cl, stop := start(0)
	defer stop()
	run := func(b *testing.B, overlap bool) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			vs := make([]core.VerifierSession, k)
			for j := range vs {
				vs[j] = newF2V(uint64(1000 + i*k + j))
			}
			b.StartTimer()
			if overlap {
				handles := make([]*wire.QueryHandle, k)
				for j, v := range vs {
					h, err := cl.QueryAsync(wire.QuerySelfJoinSize, wire.QueryParams{}, v)
					if err != nil {
						b.Fatal(err)
					}
					handles[j] = h
				}
				for _, h := range handles {
					if _, err := h.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				for _, v := range vs {
					if _, err := cl.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, v); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run(fmt.Sprintf("serial/logu=%d/k=%d", logu, k), func(b *testing.B) { run(b, false) })
	b.Run(fmt.Sprintf("overlapped/logu=%d/k=%d", logu, k), func(b *testing.B) { run(b, true) })
}

// BenchmarkRehydrateQuery: cold query setup under a one-dataset budget.
// Two datasets ping-pong through memory; every iteration rehydrates the
// evicted one from its checkpoint (evicting the other, clean, for free)
// and builds an F2 prover — the full latency an unlucky query pays.
// Compare BenchmarkProverSetupSnapshot, the warm path's ~µs setup.
func BenchmarkRehydrateQuery(b *testing.B) {
	const logu = 18
	u := uint64(1) << logu
	eng := engine.New(f61, -1)
	if err := eng.SetDataDir(b.TempDir()); err != nil {
		b.Fatal(err)
	}
	eng.SetBudget(int64(u) * 16)
	ups := amortUpdates(u)
	var pair [2]*engine.Dataset
	for i, name := range []string{"even", "odd"} {
		ds, err := eng.Open(name, u)
		if err != nil {
			b.Fatal(err)
		}
		if err := ds.Ingest(ups); err != nil {
			b.Fatal(err)
		}
		pair[i] = ds
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := pair[i%2].SnapshotErr()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := snap.NewProver(engine.QuerySelfJoinSize, engine.QueryParams{}); err != nil {
			b.Fatal(err)
		}
	}
}

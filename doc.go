// Package repro is a from-scratch Go reproduction of Cormode, Thaler &
// Yi, "Verifying Computations with Streaming Interactive Proofs"
// (PVLDB 5(1), 2011; arXiv:1109.6882).
//
// The public API lives in repro/sip; the experiment harness behind every
// figure of the paper's §5 is exercised by the benchmarks in
// bench_test.go and by cmd/sipbench. Beyond the paper's fixed query
// menu, the engine serves CIRCUIT queries — the general Theorem-3
// GKR/"Muggles" protocol over a registry of named layered-circuit
// families (F2, COUNT, MATMUL) — engine-backed, parallelized, and
// multiplexed on the wire like any other query kind. See README.md for
// a tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// the paper-vs-measured comparison.
package repro

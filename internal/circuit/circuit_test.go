package circuit

import (
	"testing"

	"repro/internal/field"
)

var f61 = field.Mersenne()

func TestF2CircuitEvaluates(t *testing.T) {
	for _, k := range []int{1, 2, 4, 6} {
		c, err := NewF2Circuit(k)
		if err != nil {
			t.Fatal(err)
		}
		rng := field.NewSplitMix64(uint64(k))
		input := make([]field.Elem, c.InputSize)
		var want field.Elem
		for i := range input {
			input[i] = f61.Reduce(rng.Uint64() % 1000)
			want = f61.Add(want, f61.Mul(input[i], input[i]))
		}
		values, err := c.Evaluate(f61, input)
		if err != nil {
			t.Fatal(err)
		}
		if got := values[0][0]; got != want {
			t.Fatalf("k=%d: F2 circuit = %d, want %d", k, got, want)
		}
		if c.VarCount(0) != 0 || c.VarCount(len(c.Layers)) != k {
			t.Fatalf("k=%d: VarCount wrong", k)
		}
	}
	if _, err := NewF2Circuit(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestEvaluateValidation(t *testing.T) {
	c, err := NewF2Circuit(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(f61, make([]field.Elem, 4)); err == nil {
		t.Error("short input accepted")
	}
}

func TestValidateRejectsBadCircuits(t *testing.T) {
	bad := []*Circuit{
		{InputSize: 4}, // no layers
		{InputSize: 3, Layers: []Layer{{Gates: []Gate{{}}}}},                  // non-power input
		{InputSize: 4, Layers: []Layer{{Gates: make([]Gate, 3)}}},             // non-power layer
		{InputSize: 4, Layers: []Layer{{Gates: []Gate{{Type: Add, In1: 9}}}}}, // wire out of range
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad circuit %d accepted", i)
		}
	}
}

// TestWiringSumsToGateCounts: summing add̃/mult̃ over all boolean (z,x,y)
// must count the add and mult gates, for both evaluators.
func TestWiringSumsToGateCounts(t *testing.T) {
	c, err := NewF2Circuit(2)
	if err != nil {
		t.Fatal(err)
	}
	for layer := range c.Layers {
		kz := c.VarCount(layer)
		kx := c.VarCount(layer + 1)
		var wantAdd, wantMul int
		for _, g := range c.Layers[layer].Gates {
			if g.Type == Add {
				wantAdd++
			} else {
				wantMul++
			}
		}
		for _, w := range []Wiring{GateWiring{C: c}, F2Wiring{K: 2}} {
			var sumAdd, sumMul field.Elem
			for z := 0; z < 1<<kz; z++ {
				for x := 0; x < 1<<kx; x++ {
					for y := 0; y < 1<<kx; y++ {
						a, m := w.Eval(f61, layer, bitsOf(z, kz), bitsOf(x, kx), bitsOf(y, kx))
						sumAdd = f61.Add(sumAdd, a)
						sumMul = f61.Add(sumMul, m)
					}
				}
			}
			if sumAdd != field.Elem(wantAdd) || sumMul != field.Elem(wantMul) {
				t.Fatalf("layer %d %T: sums (%d,%d), want (%d,%d)", layer, w, sumAdd, sumMul, wantAdd, wantMul)
			}
		}
	}
}

// TestF2WiringMatchesGateWiring at random (non-boolean) points — the
// closed form must agree with the generic evaluator everywhere.
func TestF2WiringMatchesGateWiring(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		c, err := NewF2Circuit(k)
		if err != nil {
			t.Fatal(err)
		}
		gen := GateWiring{C: c}
		closed := F2Wiring{K: k}
		rng := field.NewSplitMix64(uint64(100 + k))
		for layer := range c.Layers {
			kz := c.VarCount(layer)
			kx := c.VarCount(layer + 1)
			for trial := 0; trial < 10; trial++ {
				z := f61.RandVec(rng, kz)
				x := f61.RandVec(rng, kx)
				y := f61.RandVec(rng, kx)
				a1, m1 := gen.Eval(f61, layer, z, x, y)
				a2, m2 := closed.Eval(f61, layer, z, x, y)
				if a1 != a2 || m1 != m2 {
					t.Fatalf("k=%d layer %d: generic (%d,%d) ≠ closed (%d,%d)", k, layer, a1, m1, a2, m2)
				}
			}
		}
	}
}

func bitsOf(v, n int) []field.Elem {
	out := make([]field.Elem, n)
	for t := 0; t < n; t++ {
		out[t] = field.Elem((v >> t) & 1)
	}
	return out
}

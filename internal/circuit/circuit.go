// Package circuit implements layered arithmetic circuits over Z_p — the
// substrate of the GKR/"Interactive Proofs for Muggles" protocol that the
// paper's Theorem 3 adapts to a streaming verifier (Appendix A).
//
// A circuit is a sequence of layers of fan-in-2 gates; layer 0 is the
// output layer and each gate reads two values from the layer below (the
// input vector acts as the final layer). All layer sizes are powers of
// two, so each layer's value vector has a multilinear extension Ṽ_i over
// log-many variables, and each layer's wiring is described by the
// predicates
//
//	add̃_i(z,x,y) = Σ_{add gates} eq̃(z,out)·eq̃(x,in1)·eq̃(y,in2)
//	mult̃_i(z,x,y)= Σ_{mult gates} …
//
// which the GKR verifier must evaluate at one random point per layer.
// GateWiring evaluates them generically in O(#gates · log S) time;
// F2Wiring gives the closed O(log S) form for the F2 circuit (squaring
// layer + binary sum tree), which is what makes the Theorem-3 baseline a
// genuinely log-space streaming verifier for that statement.
package circuit

import (
	"fmt"
	"math/bits"

	"repro/internal/field"
	"repro/internal/parallel"
)

// evalGrain is the minimum per-goroutine chunk for the gate loops: one
// gate is ~2 field operations, so a smaller floor than parallel.MinGrain
// would be swamped by fork–join overhead.
const evalGrain = 1 << 11

// GateType distinguishes addition and multiplication gates.
type GateType uint8

// The two supported gate types.
const (
	Add GateType = iota
	Mul
)

// Gate reads the values at In1 and In2 of the layer below.
type Gate struct {
	Type     GateType
	In1, In2 uint32
}

// Layer is one circuit layer; the gate's position is its output index.
type Layer struct {
	Gates []Gate
}

// Circuit is a layered circuit. Layers[0] is the output layer; gates of
// Layers[len-1] read from the input vector of length InputSize.
type Circuit struct {
	Layers    []Layer
	InputSize int
}

// Validate checks power-of-two layer sizes and wire ranges.
func (c *Circuit) Validate() error {
	if len(c.Layers) == 0 {
		return fmt.Errorf("circuit: no layers")
	}
	if c.InputSize < 2 || c.InputSize&(c.InputSize-1) != 0 {
		return fmt.Errorf("circuit: input size %d not a power of two ≥ 2", c.InputSize)
	}
	for i, layer := range c.Layers {
		n := len(layer.Gates)
		if n == 0 || n&(n-1) != 0 {
			return fmt.Errorf("circuit: layer %d has %d gates (want power of two ≥ 1)", i, n)
		}
		below := c.InputSize
		if i+1 < len(c.Layers) {
			below = len(c.Layers[i+1].Gates)
		}
		for g, gate := range layer.Gates {
			if int(gate.In1) >= below || int(gate.In2) >= below {
				return fmt.Errorf("circuit: layer %d gate %d reads out of range", i, g)
			}
		}
	}
	return nil
}

// VarCount returns log2 of the layer's width; layer == len(Layers) refers
// to the input vector.
func (c *Circuit) VarCount(layer int) int {
	if layer == len(c.Layers) {
		return bits.Len(uint(c.InputSize)) - 1
	}
	return bits.Len(uint(len(c.Layers[layer].Gates))) - 1
}

// Evaluate runs the circuit on the input and returns every layer's value
// vector: values[i] for gate layers 0..L-1 and values[L] = input.
func (c *Circuit) Evaluate(f field.Field, input []field.Elem) ([][]field.Elem, error) {
	return c.EvaluateWorkers(f, input, 0)
}

// EvaluateWorkers is Evaluate with the per-layer gate loop split across
// workers (parallel.Workers semantics). Gates write disjoint outputs, so
// the result is identical for every worker count.
func (c *Circuit) EvaluateWorkers(f field.Field, input []field.Elem, workers int) ([][]field.Elem, error) {
	if len(input) != c.InputSize {
		return nil, fmt.Errorf("circuit: input has %d values, want %d", len(input), c.InputSize)
	}
	nw := parallel.Workers(workers)
	l := len(c.Layers)
	values := make([][]field.Elem, l+1)
	values[l] = append([]field.Elem(nil), input...)
	for i := l - 1; i >= 0; i-- {
		below := values[i+1]
		gates := c.Layers[i].Gates
		out := make([]field.Elem, len(gates))
		parallel.ForGrain(nw, len(gates), evalGrain, func(_, lo, hi int) {
			for g := lo; g < hi; g++ {
				gate := gates[g]
				a, b := below[gate.In1], below[gate.In2]
				if gate.Type == Add {
					out[g] = f.Add(a, b)
				} else {
					out[g] = f.Mul(a, b)
				}
			}
		})
		values[i] = out
	}
	return values, nil
}

// Size returns the total gate count.
func (c *Circuit) Size() int {
	n := 0
	for _, l := range c.Layers {
		n += len(l.Gates)
	}
	return n
}

// NewF2Circuit builds the circuit computing F2 = Σ_i a_i² over 2^k
// inputs: one squaring layer (mult(i,i)) under a binary tree of adds.
// Depth k+1, size 2^{k+1} - 1 + 2^k gates.
func NewF2Circuit(k int) (*Circuit, error) {
	if k < 1 || k > 30 {
		return nil, fmt.Errorf("circuit: F2 exponent %d out of [1,30]", k)
	}
	c := &Circuit{InputSize: 1 << k}
	// Sum layers: layer j has 2^j add gates reading (2o, 2o+1).
	for j := 0; j < k; j++ {
		gates := make([]Gate, 1<<j)
		for o := range gates {
			gates[o] = Gate{Type: Add, In1: uint32(2 * o), In2: uint32(2*o + 1)}
		}
		c.Layers = append(c.Layers, Layer{Gates: gates})
	}
	// Squaring layer: gate i = mult(i, i).
	gates := make([]Gate, 1<<k)
	for i := range gates {
		gates[i] = Gate{Type: Mul, In1: uint32(i), In2: uint32(i)}
	}
	c.Layers = append(c.Layers, Layer{Gates: gates})
	return c, c.Validate()
}

// ---------------------------------------------------------------------
// Wiring predicates

// Wiring evaluates a layer's add̃ and mult̃ predicates at one point.
type Wiring interface {
	Eval(f field.Field, layer int, z, x, y []field.Elem) (add, mul field.Elem)
}

// eqBit returns eq̃ of one coordinate against one bit: (1-p) or p.
func eqBit(f field.Field, p field.Elem, bit uint32) field.Elem {
	if bit == 0 {
		return f.Sub(1, p)
	}
	return p
}

// eqIndex returns eq̃(point, index) = Π_t eqBit(point[t], bit_t(index)).
func eqIndex(f field.Field, point []field.Elem, index uint32) field.Elem {
	out := field.Elem(1)
	for _, p := range point {
		out = f.Mul(out, eqBit(f, p, index&1))
		index >>= 1
	}
	return out
}

// GateWiring evaluates the predicates by iterating over the layer's gates:
// O(#gates · log S) per call. Correct for any circuit; a verifier using it
// spends time linear in the circuit, so it serves as the general-purpose
// fallback (the paper's Theorem 3 presumes log-space-uniform wiring with
// closed forms, like F2Wiring below).
type GateWiring struct {
	C *Circuit
}

// Eval sums eq̃ products over the gates of the layer.
func (w GateWiring) Eval(f field.Field, layer int, z, x, y []field.Elem) (add, mul field.Elem) {
	for g, gate := range w.C.Layers[layer].Gates {
		term := f.Mul(eqIndex(f, z, uint32(g)),
			f.Mul(eqIndex(f, x, gate.In1), eqIndex(f, y, gate.In2)))
		if gate.Type == Add {
			add = f.Add(add, term)
		} else {
			mul = f.Add(mul, term)
		}
	}
	return add, mul
}

// F2Wiring is the closed form for NewF2Circuit(K): O(log u) per
// evaluation, which keeps the GKR verifier's per-layer work logarithmic.
type F2Wiring struct {
	K int
}

// eq3 returns abc + (1-a)(1-b)(1-c), the three-way bit equality extension.
func eq3(f field.Field, a, b, c field.Elem) field.Elem {
	one := field.Elem(1)
	return f.Add(f.Mul(a, f.Mul(b, c)),
		f.Mul(f.Sub(one, a), f.Mul(f.Sub(one, b), f.Sub(one, c))))
}

// Eval returns the predicates of the F2 circuit:
//
//	sum layer j:   add̃ = (1-x₀)·y₀·Π_t eq3(z_t, x_{t+1}, y_{t+1})
//	square layer:  mult̃ = Π_t eq3(z_t, x_t, y_t)
func (w F2Wiring) Eval(f field.Field, layer int, z, x, y []field.Elem) (add, mul field.Elem) {
	if layer == w.K {
		mul = 1
		for t := range z {
			mul = f.Mul(mul, eq3(f, z[t], x[t], y[t]))
		}
		return 0, mul
	}
	add = f.Mul(f.Sub(1, x[0]), y[0])
	for t := range z {
		add = f.Mul(add, eq3(f, z[t], x[t+1], y[t+1]))
	}
	return add, 0
}

package circuit

import (
	"errors"
	"testing"

	"repro/internal/field"
)

func testField(t *testing.T) field.Field {
	t.Helper()
	f, err := field.New(field.Mersenne61)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFamiliesRegistry(t *testing.T) {
	want := []string{FamilyCount, FamilyF2, FamilyMatMul}
	got := Families()
	if len(got) != len(want) {
		t.Fatalf("Families() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Families() = %v, want %v", got, want)
		}
	}
	if _, _, err := BuildSpec(Spec{Name: "NOPE"}, 64); !errors.Is(err, ErrUnknownFamily) {
		t.Fatalf("BuildSpec(NOPE) err = %v, want ErrUnknownFamily", err)
	}
	for _, name := range []string{FamilyF2, FamilyCount} {
		if _, _, err := BuildSpec(Spec{Name: name, Arg: 3}, 64); err == nil {
			t.Fatalf("%s with an argument accepted", name)
		}
	}
}

// TestPaddedVars pins the registry's padding to the engine's ℓ=2 LDE
// convention: the smallest power of two ≥ max(u, 2).
func TestPaddedVars(t *testing.T) {
	for _, tc := range []struct {
		u uint64
		d int
	}{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {500, 9}, {512, 9}, {513, 10},
	} {
		d, err := PaddedVars(tc.u)
		if err != nil {
			t.Fatal(err)
		}
		if d != tc.d {
			t.Errorf("PaddedVars(%d) = %d, want %d", tc.u, d, tc.d)
		}
	}
	if _, err := PaddedVars(0); err == nil {
		t.Error("PaddedVars(0) accepted")
	}
}

// TestCountCircuit checks the aggregation tree computes Σ a_i and that
// its closed-form wiring agrees with the generic gate evaluator.
func TestCountCircuit(t *testing.T) {
	f := testField(t)
	c, w, err := BuildSpec(Spec{Name: FamilyCount}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if c.InputSize != 16 {
		t.Fatalf("COUNT over u=13 has input size %d, want 16", c.InputSize)
	}
	input := make([]field.Elem, c.InputSize)
	var want field.Elem
	for i := range input {
		input[i] = field.Elem(i*i + 1)
		want = f.Add(want, input[i])
	}
	values, err := c.Evaluate(f, input)
	if err != nil {
		t.Fatal(err)
	}
	if values[0][0] != want {
		t.Fatalf("COUNT output %d, want %d", values[0][0], want)
	}
	checkWiringAgrees(t, f, c, w)
}

// TestMatMulCircuit checks the circuit against a naive matrix product
// and the closed-form wiring against the generic gate evaluator.
func TestMatMulCircuit(t *testing.T) {
	f := testField(t)
	const n = 4
	c, w, err := BuildSpec(Spec{Name: FamilyMatMul, Arg: n}, n*n)
	if err != nil {
		t.Fatal(err)
	}
	if c.InputSize != n*n {
		t.Fatalf("input size %d, want %d", c.InputSize, n*n)
	}
	rng := field.NewSplitMix64(7)
	a := f.RandVec(rng, n*n)
	values, err := c.Evaluate(f, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want field.Elem
			for k := 0; k < n; k++ {
				want = f.Add(want, f.Mul(a[i*n+k], a[k*n+j]))
			}
			if got := values[0][i*n+j]; got != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
	checkWiringAgrees(t, f, c, w)
}

// TestMatMulDefaultDim checks the derived dimension covers the padded
// universe.
func TestMatMulDefaultDim(t *testing.T) {
	for _, tc := range []struct {
		u uint64
		n int
	}{
		{4, 2}, {16, 4}, {17, 8}, {500, 32}, {1 << 14, 128},
	} {
		c, _, err := BuildSpec(Spec{Name: FamilyMatMul}, tc.u)
		if err != nil {
			t.Fatalf("u=%d: %v", tc.u, err)
		}
		if c.InputSize != tc.n*tc.n {
			t.Errorf("u=%d: input size %d, want %d", tc.u, c.InputSize, tc.n*tc.n)
		}
	}
	if _, _, err := BuildSpec(Spec{Name: FamilyMatMul}, 1<<15); err == nil {
		t.Error("default MATMUL over u=2^15 accepted (needs n=256 > cap)")
	}
	if _, _, err := BuildSpec(Spec{Name: FamilyMatMul, Arg: 3}, 16); err == nil {
		t.Error("MATMUL with non-power-of-two dimension accepted")
	}
}

// checkWiringAgrees compares the family's closed-form wiring against
// GateWiring at random points for every layer — the correctness contract
// that keeps the verifier's layer checks sound.
func checkWiringAgrees(t *testing.T, f field.Field, c *Circuit, w Wiring) {
	t.Helper()
	gw := GateWiring{C: c}
	rng := field.NewSplitMix64(99)
	for layer := range c.Layers {
		z := f.RandVec(rng, c.VarCount(layer))
		x := f.RandVec(rng, c.VarCount(layer+1))
		y := f.RandVec(rng, c.VarCount(layer+1))
		addW, mulW := w.Eval(f, layer, z, x, y)
		addG, mulG := gw.Eval(f, layer, z, x, y)
		if addW != addG || mulW != mulG {
			t.Fatalf("layer %d: wiring (%d,%d) ≠ generic (%d,%d)", layer, addW, mulW, addG, mulG)
		}
	}
}

// TestEvaluateWorkers pins the determinism invariant on the circuit
// evaluator itself: identical values for every worker count.
func TestEvaluateWorkers(t *testing.T) {
	f := testField(t)
	c, _, err := BuildSpec(Spec{Name: FamilyMatMul, Arg: 8}, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(3)
	input := f.RandVec(rng, c.InputSize)
	base, err := c.EvaluateWorkers(f, input, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, -1} {
		got, err := c.EvaluateWorkers(f, input, workers)
		if err != nil {
			t.Fatal(err)
		}
		for layer := range base {
			for i := range base[layer] {
				if got[layer][i] != base[layer][i] {
					t.Fatalf("workers=%d: layer %d index %d differs", workers, layer, i)
				}
			}
		}
	}
}

package circuit

// Circuit family registry: named, parameterized circuit families built
// over a dataset's dense counts, so a GKR workload can be selected by
// name + argument on the wire instead of constructed ad hoc in tests.
//
// Every family is instantiated against a universe size u and follows the
// engine's padding convention (ℓ=2 LDE): the input vector is the dense
// element table padded to the next power of two. A family may read fewer
// entries than the table holds (MATMUL with a small dimension reads the
// first n² entries); updates beyond the circuit's input are simply not
// part of the statement being proved.

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/field"
)

// Spec selects a circuit family by name plus one integer argument whose
// meaning is family-specific (MATMUL: the matrix dimension n; F2 and
// COUNT take no argument). The zero Arg always selects a sensible
// default, so a Spec travels in a query frame as (name, uint64).
type Spec struct {
	Name string
	Arg  uint64
}

// The registered family names.
const (
	// FamilyF2 computes F2 = Σ_i a_i² via the squaring-plus-sum-tree
	// circuit — the Theorem-3 cross-check against the native §3 protocol.
	FamilyF2 = "F2"
	// FamilyCount computes Σ_i a_i via a binary aggregation tree.
	FamilyCount = "COUNT"
	// FamilyMatMul computes C = A·A for the n×n matrix stored row-major
	// in the first n² input entries; the n² outputs are C row-major.
	FamilyMatMul = "MATMUL"
)

// ErrUnknownFamily is returned (wrapped) when a Spec names no registered
// family; the wire layer surfaces it to clients as a typed refusal.
var ErrUnknownFamily = errors.New("circuit: unknown circuit family")

// maxMatMulDim bounds the MATMUL dimension: n=128 already means n³ ≈ 2M
// product gates, the practical ceiling for an interactive demo prover.
const maxMatMulDim = 128

var families = map[string]func(spec Spec, u uint64) (*Circuit, Wiring, error){
	FamilyF2:     buildF2,
	FamilyCount:  buildCount,
	FamilyMatMul: buildMatMul,
}

// Families returns the registered family names, sorted.
func Families() []string {
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildSpec instantiates a named family over universe u, returning the
// circuit together with its closed-form wiring predicate evaluator.
func BuildSpec(spec Spec, u uint64) (*Circuit, Wiring, error) {
	build, ok := families[spec.Name]
	if !ok {
		return nil, nil, fmt.Errorf("%w %q (have %v)", ErrUnknownFamily, spec.Name, Families())
	}
	return build(spec, u)
}

// PaddedVars returns d with 2^d the smallest power of two ≥ max(u, 2) —
// the same padding the engine's ℓ=2 LDE applies to a universe.
func PaddedVars(u uint64) (int, error) {
	if u == 0 {
		return 0, errors.New("circuit: empty universe")
	}
	if u > 1<<30 {
		return 0, fmt.Errorf("circuit: universe %d too large for a circuit input", u)
	}
	d := bits.Len64(u - 1)
	if d < 1 {
		d = 1
	}
	return d, nil
}

func buildF2(spec Spec, u uint64) (*Circuit, Wiring, error) {
	if spec.Arg != 0 {
		return nil, nil, fmt.Errorf("circuit: %s takes no argument (got %d)", FamilyF2, spec.Arg)
	}
	d, err := PaddedVars(u)
	if err != nil {
		return nil, nil, err
	}
	c, err := NewF2Circuit(d)
	if err != nil {
		return nil, nil, err
	}
	return c, F2Wiring{K: d}, nil
}

func buildCount(spec Spec, u uint64) (*Circuit, Wiring, error) {
	if spec.Arg != 0 {
		return nil, nil, fmt.Errorf("circuit: %s takes no argument (got %d)", FamilyCount, spec.Arg)
	}
	d, err := PaddedVars(u)
	if err != nil {
		return nil, nil, err
	}
	c, err := NewCountCircuit(d)
	if err != nil {
		return nil, nil, err
	}
	return c, SumTreeWiring{}, nil
}

func buildMatMul(spec Spec, u uint64) (*Circuit, Wiring, error) {
	n := spec.Arg
	if n == 0 {
		// Default: the smallest power-of-two dimension whose matrix covers
		// the padded universe, so every dataset index is a matrix entry.
		d, err := PaddedVars(u)
		if err != nil {
			return nil, nil, err
		}
		n = 1 << ((d + 1) / 2)
		if n < 2 {
			n = 2
		}
		if n > maxMatMulDim {
			return nil, nil, fmt.Errorf("circuit: universe %d needs matmul dimension %d > %d; pass an explicit Arg", u, n, maxMatMulDim)
		}
	}
	if n > maxMatMulDim {
		return nil, nil, fmt.Errorf("circuit: matmul dimension %d > %d", n, maxMatMulDim)
	}
	c, err := NewMatMulCircuit(int(n))
	if err != nil {
		return nil, nil, err
	}
	return c, MatMulWiring{M: bits.Len64(n) - 1}, nil
}

// NewCountCircuit builds the binary aggregation tree computing Σ_i a_i
// over 2^k inputs: k layers of add gates, gate o reading (2o, 2o+1).
func NewCountCircuit(k int) (*Circuit, error) {
	if k < 1 || k > 30 {
		return nil, fmt.Errorf("circuit: COUNT exponent %d out of [1,30]", k)
	}
	c := &Circuit{InputSize: 1 << k}
	for j := 0; j < k; j++ {
		gates := make([]Gate, 1<<j)
		for o := range gates {
			gates[o] = Gate{Type: Add, In1: uint32(2 * o), In2: uint32(2*o + 1)}
		}
		c.Layers = append(c.Layers, Layer{Gates: gates})
	}
	return c, c.Validate()
}

// NewMatMulCircuit builds the circuit computing C = A·A for an n×n
// matrix stored row-major in the n² inputs. The bottom layer holds the
// n³ products A[i][k]·A[k][j] at gate index i·n² + j·n + k; above it,
// log2(n) binary sum-tree layers aggregate over k, leaving C[i][j] at
// output index i·n + j. Size n³ + n²(n-1) gates, depth log2(n) + 1.
func NewMatMulCircuit(n int) (*Circuit, error) {
	if n < 2 || n > maxMatMulDim || n&(n-1) != 0 {
		return nil, fmt.Errorf("circuit: matmul dimension %d not a power of two in [2,%d]", n, maxMatMulDim)
	}
	m := bits.Len(uint(n)) - 1
	c := &Circuit{InputSize: n * n}
	// Sum-tree layers over the k dimension: layer j has n²·2^j add gates.
	for j := 0; j < m; j++ {
		gates := make([]Gate, n*n<<uint(j))
		for o := range gates {
			gates[o] = Gate{Type: Add, In1: uint32(2 * o), In2: uint32(2*o + 1)}
		}
		c.Layers = append(c.Layers, Layer{Gates: gates})
	}
	// Product layer: gate (i·n + j)·n + k = A[i][k]·A[k][j].
	mult := make([]Gate, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				mult[(i*n+j)*n+k] = Gate{Type: Mul, In1: uint32(i*n + k), In2: uint32(k*n + j)}
			}
		}
	}
	c.Layers = append(c.Layers, Layer{Gates: mult})
	return c, c.Validate()
}

// SumTreeWiring is the closed form for any layer of a binary sum tree
// whose gate o reads (2o, 2o+1) — the sum layers of F2, every layer of
// COUNT, and the aggregation layers of MATMUL. O(log S) per evaluation:
//
//	add̃(z,x,y) = (1-x₀)·y₀·Π_t eq3(z_t, x_{t+1}, y_{t+1})
type SumTreeWiring struct{}

// Eval returns the sum-tree predicates; mult̃ is identically zero.
func (SumTreeWiring) Eval(f field.Field, layer int, z, x, y []field.Elem) (add, mul field.Elem) {
	add = f.Mul(f.Sub(1, x[0]), y[0])
	for t := range z {
		add = f.Mul(add, eq3(f, z[t], x[t+1], y[t+1]))
	}
	return add, 0
}

// eq2 returns ab + (1-a)(1-b), the two-way bit equality extension.
func eq2(f field.Field, a, b field.Elem) field.Elem {
	one := field.Elem(1)
	return f.Add(f.Mul(a, b), f.Mul(f.Sub(one, a), f.Sub(one, b)))
}

// MatMulWiring is the closed form for NewMatMulCircuit(2^M): O(log S)
// per evaluation, keeping the GKR verifier's per-layer work logarithmic.
// Layers 0..M-1 are sum-tree layers; the product layer factorizes over
// the (k, j, i) bit groups of the gate index i·n² + j·n + k, whose wires
// read i·n + k and k·n + j:
//
//	mult̃(z,x,y) = Π_t eq3(z_t, x_t, y_{M+t}) · eq2(z_{M+t}, y_t) · eq2(z_{2M+t}, x_{M+t})
type MatMulWiring struct {
	M int // log2 of the matrix dimension
}

// Eval returns the predicates of the MATMUL circuit.
func (w MatMulWiring) Eval(f field.Field, layer int, z, x, y []field.Elem) (add, mul field.Elem) {
	if layer < w.M {
		return SumTreeWiring{}.Eval(f, layer, z, x, y)
	}
	m := w.M
	mul = 1
	for t := 0; t < m; t++ {
		mul = f.Mul(mul, eq3(f, z[t], x[t], y[m+t]))
		mul = f.Mul(mul, eq2(f, z[m+t], y[t]))
		mul = f.Mul(mul, eq2(f, z[2*m+t], x[m+t]))
	}
	return 0, mul
}

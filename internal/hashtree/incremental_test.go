package hashtree

import (
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

// TestIncrementalMatchesBatch: revealing the randomness level by level
// produces exactly the tree that Build produces with full knowledge.
func TestIncrementalMatchesBatch(t *testing.T) {
	params, err := NewParams(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, augmented := range []bool{false, true} {
		rng := field.NewSplitMix64(81)
		var h *Hasher
		if augmented {
			h = NewAugmentedHasher(f61, params, Affine, rng)
		} else {
			h = NewHasher(f61, params, Affine, rng)
		}
		ups := stream.UnitIncrements(params.U, 400, rng)
		batch, err := Build(h, ups)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := NewIncremental(f61, params, Affine, ups)
		if err != nil {
			t.Fatal(err)
		}
		if inc.BuiltLevels() != 0 {
			t.Fatalf("fresh incremental tree has %d levels", inc.BuiltLevels())
		}
		for j := 1; j <= params.D; j++ {
			var q field.Elem
			if augmented {
				q = h.Q[j-1]
			}
			if err := inc.Extend(h.R[j-1], q); err != nil {
				t.Fatal(err)
			}
			lv, err := inc.Level(j)
			if err != nil {
				t.Fatal(err)
			}
			want := batch.Level(j)
			if len(lv) != len(want) {
				t.Fatalf("aug=%v level %d: %d nodes, want %d", augmented, j, len(lv), len(want))
			}
			for i := range lv {
				if lv[i] != want[i] {
					t.Fatalf("aug=%v level %d node %d: %+v, want %+v", augmented, j, i, lv[i], want[i])
				}
			}
		}
		if err := inc.Extend(1, 0); err == nil {
			t.Error("extend past root accepted")
		}
	}
}

func TestIncrementalAccess(t *testing.T) {
	params, err := NewParams(4)
	if err != nil {
		t.Fatal(err)
	}
	ups := []stream.Update{{Index: 1, Delta: 3}, {Index: 9, Delta: 4}}
	inc, err := NewIncremental(f61, params, Affine, ups)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Node(1, 0); err == nil {
		t.Error("unbuilt level access accepted")
	}
	if _, err := inc.Level(1); err == nil {
		t.Error("unbuilt level listing accepted")
	}
	// Level-0 hashes (the leaf values) are available before any Extend, so
	// HeavyChildren(0, ·) works immediately — the heavy-hitters prover
	// depends on this. Level 1 requires randomness.
	if kids, err := inc.HeavyChildren(0, 1); err != nil || len(kids) != 4 {
		t.Errorf("HeavyChildren(0,1) = %v, %v; want both sibling pairs", kids, err)
	}
	if _, err := inc.HeavyChildren(1, 1); err == nil {
		t.Error("heavy children on unbuilt level accepted")
	}
	if c, err := inc.Count(1, 0); err != nil || c != 3 {
		t.Errorf("Count(1,0) = %d, %v; want 3", c, err)
	}
	if c, err := inc.Count(4, 0); err != nil || c != 7 {
		t.Errorf("root count = %d, %v; want 7", c, err)
	}
	n, err := inc.Node(0, 1)
	if err != nil || n.Count != 3 {
		t.Fatalf("leaf 1 = %+v, %v", n, err)
	}
	got := inc.LeavesInRange(0, 8)
	if len(got) != 1 || got[0].Index != 1 {
		t.Fatalf("LeavesInRange = %+v", got)
	}
	if err := inc.Extend(7, 0); err != nil {
		t.Fatal(err)
	}
	n, err = inc.Node(1, 0)
	if err != nil || n.Hash != f61.Add(0, f61.Mul(7, 3)) {
		t.Fatalf("level-1 node 0 = %+v, %v", n, err)
	}
	if _, err := NewIncremental(f61, params, Affine, []stream.Update{{Index: 99, Delta: 1}}); err == nil {
		t.Error("out-of-universe update accepted")
	}
}

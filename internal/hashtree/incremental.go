package hashtree

import (
	"fmt"
	"sort"

	"repro/internal/field"
	"repro/internal/parallel"
	"repro/internal/stream"
)

// IncrementalTree is the prover-side tree for the interactive protocols of
// §4 and §6.1: the level randomness r_j (and q_j for augmented trees) is
// revealed by the verifier one round at a time, so node *hashes* can only
// be computed one level per round. Subtree *counts* are independent of the
// randomness, so the whole count skeleton is built up front — the
// heavy-hitters prover needs level-(l+1) counts to select the children it
// reveals at level l before r_{l+1} is known.
//
// Levels are sparse (only nonzero subtrees are materialized), giving the
// O(min(u, n log(u/n))) prover size of Theorem 5.
type IncrementalTree struct {
	F      field.Field
	Params Params
	Kind   Kind

	// Workers sets the fan-out of Extend: each level's hashes are computed
	// by that many goroutines over contiguous node blocks (0 serial, n < 0
	// runtime.NumCPU()). The hash of each node depends only on its children
	// and the revealed randomness, so every worker count produces identical
	// trees.
	Workers int

	levels [][]Node
	r      []field.Elem
	q      []field.Elem
}

// NewIncremental aggregates the updates into sorted nonzero leaves and
// builds the count skeleton of every level. Level-0 hashes (the leaf
// values) are available immediately; higher-level hashes require Extend.
func NewIncremental(f field.Field, params Params, kind Kind, updates []stream.Update) (*IncrementalTree, error) {
	agg := make(map[uint64]int64, len(updates))
	for _, u := range updates {
		if u.Index >= params.U {
			return nil, fmt.Errorf("hashtree: index %d outside universe [0,%d)", u.Index, params.U)
		}
		agg[u.Index] += u.Delta
	}
	leaves := make([]Node, 0, len(agg))
	for i, c := range agg {
		if c == 0 {
			continue
		}
		leaves = append(leaves, Node{Index: i, Hash: f.FromInt64(c), Count: c})
	}
	sort.Slice(leaves, func(a, b int) bool { return leaves[a].Index < leaves[b].Index })
	return newFromLeaves(f, params, kind, leaves), nil
}

// NewIncrementalFromCounts builds the same tree from a dense frequency
// table (length params.U) instead of a raw update stream: the leaves are
// the nonzero entries in index order, exactly what NewIncremental derives
// by aggregating the stream, so the two constructors produce identical
// trees for the same aggregate state. This is the entry point for provers
// built from maintained dataset state rather than stream replay.
func NewIncrementalFromCounts(f field.Field, params Params, kind Kind, counts []int64) (*IncrementalTree, error) {
	if uint64(len(counts)) != params.U {
		return nil, fmt.Errorf("hashtree: count table has %d entries, want %d", len(counts), params.U)
	}
	var leaves []Node
	for i, c := range counts {
		if c == 0 {
			continue
		}
		leaves = append(leaves, Node{Index: uint64(i), Hash: f.FromInt64(c), Count: c})
	}
	return newFromLeaves(f, params, kind, leaves), nil
}

// newFromLeaves builds the count skeleton above sorted nonzero leaves.
func newFromLeaves(f field.Field, params Params, kind Kind, leaves []Node) *IncrementalTree {
	t := &IncrementalTree{F: f, Params: params, Kind: kind, levels: make([][]Node, params.D+1)}
	t.levels[0] = leaves
	for j := 1; j <= params.D; j++ {
		prev := t.levels[j-1]
		var cur []Node
		for i := 0; i < len(prev); {
			parent := prev[i].Index >> 1
			var count int64
			for ; i < len(prev) && prev[i].Index>>1 == parent; i++ {
				count += prev[i].Count
			}
			cur = append(cur, Node{Index: parent, Count: count})
		}
		t.levels[j] = cur
	}
	return t
}

// BuiltLevels returns how many levels above the leaves have hashes.
func (t *IncrementalTree) BuiltLevels() int { return len(t.r) }

// Extend fills in the hashes of the next level using the freshly revealed
// randomness (q is ignored unless the tree uses the augmented hash; pass 0
// for plain trees).
func (t *IncrementalTree) Extend(r, q field.Elem) error {
	j := len(t.r) + 1
	if j > t.Params.D {
		return fmt.Errorf("hashtree: tree already fully built (%d levels)", t.Params.D)
	}
	t.r = append(t.r, r)
	t.q = append(t.q, q)
	h := Hasher{F: t.F, Params: t.Params, Kind: t.Kind, R: t.r, Q: t.q}
	prev := t.levels[j-1]
	cur := t.levels[j]
	// Each parent's children occupy a contiguous run of prev, so the level
	// splits into independent blocks: a worker locates the first child of
	// its block's first parent by binary search and then merges forward,
	// exactly as the serial scan would.
	parallel.For(parallel.Workers(t.Workers), len(cur), func(_, lo, hi int) {
		pi := sort.Search(len(prev), func(i int) bool { return prev[i].Index>>1 >= cur[lo].Index })
		for ci := lo; ci < hi; ci++ {
			parent := cur[ci].Index
			var left, right field.Elem
			for ; pi < len(prev) && prev[pi].Index>>1 == parent; pi++ {
				if prev[pi].Index&1 == 0 {
					left = prev[pi].Hash
				} else {
					right = prev[pi].Hash
				}
			}
			cur[ci].Hash = h.Combine(j, left, right, t.F.FromInt64(cur[ci].Count))
		}
	})
	return nil
}

// Node returns the node at (level, index). Counts are always valid;
// requesting a node whose hash is not yet computable is an error. Absent
// nodes are the implicit all-zero node.
func (t *IncrementalTree) Node(level int, index uint64) (Node, error) {
	if level < 0 || level > len(t.r) {
		return Node{}, fmt.Errorf("hashtree: level %d hashes not built (have %d)", level, len(t.r))
	}
	return t.lookup(level, index), nil
}

// Count returns the subtree count at (level, index); valid at any level.
func (t *IncrementalTree) Count(level int, index uint64) (int64, error) {
	if level < 0 || level > t.Params.D {
		return 0, fmt.Errorf("hashtree: level %d out of range", level)
	}
	return t.lookup(level, index).Count, nil
}

func (t *IncrementalTree) lookup(level int, index uint64) Node {
	nodes := t.levels[level]
	k := sort.Search(len(nodes), func(i int) bool { return nodes[i].Index >= index })
	if k < len(nodes) && nodes[k].Index == index {
		return nodes[k]
	}
	return Node{Index: index}
}

// LeavesInRange returns the nonzero leaves with qL ≤ index ≤ qR.
func (t *IncrementalTree) LeavesInRange(qL, qR uint64) []Node {
	leaves := t.levels[0]
	lo := sort.Search(len(leaves), func(i int) bool { return leaves[i].Index >= qL })
	hi := sort.Search(len(leaves), func(i int) bool { return leaves[i].Index > qR })
	return leaves[lo:hi]
}

// Level returns the materialized nodes of a level whose hashes are built.
func (t *IncrementalTree) Level(level int) ([]Node, error) {
	if level < 0 || level > len(t.r) {
		return nil, fmt.Errorf("hashtree: level %d hashes not built (have %d)", level, len(t.r))
	}
	return t.levels[level], nil
}

// HeavyLeaves returns the leaves with Count ≥ threshold.
func (t *IncrementalTree) HeavyLeaves(threshold int64) []Node {
	var out []Node
	for _, n := range t.levels[0] {
		if n.Count >= threshold {
			out = append(out, n)
		}
	}
	return out
}

// HeavyChildren returns all level-l nodes that are children of level-(l+1)
// nodes with Count ≥ threshold, with zero siblings materialized — the
// round message of the §6.1 heavy-hitters protocol. The children's hashes
// must already be built (level 0 always is); the parents' counts are
// always available.
func (t *IncrementalTree) HeavyChildren(l int, threshold int64) ([]Node, error) {
	if l < 0 || l > len(t.r) {
		return nil, fmt.Errorf("hashtree: level %d hashes not built (have %d)", l, len(t.r))
	}
	if l+1 > t.Params.D {
		return nil, fmt.Errorf("hashtree: level %d has no parents", l)
	}
	var out []Node
	for _, p := range t.levels[l+1] {
		if p.Count < threshold {
			continue
		}
		out = append(out, t.lookup(l, 2*p.Index), t.lookup(l, 2*p.Index+1))
	}
	return out, nil
}

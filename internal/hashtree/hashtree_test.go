package hashtree

import (
	"testing"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/stream"
)

var f61 = field.Mersenne()

func TestParams(t *testing.T) {
	p, err := NewParams(10)
	if err != nil || p.U != 1024 {
		t.Fatalf("NewParams(10) = %+v, %v", p, err)
	}
	for _, bad := range []int{0, -1, 62} {
		if _, err := NewParams(bad); err == nil {
			t.Errorf("NewParams(%d) accepted", bad)
		}
	}
	p, err = ParamsForUniverse(1000)
	if err != nil || p.D != 10 {
		t.Fatalf("ParamsForUniverse(1000) = %+v, %v", p, err)
	}
	p, err = ParamsForUniverse(1)
	if err != nil || p.D != 1 {
		t.Fatalf("ParamsForUniverse(1) = %+v, %v", p, err)
	}
	if _, err := ParamsForUniverse(0); err == nil {
		t.Error("ParamsForUniverse(0) accepted")
	}
}

// TestPaperExample reproduces Figure 1 of the paper: vector
// [2,3,8,1,7,6,4,3] with all hash parameters fixed to 1 gives a root of 34
// and the internal hashes shown in the figure.
func TestPaperExample(t *testing.T) {
	params, err := NewParams(3)
	if err != nil {
		t.Fatal(err)
	}
	h := &Hasher{F: f61, Params: params, Kind: Affine, R: []field.Elem{1, 1, 1}}
	vals := []int64{2, 3, 8, 1, 7, 6, 4, 3}
	var ups []stream.Update
	for i, v := range vals {
		ups = append(ups, stream.Update{Index: uint64(i), Delta: v})
	}
	tree, err := Build(h, ups)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Root(); got != 34 {
		t.Fatalf("root = %d, want 34 (paper Figure 1)", got)
	}
	// Level-1 hashes in the figure: 5, 9, 13, 7.
	for i, want := range []field.Elem{5, 9, 13, 7} {
		if got := tree.Node(1, uint64(i)).Hash; got != want {
			t.Errorf("level-1 node %d = %d, want %d", i, got, want)
		}
	}
	// Level-2 hashes: 14, 20.
	for i, want := range []field.Elem{14, 20} {
		if got := tree.Node(2, uint64(i)).Hash; got != want {
			t.Errorf("level-2 node %d = %d, want %d", i, got, want)
		}
	}
	// Streaming evaluator agrees.
	ev := NewRootEvaluator(h)
	for _, u := range ups {
		if err := ev.Update(u.Index, u.Delta); err != nil {
			t.Fatal(err)
		}
	}
	if ev.Root() != 34 {
		t.Fatalf("streaming root = %d, want 34", ev.Root())
	}
}

// TestStreamingMatchesTree: the O(log u)-space streaming root equals the
// materialized tree's root for random streams, for plain and augmented
// hashers of both kinds.
func TestStreamingMatchesTree(t *testing.T) {
	params, err := NewParams(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{Affine, Multilinear} {
		for _, augmented := range []bool{false, true} {
			rng := field.NewSplitMix64(61)
			var h *Hasher
			if augmented {
				h = NewAugmentedHasher(f61, params, kind, rng)
			} else {
				h = NewHasher(f61, params, kind, rng)
			}
			ups := stream.UnitIncrements(params.U, 2000, rng)
			ups = append(ups, stream.Update{Index: 5, Delta: -3})
			ev := NewRootEvaluator(h)
			for _, u := range ups {
				if err := ev.Update(u.Index, u.Delta); err != nil {
					t.Fatal(err)
				}
			}
			tree, err := Build(h, ups)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Root() != tree.Root() {
				t.Fatalf("kind=%v aug=%v: streaming root %d ≠ tree root %d", kind, augmented, ev.Root(), tree.Root())
			}
			if ev.Total() != stream.SumDeltas(ups) {
				t.Fatalf("Total() = %d, want %d", ev.Total(), stream.SumDeltas(ups))
			}
		}
	}
}

// TestMultilinearRootIsLDE verifies the App. B.2 remark: with the
// multilinear hash, the root equals the multilinear extension f_a(r)
// evaluated at the level randomness — tying this package to internal/lde.
func TestMultilinearRootIsLDE(t *testing.T) {
	params, err := NewParams(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(62)
	h := NewHasher(f61, params, Multilinear, rng)
	ups := stream.UnitIncrements(params.U, 500, rng)
	ev := NewRootEvaluator(h)
	for _, u := range ups {
		if err := ev.Update(u.Index, u.Delta); err != nil {
			t.Fatal(err)
		}
	}
	ldeParams, err := lde.NewParams(2, params.D)
	if err != nil {
		t.Fatal(err)
	}
	// Level j of the tree consumes bit j-1, i.e. LDE dimension j-1.
	pt, err := lde.NewPoint(f61, ldeParams, h.R)
	if err != nil {
		t.Fatal(err)
	}
	lev := lde.NewEvaluator(pt)
	for _, u := range ups {
		if err := lev.Update(u.Index, u.Delta); err != nil {
			t.Fatal(err)
		}
	}
	if ev.Root() != lev.Value() {
		t.Fatalf("multilinear root %d ≠ LDE value %d", ev.Root(), lev.Value())
	}
}

func TestTreeNodeLookupAndCounts(t *testing.T) {
	params, err := NewParams(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(63)
	h := NewAugmentedHasher(f61, params, Affine, rng)
	ups := []stream.Update{{Index: 3, Delta: 5}, {Index: 3, Delta: 2}, {Index: 12, Delta: 4}, {Index: 7, Delta: 1}, {Index: 9, Delta: 3}, {Index: 0, Delta: 2}, {Index: 1, Delta: -2}}
	tree, err := Build(h, ups)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregated: a[0]=2, a[1]=-2, a[3]=7, a[7]=1, a[9]=3, a[12]=4.
	if n := tree.Node(0, 3); n.Count != 7 || n.Hash != 7 {
		t.Fatalf("leaf 3 = %+v", n)
	}
	if n := tree.Node(0, 1); n.Count != -2 || n.Hash != f61.FromInt64(-2) {
		t.Fatalf("leaf 1 = %+v", n)
	}
	if n := tree.Node(0, 2); n.Count != 0 || n.Hash != 0 {
		t.Fatalf("absent leaf 2 = %+v", n)
	}
	// Root count is the sum of all deltas.
	root := tree.Node(params.D, 0)
	if root.Count != stream.SumDeltas(ups) {
		t.Fatalf("root count %d, want %d", root.Count, stream.SumDeltas(ups))
	}
	// Counts are consistent up the tree: parent count = children counts.
	for j := 1; j <= params.D; j++ {
		for _, n := range tree.Level(j) {
			want := tree.Node(j-1, 2*n.Index).Count + tree.Node(j-1, 2*n.Index+1).Count
			if n.Count != want {
				t.Fatalf("level %d node %d count %d, want %d", j, n.Index, n.Count, want)
			}
		}
	}
}

func TestLeavesInRange(t *testing.T) {
	params, err := NewParams(5)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHasher(f61, params, Affine, field.NewSplitMix64(64))
	ups := []stream.Update{{Index: 2, Delta: 1}, {Index: 5, Delta: 1}, {Index: 6, Delta: 1}, {Index: 20, Delta: 1}, {Index: 31, Delta: 1}}
	tree, err := Build(h, ups)
	if err != nil {
		t.Fatal(err)
	}
	got := tree.LeavesInRange(5, 20)
	if len(got) != 3 || got[0].Index != 5 || got[1].Index != 6 || got[2].Index != 20 {
		t.Fatalf("LeavesInRange(5,20) = %+v", got)
	}
	if got := tree.LeavesInRange(7, 19); len(got) != 0 {
		t.Fatalf("empty range returned %+v", got)
	}
	if got := tree.LeavesInRange(0, 31); len(got) != 5 {
		t.Fatalf("full range returned %d leaves", len(got))
	}
}

func TestHeavyChildren(t *testing.T) {
	params, err := NewParams(3)
	if err != nil {
		t.Fatal(err)
	}
	h := NewAugmentedHasher(f61, params, Affine, field.NewSplitMix64(65))
	// a = [10, 0, 0, 0, 3, 3, 0, 1]: total 17.
	ups := []stream.Update{{Index: 0, Delta: 10}, {Index: 4, Delta: 3}, {Index: 5, Delta: 3}, {Index: 7, Delta: 1}}
	tree, err := Build(h, ups)
	if err != nil {
		t.Fatal(err)
	}
	// threshold 6: heavy level-1 nodes: (0) count 10, (2) count 6.
	kids := tree.HeavyChildren(0, 6)
	if len(kids) != 4 {
		t.Fatalf("HeavyChildren(0,6) = %+v", kids)
	}
	wantIdx := []uint64{0, 1, 4, 5}
	for i, n := range kids {
		if n.Index != wantIdx[i] {
			t.Fatalf("child %d index %d, want %d", i, n.Index, wantIdx[i])
		}
	}
	// threshold 6 at level 1: heavy level-2 nodes: (0) count 10, (1) 7.
	kids = tree.HeavyChildren(1, 6)
	if len(kids) != 4 {
		t.Fatalf("HeavyChildren(1,6) = %+v", kids)
	}
	// Zero-subtree siblings must be materialized.
	if kids[1].Index != 1 || kids[1].Count != 0 || kids[1].Hash != 0 {
		t.Fatalf("zero sibling = %+v", kids[1])
	}
}

func TestBuildValidation(t *testing.T) {
	params, err := NewParams(3)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHasher(f61, params, Affine, field.NewSplitMix64(66))
	if _, err := Build(h, []stream.Update{{Index: 8, Delta: 1}}); err == nil {
		t.Error("out-of-universe update accepted")
	}
	if _, err := BuildFromLeaves(h, []Node{{Index: 3, Hash: 1, Count: 1}, {Index: 3, Hash: 1, Count: 1}}); err == nil {
		t.Error("duplicate leaves accepted")
	}
	if _, err := BuildFromLeaves(h, []Node{{Index: 3, Hash: 2, Count: 1}}); err == nil {
		t.Error("hash/count mismatch accepted")
	}
	if _, err := BuildFromLeaves(h, []Node{{Index: 9, Hash: 1, Count: 1}}); err == nil {
		t.Error("out-of-universe leaf accepted")
	}
	// Cancelling updates produce an empty tree with root 0.
	tree, err := Build(h, []stream.Update{{Index: 2, Delta: 5}, {Index: 2, Delta: -5}})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root() != 0 || tree.Size() != 0 {
		t.Errorf("cancelled tree root=%d size=%d", tree.Root(), tree.Size())
	}
}

func TestRootEvaluatorValidation(t *testing.T) {
	params, err := NewParams(3)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHasher(f61, params, Affine, field.NewSplitMix64(67))
	ev := NewRootEvaluator(h)
	if err := ev.Update(8, 1); err == nil {
		t.Error("out-of-universe update accepted")
	}
	if got, want := ev.SpaceWords(), params.D+2; got != want {
		t.Errorf("plain SpaceWords = %d, want %d", got, want)
	}
	aug := NewRootEvaluator(NewAugmentedHasher(f61, params, Affine, field.NewSplitMix64(68)))
	if got, want := aug.SpaceWords(), 2*params.D+2; got != want {
		t.Errorf("augmented SpaceWords = %d, want %d", got, want)
	}
}

// TestRootSensitivity: changing any single leaf changes the root (with
// overwhelming probability over the hasher randomness) — the collision
// property soundness rests on.
func TestRootSensitivity(t *testing.T) {
	params, err := NewParams(6)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(69)
	h := NewHasher(f61, params, Affine, rng)
	base := stream.UnitIncrements(params.U, 100, rng)
	tree, err := Build(h, base)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	for i := uint64(0); i < params.U; i += 7 {
		perturbed := append(append([]stream.Update(nil), base...), stream.Update{Index: i, Delta: 1})
		tree2, err := Build(h, perturbed)
		if err != nil {
			t.Fatal(err)
		}
		if tree2.Root() == root {
			t.Fatalf("perturbing leaf %d left root unchanged", i)
		}
	}
}

// TestTreeSizeSparse: Theorem 5's prover space bound — for n ≪ u the tree
// materializes O(n log(u/n)) nodes, far below 2u.
func TestTreeSizeSparse(t *testing.T) {
	params, err := NewParams(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(70)
	h := NewHasher(f61, params, Affine, rng)
	const n = 64
	ups := stream.UnitIncrements(params.U, n, rng)
	tree, err := Build(h, ups)
	if err != nil {
		t.Fatal(err)
	}
	// Loose upper bound: every leaf contributes at most one node per level.
	if tree.Size() > n*(params.D+1) {
		t.Fatalf("tree size %d exceeds n(d+1) = %d", tree.Size(), n*(params.D+1))
	}
	if tree.Size() < params.D {
		t.Fatalf("tree suspiciously small: %d", tree.Size())
	}
}

func BenchmarkRootEvaluatorUpdate(b *testing.B) {
	params, err := NewParams(20)
	if err != nil {
		b.Fatal(err)
	}
	h := NewHasher(f61, params, Affine, field.NewSplitMix64(71))
	ev := NewRootEvaluator(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.Update(uint64(i)&(params.U-1), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	params, err := NewParams(16)
	if err != nil {
		b.Fatal(err)
	}
	rng := field.NewSplitMix64(72)
	h := NewHasher(f61, params, Affine, rng)
	ups := stream.UniformDeltas(params.U, 1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(h, ups); err != nil {
			b.Fatal(err)
		}
	}
}

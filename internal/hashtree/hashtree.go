// Package hashtree implements the algebraic hash tree of §4 of
// Cormode–Thaler–Yi, used by the SUB-VECTOR protocol (and hence INDEX,
// DICTIONARY, PREDECESSOR and RANGE QUERY) and, in its augmented form with
// subtree counts, by the heavy-hitters protocol of §6.1.
//
// The verifier conceptually builds a binary tree over the vector a. The
// i-th leaf holds a_i, and an internal node v at level j (leaves at level
// 0) hashes its children as
//
//	v = vL + r_j · vR                          (plain, Eq. 7)
//	v = vL + r_j · vR + q_j · c_v              (augmented, §6.1)
//
// where r_j, q_j are per-level random field elements and c_v is the
// subtree count of v. The root t is a degree-1-per-level polynomial hash
// of the whole vector; crucially it is linear in a, so the verifier can
// maintain it over the stream in O(log u) words (Eq. 8) while the prover
// materializes the (sparse) tree.
//
// The package also implements the multilinear variant
// v = (1-r_j)·vL + r_j·vR noted in the paper's App. B.2 remarks, under
// which the root equals the multilinear extension f_a(r) — a property the
// tests use to cross-check this package against internal/lde.
package hashtree

import (
	"fmt"
	"sort"

	"repro/internal/field"
	"repro/internal/stream"
)

// Kind selects the per-level combining function.
type Kind int

const (
	// Affine is the paper's hash: v = vL + r_j·vR (Eq. 7).
	Affine Kind = iota
	// Multilinear is the variant v = (1-r_j)·vL + r_j·vR, whose root is
	// the multilinear extension of the leaf vector (App. B.2 remarks).
	Multilinear
)

// Params fixes the tree shape: u = 2^d leaves, levels 0 (leaves) … d
// (root).
type Params struct {
	D int    // tree height = log2 u
	U uint64 // number of leaves
}

// NewParams returns the shape for height d ∈ [1, 61].
func NewParams(d int) (Params, error) {
	if d < 1 || d > 61 {
		return Params{}, fmt.Errorf("hashtree: height %d out of [1,61]", d)
	}
	return Params{D: d, U: 1 << d}, nil
}

// ParamsForUniverse returns the smallest tree covering u leaves.
func ParamsForUniverse(u uint64) (Params, error) {
	if u == 0 {
		return Params{}, fmt.Errorf("hashtree: empty universe")
	}
	d := 1
	for uint64(1)<<d < u {
		d++
		if d > 61 {
			return Params{}, fmt.Errorf("hashtree: universe %d too large", u)
		}
	}
	return Params{D: d, U: 1 << d}, nil
}

// Hasher carries the per-level randomness. R has length d (R[j-1] combines
// level j-1 children into a level-j node); Q is nil for plain trees and
// length d for augmented trees.
type Hasher struct {
	F      field.Field
	Params Params
	Kind   Kind
	R      []field.Elem
	Q      []field.Elem
}

// NewHasher samples the d level parameters r_1..r_d.
func NewHasher(f field.Field, params Params, kind Kind, rng field.RNG) *Hasher {
	return &Hasher{F: f, Params: params, Kind: kind, R: f.RandVec(rng, params.D)}
}

// NewAugmentedHasher additionally samples q_1..q_d for the subtree-count
// children of §6.1.
func NewAugmentedHasher(f field.Field, params Params, kind Kind, rng field.RNG) *Hasher {
	h := NewHasher(f, params, kind, rng)
	h.Q = f.RandVec(rng, params.D)
	return h
}

// Augmented reports whether subtree counts are folded into the hash.
func (h *Hasher) Augmented() bool { return h.Q != nil }

// Combine hashes the two children of a level-j node (j in 1..d). count is
// the node's subtree count and is ignored for plain hashers.
func (h *Hasher) Combine(j int, left, right, count field.Elem) field.Elem {
	f := h.F
	r := h.R[j-1]
	var v field.Elem
	switch h.Kind {
	case Multilinear:
		v = f.Add(f.Mul(f.Sub(1, r), left), f.Mul(r, right))
	default:
		v = f.Add(left, f.Mul(r, right))
	}
	if h.Q != nil {
		v = f.Add(v, f.Mul(h.Q[j-1], count))
	}
	return v
}

// ---------------------------------------------------------------------
// Streaming root (verifier side)

// RootEvaluator maintains the root hash t over a stream of updates in
// O(d) words and O(d) time per update (Eq. 8, extended to the augmented
// hash). It also tracks n = Σδ, the total count needed by the
// heavy-hitters threshold.
type RootEvaluator struct {
	h   *Hasher
	acc field.Elem
	n   int64
}

// NewRootEvaluator returns a streaming evaluator for h.
func NewRootEvaluator(h *Hasher) *RootEvaluator {
	return &RootEvaluator{h: h}
}

// Update folds (i, δ) into the running root.
func (e *RootEvaluator) Update(i uint64, delta int64) error {
	h := e.h
	if i >= h.Params.U {
		return fmt.Errorf("hashtree: index %d outside universe [0,%d)", i, h.Params.U)
	}
	f := h.F
	d := f.FromInt64(delta)
	// S holds the path weight from the level-j ancestor to the root:
	// Π_{k=j+1..D} weight_k. Walk levels top-down so each ancestor's
	// count contribution uses the correct suffix product.
	s := field.Elem(1)
	for j := h.Params.D; j >= 1; j-- {
		if h.Q != nil {
			// The level-j ancestor's count increases by δ; its hash feeds
			// the root through weight s.
			e.acc = f.Add(e.acc, f.Mul(f.Mul(d, h.Q[j-1]), s))
		}
		bit := (i >> (j - 1)) & 1
		switch h.Kind {
		case Multilinear:
			if bit == 1 {
				s = f.Mul(s, h.R[j-1])
			} else {
				s = f.Mul(s, f.Sub(1, h.R[j-1]))
			}
		default:
			if bit == 1 {
				s = f.Mul(s, h.R[j-1])
			}
		}
	}
	e.acc = f.Add(e.acc, f.Mul(d, s))
	e.n += delta
	return nil
}

// Root returns the current root hash t.
func (e *RootEvaluator) Root() field.Elem { return e.acc }

// Total returns n = Σδ (the stream length for insert-only streams).
func (e *RootEvaluator) Total() int64 { return e.n }

// SpaceWords reports the verifier memory in the paper's accounting: the d
// level parameters (2d when augmented), the running root, and n.
func (e *RootEvaluator) SpaceWords() int {
	n := e.h.Params.D + 2
	if e.h.Q != nil {
		n += e.h.Params.D
	}
	return n
}

// ---------------------------------------------------------------------
// Materialized tree (prover side)

// Node is a materialized tree node: Index is the position within its
// level, Hash the node hash, Count the subtree count.
type Node struct {
	Index uint64
	Hash  field.Elem
	Count int64
}

// Tree is the prover's sparse materialization: per level, the nodes with
// nonzero subtrees, sorted by index. Size is O(min(u, n·log(u/n))) as in
// Theorem 5. Absent nodes hash to 0 (an all-zero subtree hashes to 0
// under both kinds, with count 0).
type Tree struct {
	H      *Hasher
	levels [][]Node
}

// Build constructs the tree bottom-up from the leaf multiset defined by
// the updates (aggregated, zero entries dropped). Total time
// O(n·d + n·log n).
func Build(h *Hasher, updates []stream.Update) (*Tree, error) {
	agg := make(map[uint64]int64, len(updates))
	for _, u := range updates {
		if u.Index >= h.Params.U {
			return nil, fmt.Errorf("hashtree: index %d outside universe [0,%d)", u.Index, h.Params.U)
		}
		agg[u.Index] += u.Delta
	}
	leaves := make([]Node, 0, len(agg))
	for i, c := range agg {
		if c == 0 {
			continue
		}
		leaves = append(leaves, Node{Index: i, Hash: h.F.FromInt64(c), Count: c})
	}
	sort.Slice(leaves, func(a, b int) bool { return leaves[a].Index < leaves[b].Index })
	return BuildFromLeaves(h, leaves)
}

// BuildFromLeaves constructs the tree from pre-aggregated leaves, which
// must be sorted by index with distinct indices; a leaf's Hash must be the
// field image of its Count.
func BuildFromLeaves(h *Hasher, leaves []Node) (*Tree, error) {
	for i := range leaves {
		if leaves[i].Index >= h.Params.U {
			return nil, fmt.Errorf("hashtree: leaf index %d outside universe", leaves[i].Index)
		}
		if i > 0 && leaves[i-1].Index >= leaves[i].Index {
			return nil, fmt.Errorf("hashtree: leaves not sorted/distinct at %d", i)
		}
		if leaves[i].Hash != h.F.FromInt64(leaves[i].Count) {
			return nil, fmt.Errorf("hashtree: leaf %d hash/count mismatch", leaves[i].Index)
		}
	}
	t := &Tree{H: h, levels: make([][]Node, h.Params.D+1)}
	t.levels[0] = leaves
	f := h.F
	for j := 1; j <= h.Params.D; j++ {
		prev := t.levels[j-1]
		var cur []Node
		for i := 0; i < len(prev); {
			parent := prev[i].Index >> 1
			var left, right field.Elem
			var count int64
			for ; i < len(prev) && prev[i].Index>>1 == parent; i++ {
				if prev[i].Index&1 == 0 {
					left = prev[i].Hash
				} else {
					right = prev[i].Hash
				}
				count += prev[i].Count
			}
			cur = append(cur, Node{
				Index: parent,
				Hash:  h.Combine(j, left, right, f.FromInt64(count)),
				Count: count,
			})
		}
		t.levels[j] = cur
	}
	return t, nil
}

// Root returns the root hash (0 for an empty tree).
func (t *Tree) Root() field.Elem {
	top := t.levels[t.H.Params.D]
	if len(top) == 0 {
		return 0
	}
	return top[0].Hash
}

// Node returns the node at (level, index); absent nodes are the implicit
// all-zero node.
func (t *Tree) Node(level int, index uint64) Node {
	nodes := t.levels[level]
	k := sort.Search(len(nodes), func(i int) bool { return nodes[i].Index >= index })
	if k < len(nodes) && nodes[k].Index == index {
		return nodes[k]
	}
	return Node{Index: index}
}

// Level returns the materialized nodes of one level (sorted by index).
func (t *Tree) Level(level int) []Node { return t.levels[level] }

// LeavesInRange returns the nonzero leaves with qL ≤ index ≤ qR.
func (t *Tree) LeavesInRange(qL, qR uint64) []Node {
	leaves := t.levels[0]
	lo := sort.Search(len(leaves), func(i int) bool { return leaves[i].Index >= qL })
	hi := sort.Search(len(leaves), func(i int) bool { return leaves[i].Index > qR })
	return leaves[lo:hi]
}

// HeavyChildren returns, for level l, all nodes that are children of
// level-(l+1) nodes with Count ≥ threshold — the per-round message of the
// §6.1 heavy-hitters protocol. Children with zero subtrees are
// materialized explicitly so the verifier always sees complete sibling
// pairs.
func (t *Tree) HeavyChildren(l int, threshold int64) []Node {
	parents := t.levels[l+1]
	var out []Node
	for _, p := range parents {
		if p.Count < threshold {
			continue
		}
		out = append(out, t.Node(l, 2*p.Index), t.Node(l, 2*p.Index+1))
	}
	return out
}

// Size returns the total number of materialized nodes, the prover's space
// in Theorem 5's accounting.
func (t *Tree) Size() int {
	n := 0
	for _, lv := range t.levels {
		n += len(lv)
	}
	return n
}

package hashtree

import (
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

// TestIncrementalExtendWorkersIdentical: building the tree with a worker
// pool must produce exactly the serial hashes at every level, for both
// hash kinds.
func TestIncrementalExtendWorkersIdentical(t *testing.T) {
	f := field.Mersenne()
	params, err := NewParams(14)
	if err != nil {
		t.Fatal(err)
	}
	ups := stream.UniformDeltas(params.U, 100, field.NewSplitMix64(21))
	rng := field.NewSplitMix64(22)
	rs := f.RandVec(rng, params.D)
	qs := f.RandVec(rng, params.D)

	for _, kind := range []Kind{Affine, Multilinear} {
		serial, err := NewIncremental(f, params, kind, ups)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewIncremental(f, params, kind, ups)
		if err != nil {
			t.Fatal(err)
		}
		par.Workers = -1
		for j := 0; j < params.D; j++ {
			if err := serial.Extend(rs[j], qs[j]); err != nil {
				t.Fatal(err)
			}
			if err := par.Extend(rs[j], qs[j]); err != nil {
				t.Fatal(err)
			}
			want, err := serial.Level(j + 1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Level(j + 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("kind=%v level %d: %d nodes, want %d", kind, j+1, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("kind=%v level %d node %d: parallel %+v, serial %+v", kind, j+1, i, got[i], want[i])
				}
			}
		}
	}
}

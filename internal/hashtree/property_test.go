package hashtree

import (
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/stream"
)

// TestRootLinearityQuick: the root hash is linear in the leaf vector —
// t(a+b) = t(a) + t(b) — for both hash kinds and both augmentations.
// Linearity is the property that makes streaming maintenance (Eq. 8)
// possible at all.
func TestRootLinearityQuick(t *testing.T) {
	params, err := NewParams(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{Affine, Multilinear} {
		for _, augmented := range []bool{false, true} {
			kind, augmented := kind, augmented
			hrng := field.NewSplitMix64(uint64(91 + int(kind)))
			var h *Hasher
			if augmented {
				h = NewAugmentedHasher(f61, params, kind, hrng)
			} else {
				h = NewHasher(f61, params, kind, hrng)
			}
			check := func(seed uint64) bool {
				rng := field.NewSplitMix64(seed)
				upsA := stream.UnitIncrements(params.U, 30, rng)
				upsB := stream.UnitIncrements(params.U, 30, rng)
				evA, evB, evAB := NewRootEvaluator(h), NewRootEvaluator(h), NewRootEvaluator(h)
				for _, u := range upsA {
					_ = evA.Update(u.Index, u.Delta)
					_ = evAB.Update(u.Index, u.Delta)
				}
				for _, u := range upsB {
					_ = evB.Update(u.Index, u.Delta)
					_ = evAB.Update(u.Index, u.Delta)
				}
				return evAB.Root() == f61.Add(evA.Root(), evB.Root())
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
				t.Errorf("kind=%v aug=%v: %v", kind, augmented, err)
			}
		}
	}
}

// TestRootOrderInvarianceQuick: the root does not depend on the order of
// stream updates (it is a function of the aggregated vector only).
func TestRootOrderInvarianceQuick(t *testing.T) {
	params, err := NewParams(6)
	if err != nil {
		t.Fatal(err)
	}
	h := NewAugmentedHasher(f61, params, Affine, field.NewSplitMix64(92))
	check := func(seed uint64) bool {
		rng := field.NewSplitMix64(seed)
		ups := stream.UnitIncrements(params.U, 40, rng)
		fwd, rev := NewRootEvaluator(h), NewRootEvaluator(h)
		for _, u := range ups {
			_ = fwd.Update(u.Index, u.Delta)
		}
		for i := len(ups) - 1; i >= 0; i-- {
			_ = rev.Update(ups[i].Index, ups[i].Delta)
		}
		return fwd.Root() == rev.Root() && fwd.Total() == rev.Total()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCancellationQuick: inserting then deleting the same item restores
// the root exactly (turnstile updates).
func TestCancellationQuick(t *testing.T) {
	params, err := NewParams(6)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHasher(f61, params, Affine, field.NewSplitMix64(93))
	check := func(seed uint64) bool {
		rng := field.NewSplitMix64(seed)
		base := stream.UnitIncrements(params.U, 20, rng)
		ev := NewRootEvaluator(h)
		for _, u := range base {
			_ = ev.Update(u.Index, u.Delta)
		}
		before := ev.Root()
		idx := rng.Uint64() % params.U
		_ = ev.Update(idx, 5)
		_ = ev.Update(idx, -5)
		return ev.Root() == before
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

package proofcache

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func key(ds string, v uint64, q string) Key { return Key{Dataset: ds, Version: v, Query: q} }

func TestHitMissEvict(t *testing.T) {
	c := New(100)
	val := func(n int) []byte { return bytes.Repeat([]byte{0xab}, n) }
	computes := 0
	get := func(k Key, n int) []byte {
		b, err := c.Get(k, func() ([]byte, error) { computes++; return val(n), nil })
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	get(key("a", 1, "q1"), 40)
	get(key("a", 1, "q2"), 40)
	if got := get(key("a", 1, "q1"), 40); !bytes.Equal(got, val(40)) {
		t.Fatal("hit returned wrong bytes")
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2", computes)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Bytes != 80 || s.Entries != 2 {
		t.Fatalf("stats %+v", s)
	}
	// Inserting 40 more evicts the LRU entry — q2, since q1 was just used.
	get(key("a", 2, "q1"), 40)
	s = c.Stats()
	if s.Evictions != 1 || s.Bytes != 80 || s.Entries != 2 {
		t.Fatalf("after eviction: %+v", s)
	}
	if computes != 3 {
		t.Fatalf("computes = %d, want 3", computes)
	}
	get(key("a", 1, "q2"), 40) // recompute: it was evicted
	if computes != 4 {
		t.Fatalf("computes = %d, want 4 (evicted entry served from cache?)", computes)
	}
	get(key("a", 1, "q1"), 40) // evicted by the line above? q1@1 was LRU
	if computes != 5 {
		t.Fatalf("computes = %d, want 5", computes)
	}
}

func TestOversizeNotStored(t *testing.T) {
	c := New(10)
	k := key("a", 1, "q")
	computes := 0
	for i := 0; i < 2; i++ {
		b, err := c.Get(k, func() ([]byte, error) { computes++; return make([]byte, 11), nil })
		if err != nil || len(b) != 11 {
			t.Fatalf("get: %v len %d", err, len(b))
		}
	}
	if computes != 2 {
		t.Fatalf("oversize value was cached (computes=%d)", computes)
	}
	if s := c.Stats(); s.Bytes != 0 || s.Entries != 0 {
		t.Fatalf("oversize left residue: %+v", s)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(100)
	k := key("a", 1, "q")
	boom := errors.New("boom")
	if _, err := c.Get(k, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	b, err := c.Get(k, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(b) != "ok" {
		t.Fatalf("recovery get: %v %q", err, b)
	}
}

// TestComputePanicUnwedges pins the panic path: a compute that panics
// must release its waiters with an error and leave the key usable, not
// wedge every later Get behind a never-closed flight.
func TestComputePanicUnwedges(t *testing.T) {
	c := New(100)
	k := key("a", 1, "q")
	entered := make(chan struct{})
	var waiterErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-entered
		_, waiterErr = c.Get(k, func() ([]byte, error) { return []byte("late"), nil })
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate out of Get")
			}
		}()
		c.Get(k, func() ([]byte, error) {
			close(entered)
			// Park until the waiter has joined the flight, so it exercises
			// the coalesced path rather than computing itself.
			for c.Stats().Coalesced == 0 {
				runtime.Gosched()
			}
			panic("boom")
		})
	}()
	wg.Wait()
	if waiterErr == nil {
		t.Fatal("coalesced waiter got a nil error from a panicked compute")
	}
	// The inflight slot is free again: a fresh Get computes and succeeds.
	b, err := c.Get(k, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(b) != "ok" {
		t.Fatalf("recovery get: %v %q", err, b)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New(1 << 20)
	const k = 50
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([][]byte, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := c.Get(key("a", 1, "q"), func() ([]byte, error) {
				computes.Add(1)
				<-gate // park until every other goroutine has joined the flight
				return []byte("proof"), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = b
		}(i)
	}
	// Coalesced increments as each waiter joins the in-flight compute, so
	// once it reads k-1 all the losers are parked behind the winner.
	for c.Stats().Coalesced < k-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes for %d concurrent gets, want 1", n, k)
	}
	for _, v := range vals {
		if string(v) != "proof" {
			t.Fatal("waiter got wrong bytes")
		}
	}
	s := c.Stats()
	if s.Hits < k-1 {
		t.Fatalf("hits = %d, want ≥ %d", s.Hits, k-1)
	}
	if s.Coalesced != uint64(k-1) {
		t.Fatalf("coalesced = %d, want %d", s.Coalesced, k-1)
	}
}

func TestDropDataset(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 3; i++ {
		k := key("a", uint64(i), "q")
		if _, err := c.Get(k, func() ([]byte, error) { return []byte{1}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get(key("b", 1, "q"), func() ([]byte, error) { return []byte{1}, nil }); err != nil {
		t.Fatal(err)
	}
	c.DropDataset("a")
	s := c.Stats()
	if s.Entries != 1 || s.Bytes != 1 {
		t.Fatalf("after drop: %+v", s)
	}
}

// TestRaceStress hammers one cache from many goroutines with version
// churn — the CI race step runs this under -race.
func TestRaceStress(t *testing.T) {
	c := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				version := uint64(i % 7) // churn: later versions evict earlier ones
				k := key("ds", version, fmt.Sprintf("q%d", i%3))
				b, err := c.Get(k, func() ([]byte, error) {
					return bytes.Repeat([]byte{byte(version)}, 64), nil
				})
				if err != nil || len(b) != 64 || b[0] != byte(version) {
					t.Errorf("g%d i%d: %v %v", g, i, err, b)
					return
				}
				if i%50 == 0 {
					c.DropDataset("ds")
				}
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes > 256 {
		t.Fatalf("budget exceeded: %+v", s)
	}
}

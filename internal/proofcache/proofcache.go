// Package proofcache is the server-side store of posted Fiat–Shamir
// proofs: an LRU cache with a byte budget, keyed by (dataset name,
// dataset version, canonical query encoding), with single-flight
// computation so k concurrent misses for one key cost one proof run.
//
// Invalidation is by key, not by sweep: every ingest batch bumps the
// dataset's version, so stale proofs simply stop being requested and
// age out under LRU pressure. The cache stores encoded proof bytes —
// exactly what the wire layer ships — and returns them aliased, so
// callers must treat the slice as read-only.
package proofcache

import (
	"container/list"
	"errors"
	"sync"
)

// Key identifies one cached proof.
type Key struct {
	Dataset string
	Version uint64
	Query   string // canonical query encoding (fs.Query.Encode), as a string for comparability
}

// Stats are the cache's monotone counters. Hits counts every Get that
// did not run compute — including calls that joined an in-flight
// computation, which Coalesced counts separately.
type Stats struct {
	Hits      uint64 // served without running compute (cached or coalesced)
	Misses    uint64 // ran compute
	Evictions uint64 // entries dropped for the byte budget
	Coalesced uint64 // hits that waited on another caller's compute
	Bytes     int64  // current cached bytes
	Entries   int    // current cached proofs
}

type entry struct {
	key Key
	val []byte
	lru *list.Element
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	entries  map[Key]*entry
	lru      *list.List // front = most recent; values are *entry
	inflight map[Key]*flight
	stats    Stats
}

// New returns a cache holding at most budget bytes of encoded proofs
// (the key overhead is not counted). A budget ≤ 0 disables storage:
// Get still single-flights concurrent computations but keeps nothing.
func New(budget int64) *Cache {
	return &Cache{
		budget:   budget,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
		inflight: make(map[Key]*flight),
	}
}

// Get returns the cached proof for k, computing and caching it on a
// miss. Concurrent Gets for the same key share one compute call; every
// waiter receives the same bytes (or the same error — errors are not
// cached). The returned slice is shared: callers must not modify it.
func (c *Cache) Get(k Key, compute func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.lru.MoveToFront(e.lru)
		c.stats.Hits++
		c.mu.Unlock()
		return e.val, nil
	}
	if fl, ok := c.inflight[k]; ok {
		c.stats.Hits++
		c.stats.Coalesced++
		c.mu.Unlock()
		<-fl.done
		return fl.val, fl.err
	}
	fl := &flight{done: make(chan struct{}), err: errComputePanicked}
	c.inflight[k] = fl
	c.stats.Misses++
	c.mu.Unlock()

	// Release the waiters and the inflight slot even if compute panics:
	// fl.err stays errComputePanicked for them, and the panic continues
	// up through this caller after the cleanup.
	defer func() {
		close(fl.done)
		c.mu.Lock()
		delete(c.inflight, k)
		if fl.err == nil {
			c.insertLocked(k, fl.val)
		}
		c.mu.Unlock()
	}()
	fl.val, fl.err = compute()
	return fl.val, fl.err
}

// errComputePanicked is what coalesced waiters receive when the caller
// running compute panicked out of Get before producing a result.
var errComputePanicked = errors.New("proofcache: compute panicked")

// insertLocked stores val under k, evicting least-recently-used entries
// until the budget holds. A value larger than the whole budget is not
// stored at all (it would only evict everything for nothing).
func (c *Cache) insertLocked(k Key, val []byte) {
	if int64(len(val)) > c.budget {
		return
	}
	if _, ok := c.entries[k]; ok {
		return // a racing Get of the same key already stored it
	}
	for c.used+int64(len(val)) > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.used -= int64(len(e.val))
		c.stats.Evictions++
	}
	e := &entry{key: k, val: val}
	e.lru = c.lru.PushFront(e)
	c.entries[k] = e
	c.used += int64(len(val))
}

// DropDataset removes every cached proof for the named dataset, at any
// version — used when a dataset is deleted outright (version-key
// invalidation handles ordinary ingest).
func (c *Cache) DropDataset(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.Dataset == name {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.used -= int64(len(e.val))
			c.stats.Evictions++
		}
		el = next
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Bytes = c.used
	s.Entries = len(c.entries)
	return s
}

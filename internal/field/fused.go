package field

import "math/bits"

// Fused sum-check kernels. An ℓ=2 sum-check round does two passes over the
// prover's table: Fold binds a variable (dst[w] = src[2w] + r·(src[2w+1] −
// src[2w])) and the next RoundMessage walks the folded table in pairs
// (n0, n1) = (dst[2q], dst[2q+1]) evaluating the combined polynomial at
// c = 0, 1, 2 — where the pair's line evaluates to n0, n1 and 2n1 − n0.
// The kernels below fuse those passes: the folded values are consumed for
// the message while still in registers, halving memory traffic on the
// dominant table walk. Folds use Shoup multiplication by the invariant
// challenge (see foldPairShoup), which serves both moduli, and the Σ
// accumulators are exact 128/192-bit adds reduced once per call, so
// results are bit-identical to the two-pass computation (field sums are
// order-independent).
//
// Aliasing contract (same as FoldPairs): dst may alias the front half of
// src — each group writes indices 2q, 2q+1 only after reading indices
// 4q..4q+3 ≥ 2q+1, and all later reads are past the written prefix.

// acc192 is an exact 192-bit accumulator for lazy sums of 128-bit terms.
type acc192 struct{ h, m, l uint64 }

func (a *acc192) add(ph, pl uint64) {
	var c uint64
	a.l, c = bits.Add64(a.l, pl, 0)
	a.m, c = bits.Add64(a.m, ph, c)
	a.h += c
}

func (f Field) reduceAcc(a acc192) Elem { return f.foldAcc3(a.h, a.m, a.l) }

// lineAt2 returns the ℓ=2 line through (0, n0), (1, n1) evaluated at
// c = 2: 2n1 − n0 mod p, for canonical inputs.
func lineAt2(n0, n1, p uint64) uint64 {
	df, bw := bits.Sub64(n1, n0, 0)
	df += (0 - bw) & p
	s := n1 + df
	if s >= p {
		s -= p
	}
	return s
}

// FoldPairsSum folds like FoldPairs and also returns Σ_i dst[i] — the
// identity-combiner projection of the fused fold+message pass. len(src)
// must be 2·len(dst); dst may alias the front half of src.
func (f Field) FoldPairsSum(dst, src []Elem, r Elem) Elem {
	if len(src) != 2*len(dst) {
		panic("field: FoldPairsSum length mismatch")
	}
	p := f.p
	rr, rp := uint64(r), f.shoup(r)
	var hi, lo uint64
	i := 0
	for ; i+2 <= len(dst); i += 2 {
		s, dd := src[2*i:2*i+4], dst[i:i+2]
		n0 := foldPairShoup(uint64(s[0]), uint64(s[1]), rr, rp, p)
		n1 := foldPairShoup(uint64(s[2]), uint64(s[3]), rr, rp, p)
		dd[0] = Elem(n0)
		dd[1] = Elem(n1)
		var c uint64
		lo, c = bits.Add64(lo, n0, 0)
		hi += c
		lo, c = bits.Add64(lo, n1, 0)
		hi += c
	}
	for ; i < len(dst); i++ {
		n := foldPairShoup(uint64(src[2*i]), uint64(src[2*i+1]), rr, rp, p)
		dst[i] = Elem(n)
		var c uint64
		lo, c = bits.Add64(lo, n, 0)
		hi += c
	}
	return f.foldAcc(hi, lo)
}

// PairsSumSq returns the degree-2 power-combiner round message of a table:
// (Σ_q e0², Σ_q e1², Σ_q e2²) over pairs (src[2q], src[2q+1]), where
// e0, e1, e2 are the pair's line evaluations at c = 0, 1, 2. len(src) must
// be even. This is the round-0 (no pending fold) message kernel.
func (f Field) PairsSumSq(src []Elem) (g0, g1, g2 Elem) {
	if len(src)%2 != 0 {
		panic("field: PairsSumSq odd length")
	}
	p := f.p
	var a0, a1, a2 acc192
	for q := 0; q+2 <= len(src); q += 2 {
		s := src[q : q+2]
		e0, e1 := uint64(s[0]), uint64(s[1])
		e2 := lineAt2(e0, e1, p)
		a0.add(bits.Mul64(e0, e0))
		a1.add(bits.Mul64(e1, e1))
		a2.add(bits.Mul64(e2, e2))
	}
	return f.reduceAcc(a0), f.reduceAcc(a1), f.reduceAcc(a2)
}

// PairsSumProd is PairsSumSq for the product combiner over two tables:
// (Σ_q eA0·eB0, Σ_q eA1·eB1, Σ_q eA2·eB2).
func (f Field) PairsSumProd(srcA, srcB []Elem) (g0, g1, g2 Elem) {
	checkLen2(len(srcA), len(srcB))
	if len(srcA)%2 != 0 {
		panic("field: PairsSumProd odd length")
	}
	p := f.p
	var a0, a1, a2 acc192
	for q := 0; q+2 <= len(srcA); q += 2 {
		sa, sb := srcA[q:q+2], srcB[q:q+2]
		ea0, ea1 := uint64(sa[0]), uint64(sa[1])
		eb0, eb1 := uint64(sb[0]), uint64(sb[1])
		ea2 := lineAt2(ea0, ea1, p)
		eb2 := lineAt2(eb0, eb1, p)
		a0.add(bits.Mul64(ea0, eb0))
		a1.add(bits.Mul64(ea1, eb1))
		a2.add(bits.Mul64(ea2, eb2))
	}
	return f.reduceAcc(a0), f.reduceAcc(a1), f.reduceAcc(a2)
}

// FoldPairsSumSq fuses a FoldPairs(dst, src, r) with the next round's
// degree-2 power-combiner message over dst: it writes the folded table and
// returns (Σ e0², Σ e1², Σ e2²) over the fresh pairs (dst[2q], dst[2q+1])
// without re-reading dst from memory. len(src) = 2·len(dst), len(dst)
// even; dst may alias the front half of src.
func (f Field) FoldPairsSumSq(dst, src []Elem, r Elem) (g0, g1, g2 Elem) {
	if len(src) != 2*len(dst) {
		panic("field: FoldPairsSumSq length mismatch")
	}
	if len(dst)%2 != 0 {
		panic("field: FoldPairsSumSq odd dst length")
	}
	p := f.p
	rr, rp := uint64(r), f.shoup(r)
	var a0, a1, a2 acc192
	for q := 0; q+2 <= len(dst); q += 2 {
		s, dd := src[2*q:2*q+4], dst[q:q+2]
		n0 := foldPairShoup(uint64(s[0]), uint64(s[1]), rr, rp, p)
		n1 := foldPairShoup(uint64(s[2]), uint64(s[3]), rr, rp, p)
		dd[0] = Elem(n0)
		dd[1] = Elem(n1)
		n2 := lineAt2(n0, n1, p)
		a0.add(bits.Mul64(n0, n0))
		a1.add(bits.Mul64(n1, n1))
		a2.add(bits.Mul64(n2, n2))
	}
	return f.reduceAcc(a0), f.reduceAcc(a1), f.reduceAcc(a2)
}

// FoldPairsSumProd fuses two FoldPairs (one per factor table) with the
// next round's product-combiner message over the folded pair of tables.
// Both dsts may alias the front halves of their srcs.
func (f Field) FoldPairsSumProd(dstA, dstB, srcA, srcB []Elem, r Elem) (g0, g1, g2 Elem) {
	if len(srcA) != 2*len(dstA) || len(srcB) != 2*len(dstB) {
		panic("field: FoldPairsSumProd length mismatch")
	}
	checkLen2(len(dstA), len(dstB))
	if len(dstA)%2 != 0 {
		panic("field: FoldPairsSumProd odd dst length")
	}
	p := f.p
	rr, rp := uint64(r), f.shoup(r)
	var a0, a1, a2 acc192
	for q := 0; q+2 <= len(dstA); q += 2 {
		sa, da := srcA[2*q:2*q+4], dstA[q:q+2]
		na0 := foldPairShoup(uint64(sa[0]), uint64(sa[1]), rr, rp, p)
		na1 := foldPairShoup(uint64(sa[2]), uint64(sa[3]), rr, rp, p)
		da[0] = Elem(na0)
		da[1] = Elem(na1)
		sb, db := srcB[2*q:2*q+4], dstB[q:q+2]
		nb0 := foldPairShoup(uint64(sb[0]), uint64(sb[1]), rr, rp, p)
		nb1 := foldPairShoup(uint64(sb[2]), uint64(sb[3]), rr, rp, p)
		db[0] = Elem(nb0)
		db[1] = Elem(nb1)
		na2 := lineAt2(na0, na1, p)
		nb2 := lineAt2(nb0, nb1, p)
		a0.add(bits.Mul64(na0, nb0))
		a1.add(bits.Mul64(na1, nb1))
		a2.add(bits.Mul64(na2, nb2))
	}
	return f.reduceAcc(a0), f.reduceAcc(a1), f.reduceAcc(a2)
}

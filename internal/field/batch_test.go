package field

import (
	"testing"
)

// fields under test: the Mersenne fast path and a generic prime.
func batchFields(t *testing.T) []Field {
	t.Helper()
	generic, err := New(1000003)
	if err != nil {
		t.Fatal(err)
	}
	return []Field{Mersenne(), generic}
}

func randVecs(f Field, n int, seed uint64) ([]Elem, []Elem) {
	rng := NewSplitMix64(seed)
	return f.RandVec(rng, n), f.RandVec(rng, n)
}

func TestBatchMatchesScalar(t *testing.T) {
	const n = 257
	for _, f := range batchFields(t) {
		a, b := randVecs(f, n, 42)
		got := make([]Elem, n)

		f.AddSlices(got, a, b)
		for i := range got {
			if want := f.Add(a[i], b[i]); got[i] != want {
				t.Fatalf("AddSlices[%d] = %d, want %d", i, got[i], want)
			}
		}
		f.SubSlices(got, a, b)
		for i := range got {
			if want := f.Sub(a[i], b[i]); got[i] != want {
				t.Fatalf("SubSlices[%d] = %d, want %d", i, got[i], want)
			}
		}
		f.MulSlices(got, a, b)
		for i := range got {
			if want := f.Mul(a[i], b[i]); got[i] != want {
				t.Fatalf("MulSlices[%d] = %d, want %d", i, got[i], want)
			}
		}
		c := f.Rand(NewSplitMix64(7))
		f.ScaleSlice(got, a, c)
		for i := range got {
			if want := f.Mul(a[i], c); got[i] != want {
				t.Fatalf("ScaleSlice[%d] = %d, want %d", i, got[i], want)
			}
		}
		f.AddScaledSlice(got, a, b, c)
		for i := range got {
			if want := f.Add(a[i], f.Mul(c, b[i])); got[i] != want {
				t.Fatalf("AddScaledSlice[%d] = %d, want %d", i, got[i], want)
			}
		}

		var sum, dot Elem
		for i := range a {
			sum = f.Add(sum, a[i])
			dot = f.Add(dot, f.Mul(a[i], b[i]))
		}
		if got := f.SumSlice(a); got != sum {
			t.Fatalf("SumSlice = %d, want %d", got, sum)
		}
		if got := f.DotSlices(a, b); got != dot {
			t.Fatalf("DotSlices = %d, want %d", got, dot)
		}
	}
}

func TestFoldPairs(t *testing.T) {
	const half = 128
	for _, f := range batchFields(t) {
		src, _ := randVecs(f, 2*half, 99)
		r := f.Rand(NewSplitMix64(3))
		dst := make([]Elem, half)
		f.FoldPairs(dst, src, r)
		for i := 0; i < half; i++ {
			// (1-r)·t0 + r·t1, written as t0 + r·(t1-t0).
			want := f.Add(src[2*i], f.Mul(r, f.Sub(src[2*i+1], src[2*i])))
			if dst[i] != want {
				t.Fatalf("FoldPairs[%d] = %d, want %d", i, dst[i], want)
			}
		}
		// Aliasing the front half of src must be safe (in-place fold).
		inPlace := append([]Elem(nil), src...)
		f.FoldPairs(inPlace[:half], inPlace, r)
		for i := 0; i < half; i++ {
			if inPlace[i] != dst[i] {
				t.Fatalf("in-place FoldPairs[%d] = %d, want %d", i, inPlace[i], dst[i])
			}
		}
	}
}

func TestReduceAndFromInt64Slices(t *testing.T) {
	for _, f := range batchFields(t) {
		xs := []uint64{0, 1, f.Modulus() - 1, f.Modulus(), f.Modulus() + 5, ^uint64(0)}
		dst := make([]Elem, len(xs))
		f.ReduceSlice(dst, xs)
		for i, x := range xs {
			if want := f.Reduce(x); dst[i] != want {
				t.Fatalf("ReduceSlice[%d] = %d, want %d", i, dst[i], want)
			}
		}
		is := []int64{0, 1, -1, 1000, -1000, -(1 << 62)}
		dst = make([]Elem, len(is))
		f.FromInt64Slice(dst, is)
		for i, x := range is {
			if want := f.FromInt64(x); dst[i] != want {
				t.Fatalf("FromInt64Slice[%d] = %d, want %d", i, dst[i], want)
			}
		}
	}
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	f := Mersenne()
	for name, fn := range map[string]func(){
		"AddSlices": func() { f.AddSlices(make([]Elem, 2), make([]Elem, 3), make([]Elem, 3)) },
		"FoldPairs": func() { f.FoldPairs(make([]Elem, 2), make([]Elem, 3), 1) },
		"DotSlices": func() { f.DotSlices(make([]Elem, 2), make([]Elem, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: length mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

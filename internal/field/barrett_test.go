package field

import (
	"math"
	"math/big"
	"math/bits"
	"testing"
)

// adversarialModuli are the reducer's hard cases: the smallest modulus,
// tiny primes, the smallest prime above a power-of-two universe, primes
// within a few units of the 2^62 ceiling, and the Mersenne fast path
// (which must agree with the generic machinery it bypasses).
var adversarialModuli = []uint64{
	2,
	3,
	5,
	1048583,             // smallest prime ≥ 2^20
	2305843009213693951, // 2^61 - 1 (Mersenne fast path)
	2305843009213693967, // smallest prime > 2^61
	4611686018427387847, // largest prime < 2^62
	4611686018427387817, // second-largest prime < 2^62
}

func TestAdversarialModuliAreValid(t *testing.T) {
	for _, p := range adversarialModuli {
		if !IsPrime(p) {
			t.Errorf("modulus %d is not prime", p)
		}
		if _, err := New(p); err != nil {
			t.Errorf("New(%d): %v", p, err)
		}
	}
}

// interestingElems returns boundary elements plus full-range random ones.
func interestingElems(f Field, rng RNG, n int) []Elem {
	xs := []Elem{0, 1}
	p := f.Modulus()
	if p > 2 {
		xs = append(xs, Elem(p-1), Elem(p-2), Elem(p/2), Elem(p/2+1))
	}
	for len(xs) < n {
		xs = append(xs, f.Rand(rng))
	}
	return xs
}

// TestRemNormAgainstDiv64 drives the core 2-word reducer over random
// inputs spanning its whole precondition (h < d) and checks it against the
// hardware divider it replaces.
func TestRemNormAgainstDiv64(t *testing.T) {
	rng := NewSplitMix64(0xbadc0de)
	for _, p := range adversarialModuli {
		f := newField(p)
		for i := 0; i < 2000; i++ {
			h := rng.Uint64() % f.d
			l := rng.Uint64()
			got := remNorm(h, l, f.d, f.v)
			_, want := bits.Div64(h, l, f.d)
			if got != want {
				t.Fatalf("p=%d: remNorm(%d,%d) = %d, Div64 remainder %d", p, h, l, got, want)
			}
		}
	}
}

// TestMulAgainstBigIntAdversarial checks Mul, Reduce, reduce128, and the
// lazy-accumulator folds against math/big over the adversarial moduli with
// boundary and full-range inputs.
func TestMulAgainstBigIntAdversarial(t *testing.T) {
	for _, p := range adversarialModuli {
		f := newField(p)
		bp := new(big.Int).SetUint64(p)
		rng := NewSplitMix64(p)
		elems := interestingElems(f, rng, 24)
		for _, a := range elems {
			for _, b := range elems {
				want := new(big.Int).Mul(new(big.Int).SetUint64(uint64(a)), new(big.Int).SetUint64(uint64(b)))
				want.Mod(want, bp)
				if got := f.Mul(a, b); uint64(got) != want.Uint64() {
					t.Fatalf("p=%d: Mul(%d,%d) = %d, want %d", p, a, b, got, want.Uint64())
				}
			}
		}
		shift64 := new(big.Int).Lsh(big.NewInt(1), 64)
		for i := 0; i < 500; i++ {
			// Reduce over the full word range.
			x := rng.Uint64()
			want := new(big.Int).Mod(new(big.Int).SetUint64(x), bp).Uint64()
			if got := f.Reduce(x); uint64(got) != want {
				t.Fatalf("p=%d: Reduce(%d) = %d, want %d", p, x, got, want)
			}
			// reduce128 over its full precondition hi < p.
			hi, lo := x%p, rng.Uint64()
			w := new(big.Int).SetUint64(hi)
			w.Mul(w, shift64).Add(w, new(big.Int).SetUint64(lo)).Mod(w, bp)
			if got := f.reduce128(hi, lo); got != w.Uint64() {
				t.Fatalf("p=%d: reduce128(%d,%d) = %d, want %d", p, hi, lo, got, w.Uint64())
			}
			// foldAcc and foldAcc3 over arbitrary words.
			m2, l2 := rng.Uint64(), rng.Uint64()
			w.SetUint64(hi)
			w.Mul(w, shift64).Add(w, new(big.Int).SetUint64(lo)).Mod(w, bp)
			if got := f.foldAcc(hi, lo); uint64(got) != w.Uint64() {
				t.Fatalf("p=%d: foldAcc(%d,%d) = %d, want %d", p, hi, lo, got, w.Uint64())
			}
			w.SetUint64(hi)
			w.Mul(w, shift64).Add(w, new(big.Int).SetUint64(m2))
			w.Mul(w, shift64).Add(w, new(big.Int).SetUint64(l2)).Mod(w, bp)
			if got := f.foldAcc3(hi, m2, l2); uint64(got) != w.Uint64() {
				t.Fatalf("p=%d: foldAcc3(%d,%d,%d) = %d, want %d", p, hi, m2, l2, got, w.Uint64())
			}
		}
	}
}

// TestShoupMulFullRange checks the invariant-factor multiplier over its
// documented domain: canonical w, arbitrary 64-bit t (FoldPairs feeds it
// differences in (0, 2p)).
func TestShoupMulFullRange(t *testing.T) {
	for _, p := range adversarialModuli {
		f := newField(p)
		bp := new(big.Int).SetUint64(p)
		rng := NewSplitMix64(^p)
		for i := 0; i < 1000; i++ {
			w := uint64(f.Rand(rng))
			wp := f.shoup(Elem(w))
			var tt uint64
			switch i % 3 {
			case 0:
				tt = rng.Uint64() // full range
			case 1:
				tt = uint64(f.Rand(rng)) + p // the (p, 2p) band FoldPairs uses
			default:
				tt = uint64(f.Rand(rng))
			}
			want := new(big.Int).Mul(new(big.Int).SetUint64(w), new(big.Int).SetUint64(tt))
			want.Mod(want, bp)
			if got := shoupMul(tt, w, wp, p); got != want.Uint64() {
				t.Fatalf("p=%d: shoupMul(t=%d, w=%d) = %d, want %d", p, tt, w, got, want.Uint64())
			}
		}
		// foldPairShoup against the scalar composition.
		for i := 0; i < 500; i++ {
			t0, t1, r := f.Rand(rng), f.Rand(rng), f.Rand(rng)
			rp := f.shoup(r)
			want := f.Add(t0, f.Mul(r, f.Sub(t1, t0)))
			if got := foldPairShoup(uint64(t0), uint64(t1), uint64(r), rp, p); got != uint64(want) {
				t.Fatalf("p=%d: foldPairShoup(%d,%d,%d) = %d, want %d", p, t0, t1, r, got, want)
			}
		}
	}
}

// TestFromInt64Extremes covers the signed ingest path at the integer
// boundaries for every adversarial modulus.
func TestFromInt64Extremes(t *testing.T) {
	for _, p := range adversarialModuli {
		f := newField(p)
		bp := new(big.Int).SetInt64(0).SetUint64(p)
		for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, math.MinInt64 + 1, int64(p - 1), -int64(p - 1)} {
			want := new(big.Int).Mod(big.NewInt(v), bp).Uint64()
			if got := f.FromInt64(v); uint64(got) != want {
				t.Fatalf("p=%d: FromInt64(%d) = %d, want %d", p, v, got, want)
			}
		}
	}
}

// TestInvMatchesPow cross-checks the binary-xgcd inverse against Fermat
// exponentiation on every adversarial (prime) modulus.
func TestInvMatchesPow(t *testing.T) {
	for _, p := range adversarialModuli {
		f := newField(p)
		rng := NewSplitMix64(p + 1)
		elems := interestingElems(f, rng, 40)
		for _, a := range elems {
			inv := f.Inv(a)
			if a == 0 {
				if inv != 0 {
					t.Fatalf("p=%d: Inv(0) = %d, want 0", p, inv)
				}
				continue
			}
			if got := f.Mul(a, inv); got != 1 {
				t.Fatalf("p=%d: a·Inv(a) = %d for a=%d", p, got, a)
			}
			if p > 2 {
				if want := f.Pow(a, p-2); inv != want {
					t.Fatalf("p=%d: Inv(%d) = %d, Pow gives %d", p, a, inv, want)
				}
			}
		}
	}
}

// scriptedRNG replays a fixed word sequence (cycling), so tests can drive
// the sampler through an exactly known candidate stream.
type scriptedRNG struct {
	words []uint64
	i     int
}

func (s *scriptedRNG) Uint64() uint64 {
	w := s.words[s.i%len(s.words)]
	s.i++
	return w
}

// TestRandExactUniformity proves the word-splitting sampler is exactly
// uniform: feeding it a word containing every k-bit candidate value
// exactly once must yield every residue in [0, p) exactly once, with the
// candidates ≥ p rejected — i.e. the map from candidate bits to outputs is
// the identity on [0, p) and nothing else contributes.
func TestRandExactUniformity(t *testing.T) {
	// p = 11: k = 4, so one 64-bit word carries 16 nibble candidates.
	f := newField(11)
	if k, per := f.randSplit(); k != 4 || per != 16 {
		t.Fatalf("randSplit() = (%d, %d), want (4, 16)", k, per)
	}
	// Nibbles 0..15 in draw order, low bits first.
	asc := uint64(0xfedcba9876543210)
	out := make([]Elem, 11)
	f.FillRand(&scriptedRNG{words: []uint64{asc}}, out)
	for i, e := range out {
		if e != Elem(i) {
			t.Fatalf("ascending word: out[%d] = %d, want %d", i, e, i)
		}
	}
	// A permuted word must yield the same multiset in permuted order:
	// nibbles 15..0 high-to-low means draw order 15, 14, ..., 0 and only
	// the final 11 survive rejection, reversed.
	desc := uint64(0x0123456789abcdef)
	f.FillRand(&scriptedRNG{words: []uint64{desc}}, out)
	for i, e := range out {
		if want := Elem(10 - i); e != want {
			t.Fatalf("descending word: out[%d] = %d, want %d", i, e, want)
		}
	}
	// Frequency sanity over a long pseudorandom stream: every residue of a
	// small field within 5σ of the mean.
	const draws = 110000
	counts := make([]int, 11)
	rng := NewSplitMix64(99)
	for i := 0; i < draws; i++ {
		counts[f.Rand(rng)]++
	}
	mean := float64(draws) / 11
	sigma := math.Sqrt(mean * (1 - 1.0/11))
	for v, c := range counts {
		if math.Abs(float64(c)-mean) > 5*sigma {
			t.Errorf("residue %d drawn %d times, mean %.0f, |Δ| > 5σ", v, c, mean)
		}
	}
}

// TestMersenneRandStreamCompat pins the Mersenne sampler to its historical
// behavior: one 61-bit candidate per draw, so the consumed random stream
// (and therefore every recorded transcript seeded from SplitMix64) is
// unchanged by the word-splitting rewrite.
func TestMersenneRandStreamCompat(t *testing.T) {
	f := Mersenne()
	ref := func(rng RNG) Elem {
		for {
			if v := rng.Uint64() & Mersenne61; v < Mersenne61 {
				return Elem(v)
			}
		}
	}
	a, b := NewSplitMix64(7), NewSplitMix64(7)
	for i := 0; i < 5000; i++ {
		if got, want := f.Rand(a), ref(b); got != want {
			t.Fatalf("draw %d: Rand = %d, reference = %d", i, got, want)
		}
	}
}

// FuzzBarrettMul asserts the division-free multiply agrees with the
// hardware divider for arbitrary (modulus, a, b) triples.
func FuzzBarrettMul(fz *testing.F) {
	fz.Add(uint64(2), uint64(1), uint64(1))
	fz.Add(uint64(Mersenne61), uint64(Mersenne61-1), uint64(Mersenne61-1))
	fz.Add(uint64(4611686018427387847), uint64(4611686018427387846), uint64(2))
	fz.Add(uint64(1048583), uint64(1048582), uint64(524291))
	fz.Add(uint64(3), uint64(2), uint64(2))
	fz.Fuzz(func(t *testing.T, p, a, b uint64) {
		p %= uint64(1) << 62
		if p < 2 {
			p = 2
		}
		f := newField(p)
		a, b = a%p, b%p
		// Reference: 128-bit product reduced by the hardware divider.
		hi, lo := bits.Mul64(a, b)
		_, want := bits.Div64(hi%p, lo, p)
		if got := f.Mul(Elem(a), Elem(b)); uint64(got) != want {
			t.Fatalf("p=%d: Mul(%d,%d) = %d, Div64 gives %d", p, a, b, got, want)
		}
		// The Barrett path proper: the batch kernels (scalar Mul keeps the
		// divider on generic moduli, so single-element kernel calls are the
		// way to pin the division-free reducers against Div64).
		var dst [1]Elem
		f.MulSlices(dst[:], []Elem{Elem(a)}, []Elem{Elem(b)})
		if uint64(dst[0]) != want {
			t.Fatalf("p=%d: MulSlices(%d,%d) = %d, Div64 gives %d", p, a, b, dst[0], want)
		}
		// And the Shoup invariant-factor path, b as the slice-constant.
		f.ScaleSlice(dst[:], []Elem{Elem(a)}, Elem(b))
		if uint64(dst[0]) != want {
			t.Fatalf("p=%d: ScaleSlice(%d by %d) = %d, Div64 gives %d", p, a, b, dst[0], want)
		}
	})
}

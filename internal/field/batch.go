package field

import "math/bits"

// Batch (slice-wise) arithmetic: the kernel layer under the parallel
// prover engine. FoldPairs, DotSlices, AddSlices, and SumSlice are the
// chunk bodies of today's hot paths (sum-check folds and messages, dense
// LDE evaluation, the one-round prover); the remaining kernels round out
// the slice-wise API so engine code added later shares one
// implementation instead of re-deriving the dual Mersenne/generic paths.
// Hoisting the modulus dispatch out of the per-element loop (one branch
// per slice instead of one per multiply) makes these measurably faster
// than element-wise calls. All kernels tolerate dst aliasing a source
// slice and panic on length mismatches, mirroring the built-in copy
// contract.

// AddSlices sets dst[i] = a[i] + b[i] for every i. All three slices must
// have equal length.
func (f Field) AddSlices(dst, a, b []Elem) {
	checkLen(len(dst), len(a), len(b))
	p := f.p
	for i := range dst {
		s := uint64(a[i]) + uint64(b[i])
		if s >= p {
			s -= p
		}
		dst[i] = Elem(s)
	}
}

// SubSlices sets dst[i] = a[i] - b[i] for every i.
func (f Field) SubSlices(dst, a, b []Elem) {
	checkLen(len(dst), len(a), len(b))
	p := f.p
	for i := range dst {
		ai, bi := a[i], b[i]
		if ai >= bi {
			dst[i] = ai - bi
		} else {
			dst[i] = Elem(uint64(ai) + p - uint64(bi))
		}
	}
}

// MulSlices sets dst[i] = a[i]·b[i] for every i.
func (f Field) MulSlices(dst, a, b []Elem) {
	checkLen(len(dst), len(a), len(b))
	if f.p == Mersenne61 {
		for i := range dst {
			dst[i] = Elem(mul61(uint64(a[i]), uint64(b[i])))
		}
		return
	}
	p := f.p
	for i := range dst {
		hi, lo := bits.Mul64(uint64(a[i]), uint64(b[i]))
		_, rem := bits.Div64(hi, lo, p)
		dst[i] = Elem(rem)
	}
}

// ScaleSlice sets dst[i] = c·a[i] for every i.
func (f Field) ScaleSlice(dst, a []Elem, c Elem) {
	checkLen2(len(dst), len(a))
	if c == 1 {
		copy(dst, a)
		return
	}
	if f.p == Mersenne61 {
		for i := range dst {
			dst[i] = Elem(mul61(uint64(a[i]), uint64(c)))
		}
		return
	}
	p := f.p
	for i := range dst {
		hi, lo := bits.Mul64(uint64(a[i]), uint64(c))
		_, rem := bits.Div64(hi, lo, p)
		dst[i] = Elem(rem)
	}
}

// AddScaledSlice sets dst[i] = a[i] + c·b[i] for every i — the fused
// accumulate step of LDE folds.
func (f Field) AddScaledSlice(dst, a, b []Elem, c Elem) {
	checkLen(len(dst), len(a), len(b))
	p := f.p
	if f.p == Mersenne61 {
		for i := range dst {
			s := uint64(a[i]) + mul61(uint64(b[i]), uint64(c))
			if s >= p {
				s -= p
			}
			dst[i] = Elem(s)
		}
		return
	}
	for i := range dst {
		hi, lo := bits.Mul64(uint64(b[i]), uint64(c))
		_, rem := bits.Div64(hi, lo, p)
		s := uint64(a[i]) + rem
		if s >= p {
			s -= p
		}
		dst[i] = Elem(s)
	}
}

// FoldPairs sets dst[i] = src[2i] + r·(src[2i+1] − src[2i]) — binding one
// ℓ=2 LDE variable to r across a whole table, the inner loop of both the
// sum-check prover's Fold and dense evaluation. len(src) must be
// 2·len(dst); dst may alias the front half of src.
func (f Field) FoldPairs(dst, src []Elem, r Elem) {
	if len(src) != 2*len(dst) {
		panic("field: FoldPairs length mismatch")
	}
	p := f.p
	if f.p == Mersenne61 {
		for i := range dst {
			t0, t1 := src[2*i], src[2*i+1]
			var diff uint64
			if t1 >= t0 {
				diff = uint64(t1 - t0)
			} else {
				diff = uint64(t1) + p - uint64(t0)
			}
			s := uint64(t0) + mul61(diff, uint64(r))
			if s >= p {
				s -= p
			}
			dst[i] = Elem(s)
		}
		return
	}
	for i := range dst {
		t0, t1 := src[2*i], src[2*i+1]
		var diff uint64
		if t1 >= t0 {
			diff = uint64(t1 - t0)
		} else {
			diff = uint64(t1) + p - uint64(t0)
		}
		hi, lo := bits.Mul64(diff, uint64(r))
		_, rem := bits.Div64(hi, lo, p)
		s := uint64(t0) + rem
		if s >= p {
			s -= p
		}
		dst[i] = Elem(s)
	}
}

// ReduceSlice sets dst[i] = xs[i] mod p for every i.
func (f Field) ReduceSlice(dst []Elem, xs []uint64) {
	checkLen2(len(dst), len(xs))
	p := f.p
	for i := range dst {
		dst[i] = Elem(xs[i] % p)
	}
}

// FromInt64Slice sets dst[i] = xs[i] mod p (negatives wrapping) for every
// i — how a batch of stream deltas enters the field.
func (f Field) FromInt64Slice(dst []Elem, xs []int64) {
	checkLen2(len(dst), len(xs))
	for i := range dst {
		dst[i] = f.FromInt64(xs[i])
	}
}

// SumSlice returns Σ_i xs[i] mod p.
func (f Field) SumSlice(xs []Elem) Elem {
	p := f.p
	var acc uint64
	for _, x := range xs {
		acc += uint64(x)
		if acc >= p {
			acc -= p
		}
	}
	return Elem(acc)
}

// DotSlices returns Σ_i a[i]·b[i] mod p.
func (f Field) DotSlices(a, b []Elem) Elem {
	checkLen2(len(a), len(b))
	if f.p == Mersenne61 {
		var acc uint64
		for i := range a {
			acc += mul61(uint64(a[i]), uint64(b[i]))
			if acc >= Mersenne61 {
				acc -= Mersenne61
			}
		}
		return Elem(acc)
	}
	var acc Elem
	for i := range a {
		acc = f.Add(acc, f.Mul(a[i], b[i]))
	}
	return acc
}

func checkLen(a, b, c int) {
	if a != b || a != c {
		panic("field: slice length mismatch")
	}
}

func checkLen2(a, b int) {
	if a != b {
		panic("field: slice length mismatch")
	}
}

package field

import "math/bits"

// Batch (slice-wise) arithmetic: the kernel layer under the parallel
// prover engine. FoldPairs, DotSlices, AddSlices, and SumSlice are the
// chunk bodies of today's hot paths (sum-check folds and messages, dense
// LDE evaluation, the one-round prover); the remaining kernels round out
// the slice-wise API so engine code added later shares one
// implementation instead of re-deriving the dual Mersenne/generic paths.
//
// No kernel executes a hardware divide: the Mersenne path folds bits and
// the generic path uses the Field's precomputed reducer, with the modulus
// dispatch hoisted out of the per-element loop (one branch per slice
// instead of one per multiply). Generic loops work in the "shifted
// domain": pre-shifting one multiplicand by sh (safe — x < p means
// x<<sh < d fits a word) makes the 128-bit product arrive already
// normalized for remNorm, so the per-element reduction is branch-free
// multiply/add/cmov with a single final >>sh. Reductions are lazy where
// the algebra allows: multiply-add kernels (AddScaledSlice, FoldPairs)
// reduce the product+addend once, and the accumulating kernels (SumSlice,
// DotSlices) add exactly in 128/192-bit registers and reduce once per
// slice. All kernels tolerate dst aliasing a source slice and panic on
// length mismatches, mirroring the built-in copy contract.

// barrettReduce reduces an arbitrary 2-word value hi·2^64 + lo < p·2^64
// with explicit reducer constants (see reduce128 for the method form).
func barrettReduce(hi, lo uint64, sh uint, d, v uint64) uint64 {
	sh &= 63
	h := hi<<sh | lo>>((64-sh)&63)
	l := lo << sh
	return remNorm(h, l, d, v) >> sh
}

// AddSlices sets dst[i] = a[i] + b[i] for every i. All three slices must
// have equal length.
func (f Field) AddSlices(dst, a, b []Elem) {
	checkLen(len(dst), len(a), len(b))
	p := f.p
	for i := range dst {
		s := uint64(a[i]) + uint64(b[i])
		if s >= p {
			s -= p
		}
		dst[i] = Elem(s)
	}
}

// SubSlices sets dst[i] = a[i] - b[i] for every i.
func (f Field) SubSlices(dst, a, b []Elem) {
	checkLen(len(dst), len(a), len(b))
	p := f.p
	for i := range dst {
		ai, bi := a[i], b[i]
		if ai >= bi {
			dst[i] = ai - bi
		} else {
			dst[i] = Elem(uint64(ai) + p - uint64(bi))
		}
	}
}

// MulSlices sets dst[i] = a[i]·b[i] for every i. Both operands vary, so
// the generic path is the pre-shifted reducer. The loop is deliberately
// rolled: each element needs three dependent full-width multiplies, and
// the out-of-order core overlaps iterations on its own — manual unrolling
// only adds register pressure around the MULQ-pinned AX/DX pair.
func (f Field) MulSlices(dst, a, b []Elem) {
	checkLen(len(dst), len(a), len(b))
	if f.p == Mersenne61 {
		for i := range dst {
			dst[i] = Elem(mul61(uint64(a[i]), uint64(b[i])))
		}
		return
	}
	sh, d, v := f.sh&63, f.d, f.v
	for i := range dst {
		hi, lo := bits.Mul64(uint64(a[i]), uint64(b[i])<<sh)
		dst[i] = Elem(remNorm(hi, lo, d, v) >> sh)
	}
}

// ScaleSlice sets dst[i] = c·a[i] for every i. The constant factor makes
// this a Shoup multiplication on both moduli: one divide precomputes
// ⌊c·2^64/p⌋, then every element is three multiplies and a cmov.
func (f Field) ScaleSlice(dst, a []Elem, c Elem) {
	checkLen2(len(dst), len(a))
	if c == 1 {
		copy(dst, a)
		return
	}
	p := f.p
	cc, cp := uint64(c), f.shoup(c)
	for i := range dst {
		dst[i] = Elem(shoupMul(uint64(a[i]), cc, cp, p))
	}
}

// AddScaledSlice sets dst[i] = a[i] + c·b[i] for every i — the fused
// accumulate step of LDE folds. Shoup multiplication by the invariant c
// plus one conditional subtract for the add.
func (f Field) AddScaledSlice(dst, a, b []Elem, c Elem) {
	checkLen(len(dst), len(a), len(b))
	p := f.p
	cc, cp := uint64(c), f.shoup(c)
	for i := range dst {
		s := uint64(a[i]) + shoupMul(uint64(b[i]), cc, cp, p)
		if s >= p {
			s -= p
		}
		dst[i] = Elem(s)
	}
}

// FoldPairs sets dst[i] = src[2i] + r·(src[2i+1] − src[2i]) — binding one
// ℓ=2 LDE variable to r across a whole table, the inner loop of both the
// sum-check prover's Fold and dense evaluation. The fold factor r is
// invariant across the slice, so both moduli share one Shoup loop,
// unrolled 4-wide with fully inlined pair bodies so four independent
// multiplies stay in flight. len(src) must be 2·len(dst); dst may alias
// the front half of src (group i writes index i only after reading
// indices 2i and 2i+1 ≥ i, so the in-place fold never reads a clobbered
// slot).
func (f Field) FoldPairs(dst, src []Elem, r Elem) {
	if len(src) != 2*len(dst) {
		panic("field: FoldPairs length mismatch")
	}
	p := f.p
	rr, rp := uint64(r), f.shoup(r)
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		// Subslices of fixed length let the compiler drop per-element
		// bounds checks; all loads precede the (possibly aliasing)
		// stores in program order, preserving the in-place contract.
		s, dd := src[2*i:2*i+8], dst[i:i+4]
		n0 := foldPairShoup(uint64(s[0]), uint64(s[1]), rr, rp, p)
		n1 := foldPairShoup(uint64(s[2]), uint64(s[3]), rr, rp, p)
		n2 := foldPairShoup(uint64(s[4]), uint64(s[5]), rr, rp, p)
		n3 := foldPairShoup(uint64(s[6]), uint64(s[7]), rr, rp, p)
		dd[0] = Elem(n0)
		dd[1] = Elem(n1)
		dd[2] = Elem(n2)
		dd[3] = Elem(n3)
	}
	for ; i < len(dst); i++ {
		dst[i] = Elem(foldPairShoup(uint64(src[2*i]), uint64(src[2*i+1]), rr, rp, p))
	}
}

// ReduceSlice sets dst[i] = xs[i] mod p for every i.
func (f Field) ReduceSlice(dst []Elem, xs []uint64) {
	checkLen2(len(dst), len(xs))
	p := f.p
	sh, d, v := f.sh, f.d, f.v
	for i := range dst {
		x := xs[i]
		if x >= p {
			x = barrettReduce(0, x, sh, d, v)
		}
		dst[i] = Elem(x)
	}
}

// FromInt64Slice sets dst[i] = xs[i] mod p (negatives wrapping) for every
// i — how a batch of stream deltas enters the field. Deltas already in
// [0, p) — every realistic stream — take the comparison-only fast path.
func (f Field) FromInt64Slice(dst []Elem, xs []int64) {
	checkLen2(len(dst), len(xs))
	p := f.p
	for i := range dst {
		x := xs[i]
		if x >= 0 && uint64(x) < p {
			dst[i] = Elem(x)
		} else {
			dst[i] = f.FromInt64(x)
		}
	}
}

// SumSlice returns Σ_i xs[i] mod p. Elements are added exactly into two
// 128-bit accumulators (the high words absorb carries only, so they can
// never overflow) and reduced once at the end.
func (f Field) SumSlice(xs []Elem) Elem {
	var hi0, lo0, hi1, lo1 uint64
	i := 0
	for ; i+2 <= len(xs); i += 2 {
		var c uint64
		lo0, c = bits.Add64(lo0, uint64(xs[i]), 0)
		hi0 += c
		lo1, c = bits.Add64(lo1, uint64(xs[i+1]), 0)
		hi1 += c
	}
	if i < len(xs) {
		var c uint64
		lo0, c = bits.Add64(lo0, uint64(xs[i]), 0)
		hi0 += c
	}
	var c uint64
	lo0, c = bits.Add64(lo0, lo1, 0)
	hi0 += hi1 + c
	return f.foldAcc(hi0, lo0)
}

// DotSlices returns Σ_i a[i]·b[i] mod p. Products are accumulated exactly
// in two interleaved 192-bit accumulators (each product contributes at
// most 2^124, so for any representable slice length the top word stays far
// from overflow) and reduced once at the end — no per-element reduction on
// either the Mersenne or the generic path.
func (f Field) DotSlices(a, b []Elem) Elem {
	checkLen2(len(a), len(b))
	var h0, m0, l0, h1, m1, l1 uint64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa, bb := a[i:i+4], b[i:i+4]
		var c uint64
		ph, pl := bits.Mul64(uint64(aa[0]), uint64(bb[0]))
		l0, c = bits.Add64(l0, pl, 0)
		m0, c = bits.Add64(m0, ph, c)
		h0 += c
		ph, pl = bits.Mul64(uint64(aa[1]), uint64(bb[1]))
		l1, c = bits.Add64(l1, pl, 0)
		m1, c = bits.Add64(m1, ph, c)
		h1 += c
		ph, pl = bits.Mul64(uint64(aa[2]), uint64(bb[2]))
		l0, c = bits.Add64(l0, pl, 0)
		m0, c = bits.Add64(m0, ph, c)
		h0 += c
		ph, pl = bits.Mul64(uint64(aa[3]), uint64(bb[3]))
		l1, c = bits.Add64(l1, pl, 0)
		m1, c = bits.Add64(m1, ph, c)
		h1 += c
	}
	for ; i < len(a); i++ {
		var c uint64
		ph, pl := bits.Mul64(uint64(a[i]), uint64(b[i]))
		l0, c = bits.Add64(l0, pl, 0)
		m0, c = bits.Add64(m0, ph, c)
		h0 += c
	}
	var c uint64
	l0, c = bits.Add64(l0, l1, 0)
	m0, c = bits.Add64(m0, m1, c)
	h0 += h1 + c
	return f.foldAcc3(h0, m0, l0)
}

func checkLen(a, b, c int) {
	if a != b || a != c {
		panic("field: slice length mismatch")
	}
}

func checkLen2(a, b int) {
	if a != b {
		panic("field: slice length mismatch")
	}
}

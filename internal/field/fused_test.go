package field

import "testing"

// fusedFields covers the Mersenne fast path, a small generic prime, and a
// generic prime at the top of the supported range.
var fusedFields = []uint64{Mersenne61, 1000003, 4611686018427387847}

// pairsSumSqRef is the unfused reference: walk pairs, evaluate the line at
// 0, 1, 2 and accumulate squares with scalar ops.
func pairsSumSqRef(f Field, src []Elem) (g0, g1, g2 Elem) {
	for q := 0; q+2 <= len(src); q += 2 {
		e0, e1 := src[q], src[q+1]
		e2 := f.Add(e1, f.Sub(e1, e0))
		g0 = f.Add(g0, f.Mul(e0, e0))
		g1 = f.Add(g1, f.Mul(e1, e1))
		g2 = f.Add(g2, f.Mul(e2, e2))
	}
	return
}

func pairsSumProdRef(f Field, srcA, srcB []Elem) (g0, g1, g2 Elem) {
	for q := 0; q+2 <= len(srcA); q += 2 {
		ea0, ea1 := srcA[q], srcA[q+1]
		eb0, eb1 := srcB[q], srcB[q+1]
		ea2 := f.Add(ea1, f.Sub(ea1, ea0))
		eb2 := f.Add(eb1, f.Sub(eb1, eb0))
		g0 = f.Add(g0, f.Mul(ea0, eb0))
		g1 = f.Add(g1, f.Mul(ea1, eb1))
		g2 = f.Add(g2, f.Mul(ea2, eb2))
	}
	return
}

func TestFusedKernelsMatchPlain(t *testing.T) {
	for _, p := range fusedFields {
		f := newField(p)
		rng := NewSplitMix64(p ^ 0xfeed)
		for _, n := range []int{4, 8, 20, 256, 1000} {
			src := f.RandVec(rng, 2*n)
			srcB := f.RandVec(rng, 2*n)
			r := f.Rand(rng)

			// FoldPairsSum = FoldPairs + SumSlice.
			wantDst := make([]Elem, n)
			f.FoldPairs(wantDst, src, r)
			wantSum := f.SumSlice(wantDst)
			gotDst := make([]Elem, n)
			gotSum := f.FoldPairsSum(gotDst, src, r)
			if gotSum != wantSum {
				t.Fatalf("p=%d n=%d: FoldPairsSum = %d, want %d", p, n, gotSum, wantSum)
			}
			for i := range gotDst {
				if gotDst[i] != wantDst[i] {
					t.Fatalf("p=%d n=%d: FoldPairsSum dst[%d] = %d, want %d", p, n, i, gotDst[i], wantDst[i])
				}
			}

			// PairsSumSq / PairsSumProd against the scalar walk.
			w0, w1, w2 := pairsSumSqRef(f, src)
			g0, g1, g2 := f.PairsSumSq(src)
			if g0 != w0 || g1 != w1 || g2 != w2 {
				t.Fatalf("p=%d n=%d: PairsSumSq = (%d,%d,%d), want (%d,%d,%d)", p, n, g0, g1, g2, w0, w1, w2)
			}
			w0, w1, w2 = pairsSumProdRef(f, src, srcB)
			g0, g1, g2 = f.PairsSumProd(src, srcB)
			if g0 != w0 || g1 != w1 || g2 != w2 {
				t.Fatalf("p=%d n=%d: PairsSumProd = (%d,%d,%d), want (%d,%d,%d)", p, n, g0, g1, g2, w0, w1, w2)
			}

			// FoldPairsSumSq = FoldPairs + PairsSumSq over the fold.
			w0, w1, w2 = pairsSumSqRef(f, wantDst)
			gotDst = make([]Elem, n)
			g0, g1, g2 = f.FoldPairsSumSq(gotDst, src, r)
			if g0 != w0 || g1 != w1 || g2 != w2 {
				t.Fatalf("p=%d n=%d: FoldPairsSumSq = (%d,%d,%d), want (%d,%d,%d)", p, n, g0, g1, g2, w0, w1, w2)
			}
			for i := range gotDst {
				if gotDst[i] != wantDst[i] {
					t.Fatalf("p=%d n=%d: FoldPairsSumSq dst[%d] = %d, want %d", p, n, i, gotDst[i], wantDst[i])
				}
			}

			// FoldPairsSumProd = two FoldPairs + PairsSumProd over the folds.
			wantDstB := make([]Elem, n)
			f.FoldPairs(wantDstB, srcB, r)
			w0, w1, w2 = pairsSumProdRef(f, wantDst, wantDstB)
			gotDst = make([]Elem, n)
			gotDstB := make([]Elem, n)
			g0, g1, g2 = f.FoldPairsSumProd(gotDst, gotDstB, src, srcB, r)
			if g0 != w0 || g1 != w1 || g2 != w2 {
				t.Fatalf("p=%d n=%d: FoldPairsSumProd = (%d,%d,%d), want (%d,%d,%d)", p, n, g0, g1, g2, w0, w1, w2)
			}
			for i := range gotDst {
				if gotDst[i] != wantDst[i] || gotDstB[i] != wantDstB[i] {
					t.Fatalf("p=%d n=%d: FoldPairsSumProd dst mismatch at %d", p, n, i)
				}
			}
		}
	}
}

// TestFusedKernelsInPlace exercises the documented aliasing contract: dst
// may be the front half of src.
func TestFusedKernelsInPlace(t *testing.T) {
	for _, p := range fusedFields {
		f := newField(p)
		rng := NewSplitMix64(p ^ 0xa11a5)
		const n = 64
		src := f.RandVec(rng, 2*n)
		r := f.Rand(rng)

		want := make([]Elem, n)
		f.FoldPairs(want, src, r)
		wantSum := f.SumSlice(want)

		buf := append([]Elem(nil), src...)
		if got := f.FoldPairsSum(buf[:n], buf, r); got != wantSum {
			t.Fatalf("p=%d: in-place FoldPairsSum = %d, want %d", p, got, wantSum)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("p=%d: in-place FoldPairsSum dst[%d] = %d, want %d", p, i, buf[i], want[i])
			}
		}

		w0, w1, w2 := pairsSumSqRef(f, want)
		buf = append(buf[:0], src...)
		g0, g1, g2 := f.FoldPairsSumSq(buf[:n], buf, r)
		if g0 != w0 || g1 != w1 || g2 != w2 {
			t.Fatalf("p=%d: in-place FoldPairsSumSq = (%d,%d,%d), want (%d,%d,%d)", p, g0, g1, g2, w0, w1, w2)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("p=%d: in-place FoldPairsSumSq dst[%d] = %d, want %d", p, i, buf[i], want[i])
			}
		}
	}
}

func TestFusedKernelsPanicOnBadLengths(t *testing.T) {
	f := Mersenne()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	src := make([]Elem, 8)
	mustPanic("FoldPairsSum", func() { f.FoldPairsSum(make([]Elem, 3), src, 1) })
	mustPanic("PairsSumSq", func() { f.PairsSumSq(make([]Elem, 3)) })
	mustPanic("PairsSumProd len", func() { f.PairsSumProd(make([]Elem, 4), make([]Elem, 6)) })
	mustPanic("PairsSumProd odd", func() { f.PairsSumProd(make([]Elem, 3), make([]Elem, 3)) })
	mustPanic("FoldPairsSumSq len", func() { f.FoldPairsSumSq(make([]Elem, 3), src, 1) })
	mustPanic("FoldPairsSumSq odd", func() { f.FoldPairsSumSq(make([]Elem, 3), make([]Elem, 6), 1) })
	mustPanic("FoldPairsSumProd", func() {
		f.FoldPairsSumProd(make([]Elem, 4), make([]Elem, 2), src, src, 1)
	})
}

// Package field implements arithmetic in prime fields Z_p for p < 2^62.
//
// All protocols in this repository perform their checks over Z_p via
// Schwartz–Zippel polynomial identity testing, exactly as in Cormode,
// Thaler & Yi (VLDB 2011). The paper's experiments use the Mersenne prime
// p = 2^61 - 1, for which this package provides a branch-free reduction;
// any other prime below 2^62 uses a precomputed division-free reducer
// (Möller–Granlund division by invariant integers) in every batch kernel,
// so the throughput-bound slice paths never execute a hardware divide
// regardless of the modulus. Scalar Mul keeps the divide on the generic
// path — it is latency-bound and must stay inlinable (see Mul).
package field

import (
	"errors"
	"fmt"
	"math/bits"
)

// Mersenne61 is the Mersenne prime 2^61 - 1 used throughout the paper's
// experimental study (§5). Arithmetic modulo this prime reduces without
// division.
const Mersenne61 = (1 << 61) - 1

// maxModulus bounds the supported moduli. Keeping p below 2^62 guarantees
// that a+b never overflows uint64 and that the specialized reductions stay
// correct.
const maxModulus = 1 << 62

// Elem is an element of Z_p in canonical form (0 ≤ e < p). Elements are
// only meaningful relative to the Field that produced them.
type Elem uint64

// Field is an immutable description of Z_p together with the precomputed
// constants of its reducer. The zero value is invalid; use New or Mersenne.
type Field struct {
	p uint64 // modulus
	// Reducer constants, fixed at construction (Möller–Granlund,
	// "Improved division by invariant integers", IEEE ToC 2011).
	// Exactly four fields total: a struct this size stays SSA-able, so
	// Field values live in registers and per-call copies are free —
	// adding a fifth field would push every scalar op onto the stack.
	sh uint   // normalization shift = LeadingZeros64(p), in [2, 62]
	d  uint64 // normalized divisor p << sh (top bit set)
	v  uint64 // reciprocal ⌊(2^128-1)/d⌋ - 2^64
}

// newField precomputes the reducer for a validated modulus p ∈ [2, 2^62).
func newField(p uint64) Field {
	sh := uint(bits.LeadingZeros64(p))
	d := p << sh
	// ⌊(2^128-1)/d⌋ - 2^64 = ⌊((2^64-1-d)·2^64 + 2^64-1) / d⌋; the high
	// word ^d is < d because d has its top bit set, so Div64 is safe.
	v, _ := bits.Div64(^d, ^uint64(0), d)
	return Field{p: p, sh: sh, d: d, v: v}
}

// resid64 returns 2^64 mod p — the factor that folds the high word of a
// lazy accumulator. Derived (one remNorm) rather than stored to keep the
// Field struct at four fields; callers run once per kernel call, not per
// element.
func (f Field) resid64() uint64 { return f.reduce128(1, 0) }

// New returns the field Z_p. It reports an error unless p is a prime in
// [2, 2^62).
func New(p uint64) (Field, error) {
	if p < 2 || p >= maxModulus {
		return Field{}, fmt.Errorf("field: modulus %d out of range [2, 2^62)", p)
	}
	if !IsPrime(p) {
		return Field{}, fmt.Errorf("field: modulus %d is not prime", p)
	}
	return newField(p), nil
}

var mersenneField = newField(Mersenne61)

// Mersenne returns the field Z_p for p = 2^61 - 1, the paper's default.
func Mersenne() Field { return mersenneField }

// ForUniverse returns a field whose modulus p satisfies u ≤ p ≤ 2u (the
// requirement of §3, guaranteed to exist by Bertrand's postulate), but
// never smaller than minModulus so that failure probabilities stay tiny.
// Most callers should simply use Mersenne; ForUniverse exists to exercise
// the paper's parameterization and for soundness experiments with small
// fields.
func ForUniverse(u uint64) (Field, error) {
	if u < 2 {
		u = 2
	}
	if u >= maxModulus/2 {
		return Field{}, fmt.Errorf("field: universe %d too large for a 62-bit modulus", u)
	}
	p, err := NextPrimeAtLeast(u)
	if err != nil {
		return Field{}, err
	}
	return newField(p), nil
}

// Modulus returns p.
func (f Field) Modulus() uint64 { return f.p }

// Valid reports whether f was constructed by New or Mersenne.
func (f Field) Valid() bool { return f.p >= 2 }

// Eq reports whether two fields have the same modulus.
func (f Field) Eq(g Field) bool { return f.p == g.p }

// remNorm returns the remainder of the 2-word value h·2^64 + l divided by
// the normalized divisor d (top bit set), given the precomputed reciprocal
// v = ⌊(2^128-1)/d⌋ - 2^64. Requires h < d. This is the 2-word division of
// Möller–Granlund specialized to the remainder: one 64×64 multiply
// estimates the quotient, and the corrections compile to conditional
// moves, so the function is branch-free.
func remNorm(h, l, d, v uint64) uint64 {
	qh, ql := bits.Mul64(v, h)
	ql, c := bits.Add64(ql, l, 0)
	qh, _ = bits.Add64(qh, h, c)
	qh++
	r := l - qh*d
	if r > ql {
		r += d
	}
	if r >= d {
		r -= d
	}
	return r
}

// shoup returns ⌊w·2^64/p⌋, the Shoup precomputation for repeated
// multiplication by the invariant factor w (one divide per slice call,
// never on a per-element path).
func (f Field) shoup(w Elem) uint64 {
	q, _ := bits.Div64(uint64(w), 0, f.p)
	return q
}

// shoupMul returns w·t mod p for any t < 2^64 and canonical w, given
// wp = ⌊w·2^64/p⌋. The quotient estimate ⌊wp·t/2^64⌋ is exact or one
// short, so a single conditional subtract (a cmov) lands in [0, p); the
// three multiplies are one high-half and two low-half — no shifts, no
// divisions, and the whole body is small enough to inline.
func shoupMul(t, w, wp, p uint64) uint64 {
	q, _ := bits.Mul64(wp, t)
	r := w*t - q*p
	if r >= p {
		r -= p
	}
	return r
}

// foldPairShoup returns t0 + r·(t1−t0) mod p for canonical inputs, given
// rp = ⌊r·2^64/p⌋. The difference is taken as t1 + p − t0 ∈ (0, 2p) —
// fine for shoupMul, which accepts any 64-bit t — avoiding a borrow
// branch, and the final add needs one conditional subtract.
func foldPairShoup(t0, t1, r, rp, p uint64) uint64 {
	m := shoupMul(t1+p-t0, r, rp, p)
	s := t0 + m
	if s >= p {
		s -= p
	}
	return s
}

// reduce128 returns (hi·2^64 + lo) mod p without division, valid whenever
// hi·2^64 + lo < p·2^64. That precondition covers every product of two
// canonical elements (< p² ≤ p·2^62) and every single word (hi = 0).
// Shifting by sh normalizes the input for remNorm (the high word becomes
// < d). sh ∈ [2, 62] for every supported p, so both shift counts are in
// range; the &63 masks let the compiler drop its variable-shift guards.
func (f Field) reduce128(hi, lo uint64) uint64 {
	sh := f.sh & 63
	h := hi<<sh | lo>>((64-sh)&63)
	l := lo << sh
	return remNorm(h, l, f.d, f.v) >> sh
}

// Reduce maps an arbitrary uint64 into canonical form.
func (f Field) Reduce(x uint64) Elem {
	if x < f.p {
		return Elem(x)
	}
	return Elem(f.reduce128(0, x))
}

// FromUint64 is an alias for Reduce, provided for readable call sites.
func (f Field) FromUint64(x uint64) Elem { return f.Reduce(x) }

// FromInt64 maps a signed integer into Z_p; negative values wrap to p - |v|.
// This is how stream deltas (which the paper allows to be negative) enter
// the field. Deltas smaller than p in magnitude — every realistic stream —
// take the comparison-only fast path.
// The fast path must stay within the inlining budget — this is the
// per-update cost of every streaming Observe — so the wrap/reduce cases
// live in fromInt64Slow.
func (f Field) FromInt64(v int64) Elem {
	if v >= 0 && uint64(v) < f.p {
		return Elem(v)
	}
	return f.fromInt64Slow(v)
}

func (f Field) fromInt64Slow(v int64) Elem {
	if v >= 0 {
		return Elem(f.reduce128(0, uint64(v)))
	}
	// Avoid overflow for MinInt64: -(v+1) is representable.
	mag := uint64(-(v + 1)) + 1
	r := mag
	if r >= f.p {
		r = f.reduce128(0, mag)
	}
	if r == 0 {
		return 0
	}
	return Elem(f.p - r)
}

// Centered lifts e to the signed representative in (-p/2, p/2]. Protocols
// that allow negative deltas (e.g. RANGE-SUM over signed values) use this
// to report answers as integers.
func (f Field) Centered(e Elem) int64 {
	if uint64(e) <= f.p/2 {
		return int64(e)
	}
	return -int64(f.p - uint64(e))
}

// Add returns a + b mod p.
func (f Field) Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= f.p {
		s -= f.p
	}
	return Elem(s)
}

// Sub returns a - b mod p.
func (f Field) Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return Elem(uint64(a) + f.p - uint64(b))
}

// Neg returns -a mod p.
func (f Field) Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(f.p - uint64(a))
}

// Mul returns a·b mod p. For the Mersenne modulus the reduction is
// branch-free bit folding; any other modulus uses the precomputed
// division-free reducer. No hardware divide on either path.
// Mul must stay within the inlining budget: it is the per-gate cost of
// every circuit evaluation and the per-node cost of every χ product, and
// a non-inlined Mul costs more in call overhead than any reduction
// strategy saves. That budget fits the branch-free Mersenne folding plus
// ONE more reduction; the generic path keeps the hardware divide because
// a scalar multiply is latency-bound — Div64's latency is on par with
// the Barrett chain's three dependent multiplies, while outlining the
// Barrett reducer (it does not fit the budget) measurably loses. The
// division-free reducer pays off in the batch kernels (batch.go,
// fused.go), where its constants are hoisted and throughput dominates.
func (f Field) Mul(a, b Elem) Elem {
	if f.p == Mersenne61 {
		return Elem(mul61(uint64(a), uint64(b)))
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	_, rem := bits.Div64(hi, lo, f.p)
	return Elem(rem)
}

// mul61 multiplies modulo 2^61 - 1. Since 2^64 ≡ 8 (mod p), the 128-bit
// product hi·2^64 + lo reduces to 8·hi + lo, which is folded at bit 61.
func mul61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a, b < 2^61 so hi < 2^58 and hi<<3 cannot overflow.
	r := (lo & Mersenne61) + (lo >> 61) + hi<<3
	r = (r & Mersenne61) + (r >> 61)
	if r >= Mersenne61 {
		r -= Mersenne61
	}
	return r
}

// red61 reduces an arbitrary uint64 modulo 2^61 - 1 (2^61 ≡ 1, so the word
// folds at bit 61; one fold leaves a value ≤ M+7, one conditional subtract
// finishes).
func red61(x uint64) uint64 {
	r := (x & Mersenne61) + (x >> 61)
	if r >= Mersenne61 {
		r -= Mersenne61
	}
	return r
}

// foldAcc reduces a 128-bit lazy accumulator hi·2^64 + lo (both words
// arbitrary) to canonical form: hi·2^64 + lo ≡ hi·r64 + lo (mod p).
func (f Field) foldAcc(hi, lo uint64) Elem {
	if f.p == Mersenne61 {
		// 2^64 ≡ 8 (mod M61).
		return Elem(add61(mul61(red61(hi), 8), red61(lo)))
	}
	r := f.reduce128(0, lo)
	if hi != 0 {
		ph, pl := bits.Mul64(f.reduce128(0, hi), f.resid64())
		r += f.reduce128(ph, pl)
		if r >= f.p {
			r -= f.p
		}
	}
	return Elem(r)
}

// foldAcc3 reduces a 192-bit lazy accumulator hi·2^128 + mid·2^64 + lo
// (all words arbitrary) to canonical form using the precomputed residues
// of 2^64 and 2^128.
func (f Field) foldAcc3(hi, mid, lo uint64) Elem {
	if f.p == Mersenne61 {
		// 2^64 ≡ 8 and 2^128 ≡ 64 (mod M61).
		r := add61(mul61(red61(hi), 64), mul61(red61(mid), 8))
		return Elem(add61(r, red61(lo)))
	}
	r := f.reduce128(0, lo)
	if mid != 0 || hi != 0 {
		r64 := f.resid64()
		if mid != 0 {
			ph, pl := bits.Mul64(f.reduce128(0, mid), r64)
			r += f.reduce128(ph, pl)
			if r >= f.p {
				r -= f.p
			}
		}
		if hi != 0 {
			r128 := uint64(f.Mul(Elem(r64), Elem(r64))) // 2^128 mod p
			ph, pl := bits.Mul64(f.reduce128(0, hi), r128)
			r += f.reduce128(ph, pl)
			if r >= f.p {
				r -= f.p
			}
		}
	}
	return Elem(r)
}

// add61 adds modulo 2^61 - 1 for canonical inputs.
func add61(a, b uint64) uint64 {
	s := a + b
	if s >= Mersenne61 {
		s -= Mersenne61
	}
	return s
}

// Pow returns a^e mod p by square-and-multiply. Pow(0, 0) = 1.
func (f Field) Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a by the binary extended
// Euclidean algorithm — shift/subtract only, no multiplies, roughly an
// order of magnitude cheaper than the ~2·61 multiplies of Fermat
// exponentiation (which Pow still provides as a test cross-check).
// Inv(0) returns 0; callers that can receive zero must check.
func (f Field) Inv(a Elem) Elem {
	if a == 0 {
		return 0
	}
	// Invariants: x1·a ≡ u and x2·a ≡ v (mod p), with 0 ≤ x1, x2 < p.
	// The halving steps need p odd, which holds whenever the loop runs:
	// for p = 2 the only invertible element is a = 1, so u = 1 already.
	u, v := uint64(a), f.p
	x1, x2 := uint64(1), uint64(0)
	for u != 1 && v != 1 {
		for u&1 == 0 {
			u >>= 1
			if x1&1 == 0 {
				x1 >>= 1
			} else {
				x1 = (x1 + f.p) >> 1
			}
		}
		for v&1 == 0 {
			v >>= 1
			if x2&1 == 0 {
				x2 >>= 1
			} else {
				x2 = (x2 + f.p) >> 1
			}
		}
		if u >= v {
			u -= v
			if x1 >= x2 {
				x1 -= x2
			} else {
				x1 += f.p - x2
			}
		} else {
			v -= u
			if x2 >= x1 {
				x2 -= x1
			} else {
				x2 += f.p - x1
			}
		}
	}
	if u == 1 {
		return Elem(x1)
	}
	return Elem(x2)
}

// InvSlice inverts every element of xs in place using Montgomery's batch
// inversion trick (one Inv plus 3(n-1) multiplications). Zero elements are
// left as zero.
func (f Field) InvSlice(xs []Elem) {
	// prefix[i] holds the product of all nonzero xs[0..i].
	prefix := make([]Elem, len(xs))
	acc := Elem(1)
	for i, x := range xs {
		if x != 0 {
			acc = f.Mul(acc, x)
		}
		prefix[i] = acc
	}
	inv := f.Inv(acc)
	for i := len(xs) - 1; i >= 0; i-- {
		if xs[i] == 0 {
			continue
		}
		before := Elem(1)
		if i > 0 {
			before = prefix[i-1]
		}
		x := xs[i]
		xs[i] = f.Mul(inv, before)
		inv = f.Mul(inv, x)
	}
}

// RNG is the source of randomness used when sampling field elements. Both
// math/rand(/v2) generators and CryptoRNG satisfy it.
type RNG interface {
	Uint64() uint64
}

// randSplit returns the per-candidate bit width k (smallest with 2^k ≥ p)
// and how many k-bit candidates one 64-bit draw yields.
func (f Field) randSplit() (k, perWord uint) {
	k = uint(64 - bits.LeadingZeros64(f.p-1))
	return k, 64 / k
}

// Rand returns a uniformly random field element. Each 64-bit draw is split
// into ⌊64/k⌋ independent k-bit candidates (k the bit width of p-1) which
// are rejection-tested in turn, so the distribution is exactly uniform
// over [0, p) and small moduli no longer burn a full word per candidate.
// For p = 2^61 - 1 (k = 61) this degenerates to one candidate per draw and
// the consumed random stream is identical to earlier releases.
func (f Field) Rand(rng RNG) Elem {
	k, perWord := f.randSplit()
	mask := uint64(1)<<k - 1
	for {
		w := rng.Uint64()
		for j := uint(0); j < perWord; j++ {
			if v := w & mask; v < f.p {
				return Elem(v)
			}
			w >>= k
		}
	}
}

// RandVec returns n independent uniform field elements, sharing the
// word-splitting of Rand across the whole vector.
func (f Field) RandVec(rng RNG, n int) []Elem {
	out := make([]Elem, n)
	f.FillRand(rng, out)
	return out
}

// FillRand fills out with independent uniform field elements.
func (f Field) FillRand(rng RNG, out []Elem) {
	k, perWord := f.randSplit()
	mask := uint64(1)<<k - 1
	i := 0
	for i < len(out) {
		w := rng.Uint64()
		for j := uint(0); j < perWord && i < len(out); j++ {
			if v := w & mask; v < f.p {
				out[i] = Elem(v)
				i++
			}
			w >>= k
		}
	}
}

// RandNonZero returns a uniformly random element of Z_p \ {0}.
func (f Field) RandNonZero(rng RNG) Elem {
	for {
		if e := f.Rand(rng); e != 0 {
			return e
		}
	}
}

// ErrNoPrime is returned when a prime search would exceed the supported
// modulus range.
var ErrNoPrime = errors.New("field: no prime in supported range")

// IsPrime reports whether n is prime, using a Miller–Rabin test with a
// witness set that is deterministic for all 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	// n-1 = d · 2^s with d odd.
	d := n - 1
	s := bits.TrailingZeros64(d)
	d >>= uint(s)
	// These witnesses are sufficient for all n < 2^64 (Sinclair, 2011).
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if !millerRabinWitness(n, d, s, a) {
			return false
		}
	}
	return true
}

// millerRabinWitness reports whether n passes a single Miller–Rabin round
// with base a.
func millerRabinWitness(n, d uint64, s int, a uint64) bool {
	x := powMod(a%n, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < s-1; i++ {
		x = mulMod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

// mulMod and powMod serve primality testing of arbitrary 64-bit candidates
// (no precomputed reducer exists for them); hardware division is fine on
// this cold path.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

func powMod(a, e, m uint64) uint64 {
	result := uint64(1 % m)
	base := a % m
	for e > 0 {
		if e&1 == 1 {
			result = mulMod(result, base, m)
		}
		base = mulMod(base, base, m)
		e >>= 1
	}
	return result
}

// NextPrimeAtLeast returns the smallest prime p ≥ n. By Bertrand's
// postulate p ≤ 2n, which is the bound the paper relies on when choosing
// the field for a universe of size u.
func NextPrimeAtLeast(n uint64) (uint64, error) {
	if n <= 2 {
		return 2, nil
	}
	if n%2 == 0 {
		n++
	}
	for c := n; c < maxModulus; c += 2 {
		if IsPrime(c) {
			return c, nil
		}
	}
	return 0, ErrNoPrime
}

// Package field implements arithmetic in prime fields Z_p for p < 2^62.
//
// All protocols in this repository perform their checks over Z_p via
// Schwartz–Zippel polynomial identity testing, exactly as in Cormode,
// Thaler & Yi (VLDB 2011). The paper's experiments use the Mersenne prime
// p = 2^61 - 1, for which this package provides a branch-free reduction;
// any other prime below 2^62 (for example one found with NextPrimeAtLeast
// to satisfy the paper's "u ≤ p ≤ 2u" requirement) uses a generic
// 128-bit-product reduction.
package field

import (
	"errors"
	"fmt"
	"math/bits"
)

// Mersenne61 is the Mersenne prime 2^61 - 1 used throughout the paper's
// experimental study (§5). Arithmetic modulo this prime reduces without
// division.
const Mersenne61 = (1 << 61) - 1

// maxModulus bounds the supported moduli. Keeping p below 2^62 guarantees
// that a+b never overflows uint64 and that the specialized reductions stay
// correct.
const maxModulus = 1 << 62

// Elem is an element of Z_p in canonical form (0 ≤ e < p). Elements are
// only meaningful relative to the Field that produced them.
type Elem uint64

// Field is an immutable description of Z_p. The zero value is invalid; use
// New or Mersenne.
type Field struct {
	p uint64
}

// New returns the field Z_p. It reports an error unless p is a prime in
// [2, 2^62).
func New(p uint64) (Field, error) {
	if p < 2 || p >= maxModulus {
		return Field{}, fmt.Errorf("field: modulus %d out of range [2, 2^62)", p)
	}
	if !IsPrime(p) {
		return Field{}, fmt.Errorf("field: modulus %d is not prime", p)
	}
	return Field{p: p}, nil
}

// Mersenne returns the field Z_p for p = 2^61 - 1, the paper's default.
func Mersenne() Field { return Field{p: Mersenne61} }

// ForUniverse returns a field whose modulus p satisfies u ≤ p ≤ 2u (the
// requirement of §3, guaranteed to exist by Bertrand's postulate), but
// never smaller than minModulus so that failure probabilities stay tiny.
// Most callers should simply use Mersenne; ForUniverse exists to exercise
// the paper's parameterization and for soundness experiments with small
// fields.
func ForUniverse(u uint64) (Field, error) {
	if u < 2 {
		u = 2
	}
	if u >= maxModulus/2 {
		return Field{}, fmt.Errorf("field: universe %d too large for a 62-bit modulus", u)
	}
	p, err := NextPrimeAtLeast(u)
	if err != nil {
		return Field{}, err
	}
	return Field{p: p}, nil
}

// Modulus returns p.
func (f Field) Modulus() uint64 { return f.p }

// Valid reports whether f was constructed by New or Mersenne.
func (f Field) Valid() bool { return f.p >= 2 }

// Eq reports whether two fields have the same modulus.
func (f Field) Eq(g Field) bool { return f.p == g.p }

// Reduce maps an arbitrary uint64 into canonical form.
func (f Field) Reduce(x uint64) Elem { return Elem(x % f.p) }

// FromUint64 is an alias for Reduce, provided for readable call sites.
func (f Field) FromUint64(x uint64) Elem { return f.Reduce(x) }

// FromInt64 maps a signed integer into Z_p; negative values wrap to p - |v|.
// This is how stream deltas (which the paper allows to be negative) enter
// the field.
func (f Field) FromInt64(v int64) Elem {
	if v >= 0 {
		return f.Reduce(uint64(v))
	}
	// Avoid overflow for MinInt64: -(v+1) is representable.
	mag := uint64(-(v + 1)) + 1
	r := mag % f.p
	if r == 0 {
		return 0
	}
	return Elem(f.p - r)
}

// Centered lifts e to the signed representative in (-p/2, p/2]. Protocols
// that allow negative deltas (e.g. RANGE-SUM over signed values) use this
// to report answers as integers.
func (f Field) Centered(e Elem) int64 {
	if uint64(e) <= f.p/2 {
		return int64(e)
	}
	return -int64(f.p - uint64(e))
}

// Add returns a + b mod p.
func (f Field) Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= f.p {
		s -= f.p
	}
	return Elem(s)
}

// Sub returns a - b mod p.
func (f Field) Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return Elem(uint64(a) + f.p - uint64(b))
}

// Neg returns -a mod p.
func (f Field) Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(f.p - uint64(a))
}

// Mul returns a·b mod p. For the Mersenne modulus the reduction is
// division-free; otherwise it uses a 128-bit product and hardware division.
func (f Field) Mul(a, b Elem) Elem {
	if f.p == Mersenne61 {
		return Elem(mul61(uint64(a), uint64(b)))
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	_, rem := bits.Div64(hi, lo, f.p)
	return Elem(rem)
}

// mul61 multiplies modulo 2^61 - 1. Since 2^64 ≡ 8 (mod p), the 128-bit
// product hi·2^64 + lo reduces to 8·hi + lo, which is folded at bit 61.
func mul61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a, b < 2^61 so hi < 2^58 and hi<<3 cannot overflow.
	r := (lo & Mersenne61) + (lo >> 61) + hi<<3
	r = (r & Mersenne61) + (r >> 61)
	if r >= Mersenne61 {
		r -= Mersenne61
	}
	return r
}

// Pow returns a^e mod p by square-and-multiply. Pow(0, 0) = 1.
func (f Field) Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a, computed as a^(p-2)
// (Fermat). Inv(0) returns 0; callers that can receive zero must check.
func (f Field) Inv(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return f.Pow(a, f.p-2)
}

// InvSlice inverts every element of xs in place using Montgomery's batch
// inversion trick (one Inv plus 3(n-1) multiplications). Zero elements are
// left as zero.
func (f Field) InvSlice(xs []Elem) {
	// prefix[i] holds the product of all nonzero xs[0..i].
	prefix := make([]Elem, len(xs))
	acc := Elem(1)
	for i, x := range xs {
		if x != 0 {
			acc = f.Mul(acc, x)
		}
		prefix[i] = acc
	}
	inv := f.Inv(acc)
	for i := len(xs) - 1; i >= 0; i-- {
		if xs[i] == 0 {
			continue
		}
		before := Elem(1)
		if i > 0 {
			before = prefix[i-1]
		}
		x := xs[i]
		xs[i] = f.Mul(inv, before)
		inv = f.Mul(inv, x)
	}
}

// RNG is the source of randomness used when sampling field elements. Both
// math/rand(/v2) generators and CryptoRNG satisfy it.
type RNG interface {
	Uint64() uint64
}

// Rand returns a uniformly random field element, using rejection sampling
// so the distribution is exactly uniform over [0, p).
func (f Field) Rand(rng RNG) Elem {
	// Mask to the smallest power of two ≥ p, then reject.
	shift := bits.LeadingZeros64(f.p - 1)
	mask := ^uint64(0) >> shift
	for {
		v := rng.Uint64() & mask
		if v < f.p {
			return Elem(v)
		}
	}
}

// RandVec returns n independent uniform field elements.
func (f Field) RandVec(rng RNG, n int) []Elem {
	out := make([]Elem, n)
	for i := range out {
		out[i] = f.Rand(rng)
	}
	return out
}

// RandNonZero returns a uniformly random element of Z_p \ {0}.
func (f Field) RandNonZero(rng RNG) Elem {
	for {
		if e := f.Rand(rng); e != 0 {
			return e
		}
	}
}

// ErrNoPrime is returned when a prime search would exceed the supported
// modulus range.
var ErrNoPrime = errors.New("field: no prime in supported range")

// IsPrime reports whether n is prime, using a Miller–Rabin test with a
// witness set that is deterministic for all 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	// n-1 = d · 2^s with d odd.
	d := n - 1
	s := bits.TrailingZeros64(d)
	d >>= uint(s)
	// These witnesses are sufficient for all n < 2^64 (Sinclair, 2011).
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if !millerRabinWitness(n, d, s, a) {
			return false
		}
	}
	return true
}

// millerRabinWitness reports whether n passes a single Miller–Rabin round
// with base a.
func millerRabinWitness(n, d uint64, s int, a uint64) bool {
	x := powMod(a%n, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < s-1; i++ {
		x = mulMod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

func powMod(a, e, m uint64) uint64 {
	result := uint64(1 % m)
	base := a % m
	for e > 0 {
		if e&1 == 1 {
			result = mulMod(result, base, m)
		}
		base = mulMod(base, base, m)
		e >>= 1
	}
	return result
}

// NextPrimeAtLeast returns the smallest prime p ≥ n. By Bertrand's
// postulate p ≤ 2n, which is the bound the paper relies on when choosing
// the field for a universe of size u.
func NextPrimeAtLeast(n uint64) (uint64, error) {
	if n <= 2 {
		return 2, nil
	}
	if n%2 == 0 {
		n++
	}
	for c := n; c < maxModulus; c += 2 {
		if IsPrime(c) {
			return c, nil
		}
	}
	return 0, ErrNoPrime
}

package field

import (
	"math/big"
	"testing"
	"testing/quick"
)

// testFields returns a spread of moduli: the Mersenne default, a tiny
// field, a medium generic prime, and a large generic (non-Mersenne) prime.
func testFields(t *testing.T) []Field {
	t.Helper()
	var out []Field
	for _, p := range []uint64{Mersenne61, 17, 65537, 4611686018427387847} {
		f, err := New(p)
		if err != nil {
			t.Fatalf("New(%d): %v", p, err)
		}
		out = append(out, f)
	}
	return out
}

func TestNewRejectsBadModuli(t *testing.T) {
	for _, p := range []uint64{0, 1, 4, 15, 1 << 62, 1<<62 + 1, Mersenne61 * 2} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) succeeded; want error", p)
		}
	}
}

func TestMersenneModulus(t *testing.T) {
	f := Mersenne()
	if f.Modulus() != Mersenne61 {
		t.Fatalf("Modulus() = %d, want %d", f.Modulus(), uint64(Mersenne61))
	}
	if !IsPrime(Mersenne61) {
		t.Fatal("2^61-1 not recognized as prime")
	}
	if !f.Valid() {
		t.Fatal("Mersenne() field reported invalid")
	}
	if (Field{}).Valid() {
		t.Fatal("zero Field reported valid")
	}
}

// TestMulAgainstBigInt cross-checks both the Mersenne fast path and the
// generic path against math/big on random operands.
func TestMulAgainstBigInt(t *testing.T) {
	for _, f := range testFields(t) {
		rng := NewSplitMix64(1)
		p := new(big.Int).SetUint64(f.Modulus())
		for i := 0; i < 2000; i++ {
			a, b := f.Rand(rng), f.Rand(rng)
			got := f.Mul(a, b)
			want := new(big.Int).Mul(new(big.Int).SetUint64(uint64(a)), new(big.Int).SetUint64(uint64(b)))
			want.Mod(want, p)
			if uint64(got) != want.Uint64() {
				t.Fatalf("p=%d: Mul(%d,%d) = %d, want %s", f.Modulus(), a, b, got, want)
			}
		}
	}
}

// TestMul61EdgeCases exercises the boundary operands of the Mersenne
// reduction, where folding bugs hide.
func TestMul61EdgeCases(t *testing.T) {
	f := Mersenne()
	p := new(big.Int).SetUint64(Mersenne61)
	edge := []Elem{0, 1, 2, Mersenne61 - 1, Mersenne61 - 2, 1 << 60, (1 << 60) + 1, (1 << 31) - 1, 1 << 31}
	for _, a := range edge {
		for _, b := range edge {
			got := f.Mul(a, b)
			want := new(big.Int).Mul(new(big.Int).SetUint64(uint64(a)), new(big.Int).SetUint64(uint64(b)))
			want.Mod(want, p)
			if uint64(got) != want.Uint64() {
				t.Fatalf("Mul(%d,%d) = %d, want %s", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, f := range testFields(t) {
		f := f
		cfg := &quick.Config{MaxCount: 500}
		reduce := func(x uint64) Elem { return f.Reduce(x) }

		commutative := func(x, y uint64) bool {
			a, b := reduce(x), reduce(y)
			return f.Add(a, b) == f.Add(b, a) && f.Mul(a, b) == f.Mul(b, a)
		}
		if err := quick.Check(commutative, cfg); err != nil {
			t.Errorf("p=%d commutativity: %v", f.Modulus(), err)
		}

		associative := func(x, y, z uint64) bool {
			a, b, c := reduce(x), reduce(y), reduce(z)
			return f.Add(f.Add(a, b), c) == f.Add(a, f.Add(b, c)) &&
				f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
		}
		if err := quick.Check(associative, cfg); err != nil {
			t.Errorf("p=%d associativity: %v", f.Modulus(), err)
		}

		distributive := func(x, y, z uint64) bool {
			a, b, c := reduce(x), reduce(y), reduce(z)
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}
		if err := quick.Check(distributive, cfg); err != nil {
			t.Errorf("p=%d distributivity: %v", f.Modulus(), err)
		}

		inverses := func(x uint64) bool {
			a := reduce(x)
			if f.Add(a, f.Neg(a)) != 0 {
				return false
			}
			if a == 0 {
				return f.Inv(a) == 0
			}
			return f.Mul(a, f.Inv(a)) == 1
		}
		if err := quick.Check(inverses, cfg); err != nil {
			t.Errorf("p=%d inverses: %v", f.Modulus(), err)
		}

		subIsAddNeg := func(x, y uint64) bool {
			a, b := reduce(x), reduce(y)
			return f.Sub(a, b) == f.Add(a, f.Neg(b))
		}
		if err := quick.Check(subIsAddNeg, cfg); err != nil {
			t.Errorf("p=%d sub/neg: %v", f.Modulus(), err)
		}
	}
}

func TestPowAgainstBigInt(t *testing.T) {
	for _, f := range testFields(t) {
		rng := NewSplitMix64(2)
		p := new(big.Int).SetUint64(f.Modulus())
		for i := 0; i < 200; i++ {
			a := f.Rand(rng)
			e := rng.Uint64() % 1000
			got := f.Pow(a, e)
			want := new(big.Int).Exp(new(big.Int).SetUint64(uint64(a)), new(big.Int).SetUint64(e), p)
			if uint64(got) != want.Uint64() {
				t.Fatalf("p=%d: Pow(%d,%d) = %d, want %s", f.Modulus(), a, e, got, want)
			}
		}
		if f.Pow(0, 0) != 1 {
			t.Errorf("p=%d: Pow(0,0) = %d, want 1", f.Modulus(), f.Pow(0, 0))
		}
	}
}

func TestInvSlice(t *testing.T) {
	f := Mersenne()
	rng := NewSplitMix64(3)
	xs := make([]Elem, 100)
	for i := range xs {
		xs[i] = f.Rand(rng)
	}
	xs[0], xs[17], xs[99] = 0, 0, 0 // zeros must survive untouched
	orig := append([]Elem(nil), xs...)
	f.InvSlice(xs)
	for i := range xs {
		if orig[i] == 0 {
			if xs[i] != 0 {
				t.Fatalf("index %d: zero mapped to %d", i, xs[i])
			}
			continue
		}
		if f.Mul(orig[i], xs[i]) != 1 {
			t.Fatalf("index %d: %d · %d ≠ 1", i, orig[i], xs[i])
		}
	}
	f.InvSlice(nil) // must not panic
}

func TestFromInt64(t *testing.T) {
	f := Mersenne()
	cases := []struct {
		in   int64
		want Elem
	}{
		{0, 0},
		{1, 1},
		{-1, Mersenne61 - 1},
		{1000, 1000},
		{-1000, Mersenne61 - 1000},
		{Mersenne61, 0},
		{-Mersenne61, 0},
		{Mersenne61 + 5, 5},
	}
	for _, c := range cases {
		if got := f.FromInt64(c.in); got != c.want {
			t.Errorf("FromInt64(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// MinInt64 must not overflow.
	const minI64 = -9223372036854775808
	got := f.FromInt64(minI64)
	want := f.Neg(f.Reduce(9223372036854775808 % Mersenne61))
	if got != want {
		t.Errorf("FromInt64(MinInt64) = %d, want %d", got, want)
	}
}

func TestCenteredRoundTrip(t *testing.T) {
	f := Mersenne()
	for _, v := range []int64{0, 1, -1, 123456789, -123456789, (Mersenne61 - 1) / 2, -(Mersenne61 - 1) / 2} {
		if got := f.Centered(f.FromInt64(v)); got != v {
			t.Errorf("Centered(FromInt64(%d)) = %d", v, got)
		}
	}
}

func TestRandInRangeAndSpread(t *testing.T) {
	for _, f := range testFields(t) {
		rng := NewSplitMix64(4)
		seen := make(map[Elem]bool)
		for i := 0; i < 1000; i++ {
			e := f.Rand(rng)
			if uint64(e) >= f.Modulus() {
				t.Fatalf("p=%d: Rand produced %d out of range", f.Modulus(), e)
			}
			seen[e] = true
		}
		// With 1000 draws we expect many distinct values even in Z_17.
		minDistinct := 10
		if f.Modulus() < 20 {
			minDistinct = int(f.Modulus()) - 2
		}
		if len(seen) < minDistinct {
			t.Errorf("p=%d: only %d distinct values in 1000 draws", f.Modulus(), len(seen))
		}
	}
}

func TestRandNonZero(t *testing.T) {
	f, err := New(17)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewSplitMix64(5)
	for i := 0; i < 500; i++ {
		if f.RandNonZero(rng) == 0 {
			t.Fatal("RandNonZero returned 0")
		}
	}
}

func TestIsPrimeAgainstBigInt(t *testing.T) {
	rng := NewSplitMix64(6)
	for i := 0; i < 500; i++ {
		n := rng.Uint64() >> (rng.Uint64() % 40)
		got := IsPrime(n)
		want := new(big.Int).SetUint64(n).ProbablyPrime(32)
		if got != want {
			t.Fatalf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
	known := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false, 25: false,
		65537: true, Mersenne61: true, Mersenne61 - 1: false,
		3215031751: false, // strong pseudoprime to bases 2,3,5,7
	}
	for n, want := range known {
		if IsPrime(n) != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, !want, want)
		}
	}
}

func TestNextPrimeAtLeastBertrand(t *testing.T) {
	rng := NewSplitMix64(7)
	for i := 0; i < 200; i++ {
		n := rng.Uint64()%(1<<40) + 2
		p, err := NextPrimeAtLeast(n)
		if err != nil {
			t.Fatalf("NextPrimeAtLeast(%d): %v", n, err)
		}
		if p < n || p > 2*n {
			t.Fatalf("NextPrimeAtLeast(%d) = %d violates Bertrand bound", n, p)
		}
		if !IsPrime(p) {
			t.Fatalf("NextPrimeAtLeast(%d) = %d not prime", n, p)
		}
	}
	if p, err := NextPrimeAtLeast(0); err != nil || p != 2 {
		t.Errorf("NextPrimeAtLeast(0) = %d, %v; want 2", p, err)
	}
}

func TestForUniverse(t *testing.T) {
	for _, u := range []uint64{2, 100, 1 << 20, 1 << 40} {
		f, err := ForUniverse(u)
		if err != nil {
			t.Fatalf("ForUniverse(%d): %v", u, err)
		}
		if f.Modulus() < u || f.Modulus() > 2*u {
			t.Errorf("ForUniverse(%d) modulus %d outside [u, 2u]", u, f.Modulus())
		}
	}
	if _, err := ForUniverse(1 << 62); err == nil {
		t.Error("ForUniverse(2^62) succeeded; want error")
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSplitMix64(43)
	same := true
	a = NewSplitMix64(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestCryptoRNG(t *testing.T) {
	var r CryptoRNG
	a, b := r.Uint64(), r.Uint64()
	if a == b {
		// Astronomically unlikely; treat as failure of the source.
		t.Fatalf("CryptoRNG returned identical consecutive values %d", a)
	}
}

func BenchmarkMulMersenne(b *testing.B) {
	f := Mersenne()
	x, y := Elem(123456789123456789%Mersenne61), Elem(987654321987654321%Mersenne61)
	var sink Elem
	for i := 0; i < b.N; i++ {
		sink = f.Mul(x, sink+y)
	}
	_ = sink
}

func BenchmarkMulGeneric(b *testing.B) {
	f, err := New(4611686018427387847)
	if err != nil {
		b.Fatal(err)
	}
	x, y := f.Reduce(123456789123456789), f.Reduce(987654321987654321)
	var sink Elem
	for i := 0; i < b.N; i++ {
		sink = f.Mul(x, sink+y)
	}
	_ = sink
}

package field

import (
	cryptorand "crypto/rand"
	"encoding/binary"
)

// SplitMix64 is a tiny, fast, deterministic PRNG (Steele, Lea & Flood,
// 2014). It drives all randomized tests and benchmarks in this repository
// so that runs are reproducible; production verifiers should prefer
// CryptoRNG, since protocol soundness rests on the prover not predicting
// the verifier's coins.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next pseudo-random value.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CryptoRNG adapts crypto/rand to the RNG interface. Use it for real
// deployments: the verifier's security guarantee (Definition 1 of the
// paper) holds only if its random point r is unpredictable to the prover.
type CryptoRNG struct{}

// Uint64 returns 8 bytes from the operating system's CSPRNG. It panics if
// the system randomness source fails, which crypto/rand documents as
// effectively impossible on supported platforms; there is no meaningful
// way to continue a verification protocol without randomness.
func (CryptoRNG) Uint64() uint64 {
	var buf [8]byte
	if _, err := cryptorand.Read(buf[:]); err != nil {
		panic("field: system randomness unavailable: " + err.Error())
	}
	return binary.LittleEndian.Uint64(buf[:])
}

package field

import (
	"fmt"
	"testing"
)

// BenchmarkFieldKernels is the kernel-layer microbench suite: every batch
// kernel × modulus class × slice size. The modulus classes cover the three
// reduction regimes the repo exercises:
//
//   - mersenne61: the paper's p = 2^61-1, branch-free folding reduction;
//   - generic62:  a prime just below 2^62, the worst case for the generic
//     reducer (maximum product width, minimum lazy-accumulation headroom);
//   - generic20:  the smallest prime ≥ 2^20, the "u ≤ p ≤ 2u" shape of
//     ForUniverse fields (small products, large headroom).
//
// Per-op cost is dominated by the reduction strategy, so these rows are
// the ground truth for the BENCH_*.json perf trajectory.

func benchModuli(b *testing.B) []struct {
	name string
	f    Field
} {
	b.Helper()
	g62, err := New(4611686018427387847) // largest prime < 2^62
	if err != nil {
		b.Fatal(err)
	}
	g20, err := New(1048583) // smallest prime >= 2^20
	if err != nil {
		b.Fatal(err)
	}
	return []struct {
		name string
		f    Field
	}{
		{"mersenne61", Mersenne()},
		{"generic62", g62},
		{"generic20", g20},
	}
}

var benchSizes = []int{1 << 8, 1 << 12, 1 << 16}

var (
	sinkElem  Elem
	sinkElems []Elem
)

func BenchmarkFieldKernels(b *testing.B) {
	for _, m := range benchModuli(b) {
		f := m.f
		for _, n := range benchSizes {
			rng := NewSplitMix64(uint64(n))
			a := f.RandVec(rng, n)
			c := f.RandVec(rng, n)
			dst := make([]Elem, n)
			half := make([]Elem, n/2)
			quarter := make([]Elem, n/4)
			r := f.RandNonZero(rng)
			run := func(kernel string, fn func()) {
				b.Run(fmt.Sprintf("%s/%s/n=%d", kernel, m.name, n), func(b *testing.B) {
					b.SetBytes(int64(8 * n))
					for i := 0; i < b.N; i++ {
						fn()
					}
				})
			}
			run("MulSlices", func() { f.MulSlices(dst, a, c) })
			run("ScaleSlice", func() { f.ScaleSlice(dst, a, r) })
			run("AddScaledSlice", func() { f.AddScaledSlice(dst, a, c, r) })
			run("FoldPairs", func() { f.FoldPairs(half, a, r) })
			run("DotSlices", func() { sinkElem = f.DotSlices(a, c) })
			run("SumSlice", func() { sinkElem = f.SumSlice(a) })
			_ = quarter
		}
		// Scalar Mul as a dependent chain: the latency (not throughput)
		// of one reduction.
		b.Run(fmt.Sprintf("Mul/%s/chain", m.name), func(b *testing.B) {
			x, y := f.Reduce(123456789123456789), f.Reduce(987654321987654321)
			var acc Elem
			for i := 0; i < b.N; i++ {
				acc = f.Mul(x, acc+y)
			}
			sinkElem = acc
		})
		b.Run(fmt.Sprintf("Inv/%s/chain", m.name), func(b *testing.B) {
			x := f.Reduce(123456789123456789)
			if x == 0 {
				x = 2
			}
			var acc Elem
			for i := 0; i < b.N; i++ {
				acc = f.Inv(x + acc&1)
			}
			sinkElem = acc
		})
		b.Run(fmt.Sprintf("RandVec/%s/n=4096", m.name), func(b *testing.B) {
			rng := NewSplitMix64(99)
			for i := 0; i < b.N; i++ {
				sinkElems = f.RandVec(rng, 4096)
			}
		})
	}
}

package gkr

import (
	"errors"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/field"
	"repro/internal/parallel"
)

// gkrGrain is the minimum per-goroutine chunk for the per-gate loops.
// One gate costs ~10 field operations in SumcheckMsg (vs ~1 for the
// kernels parallel.MinGrain is calibrated for), so a smaller floor pays.
const gkrGrain = 1 << 9

// Prover is the honest GKR prover. It evaluates the circuit once, then
// answers each layer's sum-check with the standard per-gate bookkeeping:
// every gate keeps a running product of the χ factors of its bound
// variables, and the Ṽ_{i+1} evaluations come from a table folded by one
// challenge per round — O(S) field operations per round, O(S log S) per
// layer.
type Prover struct {
	proto  *Protocol
	values [][]field.Elem

	// Per-layer sum-check state. pX starts as the χ̃_o(z) table (the eqZ
	// factor is folded in up front, saving one multiply per gate per
	// round) and accumulates the bound-x χ factors; pY starts as the
	// frozen x-phase weights and accumulates the bound-y factors, so the
	// per-gate round weight is a single table read.
	layer   int
	z       []field.Elem
	k       int
	round   int
	pX      []field.Elem // per gate, χ̃_o(z) · product of bound-x χ factors
	pY      []field.Elem // per gate, frozen x weight · bound-y χ factors
	bX      []field.Elem // Ṽ_{i+1} table folded by x challenges
	bY      []field.Elem // Ṽ_{i+1} table folded by y challenges
	vxStar  field.Elem   // Ṽ_{i+1}(x*)
	started bool
}

// NewProver evaluates the circuit on the given input vector.
func (p *Protocol) NewProver(input []field.Elem) (*Prover, error) {
	values, err := p.C.EvaluateWorkers(p.F, input, p.Workers)
	if err != nil {
		return nil, err
	}
	return &Prover{proto: p, values: values}, nil
}

// Outputs returns the circuit's output vector (the prover's claim).
func (pr *Prover) Outputs() []field.Elem {
	return append([]field.Elem(nil), pr.values[0]...)
}

// StartLayer begins the sum-check for the given layer at the revealed
// point z (the verifier's zs[layer], which the prover can also derive
// from earlier challenges; it is passed explicitly to keep the message
// flow of the original protocol).
func (pr *Prover) StartLayer(layer int, z []field.Elem) error {
	if layer != pr.layer || pr.started {
		return fmt.Errorf("gkr: StartLayer(%d) out of order (at %d, started=%v)", layer, pr.layer, pr.started)
	}
	if len(z) != pr.proto.C.VarCount(layer) {
		return fmt.Errorf("gkr: z has %d coordinates, want %d", len(z), pr.proto.C.VarCount(layer))
	}
	pr.z = append([]field.Elem(nil), z...)
	pr.k = pr.proto.C.VarCount(layer + 1)
	pr.round = 0
	// The χ̃ table has exactly 2^len(z) = len(gates) entries; it seeds the
	// per-gate x weights directly (field multiplication is associative and
	// exact, so folding it in here leaves every message value unchanged).
	pr.pX = expandEq(pr.proto.F, z, pr.proto.Workers)
	pr.pY = nil
	pr.bX = append([]field.Elem(nil), pr.values[layer+1]...)
	pr.bY = nil
	pr.started = true
	return nil
}

// expandEq builds the table χ̃_o(z) for all o ∈ {0,1}^len(z),
// least-significant variable first. Each doubling writes two disjoint
// slots per source entry, so the rounds parallelize without reordering
// any arithmetic.
func expandEq(f field.Field, z []field.Elem, workers int) []field.Elem {
	nw := parallel.Workers(workers)
	table := []field.Elem{1}
	for t, zt := range z {
		half := len(table)
		next := make([]field.Elem, 2*half)
		parallel.ForGrain(nw, half, gkrGrain, func(_, lo, hi int) {
			oneMinus := f.Sub(1, zt)
			for o := lo; o < hi; o++ {
				e := table[o]
				next[o] = f.Mul(e, oneMinus)
				next[o|(1<<uint(t))] = f.Mul(e, zt)
			}
		})
		table = next
	}
	return table
}

// SumcheckMsg produces the current round's 3 evaluations g(0), g(1), g(2).
func (pr *Prover) SumcheckMsg() ([]field.Elem, error) {
	if !pr.started {
		return nil, errors.New("gkr: no layer in progress")
	}
	if pr.round >= 2*pr.k {
		return nil, errors.New("gkr: sum-check already finished")
	}
	f := pr.proto.F
	gates := pr.proto.C.Layers[pr.layer].Gates
	below := pr.values[pr.layer+1]
	inX := pr.round < pr.k
	var t int
	var folded []field.Elem
	if inX {
		t = pr.round // 0-based position within the x variables
		folded = pr.bX
	} else {
		t = pr.round - pr.k
		folded = pr.bY
	}
	// One pass over the gates; chunks accumulate partial sums combined in
	// chunk order, so the totals are bit-identical for every worker count
	// (field addition is exact). The χ factor of the round variable is an
	// indicator at c = 0, 1 — a gate whose wire bit is 0 contributes only
	// to g(0) and g(2) (where χ(2) = 1−2 = −1), a bit-1 gate only to g(1)
	// and g(2) (χ(2) = 2) — and the c = 2 table value is 2b − a, so each
	// gate costs two combiner evaluations and two weight multiplies
	// instead of three of each plus the per-point χ products.
	nw := parallel.Workers(pr.proto.Workers)
	partials := make([][3]field.Elem, parallel.ChunksGrain(nw, len(gates), gkrGrain))
	parallel.ForGrain(nw, len(gates), gkrGrain, func(chunk, lo, hi int) {
		var acc [3]field.Elem
		for g := lo; g < hi; g++ {
			gate := gates[g]
			var wire uint32
			var weight field.Elem
			if inX {
				wire = gate.In1
				weight = pr.pX[g]
			} else {
				wire = gate.In2
				weight = pr.pY[g]
			}
			// Ṽ at (bound, c, wire suffix): two adjacent folded entries.
			suffix := wire >> uint(t)
			i0 := suffix &^ 1
			a, b := folded[i0], folded[i0|1]
			v2 := f.Add(b, f.Sub(b, a))
			v01 := a
			if suffix&1 == 1 {
				v01 = b
			}
			var o01, o2 field.Elem
			if inX {
				vy := below[gate.In2]
				if gate.Type == circuit.Add {
					o01, o2 = f.Add(v01, vy), f.Add(v2, vy)
				} else {
					o01, o2 = f.Mul(v01, vy), f.Mul(v2, vy)
				}
			} else {
				if gate.Type == circuit.Add {
					o01, o2 = f.Add(pr.vxStar, v01), f.Add(pr.vxStar, v2)
				} else {
					o01, o2 = f.Mul(pr.vxStar, v01), f.Mul(pr.vxStar, v2)
				}
			}
			t01 := f.Mul(weight, o01)
			t2 := f.Mul(weight, o2)
			if suffix&1 == 0 {
				acc[0] = f.Add(acc[0], t01)
				acc[2] = f.Sub(acc[2], t2)
			} else {
				acc[1] = f.Add(acc[1], t01)
				acc[2] = f.Add(acc[2], f.Add(t2, t2))
			}
		}
		partials[chunk] = acc
	})
	out := make([]field.Elem, 3)
	for _, p := range partials {
		for ci := range out {
			out[ci] = f.Add(out[ci], p[ci])
		}
	}
	return out, nil
}

// Bind consumes the verifier's challenge for the current round.
func (pr *Prover) Bind(r field.Elem) error {
	if !pr.started || pr.round >= 2*pr.k {
		return errors.New("gkr: no round to bind")
	}
	f := pr.proto.F
	gates := pr.proto.C.Layers[pr.layer].Gates
	inX := pr.round < pr.k
	var t int
	if inX {
		t = pr.round
	} else {
		t = pr.round - pr.k
	}
	nw := parallel.Workers(pr.proto.Workers)
	oneMinusR := f.Sub(1, r)
	parallel.ForGrain(nw, len(gates), gkrGrain, func(_, lo, hi int) {
		for g := lo; g < hi; g++ {
			var wire uint32
			if inX {
				wire = gates[g].In1
			} else {
				wire = gates[g].In2
			}
			factor := r
			if (wire>>uint(t))&1 == 0 {
				factor = oneMinusR
			}
			if inX {
				pr.pX[g] = f.Mul(pr.pX[g], factor)
			} else {
				pr.pY[g] = f.Mul(pr.pY[g], factor)
			}
		}
	})
	if inX {
		pr.bX = pr.foldOnce(pr.bX, r)
	} else {
		pr.bY = pr.foldOnce(pr.bY, r)
	}
	pr.round++
	if pr.round == pr.k {
		// x phase complete: the per-gate x weights are frozen as the seed
		// of the y-phase products, and Ṽ(x*) is the fully folded table.
		pr.vxStar = pr.bX[0]
		pr.pY = append([]field.Elem(nil), pr.pX...)
		pr.bY = append([]field.Elem(nil), pr.values[pr.layer+1]...)
	}
	return nil
}

// foldOnce binds one variable of the table to r with the FoldPairs batch
// kernel; chunks write disjoint destination ranges.
func (pr *Prover) foldOnce(table []field.Elem, r field.Elem) []field.Elem {
	f := pr.proto.F
	nw := parallel.Workers(pr.proto.Workers)
	next := make([]field.Elem, len(table)/2)
	parallel.ForGrain(nw, len(next), gkrGrain, func(_, lo, hi int) {
		f.FoldPairs(next[lo:hi], table[2*lo:2*hi], r)
	})
	return next
}

// LinePoly returns the k+1 evaluations of q(t) = Ṽ_{layer+1}(x* + t(y*-x*))
// at t = 0..k. It requires the sum-check to be complete; the x* and y*
// points are reconstructed from the bound challenges implicitly by
// evaluating the value table along the line.
func (pr *Prover) LinePoly(xStar, yStar []field.Elem) ([]field.Elem, error) {
	if !pr.started || pr.round != 2*pr.k {
		return nil, errors.New("gkr: sum-check not finished")
	}
	f := pr.proto.F
	table := pr.values[pr.layer+1]
	out := make([]field.Elem, pr.k+1)
	point := make([]field.Elem, pr.k)
	// Scratch ping-pong buffers shared across the k+1 evaluations; each
	// fold reads one buffer and writes the other, so the chunked FoldPairs
	// calls never overlap.
	bufA := make([]field.Elem, len(table))
	bufB := make([]field.Elem, len(table)/2)
	for ti := 0; ti <= pr.k; ti++ {
		t := f.Reduce(uint64(ti))
		for j := 0; j < pr.k; j++ {
			point[j] = f.Add(xStar[j], f.Mul(t, f.Sub(yStar[j], xStar[j])))
		}
		out[ti] = pr.foldAt(table, point, bufA, bufB)
	}
	return out, nil
}

// foldAt evaluates the multilinear extension of table at point, folding
// one variable per round with the parallel FoldPairs kernel. src and dst
// must each hold len(table) and len(table)/2 elements of scratch.
func (pr *Prover) foldAt(table, point, src, dst []field.Elem) field.Elem {
	f := pr.proto.F
	nw := parallel.Workers(pr.proto.Workers)
	cur := src[:len(table)]
	copy(cur, table)
	for _, r := range point {
		next := dst[:len(cur)/2]
		parallel.ForGrain(nw, len(next), gkrGrain, func(_, lo, hi int) {
			f.FoldPairs(next[lo:hi], cur[2*lo:2*hi], r)
		})
		cur, dst = next, cur
	}
	return cur[0]
}

// FinishLayer closes the completed layer. (The next layer's point
// z = x* + t*(y* − x*) is derivable by the prover from the revealed
// challenges; the runner passes it explicitly to StartLayer, matching the
// message flow of the original protocol.)
func (pr *Prover) FinishLayer() error {
	if !pr.started || pr.round != 2*pr.k {
		return errors.New("gkr: sum-check not finished")
	}
	pr.layer++
	pr.started = false
	return nil
}

// ---------------------------------------------------------------------
// Runner

// Run drives a complete conversation and returns the verifier's stats.
// A nil error means the verifier accepted (including the streamed input
// check).
func Run(p *Prover, v *Verifier) (Stats, error) {
	if err := v.ReceiveOutputs(p.Outputs()); err != nil {
		return v.Stats(), err
	}
	numLayers := len(p.proto.C.Layers)
	for layer := 0; layer < numLayers; layer++ {
		if err := p.StartLayer(layer, v.zs[layer]); err != nil {
			return v.Stats(), err
		}
		k := p.proto.C.VarCount(layer + 1)
		for round := 0; round < 2*k; round++ {
			msg, err := p.SumcheckMsg()
			if err != nil {
				return v.Stats(), err
			}
			r, err := v.ReceiveSumcheck(msg)
			if err != nil {
				return v.Stats(), err
			}
			if err := p.Bind(r); err != nil {
				return v.Stats(), err
			}
		}
		line, err := p.LinePoly(v.xs[layer], v.ys[layer])
		if err != nil {
			return v.Stats(), err
		}
		if _, err := v.ReceiveLine(line); err != nil {
			return v.Stats(), err
		}
		if err := p.FinishLayer(); err != nil {
			return v.Stats(), err
		}
	}
	if !v.Done() {
		return v.Stats(), errors.New("gkr: conversation ended without input check")
	}
	return v.Stats(), nil
}

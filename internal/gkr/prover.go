package gkr

import (
	"errors"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/field"
)

// Prover is the honest GKR prover. It evaluates the circuit once, then
// answers each layer's sum-check with the standard per-gate bookkeeping:
// every gate keeps a running product of the χ factors of its bound
// variables, and the Ṽ_{i+1} evaluations come from a table folded by one
// challenge per round — O(S) field operations per round, O(S log S) per
// layer.
type Prover struct {
	proto  *Protocol
	values [][]field.Elem

	// Per-layer sum-check state.
	layer   int
	z       []field.Elem
	k       int
	round   int
	eqZ     []field.Elem // χ̃_o(z) per gate output index
	pX      []field.Elem // per gate, product of bound-x χ factors
	pY      []field.Elem
	wX      []field.Elem // eqZ·pX frozen after the x phase
	bX      []field.Elem // Ṽ_{i+1} table folded by x challenges
	bY      []field.Elem // Ṽ_{i+1} table folded by y challenges
	vxStar  field.Elem   // Ṽ_{i+1}(x*)
	started bool
}

// NewProver evaluates the circuit on the given input vector.
func (p *Protocol) NewProver(input []field.Elem) (*Prover, error) {
	values, err := p.C.Evaluate(p.F, input)
	if err != nil {
		return nil, err
	}
	return &Prover{proto: p, values: values}, nil
}

// Outputs returns the circuit's output vector (the prover's claim).
func (pr *Prover) Outputs() []field.Elem {
	return append([]field.Elem(nil), pr.values[0]...)
}

// StartLayer begins the sum-check for the given layer at the revealed
// point z (the verifier's zs[layer], which the prover can also derive
// from earlier challenges; it is passed explicitly to keep the message
// flow of the original protocol).
func (pr *Prover) StartLayer(layer int, z []field.Elem) error {
	if layer != pr.layer || pr.started {
		return fmt.Errorf("gkr: StartLayer(%d) out of order (at %d, started=%v)", layer, pr.layer, pr.started)
	}
	if len(z) != pr.proto.C.VarCount(layer) {
		return fmt.Errorf("gkr: z has %d coordinates, want %d", len(z), pr.proto.C.VarCount(layer))
	}
	gates := pr.proto.C.Layers[layer].Gates
	pr.z = append([]field.Elem(nil), z...)
	pr.k = pr.proto.C.VarCount(layer + 1)
	pr.round = 0
	eqTable := expandEq(pr.proto.F, z)
	pr.eqZ = make([]field.Elem, len(gates))
	for g := range gates {
		pr.eqZ[g] = eqTable[g]
	}
	pr.pX = ones(len(gates))
	pr.pY = nil
	pr.wX = nil
	pr.bX = append([]field.Elem(nil), pr.values[layer+1]...)
	pr.bY = nil
	pr.started = true
	return nil
}

// expandEq builds the table χ̃_o(z) for all o ∈ {0,1}^len(z),
// least-significant variable first.
func expandEq(f field.Field, z []field.Elem) []field.Elem {
	table := []field.Elem{1}
	for t, zt := range z {
		next := make([]field.Elem, 2*len(table))
		for o, e := range table {
			next[o] = f.Mul(e, f.Sub(1, zt))
			next[o|(1<<uint(t))] = f.Mul(e, zt)
		}
		table = next
	}
	return table
}

func ones(n int) []field.Elem {
	out := make([]field.Elem, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// SumcheckMsg produces the current round's 3 evaluations g(0), g(1), g(2).
func (pr *Prover) SumcheckMsg() ([]field.Elem, error) {
	if !pr.started {
		return nil, errors.New("gkr: no layer in progress")
	}
	if pr.round >= 2*pr.k {
		return nil, errors.New("gkr: sum-check already finished")
	}
	f := pr.proto.F
	gates := pr.proto.C.Layers[pr.layer].Gates
	below := pr.values[pr.layer+1]
	out := make([]field.Elem, 3)
	inX := pr.round < pr.k
	var t int
	var folded []field.Elem
	if inX {
		t = pr.round // 0-based position within the x variables
		folded = pr.bX
	} else {
		t = pr.round - pr.k
		folded = pr.bY
	}
	for ci := 0; ci < 3; ci++ {
		c := f.Reduce(uint64(ci))
		oneMinusC := f.Sub(1, c)
		var sum field.Elem
		for g, gate := range gates {
			var wire uint32
			if inX {
				wire = gate.In1
			} else {
				wire = gate.In2
			}
			bit := (wire >> uint(t)) & 1
			var chiC field.Elem
			if bit == 0 {
				chiC = oneMinusC
			} else {
				chiC = c
			}
			// Ṽ at (bound, c, wire suffix): two adjacent folded entries.
			suffix := wire >> uint(t)
			i0 := suffix &^ 1
			a, b := folded[i0], folded[i0|1]
			vPartial := f.Add(a, f.Mul(c, f.Sub(b, a)))
			var opVal field.Elem
			if inX {
				vy := below[gate.In2]
				if gate.Type == circuit.Add {
					opVal = f.Add(vPartial, vy)
				} else {
					opVal = f.Mul(vPartial, vy)
				}
				sum = f.Add(sum, f.Mul(f.Mul(pr.eqZ[g], pr.pX[g]), f.Mul(chiC, opVal)))
			} else {
				if gate.Type == circuit.Add {
					opVal = f.Add(pr.vxStar, vPartial)
				} else {
					opVal = f.Mul(pr.vxStar, vPartial)
				}
				sum = f.Add(sum, f.Mul(f.Mul(pr.wX[g], pr.pY[g]), f.Mul(chiC, opVal)))
			}
		}
		out[ci] = sum
	}
	return out, nil
}

// Bind consumes the verifier's challenge for the current round.
func (pr *Prover) Bind(r field.Elem) error {
	if !pr.started || pr.round >= 2*pr.k {
		return errors.New("gkr: no round to bind")
	}
	f := pr.proto.F
	gates := pr.proto.C.Layers[pr.layer].Gates
	inX := pr.round < pr.k
	var t int
	if inX {
		t = pr.round
	} else {
		t = pr.round - pr.k
	}
	oneMinusR := f.Sub(1, r)
	for g, gate := range gates {
		var wire uint32
		if inX {
			wire = gate.In1
		} else {
			wire = gate.In2
		}
		factor := r
		if (wire>>uint(t))&1 == 0 {
			factor = oneMinusR
		}
		if inX {
			pr.pX[g] = f.Mul(pr.pX[g], factor)
		} else {
			pr.pY[g] = f.Mul(pr.pY[g], factor)
		}
	}
	if inX {
		pr.bX = foldOnce(f, pr.bX, r)
	} else {
		pr.bY = foldOnce(f, pr.bY, r)
	}
	pr.round++
	if pr.round == pr.k {
		// x phase complete: freeze the per-gate x weights and Ṽ(x*).
		pr.vxStar = pr.bX[0]
		pr.wX = make([]field.Elem, len(gates))
		for g := range gates {
			pr.wX[g] = f.Mul(pr.eqZ[g], pr.pX[g])
		}
		pr.pY = ones(len(gates))
		pr.bY = append([]field.Elem(nil), pr.values[pr.layer+1]...)
	}
	return nil
}

func foldOnce(f field.Field, table []field.Elem, r field.Elem) []field.Elem {
	next := make([]field.Elem, len(table)/2)
	for w := range next {
		a, b := table[2*w], table[2*w+1]
		next[w] = f.Add(a, f.Mul(r, f.Sub(b, a)))
	}
	return next
}

// LinePoly returns the k+1 evaluations of q(t) = Ṽ_{layer+1}(x* + t(y*-x*))
// at t = 0..k. It requires the sum-check to be complete; the x* and y*
// points are reconstructed from the bound challenges implicitly by
// evaluating the value table along the line.
func (pr *Prover) LinePoly(xStar, yStar []field.Elem) ([]field.Elem, error) {
	if !pr.started || pr.round != 2*pr.k {
		return nil, errors.New("gkr: sum-check not finished")
	}
	f := pr.proto.F
	out := make([]field.Elem, pr.k+1)
	point := make([]field.Elem, pr.k)
	for ti := 0; ti <= pr.k; ti++ {
		t := f.Reduce(uint64(ti))
		for j := 0; j < pr.k; j++ {
			point[j] = f.Add(xStar[j], f.Mul(t, f.Sub(yStar[j], xStar[j])))
		}
		out[ti] = foldAt(f, pr.values[pr.layer+1], point)
	}
	return out, nil
}

// FinishLayer closes the completed layer. (The next layer's point
// z = x* + t*(y* − x*) is derivable by the prover from the revealed
// challenges; the runner passes it explicitly to StartLayer, matching the
// message flow of the original protocol.)
func (pr *Prover) FinishLayer() error {
	if !pr.started || pr.round != 2*pr.k {
		return errors.New("gkr: sum-check not finished")
	}
	pr.layer++
	pr.started = false
	return nil
}

// ---------------------------------------------------------------------
// Runner

// Run drives a complete conversation and returns the verifier's stats.
// A nil error means the verifier accepted (including the streamed input
// check).
func Run(p *Prover, v *Verifier) (Stats, error) {
	if err := v.ReceiveOutputs(p.Outputs()); err != nil {
		return v.Stats(), err
	}
	numLayers := len(p.proto.C.Layers)
	for layer := 0; layer < numLayers; layer++ {
		if err := p.StartLayer(layer, v.zs[layer]); err != nil {
			return v.Stats(), err
		}
		k := p.proto.C.VarCount(layer + 1)
		for round := 0; round < 2*k; round++ {
			msg, err := p.SumcheckMsg()
			if err != nil {
				return v.Stats(), err
			}
			r, err := v.ReceiveSumcheck(msg)
			if err != nil {
				return v.Stats(), err
			}
			if err := p.Bind(r); err != nil {
				return v.Stats(), err
			}
		}
		line, err := p.LinePoly(v.xs[layer], v.ys[layer])
		if err != nil {
			return v.Stats(), err
		}
		if _, err := v.ReceiveLine(line); err != nil {
			return v.Stats(), err
		}
		if err := p.FinishLayer(); err != nil {
			return v.Stats(), err
		}
	}
	if !v.Done() {
		return v.Stats(), errors.New("gkr: conversation ended without input check")
	}
	return v.Stats(), nil
}

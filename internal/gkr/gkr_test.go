package gkr

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/field"
	"repro/internal/stream"
)

var f61 = field.Mersenne()

// runF2 drives a complete GKR conversation for F2 over 2^k inputs,
// streaming ups into the verifier.
func runF2(t *testing.T, k int, ups []stream.Update, wiring circuit.Wiring, seed uint64) (*Verifier, error) {
	t.Helper()
	c, err := circuit.NewF2Circuit(k)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(f61, c, wiring)
	if err != nil {
		t.Fatal(err)
	}
	v, err := proto.NewVerifier(field.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]field.Elem, c.InputSize)
	for _, up := range ups {
		if err := v.Observe(up.Index, up.Delta); err != nil {
			t.Fatal(err)
		}
		input[up.Index] = f61.Add(input[up.Index], f61.FromInt64(up.Delta))
	}
	p, err := proto.NewProver(input)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, v)
	return v, err
}

func refF2(t *testing.T, ups []stream.Update, u uint64) field.Elem {
	t.Helper()
	a, err := stream.Apply(ups, u)
	if err != nil {
		t.Fatal(err)
	}
	var total field.Elem
	for _, v := range a {
		e := f61.FromInt64(v)
		total = f61.Add(total, f61.Mul(e, e))
	}
	return total
}

func TestGKRF2Completeness(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 7} {
		u := uint64(1) << k
		rng := field.NewSplitMix64(uint64(400 + k))
		ups := stream.UniformDeltas(u, 50, rng)
		for _, wiring := range []circuit.Wiring{nil, circuit.F2Wiring{K: k}} {
			v, err := runF2(t, k, ups, wiring, uint64(500+k))
			if err != nil {
				t.Fatalf("k=%d wiring=%T: rejected: %v", k, wiring, err)
			}
			got, err := v.Output()
			if err != nil {
				t.Fatal(err)
			}
			if want := refF2(t, ups, u); got != want {
				t.Fatalf("k=%d: F2 = %d, want %d", k, got, want)
			}
		}
	}
}

// TestGKRCommGrowsAsLogSquared: the §3 Remarks gap — GKR communication is
// Θ(log² u) words, so doubling log u should roughly quadruple it.
func TestGKRCommGrowsAsLogSquared(t *testing.T) {
	stats := map[int]Stats{}
	for _, k := range []int{4, 8} {
		u := uint64(1) << k
		ups := stream.UniformDeltas(u, 10, field.NewSplitMix64(uint64(k)))
		v, err := runF2(t, k, ups, circuit.F2Wiring{K: k}, 7)
		if err != nil {
			t.Fatal(err)
		}
		stats[k] = v.Stats()
	}
	ratio := float64(stats[8].CommWords) / float64(stats[4].CommWords)
	if ratio < 2.5 {
		t.Errorf("comm ratio k=8/k=4 is %.2f; expected superlinear (≈3-4×) growth in log u", ratio)
	}
}

// TestGKRWrongOutputRejected: claiming the wrong output fails immediately
// or at latest at the input check.
func TestGKRWrongOutputRejected(t *testing.T) {
	k := 4
	u := uint64(1) << k
	c, err := circuit.NewF2Circuit(k)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(f61, c, circuit.F2Wiring{K: k})
	if err != nil {
		t.Fatal(err)
	}
	v, err := proto.NewVerifier(field.NewSplitMix64(8))
	if err != nil {
		t.Fatal(err)
	}
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(9))
	input := make([]field.Elem, u)
	for _, up := range ups {
		if err := v.Observe(up.Index, up.Delta); err != nil {
			t.Fatal(err)
		}
		input[up.Index] = f61.Add(input[up.Index], f61.FromInt64(up.Delta))
	}
	p, err := proto.NewProver(input)
	if err != nil {
		t.Fatal(err)
	}
	outs := p.Outputs()
	outs[0] = f61.Add(outs[0], 1)
	if err := v.ReceiveOutputs(outs); err != nil {
		t.Fatalf("output receipt itself should succeed: %v", err)
	}
	// Play the rest honestly: the first sum-check round must fail, since
	// the prover's true g1 sums to the true value, not the lie.
	if err := p.StartLayer(0, v.zs[0]); err != nil {
		t.Fatal(err)
	}
	msg, err := p.SumcheckMsg()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReceiveSumcheck(msg); !errors.Is(err, ErrRejected) {
		t.Fatalf("lying output not rejected: %v", err)
	}
}

// TestGKRWrongStreamRejected: the prover evaluates the circuit on a
// different input; the final streamed-input check catches it.
func TestGKRWrongStreamRejected(t *testing.T) {
	k := 5
	u := uint64(1) << k
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(10))
	c, err := circuit.NewF2Circuit(k)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(f61, c, circuit.F2Wiring{K: k})
	if err != nil {
		t.Fatal(err)
	}
	v, err := proto.NewVerifier(field.NewSplitMix64(11))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]field.Elem, u)
	for _, up := range ups {
		if err := v.Observe(up.Index, up.Delta); err != nil {
			t.Fatal(err)
		}
		input[up.Index] = f61.Add(input[up.Index], f61.FromInt64(up.Delta))
	}
	input[3] = f61.Add(input[3], 1) // prover's data differs in one cell
	p, err := proto.NewProver(input)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, v); !errors.Is(err, ErrRejected) {
		t.Fatalf("wrong-stream prover not rejected: %v", err)
	}
}

// TestGKRTamperedSumcheckRejected: flipping a sum-check evaluation mid-
// protocol is caught.
func TestGKRTamperedSumcheckRejected(t *testing.T) {
	k := 4
	u := uint64(1) << k
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(12))
	c, err := circuit.NewF2Circuit(k)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(f61, c, circuit.F2Wiring{K: k})
	if err != nil {
		t.Fatal(err)
	}
	v, err := proto.NewVerifier(field.NewSplitMix64(13))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]field.Elem, u)
	for _, up := range ups {
		if err := v.Observe(up.Index, up.Delta); err != nil {
			t.Fatal(err)
		}
		input[up.Index] = f61.Add(input[up.Index], f61.FromInt64(up.Delta))
	}
	p, err := proto.NewProver(input)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.ReceiveOutputs(p.Outputs()); err != nil {
		t.Fatal(err)
	}
	if err := p.StartLayer(0, v.zs[0]); err != nil {
		t.Fatal(err)
	}
	rejected := false
	for round := 0; round < 2*proto.C.VarCount(1); round++ {
		msg, err := p.SumcheckMsg()
		if err != nil {
			t.Fatal(err)
		}
		if round == 1 {
			msg[2] = f61.Add(msg[2], 1)
		}
		r, err := v.ReceiveSumcheck(msg)
		if err != nil {
			if round >= 1 && errors.Is(err, ErrRejected) {
				rejected = true
				break
			}
			t.Fatal(err)
		}
		if err := p.Bind(r); err != nil {
			t.Fatal(err)
		}
	}
	if !rejected {
		// The flip corrupts g(2) only, so the round-1 sum check passes but
		// the next round (or the line check) must fail. Finish the layer.
		line, err := p.LinePoly(v.xs[0], v.ys[0])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.ReceiveLine(line); !errors.Is(err, ErrRejected) {
			t.Fatalf("tampered sum-check not rejected: %v", err)
		}
	}
}

func TestGKRValidation(t *testing.T) {
	c, err := circuit.NewF2Circuit(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(field.Field{}, c, nil); err == nil {
		t.Error("invalid field accepted")
	}
	proto, err := New(f61, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := proto.NewVerifier(field.NewSplitMix64(14))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Observe(8, 1); err == nil || strings.Contains(err.Error(), "rejected") {
		t.Errorf("out-of-range observe: %v", err)
	}
	if _, err := v.ReceiveSumcheck([]field.Elem{1, 2, 3}); err == nil {
		t.Error("sum-check before outputs accepted")
	}
	if _, err := proto.NewProver(make([]field.Elem, 3)); err == nil {
		t.Error("short input accepted")
	}
}

package gkr

import (
	"errors"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
)

// sessionSpecs are the registry families exercised by the adapter tests,
// over a deliberately non-power-of-two universe.
var sessionSpecs = []circuit.Spec{
	{Name: circuit.FamilyF2},
	{Name: circuit.FamilyCount},
	{Name: circuit.FamilyMatMul, Arg: 16},
}

func sessionUps(u uint64, n int, seed uint64) []stream.Update {
	rng := field.NewSplitMix64(seed)
	ups := make([]stream.Update, n)
	for i := range ups {
		ups[i] = stream.Update{Index: rng.Uint64() % u, Delta: int64(rng.Uint64()%9) - 3}
	}
	return ups
}

// sessionInput builds the prover input the way the engine does: dense
// element table over the padded universe, then the protocol's padding.
func sessionInput(t *testing.T, proto *Protocol, ups []stream.Update, u uint64) []field.Elem {
	t.Helper()
	d, err := circuit.PaddedVars(u)
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]field.Elem, 1<<d)
	for _, up := range ups {
		elems[up.Index] = f61.Add(elems[up.Index], f61.FromInt64(up.Delta))
	}
	return proto.PadInput(elems)
}

// recorder captures both directions of a conversation for bit-exact
// transcript comparison.
type recorder struct {
	p                      core.ProverSession
	v                      core.VerifierSession
	proverMsgs, challenges []core.Msg
}

func (r *recorder) Open() (core.Msg, error) {
	m, err := r.p.Open()
	r.proverMsgs = append(r.proverMsgs, cloneTestMsg(m))
	return m, err
}

func (r *recorder) Step(ch core.Msg) (core.Msg, error) {
	m, err := r.p.Step(ch)
	r.proverMsgs = append(r.proverMsgs, cloneTestMsg(m))
	return m, err
}

func (r *recorder) Begin(op core.Msg) (core.Msg, bool, error) {
	ch, done, err := r.v.Begin(op)
	r.challenges = append(r.challenges, cloneTestMsg(ch))
	return ch, done, err
}

func (r *recorder) vStep(resp core.Msg) (core.Msg, bool, error) {
	ch, done, err := r.v.Step(resp)
	r.challenges = append(r.challenges, cloneTestMsg(ch))
	return ch, done, err
}

func cloneTestMsg(m core.Msg) core.Msg {
	return core.Msg{Ints: append([]uint64(nil), m.Ints...), Elems: append([]field.Elem(nil), m.Elems...)}
}

type vRecorder struct{ r *recorder }

func (w vRecorder) Begin(op core.Msg) (core.Msg, bool, error) { return w.r.Begin(op) }
func (w vRecorder) Step(m core.Msg) (core.Msg, bool, error)   { return w.r.vStep(m) }

// runSession drives one full session conversation, returning the
// recorded transcript and the verifier session.
func runSession(t *testing.T, spec circuit.Spec, u uint64, ups []stream.Update, workers int, seed uint64) (*recorder, *VerifierSession, error) {
	t.Helper()
	proto, err := NewProtocolFor(f61, spec, u, workers)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := proto.NewVerifierSession(field.NewSplitMix64(seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range ups {
		if err := vs.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := proto.NewProverSession(sessionInput(t, proto, ups, u))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{p: ps, v: vs}
	_, err = core.Run(rec, vRecorder{rec})
	return rec, vs, err
}

// TestSessionCompleteness runs every family end-to-end through the
// core.Run driver and checks the verified answers against direct
// computation from the stream.
func TestSessionCompleteness(t *testing.T) {
	const u = 500
	ups := sessionUps(u, 300, 42)
	a, err := stream.Apply(ups, u)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range sessionSpecs {
		_, vs, err := runSession(t, spec, u, ups, 0, 7)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		outs, err := vs.Outputs()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		switch spec.Name {
		case circuit.FamilyF2:
			var want field.Elem
			for _, v := range a {
				e := f61.FromInt64(v)
				want = f61.Add(want, f61.Mul(e, e))
			}
			if len(outs) != 1 || outs[0] != want {
				t.Errorf("F2: output %v, want [%d]", outs, want)
			}
		case circuit.FamilyCount:
			var want field.Elem
			for _, v := range a {
				want = f61.Add(want, f61.FromInt64(v))
			}
			if len(outs) != 1 || outs[0] != want {
				t.Errorf("COUNT: output %v, want [%d]", outs, want)
			}
		case circuit.FamilyMatMul:
			n := int(spec.Arg)
			if len(outs) != n*n {
				t.Fatalf("MATMUL: %d outputs, want %d", len(outs), n*n)
			}
			// C[i][j] over the zero-padded n×n view of the counts.
			el := func(i, j int) field.Elem {
				idx := i*n + j
				if idx < len(a) {
					return f61.FromInt64(a[idx])
				}
				return 0
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var want field.Elem
					for k := 0; k < n; k++ {
						want = f61.Add(want, f61.Mul(el(i, k), el(k, j)))
					}
					if outs[i*n+j] != want {
						t.Fatalf("MATMUL: C[%d][%d] = %d, want %d", i, j, outs[i*n+j], want)
					}
				}
			}
		}
	}
}

// TestSessionTranscriptWorkers pins the determinism invariant: the full
// two-way transcript is bit-identical for every worker count.
func TestSessionTranscriptWorkers(t *testing.T) {
	const u = 300
	ups := sessionUps(u, 200, 9)
	for _, spec := range sessionSpecs {
		base, _, err := runSession(t, spec, u, ups, 1, 5)
		if err != nil {
			t.Fatalf("%s serial: %v", spec.Name, err)
		}
		for _, workers := range []int{0, 2, 3, -1} {
			got, _, err := runSession(t, spec, u, ups, workers, 5)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", spec.Name, workers, err)
			}
			if !sameSessionMsgs(base.proverMsgs, got.proverMsgs) || !sameSessionMsgs(base.challenges, got.challenges) {
				t.Fatalf("%s workers=%d: transcript differs from serial", spec.Name, workers)
			}
		}
	}
}

func sameSessionMsgs(a, b []core.Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Ints) != len(b[i].Ints) || len(a[i].Elems) != len(b[i].Elems) {
			return false
		}
		for j := range a[i].Ints {
			if a[i].Ints[j] != b[i].Ints[j] {
				return false
			}
		}
		for j := range a[i].Elems {
			if a[i].Elems[j] != b[i].Elems[j] {
				return false
			}
		}
	}
	return true
}

// TestSessionTamperRejected corrupts each outgoing prover message in
// turn; every corruption must surface as core.ErrRejected.
func TestSessionTamperRejected(t *testing.T) {
	const u = 64
	ups := sessionUps(u, 100, 11)
	for _, spec := range sessionSpecs {
		proto, err := NewProtocolFor(f61, spec, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Count the honest rounds first.
		_, vs, err := runSession(t, spec, u, ups, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		rounds := vs.Stats().Rounds
		for round := 0; round < rounds; round++ {
			vs, err := proto.NewVerifierSession(field.NewSplitMix64(3))
			if err != nil {
				t.Fatal(err)
			}
			for _, up := range ups {
				if err := vs.Observe(up); err != nil {
					t.Fatal(err)
				}
			}
			ps, err := proto.NewProverSession(sessionInput(t, proto, ups, u))
			if err != nil {
				t.Fatal(err)
			}
			tampered := &core.TamperedProver{P: ps, T: func(r int, m core.Msg) core.Msg {
				if r == round && len(m.Elems) > 0 {
					m.Elems[0] = f61.Add(m.Elems[0], 1)
				}
				return m
			}}
			_, err = core.Run(tampered, vs)
			if !errors.Is(err, core.ErrRejected) {
				t.Errorf("%s round %d tamper: err = %v, want core.ErrRejected", spec.Name, round, err)
			}
		}
	}
}

// TestSessionInputMismatchRejected gives the verifier one extra stream
// update the prover never saw; the final input check must fail.
func TestSessionInputMismatchRejected(t *testing.T) {
	const u = 128
	ups := sessionUps(u, 80, 21)
	for _, spec := range sessionSpecs {
		proto, err := NewProtocolFor(f61, spec, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		vs, err := proto.NewVerifierSession(field.NewSplitMix64(13))
		if err != nil {
			t.Fatal(err)
		}
		for _, up := range ups {
			if err := vs.Observe(up); err != nil {
				t.Fatal(err)
			}
		}
		if err := vs.Observe(stream.Update{Index: 5, Delta: 1}); err != nil {
			t.Fatal(err)
		}
		ps, err := proto.NewProverSession(sessionInput(t, proto, ups, u))
		if err != nil {
			t.Fatal(err)
		}
		_, err = core.Run(ps, vs)
		if !errors.Is(err, core.ErrRejected) {
			t.Errorf("%s: err = %v, want core.ErrRejected", spec.Name, err)
		}
	}
}

package gkr

// Session adapters: the GKR conversation expressed as the universal
// core.ProverSession / core.VerifierSession state machines, so the whole
// stack built for the fixed query kinds — core.Run, the engine's
// snapshot provers, the mux wire, tampering tests — drives GKR without
// modification.
//
// Message flow (prover → verifier unless noted):
//
//	opening:   the claimed output vector
//	challenge: z₀ (verifier reveals the random output point)
//	then per layer, 2k sum-check exchanges of (3 evals) ⇄ (challenge r),
//	the line restriction q(0..k), and the verifier's t*; the prover
//	derives the next layer's point z = x* + t*(y*−x*) from the revealed
//	challenges itself — the Appendix-A property that z depends only on
//	the verifier's coins. After the final layer's line the verifier
//	checks the claim against its streamed input evaluation and stops.

import (
	"errors"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
)

// NewProtocolFor builds the protocol for a named circuit family over a
// dataset universe of size u with the given prover worker count. The
// family's input convention follows the engine's padding: the dense
// element table padded to a power of two, of which the circuit reads the
// first InputSize entries.
func NewProtocolFor(f field.Field, spec circuit.Spec, u uint64, workers int) (*Protocol, error) {
	c, w, err := circuit.BuildSpec(spec, u)
	if err != nil {
		return nil, err
	}
	p, err := New(f, c, w)
	if err != nil {
		return nil, err
	}
	p.Workers = workers
	return p, nil
}

// NewVerifierFor builds the verifier session for a named circuit family
// over universe u. (Workers are a prover-side knob; the verifier streams
// in O(log² u) space and stays serial.)
func NewVerifierFor(f field.Field, spec circuit.Spec, u uint64, rng field.RNG) (*VerifierSession, error) {
	p, err := NewProtocolFor(f, spec, u, 0)
	if err != nil {
		return nil, err
	}
	return p.NewVerifierSession(rng)
}

// PadInput derives the circuit input from a dense element table: the
// first InputSize entries, zero-padded if the table is shorter. The
// returned slice may alias elems; the prover copies it on construction.
func (p *Protocol) PadInput(elems []field.Elem) []field.Elem {
	n := p.C.InputSize
	if len(elems) >= n {
		return elems[:n]
	}
	in := make([]field.Elem, n)
	copy(in, elems)
	return in
}

// ---------------------------------------------------------------------
// Prover session

type proverPhase uint8

const (
	phaseAwaitZ   proverPhase = iota // waiting for the revealed layer point
	phaseSumcheck                    // waiting for a sum-check challenge
	phaseAwaitT                      // line sent, waiting for t*
)

// ProverSession adapts Prover to core.ProverSession. It records the
// revealed sum-check challenges so it can evaluate the line restriction
// and derive each next layer's point without extra messages.
type ProverSession struct {
	pr    *Prover
	phase proverPhase
	xs    []field.Elem // bound x challenges of the current layer
	ys    []field.Elem
}

// NewProverSession evaluates the circuit on the input and returns the
// conversation-ready prover.
func (p *Protocol) NewProverSession(input []field.Elem) (*ProverSession, error) {
	pr, err := p.NewProver(input)
	if err != nil {
		return nil, err
	}
	return &ProverSession{pr: pr}, nil
}

// Open produces the opening message: the claimed output vector.
func (s *ProverSession) Open() (core.Msg, error) {
	return core.Msg{Elems: s.pr.Outputs()}, nil
}

// Step consumes a verifier challenge and produces the next response.
func (s *ProverSession) Step(challenge core.Msg) (core.Msg, error) {
	if len(challenge.Ints) != 0 {
		return core.Msg{}, errors.New("gkr: unexpected integer payload in challenge")
	}
	f := s.pr.proto.F
	switch s.phase {
	case phaseAwaitZ:
		// The first challenge reveals z₀.
		return s.startLayer(challenge.Elems)
	case phaseSumcheck:
		if len(challenge.Elems) != 1 {
			return core.Msg{}, fmt.Errorf("gkr: sum-check challenge has %d elements, want 1", len(challenge.Elems))
		}
		r := challenge.Elems[0]
		if len(s.xs) < s.pr.k {
			s.xs = append(s.xs, r)
		} else {
			s.ys = append(s.ys, r)
		}
		if err := s.pr.Bind(r); err != nil {
			return core.Msg{}, err
		}
		if s.pr.round < 2*s.pr.k {
			msg, err := s.pr.SumcheckMsg()
			return core.Msg{Elems: msg}, err
		}
		line, err := s.pr.LinePoly(s.xs, s.ys)
		if err != nil {
			return core.Msg{}, err
		}
		s.phase = phaseAwaitT
		return core.Msg{Elems: line}, nil
	case phaseAwaitT:
		if len(challenge.Elems) != 1 {
			return core.Msg{}, fmt.Errorf("gkr: line challenge has %d elements, want 1", len(challenge.Elems))
		}
		t := challenge.Elems[0]
		// z_{i+1} = x* + t*(y* − x*), derived from revealed challenges.
		z := make([]field.Elem, len(s.xs))
		for j := range z {
			z[j] = f.Add(s.xs[j], f.Mul(t, f.Sub(s.ys[j], s.xs[j])))
		}
		if err := s.pr.FinishLayer(); err != nil {
			return core.Msg{}, err
		}
		return s.startLayer(z)
	}
	return core.Msg{}, errors.New("gkr: invalid prover phase")
}

func (s *ProverSession) startLayer(z []field.Elem) (core.Msg, error) {
	if err := s.pr.StartLayer(s.pr.layer, z); err != nil {
		return core.Msg{}, err
	}
	s.xs, s.ys = s.xs[:0], s.ys[:0]
	s.phase = phaseSumcheck
	msg, err := s.pr.SumcheckMsg()
	return core.Msg{Elems: msg}, err
}

// ---------------------------------------------------------------------
// Verifier session

// VerifierSession adapts Verifier to core.VerifierSession. Observe must
// see the input stream before the conversation, like every verifier in
// this repository.
type VerifierSession struct {
	v    *Verifier
	outs []field.Elem
}

// NewVerifierSession pre-samples all randomness and returns a verifier
// ready to observe the input stream.
func (p *Protocol) NewVerifierSession(rng field.RNG) (*VerifierSession, error) {
	v, err := p.NewVerifier(rng)
	if err != nil {
		return nil, err
	}
	return &VerifierSession{v: v}, nil
}

// Observe folds one stream update into the input evaluation. Updates at
// indices the circuit does not read (at or beyond InputSize — possible
// for MATMUL with a dimension smaller than the universe) are outside the
// statement being proved and are skipped.
func (s *VerifierSession) Observe(up stream.Update) error {
	if up.Index >= uint64(s.v.proto.C.InputSize) {
		return nil
	}
	return s.v.Observe(up.Index, up.Delta)
}

// Begin consumes the claimed outputs and reveals z₀.
func (s *VerifierSession) Begin(opening core.Msg) (core.Msg, bool, error) {
	if len(opening.Ints) != 0 {
		return core.Msg{}, false, fmt.Errorf("%w: unexpected integer payload in opening", core.ErrRejected)
	}
	if err := s.v.ReceiveOutputs(opening.Elems); err != nil {
		return core.Msg{}, false, wrapReject(err)
	}
	s.outs = append([]field.Elem(nil), opening.Elems...)
	return core.Msg{Elems: append([]field.Elem(nil), s.v.zs[0]...)}, false, nil
}

// Step consumes one prover response: a 3-evaluation sum-check message
// while rounds remain in the current layer, the line restriction
// otherwise. After the last layer's line check it reports done.
func (s *VerifierSession) Step(response core.Msg) (core.Msg, bool, error) {
	if s.v.Done() {
		return core.Msg{}, false, errors.New("gkr: conversation already complete")
	}
	if len(response.Ints) != 0 {
		return core.Msg{}, false, fmt.Errorf("%w: unexpected integer payload", core.ErrRejected)
	}
	if s.v.SumcheckRoundsLeft() > 0 {
		r, err := s.v.ReceiveSumcheck(response.Elems)
		if err != nil {
			return core.Msg{}, false, wrapReject(err)
		}
		return core.Msg{Elems: []field.Elem{r}}, false, nil
	}
	t, err := s.v.ReceiveLine(response.Elems)
	if err != nil {
		return core.Msg{}, false, wrapReject(err)
	}
	if s.v.Done() {
		return core.Msg{}, true, nil
	}
	return core.Msg{Elems: []field.Elem{t}}, false, nil
}

// wrapReject maps this package's rejection sentinel onto the repository's
// uniform core.ErrRejected so transports and clients need only one check.
func wrapReject(err error) error {
	if errors.Is(err, ErrRejected) {
		return fmt.Errorf("%w: %w", core.ErrRejected, err)
	}
	return err
}

// Output returns the first output gate's verified value.
func (s *VerifierSession) Output() (field.Elem, error) { return s.v.Output() }

// Outputs returns the full verified output vector (e.g. the n² entries
// of a MATMUL product). The initial claim binds the whole vector via its
// extension at z₀, so acceptance covers every entry.
func (s *VerifierSession) Outputs() ([]field.Elem, error) {
	if !s.v.Done() {
		return nil, errors.New("gkr: outputs unavailable before acceptance")
	}
	return append([]field.Elem(nil), s.outs...), nil
}

// Stats returns the conversation accounting.
func (s *VerifierSession) Stats() Stats { return s.v.Stats() }

// SpaceWords reports the verifier's working memory in words.
func (s *VerifierSession) SpaceWords() int { return s.v.SpaceWords() }

// Package gkr implements the Goldwasser–Kalai–Rothblum "Interactive
// Proofs for Muggles" protocol with a *streaming* verifier — the
// construction behind Theorem 3 of Cormode–Thaler–Yi (Appendix A,
// "Streaming Interactive Proofs for Muggles").
//
// For a layered circuit C, the protocol reduces a claim about the output
// layer to a claim about the input layer, one layer at a time. For layer
// i, with Ṽ_i the multilinear extension of the layer's values,
//
//	Ṽ_i(z) = Σ_{x,y ∈ {0,1}^{k_{i+1}}}
//	           add̃_i(z,x,y)·(Ṽ_{i+1}(x)+Ṽ_{i+1}(y))
//	         + mult̃_i(z,x,y)·Ṽ_{i+1}(x)·Ṽ_{i+1}(y)
//
// is verified with a 2k_{i+1}-round sum-check (degree ≤ 2 per variable,
// so 3 evaluations per message), after which the two claims Ṽ_{i+1}(x*),
// Ṽ_{i+1}(y*) are merged into one by restricting Ṽ_{i+1} to the line
// through x* and y*.
//
// The streaming twist (Appendix A): the final claim is about the *input*
// extension at a point that depends only on the verifier's own coins —
// z_L = ℓ_{L-1}(t*_{L-1}) is a function of the pre-sampled challenges, not
// of anything the prover says. The verifier therefore samples all
// randomness up front, derives that point, and evaluates the input MLE at
// it during the stream in O(log u) space, exactly like Theorem 1.
//
// The honest prover runs in O(S·log S) per layer using the per-gate
// bookkeeping tables (the standard linear-time sum-check prover).
//
// This package exists as the Theorem-3 baseline: §3's Remarks observe
// that the specialized F2 protocol is a quadratic improvement
// ((log u, log u) vs (log² u, log² u)); the gkrbench package measures
// exactly that gap.
package gkr

import (
	"errors"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/field"
	"repro/internal/poly"
)

// ErrRejected is returned when any check fails.
var ErrRejected = errors.New("gkr: proof rejected")

// Protocol binds a circuit to a field and a wiring evaluator.
type Protocol struct {
	F      field.Field
	C      *circuit.Circuit
	Wiring circuit.Wiring

	// Workers sets the prover-side fork–join width (parallel.Workers
	// semantics: 0 serial, <0 NumCPU). Transcripts are bit-identical for
	// every value — the same invariant the fixed query kinds enforce.
	Workers int
}

// New validates the circuit and returns the protocol. A nil wiring
// selects the generic gate-iterating evaluator.
func New(f field.Field, c *circuit.Circuit, w circuit.Wiring) (*Protocol, error) {
	if !f.Valid() {
		return nil, errors.New("gkr: invalid field")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for i := 0; i <= len(c.Layers); i++ {
		if i > 0 && c.VarCount(i) == 0 {
			return nil, fmt.Errorf("gkr: layer %d has a single gate below the output; widen the circuit", i)
		}
	}
	if w == nil {
		w = circuit.GateWiring{C: c}
	}
	return &Protocol{F: f, C: c, Wiring: w}, nil
}

// Stats counts the conversation cost.
type Stats struct {
	Rounds    int // prover messages
	CommWords int // both directions
}

// ---------------------------------------------------------------------
// Verifier

// Verifier pre-samples every challenge, derives the final input point,
// and streams the input's multilinear extension at it.
type Verifier struct {
	proto *Protocol
	zs    [][]field.Elem // z_i for layers 0..L (zs[L] is the input point)
	xs    [][]field.Elem // sum-check challenges, x half, per layer
	ys    [][]field.Elem // y half
	ts    []field.Elem   // line parameters t*
	ev3   *poly.ConsecutiveEvaluator

	// Streaming input evaluation at zs[L].
	inVal field.Elem
	inN   int

	// Conversation state.
	layer   int
	scRound int
	claim   field.Elem
	output  field.Elem
	stats   Stats
	done    bool
	started bool
}

// NewVerifier samples all randomness and returns a verifier ready to
// observe the input stream.
func (p *Protocol) NewVerifier(rng field.RNG) (*Verifier, error) {
	f := p.F
	numLayers := len(p.C.Layers)
	v := &Verifier{proto: p}
	v.zs = make([][]field.Elem, numLayers+1)
	v.zs[0] = f.RandVec(rng, p.C.VarCount(0))
	v.xs = make([][]field.Elem, numLayers)
	v.ys = make([][]field.Elem, numLayers)
	v.ts = make([]field.Elem, numLayers)
	for i := 0; i < numLayers; i++ {
		k := p.C.VarCount(i + 1)
		v.xs[i] = f.RandVec(rng, k)
		v.ys[i] = f.RandVec(rng, k)
		v.ts[i] = f.Rand(rng)
		// z_{i+1} = x* + t*(y* − x*): a function of the coins alone, which
		// is what lets a streaming verifier know the input point up front.
		z := make([]field.Elem, k)
		for j := 0; j < k; j++ {
			z[j] = f.Add(v.xs[i][j], f.Mul(v.ts[i], f.Sub(v.ys[i][j], v.xs[i][j])))
		}
		v.zs[i+1] = z
	}
	ev3, err := poly.NewConsecutiveEvaluator(f, 3)
	if err != nil {
		return nil, err
	}
	v.ev3 = ev3
	return v, nil
}

// Observe folds one input stream update (index, delta) into the input
// MLE evaluation at the pre-derived point, O(log u) per update.
func (v *Verifier) Observe(index uint64, delta int64) error {
	if index >= uint64(v.proto.C.InputSize) {
		return fmt.Errorf("gkr: input index %d outside [0,%d)", index, v.proto.C.InputSize)
	}
	f := v.proto.F
	point := v.zs[len(v.proto.C.Layers)]
	w := f.FromInt64(delta)
	for _, zj := range point {
		if index&1 == 1 {
			w = f.Mul(w, zj)
		} else {
			w = f.Mul(w, f.Sub(1, zj))
		}
		index >>= 1
	}
	v.inVal = f.Add(v.inVal, w)
	v.inN++
	return nil
}

// ReceiveOutputs consumes the claimed output vector: the initial claim is
// its multilinear extension at z_0.
func (v *Verifier) ReceiveOutputs(outs []field.Elem) error {
	if v.started {
		return errors.New("gkr: outputs already received")
	}
	want := len(v.proto.C.Layers[0].Gates)
	if len(outs) != want {
		return fmt.Errorf("%w: %d outputs, want %d", ErrRejected, len(outs), want)
	}
	f := v.proto.F
	for _, o := range outs {
		if uint64(o) >= f.Modulus() {
			return fmt.Errorf("%w: non-canonical output", ErrRejected)
		}
	}
	v.output = outs[0]
	v.claim = foldAt(f, outs, v.zs[0])
	v.started = true
	v.stats.Rounds++
	v.stats.CommWords += len(outs)
	return nil
}

// foldAt evaluates the multilinear extension of table at point.
func foldAt(f field.Field, table []field.Elem, point []field.Elem) field.Elem {
	cur := append([]field.Elem(nil), table...)
	for _, r := range point {
		next := cur[:len(cur)/2]
		for w := range next {
			a, b := cur[2*w], cur[2*w+1]
			next[w] = f.Add(a, f.Mul(r, f.Sub(b, a)))
		}
		cur = next
	}
	return cur[0]
}

// ReceiveSumcheck consumes one 3-evaluation sum-check message and returns
// the challenge to reveal.
func (v *Verifier) ReceiveSumcheck(evals []field.Elem) (field.Elem, error) {
	if !v.started || v.done {
		return 0, errors.New("gkr: not mid-conversation")
	}
	f := v.proto.F
	if len(evals) != 3 {
		return 0, fmt.Errorf("%w: sum-check message has %d evaluations, want 3", ErrRejected, len(evals))
	}
	for _, e := range evals {
		if uint64(e) >= f.Modulus() {
			return 0, fmt.Errorf("%w: non-canonical element", ErrRejected)
		}
	}
	if got := f.Add(evals[0], evals[1]); got != v.claim {
		return 0, fmt.Errorf("%w: layer %d round %d sum %d ≠ claim %d", ErrRejected, v.layer, v.scRound, got, v.claim)
	}
	k := v.proto.C.VarCount(v.layer + 1)
	var r field.Elem
	if v.scRound < k {
		r = v.xs[v.layer][v.scRound]
	} else {
		r = v.ys[v.layer][v.scRound-k]
	}
	next, err := v.ev3.Eval(evals, r)
	if err != nil {
		return 0, err
	}
	v.claim = next
	v.scRound++
	v.stats.Rounds++
	v.stats.CommWords += len(evals) + 1
	return r, nil
}

// SumcheckRoundsLeft reports how many sum-check messages remain in the
// current layer.
func (v *Verifier) SumcheckRoundsLeft() int {
	return 2*v.proto.C.VarCount(v.layer+1) - v.scRound
}

// ReceiveLine consumes the line restriction q(0..k) for the current
// layer, performs the layer's final check, and returns t* for the prover
// to derive the next claim point. After the last layer it performs the
// input check against the streamed evaluation.
func (v *Verifier) ReceiveLine(evals []field.Elem) (field.Elem, error) {
	if !v.started || v.done {
		return 0, errors.New("gkr: not mid-conversation")
	}
	f := v.proto.F
	k := v.proto.C.VarCount(v.layer + 1)
	if v.scRound != 2*k {
		return 0, fmt.Errorf("gkr: line before sum-check finished (%d/%d)", v.scRound, 2*k)
	}
	if len(evals) != k+1 {
		return 0, fmt.Errorf("%w: line has %d evaluations, want %d", ErrRejected, len(evals), k+1)
	}
	for _, e := range evals {
		if uint64(e) >= f.Modulus() {
			return 0, fmt.Errorf("%w: non-canonical element", ErrRejected)
		}
	}
	q0, q1 := evals[0], evals[1]
	addV, mulV := v.proto.Wiring.Eval(f, v.layer, v.zs[v.layer], v.xs[v.layer], v.ys[v.layer])
	want := f.Add(f.Mul(addV, f.Add(q0, q1)), f.Mul(mulV, f.Mul(q0, q1)))
	if want != v.claim {
		return 0, fmt.Errorf("%w: layer %d final check %d ≠ %d", ErrRejected, v.layer, want, v.claim)
	}
	evk, err := poly.NewConsecutiveEvaluator(f, k+1)
	if err != nil {
		return 0, err
	}
	next, err := evk.Eval(evals, v.ts[v.layer])
	if err != nil {
		return 0, err
	}
	v.claim = next
	t := v.ts[v.layer]
	v.layer++
	v.scRound = 0
	v.stats.Rounds++
	v.stats.CommWords += len(evals) + 1
	if v.layer == len(v.proto.C.Layers) {
		// Input check: the claim must equal the streamed input MLE.
		if v.claim != v.inVal {
			return 0, fmt.Errorf("%w: input claim %d ≠ streamed evaluation %d", ErrRejected, v.claim, v.inVal)
		}
		v.done = true
	}
	return t, nil
}

// Done reports whether the verification finished successfully.
func (v *Verifier) Done() bool { return v.done }

// Output returns the verified circuit output (first output gate).
func (v *Verifier) Output() (field.Elem, error) {
	if !v.done {
		return 0, errors.New("gkr: output unavailable before acceptance")
	}
	return v.output, nil
}

// Stats returns the conversation accounting.
func (v *Verifier) Stats() Stats { return v.stats }

// SpaceWords reports the verifier's working memory: the pre-sampled
// challenges (Σ (3k_i + 1)) plus O(1) running values. This is the
// Θ(log² u) footprint the paper's §3 Remarks contrast with the native F2
// protocol's Θ(log u).
func (v *Verifier) SpaceWords() int {
	n := len(v.zs[0]) + 3
	for i := range v.xs {
		n += 2*len(v.xs[i]) + 1
	}
	return n
}

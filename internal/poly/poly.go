// Package poly implements dense univariate polynomials over a prime field.
//
// The sum-check protocols of Cormode–Thaler–Yi exchange low-degree
// univariate polynomials g_j each round; the frequency-based protocols of
// §6.2 additionally interpolate a polynomial h̃ of degree ~√u through the
// statistic h. This package provides the evaluation and interpolation
// machinery for both, including O(n) evaluation of an interpolant through
// consecutive integer points (the form every protocol message takes).
package poly

import (
	"fmt"

	"repro/internal/field"
)

// Poly is a polynomial in coefficient form: Poly[i] is the coefficient of
// x^i. A nil or empty Poly is the zero polynomial. Coefficients are
// elements of the field supplied to each operation; mixing fields is a
// programming error.
type Poly []field.Elem

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Trim removes high zero coefficients, returning a canonical slice.
func (p Poly) Trim() Poly {
	return p[:p.Degree()+1]
}

// Eval evaluates p at x by Horner's rule.
func (p Poly) Eval(f field.Field, x field.Elem) field.Elem {
	var acc field.Elem
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), p[i])
	}
	return acc
}

// Add returns p + q.
func Add(f field.Field, p, q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	for i := range out {
		var a, b field.Elem
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		out[i] = f.Add(a, b)
	}
	return out
}

// Sub returns p - q.
func Sub(f field.Field, p, q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	for i := range out {
		var a, b field.Elem
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		out[i] = f.Sub(a, b)
	}
	return out
}

// Mul returns p·q by schoolbook multiplication. The degrees in this
// repository are tiny (≤ √u), so no FFT is needed.
func Mul(f field.Field, p, q Poly) Poly {
	if p.Degree() < 0 || q.Degree() < 0 {
		return nil
	}
	out := make(Poly, p.Degree()+q.Degree()+2)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			if b == 0 {
				continue
			}
			out[i+j] = f.Add(out[i+j], f.Mul(a, b))
		}
	}
	return out.Trim()
}

// Scale returns c·p.
func Scale(f field.Field, p Poly, c field.Elem) Poly {
	out := make(Poly, len(p))
	for i, a := range p {
		out[i] = f.Mul(a, c)
	}
	return out
}

// Interpolate returns the unique polynomial of degree < len(xs) passing
// through the points (xs[i], ys[i]). The xs must be distinct. It runs in
// O(n²) time: the master product Π(x - xs[i]) is computed once and each
// Lagrange basis polynomial is recovered by synthetic division.
func Interpolate(f field.Field, xs, ys []field.Elem) (Poly, error) {
	n := len(xs)
	if n != len(ys) {
		return nil, fmt.Errorf("poly: interpolate: %d xs but %d ys", n, len(ys))
	}
	if n == 0 {
		return nil, nil
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if xs[i] == xs[j] {
				return nil, fmt.Errorf("poly: interpolate: duplicate x %d", xs[i])
			}
		}
	}
	// master = Π_i (x - xs[i]), degree n.
	master := Poly{1}
	for _, x := range xs {
		master = Mul(f, master, Poly{f.Neg(x), 1})
	}

	out := make(Poly, n)
	quotient := make(Poly, n)
	for i := 0; i < n; i++ {
		// basis_i = master / (x - xs[i]), by synthetic division.
		carry := field.Elem(0)
		for k := n; k >= 1; k-- {
			quotient[k-1] = f.Add(master[k], f.Mul(carry, xs[i]))
			carry = quotient[k-1]
		}
		// denominator = Π_{j≠i} (xs[i] - xs[j]) = basis_i(xs[i]).
		denom := Poly(quotient[:n]).Eval(f, xs[i])
		inv := f.Inv(denom)
		c := f.Mul(ys[i], inv)
		for k := 0; k < n; k++ {
			out[k] = f.Add(out[k], f.Mul(quotient[k], c))
		}
	}
	return out.Trim(), nil
}

// EvalInterpolant evaluates, at point r, the unique polynomial of degree
// < len(xs) through the points (xs[i], ys[i]), without materializing
// coefficients. O(n²) field operations.
func EvalInterpolant(f field.Field, xs, ys []field.Elem, r field.Elem) (field.Elem, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("poly: eval interpolant: %d xs but %d ys", len(xs), len(ys))
	}
	var acc field.Elem
	for i := range xs {
		num, den := field.Elem(1), field.Elem(1)
		for j := range xs {
			if j == i {
				continue
			}
			num = f.Mul(num, f.Sub(r, xs[j]))
			den = f.Mul(den, f.Sub(xs[i], xs[j]))
		}
		if den == 0 {
			return 0, fmt.Errorf("poly: eval interpolant: duplicate x %d", xs[i])
		}
		acc = f.Add(acc, f.Mul(ys[i], f.Mul(num, f.Inv(den))))
	}
	return acc, nil
}

// ConsecutiveEvaluator evaluates interpolants through the consecutive
// integer points 0, 1, …, n-1 at arbitrary field points in O(n) per call
// (after O(n) setup) using barycentric weights. This is the verifier's hot
// path: every sum-check message arrives as evaluations g_j(0..deg) and
// must be re-evaluated at the random challenge r_j.
type ConsecutiveEvaluator struct {
	f field.Field
	// w[i] = 1 / (i! · (n-1-i)! · (-1)^(n-1-i))
	w []field.Elem
}

// NewConsecutiveEvaluator prepares barycentric weights for interpolation
// through x = 0..n-1. n must satisfy n ≤ p so the points are distinct.
func NewConsecutiveEvaluator(f field.Field, n int) (*ConsecutiveEvaluator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("poly: consecutive evaluator needs n > 0, got %d", n)
	}
	if uint64(n) > f.Modulus() {
		return nil, fmt.Errorf("poly: n=%d exceeds field size %d", n, f.Modulus())
	}
	// denom_i = i! · (n-1-i)! with sign (-1)^(n-1-i).
	denoms := make([]field.Elem, n)
	fact := make([]field.Elem, n)
	fact[0] = 1
	for i := 1; i < n; i++ {
		fact[i] = f.Mul(fact[i-1], f.Reduce(uint64(i)))
	}
	for i := 0; i < n; i++ {
		d := f.Mul(fact[i], fact[n-1-i])
		if (n-1-i)%2 == 1 {
			d = f.Neg(d)
		}
		denoms[i] = d
	}
	f.InvSlice(denoms)
	return &ConsecutiveEvaluator{f: f, w: denoms}, nil
}

// N returns the number of interpolation points.
func (e *ConsecutiveEvaluator) N() int { return len(e.w) }

// Eval returns the value at r of the unique degree-<n polynomial with
// g(i) = ys[i] for i = 0..n-1.
func (e *ConsecutiveEvaluator) Eval(ys []field.Elem, r field.Elem) (field.Elem, error) {
	n := len(e.w)
	if len(ys) != n {
		return 0, fmt.Errorf("poly: consecutive eval: got %d values, want %d", len(ys), n)
	}
	f := e.f
	// If r is one of the nodes, return directly (the barycentric formula
	// would divide by zero).
	if uint64(r) < uint64(n) {
		return ys[r], nil
	}
	// prefix[i] = Π_{j<i} (r - j), suffix[i] = Π_{j>i} (r - j).
	prefix := make([]field.Elem, n)
	suffix := make([]field.Elem, n)
	acc := field.Elem(1)
	for i := 0; i < n; i++ {
		prefix[i] = acc
		acc = f.Mul(acc, f.Sub(r, f.Reduce(uint64(i))))
	}
	acc = 1
	for i := n - 1; i >= 0; i-- {
		suffix[i] = acc
		acc = f.Mul(acc, f.Sub(r, f.Reduce(uint64(i))))
	}
	var out field.Elem
	for i := 0; i < n; i++ {
		term := f.Mul(ys[i], e.w[i])
		term = f.Mul(term, f.Mul(prefix[i], suffix[i]))
		out = f.Add(out, term)
	}
	return out, nil
}

// EvalOracleInterpolant evaluates, at x, the unique polynomial h̃ of
// degree < n with h̃(i) = h(i) for i = 0..n-1, using only oracle access to
// h: O(n) field operations plus O(n) inversions and O(1) working space.
// This is exactly how the §6.2 streaming verifier computes h̃(f̃_a(r))
// "without explicitly storing h̃": n there is ~√u, far too large to hold.
//
// It uses the ratio recurrence χ_i(x) = -χ_{i-1}(x)·(x-i+1)(n-i) /
// ((x-i)·i) between consecutive Lagrange basis values.
func EvalOracleInterpolant(f field.Field, n int, h func(uint64) field.Elem, x field.Elem) (field.Elem, error) {
	if n <= 0 {
		return 0, fmt.Errorf("poly: oracle interpolant needs n > 0, got %d", n)
	}
	if uint64(n) > f.Modulus() {
		return 0, fmt.Errorf("poly: n=%d exceeds field size %d", n, f.Modulus())
	}
	if uint64(x) < uint64(n) {
		return h(uint64(x)), nil
	}
	// χ_0(x) = Π_{j=1..n-1}(x-j) / ((-1)^{n-1}·(n-1)!).
	num := field.Elem(1)
	den := field.Elem(1)
	for j := 1; j < n; j++ {
		num = f.Mul(num, f.Sub(x, f.Reduce(uint64(j))))
		den = f.Mul(den, f.Reduce(uint64(j)))
	}
	if (n-1)%2 == 1 {
		den = f.Neg(den)
	}
	chi := f.Mul(num, f.Inv(den))
	acc := f.Mul(h(0), chi)
	for i := 1; i < n; i++ {
		fi := f.Reduce(uint64(i))
		numer := f.Mul(f.Sub(x, f.Reduce(uint64(i-1))), f.Reduce(uint64(n-i)))
		denom := f.Mul(f.Sub(x, fi), fi)
		chi = f.Neg(f.Mul(chi, f.Mul(numer, f.Inv(denom))))
		acc = f.Add(acc, f.Mul(h(uint64(i)), chi))
	}
	return acc, nil
}

// SumPrefix returns ys[0] + … + ys[ell-1], the quantity
// Σ_{x∈[ell]} g(x) checked by the sum-check verifier. It requires
// ell ≤ len(ys), which always holds because deg g ≥ ell-1.
func SumPrefix(f field.Field, ys []field.Elem, ell int) (field.Elem, error) {
	if ell > len(ys) || ell < 0 {
		return 0, fmt.Errorf("poly: sum prefix: ell=%d out of range for %d values", ell, len(ys))
	}
	var s field.Elem
	for _, y := range ys[:ell] {
		s = f.Add(s, y)
	}
	return s, nil
}

package poly

import (
	"testing"

	"repro/internal/field"
)

// TestEvalOracleInterpolant cross-checks the O(1)-space oracle evaluation
// against explicit interpolation for several degrees and points.
func TestEvalOracleInterpolant(t *testing.T) {
	rng := field.NewSplitMix64(15)
	for _, n := range []int{1, 2, 3, 8, 33, 100} {
		ys := f61.RandVec(rng, n)
		h := func(i uint64) field.Elem { return ys[i] }
		xs := make([]field.Elem, n)
		for i := range xs {
			xs[i] = f61.Reduce(uint64(i))
		}
		ref, err := Interpolate(f61, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		// At the nodes.
		for i := 0; i < n; i++ {
			got, err := EvalOracleInterpolant(f61, n, h, field.Elem(i))
			if err != nil || got != ys[i] {
				t.Fatalf("n=%d node %d: got %d, %v; want %d", n, i, got, err, ys[i])
			}
		}
		// At random points.
		for k := 0; k < 20; k++ {
			x := f61.Rand(rng)
			got, err := EvalOracleInterpolant(f61, n, h, x)
			if err != nil {
				t.Fatal(err)
			}
			if want := ref.Eval(f61, x); got != want {
				t.Fatalf("n=%d at %d: got %d, want %d", n, x, got, want)
			}
		}
	}
	if _, err := EvalOracleInterpolant(f61, 0, nil, 5); err == nil {
		t.Error("n=0 accepted")
	}
	small, err := field.New(17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalOracleInterpolant(small, 18, func(uint64) field.Elem { return 1 }, 3); err == nil {
		t.Error("n > p accepted")
	}
}

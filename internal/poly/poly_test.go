package poly

import (
	"testing"
	"testing/quick"

	"repro/internal/field"
)

var f61 = field.Mersenne()

func elems(vs ...uint64) []field.Elem {
	out := make([]field.Elem, len(vs))
	for i, v := range vs {
		out[i] = f61.Reduce(v)
	}
	return out
}

func TestDegreeAndTrim(t *testing.T) {
	cases := []struct {
		p    Poly
		want int
	}{
		{nil, -1},
		{Poly{}, -1},
		{Poly{0}, -1},
		{Poly{5}, 0},
		{Poly{0, 0, 3}, 2},
		{Poly{1, 2, 0, 0}, 1},
	}
	for _, c := range cases {
		if got := c.p.Degree(); got != c.want {
			t.Errorf("Degree(%v) = %d, want %d", c.p, got, c.want)
		}
		if got := len(c.p.Trim()); got != c.want+1 {
			t.Errorf("len(Trim(%v)) = %d, want %d", c.p, got, c.want+1)
		}
	}
}

func TestEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x^3
	p := Poly(elems(3, 2, 0, 1))
	for _, c := range []struct{ x, want uint64 }{
		{0, 3}, {1, 6}, {2, 15}, {3, 36},
	} {
		if got := p.Eval(f61, field.Elem(c.x)); got != field.Elem(c.want) {
			t.Errorf("p(%d) = %d, want %d", c.x, got, c.want)
		}
	}
	if got := Poly(nil).Eval(f61, 7); got != 0 {
		t.Errorf("zero poly eval = %d", got)
	}
}

func TestArithmetic(t *testing.T) {
	p := Poly(elems(1, 2, 3)) // 1 + 2x + 3x²
	q := Poly(elems(5, 7))    // 5 + 7x
	sum := Add(f61, p, q)
	wantSum := elems(6, 9, 3)
	for i := range wantSum {
		if sum[i] != wantSum[i] {
			t.Fatalf("Add coefficient %d = %d, want %d", i, sum[i], wantSum[i])
		}
	}
	diff := Sub(f61, p, q)
	if diff.Eval(f61, 10) != f61.Sub(p.Eval(f61, 10), q.Eval(f61, 10)) {
		t.Fatal("Sub disagrees with pointwise subtraction")
	}
	prod := Mul(f61, p, q)
	// (1+2x+3x²)(5+7x) = 5 + 17x + 29x² + 21x³
	wantProd := elems(5, 17, 29, 21)
	if len(prod) != len(wantProd) {
		t.Fatalf("Mul length %d, want %d", len(prod), len(wantProd))
	}
	for i := range wantProd {
		if prod[i] != wantProd[i] {
			t.Fatalf("Mul coefficient %d = %d, want %d", i, prod[i], wantProd[i])
		}
	}
	if got := Mul(f61, p, nil); got != nil {
		t.Fatalf("Mul by zero poly = %v, want nil", got)
	}
	scaled := Scale(f61, p, 2)
	if scaled.Eval(f61, 9) != f61.Mul(2, p.Eval(f61, 9)) {
		t.Fatal("Scale disagrees with pointwise scaling")
	}
}

// TestMulEvalHomomorphism: (p·q)(x) = p(x)·q(x) on random polynomials.
func TestMulEvalHomomorphism(t *testing.T) {
	rng := field.NewSplitMix64(11)
	check := func(seed uint64) bool {
		r := field.NewSplitMix64(seed)
		p := Poly(f61.RandVec(r, int(r.Uint64()%6)+1))
		q := Poly(f61.RandVec(r, int(r.Uint64()%6)+1))
		x := f61.Rand(rng)
		return Mul(f61, p, q).Eval(f61, x) == f61.Mul(p.Eval(f61, x), q.Eval(f61, x))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterpolateRoundTrip(t *testing.T) {
	rng := field.NewSplitMix64(12)
	for trial := 0; trial < 50; trial++ {
		n := int(rng.Uint64()%8) + 1
		want := Poly(f61.RandVec(rng, n)).Trim()
		xs := make([]field.Elem, n)
		ys := make([]field.Elem, n)
		for i := range xs {
			xs[i] = f61.Reduce(uint64(i * 3)) // distinct
			ys[i] = want.Eval(f61, xs[i])
		}
		got, err := Interpolate(f61, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		// Compare as functions at fresh points.
		for k := 0; k < 5; k++ {
			x := f61.Rand(rng)
			if got.Eval(f61, x) != want.Eval(f61, x) {
				t.Fatalf("trial %d: interpolant differs at %d", trial, x)
			}
		}
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := Interpolate(f61, elems(1, 1), elems(2, 3)); err == nil {
		t.Error("duplicate xs accepted")
	}
	if _, err := Interpolate(f61, elems(1, 2), elems(2)); err == nil {
		t.Error("mismatched lengths accepted")
	}
	p, err := Interpolate(f61, nil, nil)
	if err != nil || p != nil {
		t.Errorf("empty interpolation = %v, %v", p, err)
	}
}

func TestEvalInterpolantMatchesInterpolate(t *testing.T) {
	rng := field.NewSplitMix64(13)
	for trial := 0; trial < 50; trial++ {
		n := int(rng.Uint64()%7) + 1
		xs := make([]field.Elem, n)
		for i := range xs {
			xs[i] = f61.Reduce(uint64(i*i + 1))
		}
		ys := f61.RandVec(rng, n)
		p, err := Interpolate(f61, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		r := f61.Rand(rng)
		got, err := EvalInterpolant(f61, xs, ys, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != p.Eval(f61, r) {
			t.Fatalf("EvalInterpolant = %d, coefficient form = %d", got, p.Eval(f61, r))
		}
		// At a node it must return the node value.
		got, err = EvalInterpolant(f61, xs, ys, xs[0])
		if err != nil || got != ys[0] {
			t.Fatalf("EvalInterpolant at node = %d, %v; want %d", got, err, ys[0])
		}
	}
}

func TestConsecutiveEvaluator(t *testing.T) {
	rng := field.NewSplitMix64(14)
	for _, n := range []int{1, 2, 3, 5, 9, 33} {
		ev, err := NewConsecutiveEvaluator(f61, n)
		if err != nil {
			t.Fatal(err)
		}
		if ev.N() != n {
			t.Fatalf("N() = %d, want %d", ev.N(), n)
		}
		p := Poly(f61.RandVec(rng, n))
		ys := make([]field.Elem, n)
		for i := range ys {
			ys[i] = p.Eval(f61, f61.Reduce(uint64(i)))
		}
		// At the nodes.
		for i := 0; i < n; i++ {
			got, err := ev.Eval(ys, f61.Reduce(uint64(i)))
			if err != nil || got != ys[i] {
				t.Fatalf("n=%d: Eval at node %d = %d, %v; want %d", n, i, got, err, ys[i])
			}
		}
		// At random points.
		for k := 0; k < 20; k++ {
			r := f61.Rand(rng)
			got, err := ev.Eval(ys, r)
			if err != nil {
				t.Fatal(err)
			}
			if got != p.Eval(f61, r) {
				t.Fatalf("n=%d: Eval(%d) = %d, want %d", n, r, got, p.Eval(f61, r))
			}
		}
	}
}

func TestConsecutiveEvaluatorErrors(t *testing.T) {
	if _, err := NewConsecutiveEvaluator(f61, 0); err == nil {
		t.Error("n=0 accepted")
	}
	small, err := field.New(17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewConsecutiveEvaluator(small, 18); err == nil {
		t.Error("n > p accepted")
	}
	ev, err := NewConsecutiveEvaluator(f61, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval(elems(1, 2), 5); err == nil {
		t.Error("wrong-length ys accepted")
	}
}

// TestConsecutiveEvaluatorSmallField runs the barycentric path in Z_17 to
// catch any assumption that the field is large.
func TestConsecutiveEvaluatorSmallField(t *testing.T) {
	small, err := field.New(17)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewConsecutiveEvaluator(small, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := Poly{3, 1, 4, 1} // over Z_17
	ys := make([]field.Elem, 4)
	for i := range ys {
		ys[i] = p.Eval(small, field.Elem(i))
	}
	for x := uint64(0); x < 17; x++ {
		got, err := ev.Eval(ys, field.Elem(x))
		if err != nil {
			t.Fatal(err)
		}
		if got != p.Eval(small, field.Elem(x)) {
			t.Fatalf("Z_17 eval at %d: got %d want %d", x, got, p.Eval(small, field.Elem(x)))
		}
	}
}

func TestSumPrefix(t *testing.T) {
	ys := elems(1, 2, 3, 4)
	got, err := SumPrefix(f61, ys, 2)
	if err != nil || got != 3 {
		t.Errorf("SumPrefix(..2) = %d, %v; want 3", got, err)
	}
	got, err = SumPrefix(f61, ys, 4)
	if err != nil || got != 10 {
		t.Errorf("SumPrefix(..4) = %d, %v; want 10", got, err)
	}
	if _, err := SumPrefix(f61, ys, 5); err == nil {
		t.Error("out-of-range ell accepted")
	}
	if got, err := SumPrefix(f61, ys, 0); err != nil || got != 0 {
		t.Errorf("SumPrefix(..0) = %d, %v; want 0", got, err)
	}
}

func BenchmarkConsecutiveEval4(b *testing.B) {
	ev, err := NewConsecutiveEvaluator(f61, 4)
	if err != nil {
		b.Fatal(err)
	}
	ys := elems(3, 1, 4, 1)
	r := field.Elem(998877)
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(ys, r); err != nil {
			b.Fatal(err)
		}
	}
}

package lde

import (
	"testing"

	"repro/internal/field"
)

// TestChiTablesMatchesAllChi: the batched builder must agree with the
// one-point builder at nodes and non-nodes alike.
func TestChiTablesMatchesAllChi(t *testing.T) {
	f := field.Mersenne()
	for _, ell := range []int{2, 3, 5, 16} {
		w := BasisWeights(f, ell)
		xs := []field.Elem{0, 1, field.Elem(ell - 1), field.Elem(ell), 12345, f.Reduce(^uint64(0))}
		tables := ChiTables(f, w, xs)
		if len(tables) != len(xs) {
			t.Fatalf("ell=%d: %d tables for %d points", ell, len(tables), len(xs))
		}
		for i, x := range xs {
			want := AllChi(f, w, x)
			for k := range want {
				if tables[i][k] != want[k] {
					t.Fatalf("ell=%d x=%d: ChiTables[%d][%d] = %d, want %d", ell, x, i, k, tables[i][k], want[k])
				}
			}
		}
		// Rows must be independent storage: writing one must not leak.
		if len(tables) >= 2 {
			tables[0][0] = 99
			want := AllChi(f, w, xs[1])
			if tables[1][0] != want[0] {
				t.Fatalf("ell=%d: ChiTables rows alias each other", ell)
			}
		}
	}
}

// TestEvalDenseWorkersMatchesSerial: every worker count must produce the
// bit-identical evaluation, for ℓ=2 and a generic branching factor.
func TestEvalDenseWorkersMatchesSerial(t *testing.T) {
	f := field.Mersenne()
	rng := field.NewSplitMix64(77)
	for _, cfg := range []struct{ ell, d int }{{2, 12}, {4, 6}, {3, 7}} {
		params, err := NewParams(cfg.ell, cfg.d)
		if err != nil {
			t.Fatal(err)
		}
		pt := RandomPoint(f, params, rng)
		table := f.RandVec(rng, int(params.U))
		want, err := EvalDense(pt, table)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 16, -1} {
			got, err := EvalDenseWorkers(pt, table, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("ell=%d d=%d workers=%d: EvalDenseWorkers = %d, want %d", cfg.ell, cfg.d, workers, got, want)
			}
		}
	}
}

// TestBulkUpdateMatchesStreaming: BulkUpdate must agree bit-for-bit with
// element-wise Update, and must be all-or-nothing on bad input.
func TestBulkUpdateMatchesStreaming(t *testing.T) {
	f := field.Mersenne()
	params, err := NewParams(2, 13)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(5)
	pt := RandomPoint(f, params, rng)

	const n = 10000
	idx := make([]uint64, n)
	deltas := make([]int64, n)
	for i := range idx {
		idx[i] = rng.Uint64() % params.U
		deltas[i] = int64(rng.Uint64()%2001) - 1000
	}

	serial := NewEvaluator(pt)
	for i := range idx {
		if err := serial.Update(idx[i], deltas[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 3, 8, -1} {
		bulk := NewEvaluator(pt)
		if err := bulk.BulkUpdate(idx, deltas, workers); err != nil {
			t.Fatal(err)
		}
		if bulk.Value() != serial.Value() {
			t.Fatalf("workers=%d: BulkUpdate = %d, want %d", workers, bulk.Value(), serial.Value())
		}
		if bulk.Updates() != serial.Updates() {
			t.Fatalf("workers=%d: BulkUpdate counted %d updates, want %d", workers, bulk.Updates(), serial.Updates())
		}
	}

	// Out-of-range index: error, no partial application.
	bad := NewEvaluator(pt)
	if err := bad.BulkUpdate([]uint64{0, params.U}, []int64{1, 1}, 4); err == nil {
		t.Fatal("out-of-range bulk update accepted")
	}
	if bad.Value() != 0 || bad.Updates() != 0 {
		t.Fatal("failed bulk update partially applied")
	}
	if err := bad.BulkUpdate([]uint64{0}, []int64{1, 2}, 4); err == nil {
		t.Fatal("mismatched bulk update lengths accepted")
	}
}

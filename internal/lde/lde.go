// Package lde implements low-degree extensions of streamed vectors.
//
// Given a vector a of length u = ℓ^d, its low-degree extension (§2 of
// Cormode–Thaler–Yi) is the unique d-variate polynomial f_a over Z_p of
// degree < ℓ in each variable with f_a(v) = a_v for every v ∈ [ℓ]^d
// (indices are mapped to digit vectors in base ℓ, least-significant digit
// first). The central observation of the paper (Theorem 1) is that for a
// fixed point r ∈ [p]^d, f_a(r) is a *linear* function of a, so a verifier
// can maintain it in O(d) words over a stream of (i, δ) updates:
//
//	f_a(r) ← f_a(r) + δ·χ_v(i)(r).
//
// This package provides that streaming evaluator, the Lagrange basis
// χ machinery, dense evaluation (for provers and tests), and the
// O(log² u) evaluation of range-indicator extensions used by RANGE-SUM.
package lde

import (
	"fmt"
	"math/bits"

	"repro/internal/field"
	"repro/internal/parallel"
)

// Params fixes the (ℓ, d) decomposition of a universe: u = ℓ^d.
type Params struct {
	Ell int    // branching factor ℓ ≥ 2
	D   int    // number of dimensions d ≥ 1
	U   uint64 // ℓ^d
}

// NewParams validates and returns an (ℓ, d) parameterization.
func NewParams(ell, d int) (Params, error) {
	if ell < 2 {
		return Params{}, fmt.Errorf("lde: branching factor ℓ=%d < 2", ell)
	}
	if d < 1 {
		return Params{}, fmt.Errorf("lde: dimensions d=%d < 1", d)
	}
	u := uint64(1)
	for i := 0; i < d; i++ {
		hi, lo := bits.Mul64(u, uint64(ell))
		if hi != 0 || lo >= 1<<62 {
			return Params{}, fmt.Errorf("lde: universe ℓ^d = %d^%d overflows supported range", ell, d)
		}
		u = lo
	}
	return Params{Ell: ell, D: d, U: u}, nil
}

// ParamsForUniverse returns the smallest d with ℓ^d ≥ u. The paper's
// default, and the most economical tradeoff (§3.1), is ℓ=2 with
// d = ⌈log2 u⌉.
func ParamsForUniverse(u uint64, ell int) (Params, error) {
	if u == 0 {
		return Params{}, fmt.Errorf("lde: empty universe")
	}
	if ell < 2 {
		return Params{}, fmt.Errorf("lde: branching factor ℓ=%d < 2", ell)
	}
	d := 0
	cap := uint64(1)
	for cap < u {
		hi, lo := bits.Mul64(cap, uint64(ell))
		if hi != 0 || lo >= 1<<62 {
			return Params{}, fmt.Errorf("lde: universe %d too large for ℓ=%d", u, ell)
		}
		cap = lo
		d++
	}
	if d == 0 {
		d = 1
		cap = uint64(ell)
	}
	return Params{Ell: ell, D: d, U: cap}, nil
}

// Digits writes the base-ℓ digits of i (least significant first) into buf,
// which must have length ≥ d, and returns buf[:d].
func (p Params) Digits(i uint64, buf []int) []int {
	ell := uint64(p.Ell)
	for j := 0; j < p.D; j++ {
		buf[j] = int(i % ell)
		i /= ell
	}
	return buf[:p.D]
}

// Index is the inverse of Digits.
func (p Params) Index(digits []int) uint64 {
	var i uint64
	for j := p.D - 1; j >= 0; j-- {
		i = i*uint64(p.Ell) + uint64(digits[j])
	}
	return i
}

// BasisWeights returns w_k = 1 / Π_{j≠k}(k-j) for nodes 0..ℓ-1, the
// normalizing constants of the Lagrange basis χ_k over [ℓ].
func BasisWeights(f field.Field, ell int) []field.Elem {
	fact := make([]field.Elem, ell)
	fact[0] = 1
	for i := 1; i < ell; i++ {
		fact[i] = f.Mul(fact[i-1], f.Reduce(uint64(i)))
	}
	w := make([]field.Elem, ell)
	for k := 0; k < ell; k++ {
		d := f.Mul(fact[k], fact[ell-1-k])
		if (ell-1-k)%2 == 1 {
			d = f.Neg(d)
		}
		w[k] = d
	}
	f.InvSlice(w)
	return w
}

// AllChi evaluates every Lagrange basis polynomial χ_0..χ_{ℓ-1} (over
// nodes 0..ℓ-1, Eq. 2 of the paper) at the point x, in O(ℓ) operations
// given precomputed weights.
func AllChi(f field.Field, weights []field.Elem, x field.Elem) []field.Elem {
	out := make([]field.Elem, len(weights))
	chiInto(f, weights, x, out, make([]field.Elem, len(weights)))
	return out
}

// chiInto is AllChi writing into caller-provided storage: out receives the
// ℓ basis values and scratch (also length ℓ) holds the prefix products.
func chiInto(f field.Field, weights []field.Elem, x field.Elem, out, scratch []field.Elem) {
	ell := len(weights)
	// If x is a node, χ is an indicator.
	if uint64(x) < uint64(ell) {
		for k := range out {
			out[k] = 0
		}
		out[x] = 1
		return
	}
	acc := field.Elem(1)
	for k := 0; k < ell; k++ {
		scratch[k] = acc
		acc = f.Mul(acc, f.Sub(x, f.Reduce(uint64(k))))
	}
	suffix := field.Elem(1)
	for k := ell - 1; k >= 0; k-- {
		out[k] = f.Mul(weights[k], f.Mul(scratch[k], suffix))
		suffix = f.Mul(suffix, f.Sub(x, f.Reduce(uint64(k))))
	}
}

// ChiTables is the batched χ-table builder: it evaluates the full basis at
// every point of xs in one call, sharing one backing allocation, the node
// values k = 0..ℓ-1 as field elements, and the difference/prefix scratch
// buffers across the whole batch — per point the build is 3ℓ multiplies
// and ℓ subtractions with no Reduce calls. ChiTables(f, w, xs)[i][k] =
// χ_k(xs[i]). Both the evaluation-point tables of NewPoint and the
// per-evaluation-node tables of the sum-check prover are built this way.
func ChiTables(f field.Field, weights []field.Elem, xs []field.Elem) [][]field.Elem {
	ell := len(weights)
	backing := make([]field.Elem, len(xs)*ell)
	nodes := make([]field.Elem, ell)
	for k := range nodes {
		nodes[k] = f.Reduce(uint64(k))
	}
	diffs := make([]field.Elem, ell)
	scratch := make([]field.Elem, ell)
	out := make([][]field.Elem, len(xs))
	for i, x := range xs {
		row := backing[i*ell : (i+1)*ell : (i+1)*ell]
		if uint64(x) < uint64(ell) {
			// χ at a node is an indicator.
			for k := range row {
				row[k] = 0
			}
			row[x] = 1
		} else {
			for k := range diffs {
				diffs[k] = f.Sub(x, nodes[k])
			}
			acc := field.Elem(1)
			for k := 0; k < ell; k++ {
				scratch[k] = acc
				acc = f.Mul(acc, diffs[k])
			}
			suffix := field.Elem(1)
			for k := ell - 1; k >= 0; k-- {
				row[k] = f.Mul(weights[k], f.Mul(scratch[k], suffix))
				suffix = f.Mul(suffix, diffs[k])
			}
		}
		out[i] = row
	}
	return out
}

// Point is a fixed evaluation point r ∈ [p]^d together with the
// precomputed per-dimension basis values Chi[j][k] = χ_k(r_j). The tables
// occupy O(dℓ) words; the paper's strictly-logarithmic-space accounting
// charges the verifier d+1 words (r and the running value) and notes that
// a space-frugal verifier "must recompute some values multiple times" —
// precomputation is the time-optimal choice and what their implementation
// measures.
type Point struct {
	F      field.Field
	Params Params
	R      []field.Elem
	Chi    [][]field.Elem
}

// NewPoint precomputes basis tables for the point r (length d).
func NewPoint(f field.Field, params Params, r []field.Elem) (*Point, error) {
	if len(r) != params.D {
		return nil, fmt.Errorf("lde: point has %d coordinates, want %d", len(r), params.D)
	}
	w := BasisWeights(f, params.Ell)
	chi := ChiTables(f, w, r)
	return &Point{F: f, Params: params, R: append([]field.Elem(nil), r...), Chi: chi}, nil
}

// RandomPoint samples r uniformly from [p]^d and precomputes its tables.
// The verifier does this once, before observing the stream.
func RandomPoint(f field.Field, params Params, rng field.RNG) *Point {
	r := f.RandVec(rng, params.D)
	pt, err := NewPoint(f, params, r)
	if err != nil {
		// Unreachable: the vector has exactly d coordinates.
		panic(err)
	}
	return pt
}

// ChiOfIndex returns χ_{v(i)}(r) = Π_j χ_{digit_j(i)}(r_j), the weight an
// update to index i contributes to f_a(r).
func (pt *Point) ChiOfIndex(i uint64) field.Elem {
	ell := uint64(pt.Params.Ell)
	out := field.Elem(1)
	for j := 0; j < pt.Params.D; j++ {
		out = pt.F.Mul(out, pt.Chi[j][i%ell])
		i /= ell
	}
	return out
}

// Evaluator maintains f_a(r) over a stream of updates (Theorem 1). The
// zero value is unusable; construct with NewEvaluator.
type Evaluator struct {
	pt  *Point
	acc field.Elem
	n   uint64 // updates processed
}

// NewEvaluator returns a streaming evaluator anchored at pt.
func NewEvaluator(pt *Point) *Evaluator {
	return &Evaluator{pt: pt}
}

// Update folds one stream element into the running evaluation:
// f_a(r) += δ·χ_v(i)(r). Takes O(dℓ) field operations (O(log u) for ℓ=2).
func (e *Evaluator) Update(i uint64, delta int64) error {
	if i >= e.pt.Params.U {
		return fmt.Errorf("lde: index %d outside universe [0,%d)", i, e.pt.Params.U)
	}
	d := e.pt.F.FromInt64(delta)
	e.acc = e.pt.F.Add(e.acc, e.pt.F.Mul(d, e.pt.ChiOfIndex(i)))
	e.n++
	return nil
}

// BulkUpdate folds a batch of stream elements into the running evaluation
// using a worker pool: each worker accumulates δ·χ_v(i)(r) over a
// contiguous block and the block sums are folded in block order. Because
// field addition is exact, the result is bit-identical to feeding the same
// batch through Update one element at a time, for any worker count
// (workers ≤ 0 follows the parallel.Workers convention). Either the whole
// batch is applied or, when any index is out of range, none of it.
func (e *Evaluator) BulkUpdate(idx []uint64, deltas []int64, workers int) error {
	if len(idx) != len(deltas) {
		return fmt.Errorf("lde: bulk update has %d indices but %d deltas", len(idx), len(deltas))
	}
	u := e.pt.Params.U
	for _, i := range idx {
		if i >= u {
			return fmt.Errorf("lde: index %d outside universe [0,%d)", i, u)
		}
	}
	nw := parallel.Workers(workers)
	partials := make([]field.Elem, parallel.Chunks(nw, len(idx)))
	f := e.pt.F
	parallel.For(nw, len(idx), func(chunk, lo, hi int) {
		var acc field.Elem
		for k := lo; k < hi; k++ {
			d := f.FromInt64(deltas[k])
			acc = f.Add(acc, f.Mul(d, e.pt.ChiOfIndex(idx[k])))
		}
		partials[chunk] = acc
	})
	e.acc = f.Add(e.acc, f.SumSlice(partials))
	e.n += uint64(len(idx))
	return nil
}

// Value returns the current f_a(r).
func (e *Evaluator) Value() field.Elem { return e.acc }

// Updates returns how many stream elements have been folded in.
func (e *Evaluator) Updates() uint64 { return e.n }

// Point returns the evaluation point the evaluator is anchored at.
func (e *Evaluator) Point() *Point { return e.pt }

// SpaceWords reports the verifier space this evaluator accounts for in
// the paper's units: the d coordinates of r plus the running value.
func (e *Evaluator) SpaceWords() int { return e.pt.Params.D + 1 }

// EvalDense evaluates f_a(r) from an explicit table of all u entries by
// folding one dimension at a time: O(u) field operations total. This is
// the prover-side (and test oracle) counterpart of the streaming
// evaluator.
func EvalDense(pt *Point, table []field.Elem) (field.Elem, error) {
	return EvalDenseWorkers(pt, table, 1)
}

// EvalDenseWorkers is EvalDense with the fold of each dimension fanned out
// across a worker pool (workers ≤ 0 follows the parallel.Workers
// convention). Each worker folds a contiguous block of the output table,
// so the result is bit-identical to the serial evaluation for every worker
// count — field arithmetic is exact and blocks are disjoint.
func EvalDenseWorkers(pt *Point, table []field.Elem, workers int) (field.Elem, error) {
	params := pt.Params
	if uint64(len(table)) != params.U {
		return 0, fmt.Errorf("lde: table has %d entries, want %d", len(table), params.U)
	}
	nw := parallel.Workers(workers)
	ell := params.Ell
	f := pt.F
	if ell == 2 {
		return evalDenseBlocked(pt, table, nw), nil
	}
	cur := append([]field.Elem(nil), table...)
	scratch := make([]field.Elem, len(cur)/ell)
	for j := 0; j < params.D; j++ {
		size := len(cur) / ell
		next := scratch[:size]
		chi := pt.Chi[j]
		// Each index costs ℓ field ops; scale the grain so large-ℓ
		// decompositions with few indices still fan out.
		grain := parallel.MinGrain / ell
		if grain < 1 {
			grain = 1
		}
		parallel.ForGrain(nw, size, grain, func(_, lo, hi int) {
			for w := lo; w < hi; w++ {
				next[w] = f.DotSlices(chi, cur[w*ell:(w+1)*ell])
			}
		})
		// Ping-pong the buffers; cur always has capacity ≥ size/ell.
		cur, scratch = next, cur
	}
	return cur[0], nil
}

// evalDenseLg is the log2 of the cache block used by the ℓ=2 dense
// evaluator: 2^12 elements = 32 KiB, sized to stay resident in L1d while
// a block is folded all the way down.
const evalDenseLg = 12

// evalDenseBlocked is the ℓ=2 dense evaluator. Rather than streaming the
// whole table through memory once per dimension (d passes), it folds up
// to evalDenseLg dimensions per pass: each 2^b-element block collapses to
// a single element entirely in cache, so the full table is read from
// memory only ⌈d/b⌉ times. Every output element is the same expression
// the one-dimension-at-a-time fold computes (FoldPairs over the same
// pairs with the same challenges, merely scheduled block-first), so the
// result is bit-identical for every worker count and block size.
func evalDenseBlocked(pt *Point, table []field.Elem, nw int) field.Elem {
	f := pt.F
	cur := table // read-only view; first pass writes to a fresh slice
	j := 0
	for j < pt.Params.D {
		b := pt.Params.D - j
		if b > evalDenseLg {
			b = evalDenseLg
		}
		size := len(cur) >> uint(b)
		next := make([]field.Elem, size)
		rs := pt.R[j : j+b]
		// One output element costs 2^b fold ops; scale the grain down so
		// the pass still fans out when few blocks remain.
		grain := parallel.MinGrain >> uint(b)
		if grain < 1 {
			grain = 1
		}
		parallel.ForGrain(nw, size, grain, func(_, lo, hi int) {
			buf := make([]field.Elem, 1<<uint(b-1))
			for g := lo; g < hi; g++ {
				blk := cur[g<<uint(b) : (g+1)<<uint(b)]
				half := len(blk) / 2
				f.FoldPairs(buf[:half], blk, rs[0])
				for _, r := range rs[1:] {
					half /= 2
					// In-place: dst aliases the front half of src, which
					// FoldPairs supports.
					f.FoldPairs(buf[:half], buf[:2*half], r)
				}
				next[g] = buf[0]
			}
		})
		cur = next
		j += b
	}
	return cur[0]
}

// EvalRangeIndicator computes f_b(r) where b is the indicator vector of
// the inclusive range [qL, qR] — the verifier-side computation of the
// RANGE-SUM protocol (§3.2). It requires ℓ=2 and runs in O(log² u): the
// range decomposes into O(log u) canonical dyadic intervals, and within
// one interval the free low-order bits sum out to 1 (the paper's telescoped
// product identity), leaving a product of χ values of the fixed high bits.
func EvalRangeIndicator(pt *Point, qL, qR uint64) (field.Elem, error) {
	params := pt.Params
	if params.Ell != 2 {
		return 0, fmt.Errorf("lde: range indicator requires ℓ=2, have ℓ=%d", params.Ell)
	}
	if qL > qR || qR >= params.U {
		return 0, fmt.Errorf("lde: bad range [%d,%d] for universe %d", qL, qR, params.U)
	}
	f := pt.F
	var total field.Elem
	// Walk the implicit segment tree with exclusive upper bound.
	lo, hi := qL, qR+1
	level := 0
	for lo < hi {
		if lo&1 == 1 {
			total = f.Add(total, pt.chiHighBits(lo, level))
			lo++
		}
		if hi&1 == 1 {
			hi--
			total = f.Add(total, pt.chiHighBits(hi, level))
		}
		lo >>= 1
		hi >>= 1
		level++
	}
	return total, nil
}

// chiHighBits returns Π_{j=level..d-1} χ_{bit_{j-level}(idx)}(r_j): the
// contribution of the canonical interval at the given level whose position
// is idx.
func (pt *Point) chiHighBits(idx uint64, level int) field.Elem {
	f := pt.F
	out := field.Elem(1)
	for j := level; j < pt.Params.D; j++ {
		out = f.Mul(out, pt.Chi[j][idx&1])
		idx >>= 1
	}
	return out
}

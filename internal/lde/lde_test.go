package lde

import (
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/stream"
)

var f61 = field.Mersenne()

func TestNewParams(t *testing.T) {
	p, err := NewParams(2, 10)
	if err != nil || p.U != 1024 {
		t.Fatalf("NewParams(2,10) = %+v, %v", p, err)
	}
	p, err = NewParams(3, 4)
	if err != nil || p.U != 81 {
		t.Fatalf("NewParams(3,4) = %+v, %v", p, err)
	}
	for _, bad := range []struct{ ell, d int }{{1, 3}, {2, 0}, {2, 63}, {1 << 31, 2}} {
		if _, err := NewParams(bad.ell, bad.d); err == nil {
			t.Errorf("NewParams(%d,%d) accepted", bad.ell, bad.d)
		}
	}
}

func TestParamsForUniverse(t *testing.T) {
	cases := []struct {
		u    uint64
		ell  int
		d    int
		capU uint64
	}{
		{1024, 2, 10, 1024},
		{1000, 2, 10, 1024},
		{1, 2, 1, 2},
		{2, 2, 1, 2},
		{81, 3, 4, 81},
		{82, 3, 5, 243},
	}
	for _, c := range cases {
		p, err := ParamsForUniverse(c.u, c.ell)
		if err != nil {
			t.Fatalf("ParamsForUniverse(%d,%d): %v", c.u, c.ell, err)
		}
		if p.D != c.d || p.U != c.capU {
			t.Errorf("ParamsForUniverse(%d,%d) = %+v, want d=%d U=%d", c.u, c.ell, p, c.d, c.capU)
		}
	}
	if _, err := ParamsForUniverse(0, 2); err == nil {
		t.Error("u=0 accepted")
	}
}

func TestDigitsIndexRoundTrip(t *testing.T) {
	for _, pr := range []struct{ ell, d int }{{2, 12}, {3, 6}, {10, 4}} {
		p, err := NewParams(pr.ell, pr.d)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]int, p.D)
		rng := field.NewSplitMix64(21)
		for trial := 0; trial < 200; trial++ {
			i := rng.Uint64() % p.U
			digits := p.Digits(i, buf)
			for _, dg := range digits {
				if dg < 0 || dg >= p.Ell {
					t.Fatalf("digit %d out of range for ℓ=%d", dg, p.Ell)
				}
			}
			if back := p.Index(digits); back != i {
				t.Fatalf("(ℓ=%d,d=%d): Index(Digits(%d)) = %d", p.Ell, p.D, i, back)
			}
		}
	}
}

func TestAllChiIndicatorAtNodes(t *testing.T) {
	for _, ell := range []int{2, 3, 5, 8} {
		w := BasisWeights(f61, ell)
		for x := 0; x < ell; x++ {
			chi := AllChi(f61, w, f61.Reduce(uint64(x)))
			for k := 0; k < ell; k++ {
				want := field.Elem(0)
				if k == x {
					want = 1
				}
				if chi[k] != want {
					t.Fatalf("ℓ=%d: χ_%d(%d) = %d, want %d", ell, k, x, chi[k], want)
				}
			}
		}
	}
}

// TestAllChiPartitionOfUnity: Σ_k χ_k(x) interpolates the constant 1, so
// it equals 1 everywhere.
func TestAllChiPartitionOfUnity(t *testing.T) {
	rng := field.NewSplitMix64(22)
	for _, ell := range []int{2, 3, 7} {
		w := BasisWeights(f61, ell)
		for trial := 0; trial < 50; trial++ {
			x := f61.Rand(rng)
			chi := AllChi(f61, w, x)
			var sum field.Elem
			for _, c := range chi {
				sum = f61.Add(sum, c)
			}
			if sum != 1 {
				t.Fatalf("ℓ=%d: Σχ(%d) = %d, want 1", ell, x, sum)
			}
		}
	}
}

// TestAllChiMatchesMultilinear checks the ℓ=2 closed form χ_0 = 1-x,
// χ_1 = x used throughout the paper (App. B.1).
func TestAllChiMatchesMultilinear(t *testing.T) {
	rng := field.NewSplitMix64(23)
	w := BasisWeights(f61, 2)
	for trial := 0; trial < 100; trial++ {
		x := f61.Rand(rng)
		chi := AllChi(f61, w, x)
		if chi[0] != f61.Sub(1, x) || chi[1] != x {
			t.Fatalf("χ(%d) = %v, want [1-x, x]", x, chi)
		}
	}
}

// TestLDEAgreesOnHypercube: f_a(v) = a_v for every v ∈ [ℓ]^d, the defining
// property of the extension.
func TestLDEAgreesOnHypercube(t *testing.T) {
	for _, pr := range []struct{ ell, d int }{{2, 6}, {3, 4}, {4, 3}} {
		params, err := NewParams(pr.ell, pr.d)
		if err != nil {
			t.Fatal(err)
		}
		rng := field.NewSplitMix64(24)
		table := f61.RandVec(rng, int(params.U))
		buf := make([]int, params.D)
		for _, i := range []uint64{0, 1, params.U / 2, params.U - 1} {
			digits := params.Digits(i, buf)
			r := make([]field.Elem, params.D)
			for j, dg := range digits {
				r[j] = f61.Reduce(uint64(dg))
			}
			pt, err := NewPoint(f61, params, r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvalDense(pt, table)
			if err != nil {
				t.Fatal(err)
			}
			if got != table[i] {
				t.Fatalf("(ℓ=%d,d=%d): f_a(v(%d)) = %d, want %d", pr.ell, pr.d, i, got, table[i])
			}
		}
	}
}

// TestStreamingMatchesDense: the streaming evaluator (Theorem 1) agrees
// with dense folding on random update streams, for several (ℓ,d).
func TestStreamingMatchesDense(t *testing.T) {
	for _, pr := range []struct{ ell, d int }{{2, 8}, {2, 1}, {3, 5}, {5, 3}} {
		params, err := NewParams(pr.ell, pr.d)
		if err != nil {
			t.Fatal(err)
		}
		rng := field.NewSplitMix64(25)
		pt := RandomPoint(f61, params, rng)
		ev := NewEvaluator(pt)
		ups := stream.UnitIncrements(params.U, 300, rng)
		ups = append(ups, stream.Update{Index: 0, Delta: -7})
		for _, up := range ups {
			if err := ev.Update(up.Index, up.Delta); err != nil {
				t.Fatal(err)
			}
		}
		a, err := stream.Apply(ups, params.U)
		if err != nil {
			t.Fatal(err)
		}
		table := make([]field.Elem, params.U)
		for i, v := range a {
			table[i] = f61.FromInt64(v)
		}
		want, err := EvalDense(pt, table)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Value() != want {
			t.Fatalf("(ℓ=%d,d=%d): streaming %d ≠ dense %d", pr.ell, pr.d, ev.Value(), want)
		}
		if ev.Updates() != uint64(len(ups)) {
			t.Fatalf("Updates() = %d, want %d", ev.Updates(), len(ups))
		}
		if ev.SpaceWords() != params.D+1 {
			t.Fatalf("SpaceWords() = %d, want %d", ev.SpaceWords(), params.D+1)
		}
	}
}

func TestEvaluatorRejectsOutOfRange(t *testing.T) {
	params, err := NewParams(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt := RandomPoint(f61, params, field.NewSplitMix64(26))
	ev := NewEvaluator(pt)
	if err := ev.Update(16, 1); err == nil {
		t.Error("index 16 accepted in universe of 16")
	}
}

// TestLinearity: f_{a+b}(r) = f_a(r) + f_b(r), via quick.Check on random
// small streams. This linearity is exactly why streaming evaluation works.
func TestLinearityQuick(t *testing.T) {
	params, err := NewParams(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	pt := RandomPoint(f61, params, field.NewSplitMix64(27))
	check := func(seed uint64) bool {
		rng := field.NewSplitMix64(seed)
		upsA := stream.UnitIncrements(params.U, 20, rng)
		upsB := stream.UnitIncrements(params.U, 20, rng)
		evA, evB, evAB := NewEvaluator(pt), NewEvaluator(pt), NewEvaluator(pt)
		for _, u := range upsA {
			_ = evA.Update(u.Index, u.Delta)
			_ = evAB.Update(u.Index, u.Delta)
		}
		for _, u := range upsB {
			_ = evB.Update(u.Index, u.Delta)
			_ = evAB.Update(u.Index, u.Delta)
		}
		return evAB.Value() == f61.Add(evA.Value(), evB.Value())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRangeIndicator compares the O(log²u) canonical-interval evaluation
// with a dense evaluation of the explicit indicator table, across
// exhaustive small ranges and random large ones.
func TestRangeIndicator(t *testing.T) {
	params, err := NewParams(2, 6) // u = 64: exhaustive
	if err != nil {
		t.Fatal(err)
	}
	pt := RandomPoint(f61, params, field.NewSplitMix64(28))
	for qL := uint64(0); qL < params.U; qL += 3 {
		for qR := qL; qR < params.U; qR += 5 {
			got, err := EvalRangeIndicator(pt, qL, qR)
			if err != nil {
				t.Fatal(err)
			}
			table := make([]field.Elem, params.U)
			for i := qL; i <= qR; i++ {
				table[i] = 1
			}
			want, err := EvalDense(pt, table)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("range [%d,%d]: got %d, want %d", qL, qR, got, want)
			}
		}
	}
}

func TestRangeIndicatorLarge(t *testing.T) {
	params, err := NewParams(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(29)
	pt := RandomPoint(f61, params, rng)
	for trial := 0; trial < 20; trial++ {
		qL := rng.Uint64() % params.U
		qR := qL + rng.Uint64()%(params.U-qL)
		got, err := EvalRangeIndicator(pt, qL, qR)
		if err != nil {
			t.Fatal(err)
		}
		table := make([]field.Elem, params.U)
		for i := qL; i <= qR; i++ {
			table[i] = 1
		}
		want, err := EvalDense(pt, table)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("range [%d,%d]: got %d, want %d", qL, qR, got, want)
		}
	}
	// Full-universe range must give Σχ = 1-extension: indicator of all is
	// the constant-1 vector, whose extension is 1 everywhere.
	got, err := EvalRangeIndicator(pt, 0, params.U-1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("full range indicator = %d, want 1", got)
	}
}

func TestRangeIndicatorErrors(t *testing.T) {
	params2, _ := NewParams(2, 4)
	pt := RandomPoint(f61, params2, field.NewSplitMix64(30))
	if _, err := EvalRangeIndicator(pt, 3, 2); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := EvalRangeIndicator(pt, 0, 16); err == nil {
		t.Error("out-of-universe range accepted")
	}
	params3, _ := NewParams(3, 3)
	pt3 := RandomPoint(f61, params3, field.NewSplitMix64(31))
	if _, err := EvalRangeIndicator(pt3, 0, 1); err == nil {
		t.Error("ℓ=3 accepted")
	}
}

func TestChiOfIndexMatchesDense(t *testing.T) {
	params, err := NewParams(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(32)
	pt := RandomPoint(f61, params, rng)
	for trial := 0; trial < 50; trial++ {
		i := rng.Uint64() % params.U
		table := make([]field.Elem, params.U)
		table[i] = 1
		want, err := EvalDense(pt, table)
		if err != nil {
			t.Fatal(err)
		}
		if got := pt.ChiOfIndex(i); got != want {
			t.Fatalf("ChiOfIndex(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestNewPointValidation(t *testing.T) {
	params, _ := NewParams(2, 4)
	if _, err := NewPoint(f61, params, make([]field.Elem, 3)); err == nil {
		t.Error("wrong-length point accepted")
	}
	if _, err := EvalDense(RandomPoint(f61, params, field.NewSplitMix64(1)), make([]field.Elem, 5)); err == nil {
		t.Error("wrong-length table accepted")
	}
}

func BenchmarkEvaluatorUpdateL2D20(b *testing.B) {
	params, err := NewParams(2, 20)
	if err != nil {
		b.Fatal(err)
	}
	pt := RandomPoint(f61, params, field.NewSplitMix64(33))
	ev := NewEvaluator(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.Update(uint64(i)&(params.U-1), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeIndicatorD30(b *testing.B) {
	params, err := NewParams(2, 30)
	if err != nil {
		b.Fatal(err)
	}
	pt := RandomPoint(f61, params, field.NewSplitMix64(34))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalRangeIndicator(pt, 12345, params.U-999); err != nil {
			b.Fatal(err)
		}
	}
}

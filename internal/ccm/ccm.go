// Package ccm implements the single-round (√u, √u) annotation protocol of
// Chakrabarti, Cormode & McGregor ("Annotations in data streams", ICALP
// 2009) for SELF-JOIN SIZE — the baseline the paper's experimental study
// (§5) compares against. In the paper's framing it is the multi-round
// protocol instantiated with d = 2 and ℓ = √u:
//
//   - while streaming, the verifier maintains the √u values
//     sketch[x₂] = f_a(r₁, x₂) for x₂ ∈ [ℓ] — a lookup table of
//     χ_{v₁}(r₁) makes this O(1) amortized per update after O(√u) setup
//     (this is why Figure 2(a) shows the one-round verifier slightly
//     faster than the multi-round one);
//   - the prover sends a single polynomial g(x₁) = Σ_{x₂} f_a²(x₁,x₂) of
//     degree 2(ℓ-1), i.e. ~2√u words;
//   - the verifier checks g(r₁) = Σ_{x₂} sketch[x₂]² and reads off
//     F2 = Σ_{x₁∈[ℓ]} g(x₁).
//
// Verifier space and communication are both Θ(√u); the honest prover
// evaluates g at 2ℓ-1 points at O(u) each — the Θ(u^{3/2}) cost whose
// "steeper line" dominates Figure 2(b).
package ccm

import (
	"errors"
	"fmt"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/parallel"
	"repro/internal/poly"
)

// ErrRejected is returned when the proof fails either check.
var ErrRejected = errors.New("ccm: proof rejected")

// Protocol fixes the two-dimensional decomposition u = ℓ².
type Protocol struct {
	F   field.Field
	Ell int    // ℓ = √u
	U   uint64 // ℓ²

	// Workers sets the prover's parallel fan-out over the 2ℓ-1 independent
	// evaluation points of Prove (0 serial, n < 0 runtime.NumCPU()). The
	// proof is bit-identical for every value. This matters more here than
	// anywhere else: the one-round prover is the Θ(u^{3/2}) bottleneck of
	// Figure 2(b).
	Workers int
}

// New returns the protocol for a universe of size ≥ u, rounding ℓ up.
func New(f field.Field, u uint64) (*Protocol, error) {
	if !f.Valid() {
		return nil, errors.New("ccm: invalid field")
	}
	if u == 0 {
		return nil, errors.New("ccm: empty universe")
	}
	ell := 1
	for uint64(ell)*uint64(ell) < u {
		ell++
		if ell > 1<<20 {
			return nil, fmt.Errorf("ccm: universe %d too large", u)
		}
	}
	if ell < 2 {
		ell = 2
	}
	return &Protocol{F: f, Ell: ell, U: uint64(ell) * uint64(ell)}, nil
}

// Verifier holds the Θ(√u) sketch.
type Verifier struct {
	proto  *Protocol
	r1     field.Elem
	chiR1  []field.Elem // lookup table χ_k(r₁), k ∈ [ℓ]
	sketch []field.Elem // sketch[x₂] = f_a(r₁, x₂)
}

// NewVerifier samples r₁ and builds the χ lookup table (the O(√u)-space
// preprocessing the paper credits for the one-round verifier's speed).
func (p *Protocol) NewVerifier(rng field.RNG) *Verifier {
	r1 := p.F.Rand(rng)
	w := lde.BasisWeights(p.F, p.Ell)
	return &Verifier{
		proto:  p,
		r1:     r1,
		chiR1:  lde.AllChi(p.F, w, r1),
		sketch: make([]field.Elem, p.Ell),
	}
}

// Observe folds one update: index i splits as (v₁, v₂) = (i mod ℓ, i div ℓ)
// and only bucket v₂ is touched.
func (v *Verifier) Observe(i uint64, delta int64) error {
	if i >= v.proto.U {
		return fmt.Errorf("ccm: index %d outside universe [0,%d)", i, v.proto.U)
	}
	f := v.proto.F
	v1 := int(i % uint64(v.proto.Ell))
	v2 := i / uint64(v.proto.Ell)
	v.sketch[v2] = f.Add(v.sketch[v2], f.Mul(f.FromInt64(delta), v.chiR1[v1]))
	return nil
}

// SpaceWords reports the verifier memory: the sketch, the lookup table,
// and r₁ — Θ(√u), the quantity plotted in Figure 2(c).
func (v *Verifier) SpaceWords() int { return 2*v.proto.Ell + 1 }

// Verify checks the single-message proof and returns the verified F2.
func (v *Verifier) Verify(proof []field.Elem) (field.Elem, error) {
	f := v.proto.F
	ell := v.proto.Ell
	if len(proof) != 2*ell-1 {
		return 0, fmt.Errorf("%w: proof has %d evaluations, want %d", ErrRejected, len(proof), 2*ell-1)
	}
	for _, e := range proof {
		if uint64(e) >= f.Modulus() {
			return 0, fmt.Errorf("%w: non-canonical element", ErrRejected)
		}
	}
	// g(r₁) must equal Σ_{x₂} sketch[x₂]².
	var want field.Elem
	for _, s := range v.sketch {
		want = f.Add(want, f.Mul(s, s))
	}
	ev, err := poly.NewConsecutiveEvaluator(f, 2*ell-1)
	if err != nil {
		return 0, err
	}
	got, err := ev.Eval(proof, v.r1)
	if err != nil {
		return 0, err
	}
	if got != want {
		return 0, fmt.Errorf("%w: g(r₁)=%d ≠ Σ sketch² = %d", ErrRejected, got, want)
	}
	answer, err := poly.SumPrefix(f, proof, ell)
	if err != nil {
		return 0, err
	}
	return answer, nil
}

// Prover stores the full frequency vector.
type Prover struct {
	proto *Protocol
	table []field.Elem
}

// NewProver returns a prover ready to observe the stream.
func (p *Protocol) NewProver() *Prover {
	return &Prover{proto: p, table: make([]field.Elem, p.U)}
}

// Observe folds one update into the frequency vector.
func (pr *Prover) Observe(i uint64, delta int64) error {
	if i >= pr.proto.U {
		return fmt.Errorf("ccm: index %d outside universe [0,%d)", i, pr.proto.U)
	}
	f := pr.proto.F
	pr.table[i] = f.Add(pr.table[i], f.FromInt64(delta))
	return nil
}

// Total returns the true F2 (the claimed answer implied by the proof).
func (pr *Prover) Total() field.Elem {
	return pr.proto.F.DotSlices(pr.table, pr.table)
}

// proveTile is how many beyond-node evaluation points share one pass over
// the frequency table in Prove. Each table row is read once per tile
// instead of once per point, and a tile's χ rows (proveTile·ℓ words) stay
// cache-resident across the pass.
const proveTile = 8

// Prove produces the single-message proof: the evaluations
// g(0..2ℓ-2) with g(c) = Σ_{x₂} f_a(c, x₂)². Θ(u^{3/2}) field operations;
// the evaluation points are independent, so tiles of them fan out across
// Protocol.Workers goroutines (each tile is O(u·proveTile) work, grain 1).
func (pr *Prover) Prove() []field.Elem {
	f := pr.proto.F
	ell := pr.proto.Ell
	w := lde.BasisWeights(f, ell)
	// Batched χ tables for the ℓ-1 beyond-node evaluation points ℓ..2ℓ-2.
	xs := make([]field.Elem, ell-1)
	for i := range xs {
		xs[i] = f.Reduce(uint64(ell + i))
	}
	chis := lde.ChiTables(f, w, xs)
	proof := make([]field.Elem, 2*ell-1)
	// The ℓ node points are direct reads — O(u) in one cache-friendly pass;
	// only the ℓ-1 beyond-node points carry the Θ(u) DotSlices each, so the
	// pool is reserved for them. Points are processed in tiles that share
	// one streaming pass over the table; per point the x₂ accumulation
	// order is unchanged, so the proof is bit-identical to the untiled walk.
	for x2 := 0; x2 < ell; x2++ {
		row := pr.table[x2*ell : (x2+1)*ell]
		for c, v := range row {
			proof[c] = f.Add(proof[c], f.Mul(v, v))
		}
	}
	npts := ell - 1
	ntiles := (npts + proveTile - 1) / proveTile
	parallel.ForGrain(parallel.Workers(pr.proto.Workers), ntiles, 1, func(_, lo, hi int) {
		for tb := lo; tb < hi; tb++ {
			i0 := tb * proveTile
			i1 := i0 + proveTile
			if i1 > npts {
				i1 = npts
			}
			var sums [proveTile]field.Elem
			for x2 := 0; x2 < ell; x2++ {
				row := pr.table[x2*ell : (x2+1)*ell]
				for i := i0; i < i1; i++ {
					val := f.DotSlices(chis[i], row)
					sums[i-i0] = f.Add(sums[i-i0], f.Mul(val, val))
				}
			}
			copy(proof[ell+i0:ell+i1], sums[:i1-i0])
		}
	})
	return proof
}

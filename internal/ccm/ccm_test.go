package ccm

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

var f61 = field.Mersenne()

func TestNew(t *testing.T) {
	for _, c := range []struct {
		u    uint64
		ell  int
		capU uint64
	}{
		{1, 2, 4}, {4, 2, 4}, {5, 3, 9}, {16, 4, 16}, {1000, 32, 1024},
	} {
		p, err := New(f61, c.u)
		if err != nil {
			t.Fatalf("New(%d): %v", c.u, err)
		}
		if p.Ell != c.ell || p.U != c.capU {
			t.Errorf("New(%d) = ℓ=%d U=%d, want ℓ=%d U=%d", c.u, p.Ell, p.U, c.ell, c.capU)
		}
	}
	if _, err := New(f61, 0); err == nil {
		t.Error("u=0 accepted")
	}
	if _, err := New(field.Field{}, 4); err == nil {
		t.Error("invalid field accepted")
	}
}

func refF2(t *testing.T, ups []stream.Update, u uint64) field.Elem {
	t.Helper()
	a, err := stream.Apply(ups, u)
	if err != nil {
		t.Fatal(err)
	}
	var total field.Elem
	for _, v := range a {
		e := f61.FromInt64(v)
		total = f61.Add(total, f61.Mul(e, e))
	}
	return total
}

func TestCompleteness(t *testing.T) {
	for _, u := range []uint64{4, 100, 1024, 4096} {
		proto, err := New(f61, u)
		if err != nil {
			t.Fatal(err)
		}
		rng := field.NewSplitMix64(u)
		ups := stream.UniformDeltas(proto.U, 100, rng)
		v := proto.NewVerifier(rng)
		p := proto.NewProver()
		for _, up := range ups {
			if err := v.Observe(up.Index, up.Delta); err != nil {
				t.Fatal(err)
			}
			if err := p.Observe(up.Index, up.Delta); err != nil {
				t.Fatal(err)
			}
		}
		proof := p.Prove()
		got, err := v.Verify(proof)
		if err != nil {
			t.Fatalf("u=%d: honest proof rejected: %v", u, err)
		}
		if want := refF2(t, ups, proto.U); got != want {
			t.Fatalf("u=%d: F2 = %d, want %d", u, got, want)
		}
		if p.Total() != got {
			t.Fatalf("u=%d: Total %d ≠ verified %d", u, p.Total(), got)
		}
		// Θ(√u) accounting.
		if v.SpaceWords() != 2*proto.Ell+1 {
			t.Fatalf("space = %d, want %d", v.SpaceWords(), 2*proto.Ell+1)
		}
		if len(proof) != 2*proto.Ell-1 {
			t.Fatalf("proof = %d words, want %d", len(proof), 2*proto.Ell-1)
		}
	}
}

func TestSoundnessTamper(t *testing.T) {
	proto, err := New(f61, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(7)
	ups := stream.UniformDeltas(proto.U, 50, rng)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	for _, up := range ups {
		if err := v.Observe(up.Index, up.Delta); err != nil {
			t.Fatal(err)
		}
		if err := p.Observe(up.Index, up.Delta); err != nil {
			t.Fatal(err)
		}
	}
	proof := p.Prove()
	for pos := 0; pos < len(proof); pos += 5 {
		bad := append([]field.Elem(nil), proof...)
		bad[pos] = f61.Add(bad[pos], 1)
		if _, err := v.Verify(bad); !errors.Is(err, ErrRejected) {
			t.Fatalf("tampered position %d accepted", pos)
		}
	}
	// Wrong length and non-canonical entries.
	if _, err := v.Verify(proof[:len(proof)-1]); !errors.Is(err, ErrRejected) {
		t.Error("short proof accepted")
	}
	bad := append([]field.Elem(nil), proof...)
	bad[0] = field.Elem(f61.Modulus())
	if _, err := v.Verify(bad); !errors.Is(err, ErrRejected) {
		t.Error("non-canonical proof accepted")
	}
}

func TestSoundnessWrongStream(t *testing.T) {
	proto, err := New(f61, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(8)
	ups := stream.UniformDeltas(proto.U, 100, rng)
	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	for _, up := range ups {
		if err := v.Observe(up.Index, up.Delta); err != nil {
			t.Fatal(err)
		}
	}
	for _, up := range ups[:len(ups)-1] { // prover misses one update
		if err := p.Observe(up.Index, up.Delta); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Verify(p.Prove()); !errors.Is(err, ErrRejected) {
		t.Fatalf("wrong-stream proof accepted: %v", err)
	}
}

func TestObserveValidation(t *testing.T) {
	proto, err := New(f61, 16)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(field.NewSplitMix64(9))
	if err := v.Observe(16, 1); err == nil {
		t.Error("verifier accepted out-of-universe index")
	}
	p := proto.NewProver()
	if err := p.Observe(16, 1); err == nil {
		t.Error("prover accepted out-of-universe index")
	}
}

// TestProveWorkersIdentical: the parallel one-round prover must emit the
// bit-identical proof of the serial prover and still verify.
func TestProveWorkersIdentical(t *testing.T) {
	f := field.Mersenne()
	proto, err := New(f, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	ups := stream.UniformDeltas(proto.U, 100, field.NewSplitMix64(71))
	serial := proto.NewProver()
	for _, up := range ups {
		if err := serial.Observe(up.Index, up.Delta); err != nil {
			t.Fatal(err)
		}
	}
	want := serial.Prove()
	for _, workers := range []int{1, 3, -1} {
		par, err := New(f, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		par.Workers = workers
		p := par.NewProver()
		for _, up := range ups {
			if err := p.Observe(up.Index, up.Delta); err != nil {
				t.Fatal(err)
			}
		}
		got := p.Prove()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: proof has %d words, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: proof word %d = %d, serial = %d", workers, i, got[i], want[i])
			}
		}
		v := par.NewVerifier(field.NewSplitMix64(72))
		for _, up := range ups {
			if err := v.Observe(up.Index, up.Delta); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := v.Verify(got); err != nil {
			t.Fatalf("workers=%d: parallel proof rejected: %v", workers, err)
		}
	}
}

package gkrbench

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/field"
)

// TestCompareF2 checks that both protocols accept, agree, and exhibit the
// §3-Remarks cost ordering: GKR strictly more communication and rounds.
func TestCompareF2(t *testing.T) {
	f := field.Mersenne()
	var prevRatio float64
	for _, logu := range []int{3, 5, 7} {
		native, gkrRow, err := CompareF2(f, uint64(1)<<logu, 77)
		if err != nil {
			t.Fatalf("u=2^%d: %v", logu, err)
		}
		if !native.Accepted || !gkrRow.Accepted {
			t.Fatalf("u=2^%d: a protocol did not accept", logu)
		}
		if gkrRow.CommWords <= native.CommWords || gkrRow.Rounds <= native.Rounds {
			t.Fatalf("u=2^%d: GKR (%d words, %d rounds) not above native (%d, %d)",
				logu, gkrRow.CommWords, gkrRow.Rounds, native.CommWords, native.Rounds)
		}
		// The quadratic gap: the ratio must grow with log u.
		ratio := float64(gkrRow.CommWords) / float64(native.CommWords)
		if ratio <= prevRatio {
			t.Fatalf("u=2^%d: comm ratio %.2f did not grow (prev %.2f)", logu, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

// TestCompareSetup checks the engine-dividend harness: both construction
// paths accept, agree on cost, and the snapshot path reports a
// measurable (non-negative) setup. The actual speedup is a benchmark
// claim, not a unit-test assertion.
func TestCompareSetup(t *testing.T) {
	f := field.Mersenne()
	for _, spec := range []circuit.Spec{
		{Name: circuit.FamilyF2},
		{Name: circuit.FamilyCount},
		{Name: circuit.FamilyMatMul, Arg: 8},
	} {
		replay, snapshot, err := CompareSetup(f, 64, 200, 0, spec, 99)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if replay.CommWords != snapshot.CommWords || replay.Rounds != snapshot.Rounds {
			t.Fatalf("%s: cost rows differ: %+v vs %+v", spec.Name, replay, snapshot)
		}
		if replay.Source != "replay" || snapshot.Source != "snapshot" {
			t.Fatalf("%s: sources mislabeled: %q, %q", spec.Name, replay.Source, snapshot.Source)
		}
	}
}

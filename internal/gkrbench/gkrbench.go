// Package gkrbench measures two things about the general Theorem-3
// construction (GKR over layered circuits):
//
//   - the ablation called out in §3's Remarks: the specialized
//     (log u, log u) F2 protocol against GKR over the F2 circuit, which
//     costs (log² u, log² u); and
//   - the engine dividend: building a GKR prover from a dataset's
//     maintained counts (Snapshot.NewProver, zero replay) against
//     rebuilding it from the raw update stream (wire.BuildProver).
//
// All comparisons run on the same stream with the same field, and every
// conversation must be accepted by the client-side verifier.
package gkrbench

import (
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/gkr"
	"repro/internal/stream"
	"repro/internal/wire"
)

// Row is one protocol's cost on the shared workload.
type Row struct {
	Protocol  string
	CommWords int
	Rounds    int
	ProveTime time.Duration
	CheckTime time.Duration
	Accepted  bool
}

// CircuitRun is one timed end-to-end GKR conversation: Setup is prover
// construction (snapshot borrow or stream replay), Prove the full
// conversation, prover and verifier combined.
type CircuitRun struct {
	Source    string
	Setup     time.Duration
	Prove     time.Duration
	CommWords int
	Rounds    int
}

// newCircuitVerifier builds a GKR verifier session that has observed
// the whole stream.
func newCircuitVerifier(f field.Field, spec circuit.Spec, u uint64, ups []stream.Update, seed uint64) (*gkr.VerifierSession, error) {
	vs, err := gkr.NewVerifierFor(f, spec, u, field.NewSplitMix64(seed))
	if err != nil {
		return nil, err
	}
	for _, up := range ups {
		if err := vs.Observe(up); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// CompareF2 runs the native F2 protocol and the GKR circuit protocol on
// the same uniform stream over a universe of size u (a power of two) and
// returns both cost rows. Both must accept and agree on the answer. The
// GKR prover is engine-backed: it borrows the dataset's maintained
// element table exactly as a server answering a CIRCUIT query would.
func CompareF2(f field.Field, u uint64, seed uint64) (native, gkrRow Row, err error) {
	gen := field.NewSplitMix64(seed)
	ups := stream.UniformDeltas(u, 100, gen)

	// Native multi-round F2.
	proto, err := core.NewSelfJoinSize(f, u)
	if err != nil {
		return native, gkrRow, err
	}
	v := proto.NewVerifier(field.NewSplitMix64(seed + 1))
	p := proto.NewProver()
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			return native, gkrRow, err
		}
		if err := p.Observe(up); err != nil {
			return native, gkrRow, err
		}
	}
	t0 := time.Now()
	stats, err := core.Run(p, v)
	nativeTime := time.Since(t0)
	if err != nil {
		return native, gkrRow, err
	}
	nativeResult, err := v.Result()
	if err != nil {
		return native, gkrRow, err
	}
	native = Row{
		Protocol:  "native",
		CommWords: stats.CommWords(),
		Rounds:    stats.Rounds,
		ProveTime: nativeTime, // combined; the split is negligible here
		Accepted:  true,
	}

	// GKR over the F2 circuit, prover built from engine-maintained state.
	spec := circuit.Spec{Name: circuit.FamilyF2}
	ds, err := engine.NewDataset(f, u, 1)
	if err != nil {
		return native, gkrRow, err
	}
	if err := ds.Ingest(ups); err != nil {
		return native, gkrRow, err
	}
	gv, err := newCircuitVerifier(f, spec, u, ups, seed+2)
	if err != nil {
		return native, gkrRow, err
	}
	gp, err := ds.Snapshot().NewProver(engine.QueryCircuit, engine.QueryParams{Circuit: spec.Name, A: spec.Arg})
	if err != nil {
		return native, gkrRow, err
	}
	t1 := time.Now()
	if _, err := core.Run(gp, gv); err != nil {
		return native, gkrRow, err
	}
	gkrTime := time.Since(t1)
	gkrResult, err := gv.Output()
	if err != nil {
		return native, gkrRow, err
	}
	if gkrResult != nativeResult {
		return native, gkrRow, errAnswerMismatch(nativeResult, gkrResult)
	}
	gstats := gv.Stats()
	gkrRow = Row{
		Protocol:  "gkr",
		CommWords: gstats.CommWords,
		Rounds:    gstats.Rounds,
		ProveTime: gkrTime,
		Accepted:  true,
	}
	return native, gkrRow, nil
}

// CompareSetup times a full CIRCUIT conversation for the same family
// and stream built two ways: replaying the n raw updates into a fresh
// prover (the pre-engine path, wire.BuildProver) against borrowing an
// already-ingested dataset's counts (Snapshot.NewProver). The ingest
// itself is untimed — the engine maintains that state for every query
// kind regardless. Both conversations must accept.
func CompareSetup(f field.Field, u uint64, n, workers int, spec circuit.Spec, seed uint64) (replay, snapshot CircuitRun, err error) {
	ups := stream.UniformDeltas(u, int64(n), field.NewSplitMix64(seed))
	params := engine.QueryParams{Circuit: spec.Name, A: spec.Arg}

	ds, err := engine.NewDataset(f, u, workers)
	if err != nil {
		return replay, snapshot, err
	}
	if err := ds.Ingest(ups); err != nil {
		return replay, snapshot, err
	}

	run := func(source string, build func() (core.ProverSession, error)) (CircuitRun, error) {
		vs, err := newCircuitVerifier(f, spec, u, ups, seed+1)
		if err != nil {
			return CircuitRun{}, err
		}
		t0 := time.Now()
		p, err := build()
		setup := time.Since(t0)
		if err != nil {
			return CircuitRun{}, err
		}
		t1 := time.Now()
		if _, err := core.Run(p, vs); err != nil {
			return CircuitRun{}, err
		}
		prove := time.Since(t1)
		st := vs.Stats()
		return CircuitRun{Source: source, Setup: setup, Prove: prove, CommWords: st.CommWords, Rounds: st.Rounds}, nil
	}

	replay, err = run("replay", func() (core.ProverSession, error) {
		return wire.BuildProver(f, u, wire.QueryCircuit, params, ups, workers)
	})
	if err != nil {
		return replay, snapshot, err
	}
	snapshot, err = run("snapshot", func() (core.ProverSession, error) {
		return ds.Snapshot().NewProver(engine.QueryCircuit, params)
	})
	return replay, snapshot, err
}

type answerMismatch struct{ a, b field.Elem }

func errAnswerMismatch(a, b field.Elem) error { return answerMismatch{a, b} }

func (e answerMismatch) Error() string {
	return "gkrbench: protocols disagree on F2"
}

// Package gkrbench measures the ablation called out in §3's Remarks: the
// specialized (log u, log u) F2 protocol against the general Theorem-3
// construction (GKR over the F2 circuit), which costs (log² u, log² u).
// Both run on the same stream with the same field.
package gkrbench

import (
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/gkr"
	"repro/internal/stream"
)

// Row is one protocol's cost on the shared workload.
type Row struct {
	Protocol  string
	CommWords int
	Rounds    int
	ProveTime time.Duration
	CheckTime time.Duration
	Accepted  bool
}

// CompareF2 runs the native F2 protocol and the GKR circuit protocol on
// the same uniform stream over a universe of size u (a power of two) and
// returns both cost rows. Both must accept and agree on the answer.
func CompareF2(f field.Field, u uint64, seed uint64) (native, gkrRow Row, err error) {
	gen := field.NewSplitMix64(seed)
	ups := stream.UniformDeltas(u, 100, gen)

	// Native multi-round F2.
	proto, err := core.NewSelfJoinSize(f, u)
	if err != nil {
		return native, gkrRow, err
	}
	v := proto.NewVerifier(field.NewSplitMix64(seed + 1))
	p := proto.NewProver()
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			return native, gkrRow, err
		}
		if err := p.Observe(up); err != nil {
			return native, gkrRow, err
		}
	}
	t0 := time.Now()
	stats, err := core.Run(p, v)
	nativeTime := time.Since(t0)
	if err != nil {
		return native, gkrRow, err
	}
	nativeResult, err := v.Result()
	if err != nil {
		return native, gkrRow, err
	}
	native = Row{
		Protocol:  "native",
		CommWords: stats.CommWords(),
		Rounds:    stats.Rounds,
		ProveTime: nativeTime, // combined; the split is negligible here
		Accepted:  true,
	}

	// GKR over the F2 circuit with closed-form wiring.
	k := 0
	for uint64(1)<<k < u {
		k++
	}
	c, err := circuit.NewF2Circuit(k)
	if err != nil {
		return native, gkrRow, err
	}
	gproto, err := gkr.New(f, c, circuit.F2Wiring{K: k})
	if err != nil {
		return native, gkrRow, err
	}
	gv, err := gproto.NewVerifier(field.NewSplitMix64(seed + 2))
	if err != nil {
		return native, gkrRow, err
	}
	input := make([]field.Elem, u)
	for _, up := range ups {
		if err := gv.Observe(up.Index, up.Delta); err != nil {
			return native, gkrRow, err
		}
		input[up.Index] = f.Add(input[up.Index], f.FromInt64(up.Delta))
	}
	gp, err := gproto.NewProver(input)
	if err != nil {
		return native, gkrRow, err
	}
	t1 := time.Now()
	gstats, err := gkr.Run(gp, gv)
	gkrTime := time.Since(t1)
	if err != nil {
		return native, gkrRow, err
	}
	gkrResult, err := gv.Output()
	if err != nil {
		return native, gkrRow, err
	}
	if gkrResult != nativeResult {
		return native, gkrRow, errAnswerMismatch(nativeResult, gkrResult)
	}
	gkrRow = Row{
		Protocol:  "gkr",
		CommWords: gstats.CommWords,
		Rounds:    gstats.Rounds,
		ProveTime: gkrTime,
		Accepted:  true,
	}
	return native, gkrRow, nil
}

type answerMismatch struct{ a, b field.Elem }

func errAnswerMismatch(a, b field.Elem) error { return answerMismatch{a, b} }

func (e answerMismatch) Error() string {
	return "gkrbench: protocols disagree on F2"
}

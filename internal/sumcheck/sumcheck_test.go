package sumcheck

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/poly"
	"repro/internal/stream"
)

var f61 = field.Mersenne()

// buildTable converts a replayed stream into a field-element table.
func buildTable(t *testing.T, f field.Field, ups []stream.Update, u uint64) []field.Elem {
	t.Helper()
	a, err := stream.Apply(ups, u)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]field.Elem, u)
	for i, v := range a {
		out[i] = f.FromInt64(v)
	}
	return out
}

// refPowerSum computes Σ a_i^k over the integers, reduced into the field.
func refPowerSum(f field.Field, a []int64, k int) field.Elem {
	var total field.Elem
	for _, v := range a {
		total = f.Add(total, f.Pow(f.FromInt64(v), uint64(k)))
	}
	return total
}

// runProtocol wires up one complete honest conversation for the given
// combiner and tables, with the verifier's point sampled from rng.
func runProtocol(t *testing.T, cfg Config, rng field.RNG, tables ...[]field.Elem) (Transcript, *Verifier, error) {
	t.Helper()
	pt := lde.RandomPoint(cfg.Field, cfg.Params, rng)
	vals := make([]field.Elem, len(tables))
	for i, tab := range tables {
		v, err := lde.EvalDense(pt, tab)
		if err != nil {
			t.Fatal(err)
		}
		vals[i] = v
	}
	expected := cfg.Combiner.Apply(cfg.Field, vals)
	p, err := NewProver(cfg, tables...)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(cfg, pt.R, p.Total(), expected)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, v, nil)
	return tr, v, err
}

func TestF2Completeness(t *testing.T) {
	for _, pr := range []struct{ ell, d int }{{2, 8}, {2, 1}, {3, 4}, {4, 3}} {
		params, err := lde.NewParams(pr.ell, pr.d)
		if err != nil {
			t.Fatal(err)
		}
		rng := field.NewSplitMix64(41)
		ups := stream.UniformDeltas(params.U, 100, rng)
		table := buildTable(t, f61, ups, params.U)
		cfg := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
		tr, v, err := runProtocol(t, cfg, rng, table)
		if err != nil {
			t.Fatalf("(ℓ=%d,d=%d): honest run rejected: %v", pr.ell, pr.d, err)
		}
		if !v.Accepted() {
			t.Fatalf("(ℓ=%d,d=%d): verifier not in accepted state", pr.ell, pr.d)
		}
		if len(tr.Messages) != params.D {
			t.Fatalf("got %d messages, want %d", len(tr.Messages), params.D)
		}
		// Communication: d messages of deg+1 words + d-1 challenges.
		wantWords := params.D*cfg.MessageLen() + params.D - 1
		if tr.CommWords() != wantWords {
			t.Fatalf("CommWords = %d, want %d", tr.CommWords(), wantWords)
		}
	}
}

// TestClaimedTotalMatchesReference: the prover's claimed answer is the
// true frequency moment.
func TestClaimedTotalMatchesReference(t *testing.T) {
	params, err := lde.NewParams(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(42)
	ups := stream.UniformDeltas(params.U, 1000, rng)
	a, err := stream.Apply(ups, params.U)
	if err != nil {
		t.Fatal(err)
	}
	table := buildTable(t, f61, ups, params.U)
	for k := 1; k <= 5; k++ {
		cfg := Config{Field: f61, Params: params, Combiner: Power{K: k}}
		p, err := NewProver(cfg, table)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := p.Total(), refPowerSum(f61, a, k); got != want {
			t.Errorf("F%d: Total = %d, want %d", k, got, want)
		}
	}
}

func TestFkCompleteness(t *testing.T) {
	params, err := lde.NewParams(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		rng := field.NewSplitMix64(uint64(43 + k))
		ups := stream.UniformDeltas(params.U, 50, rng)
		table := buildTable(t, f61, ups, params.U)
		cfg := Config{Field: f61, Params: params, Combiner: Power{K: k}}
		if cfg.MessageLen() != k+1 {
			t.Fatalf("F%d message length %d, want %d (paper: degree k for ℓ=2)", k, cfg.MessageLen(), k+1)
		}
		if _, v, err := runProtocol(t, cfg, rng, table); err != nil || !v.Accepted() {
			t.Fatalf("F%d honest run rejected: %v", k, err)
		}
	}
}

func TestInnerProductCompleteness(t *testing.T) {
	params, err := lde.NewParams(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(44)
	upsA := stream.UniformDeltas(params.U, 30, rng)
	upsB := stream.UniformDeltas(params.U, 30, rng)
	ta := buildTable(t, f61, upsA, params.U)
	tb := buildTable(t, f61, upsB, params.U)
	cfg := Config{Field: f61, Params: params, Combiner: Product{}}
	_, v, err := runProtocol(t, cfg, rng, ta, tb)
	if err != nil || !v.Accepted() {
		t.Fatalf("inner product honest run rejected: %v", err)
	}
	// Claimed total must equal the reference inner product.
	a, _ := stream.Apply(upsA, params.U)
	b, _ := stream.Apply(upsB, params.U)
	var want field.Elem
	for i := range a {
		want = f61.Add(want, f61.Mul(f61.FromInt64(a[i]), f61.FromInt64(b[i])))
	}
	p, err := NewProver(cfg, ta, tb)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != want {
		t.Fatalf("inner product Total = %d, want %d", p.Total(), want)
	}
}

func TestPolyCombinerCompleteness(t *testing.T) {
	params, err := lde.NewParams(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(45)
	// h(x) = 1 + 3x + 2x³ applied to small frequencies.
	h := poly.Poly{1, 3, 0, 2}
	ups := stream.UnitIncrements(params.U, 200, rng)
	table := buildTable(t, f61, ups, params.U)
	cfg := Config{Field: f61, Params: params, Combiner: PolyFn{H: h}}
	_, v, err := runProtocol(t, cfg, rng, table)
	if err != nil || !v.Accepted() {
		t.Fatalf("poly combiner honest run rejected: %v", err)
	}
	a, _ := stream.Apply(ups, params.U)
	var want field.Elem
	for _, cnt := range a {
		want = f61.Add(want, h.Eval(f61, f61.FromInt64(cnt)))
	}
	p, _ := NewProver(cfg, table)
	if p.Total() != want {
		t.Fatalf("PolyFn Total = %d, want %d", p.Total(), want)
	}
}

// TestSoundnessLyingClaim: a prover that announces a wrong total is always
// rejected (the round-1 sum check fails immediately, no probability
// involved).
func TestSoundnessLyingClaim(t *testing.T) {
	params, err := lde.NewParams(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(46)
	ups := stream.UniformDeltas(params.U, 100, rng)
	table := buildTable(t, f61, ups, params.U)
	cfg := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
	pt := lde.RandomPoint(f61, params, rng)
	val, err := lde.EvalDense(pt, table)
	if err != nil {
		t.Fatal(err)
	}
	expected := f61.Mul(val, val)
	p, err := NewProver(cfg, table)
	if err != nil {
		t.Fatal(err)
	}
	wrongClaim := f61.Add(p.Total(), 1)
	v, err := NewVerifier(cfg, pt.R, wrongClaim, expected)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, v, nil)
	if !errors.Is(err, ErrReject) {
		t.Fatalf("lying claim not rejected: %v", err)
	}
}

// TestSoundnessTamperedMessages: flipping any single coefficient of any
// round message must be caught. With p = 2^61-1 the failure probability is
// ~2^-56 per round, so rejection is deterministic in practice.
func TestSoundnessTamperedMessages(t *testing.T) {
	params, err := lde.NewParams(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
	for round := 1; round <= params.D; round++ {
		for pos := 0; pos < cfg.MessageLen(); pos++ {
			rng := field.NewSplitMix64(uint64(100*round + pos))
			ups := stream.UniformDeltas(params.U, 100, rng)
			table := buildTable(t, f61, ups, params.U)
			pt := lde.RandomPoint(f61, params, rng)
			val, err := lde.EvalDense(pt, table)
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewProver(cfg, table)
			if err != nil {
				t.Fatal(err)
			}
			v, err := NewVerifier(cfg, pt.R, p.Total(), f61.Mul(val, val))
			if err != nil {
				t.Fatal(err)
			}
			tamper := func(r int, evals []field.Elem) []field.Elem {
				if r == round {
					out := append([]field.Elem(nil), evals...)
					out[pos] = f61.Add(out[pos], 1)
					return out
				}
				return evals
			}
			if _, err := Run(p, v, tamper); !errors.Is(err, ErrReject) {
				t.Fatalf("tamper round %d pos %d not rejected: %v", round, pos, err)
			}
		}
	}
}

// TestSoundnessModifiedStream: the prover computes its proof over a
// slightly different stream (the paper's second tampering experiment).
// The claimed total is then correct for the *wrong* data and the final
// LDE check catches it.
func TestSoundnessModifiedStream(t *testing.T) {
	params, err := lde.NewParams(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(47)
	ups := stream.UniformDeltas(params.U, 100, rng)
	table := buildTable(t, f61, ups, params.U)
	// The prover drops the last update — "missed out some data".
	modified := buildTable(t, f61, ups[:len(ups)-1], params.U)
	cfg := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
	pt := lde.RandomPoint(f61, params, rng)
	val, err := lde.EvalDense(pt, table)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(cfg, modified)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(cfg, pt.R, p.Total(), f61.Mul(val, val))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, v, nil); !errors.Is(err, ErrReject) {
		t.Fatalf("modified-stream proof not rejected: %v", err)
	}
}

// TestSoundnessRateSmallField estimates the empirical soundness error in a
// deliberately tiny field and compares it to the paper's 2dℓ/p bound
// (Lemma 1). A cheating prover claims total+1 and then plays honestly,
// which forces at least one lucky polynomial-identity collision to win.
func TestSoundnessRateSmallField(t *testing.T) {
	small, err := field.New(257)
	if err != nil {
		t.Fatal(err)
	}
	params, err := lde.NewParams(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Field: small, Params: params, Combiner: Power{K: 2}}
	const trials = 3000
	accepted := 0
	rng := field.NewSplitMix64(48)
	for trial := 0; trial < trials; trial++ {
		ups := stream.UnitIncrements(params.U, 20, rng)
		a, err := stream.Apply(ups, params.U)
		if err != nil {
			t.Fatal(err)
		}
		table := make([]field.Elem, params.U)
		for i, v := range a {
			table[i] = small.FromInt64(v)
		}
		pt := lde.RandomPoint(small, params, rng)
		val, err := lde.EvalDense(pt, table)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProver(cfg, table)
		if err != nil {
			t.Fatal(err)
		}
		// Cheat: claim one more than the truth, then send messages shifted
		// so the first consistency check passes; detection rides on the
		// random challenges.
		v, err := NewVerifier(cfg, pt.R, small.Add(p.Total(), 1), small.Mul(val, val))
		if err != nil {
			t.Fatal(err)
		}
		tamper := func(round int, evals []field.Elem) []field.Elem {
			if round == 1 {
				out := append([]field.Elem(nil), evals...)
				out[0] = small.Add(out[0], 1)
				return out
			}
			return evals
		}
		if _, err := Run(p, v, tamper); err == nil {
			accepted++
		}
	}
	// Lemma 1 bound: 2dℓ/p = 2·4·2/257 ≈ 6.2%. The specific cheat above
	// wins only if some r_j hits a coincidence; empirically the rate is
	// well under the bound. Allow the bound with slack.
	bound := float64(2*params.D*params.Ell) / 257.0
	rate := float64(accepted) / trials
	if rate > 2*bound {
		t.Fatalf("empirical soundness error %.4f far exceeds Lemma 1 bound %.4f", rate, bound)
	}
	t.Logf("empirical soundness error %.4f (Lemma 1 bound %.4f)", rate, bound)
}

func TestVerifierStructuralChecks(t *testing.T) {
	params, err := lde.NewParams(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
	rng := field.NewSplitMix64(49)
	pt := lde.RandomPoint(f61, params, rng)

	t.Run("wrong message length", func(t *testing.T) {
		v, err := NewVerifier(cfg, pt.R, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Receive([]field.Elem{0, 0, 0, 0, 0}); !errors.Is(err, ErrReject) {
			t.Errorf("oversized message (degree too high) not rejected: %v", err)
		}
	})
	t.Run("non-canonical element", func(t *testing.T) {
		v, err := NewVerifier(cfg, pt.R, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.Receive([]field.Elem{field.Elem(f61.Modulus()), 0, 0}); !errors.Is(err, ErrReject) {
			t.Errorf("non-canonical element not rejected: %v", err)
		}
	})
	t.Run("message after rejection", func(t *testing.T) {
		v, err := NewVerifier(cfg, pt.R, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		_ = v.Receive([]field.Elem{5, 5, 5}) // sum 10 ≠ claim 1 → reject
		if err := v.Receive([]field.Elem{0, 1, 0}); !errors.Is(err, ErrReject) {
			t.Errorf("post-rejection message accepted: %v", err)
		}
		if v.Accepted() {
			t.Error("rejected verifier reports accepted")
		}
	})
	t.Run("challenge before first round", func(t *testing.T) {
		v, err := NewVerifier(cfg, pt.R, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Challenge(); err == nil {
			t.Error("challenge available before any message")
		}
	})
}

func TestConstructorValidation(t *testing.T) {
	params, err := lde.NewParams(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	good := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
	if _, err := NewProver(good, make([]field.Elem, 8)); err == nil {
		t.Error("short table accepted")
	}
	if _, err := NewProver(good, make([]field.Elem, 16), make([]field.Elem, 16)); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := NewProver(Config{Params: params, Combiner: Power{K: 2}}, make([]field.Elem, 16)); err == nil {
		t.Error("invalid field accepted")
	}
	if _, err := NewVerifier(good, make([]field.Elem, 3), 0, 0); err == nil {
		t.Error("short challenge vector accepted")
	}
	small, err := field.New(5)
	if err != nil {
		t.Fatal(err)
	}
	smallParams, err := lde.NewParams(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProver(Config{Field: small, Params: smallParams, Combiner: Power{K: 9}}, make([]field.Elem, 4)); err == nil {
		t.Error("degree ≥ field size accepted")
	}
}

func TestProverStateMachine(t *testing.T) {
	params, err := lde.NewParams(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
	p, err := NewProver(cfg, make([]field.Elem, 4))
	if err != nil {
		t.Fatal(err)
	}
	if p.Round() != 0 {
		t.Fatalf("fresh prover at round %d", p.Round())
	}
	if err := p.Fold(7); err != nil {
		t.Fatal(err)
	}
	if err := p.Fold(7); err != nil {
		t.Fatal(err)
	}
	if err := p.Fold(7); err == nil {
		t.Error("fold past final round accepted")
	}
	if _, err := p.RoundMessage(); err == nil {
		t.Error("message past final round accepted")
	}
}

// TestBranchingFactorTradeoff verifies the footnote-1 trade-off: larger ℓ
// means fewer rounds but more words per message, with total communication
// deg+1 per round.
func TestBranchingFactorTradeoff(t *testing.T) {
	for _, pr := range []struct {
		ell, d int
	}{{2, 12}, {4, 6}, {16, 3}} {
		params, err := lde.NewParams(pr.ell, pr.d)
		if err != nil {
			t.Fatal(err)
		}
		if params.U != 4096 {
			t.Fatalf("params (%d,%d) universe %d, want 4096", pr.ell, pr.d, params.U)
		}
		rng := field.NewSplitMix64(uint64(50 + pr.ell))
		ups := stream.UniformDeltas(params.U, 10, rng)
		table := buildTable(t, f61, ups, params.U)
		cfg := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
		tr, v, err := runProtocol(t, cfg, rng, table)
		if err != nil || !v.Accepted() {
			t.Fatalf("(ℓ=%d,d=%d) rejected: %v", pr.ell, pr.d, err)
		}
		wantWords := pr.d*(2*(pr.ell-1)+1) + pr.d - 1
		if tr.CommWords() != wantWords {
			t.Errorf("(ℓ=%d,d=%d) CommWords = %d, want %d", pr.ell, pr.d, tr.CommWords(), wantWords)
		}
	}
}

func BenchmarkProverF2(b *testing.B) {
	for _, logu := range []int{12, 16} {
		b.Run(fmt.Sprintf("u=2^%d", logu), func(b *testing.B) {
			params, err := lde.NewParams(2, logu)
			if err != nil {
				b.Fatal(err)
			}
			rng := field.NewSplitMix64(51)
			ups := stream.UniformDeltas(params.U, 1000, rng)
			a, err := stream.Apply(ups, params.U)
			if err != nil {
				b.Fatal(err)
			}
			table := make([]field.Elem, params.U)
			for i, v := range a {
				table[i] = f61.FromInt64(v)
			}
			cfg := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
			pt := lde.RandomPoint(f61, params, rng)
			val, err := lde.EvalDense(pt, table)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := NewProver(cfg, table)
				if err != nil {
					b.Fatal(err)
				}
				v, err := NewVerifier(cfg, pt.R, p.Total(), f61.Mul(val, val))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Run(p, v, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

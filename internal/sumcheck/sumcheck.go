// Package sumcheck implements the interactive sum-check protocol engine
// underlying all aggregation queries of Cormode–Thaler–Yi (§3, App. B.1).
//
// The statement being proved is
//
//	claim = Σ_{x ∈ [ℓ]^d} C(f_1(x), …, f_T(x))
//
// where each f_t is the low-degree extension of a streamed vector and C is
// a low-degree "combiner": v² for SELF-JOIN SIZE, v^k for frequency
// moments, v·w for INNER PRODUCT / RANGE-SUM, and h̃(v) for the
// frequency-based functions of §6.2.
//
// Protocol shape (§3.1): in round j the prover sends the univariate
//
//	g_j(x_j) = Σ_{x_{j+1..d} ∈ [ℓ]^{d-j}} C(f(r_1,…,r_{j-1}, x_j, x_{j+1..d}))
//
// as deg+1 evaluations g_j(0..deg). The verifier checks
// Σ_{x∈[ℓ]} g_j(x) = g_{j-1}(r_{j-1}) (round 1 checks against the claim),
// answers with the challenge r_j, and after round d checks
// g_d(r_d) = C(f(r)) against the value it computed from the stream.
// Sending evaluations rather than coefficients makes the paper's "reject
// if the degree of g is too high" check structural: a message of the wrong
// length is rejected outright.
//
// The honest prover uses the table-folding algorithm of Appendix B.1
// (there written for ℓ=2): after round j it replaces its size-m tables by
// size-m/ℓ tables folded by χ(r_j), so total work is O(deg·u) field
// operations — the "at most a logarithmic factor more work than simply
// providing the answer" property the paper emphasizes.
package sumcheck

import (
	"errors"
	"fmt"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/parallel"
	"repro/internal/poly"
)

// ErrReject is returned by the verifier when a prover message fails a
// consistency check; per Definition 1 the verifier outputs ⊥.
var ErrReject = errors.New("sumcheck: proof rejected")

// Combiner is the function C applied to the extensions inside the sum.
type Combiner interface {
	// Arity is the number of tables/extensions combined (T above).
	Arity() int
	// PerVariableDegree is the degree of C(f_1,…,f_T) in each variable
	// x_j, which bounds deg g_j. Each f_t has degree ℓ-1 per variable.
	PerVariableDegree(ell int) int
	// Apply evaluates C on one tuple of values.
	Apply(f field.Field, vals []field.Elem) field.Elem
}

// Power implements C(v) = v^K: K=2 is SELF-JOIN SIZE, larger K the k-th
// frequency moment (§3.2).
type Power struct{ K int }

// Arity returns 1.
func (p Power) Arity() int { return 1 }

// PerVariableDegree returns K·(ℓ-1).
func (p Power) PerVariableDegree(ell int) int { return p.K * (ell - 1) }

// Apply returns vals[0]^K.
func (p Power) Apply(f field.Field, vals []field.Elem) field.Elem {
	return f.Pow(vals[0], uint64(p.K))
}

// Product implements C(v, w) = v·w, the INNER PRODUCT combiner (§3.2).
type Product struct{}

// Arity returns 2.
func (Product) Arity() int { return 2 }

// PerVariableDegree returns 2(ℓ-1).
func (Product) PerVariableDegree(ell int) int { return 2 * (ell - 1) }

// Apply returns vals[0]·vals[1].
func (Product) Apply(f field.Field, vals []field.Elem) field.Elem {
	return f.Mul(vals[0], vals[1])
}

// PolyFn implements C(v) = H(v) for an explicit low-degree polynomial H —
// the h̃ of the frequency-based protocols (§6.2). The prover carries H in
// coefficient form; the verifier of those protocols carries only
// MinDegree (H=nil), since it never calls Apply — it computes h̃ at its
// single point by the O(1)-space oracle method (poly.EvalOracleInterpolant).
//
// MinDegree pins the declared degree so both parties agree on the message
// length even when H happens to have lower degree than the interpolation
// bound.
type PolyFn struct {
	H         poly.Poly
	MinDegree int
}

// Arity returns 1.
func (p PolyFn) Arity() int { return 1 }

// PerVariableDegree returns max(deg(H), MinDegree)·(ℓ-1).
func (p PolyFn) PerVariableDegree(ell int) int {
	d := p.H.Degree()
	if d < p.MinDegree {
		d = p.MinDegree
	}
	if d < 0 {
		d = 0
	}
	return d * (ell - 1)
}

// Apply returns H(vals[0]).
func (p PolyFn) Apply(f field.Field, vals []field.Elem) field.Elem {
	return p.H.Eval(f, vals[0])
}

// Config fixes the parameters shared by prover and verifier.
type Config struct {
	Field    field.Field
	Params   lde.Params
	Combiner Combiner

	// Workers sets the prover's fan-out: every table scan (claimed total,
	// per-round messages, folds) is split into contiguous chunks processed
	// by that many goroutines, with per-chunk partials combined in chunk
	// order. Because field arithmetic is exact, the transcript is
	// bit-identical for every worker count. 0 (the default) runs serially,
	// n < 0 selects runtime.NumCPU(). The verifier ignores it — checking is
	// already O(log u). Combiners must be safe for concurrent Apply calls
	// when Workers != 0 (the combiners in this package are pure).
	Workers int
}

func (c Config) degree() int {
	d := c.Combiner.PerVariableDegree(c.Params.Ell)
	if d < 1 {
		d = 1
	}
	return d
}

// MessageLen returns the number of field elements per round message
// (deg+1 evaluations).
func (c Config) MessageLen() int { return c.degree() + 1 }

// Rounds returns the number of rounds d.
func (c Config) Rounds() int { return c.Params.D }

// Validate reports whether the configuration is usable: a valid field, a
// combiner, and a message degree small enough for distinct evaluation
// points to exist in the field.
func (c Config) Validate() error {
	if !c.Field.Valid() {
		return errors.New("sumcheck: invalid field")
	}
	if c.Combiner == nil {
		return errors.New("sumcheck: nil combiner")
	}
	if uint64(c.degree())+1 > c.Field.Modulus() {
		return fmt.Errorf("sumcheck: message degree %d too large for field %d", c.degree(), c.Field.Modulus())
	}
	return nil
}

// ---------------------------------------------------------------------
// Prover

// Prover is the honest prover: it stores the full frequency tables and
// answers each round from progressively folded copies. All table scans
// fan out across cfg.Workers goroutines in contiguous chunks; since field
// arithmetic is exact and partials are combined in chunk order, the
// transcript is bit-identical for every worker count.
type Prover struct {
	cfg     Config
	workers int
	tables  [][]field.Elem
	chiAt   [][]field.Elem // chiAt[c][k] = χ_k(c) for evaluation points c=0..deg
	cElems  []field.Elem   // cElems[c] = c as a field element
	weights []field.Elem   // Lagrange basis weights for arbitrary-point folds
	round   int
	// pending holds the next round's message when the previous Fold ran a
	// fused fold+message kernel (see fuseKind); RoundMessage hands it out
	// and clears it. The fused kernels compute exactly the sums the plain
	// path would, so the transcript is unchanged.
	pending []field.Elem
}

// Fused-kernel dispatch: for the ℓ=2 protocols whose combiner the kernel
// layer knows — C(v)=v² (SELF-JOIN SIZE / F2) and C(v,w)=v·w (INNER
// PRODUCT) — the prover's dominant table walks collapse into single-pass
// field kernels: Fold computes the next message while the folded values
// are still in registers, and round 0 / Total use the pair-walk and lazy
// dot kernels. Every other combiner takes the generic path.
const (
	fuseNone = iota
	fuseSq   // Power{K:2}: message (Σ e0², Σ e1², Σ e2²)
	fuseProd // Product: message (Σ eA0·eB0, Σ eA1·eB1, Σ eA2·eB2)
)

func (p *Prover) fuseKind() int {
	if p.cfg.Params.Ell != 2 {
		return fuseNone
	}
	switch c := p.cfg.Combiner.(type) {
	case Power:
		if c.K == 2 {
			return fuseSq
		}
	case Product:
		return fuseProd
	}
	return fuseNone
}

// NewProver builds a prover over explicit tables, one per combiner slot,
// each of length exactly ℓ^d. Tables are copied; the caller's slices are
// not modified.
func NewProver(cfg Config, tables ...[]field.Elem) (*Prover, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(tables) != cfg.Combiner.Arity() {
		return nil, fmt.Errorf("sumcheck: combiner arity %d but %d tables", cfg.Combiner.Arity(), len(tables))
	}
	own := make([][]field.Elem, len(tables))
	for t, tab := range tables {
		if uint64(len(tab)) != cfg.Params.U {
			return nil, fmt.Errorf("sumcheck: table %d has %d entries, want %d", t, len(tab), cfg.Params.U)
		}
		own[t] = append([]field.Elem(nil), tab...)
	}
	deg := cfg.degree()
	weights := lde.BasisWeights(cfg.Field, cfg.Params.Ell)
	cElems := make([]field.Elem, deg+1)
	for c := 0; c <= deg; c++ {
		cElems[c] = cfg.Field.Reduce(uint64(c))
	}
	chiAt := lde.ChiTables(cfg.Field, weights, cElems)
	return &Prover{
		cfg:     cfg,
		workers: parallel.Workers(cfg.Workers),
		tables:  own,
		chiAt:   chiAt,
		cElems:  cElems,
		weights: weights,
	}, nil
}

// Total returns the true value of the sum — the answer the prover claims.
// The square and product combiners reduce to a lazy-accumulating dot
// product; other combiners walk the tables through Apply.
func (p *Prover) Total() field.Elem {
	f := p.cfg.Field
	switch c := p.cfg.Combiner.(type) {
	case Power:
		if c.K == 2 {
			return p.parallelDot(p.tables[0], p.tables[0])
		}
	case Product:
		return p.parallelDot(p.tables[0], p.tables[1])
	}
	n := len(p.tables[0])
	partials := make([]field.Elem, parallel.Chunks(p.workers, n))
	parallel.For(p.workers, n, func(chunk, lo, hi int) {
		vals := make([]field.Elem, len(p.tables))
		var total field.Elem
		for i := lo; i < hi; i++ {
			for t := range p.tables {
				vals[t] = p.tables[t][i]
			}
			total = f.Add(total, p.cfg.Combiner.Apply(f, vals))
		}
		partials[chunk] = total
	})
	return f.SumSlice(partials)
}

// parallelDot computes Σ_i a[i]·b[i] across the worker pool; per-chunk
// partials are exact 192-bit sums, so the result matches the serial walk.
func (p *Prover) parallelDot(a, b []field.Elem) field.Elem {
	f := p.cfg.Field
	partials := make([]field.Elem, parallel.Chunks(p.workers, len(a)))
	parallel.For(p.workers, len(a), func(chunk, lo, hi int) {
		partials[chunk] = f.DotSlices(a[lo:hi], b[lo:hi])
	})
	return f.SumSlice(partials)
}

// RoundMessage computes the evaluations g_j(0..deg) for the current round.
// It must be called exactly once per round, alternating with Fold.
func (p *Prover) RoundMessage() ([]field.Elem, error) {
	if p.round >= p.cfg.Params.D {
		return nil, fmt.Errorf("sumcheck: all %d rounds already played", p.cfg.Params.D)
	}
	if p.pending != nil {
		msg := p.pending
		p.pending = nil
		return msg, nil
	}
	if kind := p.fuseKind(); kind != fuseNone {
		return p.messageFused(kind), nil
	}
	f := p.cfg.Field
	ell := p.cfg.Params.Ell
	deg := p.cfg.degree()
	size := len(p.tables[0]) / ell
	// Each index costs ~(deg+1)·ℓ·arity field ops, so scale the grain down
	// accordingly: coarse decompositions (large ℓ, few but heavy indices)
	// must still fan out.
	grain := grainFor((deg + 1) * ell * len(p.tables))
	partials := make([][]field.Elem, parallel.ChunksGrain(p.workers, size, grain))
	parallel.ForGrain(p.workers, size, grain, func(chunk, lo, hi int) {
		out := make([]field.Elem, deg+1)
		vals := make([]field.Elem, len(p.tables))
		diffs := make([]field.Elem, len(p.tables))
		for w := lo; w < hi; w++ {
			base := w * ell
			if ell == 2 {
				for t, tab := range p.tables {
					diffs[t] = f.Sub(tab[base+1], tab[base])
				}
			}
			for c := 0; c <= deg; c++ {
				for t, tab := range p.tables {
					switch {
					case c < ell:
						// χ at a node is an indicator: direct read.
						vals[t] = tab[base+c]
					case ell == 2:
						// (1-c)·T0 + c·T1 = T0 + c·(T1-T0): one multiply.
						vals[t] = f.Add(tab[base], f.Mul(p.cElems[c], diffs[t]))
					default:
						vals[t] = f.DotSlices(p.chiAt[c], tab[base:base+ell])
					}
				}
				out[c] = f.Add(out[c], p.cfg.Combiner.Apply(f, vals))
			}
		}
		partials[chunk] = out
	})
	out := make([]field.Elem, deg+1)
	for _, part := range partials {
		f.AddSlices(out, out, part)
	}
	return out, nil
}

// messageFused computes the current round message with the pair-walk
// kernels (no pending fold to exploit — round 0, or a Fold that could not
// fuse). Pairs split across workers; per-chunk partials are exact sums.
func (p *Prover) messageFused(kind int) []field.Elem {
	f := p.cfg.Field
	npairs := len(p.tables[0]) / 2
	partials := make([][3]field.Elem, parallel.Chunks(p.workers, npairs))
	parallel.For(p.workers, npairs, func(chunk, lo, hi int) {
		var g0, g1, g2 field.Elem
		if kind == fuseSq {
			g0, g1, g2 = f.PairsSumSq(p.tables[0][2*lo : 2*hi])
		} else {
			g0, g1, g2 = f.PairsSumProd(p.tables[0][2*lo:2*hi], p.tables[1][2*lo:2*hi])
		}
		partials[chunk] = [3]field.Elem{g0, g1, g2}
	})
	out := make([]field.Elem, 3)
	for _, pt := range partials {
		out[0] = f.Add(out[0], pt[0])
		out[1] = f.Add(out[1], pt[1])
		out[2] = f.Add(out[2], pt[2])
	}
	return out
}

// foldFused folds every table by r and computes the next round's message
// in the same pass, leaving it in p.pending. Chunking is in units of
// next-table pairs so kernel boundaries always align.
func (p *Prover) foldFused(kind int, r field.Elem) {
	f := p.cfg.Field
	size := len(p.tables[0]) / 2
	npairs := size / 2
	partials := make([][3]field.Elem, parallel.Chunks(p.workers, npairs))
	if kind == fuseSq {
		tab := p.tables[0]
		next := make([]field.Elem, size)
		parallel.For(p.workers, npairs, func(chunk, lo, hi int) {
			g0, g1, g2 := f.FoldPairsSumSq(next[2*lo:2*hi], tab[4*lo:4*hi], r)
			partials[chunk] = [3]field.Elem{g0, g1, g2}
		})
		p.tables[0] = next
	} else {
		tabA, tabB := p.tables[0], p.tables[1]
		nextA := make([]field.Elem, size)
		nextB := make([]field.Elem, size)
		parallel.For(p.workers, npairs, func(chunk, lo, hi int) {
			g0, g1, g2 := f.FoldPairsSumProd(
				nextA[2*lo:2*hi], nextB[2*lo:2*hi],
				tabA[4*lo:4*hi], tabB[4*lo:4*hi], r)
			partials[chunk] = [3]field.Elem{g0, g1, g2}
		})
		p.tables[0], p.tables[1] = nextA, nextB
	}
	out := make([]field.Elem, 3)
	for _, pt := range partials {
		out[0] = f.Add(out[0], pt[0])
		out[1] = f.Add(out[1], pt[1])
		out[2] = f.Add(out[2], pt[2])
	}
	p.pending = out
}

// Fold binds the current round's variable to the verifier's challenge r,
// shrinking every table by a factor of ℓ.
func (p *Prover) Fold(r field.Elem) error {
	if p.round >= p.cfg.Params.D {
		return fmt.Errorf("sumcheck: all %d rounds already folded", p.cfg.Params.D)
	}
	p.pending = nil
	if kind := p.fuseKind(); kind != fuseNone && p.round+1 < p.cfg.Params.D {
		// The next table still has ≥2 pairs, so fold and next message
		// share one pass over it.
		p.foldFused(kind, r)
		p.round++
		return nil
	}
	f := p.cfg.Field
	ell := p.cfg.Params.Ell
	var chi []field.Elem
	if ell != 2 {
		chi = lde.AllChi(f, p.weights, r)
	}
	for t, tab := range p.tables {
		size := len(tab) / ell
		next := make([]field.Elem, size)
		if ell == 2 {
			parallel.For(p.workers, size, func(_, lo, hi int) {
				// (1-r)·T0 + r·T1 = T0 + r·(T1-T0).
				f.FoldPairs(next[lo:hi], tab[2*lo:2*hi], r)
			})
		} else {
			parallel.ForGrain(p.workers, size, grainFor(ell), func(_, lo, hi int) {
				for w := lo; w < hi; w++ {
					next[w] = f.DotSlices(chi, tab[w*ell:(w+1)*ell])
				}
			})
		}
		p.tables[t] = next
	}
	p.round++
	return nil
}

// Round reports the current round index (0-based; equals the number of
// folds performed).
func (p *Prover) Round() int { return p.round }

// grainFor scales the parallel grain down by the per-index cost (in field
// operations) so the fork threshold tracks work, not element count.
func grainFor(cost int) int {
	if cost < 1 {
		cost = 1
	}
	g := parallel.MinGrain / cost
	if g < 1 {
		g = 1
	}
	return g
}

// ---------------------------------------------------------------------
// Verifier

// Verifier checks the conversation. It is constructed after the stream
// phase: by then the verifier knows the claimed total and has computed
// C(f_1(r),…,f_T(r)) from its streaming LDE evaluations.
type Verifier struct {
	cfg      Config
	r        []field.Elem // pre-sampled challenges, revealed one per round
	claim    field.Elem   // value the next message must sum to
	expected field.Elem   // C(f(r)), the final check anchor
	ev       *poly.ConsecutiveEvaluator
	round    int
	rejected bool
}

// NewVerifier constructs a verifier for the given claim.
//
//   - r is the secret random point the verifier chose before the stream
//     (exactly the point at which it evaluated the LDEs);
//   - claimedTotal is the answer the prover asserts;
//   - expectedFinal is C applied to the streamed LDE evaluations at r.
func NewVerifier(cfg Config, r []field.Elem, claimedTotal, expectedFinal field.Elem) (*Verifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(r) != cfg.Params.D {
		return nil, fmt.Errorf("sumcheck: challenge vector has %d entries, want %d", len(r), cfg.Params.D)
	}
	ev, err := poly.NewConsecutiveEvaluator(cfg.Field, cfg.MessageLen())
	if err != nil {
		return nil, err
	}
	return &Verifier{
		cfg:      cfg,
		r:        append([]field.Elem(nil), r...),
		claim:    claimedTotal,
		expected: expectedFinal,
		ev:       ev,
	}, nil
}

// Receive processes the round message g_j(0..deg). It returns ErrReject
// (wrapped with detail) if any check fails. After the last round it
// performs the final LDE consistency check.
func (v *Verifier) Receive(evals []field.Elem) error {
	if v.rejected {
		return fmt.Errorf("%w: verifier already rejected", ErrReject)
	}
	if v.round >= v.cfg.Params.D {
		return fmt.Errorf("sumcheck: message after final round")
	}
	// Structural degree check (the paper's "rejects if the degree of g is
	// too high").
	if len(evals) != v.cfg.MessageLen() {
		v.rejected = true
		return fmt.Errorf("%w: round %d message has %d evaluations, want %d",
			ErrReject, v.round+1, len(evals), v.cfg.MessageLen())
	}
	for _, e := range evals {
		if uint64(e) >= v.cfg.Field.Modulus() {
			v.rejected = true
			return fmt.Errorf("%w: round %d message contains non-canonical element", ErrReject, v.round+1)
		}
	}
	sum, err := poly.SumPrefix(v.cfg.Field, evals, v.cfg.Params.Ell)
	if err != nil {
		return err
	}
	if sum != v.claim {
		v.rejected = true
		return fmt.Errorf("%w: round %d sum %d does not match claim %d", ErrReject, v.round+1, sum, v.claim)
	}
	rj := v.r[v.round]
	next, err := v.ev.Eval(evals, rj)
	if err != nil {
		return err
	}
	v.claim = next
	v.round++
	if v.round == v.cfg.Params.D {
		if v.claim != v.expected {
			v.rejected = true
			return fmt.Errorf("%w: final check g_d(r_d)=%d ≠ C(f(r))=%d", ErrReject, v.claim, v.expected)
		}
	}
	return nil
}

// Challenge returns the challenge to reveal to the prover after the most
// recent message, i.e. r_j for the round just received. It must only be
// called when a round has been received and the protocol is not finished.
func (v *Verifier) Challenge() (field.Elem, error) {
	if v.round == 0 || v.round > v.cfg.Params.D {
		return 0, fmt.Errorf("sumcheck: no challenge pending at round %d", v.round)
	}
	return v.r[v.round-1], nil
}

// Done reports whether all d rounds have been received.
func (v *Verifier) Done() bool { return v.round == v.cfg.Params.D }

// Accepted reports whether the verifier finished all rounds without
// rejecting.
func (v *Verifier) Accepted() bool { return v.Done() && !v.rejected }

// Round returns the number of messages received so far.
func (v *Verifier) Round() int { return v.round }

// SpaceWords reports the verifier's working memory in the paper's
// accounting: the d challenges, the running claim, the expected final
// value, and the deg+1 barycentric weights of the message evaluator.
func (v *Verifier) SpaceWords() int {
	return v.cfg.Params.D + 2 + v.cfg.MessageLen()
}

// ---------------------------------------------------------------------
// Local runner

// Transcript records one full conversation for inspection and accounting.
type Transcript struct {
	Messages   [][]field.Elem // prover → verifier, one per round
	Challenges []field.Elem   // verifier → prover (r_1..r_{d-1} are sent; r_d never travels)
}

// CommWords counts the field elements exchanged in both directions, the
// paper's communication measure t.
func (tr Transcript) CommWords() int {
	n := len(tr.Challenges)
	for _, m := range tr.Messages {
		n += len(m)
	}
	return n
}

// Run executes the complete conversation between a local prover and
// verifier, optionally passing each message through tamper (used by the
// soundness experiments; nil means honest delivery). It returns the
// transcript and the verifier's verdict: a nil error means accepted.
func Run(p *Prover, v *Verifier, tamper func(round int, evals []field.Elem) []field.Elem) (Transcript, error) {
	var tr Transcript
	d := v.cfg.Params.D
	for j := 0; j < d; j++ {
		msg, err := p.RoundMessage()
		if err != nil {
			return tr, err
		}
		if tamper != nil {
			msg = tamper(j+1, msg)
		}
		tr.Messages = append(tr.Messages, msg)
		if err := v.Receive(msg); err != nil {
			return tr, err
		}
		// The prover needs r_j to proceed to round j+1; after the final
		// round no challenge is revealed.
		if j < d-1 {
			rj, err := v.Challenge()
			if err != nil {
				return tr, err
			}
			tr.Challenges = append(tr.Challenges, rj)
			if err := p.Fold(rj); err != nil {
				return tr, err
			}
		}
	}
	return tr, nil
}

package sumcheck

import (
	"strings"
	"testing"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/stream"
)

// runDistributed plays the full conversation through the partial-prover
// seam: S slice provers serve the head rounds (messages combined in
// slice order, challenges broadcast), then a tail prover built from
// their leaves serves the rest. It returns the combined claim and the
// combined message per round.
func runDistributed(t *testing.T, cfg Config, slices int, challenges []field.Elem, tables ...[]field.Elem) (field.Elem, [][]field.Elem) {
	t.Helper()
	f := cfg.Field
	width := cfg.Params.U / uint64(slices)
	parts := make([]*Prover, slices)
	for k := range parts {
		lo, hi := uint64(k)*width, uint64(k+1)*width
		sub := make([][]field.Elem, len(tables))
		for ti, tab := range tables {
			sub[ti] = tab[lo:hi]
		}
		p, err := NewPartialProver(cfg, lo, hi, sub...)
		if err != nil {
			t.Fatalf("slice %d: %v", k, err)
		}
		parts[k] = p
	}
	var claim field.Elem
	for _, p := range parts {
		claim = f.Add(claim, p.Total())
	}
	hd := parts[0].cfg.Params.D
	d := cfg.Params.D
	var msgs [][]field.Elem
	for j := 0; j < hd; j++ {
		per := make([][]field.Elem, slices)
		for k, p := range parts {
			m, err := p.RoundMessage()
			if err != nil {
				t.Fatalf("slice %d round %d: %v", k, j, err)
			}
			per[k] = m
		}
		m, err := CombinePartials(f, per)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, m)
		if j < d-1 {
			for _, p := range parts {
				if err := p.Fold(challenges[j]); err != nil {
					t.Fatalf("fold round %d: %v", j, err)
				}
			}
		}
	}
	if hd == d {
		return claim, msgs // one slice covering the whole table: no tail
	}
	leaves := make([][]field.Elem, slices)
	for k, p := range parts {
		lv, err := p.Leaves()
		if err != nil {
			t.Fatalf("slice %d leaves: %v", k, err)
		}
		leaves[k] = lv
	}
	tail, err := NewTailProver(cfg, leaves)
	if err != nil {
		t.Fatal(err)
	}
	for j := hd; j < d; j++ {
		m, err := tail.RoundMessage()
		if err != nil {
			t.Fatalf("tail round %d: %v", j, err)
		}
		msgs = append(msgs, m)
		if j < d-1 {
			if err := tail.Fold(challenges[j]); err != nil {
				t.Fatalf("tail fold round %d: %v", j, err)
			}
		}
	}
	return claim, msgs
}

// TestPartialBitIdentical checks the seam's core invariant: for every
// covered combiner, worker count, and slice count, the distributed
// conversation's claim and per-round messages are bit-identical to the
// single-table prover's.
func TestPartialBitIdentical(t *testing.T) {
	params, err := lde.NewParams(2, 6) // u = 64
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(7)
	ups := stream.UniformDeltas(params.U, 300, rng)
	table := buildTable(t, f61, ups, params.U)
	indicator := make([]field.Elem, params.U)
	for i := uint64(5); i <= 40; i++ {
		indicator[i] = 1
	}
	cases := []struct {
		name     string
		combiner Combiner
		tables   [][]field.Elem
	}{
		{"selfjoin", Power{K: 2}, [][]field.Elem{table}},
		{"f3", Power{K: 3}, [][]field.Elem{table}},
		{"product", Product{}, [][]field.Elem{table, indicator}},
	}
	for _, tc := range cases {
		for _, workers := range []int{0, 3} {
			cfg := Config{Field: f61, Params: params, Combiner: tc.combiner, Workers: workers}
			challenges := f61.RandVec(field.NewSplitMix64(99), params.D)
			ref, err := NewProver(cfg, tc.tables...)
			if err != nil {
				t.Fatal(err)
			}
			refClaim := ref.Total()
			var refMsgs [][]field.Elem
			for j := 0; j < params.D; j++ {
				m, err := ref.RoundMessage()
				if err != nil {
					t.Fatal(err)
				}
				refMsgs = append(refMsgs, m)
				if j < params.D-1 {
					if err := ref.Fold(challenges[j]); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, slices := range []int{1, 2, 4, 8} {
				claim, msgs := runDistributed(t, cfg, slices, challenges, tc.tables...)
				if claim != refClaim {
					t.Fatalf("%s w=%d S=%d: claim %d ≠ %d", tc.name, workers, slices, claim, refClaim)
				}
				if len(msgs) != len(refMsgs) {
					t.Fatalf("%s w=%d S=%d: %d messages, want %d", tc.name, workers, slices, len(msgs), len(refMsgs))
				}
				for j := range msgs {
					if len(msgs[j]) != len(refMsgs[j]) {
						t.Fatalf("%s w=%d S=%d round %d: message length %d ≠ %d", tc.name, workers, slices, j+1, len(msgs[j]), len(refMsgs[j]))
					}
					for c := range msgs[j] {
						if msgs[j][c] != refMsgs[j][c] {
							t.Fatalf("%s w=%d S=%d round %d: evaluation %d differs: %d ≠ %d",
								tc.name, workers, slices, j+1, c, msgs[j][c], refMsgs[j][c])
						}
					}
				}
			}
		}
	}
}

// TestPartialVerifierAccepts drives the distributed prover against the
// ordinary verifier end-to-end: the verifier cannot tell it is talking
// to S machines.
func TestPartialVerifierAccepts(t *testing.T) {
	params, err := lde.NewParams(2, 5) // u = 32
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(11)
	ups := stream.UniformDeltas(params.U, 200, rng)
	table := buildTable(t, f61, ups, params.U)
	cfg := Config{Field: f61, Params: params, Combiner: Power{K: 2}}
	pt := lde.RandomPoint(f61, params, field.NewSplitMix64(23))
	ev, err := lde.EvalDense(pt, table)
	if err != nil {
		t.Fatal(err)
	}
	expected := cfg.Combiner.Apply(f61, []field.Elem{ev})
	// The verifier's challenge schedule is its pre-sampled point; feed the
	// distributed prover the same schedule.
	claim, msgs := runDistributed(t, cfg, 4, pt.R, table)
	v, err := NewVerifier(cfg, pt.R, claim, expected)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if err := v.Receive(m); err != nil {
			t.Fatal(err)
		}
	}
	if !v.Accepted() {
		t.Fatal("verifier did not accept the distributed conversation")
	}
}

// TestSliceParamsValidation exercises the alignment and width rules.
func TestSliceParamsValidation(t *testing.T) {
	global, err := lde.NewParams(2, 4) // u = 16
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		lo, hi uint64
		want   string
	}{
		{0, 0, "outside"},
		{8, 24, "outside"},
		{0, 3, "power of two"},
		{0, 1, "power of two"},
		{4, 12, "aligned"},
	}
	for _, b := range bad {
		if _, err := SliceParams(global, b.lo, b.hi); err == nil || !strings.Contains(err.Error(), b.want) {
			t.Fatalf("SliceParams(%d,%d) = %v, want %q error", b.lo, b.hi, err, b.want)
		}
	}
	sp, err := SliceParams(global, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Ell != 2 || sp.D != 3 || sp.U != 8 {
		t.Fatalf("SliceParams(8,16) = %+v", sp)
	}
	if _, err := SliceParams(lde.Params{Ell: 3, D: 2, U: 9}, 0, 3); err == nil {
		t.Fatal("ℓ=3 slice accepted")
	}
	if _, err := NewTailProver(Config{Field: f61, Combiner: Power{K: 2}}, [][]field.Elem{{1}, {2}, {3}}); err == nil {
		t.Fatal("3-slice tail accepted")
	}
	if _, err := NewTailProver(Config{Field: f61, Combiner: Power{K: 2}}, [][]field.Elem{{1, 9}, {2}}); err == nil {
		t.Fatal("wrong-arity leaves accepted")
	}
}

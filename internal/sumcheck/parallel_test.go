package sumcheck

import (
	"fmt"
	"testing"

	"repro/internal/field"
	"repro/internal/lde"
)

// transcriptFor runs the full conversation (claimed total, every round
// message, every fold) for the given worker count and returns everything
// the prover emitted.
func transcriptFor(t *testing.T, cfg Config, tables [][]field.Elem, challenges []field.Elem) []field.Elem {
	t.Helper()
	p, err := NewProver(cfg, tables...)
	if err != nil {
		t.Fatal(err)
	}
	out := []field.Elem{p.Total()}
	for j := 0; j < cfg.Rounds(); j++ {
		msg, err := p.RoundMessage()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, msg...)
		if j < cfg.Rounds()-1 {
			if err := p.Fold(challenges[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// TestParallelProverBitIdentical: for every combiner shape and branching
// factor, the parallel prover's full transcript must match the serial
// (Workers=0) transcript bit for bit, and workers=1 must equal serial.
func TestParallelProverBitIdentical(t *testing.T) {
	f := field.Mersenne()
	rng := field.NewSplitMix64(31)
	cases := []struct {
		name     string
		ell, d   int
		combiner Combiner
	}{
		{"F2/ell=2", 2, 13, Power{K: 2}},
		{"F5/ell=2", 2, 12, Power{K: 5}},
		{"F2/ell=4", 4, 7, Power{K: 2}},
		{"product/ell=2", 2, 13, Product{}},
		{"product/ell=3", 3, 8, Product{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			params, err := lde.NewParams(tc.ell, tc.d)
			if err != nil {
				t.Fatal(err)
			}
			tables := make([][]field.Elem, tc.combiner.Arity())
			for i := range tables {
				tables[i] = f.RandVec(rng, int(params.U))
			}
			challenges := f.RandVec(rng, params.D)
			serial := transcriptFor(t, Config{Field: f, Params: params, Combiner: tc.combiner}, tables, challenges)
			for _, workers := range []int{1, 2, 3, 8, -1} {
				cfg := Config{Field: f, Params: params, Combiner: tc.combiner, Workers: workers}
				got := transcriptFor(t, cfg, tables, challenges)
				if len(got) != len(serial) {
					t.Fatalf("workers=%d: transcript has %d words, want %d", workers, len(got), len(serial))
				}
				for i := range got {
					if got[i] != serial[i] {
						t.Fatalf("workers=%d: transcript word %d = %d, serial = %d", workers, i, got[i], serial[i])
					}
				}
			}
		})
	}
}

// TestParallelProverAccepted: a parallel prover must convince a standard
// verifier end to end.
func TestParallelProverAccepted(t *testing.T) {
	f := field.Mersenne()
	rng := field.NewSplitMix64(32)
	params, err := lde.NewParams(2, 14)
	if err != nil {
		t.Fatal(err)
	}
	table := f.RandVec(rng, int(params.U))
	for _, workers := range []int{0, 4, -1} {
		cfg := Config{Field: f, Params: params, Combiner: Power{K: 2}, Workers: workers}
		pt := lde.RandomPoint(f, params, rng)
		val, err := lde.EvalDenseWorkers(pt, table, workers)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProver(cfg, table)
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewVerifier(cfg, pt.R, p.Total(), f.Mul(val, val))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(p, v, nil); err != nil {
			t.Fatalf("workers=%d: honest parallel prover rejected: %v", workers, err)
		}
		if !v.Accepted() {
			t.Fatalf("workers=%d: verifier did not accept", workers)
		}
	}
}

// TestParallelProverLargeRound smoke-checks a round big enough that the
// pool actually forks (size beyond the parallel grain) for several arities.
func TestParallelProverLargeRound(t *testing.T) {
	if testing.Short() {
		t.Skip("large table")
	}
	f := field.Mersenne()
	rng := field.NewSplitMix64(33)
	params, err := lde.NewParams(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	a := f.RandVec(rng, int(params.U))
	b := f.RandVec(rng, int(params.U))
	serialCfg := Config{Field: f, Params: params, Combiner: Product{}}
	parCfg := serialCfg
	parCfg.Workers = -1
	ps, err := NewProver(serialCfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewProver(parCfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Total() != pp.Total() {
		t.Fatalf("totals differ: serial %d parallel %d", ps.Total(), pp.Total())
	}
	ms, err := ps.RoundMessage()
	if err != nil {
		t.Fatal(err)
	}
	mp, err := pp.RoundMessage()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ms) != fmt.Sprint(mp) {
		t.Fatalf("round 1 differs: serial %v parallel %v", ms, mp)
	}
}

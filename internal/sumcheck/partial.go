// Partial-prover seam: the distributed form of the chunk-ordered
// reduction every table scan in this package already performs
// in-process.
//
// With ℓ=2 the fold is least-significant-bit-first:
//
//	next[w] = T[2w] + r·(T[2w+1] − T[2w])
//
// so a contiguous, power-of-two-aligned slice [lo, hi) of width
// W = 2^h stays pair-aligned for the first h rounds: round j's message
// over the whole table is the elementwise sum of the per-slice messages
// (field addition is exact, so the combined message is bit-identical to
// the single-table prover's), and folding each slice by the broadcast
// challenge is exactly what the global fold would do to that index
// range. After h folds a slice is a single entry per table — its
// *leaves* — and the global folded table of size S = U/W is precisely
// the slice leaves in slice order, so a fresh prover over those
// S-entry tables (the *tail prover*) serves the remaining rounds,
// again bit-identically.
//
// The seam therefore needs no new prover: a partial prover is an
// ordinary Prover over the slice's parameterization, plus three
// helpers — SliceParams to derive that parameterization, Leaves to
// read out the fully folded entries, NewTailProver to resume from
// collected leaves — and CombinePartials to sum per-slice messages in
// slice order.
package sumcheck

import (
	"fmt"
	"math/bits"

	"repro/internal/field"
	"repro/internal/lde"
)

// SliceParams derives the parameterization of a partial prover owning
// the contiguous universe slice [lo, hi) of the global parameterization
// global. The slice must be non-empty, a power-of-two width of at least
// 2 (so at least one fold happens before the leaves), aligned to its
// own width, and contained in the global universe; the protocol
// requires ℓ=2, the branching factor under which folds are
// pair-aligned.
func SliceParams(global lde.Params, lo, hi uint64) (lde.Params, error) {
	if global.Ell != 2 {
		return lde.Params{}, fmt.Errorf("sumcheck: partial provers require ℓ=2, have ℓ=%d", global.Ell)
	}
	if lo >= hi || hi > global.U {
		return lde.Params{}, fmt.Errorf("sumcheck: slice [%d,%d) outside universe %d", lo, hi, global.U)
	}
	width := hi - lo
	if width < 2 || width&(width-1) != 0 {
		return lde.Params{}, fmt.Errorf("sumcheck: slice width %d is not a power of two ≥ 2", width)
	}
	if lo%width != 0 {
		return lde.Params{}, fmt.Errorf("sumcheck: slice [%d,%d) is not aligned to its width", lo, hi)
	}
	return lde.Params{Ell: 2, D: bits.TrailingZeros64(width), U: width}, nil
}

// NewPartialProver builds the prover for the universe slice [lo, hi) of
// cfg.Params. Each table holds only the slice's hi−lo entries (the
// caller indexes globally at i ∈ [lo, hi) and stores at i−lo). The
// returned prover plays the first d−log₂(U/(hi−lo)) global rounds: its
// RoundMessage is this slice's exact partial of the global round
// message, and Fold applies the broadcast challenge. After its final
// fold, Leaves reads out the single remaining entry per table.
func NewPartialProver(cfg Config, lo, hi uint64, tables ...[]field.Elem) (*Prover, error) {
	sp, err := SliceParams(cfg.Params, lo, hi)
	if err != nil {
		return nil, err
	}
	scfg := cfg
	scfg.Params = sp
	return NewProver(scfg, tables...)
}

// Leaves returns the single remaining entry of each table once every
// round has been folded — the slice's contribution to the tail
// prover's tables. It fails if any fold is still pending.
func (p *Prover) Leaves() ([]field.Elem, error) {
	if p.round != p.cfg.Params.D {
		return nil, fmt.Errorf("sumcheck: leaves requested at round %d of %d", p.round, p.cfg.Params.D)
	}
	out := make([]field.Elem, len(p.tables))
	for t, tab := range p.tables {
		if len(tab) != 1 {
			return nil, fmt.Errorf("sumcheck: table %d folded to %d entries, want 1", t, len(tab))
		}
		out[t] = tab[0]
	}
	return out, nil
}

// NewTailProver resumes the global conversation from collected slice
// leaves: leaves[k] is slice k's Leaves() vector, in slice order. The
// returned prover's tables are exactly the global tables after the
// head rounds' folds, so its first RoundMessage is the next global
// round message with no further fold needed (the last head challenge
// was already folded in by every slice). cfg is the global
// configuration; only its field, combiner, and worker count are used.
func NewTailProver(cfg Config, leaves [][]field.Elem) (*Prover, error) {
	s := uint64(len(leaves))
	if s < 2 || s&(s-1) != 0 {
		return nil, fmt.Errorf("sumcheck: %d slices is not a power of two ≥ 2", s)
	}
	if cfg.Combiner == nil {
		return nil, fmt.Errorf("sumcheck: nil combiner")
	}
	arity := cfg.Combiner.Arity()
	tables := make([][]field.Elem, arity)
	for t := range tables {
		tables[t] = make([]field.Elem, s)
	}
	for k, leaf := range leaves {
		if len(leaf) != arity {
			return nil, fmt.Errorf("sumcheck: slice %d has %d leaves, want %d", k, len(leaf), arity)
		}
		for t, e := range leaf {
			tables[t][k] = e
		}
	}
	tcfg := cfg
	tcfg.Params = lde.Params{Ell: 2, D: bits.TrailingZeros64(s), U: s}
	return NewProver(tcfg, tables...)
}

// CombinePartials sums per-slice round messages elementwise in slice
// order. Because field addition is exact, the result is bit-identical
// to the message the single-table prover would send.
func CombinePartials(f field.Field, parts [][]field.Elem) ([]field.Elem, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("sumcheck: no partial messages to combine")
	}
	out := append([]field.Elem(nil), parts[0]...)
	for k := 1; k < len(parts); k++ {
		if len(parts[k]) != len(out) {
			return nil, fmt.Errorf("sumcheck: partial %d has %d evaluations, want %d", k, len(parts[k]), len(out))
		}
		f.AddSlices(out, out, parts[k])
	}
	return out, nil
}

// Package store is the durable checkpoint codec of the dataset engine.
//
// A checkpoint serializes the aggregate state a dataset's provers are
// built from — the dense count vector, Σδ, the ingested-update count,
// the universe size, and the field modulus — into one self-describing,
// checksummed file. The field image (elems) is deliberately not stored:
// it is a deterministic function of the counts (FromInt64 per entry), so
// rehydration recomputes it, halving the file and making it impossible
// for the two tables to disagree on disk.
//
// Layout (all integers little-endian):
//
//	magic    [8]byte  "SIPCKPT" + version byte
//	universe uint64   universe size as requested at dataset creation
//	modulus  uint64   field modulus the counts were ingested under
//	total    int64    Σδ over the ingested stream
//	updates  uint64   number of stream updates ingested
//	version  uint64   dataset version (ingest batches applied) — format ≥ 2
//	sliceLo  uint64   slice lower bound in the padded universe — format ≥ 3
//	sliceHi  uint64   slice upper bound (0 = whole-universe dataset) — format ≥ 3
//	nCounts  uint64   table length: ℓ^d ≥ universe, or sliceHi−sliceLo
//	counts   nCounts × int64
//	crc      uint32   CRC-32C over everything above
//
// A *slice* checkpoint (format ≥ 3, sliceHi > 0) is a dataset owning
// only the index range [sliceLo, sliceHi) of a split universe: universe
// still records the *global* universe size (the protocols are
// parameterized by it), while counts holds only the slice's
// sliceHi−sliceLo entries. For whole-universe checkpoints both slice
// fields are zero and the layout is otherwise identical to format 2.
//
// Format 1 files (no dataset-version field) still load; they report
// Version = Updates, an upper bound on any version the dataset could
// have reached (each ingest batch bumps the version by one and the
// update count by at least one), so a recovered dataset can never hand
// the proof cache a version key it already used for different data.
// Format 2 files load with zero slice fields.
//
// Save is atomic: the bytes are written to a temporary file in the
// destination directory, synced, and renamed over the target, so a crash
// mid-save leaves the previous checkpoint intact. Load rejects
// truncated, corrupt, version-bumped, and foreign-field files with the
// typed errors ErrCorrupt, ErrVersion, and ErrModulus — a recovery scan
// must never panic or silently accept a damaged table.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// magic identifies a checkpoint file; the trailing byte is the format
// version.
var magic = [8]byte{'S', 'I', 'P', 'C', 'K', 'P', 'T', version}

// version is the current checkpoint format version. versionLegacy is
// the oldest format Decode still reads.
const (
	version       = 3
	versionNoGaps = 2 // pre-slice format: no sliceLo/sliceHi fields
	versionLegacy = 1
)

// headerSize is the fixed prefix before the counts: magic + eight
// uint64 fields. The format-2 prefix lacked the slice-bound fields; the
// format-1 prefix additionally lacked the dataset-version field.
const (
	headerSize       = 8 + 8*8
	headerSizeV2     = 8 + 6*8
	headerSizeLegacy = 8 + 5*8
)

// crcSize is the trailing CRC-32C.
const crcSize = 4

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed load failures. Callers distinguish them with errors.Is.
var (
	// ErrCorrupt reports a truncated, mangled, or checksum-failing file.
	ErrCorrupt = errors.New("store: corrupt checkpoint")
	// ErrVersion reports a checkpoint written by an unknown format version.
	ErrVersion = errors.New("store: unsupported checkpoint version")
	// ErrModulus reports a checkpoint taken under a different field — its
	// counts are not meaningful in the caller's field.
	ErrModulus = errors.New("store: checkpoint field modulus mismatch")
)

// Checkpoint is the durable state of one dataset.
type Checkpoint struct {
	Universe uint64  // global universe size as requested at creation (pre-padding)
	Modulus  uint64  // field modulus the dataset was ingested under
	Total    int64   // Σδ over the ingested stream
	Updates  uint64  // stream updates ingested
	Version  uint64  // dataset version: ingest batches applied (see package doc)
	SliceLo  uint64  // slice lower bound in the padded universe (0 for whole datasets)
	SliceHi  uint64  // slice upper bound; 0 means a whole-universe dataset
	Counts   []int64 // dense frequency vector: padded to ℓ^d ≥ Universe, or the slice's width
}

// Slice reports whether the checkpoint holds a universe slice rather
// than a whole dataset.
func (c *Checkpoint) Slice() bool { return c.SliceHi != 0 }

// Encode serializes the checkpoint.
func Encode(c *Checkpoint) []byte {
	out := make([]byte, headerSize+8*len(c.Counts)+crcSize)
	copy(out[:8], magic[:])
	binary.LittleEndian.PutUint64(out[8:], c.Universe)
	binary.LittleEndian.PutUint64(out[16:], c.Modulus)
	binary.LittleEndian.PutUint64(out[24:], uint64(c.Total))
	binary.LittleEndian.PutUint64(out[32:], c.Updates)
	binary.LittleEndian.PutUint64(out[40:], c.Version)
	binary.LittleEndian.PutUint64(out[48:], c.SliceLo)
	binary.LittleEndian.PutUint64(out[56:], c.SliceHi)
	binary.LittleEndian.PutUint64(out[64:], uint64(len(c.Counts)))
	off := headerSize
	for _, v := range c.Counts {
		binary.LittleEndian.PutUint64(out[off:], uint64(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(out[off:], crc32.Checksum(out[:off], castagnoli))
	return out
}

// Decode parses a checkpoint, verifying structure and checksum. A
// non-zero wantModulus additionally requires the checkpoint's field to
// match (ErrModulus otherwise). Decode never allocates more than the
// input's own size, so it is safe on untrusted bytes.
func Decode(b []byte, wantModulus uint64) (*Checkpoint, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorrupt, len(b), headerSizeLegacy+crcSize)
	}
	if [7]byte(b[:7]) != [7]byte(magic[:7]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	hdr := headerSize
	switch b[7] {
	case version:
	case versionNoGaps:
		hdr = headerSizeV2
	case versionLegacy:
		hdr = headerSizeLegacy
	default:
		return nil, fmt.Errorf("%w: version %d, this build reads %d–%d", ErrVersion, b[7], versionLegacy, version)
	}
	if len(b) < hdr+crcSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorrupt, len(b), hdr+crcSize)
	}
	body, crc := b[:len(b)-crcSize], binary.LittleEndian.Uint32(b[len(b)-crcSize:])
	if got := crc32.Checksum(body, castagnoli); got != crc {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, crc)
	}
	c := &Checkpoint{
		Universe: binary.LittleEndian.Uint64(b[8:]),
		Modulus:  binary.LittleEndian.Uint64(b[16:]),
		Total:    int64(binary.LittleEndian.Uint64(b[24:])),
		Updates:  binary.LittleEndian.Uint64(b[32:]),
	}
	countsAt := hdr - 8
	if b[7] == versionLegacy {
		// Format 1 stored no version; Updates is a safe monotone stand-in
		// (see the package doc).
		c.Version = c.Updates
	} else {
		c.Version = binary.LittleEndian.Uint64(b[40:])
	}
	if b[7] == version {
		c.SliceLo = binary.LittleEndian.Uint64(b[48:])
		c.SliceHi = binary.LittleEndian.Uint64(b[56:])
	}
	nCounts := binary.LittleEndian.Uint64(b[countsAt:])
	if want := uint64(len(body) - hdr); nCounts*8 != want || nCounts > want {
		return nil, fmt.Errorf("%w: %d counts in a %d-byte body", ErrCorrupt, nCounts, len(body)-hdr)
	}
	if c.Slice() {
		// A slice's counts cover [SliceLo, SliceHi) of the padded global
		// universe, so the table is the slice width, not the universe. The
		// width/alignment discipline mirrors sumcheck.SliceParams; deeper
		// validation against the dataset's parameterization is the
		// engine's job at adoption time.
		width := c.SliceHi - c.SliceLo
		if c.SliceLo >= c.SliceHi {
			return nil, fmt.Errorf("%w: slice [%d,%d) is empty", ErrCorrupt, c.SliceLo, c.SliceHi)
		}
		if width != nCounts {
			return nil, fmt.Errorf("%w: slice [%d,%d) has width %d but %d counts", ErrCorrupt, c.SliceLo, c.SliceHi, width, nCounts)
		}
		if width < 2 || width&(width-1) != 0 || c.SliceLo%width != 0 {
			return nil, fmt.Errorf("%w: slice [%d,%d) is not width-aligned power of two", ErrCorrupt, c.SliceLo, c.SliceHi)
		}
	} else if c.Universe > nCounts {
		return nil, fmt.Errorf("%w: universe %d exceeds table length %d", ErrCorrupt, c.Universe, nCounts)
	}
	if wantModulus != 0 && c.Modulus != wantModulus {
		return nil, fmt.Errorf("%w: file has p=%d, engine has p=%d", ErrModulus, c.Modulus, wantModulus)
	}
	c.Counts = make([]int64, nCounts)
	off := hdr
	for i := range c.Counts {
		c.Counts[i] = int64(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return c, nil
}

// Save writes the checkpoint to path atomically: encode, write to a
// temporary file in the same directory, fsync, rename, fsync the
// directory. A crash at any point leaves either the old file or the new
// one, never a torn mix — and a returned nil means the new file (its
// directory entry included) is durably on disk, which is what lets the
// engine free tables immediately after an eviction save.
func Save(path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(Encode(c)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Load reads and decodes the checkpoint at path. Structural damage
// surfaces as ErrCorrupt/ErrVersion, a field mismatch as ErrModulus
// (when wantModulus is non-zero); missing files surface as the
// underlying fs error (os.IsNotExist distinguishes them).
func Load(path string, wantModulus uint64) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Decode(b, wantModulus)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

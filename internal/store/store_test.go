package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func sample() *Checkpoint {
	counts := make([]int64, 16)
	for i := range counts {
		counts[i] = int64(i*i) - 7
	}
	return &Checkpoint{
		Universe: 13,
		Modulus:  (1 << 61) - 1,
		Total:    1234,
		Updates:  99,
		Version:  17,
		Counts:   counts,
	}
}

func sameCheckpoint(t *testing.T, got, want *Checkpoint) {
	t.Helper()
	if got.Universe != want.Universe || got.Modulus != want.Modulus ||
		got.Total != want.Total || got.Updates != want.Updates ||
		got.Version != want.Version {
		t.Fatalf("header round-trip: got %+v, want %+v", got, want)
	}
	if len(got.Counts) != len(want.Counts) {
		t.Fatalf("counts length %d, want %d", len(got.Counts), len(want.Counts))
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, got.Counts[i], want.Counts[i])
		}
	}
}

// TestSaveLoadRoundTrip: save→load is exact, through the filesystem.
func TestSaveLoadRoundTrip(t *testing.T) {
	want := sample()
	path := filepath.Join(t.TempDir(), "ds.ckpt")
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, want.Modulus)
	if err != nil {
		t.Fatal(err)
	}
	sameCheckpoint(t, got, want)
	// A second save over the same path replaces it atomically.
	want.Counts[3] = 42
	want.Updates++
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path, want.Modulus)
	if err != nil {
		t.Fatal(err)
	}
	sameCheckpoint(t, got, want)
	// No stray temporaries left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("checkpoint dir holds %d files, want 1", len(ents))
	}
}

// TestLoadRejections: every class of damaged file is refused with its
// typed error, never a panic.
func TestLoadRejections(t *testing.T) {
	good := Encode(sample())
	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrCorrupt},
		{"short-header", func(b []byte) []byte { return b[:20] }, ErrCorrupt},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)-9] }, ErrCorrupt},
		{"truncated-crc", func(b []byte) []byte { return b[:len(b)-1] }, ErrCorrupt},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xee) }, ErrCorrupt},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrCorrupt},
		{"flipped-count-bit", func(b []byte) []byte { b[headerSize+5] ^= 1; return b }, ErrCorrupt},
		{"flipped-header-bit", func(b []byte) []byte { b[9] ^= 1; return b }, ErrCorrupt},
		{"version-bump", func(b []byte) []byte { b[7] = version + 1; return b }, ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mangle(append([]byte(nil), good...))
			path := filepath.Join(t.TempDir(), "bad.ckpt")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Load(path, 0); !errors.Is(err, tc.want) {
				t.Fatalf("Load = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestLoadWrongModulus: a checkpoint taken under another field is
// structurally valid but semantically foreign.
func TestLoadWrongModulus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ds.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, 2147483647); !errors.Is(err, ErrModulus) {
		t.Fatalf("Load under a foreign field = %v, want ErrModulus", err)
	}
	// wantModulus = 0 skips the check (the caller inspects the field).
	if _, err := Load(path, 0); err != nil {
		t.Fatalf("Load with modulus check disabled: %v", err)
	}
}

// TestLoadMissingFile: absence is an fs error, not a corruption error.
func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.ckpt"), 0)
	if err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of a missing file = %v, want a plain fs error", err)
	}
	if !os.IsNotExist(err) {
		t.Fatalf("Load of a missing file = %v, want os.IsNotExist", err)
	}
}

// TestDecodeCountsLengthMismatch: a header advertising more counts than
// the body holds must not over-allocate or over-read.
func TestDecodeCountsLengthMismatch(t *testing.T) {
	b := Encode(sample())
	// Rewrite nCounts to a huge value and re-stamp nothing: the CRC check
	// fires first; then hand-craft a version where the CRC is "valid" to
	// reach the length check.
	if _, err := Decode(b[:headerSize+crcSize], 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("body/count mismatch accepted: %v", err)
	}
}

// TestDecodeLegacyV1: a format-1 file (no dataset-version field) still
// loads, reporting Version = Updates — the monotone-safe stand-in that
// keeps recovered cache keys fresh.
func TestDecodeLegacyV1(t *testing.T) {
	want := sample()
	v3 := Encode(want)
	// Rebuild the same checkpoint in the v1 layout: drop the version and
	// slice fields (bytes [40,64)), stamp format byte 1, re-checksum.
	v1 := append([]byte(nil), v3[:40]...)
	v1 = append(v1, v3[64:len(v3)-crcSize]...)
	v1[7] = versionLegacy
	crc := crc32.Checksum(v1, castagnoli)
	v1 = binary.LittleEndian.AppendUint32(v1, crc)
	got, err := Decode(v1, want.Modulus)
	if err != nil {
		t.Fatalf("Decode of a v1 file: %v", err)
	}
	if got.Version != want.Updates {
		t.Fatalf("v1 Version = %d, want Updates = %d", got.Version, want.Updates)
	}
	want.Version = want.Updates
	sameCheckpoint(t, got, want)
}

// TestDecodeV2: a format-2 file (no slice fields) still loads, with
// zero slice bounds.
func TestDecodeV2(t *testing.T) {
	want := sample()
	v3 := Encode(want)
	// Rebuild in the v2 layout: drop the slice fields (bytes [48,64)),
	// stamp format byte 2, re-checksum.
	v2 := append([]byte(nil), v3[:48]...)
	v2 = append(v2, v3[64:len(v3)-crcSize]...)
	v2[7] = versionNoGaps
	crc := crc32.Checksum(v2, castagnoli)
	v2 = binary.LittleEndian.AppendUint32(v2, crc)
	got, err := Decode(v2, want.Modulus)
	if err != nil {
		t.Fatalf("Decode of a v2 file: %v", err)
	}
	if got.Slice() || got.SliceLo != 0 || got.SliceHi != 0 {
		t.Fatalf("v2 file decoded with slice bounds [%d,%d)", got.SliceLo, got.SliceHi)
	}
	sameCheckpoint(t, got, want)
}

// TestSliceRoundTrip: a slice checkpoint — counts covering only
// [SliceLo, SliceHi) of a larger universe — survives save→load, and
// malformed slice geometry is refused typed.
func TestSliceRoundTrip(t *testing.T) {
	counts := make([]int64, 8)
	for i := range counts {
		counts[i] = int64(3*i) - 5
	}
	want := &Checkpoint{
		Universe: 29, // padded global universe is 32; this slice owns [8,16)
		Modulus:  (1 << 61) - 1,
		Total:    77,
		Updates:  12,
		Version:  5,
		SliceLo:  8,
		SliceHi:  16,
		Counts:   counts,
	}
	path := filepath.Join(t.TempDir(), "slice.ckpt")
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, want.Modulus)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Slice() || got.SliceLo != 8 || got.SliceHi != 16 {
		t.Fatalf("slice bounds = [%d,%d), want [8,16)", got.SliceLo, got.SliceHi)
	}
	sameCheckpoint(t, got, want)

	bad := []struct {
		name   string
		mangle func(*Checkpoint)
	}{
		{"width-mismatch", func(c *Checkpoint) { c.SliceHi = 24 }},
		{"empty-slice", func(c *Checkpoint) { c.SliceLo, c.SliceHi, c.Counts = 16, 16, nil }},
		{"unaligned", func(c *Checkpoint) { c.SliceLo, c.SliceHi = 4, 12 }},
		{"width-one", func(c *Checkpoint) { c.SliceLo, c.SliceHi, c.Counts = 8, 9, counts[:1] }},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			c := *want
			c.Counts = append([]int64(nil), want.Counts...)
			tc.mangle(&c)
			if _, err := Decode(Encode(&c), 0); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode of a %s slice = %v, want ErrCorrupt", tc.name, err)
			}
		})
	}
}

// FuzzLoadCheckpoint: Decode must never panic on arbitrary bytes, and
// anything it accepts must re-encode to a decodable checkpoint with the
// same contents.
func FuzzLoadCheckpoint(f *testing.F) {
	good := Encode(sample())
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(good[:headerSize])
	f.Add([]byte{})
	mut := append([]byte(nil), good...)
	mut[7] = 9
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data, 0)
		if err != nil {
			return
		}
		c2, err := Decode(Encode(c), c.Modulus)
		if err != nil {
			t.Fatalf("re-encode of an accepted checkpoint rejected: %v", err)
		}
		if c2.Universe != c.Universe || c2.Modulus != c.Modulus || c2.Total != c.Total ||
			c2.Updates != c.Updates || c2.Version != c.Version || len(c2.Counts) != len(c.Counts) ||
			c2.SliceLo != c.SliceLo || c2.SliceHi != c.SliceHi {
			t.Fatal("re-encode round-trip drifted")
		}
	})
}

// Checkpoint file naming: the mapping between dataset names (arbitrary
// UTF-8, up to the wire layer's 255 bytes) and filesystem-safe file
// names in a data dir. The engine and the shard router share this
// mapping — a router moving a checkpoint between shard data dirs must
// produce exactly the file name the target engine's Adopt will look
// for.
package store

import (
	"encoding/base64"
	"fmt"
	"strings"
)

// CkptExt is the checkpoint file suffix in a data dir.
const CkptExt = ".ckpt"

// DatasetFile maps a dataset name to its checkpoint file name
// (base64url of the name, plus CkptExt).
func DatasetFile(name string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(name)) + CkptExt
}

// DatasetName inverts DatasetFile.
func DatasetName(file string) (string, error) {
	b, err := base64.RawURLEncoding.DecodeString(strings.TrimSuffix(file, CkptExt))
	if err != nil {
		return "", fmt.Errorf("store: %q is not a checkpoint file name: %w", file, err)
	}
	return string(b), nil
}

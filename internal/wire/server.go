// The prover service: listener lifecycle, per-connection read loop, and
// the serial (pre-mux) conversation path. Frame legality is delegated
// to FlowState (seam.go) and byte layouts to the frames codec; this
// file owns policy — admission, budgets, dataset lifecycle, and the
// admin plane (handoff/adopt/stats).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/proofcache"
)

// Server is the cloud-side prover service. Datasets are maintained
// aggregate state: per-connection for the v1 flow, shared through Engine
// for the v2 named-dataset flow. Provers are constructed from snapshots —
// the stream is ingested once and never replayed.
type Server struct {
	F field.Field
	// Workers is handed to every prover the server builds: 0 proves each
	// query serially, n > 0 fans the prover's table scans across n
	// goroutines, n < 0 uses runtime.NumCPU(). Transcripts are identical
	// either way; only latency changes.
	Workers int
	// Engine holds the named datasets served to v2 connections. Leave nil
	// to have the server create one on first use; share one Engine to
	// serve the same datasets from several listeners.
	Engine *engine.Engine
	// IdleTimeout bounds how long the server waits for the next frame
	// from (or write to) a client before abandoning the connection, so a
	// stalled or malicious peer cannot pin a handler goroutine forever.
	// Zero means no deadline.
	IdleTimeout time.Duration
	// MaxUniverse caps the universe size a client may announce with
	// hello or open — a dataset allocates 16 bytes per universe entry up
	// front, so without a cap one cheap frame could exhaust server
	// memory. Zero selects DefaultMaxUniverse.
	MaxUniverse uint64
	// MaxPrivateDatasets caps how many v1 connections may hold a private
	// dataset at once. Zero selects DefaultMaxPrivateDatasets; negative
	// means no cap. It is a backstop: each v1 dataset's tables are also
	// charged against the engine's Σ budget (MemBudget) at hello and
	// released when the connection ends, so byte-level governance does
	// not depend on this count.
	MaxPrivateDatasets int
	// MaxConcurrentQueries caps the multiplexed query conversations in
	// flight per connection. An excess channel open is refused with a
	// per-channel budget frame (the conversation fails typed as
	// ErrBudget client-side; the connection and its other conversations
	// continue). Zero selects DefaultMaxConcurrentQueries; negative
	// means no cap.
	MaxConcurrentQueries int
	// MemBudget caps the engine's aggregate resident dataset memory in
	// bytes (engine.SetBudget). When admission would exceed it, LRU
	// datasets are evicted to DataDir; with no DataDir the open or
	// ingest fails with a budget error frame. Zero means unlimited.
	MemBudget int64
	// DataDir is the checkpoint directory. When set, Serve configures
	// the engine with it and recovers every checkpointed dataset before
	// accepting connections, so a restarted server answers queries over
	// its previous datasets with no re-ingestion.
	DataDir string
	// CheckpointEvery starts the engine's background checkpointer at
	// that interval (requires DataDir): a crash loses at most the last
	// interval of ingestion. Zero disables background checkpointing.
	CheckpointEvery time.Duration
	// ProofCacheBudget caps the bytes of encoded Fiat–Shamir proofs the
	// server keeps for PROOF requests (see proof.go): one proof is
	// generated per (dataset, version, query) and served to every
	// verifier that asks. Zero selects DefaultProofCacheBudget; negative
	// disables storage (requests still single-flight, nothing is kept).
	ProofCacheBudget int64
	// Corrupt, when non-nil, rewrites a clone of the maintained counts
	// before proving — a hook for the dishonest-cloud experiments and
	// tests. It applies to v1 connections only and costs O(u), not
	// O(stream): no raw stream is retained anywhere in the server.
	Corrupt func(counts []int64) []int64

	proofCache *proofcache.Cache // lazily built by proofCacheRef; guarded by mu
	mu         sync.Mutex
	lns        map[net.Listener]struct{} // every listener currently being served
	closed     bool
	inited     bool                  // engine configured (budget/data dir/recovery) by Serve
	ownEngine  bool                  // engine was created by this server (Close may close it)
	hooked     bool                  // proof-cache drop hook registered on the engine
	v1Alive    int                   // v1 connections currently holding a private dataset
	conns      map[net.Conn]struct{} // connections with a live handler
	handlers   sync.WaitGroup        // one per handler goroutine; drained by Close

	recovered     int      // datasets recovered from DataDir at startup
	recoveryFails []string // per-file failures of a partial recovery
}

// Serve accepts connections until the listener closes. Each connection is
// served on its own goroutine. Before accepting, Serve applies the
// server's resource/durability configuration to the engine (MemBudget,
// DataDir with a recovery scan, CheckpointEvery); a failed recovery
// refuses to serve rather than silently dropping datasets. After an
// intentional Close, Serve returns ErrServerClosed rather than the
// listener's "use of closed network connection" error.
func (s *Server) Serve(ln net.Listener) error {
	// As in net/http, Serve on an already-closed server refuses without
	// touching (or registering) the caller's listener — a later Close must
	// not close a listener the server never served.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	// Every listener being served is tracked in a set: Serve may be
	// called concurrently on several listeners (sharing one engine), and
	// Close must stop all of them, not just the most recent.
	if s.lns == nil {
		s.lns = make(map[net.Listener]struct{})
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	if err := s.engineInit(); err != nil {
		// A Serve that never accepted must not leave the listener
		// registered: per the contract above, a later Close closes only
		// listeners the server actually served.
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			if !closed {
				// The listener died on its own; it is no longer served,
				// so a later Close must not touch it.
				delete(s.lns, ln)
			}
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			// Close already snapshotted the registry; don't start a
			// handler it would not drain.
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.handlers.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				typ := byte(frameError)
				if errors.Is(err, engine.ErrBudget) {
					typ = frameBudget
				}
				_ = s.write(conn, typ, []byte(err.Error()))
			}
		}()
	}
}

// engineInit configures the engine once per server: budget, data dir,
// startup recovery of checkpointed datasets, background checkpointing.
// It runs under the server lock, so Serve never accepts before recovery
// finishes, and inited is set only on success — a failed init (say, an
// unwritable data dir) is retried by the next Serve instead of being
// silently skipped.
func (s *Server) engineInit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inited {
		return nil
	}
	if s.Engine == nil {
		s.Engine = engine.New(s.F, s.Workers)
		s.Engine.SetMaxDatasets(DefaultMaxDatasets)
		s.ownEngine = true
	}
	eng := s.Engine
	s.hookEngineLocked(eng)
	if s.MemBudget > 0 {
		eng.SetBudget(s.MemBudget)
	}
	if s.DataDir != "" {
		if err := eng.SetDataDir(s.DataDir); err != nil {
			return fmt.Errorf("wire: data dir: %w", err)
		}
		n, err := eng.Recover()
		s.recovered = n
		if err != nil {
			if !errors.Is(err, engine.ErrPartialRecovery) {
				// A damaged file must not take the server down (its healthy
				// datasets were still registered — skip semantics); only a
				// scan-level failure refuses to serve.
				return fmt.Errorf("wire: recovering datasets: %w", err)
			}
			// A half-recovered shard must be visible to the operator, not
			// just logged and forgotten: retain each file's failure for
			// Stats() and the startup log.
			s.recoveryFails = recoveryFailures(err)
		}
		if s.CheckpointEvery > 0 {
			if err := eng.StartCheckpointer(s.CheckpointEvery); err != nil && !errors.Is(err, engine.ErrCheckpointerRunning) {
				// Already-running is fine: another listener sharing this
				// engine started it.
				return fmt.Errorf("wire: checkpointer: %w", err)
			}
		}
	}
	s.inited = true
	return nil
}

// hookEngineLocked registers the proof-cache invalidation hook on the
// engine, once: a dropped-and-recreated dataset restarts its version
// counter, so any proof cached under the old life's (name, version,
// query) keys would answer for different data. Caller holds s.mu.
func (s *Server) hookEngineLocked(eng *engine.Engine) {
	if s.hooked {
		return
	}
	s.hooked = true
	eng.OnDrop(func(name string) {
		s.proofCacheRef().DropDataset(name)
	})
}

// recoveryFailures flattens an ErrPartialRecovery chain into one string
// per unrecovered file.
func recoveryFailures(err error) []string {
	var out []string
	var walk func(e error, depth int)
	walk = func(e error, depth int) {
		if e == nil || errors.Is(engine.ErrPartialRecovery, e) || depth > 4 {
			return
		}
		if u, ok := e.(interface{ Unwrap() []error }); ok {
			for _, c := range u.Unwrap() {
				walk(c, depth+1)
			}
			return
		}
		out = append(out, e.Error())
	}
	walk(err, 0)
	return out
}

// Close stops every served listener, closes every live connection, and waits for
// the handler goroutines to drain before any final persistence; a Serve
// in flight (or started later) returns ErrServerClosed. Close is
// idempotent — each served listener is closed at most once. If this
// server created its own engine and configured persistence (DataDir),
// Close then also closes the engine — the background checkpointer stops
// and dirty datasets are persisted one final time. Because the drain
// happens first, no handler can be mid-IngestColumns when that final
// persist runs: every batch folded (and, on v2, acknowledged) before
// shutdown is captured, making an orderly shutdown genuinely loss-free.
// A caller-supplied Engine is left running (it may be shared with other
// listeners); its owner calls engine.Close — after this Close returns,
// with no handler still folding.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	s.lns = nil
	eng := s.Engine
	persist := s.ownEngine && s.inited && s.DataDir != ""
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var lnErr error
	for _, ln := range lns {
		lnErr = errors.Join(lnErr, ln.Close())
	}
	// Interrupt handlers blocked on socket reads (a closed conn fails the
	// next read; an in-flight IngestColumns still completes), then wait
	// them all out.
	for _, c := range conns {
		_ = c.Close()
	}
	s.handlers.Wait()
	if persist && eng != nil {
		if err := eng.Close(); err != nil {
			return err
		}
	}
	return lnErr
}

// engineRef returns the shared engine, creating it (with the default
// dataset cap) on first use.
func (s *Server) engineRef() *engine.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Engine == nil {
		s.Engine = engine.New(s.F, s.Workers)
		s.Engine.SetMaxDatasets(DefaultMaxDatasets)
		s.ownEngine = true
	}
	s.hookEngineLocked(s.Engine)
	return s.Engine
}

// checkUniverse enforces the server's universe-size cap.
func (s *Server) checkUniverse(u uint64) error {
	limit := s.MaxUniverse
	if limit == 0 {
		limit = DefaultMaxUniverse
	}
	if u > limit {
		return fmt.Errorf("%w: universe %d exceeds the server limit %d", ErrProtocol, u, limit)
	}
	return nil
}

// acquireV1 reserves a private-dataset slot for a v1 connection;
// releaseV1 returns it when the connection ends. Exhaustion is a
// resource refusal ("server full, retry later"), not a protocol
// violation, so it is typed ErrBudget and travels as a budget frame.
func (s *Server) acquireV1() error {
	limit := s.MaxPrivateDatasets
	if limit == 0 {
		limit = DefaultMaxPrivateDatasets
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit > 0 && s.v1Alive >= limit {
		return fmt.Errorf("%w: too many concurrent private datasets (limit %d)", ErrBudget, limit)
	}
	s.v1Alive++
	return nil
}

func (s *Server) releaseV1() {
	s.mu.Lock()
	s.v1Alive--
	s.mu.Unlock()
}

// read receives one frame, applying the idle deadline.
func (s *Server) read(conn net.Conn) (byte, []byte, error) {
	if s.IdleTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
			return 0, nil, err
		}
	}
	return readFrame(conn)
}

// write sends one frame, applying the idle deadline.
func (s *Server) write(conn net.Conn, typ byte, payload []byte) error {
	if s.IdleTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
			return err
		}
	}
	return writeFrame(conn, typ, payload)
}

// handle is one connection's read loop. Frame legality is FlowState's
// (the same machine the shard router runs at its edge); each case body
// owns only the frame's work.
func (s *Server) handle(conn net.Conn) error {
	var flow FlowState
	var ds *engine.Dataset // v1: private; v2: shared named dataset
	v1Slot := false
	var v1Bytes int64 // budget reservation held by this connection's private dataset
	mux := newConnMux(s, conn)
	defer func() {
		// Unblock and drain this connection's conversation goroutines
		// before the handler's caller writes any final error frame or
		// closes the socket.
		mux.shutdown()
		if v1Bytes > 0 {
			s.engineRef().ReleaseBytes(v1Bytes)
		}
		if v1Slot {
			s.releaseV1()
			// A v1 private dataset is anonymous and can never reach the
			// proof cache (proofFetch refuses the flow before the cache is
			// touched), but its release mirrors the named-dataset drop path
			// defensively: if a private-dataset cache path ever appears,
			// its entries die with the connection instead of leaking across
			// connections under the empty name.
			s.mu.Lock()
			pc := s.proofCache
			s.mu.Unlock()
			if pc != nil {
				pc.DropDataset("")
			}
		}
	}()
	for {
		typ, payload, err := s.read(conn)
		if err != nil {
			return err
		}
		if err := flow.Advance(typ); err != nil {
			return err
		}
		switch typ {
		case frameHello:
			if len(payload) != 8 {
				return fmt.Errorf("%w: hello frame", ErrProtocol)
			}
			u := binary.LittleEndian.Uint64(payload)
			if err := s.checkUniverse(u); err != nil {
				return err
			}
			if err := s.acquireV1(); err != nil {
				return err
			}
			v1Slot = true
			// The private dataset's tables are charged against the same Σ
			// budget as the named datasets (LRU names may be evicted to
			// admit it); the reservation is released when the connection
			// ends. A refusal reaches the client as a budget frame.
			cost, err := engine.TableCost(u)
			if err != nil {
				return err
			}
			if err := s.engineRef().AdmitBytes(cost); err != nil {
				return err
			}
			v1Bytes = cost
			// Honest or cheating, the connection maintains only the dense
			// aggregate state: O(u) memory, independent of stream length.
			if ds, err = engine.NewDataset(s.F, u, s.Workers); err != nil {
				return err
			}
			if err := mux.write(frameOK, encodeCount(0)); err != nil {
				return err
			}
		case frameOpen:
			name, uu, err := decodeOpen(payload)
			if err != nil {
				return err
			}
			if err := s.checkUniverse(uu); err != nil {
				return err
			}
			if ds, err = s.engineRef().Open(name, uu); err != nil {
				return err
			}
			if err := mux.write(frameOK, encodeCount(ds.Updates())); err != nil {
				return err
			}
		case frameOpenSlice:
			name, globalU, lo, hi, err := decodeOpenSlice(payload)
			if err != nil {
				return err
			}
			// The universe cap governs what this server allocates, so it
			// applies to the slice width, not the global universe the slice
			// belongs to — splitting is exactly how a dataset bigger than any
			// one server gets served. Inverted bounds fall through to the
			// engine's geometry validation for the typed refusal.
			if hi > lo {
				if err := s.checkUniverse(hi - lo); err != nil {
					return err
				}
			}
			if ds, err = s.engineRef().OpenSlice(name, globalU, lo, hi); err != nil {
				return err
			}
			if err := mux.write(frameOK, encodeCount(ds.Updates())); err != nil {
				return err
			}
		case frameUpdates:
			idx, deltas, err := decodeUpdateColumns(payload)
			if err != nil {
				return err
			}
			if err := ds.IngestColumns(idx, deltas); err != nil {
				return err
			}
			if !flow.V1() {
				if err := mux.write(frameOK, encodeCount(ds.Updates())); err != nil {
					return err
				}
			}
		case frameEndStream:
			// The ack closes the v1 upload's only unacknowledged window:
			// any ingest failure has already killed the connection by now,
			// so a client that reads this OK knows every batch folded.
			if err := mux.write(frameOK, encodeCount(ds.Updates())); err != nil {
				return err
			}
		case frameQuery:
			kind, params, err := decodeQuery(payload)
			if err != nil {
				return err
			}
			// Snapshots rehydrate evicted datasets transparently; the
			// admission control inside can refuse with a budget error.
			snap, err := ds.SnapshotErr()
			if err != nil {
				return err
			}
			session, err := s.buildSession(snap, ds, flow.st, kind, params)
			if err != nil {
				return err
			}
			if err := s.converse(conn, mux, session); err != nil {
				return err
			}
		case frameQueryCh, frameChallengeCh, frameFinishCh, frameProofReqCh, framePartialQueryCh:
			if err := mux.dispatch(typ, payload, ds, flow.st); err != nil {
				return err
			}
		case frameHandoff:
			name, err := decodeName(payload)
			if err != nil {
				return err
			}
			n, err := s.engineRef().Release(name)
			if err != nil {
				return err
			}
			if err := mux.write(frameOK, encodeCount(n)); err != nil {
				return err
			}
		case frameAdopt:
			name, err := decodeName(payload)
			if err != nil {
				return err
			}
			n, err := s.engineRef().Adopt(name)
			if err != nil {
				return err
			}
			if err := mux.write(frameOK, encodeCount(n)); err != nil {
				return err
			}
		case frameStatsReq:
			b, err := json.Marshal(s.Stats())
			if err != nil {
				return err
			}
			if err := mux.write(frameStatsResp, b); err != nil {
				return err
			}
		}
	}
}

// buildSession constructs the prover session for one query from an
// already-taken snapshot — shared by the serial and multiplexed
// conversation paths so they can never diverge. On the v1 path a
// configured Corrupt hook rewrites a clone of the maintained counts
// first — the dishonest cloud proves from doctored state.
func (s *Server) buildSession(snap *engine.Snapshot, ds *engine.Dataset, st connState, kind QueryKind, params QueryParams) (core.ProverSession, error) {
	if st == connV1Done && s.Corrupt != nil {
		counts := s.Corrupt(append([]int64(nil), snap.Counts()...))
		var err error
		if snap, err = engine.SnapshotFromCounts(s.F, ds.UniverseSize(), s.Workers, counts); err != nil {
			return nil, err
		}
	}
	return snap.NewProver(kind, params)
}

// converse drives one serial (pre-mux) query conversation from the
// prover side: the read loop is parked here until the client finishes.
func (s *Server) converse(conn net.Conn, mux *connMux, p core.ProverSession) error {
	opening, err := p.Open()
	if err != nil {
		return err
	}
	if err := mux.write(frameProver, encodeMsg(opening)); err != nil {
		return err
	}
	for {
		typ, payload, err := s.read(conn)
		if err != nil {
			return err
		}
		switch typ {
		case frameFinish:
			return nil
		case frameChallenge:
			ch, err := decodeMsg(payload)
			if err != nil {
				return err
			}
			resp, err := p.Step(ch)
			if err != nil {
				return err
			}
			if err := mux.write(frameProver, encodeMsg(resp)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected frame 0x%02x mid-conversation", ErrProtocol, typ)
		}
	}
}

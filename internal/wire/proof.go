// Non-interactive replay over the wire: the PROOF frame pair.
//
// A proof request (frameProofReqCh) names a query and a dataset version
// (0 = current); the server answers with the posted Fiat–Shamir proof
// for that (dataset, version, query) — generated once, cached in a
// byte-budgeted LRU (internal/proofcache), and served to every verifier
// that asks. k concurrent verifiers of one query cost one prover run:
// the cache single-flights concurrent misses, so fan-out reads are
// cache hits rather than k interactive conversations.
//
// The exchange is one-shot request/response on an ordinary mux channel
// id: no channel state is registered on either side, errors travel as
// the usual per-channel error/budget frames, and the connection's other
// conversations and ingestion continue around it. Only the v2
// named-dataset flow posts proofs — a v1 private dataset has no stable
// identity to key the shared cache with.
package wire

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fs"
	"repro/internal/proofcache"
)

// DefaultProofCacheBudget is the proof-cache byte cap applied when
// Server.ProofCacheBudget is zero. Proofs are O(log u · log n) words, so
// this holds tens of thousands of distinct (version, query) entries.
const DefaultProofCacheBudget = 64 << 20

// ---------------------------------------------------------------------
// Server side

// proofCacheRef returns the shared proof cache, creating it on first
// use.
func (s *Server) proofCacheRef() *proofcache.Cache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.proofCache == nil {
		budget := s.ProofCacheBudget
		if budget == 0 {
			budget = DefaultProofCacheBudget
		}
		s.proofCache = proofcache.New(budget)
	}
	return s.proofCache
}

// ServerStats is a point-in-time snapshot of the server's operational
// counters. It is the payload of the StatsReq/StatsResp admin exchange
// (JSON-encoded on the wire), so fields must stay JSON-representable.
type ServerStats struct {
	ProofCache proofcache.Stats

	// DatasetsRecovered counts the checkpoints loaded by the startup
	// Recover pass on this server's engine.
	DatasetsRecovered int
	// RecoveryFailures lists the per-file errors from a partial recovery
	// (engine.ErrPartialRecovery): checkpoints that exist on disk but
	// could not be loaded. Empty when recovery was clean.
	RecoveryFailures []string `json:",omitempty"`

	// Shards carries the per-backend breakdown when the stats reply was
	// assembled by an aggregating router rather than a single server: the
	// top-level counters are sums across all backends (plus the router's
	// own split-proof cache, reported as the "router" entry). A plain
	// server never sets it, and clients that predate it ignore the extra
	// JSON field.
	Shards map[string]ServerStats `json:",omitempty"`
}

// Stats returns the server's counters — the proof cache's
// hit/miss/eviction/coalescing accounting plus the startup recovery
// outcome.
func (s *Server) Stats() ServerStats {
	st := ServerStats{ProofCache: s.proofCacheRef().Stats()}
	s.mu.Lock()
	st.DatasetsRecovered = s.recovered
	st.RecoveryFailures = append([]string(nil), s.recoveryFails...)
	s.mu.Unlock()
	return st
}

// proofFetch serves one PROOF request. The snapshot is taken
// synchronously in the read loop — same arrival-order guarantee as a
// query open: the proof covers exactly the batches acknowledged before
// the request. Cache lookup and (on a miss) proof generation then run
// in their own goroutine, so a miss never stalls the connection's other
// traffic.
func (m *connMux) proofFetch(id uint32, body []byte, ds *engine.Dataset, st connState) error {
	version, kind, params, err := decodeProofReq(body)
	if err != nil {
		return err
	}
	if st != connV2 {
		// A v1 private dataset is anonymous: distinct connections' data
		// would collide under one cache key. Interactive queries remain
		// available; refuse just this channel.
		return m.write(frameErrorCh, encodeChannel(id, []byte("proof fetch requires a named dataset")))
	}
	snap, err := ds.SnapshotErr()
	if err != nil {
		if errors.Is(err, engine.ErrBudget) {
			return m.write(frameBudgetCh, encodeChannel(id, []byte(err.Error())))
		}
		return err
	}
	if version != 0 && version != snap.Version() {
		// The server can only prove the present: earlier versions' counts
		// are gone. A pinned-version request that no longer matches is the
		// client's signal to re-fingerprint.
		return m.write(frameErrorCh, encodeChannel(id, fmt.Appendf(nil,
			"proof version %d is not current (dataset %q is at version %d)", version, ds.Name(), snap.Version())))
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		key := proofcache.Key{
			Dataset: ds.Name(),
			Version: snap.Version(),
			Query:   string(engine.FSQuery(kind, params).Encode()),
		}
		val, err := m.s.proofCacheRef().Get(key, func() ([]byte, error) {
			pf, err := snap.GenerateProof(kind, params)
			if err != nil {
				return nil, err
			}
			return pf.Encode(), nil
		})
		if err != nil {
			typ := byte(frameErrorCh)
			if errors.Is(err, engine.ErrBudget) {
				typ = frameBudgetCh
			}
			_ = m.write(typ, encodeChannel(id, []byte(err.Error())))
			return
		}
		_ = m.write(frameProofCh, encodeChannel(id, val))
	}()
	return nil
}

// ---------------------------------------------------------------------
// Client side

// FetchProof retrieves the server's posted Fiat–Shamir proof for one
// query. version pins the dataset version the proof must cover (the
// request fails if ingestion has moved past it); 0 accepts the current
// version. The returned proof carries the version it was generated at
// in its binding. Requires the v2 named-dataset flow.
//
// The proof's binding is validated against the request before it is
// returned: dataset name and universe must match the attached dataset,
// the query must be the canonical encoding of (kind, params), a nonzero
// version must be echoed exactly, and — when Client.FieldModulus is set
// — the modulus must match. The challenges a verifier derives from the
// binding are therefore fixed by values the CLIENT chose; a malicious
// server gets no grinding bits from the proof header.
func (c *Client) FetchProof(kind QueryKind, params QueryParams, version uint64) (*fs.Proof, error) {
	if kind == QueryCircuit && len(params.Circuit) > maxCircuitName {
		return nil, fmt.Errorf("wire: circuit name of %d bytes exceeds %d", len(params.Circuit), maxCircuitName)
	}
	c.cmu.Lock()
	mode, dsName, dsU := c.mode, c.dsName, c.dsU
	c.cmu.Unlock()
	if mode != modeV2 {
		return nil, fmt.Errorf("wire: FetchProof requires a named dataset (use OpenDataset)")
	}
	h, err := c.newHandle(nil)
	if err != nil {
		return nil, err
	}
	defer c.unregister(h.id)
	if err := c.write(frameProofReqCh, encodeChannel(h.id, encodeProofReq(version, kind, params))); err != nil {
		return nil, err
	}
	fr, err := h.frame()
	if err != nil {
		return nil, err
	}
	switch fr.typ {
	case frameProofCh:
		pf, err := fs.DecodeProof(fr.payload)
		if err != nil {
			return nil, err
		}
		if err := checkProofBinding(pf, c.FieldModulus, dsName, dsU, version, kind, params); err != nil {
			return nil, err
		}
		return pf, nil
	case frameBudgetCh:
		return nil, fmt.Errorf("%w: %s", ErrBudget, fr.payload)
	case frameErrorCh:
		return nil, fmt.Errorf("wire: server error: %s", fr.payload)
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, fr.typ)
	}
}

// checkProofBinding rejects a fetched proof whose binding does not match
// the request it answers. Every field feeding the challenge derivation
// is pinned to a client-chosen value: dataset and universe from
// OpenDataset, the query from the request, the version when the caller
// pinned one, and the modulus when the client declared its field. Only
// an unpinned version (and, if FieldModulus is zero, the modulus) is
// accepted from the server.
func checkProofBinding(pf *fs.Proof, modulus uint64, dsName string, dsU, version uint64,
	kind QueryKind, params QueryParams) error {
	want := fs.Binding{
		Modulus:  pf.Modulus,
		Universe: dsU,
		Dataset:  dsName,
		Version:  pf.Version,
		Query:    engine.FSQuery(kind, params),
	}
	if modulus != 0 {
		want.Modulus = modulus
	}
	if version != 0 {
		want.Version = version
	}
	if pf.Binding != want {
		return fmt.Errorf("%w: proof binding (modulus %d, universe %d, dataset %q, version %d, query kind %d) does not answer the request (modulus %d, universe %d, dataset %q, version %d, query kind %d)",
			ErrProtocol, pf.Modulus, pf.Binding.Universe, pf.Dataset, pf.Version, pf.Query.Kind,
			want.Modulus, want.Universe, want.Dataset, want.Version, want.Query.Kind)
	}
	return nil
}

// QueryCached runs one query non-interactively: fetch the posted proof
// (version as in FetchProof), build a verifier from the proof's binding
// via mkVerifier, and verify the recorded conversation offline —
// results are then read from the concrete verifier session, exactly as
// after an interactive Query.
//
// mkVerifier must return a verifier constructed with binding.RNG()
// whose streamed fingerprint covers the client's own view of the data
// (engine.NewStreamVerifier plus replaying the client's held updates):
// acceptance then certifies the server's answer against the client's
// fingerprint at that version, with no interaction and no per-verifier
// prover work on the server.
func (c *Client) QueryCached(kind QueryKind, params QueryParams, version uint64,
	mkVerifier func(fs.Binding) (core.VerifierSession, error)) (*fs.Proof, core.Stats, error) {
	pf, err := c.FetchProof(kind, params, version)
	if err != nil {
		return nil, core.Stats{}, err
	}
	v, err := mkVerifier(pf.Binding)
	if err != nil {
		return nil, core.Stats{}, err
	}
	var st core.Stats
	for _, msg := range pf.Messages {
		st.Rounds++
		st.WordsToVerifier += msg.Words()
	}
	if err := pf.Binding.Verify(pf, v); err != nil {
		return pf, st, err
	}
	return pf, st, nil
}

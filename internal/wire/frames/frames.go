// Package frames is the wire protocol's codec layer: frame type
// constants, the length-prefixed frame transport, and the payload
// codecs for every frame the protocol speaks. It owns no policy and no
// state — the layers above it (wire's client, server, and mux, and the
// shard router's proxy) agree on byte layouts exclusively through this
// package, so they can never diverge.
//
// Framing: every frame is [uint32 length][uint8 type][payload], payloads
// little-endian via encoding/binary. Protocol messages (core.Msg) are
// encoded as [uint32 nInts][uint32 nElems][ints…][elems…]. Channel
// frames prefix the payload with a uint32 channel id.
//
// Import seam: only packages under internal/wire/... may import this
// package directly. Everything else — including the shard router —
// goes through the exported seam on package wire (wire.ReadFrame,
// wire.WriteFrame, wire.Frame* constants, …), which is a thin
// re-export; the root-level TestFrameCodecImportSeam test and a CI grep
// enforce the boundary so codec changes have exactly two audiences.
package frames

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/stream"
)

// Frame types. Frames 0x01–0x0b are connection-scoped (the implicit
// control channel); frames 0x0c–0x13 are the mux revision's
// channel-scoped conversation frames, whose payload begins with a
// uint32 channel id. Frames 0x14–0x17 are the admin plane: dataset
// handoff for shard rebalancing and operational stats.
const (
	Hello     = 0x01 // client→server: universe size (v1, private dataset)
	Updates   = 0x02 // client→server: batch of (index, delta)
	EndStream = 0x03 // client→server: v1 upload finished (acked with OK)
	Query     = 0x04 // client→server: query kind + parameters (serial conversation)
	Prover    = 0x05 // server→client: prover message (serial conversation)
	Challenge = 0x06 // client→server: verifier challenge (serial conversation)
	Finish    = 0x07 // client→server: conversation over (serial conversation)
	Error     = 0x08 // server→client: connection-fatal error text
	Open      = 0x09 // client→server: attach to named dataset (v2)
	OK        = 0x0a // server→client: ack with dataset update count
	Budget    = 0x0b // server→client: admission refused, memory budget exhausted

	QueryCh     = 0x0c // client→server: open conversation channel [ch][query]
	ChallengeCh = 0x0d // client→server: verifier challenge [ch][msg]
	ProverCh    = 0x0e // server→client: prover message [ch][msg]
	FinishCh    = 0x0f // client→server: conversation over [ch]
	ErrorCh     = 0x10 // server→client: channel failed [ch][text]; connection survives
	BudgetCh    = 0x11 // server→client: channel refused, budget/cap exhausted [ch][text]

	ProofReqCh = 0x12 // client→server: fetch the posted proof [ch][version][query]
	ProofCh    = 0x13 // server→client: encoded Fiat–Shamir proof [ch][proof]

	Handoff   = 0x14 // client→server: persist + detach dataset, keep checkpoint [name]
	Adopt     = 0x15 // client→server: recover dataset from the data dir [name]
	StatsReq  = 0x16 // client→server: request operational stats
	StatsResp = 0x17 // server→client: JSON-encoded stats

	// Frames 0x18–0x19 are the split-universe revision: a dataset too
	// large for one engine lives as S universe slices on S shards, and an
	// aggregator (the shard router) folds their partial messages into the
	// unchanged client-facing protocol.
	OpenSlice      = 0x18 // client→server: attach to a universe slice [globalU][lo][hi][name]
	PartialQueryCh = 0x19 // aggregator→server: open partial-prover channel [ch][query]
)

// MaxFrame bounds a single frame (64 MiB) to fail fast on corruption.
const MaxFrame = 64 << 20

// MaxDatasetName bounds the name carried by an open frame.
const MaxDatasetName = 255

// MaxCircuitName bounds the circuit family name a CIRCUIT query frame
// may carry; registry names are short, so anything longer is garbage.
const MaxCircuitName = 64

// ErrProtocol reports a malformed or unexpected frame.
var ErrProtocol = errors.New("wire: protocol error")

// WriteFrame sends one frame: [uint32 length][uint8 type][payload].
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(payload)))
	head[4] = typ
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame receives one frame, bounding its size by MaxFrame.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes", ErrProtocol, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return head[4], payload, nil
}

// EncodeMsg lays out a protocol message.
func EncodeMsg(m core.Msg) []byte {
	out := make([]byte, 8+8*len(m.Ints)+8*len(m.Elems))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(m.Ints)))
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(m.Elems)))
	off := 8
	for _, v := range m.Ints {
		binary.LittleEndian.PutUint64(out[off:], v)
		off += 8
	}
	for _, e := range m.Elems {
		binary.LittleEndian.PutUint64(out[off:], uint64(e))
		off += 8
	}
	return out
}

// DecodeMsg parses a protocol message.
func DecodeMsg(b []byte) (core.Msg, error) {
	if len(b) < 8 {
		return core.Msg{}, fmt.Errorf("%w: short message header", ErrProtocol)
	}
	nInts := binary.LittleEndian.Uint32(b[0:4])
	nElems := binary.LittleEndian.Uint32(b[4:8])
	// Bound the section counts before any size arithmetic: on 32-bit
	// platforms a crafted header can overflow `want` (8 + 8*nInts +
	// 8*nElems in int) into a small value, or force a giant allocation
	// before the length check below runs. Nothing legitimate exceeds
	// MaxFrame/8 words per section.
	const maxWords = MaxFrame / 8
	if uint64(nInts) > maxWords || uint64(nElems) > maxWords {
		return core.Msg{}, fmt.Errorf("%w: message header claims %d+%d words", ErrProtocol, nInts, nElems)
	}
	want := 8 + 8*int(nInts) + 8*int(nElems)
	if len(b) != want {
		return core.Msg{}, fmt.Errorf("%w: message body %d bytes, want %d", ErrProtocol, len(b), want)
	}
	var m core.Msg
	off := 8
	if nInts > 0 {
		m.Ints = make([]uint64, nInts)
		for i := range m.Ints {
			m.Ints[i] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
	}
	if nElems > 0 {
		m.Elems = make([]field.Elem, nElems)
		for i := range m.Elems {
			m.Elems[i] = field.Elem(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	return m, nil
}

// EncodeQuery lays out a query frame: the fixed numeric parameter block,
// then — for CIRCUIT queries only — the circuit family name in UTF-8.
func EncodeQuery(kind engine.QueryKind, p engine.QueryParams) []byte {
	n := 1 + 8*4
	if kind == engine.QueryCircuit {
		n += len(p.Circuit)
	}
	out := make([]byte, 1+8*4, n)
	out[0] = byte(kind)
	binary.LittleEndian.PutUint64(out[1:], p.A)
	binary.LittleEndian.PutUint64(out[9:], p.B)
	binary.LittleEndian.PutUint64(out[17:], uint64(p.K))
	binary.LittleEndian.PutUint64(out[25:], math.Float64bits(p.Phi))
	if kind == engine.QueryCircuit {
		out = append(out, p.Circuit...)
	}
	return out
}

// DecodeQuery parses a query frame.
func DecodeQuery(b []byte) (engine.QueryKind, engine.QueryParams, error) {
	if len(b) < 1+8*4 {
		return 0, engine.QueryParams{}, fmt.Errorf("%w: query frame %d bytes", ErrProtocol, len(b))
	}
	kind := engine.QueryKind(b[0])
	p := engine.QueryParams{
		A:   binary.LittleEndian.Uint64(b[1:]),
		B:   binary.LittleEndian.Uint64(b[9:]),
		K:   int64(binary.LittleEndian.Uint64(b[17:])),
		Phi: math.Float64frombits(binary.LittleEndian.Uint64(b[25:])),
	}
	name := b[1+8*4:]
	if kind == engine.QueryCircuit {
		if len(name) > MaxCircuitName {
			return 0, engine.QueryParams{}, fmt.Errorf("%w: circuit name of %d bytes", ErrProtocol, len(name))
		}
		// An empty (or unknown) name is refused by the engine with a typed
		// error, not by the codec: the frame itself is well-formed.
		p.Circuit = string(name)
	} else if len(name) != 0 {
		return 0, engine.QueryParams{}, fmt.Errorf("%w: query frame %d bytes", ErrProtocol, len(b))
	}
	return kind, p, nil
}

// EncodeOpen lays out an open frame: the universe size, then the dataset
// name in UTF-8.
func EncodeOpen(name string, u uint64) []byte {
	out := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(out[:8], u)
	copy(out[8:], name)
	return out
}

// DecodeOpen parses an open frame.
func DecodeOpen(b []byte) (name string, u uint64, err error) {
	if len(b) < 9 {
		return "", 0, fmt.Errorf("%w: open frame %d bytes", ErrProtocol, len(b))
	}
	if len(b)-8 > MaxDatasetName {
		return "", 0, fmt.Errorf("%w: dataset name of %d bytes", ErrProtocol, len(b)-8)
	}
	return string(b[8:]), binary.LittleEndian.Uint64(b[:8]), nil
}

// EncodeOpenSlice lays out an open-slice frame: the global universe
// size, the slice bounds [lo, hi) over the padded global universe, then
// the dataset name in UTF-8.
func EncodeOpenSlice(name string, globalU, lo, hi uint64) []byte {
	out := make([]byte, 24+len(name))
	binary.LittleEndian.PutUint64(out[:8], globalU)
	binary.LittleEndian.PutUint64(out[8:16], lo)
	binary.LittleEndian.PutUint64(out[16:24], hi)
	copy(out[24:], name)
	return out
}

// DecodeOpenSlice parses an open-slice frame. Geometry validation
// (power-of-two width, alignment) is the engine's, not the codec's.
func DecodeOpenSlice(b []byte) (name string, globalU, lo, hi uint64, err error) {
	if len(b) < 25 {
		return "", 0, 0, 0, fmt.Errorf("%w: open-slice frame %d bytes", ErrProtocol, len(b))
	}
	if len(b)-24 > MaxDatasetName {
		return "", 0, 0, 0, fmt.Errorf("%w: dataset name of %d bytes", ErrProtocol, len(b)-24)
	}
	return string(b[24:]), binary.LittleEndian.Uint64(b[:8]),
		binary.LittleEndian.Uint64(b[8:16]), binary.LittleEndian.Uint64(b[16:24]), nil
}

// EncodeCount lays out an OK ack payload (a dataset update count).
func EncodeCount(n uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], n)
	return b[:]
}

// DecodeCount parses an OK ack payload.
func DecodeCount(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: count frame %d bytes", ErrProtocol, len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// EncodeName lays out a handoff/adopt frame: the dataset name in UTF-8.
func EncodeName(name string) []byte { return []byte(name) }

// DecodeName parses a handoff/adopt frame.
func DecodeName(b []byte) (string, error) {
	if len(b) == 0 || len(b) > MaxDatasetName {
		return "", fmt.Errorf("%w: dataset name of %d bytes", ErrProtocol, len(b))
	}
	return string(b), nil
}

// EncodeUpdates lays out an updates batch as (index, delta) pairs.
func EncodeUpdates(ups []stream.Update) []byte {
	payload := make([]byte, 16*len(ups))
	for i, up := range ups {
		binary.LittleEndian.PutUint64(payload[16*i:], up.Index)
		binary.LittleEndian.PutUint64(payload[16*i+8:], uint64(up.Delta))
	}
	return payload
}

// DecodeUpdateColumns splits an updates payload into index/delta columns,
// the shape the engine's batch kernel ingests directly.
func DecodeUpdateColumns(payload []byte) (idx []uint64, deltas []int64, err error) {
	if len(payload)%16 != 0 {
		return nil, nil, fmt.Errorf("%w: update batch", ErrProtocol)
	}
	n := len(payload) / 16
	idx = make([]uint64, n)
	deltas = make([]int64, n)
	for i := 0; i < n; i++ {
		idx[i] = binary.LittleEndian.Uint64(payload[16*i:])
		deltas[i] = int64(binary.LittleEndian.Uint64(payload[16*i+8:]))
	}
	return idx, deltas, nil
}

// EncodeChannel prefixes a frame payload with its channel id.
func EncodeChannel(id uint32, payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(out[:4], id)
	copy(out[4:], payload)
	return out
}

// DecodeChannel splits a channel-scoped payload into id and body.
func DecodeChannel(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("%w: channel frame of %d bytes", ErrProtocol, len(b))
	}
	return binary.LittleEndian.Uint32(b[:4]), b[4:], nil
}

// EncodeProofReq lays out a proof request: the requested dataset
// version (0 = current), then the query block in the query-frame
// layout.
func EncodeProofReq(version uint64, kind engine.QueryKind, p engine.QueryParams) []byte {
	out := make([]byte, 8, 8+1+8*4+len(p.Circuit))
	binary.LittleEndian.PutUint64(out, version)
	return append(out, EncodeQuery(kind, p)...)
}

// DecodeProofReq parses a proof request.
func DecodeProofReq(b []byte) (version uint64, kind engine.QueryKind, p engine.QueryParams, err error) {
	if len(b) < 8 {
		return 0, 0, engine.QueryParams{}, fmt.Errorf("%w: proof request of %d bytes", ErrProtocol, len(b))
	}
	version = binary.LittleEndian.Uint64(b)
	kind, p, err = DecodeQuery(b[8:])
	return version, kind, p, err
}

// ChannelScoped reports whether typ is a channel-scoped frame (its
// payload begins with a uint32 channel id).
func ChannelScoped(typ byte) bool {
	return (typ >= QueryCh && typ <= ProofCh) || typ == PartialQueryCh
}

package frames

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestFrameCodecImportSeam enforces the layering the wire split
// established: the raw frame codec is an implementation detail of the
// wire protocol, and only packages under internal/wire/... may import
// it. Everything else — the shard router included — goes through the
// typed surface internal/wire exports (the seam), so the codec can
// change without a flag day across the repo.
func TestFrameCodecImportSeam(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	const codec = "repro/internal/wire/frames"
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if strings.HasPrefix(filepath.ToSlash(rel), "internal/wire/") {
			return nil // inside the seam
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == codec || strings.HasPrefix(p, codec+"/") {
				t.Errorf("%s imports %s: the frame codec is internal to internal/wire/... — use the wire package's exported seam", rel, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

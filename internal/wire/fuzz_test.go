package wire

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// The codec invariants under test: decoders never panic on arbitrary
// bytes, a successful decode re-encodes to the identical bytes (the
// formats have no slack), and encode→decode is the identity.

func FuzzDecodeMsg(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeMsg(core.Msg{}))
	f.Add(encodeMsg(core.Msg{Ints: []uint64{1, 2}, Elems: []field.Elem{3}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	// Overflow corpus: headers whose 8 + 8*nInts + 8*nElems wraps a
	// 32-bit int. On 32-bit platforms these used to slip past the length
	// check into a giant allocation; they must be refused by the word
	// bound before any size arithmetic.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x01, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00}) // nInts just past maxFrame/8
	f.Add([]byte{0x00, 0x00, 0x80, 0x00, 0x00, 0x00, 0x80, 0x00}) // both sections at the bound
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeMsg(b)
		if err != nil {
			return
		}
		if len(m.Ints) > maxFrame/8 || len(m.Elems) > maxFrame/8 {
			t.Fatalf("decodeMsg accepted %d+%d words, past the frame bound", len(m.Ints), len(m.Elems))
		}
		if got := encodeMsg(m); !bytes.Equal(got, b) {
			t.Fatalf("re-encode of a valid message differs: %x vs %x", got, b)
		}
	})
}

// TestDecodeMsgHeaderOverflow pins the satellite bugfix: a header whose
// claimed section sizes would overflow the int arithmetic (or demand a
// multi-GiB allocation) is rejected up front, whatever the platform's
// int width.
func TestDecodeMsgHeaderOverflow(t *testing.T) {
	cases := [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // 2^32-1 of each
		{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00}, // nInts = 2^32-1
		{0x00, 0x00, 0x00, 0x00, 0xff, 0xff, 0xff, 0xff}, // nElems = 2^32-1
		{0x01, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00}, // nInts = maxFrame/8 + 1
	}
	for _, b := range cases {
		if _, err := decodeMsg(b); err == nil {
			t.Errorf("decodeMsg accepted a header claiming %x words", b)
		}
	}
	// At the bound the header is structurally fine and only the length
	// check applies — it must fail on length, not panic or allocate.
	atBound := []byte{0x00, 0x00, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00}
	if _, err := decodeMsg(atBound); err == nil {
		t.Error("decodeMsg accepted a bound-sized header with no body")
	}
}

// FuzzDecodeChannel covers the mux revision's channel-id framing: the
// decoder never panics, and a successful decode re-encodes identically.
func FuzzDecodeChannel(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeChannel(0, nil))
	f.Add(encodeChannel(1, encodeQuery(QuerySelfJoinSize, QueryParams{})))
	f.Add(encodeChannel(^uint32(0), encodeMsg(core.Msg{Ints: []uint64{7}})))
	f.Fuzz(func(t *testing.T, b []byte) {
		id, rest, err := decodeChannel(b)
		if err != nil {
			return
		}
		if got := encodeChannel(id, rest); !bytes.Equal(got, b) {
			t.Fatalf("re-encode of a valid channel frame differs: %x vs %x", got, b)
		}
	})
}

func FuzzDecodeQuery(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeQuery(QuerySelfJoinSize, QueryParams{}))
	f.Add(encodeQuery(QueryHeavyHitters, QueryParams{A: 1, B: 2, K: -3, Phi: 0.5}))
	f.Fuzz(func(t *testing.T, b []byte) {
		kind, params, err := decodeQuery(b)
		if err != nil {
			return
		}
		if got := encodeQuery(kind, params); !bytes.Equal(got, b) {
			t.Fatalf("re-encode of a valid query differs: %x vs %x", got, b)
		}
	})
}

// FuzzDecodeCircuitQuery targets the only variable-length query frame:
// CIRCUIT frames with a trailing family name. Decode must never panic,
// must refuse names past maxCircuitName and trailing bytes on fixed
// kinds, and a successful decode must re-encode byte-identically.
func FuzzDecodeCircuitQuery(f *testing.F) {
	f.Add(encodeQuery(QueryCircuit, QueryParams{Circuit: "F2"}))
	f.Add(encodeQuery(QueryCircuit, QueryParams{Circuit: "MATMUL", A: 16}))
	f.Add(encodeQuery(QueryCircuit, QueryParams{Circuit: ""}))
	f.Add(encodeQuery(QueryCircuit, QueryParams{Circuit: string(make([]byte, maxCircuitName))}))
	f.Add(encodeQuery(QueryCircuit, QueryParams{Circuit: string(make([]byte, maxCircuitName+1))}))
	f.Add(append(encodeQuery(QuerySelfJoinSize, QueryParams{}), 'X'))
	f.Fuzz(func(t *testing.T, b []byte) {
		kind, params, err := decodeQuery(b)
		if err != nil {
			return
		}
		if kind == QueryCircuit && len(params.Circuit) > maxCircuitName {
			t.Fatalf("decodeQuery accepted a %d-byte circuit name", len(params.Circuit))
		}
		if kind != QueryCircuit && params.Circuit != "" {
			t.Fatalf("decodeQuery produced a circuit name for kind %d", kind)
		}
		if got := encodeQuery(kind, params); !bytes.Equal(got, b) {
			t.Fatalf("re-encode of a valid query differs: %x vs %x", got, b)
		}
	})
}

func FuzzDecodeOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeOpen("d", 64))
	f.Add(encodeOpen("a-long-dataset-name", 1<<20))
	f.Fuzz(func(t *testing.T, b []byte) {
		name, u, err := decodeOpen(b)
		if err != nil {
			return
		}
		if len(name) == 0 || len(name) > maxDatasetName {
			t.Fatalf("decodeOpen accepted a %d-byte name", len(name))
		}
		if got := encodeOpen(name, u); !bytes.Equal(got, b) {
			t.Fatalf("re-encode of a valid open frame differs: %x vs %x", got, b)
		}
	})
}

// TestMsgPropertyRoundTrip drives the message codec with generated
// shapes, including empty and large sections.
func TestMsgPropertyRoundTrip(t *testing.T) {
	rng := field.NewSplitMix64(123)
	for trial := 0; trial < 200; trial++ {
		nInts := int(rng.Uint64() % 17)
		nElems := int(rng.Uint64() % 17)
		var m core.Msg
		for i := 0; i < nInts; i++ {
			m.Ints = append(m.Ints, rng.Uint64())
		}
		for i := 0; i < nElems; i++ {
			m.Elems = append(m.Elems, field.Elem(rng.Uint64()))
		}
		got, err := decodeMsg(encodeMsg(m))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got.Ints) != nInts || len(got.Elems) != nElems {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for i := range m.Ints {
			if got.Ints[i] != m.Ints[i] {
				t.Fatalf("trial %d: int %d", trial, i)
			}
		}
		for i := range m.Elems {
			if got.Elems[i] != m.Elems[i] {
				t.Fatalf("trial %d: elem %d", trial, i)
			}
		}
	}
}

// TestQueryPropertyRoundTrip covers every kind and awkward parameter
// values (negative K, tiny and non-finite Phi).
func TestQueryPropertyRoundTrip(t *testing.T) {
	kinds := []QueryKind{
		QuerySelfJoinSize, QueryFk, QueryRangeSum, QueryRangeQuery,
		QueryIndex, QueryDictionary, QueryPredecessor, QuerySuccessor,
		QueryKLargest, QueryHeavyHitters, QueryF0, QueryFmax,
	}
	phis := []float64{0, 0.001, 0.5, 1, math.SmallestNonzeroFloat64, math.Inf(1)}
	rng := field.NewSplitMix64(321)
	for _, kind := range kinds {
		for _, phi := range phis {
			p := QueryParams{A: rng.Uint64(), B: rng.Uint64(), K: -int64(rng.Uint64() % 100), Phi: phi}
			gk, gp, err := decodeQuery(encodeQuery(kind, p))
			if err != nil {
				t.Fatal(err)
			}
			if gk != kind || gp != p {
				t.Fatalf("roundtrip %v %+v = %v %+v", kind, p, gk, gp)
			}
		}
	}
	// CIRCUIT frames carry the only variable-length section.
	names := []string{"", "F2", "COUNT", "MATMUL", strings.Repeat("y", maxCircuitName)}
	for _, name := range names {
		p := QueryParams{A: rng.Uint64(), Circuit: name}
		gk, gp, err := decodeQuery(encodeQuery(QueryCircuit, p))
		if err != nil {
			t.Fatal(err)
		}
		if gk != QueryCircuit || gp != p {
			t.Fatalf("circuit roundtrip %+v = %v %+v", p, gk, gp)
		}
	}
	if _, _, err := decodeQuery(encodeQuery(QueryCircuit, QueryParams{Circuit: strings.Repeat("y", maxCircuitName+1)})); err == nil {
		t.Error("oversize circuit name decoded")
	}
	if _, _, err := decodeQuery(append(encodeQuery(QueryIndex, QueryParams{A: 4}), 'Z')); err == nil {
		t.Error("trailing bytes on a fixed-kind query decoded")
	}
}

// TestOpenRoundTrip covers the v2 open frame and the count ack.
func TestOpenRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		u    uint64
	}{
		{"a", 1},
		{"metrics", 1 << 20},
		{"日本語-dataset", 1 << 61},
	} {
		name, u, err := decodeOpen(encodeOpen(tc.name, tc.u))
		if err != nil {
			t.Fatal(err)
		}
		if name != tc.name || u != tc.u {
			t.Fatalf("roundtrip (%q,%d) = (%q,%d)", tc.name, tc.u, name, u)
		}
	}
	if _, _, err := decodeOpen(encodeCount(7)); err == nil {
		t.Error("open frame with no name accepted")
	}
	for _, n := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		got, err := decodeCount(encodeCount(n))
		if err != nil || got != n {
			t.Fatalf("count roundtrip %d = %d, %v", n, got, err)
		}
	}
	if _, err := decodeCount([]byte{1, 2}); err == nil {
		t.Error("short count frame accepted")
	}
}

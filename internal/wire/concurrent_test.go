package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
)

// TestServeReturnsErrServerClosed: an intentional Close must surface as
// ErrServerClosed from Serve, not as the listener's "use of closed network
// connection" error.
func TestServeReturnsErrServerClosed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{F: f61}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	// Let Serve reach Accept, then shut down.
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve after Close = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Close before Serve: a later Serve must refuse immediately and leave
	// the caller's listener untouched (net/http semantics).
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	if err := srv.Serve(ln2); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve on closed server = %v, want ErrServerClosed", err)
	}
	// A refused Serve must not have registered ln2 either: a second Close
	// (Close is idempotent) must leave it accepting.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if conn, err := net.Dial("tcp", ln2.Addr().String()); err != nil {
		t.Fatalf("refused Serve let Close reach the caller's listener: %v", err)
	} else {
		conn.Close()
	}
}

// TestConcurrentClientsParallelProver hammers one server with several
// clients uploading and querying simultaneously while the server proves
// with a full worker pool — run under -race this locks in that the
// parallel prover engine shares no mutable state across goroutines.
func TestConcurrentClientsParallelProver(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{F: f61, Workers: -1}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		_ = srv.Close()
		if err := <-serveDone; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve exit = %v, want ErrServerClosed", err)
		}
	}()

	const (
		clients = 4
		u       = 1 << 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seed := uint64(1000 + 10*c)
			ups := stream.UniformDeltas(u, 100, field.NewSplitMix64(seed))

			client, err := Dial(ln.Addr().String())
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", c, err)
				return
			}
			defer client.Close()
			if err := client.Hello(u); err != nil {
				errs <- fmt.Errorf("client %d: hello: %w", c, err)
				return
			}

			f2proto, err := core.NewSelfJoinSize(f61, u)
			if err != nil {
				errs <- err
				return
			}
			f2v := f2proto.NewVerifier(field.NewSplitMix64(seed + 1))
			rsproto, err := core.NewRangeSum(f61, u)
			if err != nil {
				errs <- err
				return
			}
			rsv := rsproto.NewVerifier(field.NewSplitMix64(seed + 2))
			for _, up := range ups {
				if err := f2v.Observe(up); err != nil {
					errs <- err
					return
				}
				if err := rsv.Observe(up); err != nil {
					errs <- err
					return
				}
			}
			if err := client.SendUpdates(ups); err != nil {
				errs <- fmt.Errorf("client %d: upload: %w", c, err)
				return
			}
			if err := client.EndStream(); err != nil {
				errs <- fmt.Errorf("client %d: end stream: %w", c, err)
				return
			}

			// Two verified queries back to back on the same connection.
			if _, err := client.Query(QuerySelfJoinSize, QueryParams{}, f2v); err != nil {
				errs <- fmt.Errorf("client %d: F2 rejected: %w", c, err)
				return
			}
			gotF2, err := f2v.Result()
			if err != nil {
				errs <- err
				return
			}
			a, _ := stream.Apply(ups, u)
			var wantF2 field.Elem
			for _, v := range a {
				e := f61.FromInt64(v)
				wantF2 = f61.Add(wantF2, f61.Mul(e, e))
			}
			if gotF2 != wantF2 {
				errs <- fmt.Errorf("client %d: F2 = %d, want %d", c, gotF2, wantF2)
				return
			}

			qL, qR := uint64(64), uint64(u/2)
			if err := rsv.SetQuery(qL, qR); err != nil {
				errs <- err
				return
			}
			if _, err := client.Query(QueryRangeSum, QueryParams{A: qL, B: qR}, rsv); err != nil {
				errs <- fmt.Errorf("client %d: range-sum rejected: %w", c, err)
				return
			}
			gotRS, err := rsv.SignedResult()
			if err != nil {
				errs <- err
				return
			}
			var wantRS int64
			for i := qL; i <= qR; i++ {
				wantRS += a[i]
			}
			if gotRS != wantRS {
				errs <- fmt.Errorf("client %d: range-sum = %d, want %d", c, gotRS, wantRS)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Multiplexed query conversations: the wire layer's answer to the
// paper's many-cheap-conversations deployment. One connection holds any
// number of concurrent query conversations, each on its own uint32
// channel id:
//
//   - the client opens a channel with frameQueryCh [ch][kind+params] and
//     drives it with frameChallengeCh/frameFinishCh frames;
//   - the server runs each channel's conversation in its own goroutine
//     against its own immutable snapshot (taken, in arrival order, when
//     the query frame is read), answering with frameProverCh frames;
//   - channel failures travel as frameErrorCh/frameBudgetCh and kill
//     only that conversation — the connection, its other channels, and
//     interleaved ingestion continue.
//
// Back-pressure rule: each channel's inbound queue holds a few frames
// (the conversations are lock-step, so an honest peer never has more
// than one in flight); a client that floods one channel stalls its own
// connection's read loop, never the server or other connections.
// Channel opens past Server.MaxConcurrentQueries are refused with a
// per-channel budget frame, the same treatment as engine admission.
//
// Channel bookkeeping (live table, concurrency slots, tombstones for
// failed channels) lives in ChannelPins (seam.go), shared with the
// shard router's proxy so both ends of a proxied connection enforce the
// same discipline.
package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// muxFrame is one channel-scoped frame with the id already stripped.
type muxFrame struct {
	typ     byte
	payload []byte
}

// ---------------------------------------------------------------------
// Server side

// connMux is the per-connection conversation multiplexer: it serializes
// frame writes (the read loop's acks and every conversation goroutine
// share one socket) and routes inbound channel frames to the goroutine
// that owns the channel.
type connMux struct {
	s    *Server
	conn net.Conn
	wmu  sync.Mutex

	pins *ChannelPins // channel id → *muxChan
	wg   sync.WaitGroup
	done chan struct{} // closed when the connection's read loop exits
}

// muxChan is one live conversation channel: its inbound frame queue and
// a latch the read loop can select against so a conversation that dies
// mid-frame never wedges the connection.
type muxChan struct {
	q    chan muxFrame
	done chan struct{}
}

func newConnMux(s *Server, conn net.Conn) *connMux {
	return &connMux{
		s:    s,
		conn: conn,
		pins: NewChannelPins(),
		done: make(chan struct{}),
	}
}

// write sends one frame, serialized against every other writer on this
// connection and carrying the server's idle deadline.
func (m *connMux) write(typ byte, payload []byte) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	return m.s.write(m.conn, typ, payload)
}

// shutdown unblocks and drains every conversation goroutine. Called as
// the connection handler unwinds, before any final error frame or the
// socket close, so no goroutine can interleave a write with either.
func (m *connMux) shutdown() {
	close(m.done)
	m.wg.Wait()
}

// dispatch handles one channel-scoped frame from the read loop. Frame
// legality was already checked by the handler's FlowState.
func (m *connMux) dispatch(typ byte, payload []byte, ds *engine.Dataset, st connState) error {
	id, rest, err := decodeChannel(payload)
	if err != nil {
		return err
	}
	if id == 0 {
		return fmt.Errorf("%w: channel id 0 is reserved for the control plane", ErrProtocol)
	}
	if typ == frameQueryCh || typ == framePartialQueryCh {
		return m.open(id, rest, ds, st, typ == framePartialQueryCh)
	}
	if typ == frameProofReqCh {
		// Proof fetches are one-shot request/response: no channel state is
		// registered, the reply (or a per-channel error) is the whole
		// exchange. See proof.go.
		return m.proofFetch(id, rest, ds, st)
	}
	// The finish frame releases the channel's concurrency slot the moment
	// it arrives — not when the conversation goroutine consumes it — so a
	// strictly serial client at the cap is never spuriously refused.
	owner, ok := m.pins.Route(id, typ == frameFinishCh)
	if !ok {
		return fmt.Errorf("%w: frame 0x%02x for unknown channel %d", ErrProtocol, typ, id)
	}
	if owner == nil {
		// A channel the server failed may see exactly one more frame from
		// the client (lock-step: the challenge that crossed our error on
		// the wire). The tombstone absorbed it; anything further is a
		// protocol violation.
		return nil
	}
	mc := owner.(*muxChan)
	select {
	case mc.q <- muxFrame{typ: typ, payload: rest}:
	case <-mc.done:
		// The conversation ended while this frame was in flight; drop it.
	}
	return nil
}

// open starts a new conversation channel: admission, a fresh snapshot
// (taken here, in frame-arrival order, so a query never observes
// updates the client sent after it), and the conversation goroutine.
// With partial set the session is the slice owner's partial prover
// (Snapshot.NewPartialProver) instead of the whole-transcript prover —
// the split-universe aggregator's side of the conversation; the drive
// loop is byte-for-byte the same protocol.
func (m *connMux) open(id uint32, body []byte, ds *engine.Dataset, st connState, partial bool) error {
	kind, params, err := decodeQuery(body)
	if err != nil {
		return err
	}
	limit := m.s.MaxConcurrentQueries
	if limit == 0 {
		limit = DefaultMaxConcurrentQueries
	}
	mc := &muxChan{q: make(chan muxFrame, 4), done: make(chan struct{})}
	ok, err := m.pins.Open(id, mc, limit)
	if err != nil {
		return err
	}
	if !ok {
		// Same treatment as engine admission: a resource refusal on this
		// channel only, not a protocol violation — the connection and its
		// other conversations continue.
		return m.write(frameBudgetCh, encodeChannel(id,
			fmt.Appendf(nil, "too many concurrent queries (limit %d)", limit)))
	}

	// The snapshot is taken synchronously so the conversation's view is
	// fixed before the read loop touches the next frame — a query never
	// observes updates its client sent after it. For a resident dataset
	// this is O(1); for an evicted one it is the rehydrate, which stalls
	// this connection's read loop (a deliberate trade: the ordering
	// guarantee over cold-start latency — other connections are
	// unaffected, and the dataset a connection queries is hot by its own
	// use). The expensive prover construction happens in the
	// conversation goroutine either way.
	snap, err := ds.SnapshotErr()
	if err != nil {
		m.finish(id, mc, err)
		if errors.Is(err, engine.ErrBudget) {
			return nil // channel-level refusal already sent by finish
		}
		return err
	}
	mkSession := func() (core.ProverSession, error) {
		if partial {
			// Partial sessions prove from the slice tables as they are — the
			// Corrupt hook is a v1 whole-dataset experiment and does not
			// apply here (the aggregator pins one version across slices, so
			// doctoring one slice would only fail the fold).
			return snap.NewPartialProver(kind, params)
		}
		return m.s.buildSession(snap, ds, st, kind, params)
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.finish(id, mc, m.serve(id, mc, mkSession))
	}()
	return nil
}

// finish retires a channel: unregister, tombstone on failure, and the
// typed per-channel error frame.
func (m *connMux) finish(id uint32, mc *muxChan, err error) {
	close(mc.done)
	m.pins.Retire(id, mc, err != nil)
	if err != nil {
		typ := byte(frameErrorCh)
		if errors.Is(err, engine.ErrBudget) {
			typ = frameBudgetCh
		}
		_ = m.write(typ, encodeChannel(id, []byte(err.Error())))
	}
}

// serve runs one channel's conversation: build the prover session (the
// expensive part, deferred off the read loop), then answer challenges
// until the client finishes, the session errors, or the connection goes
// away.
func (m *connMux) serve(id uint32, mc *muxChan, mkSession func() (core.ProverSession, error)) error {
	session, err := mkSession()
	if err != nil {
		return err
	}
	opening, err := session.Open()
	if err != nil {
		return err
	}
	if err := m.write(frameProverCh, encodeChannel(id, encodeMsg(opening))); err != nil {
		return err
	}
	for {
		var fr muxFrame
		select {
		case fr = <-mc.q:
		case <-m.done:
			return nil // connection closing; the handler reports its own error
		}
		switch fr.typ {
		case frameFinishCh:
			return nil
		case frameChallengeCh:
			ch, err := decodeMsg(fr.payload)
			if err != nil {
				return err
			}
			resp, err := session.Step(ch)
			if err != nil {
				return err
			}
			if err := m.write(frameProverCh, encodeChannel(id, encodeMsg(resp))); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected frame 0x%02x mid-conversation", ErrProtocol, fr.typ)
		}
	}
}

// ---------------------------------------------------------------------
// Client side

// QueryHandle is one in-flight multiplexed query conversation, returned
// by Client.QueryAsync. The conversation is driven by its own goroutine
// (the registered verifier session must not be touched until Wait
// returns).
type QueryHandle struct {
	c  *Client
	id uint32
	v  core.VerifierSession
	in chan muxFrame

	done  chan struct{}
	stats core.Stats
	err   error
}

// QueryAsync starts a query conversation on its own channel and returns
// immediately; any number may be in flight on one connection, and
// ingestion calls may interleave with them. The verifier session is
// owned by the conversation goroutine until Wait returns.
func (c *Client) QueryAsync(kind QueryKind, params QueryParams, v core.VerifierSession) (*QueryHandle, error) {
	if kind == QueryCircuit && len(params.Circuit) > maxCircuitName {
		return nil, fmt.Errorf("wire: circuit name of %d bytes exceeds %d", len(params.Circuit), maxCircuitName)
	}
	c.cmu.Lock()
	switch {
	case c.mode == modeUnset:
		c.cmu.Unlock()
		return nil, fmt.Errorf("wire: QueryAsync before Hello or OpenDataset")
	case c.mode == modeV1 && !c.v1Done:
		c.cmu.Unlock()
		return nil, fmt.Errorf("wire: QueryAsync before EndStream on a v1 connection")
	}
	c.cmu.Unlock()

	h, err := c.newHandle(v)
	if err != nil {
		return nil, err
	}
	if err := c.write(frameQueryCh, encodeChannel(h.id, encodeQuery(kind, params))); err != nil {
		c.unregister(h.id)
		return nil, err
	}
	go h.run()
	return h, nil
}

// Wait blocks until the conversation completes and returns its cost
// accounting. A nil error means the verifier accepted; results are read
// from the concrete verifier session afterwards.
func (h *QueryHandle) Wait() (core.Stats, error) {
	<-h.done
	return h.stats, h.err
}

// newHandle allocates a channel id and registers a handle on it, so the
// demux reader routes that channel's frames to it. Channel ids are
// client-allocated, nonzero, and never reused while live (the counter
// would have to lap a still-open conversation).
func (c *Client) newHandle(v core.VerifierSession) (*QueryHandle, error) {
	c.mu.Lock()
	if c.readErr != nil {
		c.mu.Unlock()
		return nil, c.termErr()
	}
	for {
		c.nextCh++
		if c.nextCh == 0 {
			c.nextCh = 1
		}
		if _, live := c.handles[c.nextCh]; !live {
			break
		}
	}
	h := &QueryHandle{
		c:    c,
		id:   c.nextCh,
		v:    v,
		in:   make(chan muxFrame, 4),
		done: make(chan struct{}),
	}
	c.handles[h.id] = h
	c.mu.Unlock()
	return h, nil
}

func (c *Client) unregister(id uint32) {
	c.mu.Lock()
	delete(c.handles, id)
	c.mu.Unlock()
}

// deliver routes one inbound frame to the conversation goroutine. The
// queue is sized for the lock-step protocol, so overflow can only come
// from a misbehaving server; it reports false and the reader treats it
// as a connection-fatal protocol violation (silently dropping the frame
// would leave the conversation waiting forever on a Timeout-less
// client).
func (h *QueryHandle) deliver(fr muxFrame) bool {
	select {
	case h.in <- fr:
		return true
	default:
		return false
	}
}

func (h *QueryHandle) run() {
	defer close(h.done)
	defer h.c.unregister(h.id)
	h.err = h.converse()
}

// converse drives the verifier side of one channel's conversation.
func (h *QueryHandle) converse() error {
	msg, srvDead, err := h.msg()
	if err != nil {
		return err
	}
	st := &h.stats
	st.Rounds++
	st.WordsToVerifier += msg.Words()
	challenge, done, err := h.v.Begin(msg)
	for !done {
		if err != nil {
			break
		}
		st.WordsToProver += challenge.Words()
		if err = h.c.write(frameChallengeCh, encodeChannel(h.id, encodeMsg(challenge))); err != nil {
			return err
		}
		msg, srvDead, err = h.msg()
		if err != nil {
			return err
		}
		st.Rounds++
		st.WordsToVerifier += msg.Words()
		challenge, done, err = h.v.Step(msg)
	}
	// Close the channel server-side — unless the server already failed
	// it (srvDead), in which case there is nothing left to finish.
	if !srvDead {
		if ferr := h.c.write(frameFinishCh, encodeChannel(h.id, nil)); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// frame waits for the next raw frame on this channel, honoring the
// client timeout — shared by the conversation path (msg) and the
// one-shot proof fetch (see proof.go).
func (h *QueryHandle) frame() (muxFrame, error) {
	var timeout <-chan time.Time
	if h.c.Timeout > 0 {
		t := time.NewTimer(h.c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case fr := <-h.in:
		return fr, nil
	case <-h.c.readerDone:
		select {
		case fr := <-h.in:
			return fr, nil
		default:
			return muxFrame{}, h.c.termErr()
		}
	case <-timeout:
		h.c.conn.Close()
		return muxFrame{}, fmt.Errorf("%w: no server frame within %v", ErrTimeout, h.c.Timeout)
	}
}

// msg waits for the next prover message on this channel. srvDead
// reports that the server ended the channel (error or budget frame), so
// no finish frame should follow.
func (h *QueryHandle) msg() (m core.Msg, srvDead bool, err error) {
	fr, err := h.frame()
	if err != nil {
		return core.Msg{}, false, err
	}
	switch fr.typ {
	case frameProverCh:
		m, err = decodeMsg(fr.payload)
		return m, false, err
	case frameBudgetCh:
		return core.Msg{}, true, fmt.Errorf("%w: %s", ErrBudget, fr.payload)
	case frameErrorCh:
		return core.Msg{}, true, fmt.Errorf("wire: server error: %s", fr.payload)
	default:
		return core.Msg{}, false, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, fr.typ)
	}
}

package wire

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/gkr"
	"repro/internal/stream"
)

// BuildProver constructs the prover session for a query by replaying a
// raw stream through the session's Observe path. The serving path never
// does this — provers come from dataset snapshots, and even the
// dishonest-cloud hook rewrites maintained counts — but the replay
// construction remains as the baseline the amortization benchmarks and
// the engine's transcript-equality tests compare against. workers is the
// prover's parallel fan-out (0 serial, n < 0 runtime.NumCPU()); the
// transcript is identical for every value.
func BuildProver(f field.Field, u uint64, kind QueryKind, params QueryParams, ups []stream.Update, workers int) (core.ProverSession, error) {
	observe := func(obs interface{ Observe(stream.Update) error }) error {
		for _, up := range ups {
			if err := obs.Observe(up); err != nil {
				return err
			}
		}
		return nil
	}
	switch kind {
	case QuerySelfJoinSize, QueryFk:
		k := 2
		if kind == QueryFk {
			k = int(params.K)
		}
		proto, err := core.NewFk(f, u, k)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		return p, observe(p)
	case QueryRangeSum:
		proto, err := core.NewRangeSum(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A, params.B)
	case QueryRangeQuery:
		proto, err := core.NewRangeQuery(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A, params.B)
	case QueryIndex:
		proto, err := core.NewIndex(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryDictionary:
		proto, err := core.NewDictionary(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryPredecessor:
		proto, err := core.NewPredecessor(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QuerySuccessor:
		proto, err := core.NewSuccessor(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryKLargest:
		proto, err := core.NewKLargest(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(int(params.K))
	case QueryHeavyHitters:
		proto, err := core.NewHeavyHitters(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.Phi)
	case QueryF0:
		proto, err := core.NewF0(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		return p, observe(p)
	case QueryFmax:
		proto, err := core.NewFmax(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		return p, observe(p)
	case QueryCircuit:
		proto, err := gkr.NewProtocolFor(f, circuit.Spec{Name: params.Circuit, Arg: params.A}, u, workers)
		if err != nil {
			return nil, err
		}
		// The GKR prover takes a dense input vector, so "replay" means
		// accumulating the stream into the circuit's input table; indices
		// the circuit does not read are outside the statement (see
		// gkr.VerifierSession.Observe).
		input := make([]field.Elem, proto.C.InputSize)
		for _, up := range ups {
			if up.Index >= u {
				return nil, fmt.Errorf("wire: index %d outside universe [0,%d)", up.Index, u)
			}
			if up.Index < uint64(len(input)) {
				input[up.Index] = f.Add(input[up.Index], f.FromInt64(up.Delta))
			}
		}
		return proto.NewProverSession(input)
	default:
		return nil, fmt.Errorf("wire: unknown query kind %d", kind)
	}
}

// The verifier client: control-plane request/response calls, the demux
// reader that fans channel frames out to conversation handles (mux.go),
// and the admin plane a router or operator tool drives shards with.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// Client is the data-owner side: it uploads the stream (keeping only its
// local verifier summaries) and drives query conversations. The v1 flow
// is Hello → SendUpdates → EndStream → Query; the v2 flow is
// OpenDataset → Ingest/Query in any order.
//
// A Client is safe for concurrent use: Query and QueryAsync multiplex
// any number of conversations over the one connection (each on its own
// channel id, demultiplexed by a reader goroutine), and the
// control-plane calls (Hello, OpenDataset, Ingest, EndStream) serialize
// among themselves.
type Client struct {
	conn net.Conn
	// Timeout bounds how long the client waits for each expected server
	// frame (and for each frame write), mirroring Server.IdleTimeout on
	// the other end: a stalled or half-open server surfaces as a typed
	// ErrTimeout instead of hanging Hello/Ingest/Query forever. The
	// connection is closed on timeout — the conversation state is
	// unrecoverable. Set it before the first call; zero means no bound.
	Timeout time.Duration

	// FieldModulus is the field the client agreed on with the server
	// out-of-band (the modulus it builds its own verifiers over). When
	// nonzero, FetchProof rejects any proof whose binding names a
	// different modulus — without it a malicious server could grind the
	// challenge derivation over 2^64 modulus choices. Set it before the
	// first FetchProof/QueryCached call; zero skips the check.
	FieldModulus uint64

	wmu sync.Mutex // serializes frame writes

	cmu    sync.Mutex // serializes control-plane request/response pairs
	mode   connMode   // guarded by cmu
	v1Done bool       // v1 upload acked complete; guarded by cmu
	dsName string     // dataset attached by OpenDataset; guarded by cmu
	dsU    uint64     // its universe size (Open rejects a mismatch); guarded by cmu

	mu      sync.Mutex // guards the demux state below
	handles map[uint32]*QueryHandle
	nextCh  uint32
	readErr error // terminal reader failure, sticky
	srvErr  error // typed server error/budget frame seen on the control channel, sticky

	ctrl       chan ctrlFrame // control-channel frames (acks, refusals)
	readerDone chan struct{}  // closed when the demux reader exits
}

// ctrlFrame is one control-channel frame as delivered by the demux
// reader.
type ctrlFrame struct {
	typ     byte
	payload []byte
}

// ErrTimeout reports that Client.Timeout elapsed while waiting on the
// server; the connection has been closed. Distinguish it with
// errors.Is(err, wire.ErrTimeout).
var ErrTimeout = errors.New("wire: client timeout")

// connMode mirrors the server's flow distinction on the client, so
// mixing the flows fails fast locally instead of desynchronizing the
// conversation (v2 update batches are acknowledged, v1 ones are not).
type connMode int

const (
	modeUnset connMode = iota
	modeV1
	modeV2
)

// Dial connects to a prover server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection — the constructor for
// callers that own the dial policy (the shard router dials backends
// with bounded retry before handing the connection here).
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		handles:    make(map[uint32]*QueryHandle),
		ctrl:       make(chan ctrlFrame, 16),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop is the demux reader: the only goroutine that reads the
// socket. Channel-scoped frames are routed to their conversation
// handle; control frames go to the ctrl queue the request/response
// calls consume.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			c.failReader(err)
			return
		}
		switch typ {
		case frameProverCh, frameErrorCh, frameBudgetCh, frameProofCh:
			id, rest, err := decodeChannel(payload)
			if err != nil {
				c.failReader(err)
				return
			}
			c.mu.Lock()
			h := c.handles[id]
			c.mu.Unlock()
			if h == nil {
				continue // late frame for a finished conversation
			}
			if !h.deliver(muxFrame{typ: typ, payload: rest}) {
				c.failReader(fmt.Errorf("%w: channel %d flooded beyond the lock-step window", ErrProtocol, id))
				return
			}
		case frameOK, frameBudget, frameError, frameStatsResp:
			if typ == frameBudget || typ == frameError {
				// Remember the server's parting shot: if the connection
				// dies before anyone reads this frame, later calls still
				// surface the typed cause instead of a bare EOF.
				c.mu.Lock()
				if c.srvErr == nil {
					c.srvErr = ctrlErr(typ, payload)
				}
				c.mu.Unlock()
			}
			select {
			case c.ctrl <- ctrlFrame{typ: typ, payload: payload}:
			default:
				// The server acked something nobody asked about — the
				// conversation is desynchronized beyond recovery.
				c.failReader(fmt.Errorf("%w: unsolicited control frame 0x%02x", ErrProtocol, typ))
				return
			}
		default:
			c.failReader(fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ))
			return
		}
	}
}

// failReader records the reader's terminal error. Open conversations
// and control waiters observe it through readerDone.
func (c *Client) failReader(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.mu.Unlock()
}

// termErr is the error reported once the reader has died: the typed
// server refusal if one arrived, otherwise the transport failure.
func (c *Client) termErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srvErr != nil {
		return c.srvErr
	}
	if c.readErr != nil {
		return c.readErr
	}
	return io.EOF
}

// ctrlErr types a server refusal frame.
func ctrlErr(typ byte, payload []byte) error {
	if typ == frameBudget {
		return fmt.Errorf("%w: %s", ErrBudget, payload)
	}
	return fmt.Errorf("wire: server error: %s", payload)
}

// write sends one frame, serialized against every other writer on the
// connection and bounded by Timeout. When the write fails because the
// server already tore the connection down after an error frame, the
// typed server error is surfaced instead of the raw transport error.
func (c *Client) write(typ byte, payload []byte) error {
	c.wmu.Lock()
	err := func() error {
		if c.Timeout > 0 {
			if err := c.conn.SetWriteDeadline(time.Now().Add(c.Timeout)); err != nil {
				return err
			}
		}
		return writeFrame(c.conn, typ, payload)
	}()
	c.wmu.Unlock()
	if err == nil {
		return nil
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		// A timed-out write may have left a partial frame on the wire —
		// the framing is unrecoverable, per the Timeout contract.
		c.conn.Close()
		return fmt.Errorf("%w: frame write stalled beyond %v", ErrTimeout, c.Timeout)
	}
	// Give the reader a beat to pick up the server's parting error frame
	// from the receive buffer, then prefer it: "index out of range" beats
	// "broken pipe".
	select {
	case <-c.readerDone:
	case <-time.After(50 * time.Millisecond):
	}
	c.mu.Lock()
	srvErr := c.srvErr
	c.mu.Unlock()
	if srvErr != nil {
		return srvErr
	}
	return err
}

// waitCtrl blocks for the next control-channel frame, honoring Timeout.
func (c *Client) waitCtrl() (byte, []byte, error) {
	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case fr := <-c.ctrl:
		return fr.typ, fr.payload, nil
	case <-c.readerDone:
		// Drain a frame that raced in just before the reader died.
		select {
		case fr := <-c.ctrl:
			return fr.typ, fr.payload, nil
		default:
		}
		return 0, nil, c.termErr()
	case <-timeout:
		c.conn.Close()
		return 0, nil, fmt.Errorf("%w: no server response within %v", ErrTimeout, c.Timeout)
	}
}

// Hello announces the universe size and starts a v1 upload into a
// private, per-connection dataset. It waits for the server's
// acknowledgement: the dataset's O(u) tables are admitted against the
// server's memory budget at hello time, and a refusal surfaces here as
// ErrBudget (distinguish it with errors.Is) rather than failing some
// later frame.
func (c *Client) Hello(u uint64) error {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode == modeV2 {
		return fmt.Errorf("wire: Hello on a connection attached to a named dataset")
	}
	if c.mode == modeV1 {
		return fmt.Errorf("wire: Hello twice on one connection")
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], u)
	if err := c.write(frameHello, b[:]); err != nil {
		return err
	}
	if _, err := c.readOK(); err != nil {
		return err
	}
	c.mode = modeV1
	return nil
}

// OpenDataset attaches the connection to the named server-side dataset,
// creating it over a universe of size ≥ u if it does not exist. It
// returns the dataset's current update count — zero for a fresh dataset;
// a verifier must have observed every update already ingested for its
// queries to be accepted. After OpenDataset, Ingest and Query may be
// freely interleaved, and other connections attached to the same name
// see the same data.
func (c *Client) OpenDataset(name string, u uint64) (uint64, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode == modeV1 {
		return 0, fmt.Errorf("wire: OpenDataset on a v1 connection")
	}
	if name == "" || len(name) > maxDatasetName {
		return 0, fmt.Errorf("wire: dataset name must be 1..%d bytes", maxDatasetName)
	}
	if err := c.write(frameOpen, encodeOpen(name, u)); err != nil {
		return 0, err
	}
	count, err := c.readOK()
	if err == nil {
		c.mode = modeV2
		// The server's engine refuses an open whose universe differs from
		// the existing dataset's, so a successful open pins both: proofs
		// fetched on this connection must carry exactly this identity.
		c.dsName, c.dsU = name, u
	}
	return count, err
}

// SendUpdates uploads a batch of stream updates on a v1 connection. The
// caller feeds the same updates to its local verifiers — that is the
// single streaming pass. The server folds each batch into its maintained
// state as it arrives; batches are unacknowledged (EndStream carries the
// ack that covers them all).
func (c *Client) SendUpdates(ups []stream.Update) error {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode != modeV1 {
		return fmt.Errorf("wire: SendUpdates requires a v1 connection (after Hello); use Ingest on named datasets")
	}
	if c.v1Done {
		return fmt.Errorf("wire: SendUpdates after EndStream")
	}
	const batch = 4096
	for len(ups) > 0 {
		n := len(ups)
		if n > batch {
			n = batch
		}
		if err := c.write(frameUpdates, encodeUpdates(ups[:n])); err != nil {
			return err
		}
		ups = ups[n:]
	}
	return nil
}

// Ingest uploads updates into the attached v2 dataset, waiting for the
// server's acknowledgement of every batch. It returns the dataset's
// update count after the last batch (including other connections'
// concurrent ingestion).
func (c *Client) Ingest(ups []stream.Update) (uint64, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode != modeV2 {
		return 0, fmt.Errorf("wire: Ingest requires an attached dataset (call OpenDataset first)")
	}
	const batch = 4096
	var count uint64
	for sent := false; len(ups) > 0 || !sent; sent = true {
		n := len(ups)
		if n > batch {
			n = batch
		}
		if err := c.write(frameUpdates, encodeUpdates(ups[:n])); err != nil {
			return count, err
		}
		var err error
		if count, err = c.readOK(); err != nil {
			return count, err
		}
		ups = ups[n:]
	}
	return count, nil
}

func (c *Client) readOK() (uint64, error) {
	typ, payload, err := c.waitCtrl()
	if err != nil {
		return 0, err
	}
	switch typ {
	case frameOK:
		return decodeCount(payload)
	case frameBudget:
		return 0, fmt.Errorf("%w: %s", ErrBudget, payload)
	case frameError:
		return 0, fmt.Errorf("wire: server error: %s", payload)
	default:
		return 0, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// EndStream marks a v1 upload complete and waits for the server's
// acknowledgement. v1 update batches are streamed without per-batch
// acks, so this is where a mid-upload ingest failure surfaces, typed,
// instead of desynchronizing the first query.
func (c *Client) EndStream() error {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode != modeV1 {
		return fmt.Errorf("wire: EndStream requires a v1 connection")
	}
	if c.v1Done {
		return fmt.Errorf("wire: EndStream twice")
	}
	if err := c.write(frameEndStream, nil); err != nil {
		return err
	}
	if _, err := c.readOK(); err != nil {
		return err
	}
	c.v1Done = true
	return nil
}

// Query sends the query and drives the conversation between the remote
// prover and the local verifier session. A nil error means the verifier
// accepted; results are read from the concrete verifier afterwards.
// Query is safe to call from many goroutines at once: each call runs on
// its own multiplexed channel (it is QueryAsync + Wait).
func (c *Client) Query(kind QueryKind, params QueryParams, v core.VerifierSession) (core.Stats, error) {
	h, err := c.QueryAsync(kind, params, v)
	if err != nil {
		return core.Stats{}, err
	}
	return h.Wait()
}

// ---------------------------------------------------------------------
// Admin plane: dataset handoff and operational stats. These are the
// calls the shard router (and operator tooling) drives shards with;
// they are control-plane request/response pairs and legal in any
// connection state, so a fresh admin connection needs no Hello/Open.

// Handoff asks the server to release the named dataset for migration:
// the engine persists it one final time, detaches it from the registry
// (later ingest through a stale route fails loudly instead of silently
// diverging), and keeps the checkpoint file for the adopter to take.
// It returns the update count the on-disk checkpoint covers.
func (c *Client) Handoff(name string) (uint64, error) {
	return c.adminCall(frameHandoff, name)
}

// Adopt asks the server to register the named dataset from a checkpoint
// file already placed in its data dir — the receiving half of a
// handoff. It returns the adopted checkpoint's update count, which the
// mover compares against Handoff's to assert a loss-free move.
func (c *Client) Adopt(name string) (uint64, error) {
	return c.adminCall(frameAdopt, name)
}

func (c *Client) adminCall(typ byte, name string) (uint64, error) {
	if name == "" || len(name) > maxDatasetName {
		return 0, fmt.Errorf("wire: dataset name must be 1..%d bytes", maxDatasetName)
	}
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if err := c.write(typ, encodeName(name)); err != nil {
		return 0, err
	}
	return c.readOK()
}

// ServerStats fetches the server's operational counters: proof-cache
// accounting plus the startup recovery report (datasets recovered,
// per-file failures of a partial recovery).
func (c *Client) ServerStats() (ServerStats, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if err := c.write(frameStatsReq, nil); err != nil {
		return ServerStats{}, err
	}
	typ, payload, err := c.waitCtrl()
	if err != nil {
		return ServerStats{}, err
	}
	switch typ {
	case frameStatsResp:
		var st ServerStats
		if err := json.Unmarshal(payload, &st); err != nil {
			return ServerStats{}, fmt.Errorf("%w: stats payload: %v", ErrProtocol, err)
		}
		return st, nil
	case frameBudget, frameError:
		return ServerStats{}, ctrlErr(typ, payload)
	default:
		return ServerStats{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// Package wire runs the interactive proofs over TCP: the prover becomes a
// long-lived "cloud" server that maintains datasets as aggregate prover
// state, and the verifier a thin client that keeps only its O(log u)
// summaries while uploading, then drives query conversations over the
// same connection.
//
// This is the deployment sketched in the paper's introduction: "the pass
// over the input can take place incrementally as the verifier uploads
// data to the cloud", after which each query costs the owner a
// logarithmic-size conversation.
//
// Two client flows share one framing:
//
//   - v1 (hello → ok → updates → end-stream → queries): a private,
//     per-connection dataset, charged against the engine's Σ memory
//     budget for the connection's lifetime (the hello is acknowledged
//     once the tables are admitted, or refused with a budget frame).
//     Updates are folded into maintained state as each batch arrives —
//     the server never stores the raw stream and never replays it,
//     however many queries follow.
//   - v2 (open <name> → updates/queries freely interleaved): a named
//     dataset shared through the server's engine. Any number of
//     connections ingest into and query the same dataset concurrently;
//     each query proves against an immutable snapshot taken when the
//     query frame arrives, and ingestion continues meanwhile. Each v2
//     update batch is acknowledged with the dataset's new update count,
//     so cooperating uploaders can sequence their work.
//
// Both flows share the multiplexed conversation revision: after attach,
// each query conversation runs on its own channel id in its own server
// goroutine against its own immutable snapshot, so one connection holds
// any number of overlapped conversations while ingestion keeps flowing
// between their frames (see mux.go and Client.QueryAsync).
//
// # Layering
//
// The package is split into layers, bottom up (see also seam.go):
//
//	frames (internal/wire/frames)  codec: framing + payload layouts
//	codec.go                       unexported aliases onto frames
//	seam.go                        FlowState + ChannelPins + re-exports
//	server.go, mux.go, proof.go    the prover service
//	client.go, mux.go, proof.go    the verifier client
//
// The frames package owns every byte layout; FlowState owns which frame
// is legal next on a connection; ChannelPins owns the channel-id
// routing table. The server, the client, and the shard router
// (internal/shard) are all built from those three pieces, so a proxy
// between a client and a server enforces exactly the rules the server
// would. Only internal/wire/... imports frames directly — everything
// else goes through the exported seam (enforced by a frames test and
// CI).
package wire

import (
	"errors"

	"repro/internal/engine"
)

// QueryKind enumerates the queries the server answers; the values live in
// the engine, which owns prover construction.
type QueryKind = engine.QueryKind

// The wire query kinds.
const (
	QuerySelfJoinSize = engine.QuerySelfJoinSize
	QueryFk           = engine.QueryFk
	QueryRangeSum     = engine.QueryRangeSum
	QueryRangeQuery   = engine.QueryRangeQuery
	QueryIndex        = engine.QueryIndex
	QueryDictionary   = engine.QueryDictionary
	QueryPredecessor  = engine.QueryPredecessor
	QuerySuccessor    = engine.QuerySuccessor
	QueryKLargest     = engine.QueryKLargest
	QueryHeavyHitters = engine.QueryHeavyHitters
	QueryF0           = engine.QueryF0
	QueryFmax         = engine.QueryFmax
	QueryCircuit      = engine.QueryCircuit
)

// QueryParams carries the per-kind parameters; unused fields are zero.
type QueryParams = engine.QueryParams

// DefaultMaxUniverse is the universe-size cap applied when
// Server.MaxUniverse is zero: 2^26 entries ≈ 1 GiB of maintained state
// per dataset. Deployments with bigger datasets raise the knob.
const DefaultMaxUniverse = 1 << 26

// DefaultMaxDatasets caps the named datasets a server-created engine
// will register (each pins O(u) memory forever). Supply your own Engine
// to choose a different policy.
const DefaultMaxDatasets = 1024

// DefaultMaxPrivateDatasets caps how many v1 connections may hold a
// private dataset simultaneously. The primary defense against v1 memory
// exhaustion is the engine's Σ-byte budget (Server.MemBudget), which
// every hello is charged against; the count cap remains as a blunt
// connection-level backstop for servers running without a budget.
const DefaultMaxPrivateDatasets = 32

// DefaultMaxConcurrentQueries caps the multiplexed query conversations
// in flight on one connection when Server.MaxConcurrentQueries is zero.
// Each conversation pins one goroutine and one prover session (O(u)
// table views), so the cap bounds what a single connection can demand.
const DefaultMaxConcurrentQueries = 64

// ErrBudget is the engine's admission failure: the server's resident
// memory budget is exhausted and eviction could not make room. It
// travels the wire as its own frame type, so a client distinguishes
// "server full, retry later or elsewhere" from a protocol violation
// with errors.Is(err, wire.ErrBudget).
var ErrBudget = engine.ErrBudget

// ErrServerClosed is returned by Server.Serve after Server.Close,
// mirroring net/http.ErrServerClosed: an intentional shutdown is not a
// transport failure and callers can distinguish it with errors.Is.
var ErrServerClosed = errors.New("wire: server closed")

// Package wire runs the interactive proofs over TCP: the prover becomes a
// long-lived "cloud" server that ingests the stream as the data owner
// uploads it, and the verifier a thin client that keeps only its O(log u)
// summaries while uploading, then drives query conversations over the
// same connection.
//
// This is the deployment sketched in the paper's introduction: "the pass
// over the input can take place incrementally as the verifier uploads
// data to the cloud", after which each query costs the owner a
// logarithmic-size conversation.
//
// Framing: every frame is [uint32 length][uint8 type][payload], payloads
// little-endian via encoding/binary. Protocol messages (core.Msg) are
// encoded as [uint32 nInts][uint32 nElems][ints…][elems…].
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
)

// Frame types.
const (
	frameHello     = 0x01 // client→server: universe size
	frameUpdates   = 0x02 // client→server: batch of (index, delta)
	frameEndStream = 0x03 // client→server: upload finished
	frameQuery     = 0x04 // client→server: query kind + parameters
	frameProver    = 0x05 // server→client: prover message
	frameChallenge = 0x06 // client→server: verifier challenge
	frameFinish    = 0x07 // client→server: conversation over
	frameError     = 0x08 // server→client: error text
)

// QueryKind enumerates the queries the server answers.
type QueryKind uint8

// The wire query kinds.
const (
	QuerySelfJoinSize QueryKind = iota + 1
	QueryFk
	QueryRangeSum
	QueryRangeQuery
	QueryIndex
	QueryDictionary
	QueryPredecessor
	QuerySuccessor
	QueryKLargest
	QueryHeavyHitters
	QueryF0
	QueryFmax
)

// QueryParams carries the per-kind parameters; unused fields are zero.
type QueryParams struct {
	A, B uint64  // range bounds / point / key
	K    int64   // moment order or k-largest rank
	Phi  float64 // heavy-hitter fraction
}

// maxFrame bounds a single frame (64 MiB) to fail fast on corruption.
const maxFrame = 64 << 20

// ErrProtocol reports a malformed or unexpected frame.
var ErrProtocol = errors.New("wire: protocol error")

// ErrServerClosed is returned by Server.Serve after Server.Close,
// mirroring net/http.ErrServerClosed: an intentional shutdown is not a
// transport failure and callers can distinguish it with errors.Is.
var ErrServerClosed = errors.New("wire: server closed")

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(payload)))
	head[4] = typ
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes", ErrProtocol, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return head[4], payload, nil
}

func encodeMsg(m core.Msg) []byte {
	out := make([]byte, 8+8*len(m.Ints)+8*len(m.Elems))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(m.Ints)))
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(m.Elems)))
	off := 8
	for _, v := range m.Ints {
		binary.LittleEndian.PutUint64(out[off:], v)
		off += 8
	}
	for _, e := range m.Elems {
		binary.LittleEndian.PutUint64(out[off:], uint64(e))
		off += 8
	}
	return out
}

func decodeMsg(b []byte) (core.Msg, error) {
	if len(b) < 8 {
		return core.Msg{}, fmt.Errorf("%w: short message header", ErrProtocol)
	}
	nInts := binary.LittleEndian.Uint32(b[0:4])
	nElems := binary.LittleEndian.Uint32(b[4:8])
	want := 8 + 8*int(nInts) + 8*int(nElems)
	if len(b) != want {
		return core.Msg{}, fmt.Errorf("%w: message body %d bytes, want %d", ErrProtocol, len(b), want)
	}
	var m core.Msg
	off := 8
	if nInts > 0 {
		m.Ints = make([]uint64, nInts)
		for i := range m.Ints {
			m.Ints[i] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
	}
	if nElems > 0 {
		m.Elems = make([]field.Elem, nElems)
		for i := range m.Elems {
			m.Elems[i] = field.Elem(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	return m, nil
}

func encodeQuery(kind QueryKind, p QueryParams) []byte {
	out := make([]byte, 1+8*4)
	out[0] = byte(kind)
	binary.LittleEndian.PutUint64(out[1:], p.A)
	binary.LittleEndian.PutUint64(out[9:], p.B)
	binary.LittleEndian.PutUint64(out[17:], uint64(p.K))
	binary.LittleEndian.PutUint64(out[25:], math.Float64bits(p.Phi))
	return out
}

func decodeQuery(b []byte) (QueryKind, QueryParams, error) {
	if len(b) != 1+8*4 {
		return 0, QueryParams{}, fmt.Errorf("%w: query frame %d bytes", ErrProtocol, len(b))
	}
	kind := QueryKind(b[0])
	p := QueryParams{
		A:   binary.LittleEndian.Uint64(b[1:]),
		B:   binary.LittleEndian.Uint64(b[9:]),
		K:   int64(binary.LittleEndian.Uint64(b[17:])),
		Phi: math.Float64frombits(binary.LittleEndian.Uint64(b[25:])),
	}
	return kind, p, nil
}

// ---------------------------------------------------------------------
// Server

// Server is the cloud-side prover service. It stores the uploaded stream
// per connection and constructs honest provers on demand.
type Server struct {
	F field.Field
	// Workers is handed to every prover the server builds: 0 proves each
	// query serially, n > 0 fans the prover's table scans across n
	// goroutines, n < 0 uses runtime.NumCPU(). Transcripts are identical
	// either way; only latency changes.
	Workers int
	// Corrupt, when non-nil, rewrites the stored stream before proving —
	// a hook for the dishonest-cloud experiments and tests.
	Corrupt func([]stream.Update) []stream.Update

	mu     sync.Mutex
	ln     net.Listener
	closed bool
}

// Serve accepts connections until the listener closes. Each connection is
// served on its own goroutine. After an intentional Close, Serve returns
// ErrServerClosed rather than the listener's "use of closed network
// connection" error.
func (s *Server) Serve(ln net.Listener) error {
	// As in net/http, Serve on an already-closed server refuses without
	// touching (or registering) the caller's listener — a later Close must
	// not close a listener the server never served.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		go func() {
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				_ = writeFrame(conn, frameError, []byte(err.Error()))
			}
		}()
	}
}

// Close stops the listener; a Serve in flight (or started later) returns
// ErrServerClosed. Close is idempotent — each served listener is closed
// at most once.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	ln := s.ln
	s.ln = nil
	if ln != nil {
		return ln.Close()
	}
	return nil
}

func (s *Server) handle(conn net.Conn) error {
	var u uint64
	var updates []stream.Update
	streamDone := false
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case frameHello:
			if len(payload) != 8 {
				return fmt.Errorf("%w: hello frame", ErrProtocol)
			}
			u = binary.LittleEndian.Uint64(payload)
		case frameUpdates:
			if len(payload)%16 != 0 {
				return fmt.Errorf("%w: update batch", ErrProtocol)
			}
			for off := 0; off < len(payload); off += 16 {
				updates = append(updates, stream.Update{
					Index: binary.LittleEndian.Uint64(payload[off:]),
					Delta: int64(binary.LittleEndian.Uint64(payload[off+8:])),
				})
			}
		case frameEndStream:
			streamDone = true
		case frameQuery:
			if !streamDone {
				return fmt.Errorf("%w: query before end of stream", ErrProtocol)
			}
			kind, params, err := decodeQuery(payload)
			if err != nil {
				return err
			}
			ups := updates
			if s.Corrupt != nil {
				ups = s.Corrupt(append([]stream.Update(nil), updates...))
			}
			session, err := BuildProver(s.F, u, kind, params, ups, s.Workers)
			if err != nil {
				return err
			}
			if err := s.converse(conn, session); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
		}
	}
}

// converse drives one query conversation from the prover side.
func (s *Server) converse(conn net.Conn, p core.ProverSession) error {
	opening, err := p.Open()
	if err != nil {
		return err
	}
	if err := writeFrame(conn, frameProver, encodeMsg(opening)); err != nil {
		return err
	}
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case frameFinish:
			return nil
		case frameChallenge:
			ch, err := decodeMsg(payload)
			if err != nil {
				return err
			}
			resp, err := p.Step(ch)
			if err != nil {
				return err
			}
			if err := writeFrame(conn, frameProver, encodeMsg(resp)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected frame 0x%02x mid-conversation", ErrProtocol, typ)
		}
	}
}

// BuildProver constructs the prover session for a query by replaying the
// stored stream — the honest cloud's behavior. workers is the prover's
// parallel fan-out (0 serial, n < 0 runtime.NumCPU()); the transcript is
// identical for every value.
func BuildProver(f field.Field, u uint64, kind QueryKind, params QueryParams, ups []stream.Update, workers int) (core.ProverSession, error) {
	observe := func(obs interface{ Observe(stream.Update) error }) error {
		for _, up := range ups {
			if err := obs.Observe(up); err != nil {
				return err
			}
		}
		return nil
	}
	switch kind {
	case QuerySelfJoinSize, QueryFk:
		k := 2
		if kind == QueryFk {
			k = int(params.K)
		}
		proto, err := core.NewFk(f, u, k)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		return p, observe(p)
	case QueryRangeSum:
		proto, err := core.NewRangeSum(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A, params.B)
	case QueryRangeQuery:
		proto, err := core.NewRangeQuery(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A, params.B)
	case QueryIndex:
		proto, err := core.NewIndex(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryDictionary:
		proto, err := core.NewDictionary(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryPredecessor:
		proto, err := core.NewPredecessor(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QuerySuccessor:
		proto, err := core.NewSuccessor(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryKLargest:
		proto, err := core.NewKLargest(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(int(params.K))
	case QueryHeavyHitters:
		proto, err := core.NewHeavyHitters(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.Phi)
	case QueryF0:
		proto, err := core.NewF0(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		return p, observe(p)
	case QueryFmax:
		proto, err := core.NewFmax(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		return p, observe(p)
	default:
		return nil, fmt.Errorf("wire: unknown query kind %d", kind)
	}
}

// ---------------------------------------------------------------------
// Client

// Client is the data-owner side: it uploads the stream (keeping only its
// local verifier summaries) and drives query conversations.
type Client struct {
	conn net.Conn
}

// Dial connects to a prover server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Hello announces the universe size.
func (c *Client) Hello(u uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], u)
	return writeFrame(c.conn, frameHello, b[:])
}

// SendUpdates uploads a batch of stream updates. The caller feeds the
// same updates to its local verifiers — that is the single streaming pass.
func (c *Client) SendUpdates(ups []stream.Update) error {
	const batch = 4096
	for len(ups) > 0 {
		n := len(ups)
		if n > batch {
			n = batch
		}
		payload := make([]byte, 16*n)
		for i, up := range ups[:n] {
			binary.LittleEndian.PutUint64(payload[16*i:], up.Index)
			binary.LittleEndian.PutUint64(payload[16*i+8:], uint64(up.Delta))
		}
		if err := writeFrame(c.conn, frameUpdates, payload); err != nil {
			return err
		}
		ups = ups[n:]
	}
	return nil
}

// EndStream marks the upload complete.
func (c *Client) EndStream() error {
	return writeFrame(c.conn, frameEndStream, nil)
}

// Query sends the query and drives the conversation between the remote
// prover and the local verifier session. A nil error means the verifier
// accepted; results are read from the concrete verifier afterwards.
func (c *Client) Query(kind QueryKind, params QueryParams, v core.VerifierSession) (core.Stats, error) {
	var st core.Stats
	if err := writeFrame(c.conn, frameQuery, encodeQuery(kind, params)); err != nil {
		return st, err
	}
	msg, err := c.readProverMsg()
	if err != nil {
		return st, err
	}
	st.Rounds++
	st.WordsToVerifier += msg.Words()
	challenge, done, err := v.Begin(msg)
	for !done {
		if err != nil {
			break
		}
		st.WordsToProver += challenge.Words()
		if err = writeFrame(c.conn, frameChallenge, encodeMsg(challenge)); err != nil {
			return st, err
		}
		msg, err = c.readProverMsg()
		if err != nil {
			return st, err
		}
		st.Rounds++
		st.WordsToVerifier += msg.Words()
		challenge, done, err = v.Step(msg)
	}
	if ferr := writeFrame(c.conn, frameFinish, nil); ferr != nil && err == nil {
		err = ferr
	}
	return st, err
}

func (c *Client) readProverMsg() (core.Msg, error) {
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		return core.Msg{}, err
	}
	switch typ {
	case frameProver:
		return decodeMsg(payload)
	case frameError:
		return core.Msg{}, fmt.Errorf("wire: server error: %s", payload)
	default:
		return core.Msg{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

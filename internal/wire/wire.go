// Package wire runs the interactive proofs over TCP: the prover becomes a
// long-lived "cloud" server that maintains datasets as aggregate prover
// state, and the verifier a thin client that keeps only its O(log u)
// summaries while uploading, then drives query conversations over the
// same connection.
//
// This is the deployment sketched in the paper's introduction: "the pass
// over the input can take place incrementally as the verifier uploads
// data to the cloud", after which each query costs the owner a
// logarithmic-size conversation.
//
// Two client flows share one framing:
//
//   - v1 (hello → ok → updates → end-stream → queries): a private,
//     per-connection dataset, charged against the engine's Σ memory
//     budget for the connection's lifetime (the hello is acknowledged
//     once the tables are admitted, or refused with a budget frame).
//     Updates are folded into maintained state as each batch arrives —
//     the server never stores the raw stream and never replays it,
//     however many queries follow.
//   - v2 (open <name> → updates/queries freely interleaved): a named
//     dataset shared through the server's engine. Any number of
//     connections ingest into and query the same dataset concurrently;
//     each query proves against an immutable snapshot taken when the
//     query frame arrives, and ingestion continues meanwhile. Each v2
//     update batch is acknowledged with the dataset's new update count,
//     so cooperating uploaders can sequence their work.
//
// Both flows share the multiplexed conversation revision: after attach,
// each query conversation runs on its own channel id in its own server
// goroutine against its own immutable snapshot, so one connection holds
// any number of overlapped conversations while ingestion keeps flowing
// between their frames (see mux.go and Client.QueryAsync).
//
// Framing: every frame is [uint32 length][uint8 type][payload], payloads
// little-endian via encoding/binary. Protocol messages (core.Msg) are
// encoded as [uint32 nInts][uint32 nElems][ints…][elems…]. Channel
// frames prefix the payload with a uint32 channel id.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/gkr"
	"repro/internal/proofcache"
	"repro/internal/stream"
)

// Frame types. Frames 0x01–0x0b are connection-scoped (the implicit
// control channel); frames 0x0c–0x13 are the mux revision's
// channel-scoped conversation frames, whose payload begins with a
// uint32 channel id (see mux.go).
const (
	frameHello     = 0x01 // client→server: universe size (v1, private dataset)
	frameUpdates   = 0x02 // client→server: batch of (index, delta)
	frameEndStream = 0x03 // client→server: v1 upload finished (acked with frameOK)
	frameQuery     = 0x04 // client→server: query kind + parameters (serial conversation)
	frameProver    = 0x05 // server→client: prover message (serial conversation)
	frameChallenge = 0x06 // client→server: verifier challenge (serial conversation)
	frameFinish    = 0x07 // client→server: conversation over (serial conversation)
	frameError     = 0x08 // server→client: connection-fatal error text
	frameOpen      = 0x09 // client→server: attach to named dataset (v2)
	frameOK        = 0x0a // server→client: ack with dataset update count
	frameBudget    = 0x0b // server→client: admission refused, memory budget exhausted

	frameQueryCh     = 0x0c // client→server: open conversation channel [ch][query]
	frameChallengeCh = 0x0d // client→server: verifier challenge [ch][msg]
	frameProverCh    = 0x0e // server→client: prover message [ch][msg]
	frameFinishCh    = 0x0f // client→server: conversation over [ch]
	frameErrorCh     = 0x10 // server→client: channel failed [ch][text]; connection survives
	frameBudgetCh    = 0x11 // server→client: channel refused, budget/cap exhausted [ch][text]

	frameProofReqCh = 0x12 // client→server: fetch the posted proof [ch][version][query]
	frameProofCh    = 0x13 // server→client: encoded Fiat–Shamir proof [ch][proof]
)

// QueryKind enumerates the queries the server answers; the values live in
// the engine, which owns prover construction.
type QueryKind = engine.QueryKind

// The wire query kinds.
const (
	QuerySelfJoinSize = engine.QuerySelfJoinSize
	QueryFk           = engine.QueryFk
	QueryRangeSum     = engine.QueryRangeSum
	QueryRangeQuery   = engine.QueryRangeQuery
	QueryIndex        = engine.QueryIndex
	QueryDictionary   = engine.QueryDictionary
	QueryPredecessor  = engine.QueryPredecessor
	QuerySuccessor    = engine.QuerySuccessor
	QueryKLargest     = engine.QueryKLargest
	QueryHeavyHitters = engine.QueryHeavyHitters
	QueryF0           = engine.QueryF0
	QueryFmax         = engine.QueryFmax
	QueryCircuit      = engine.QueryCircuit
)

// QueryParams carries the per-kind parameters; unused fields are zero.
type QueryParams = engine.QueryParams

// maxFrame bounds a single frame (64 MiB) to fail fast on corruption.
const maxFrame = 64 << 20

// maxDatasetName bounds the name carried by an open frame.
const maxDatasetName = 255

// maxCircuitName bounds the circuit family name a CIRCUIT query frame
// may carry; registry names are short, so anything longer is garbage.
const maxCircuitName = 64

// DefaultMaxUniverse is the universe-size cap applied when
// Server.MaxUniverse is zero: 2^26 entries ≈ 1 GiB of maintained state
// per dataset. Deployments with bigger datasets raise the knob.
const DefaultMaxUniverse = 1 << 26

// DefaultMaxDatasets caps the named datasets a server-created engine
// will register (each pins O(u) memory forever). Supply your own Engine
// to choose a different policy.
const DefaultMaxDatasets = 1024

// DefaultMaxPrivateDatasets caps how many v1 connections may hold a
// private dataset simultaneously. The primary defense against v1 memory
// exhaustion is the engine's Σ-byte budget (Server.MemBudget), which
// every hello is charged against; the count cap remains as a blunt
// connection-level backstop for servers running without a budget.
const DefaultMaxPrivateDatasets = 32

// DefaultMaxConcurrentQueries caps the multiplexed query conversations
// in flight on one connection when Server.MaxConcurrentQueries is zero.
// Each conversation pins one goroutine and one prover session (O(u)
// table views), so the cap bounds what a single connection can demand.
const DefaultMaxConcurrentQueries = 64

// ErrProtocol reports a malformed or unexpected frame.
var ErrProtocol = errors.New("wire: protocol error")

// ErrBudget is the engine's admission failure: the server's resident
// memory budget is exhausted and eviction could not make room. It
// travels the wire as its own frame type, so a client distinguishes
// "server full, retry later or elsewhere" from a protocol violation
// with errors.Is(err, wire.ErrBudget).
var ErrBudget = engine.ErrBudget

// ErrServerClosed is returned by Server.Serve after Server.Close,
// mirroring net/http.ErrServerClosed: an intentional shutdown is not a
// transport failure and callers can distinguish it with errors.Is.
var ErrServerClosed = errors.New("wire: server closed")

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(payload)))
	head[4] = typ
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes", ErrProtocol, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return head[4], payload, nil
}

func encodeMsg(m core.Msg) []byte {
	out := make([]byte, 8+8*len(m.Ints)+8*len(m.Elems))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(m.Ints)))
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(m.Elems)))
	off := 8
	for _, v := range m.Ints {
		binary.LittleEndian.PutUint64(out[off:], v)
		off += 8
	}
	for _, e := range m.Elems {
		binary.LittleEndian.PutUint64(out[off:], uint64(e))
		off += 8
	}
	return out
}

func decodeMsg(b []byte) (core.Msg, error) {
	if len(b) < 8 {
		return core.Msg{}, fmt.Errorf("%w: short message header", ErrProtocol)
	}
	nInts := binary.LittleEndian.Uint32(b[0:4])
	nElems := binary.LittleEndian.Uint32(b[4:8])
	// Bound the section counts before any size arithmetic: on 32-bit
	// platforms a crafted header can overflow `want` (8 + 8*nInts +
	// 8*nElems in int) into a small value, or force a giant allocation
	// before the length check below runs. Nothing legitimate exceeds
	// maxFrame/8 words per section.
	const maxWords = maxFrame / 8
	if uint64(nInts) > maxWords || uint64(nElems) > maxWords {
		return core.Msg{}, fmt.Errorf("%w: message header claims %d+%d words", ErrProtocol, nInts, nElems)
	}
	want := 8 + 8*int(nInts) + 8*int(nElems)
	if len(b) != want {
		return core.Msg{}, fmt.Errorf("%w: message body %d bytes, want %d", ErrProtocol, len(b), want)
	}
	var m core.Msg
	off := 8
	if nInts > 0 {
		m.Ints = make([]uint64, nInts)
		for i := range m.Ints {
			m.Ints[i] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
	}
	if nElems > 0 {
		m.Elems = make([]field.Elem, nElems)
		for i := range m.Elems {
			m.Elems[i] = field.Elem(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	return m, nil
}

// encodeQuery lays out a query frame: the fixed numeric parameter block,
// then — for CIRCUIT queries only — the circuit family name in UTF-8.
func encodeQuery(kind QueryKind, p QueryParams) []byte {
	n := 1 + 8*4
	if kind == QueryCircuit {
		n += len(p.Circuit)
	}
	out := make([]byte, 1+8*4, n)
	out[0] = byte(kind)
	binary.LittleEndian.PutUint64(out[1:], p.A)
	binary.LittleEndian.PutUint64(out[9:], p.B)
	binary.LittleEndian.PutUint64(out[17:], uint64(p.K))
	binary.LittleEndian.PutUint64(out[25:], math.Float64bits(p.Phi))
	if kind == QueryCircuit {
		out = append(out, p.Circuit...)
	}
	return out
}

func decodeQuery(b []byte) (QueryKind, QueryParams, error) {
	if len(b) < 1+8*4 {
		return 0, QueryParams{}, fmt.Errorf("%w: query frame %d bytes", ErrProtocol, len(b))
	}
	kind := QueryKind(b[0])
	p := QueryParams{
		A:   binary.LittleEndian.Uint64(b[1:]),
		B:   binary.LittleEndian.Uint64(b[9:]),
		K:   int64(binary.LittleEndian.Uint64(b[17:])),
		Phi: math.Float64frombits(binary.LittleEndian.Uint64(b[25:])),
	}
	name := b[1+8*4:]
	if kind == QueryCircuit {
		if len(name) > maxCircuitName {
			return 0, QueryParams{}, fmt.Errorf("%w: circuit name of %d bytes", ErrProtocol, len(name))
		}
		// An empty (or unknown) name is refused by the engine with a typed
		// error, not by the codec: the frame itself is well-formed.
		p.Circuit = string(name)
	} else if len(name) != 0 {
		return 0, QueryParams{}, fmt.Errorf("%w: query frame %d bytes", ErrProtocol, len(b))
	}
	return kind, p, nil
}

// encodeOpen lays out an open frame: the universe size, then the dataset
// name in UTF-8.
func encodeOpen(name string, u uint64) []byte {
	out := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(out[:8], u)
	copy(out[8:], name)
	return out
}

func decodeOpen(b []byte) (name string, u uint64, err error) {
	if len(b) < 9 {
		return "", 0, fmt.Errorf("%w: open frame %d bytes", ErrProtocol, len(b))
	}
	if len(b)-8 > maxDatasetName {
		return "", 0, fmt.Errorf("%w: dataset name of %d bytes", ErrProtocol, len(b)-8)
	}
	return string(b[8:]), binary.LittleEndian.Uint64(b[:8]), nil
}

func encodeCount(n uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], n)
	return b[:]
}

func decodeCount(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: count frame %d bytes", ErrProtocol, len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// decodeUpdateColumns splits an updates payload into index/delta columns,
// the shape the engine's batch kernel ingests directly.
func decodeUpdateColumns(payload []byte) (idx []uint64, deltas []int64, err error) {
	if len(payload)%16 != 0 {
		return nil, nil, fmt.Errorf("%w: update batch", ErrProtocol)
	}
	n := len(payload) / 16
	idx = make([]uint64, n)
	deltas = make([]int64, n)
	for i := 0; i < n; i++ {
		idx[i] = binary.LittleEndian.Uint64(payload[16*i:])
		deltas[i] = int64(binary.LittleEndian.Uint64(payload[16*i+8:]))
	}
	return idx, deltas, nil
}

// ---------------------------------------------------------------------
// Server

// Server is the cloud-side prover service. Datasets are maintained
// aggregate state: per-connection for the v1 flow, shared through Engine
// for the v2 named-dataset flow. Provers are constructed from snapshots —
// the stream is ingested once and never replayed.
type Server struct {
	F field.Field
	// Workers is handed to every prover the server builds: 0 proves each
	// query serially, n > 0 fans the prover's table scans across n
	// goroutines, n < 0 uses runtime.NumCPU(). Transcripts are identical
	// either way; only latency changes.
	Workers int
	// Engine holds the named datasets served to v2 connections. Leave nil
	// to have the server create one on first use; share one Engine to
	// serve the same datasets from several listeners.
	Engine *engine.Engine
	// IdleTimeout bounds how long the server waits for the next frame
	// from (or write to) a client before abandoning the connection, so a
	// stalled or malicious peer cannot pin a handler goroutine forever.
	// Zero means no deadline.
	IdleTimeout time.Duration
	// MaxUniverse caps the universe size a client may announce with
	// hello or open — a dataset allocates 16 bytes per universe entry up
	// front, so without a cap one cheap frame could exhaust server
	// memory. Zero selects DefaultMaxUniverse.
	MaxUniverse uint64
	// MaxPrivateDatasets caps how many v1 connections may hold a private
	// dataset at once. Zero selects DefaultMaxPrivateDatasets; negative
	// means no cap. It is a backstop: each v1 dataset's tables are also
	// charged against the engine's Σ budget (MemBudget) at hello and
	// released when the connection ends, so byte-level governance does
	// not depend on this count.
	MaxPrivateDatasets int
	// MaxConcurrentQueries caps the multiplexed query conversations in
	// flight per connection. An excess channel open is refused with a
	// per-channel budget frame (the conversation fails typed as
	// ErrBudget client-side; the connection and its other conversations
	// continue). Zero selects DefaultMaxConcurrentQueries; negative
	// means no cap.
	MaxConcurrentQueries int
	// MemBudget caps the engine's aggregate resident dataset memory in
	// bytes (engine.SetBudget). When admission would exceed it, LRU
	// datasets are evicted to DataDir; with no DataDir the open or
	// ingest fails with a budget error frame. Zero means unlimited.
	MemBudget int64
	// DataDir is the checkpoint directory. When set, Serve configures
	// the engine with it and recovers every checkpointed dataset before
	// accepting connections, so a restarted server answers queries over
	// its previous datasets with no re-ingestion.
	DataDir string
	// CheckpointEvery starts the engine's background checkpointer at
	// that interval (requires DataDir): a crash loses at most the last
	// interval of ingestion. Zero disables background checkpointing.
	CheckpointEvery time.Duration
	// ProofCacheBudget caps the bytes of encoded Fiat–Shamir proofs the
	// server keeps for PROOF requests (see proof.go): one proof is
	// generated per (dataset, version, query) and served to every
	// verifier that asks. Zero selects DefaultProofCacheBudget; negative
	// disables storage (requests still single-flight, nothing is kept).
	ProofCacheBudget int64
	// Corrupt, when non-nil, rewrites a clone of the maintained counts
	// before proving — a hook for the dishonest-cloud experiments and
	// tests. It applies to v1 connections only and costs O(u), not
	// O(stream): no raw stream is retained anywhere in the server.
	Corrupt func(counts []int64) []int64

	proofCache *proofcache.Cache // lazily built by proofCacheRef; guarded by mu
	mu         sync.Mutex
	lns        map[net.Listener]struct{} // every listener currently being served
	closed     bool
	inited     bool                  // engine configured (budget/data dir/recovery) by Serve
	ownEngine  bool                  // engine was created by this server (Close may close it)
	v1Alive    int                   // v1 connections currently holding a private dataset
	conns      map[net.Conn]struct{} // connections with a live handler
	handlers   sync.WaitGroup        // one per handler goroutine; drained by Close
}

// Serve accepts connections until the listener closes. Each connection is
// served on its own goroutine. Before accepting, Serve applies the
// server's resource/durability configuration to the engine (MemBudget,
// DataDir with a recovery scan, CheckpointEvery); a failed recovery
// refuses to serve rather than silently dropping datasets. After an
// intentional Close, Serve returns ErrServerClosed rather than the
// listener's "use of closed network connection" error.
func (s *Server) Serve(ln net.Listener) error {
	// As in net/http, Serve on an already-closed server refuses without
	// touching (or registering) the caller's listener — a later Close must
	// not close a listener the server never served.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	// Every listener being served is tracked in a set: Serve may be
	// called concurrently on several listeners (sharing one engine), and
	// Close must stop all of them, not just the most recent.
	if s.lns == nil {
		s.lns = make(map[net.Listener]struct{})
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	if err := s.engineInit(); err != nil {
		// A Serve that never accepted must not leave the listener
		// registered: per the contract above, a later Close closes only
		// listeners the server actually served.
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			if !closed {
				// The listener died on its own; it is no longer served,
				// so a later Close must not touch it.
				delete(s.lns, ln)
			}
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			// Close already snapshotted the registry; don't start a
			// handler it would not drain.
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.handlers.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				typ := byte(frameError)
				if errors.Is(err, engine.ErrBudget) {
					typ = frameBudget
				}
				_ = s.write(conn, typ, []byte(err.Error()))
			}
		}()
	}
}

// engineInit configures the engine once per server: budget, data dir,
// startup recovery of checkpointed datasets, background checkpointing.
// It runs under the server lock, so Serve never accepts before recovery
// finishes, and inited is set only on success — a failed init (say, an
// unwritable data dir) is retried by the next Serve instead of being
// silently skipped.
func (s *Server) engineInit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inited {
		return nil
	}
	if s.Engine == nil {
		s.Engine = engine.New(s.F, s.Workers)
		s.Engine.SetMaxDatasets(DefaultMaxDatasets)
		s.ownEngine = true
	}
	eng := s.Engine
	if s.MemBudget > 0 {
		eng.SetBudget(s.MemBudget)
	}
	if s.DataDir != "" {
		if err := eng.SetDataDir(s.DataDir); err != nil {
			return fmt.Errorf("wire: data dir: %w", err)
		}
		if _, err := eng.Recover(); err != nil && !errors.Is(err, engine.ErrPartialRecovery) {
			// A damaged file must not take the server down (its healthy
			// datasets were still registered — skip semantics); only a
			// scan-level failure refuses to serve.
			return fmt.Errorf("wire: recovering datasets: %w", err)
		}
		if s.CheckpointEvery > 0 {
			if err := eng.StartCheckpointer(s.CheckpointEvery); err != nil && !errors.Is(err, engine.ErrCheckpointerRunning) {
				// Already-running is fine: another listener sharing this
				// engine started it.
				return fmt.Errorf("wire: checkpointer: %w", err)
			}
		}
	}
	s.inited = true
	return nil
}

// Close stops every served listener, closes every live connection, and waits for
// the handler goroutines to drain before any final persistence; a Serve
// in flight (or started later) returns ErrServerClosed. Close is
// idempotent — each served listener is closed at most once. If this
// server created its own engine and configured persistence (DataDir),
// Close then also closes the engine — the background checkpointer stops
// and dirty datasets are persisted one final time. Because the drain
// happens first, no handler can be mid-IngestColumns when that final
// persist runs: every batch folded (and, on v2, acknowledged) before
// shutdown is captured, making an orderly shutdown genuinely loss-free.
// A caller-supplied Engine is left running (it may be shared with other
// listeners); its owner calls engine.Close — after this Close returns,
// with no handler still folding.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	s.lns = nil
	eng := s.Engine
	persist := s.ownEngine && s.inited && s.DataDir != ""
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var lnErr error
	for _, ln := range lns {
		lnErr = errors.Join(lnErr, ln.Close())
	}
	// Interrupt handlers blocked on socket reads (a closed conn fails the
	// next read; an in-flight IngestColumns still completes), then wait
	// them all out.
	for _, c := range conns {
		_ = c.Close()
	}
	s.handlers.Wait()
	if persist && eng != nil {
		if err := eng.Close(); err != nil {
			return err
		}
	}
	return lnErr
}

// engineRef returns the shared engine, creating it (with the default
// dataset cap) on first use.
func (s *Server) engineRef() *engine.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Engine == nil {
		s.Engine = engine.New(s.F, s.Workers)
		s.Engine.SetMaxDatasets(DefaultMaxDatasets)
		s.ownEngine = true
	}
	return s.Engine
}

// checkUniverse enforces the server's universe-size cap.
func (s *Server) checkUniverse(u uint64) error {
	limit := s.MaxUniverse
	if limit == 0 {
		limit = DefaultMaxUniverse
	}
	if u > limit {
		return fmt.Errorf("%w: universe %d exceeds the server limit %d", ErrProtocol, u, limit)
	}
	return nil
}

// acquireV1 reserves a private-dataset slot for a v1 connection;
// releaseV1 returns it when the connection ends. Exhaustion is a
// resource refusal ("server full, retry later"), not a protocol
// violation, so it is typed ErrBudget and travels as a budget frame.
func (s *Server) acquireV1() error {
	limit := s.MaxPrivateDatasets
	if limit == 0 {
		limit = DefaultMaxPrivateDatasets
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit > 0 && s.v1Alive >= limit {
		return fmt.Errorf("%w: too many concurrent private datasets (limit %d)", ErrBudget, limit)
	}
	s.v1Alive++
	return nil
}

func (s *Server) releaseV1() {
	s.mu.Lock()
	s.v1Alive--
	s.mu.Unlock()
}

// read receives one frame, applying the idle deadline.
func (s *Server) read(conn net.Conn) (byte, []byte, error) {
	if s.IdleTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
			return 0, nil, err
		}
	}
	return readFrame(conn)
}

// write sends one frame, applying the idle deadline.
func (s *Server) write(conn net.Conn, typ byte, payload []byte) error {
	if s.IdleTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
			return err
		}
	}
	return writeFrame(conn, typ, payload)
}

// connState is the frame state machine: which frames are legal next.
type connState int

const (
	connStart  connState = iota // nothing received: expect hello or open
	connV1Load                  // v1 upload in progress
	connV1Done                  // v1 upload finished: queries only
	connV2                      // attached to a named dataset
)

func (s *Server) handle(conn net.Conn) error {
	st := connStart
	var ds *engine.Dataset // v1: private; v2: shared named dataset
	v1Slot := false
	var v1Bytes int64 // budget reservation held by this connection's private dataset
	mux := newConnMux(s, conn)
	defer func() {
		// Unblock and drain this connection's conversation goroutines
		// before the handler's caller writes any final error frame or
		// closes the socket.
		mux.shutdown()
		if v1Bytes > 0 {
			s.engineRef().ReleaseBytes(v1Bytes)
		}
		if v1Slot {
			s.releaseV1()
		}
	}()
	for {
		typ, payload, err := s.read(conn)
		if err != nil {
			return err
		}
		switch typ {
		case frameHello:
			if st != connStart {
				return fmt.Errorf("%w: hello after the stream started", ErrProtocol)
			}
			if len(payload) != 8 {
				return fmt.Errorf("%w: hello frame", ErrProtocol)
			}
			u := binary.LittleEndian.Uint64(payload)
			if err := s.checkUniverse(u); err != nil {
				return err
			}
			if err := s.acquireV1(); err != nil {
				return err
			}
			v1Slot = true
			// The private dataset's tables are charged against the same Σ
			// budget as the named datasets (LRU names may be evicted to
			// admit it); the reservation is released when the connection
			// ends. A refusal reaches the client as a budget frame.
			cost, err := engine.TableCost(u)
			if err != nil {
				return err
			}
			if err := s.engineRef().AdmitBytes(cost); err != nil {
				return err
			}
			v1Bytes = cost
			// Honest or cheating, the connection maintains only the dense
			// aggregate state: O(u) memory, independent of stream length.
			if ds, err = engine.NewDataset(s.F, u, s.Workers); err != nil {
				return err
			}
			st = connV1Load
			if err := mux.write(frameOK, encodeCount(0)); err != nil {
				return err
			}
		case frameOpen:
			if st != connStart && st != connV2 {
				return fmt.Errorf("%w: open on a v1 connection", ErrProtocol)
			}
			name, uu, err := decodeOpen(payload)
			if err != nil {
				return err
			}
			if err := s.checkUniverse(uu); err != nil {
				return err
			}
			if ds, err = s.engineRef().Open(name, uu); err != nil {
				return err
			}
			st = connV2
			if err := mux.write(frameOK, encodeCount(ds.Updates())); err != nil {
				return err
			}
		case frameUpdates:
			if st != connV1Load && st != connV2 {
				return fmt.Errorf("%w: updates outside an upload phase", ErrProtocol)
			}
			idx, deltas, err := decodeUpdateColumns(payload)
			if err != nil {
				return err
			}
			if err := ds.IngestColumns(idx, deltas); err != nil {
				return err
			}
			if st == connV2 {
				if err := mux.write(frameOK, encodeCount(ds.Updates())); err != nil {
					return err
				}
			}
		case frameEndStream:
			if st != connV1Load {
				return fmt.Errorf("%w: end-of-stream outside a v1 upload", ErrProtocol)
			}
			st = connV1Done
			// The ack closes the v1 upload's only unacknowledged window:
			// any ingest failure has already killed the connection by now,
			// so a client that reads this OK knows every batch folded.
			if err := mux.write(frameOK, encodeCount(ds.Updates())); err != nil {
				return err
			}
		case frameQuery:
			if st != connV1Done && st != connV2 {
				return fmt.Errorf("%w: query before end of stream", ErrProtocol)
			}
			kind, params, err := decodeQuery(payload)
			if err != nil {
				return err
			}
			// Snapshots rehydrate evicted datasets transparently; the
			// admission control inside can refuse with a budget error.
			snap, err := ds.SnapshotErr()
			if err != nil {
				return err
			}
			session, err := s.buildSession(snap, ds, st, kind, params)
			if err != nil {
				return err
			}
			if err := s.converse(conn, mux, session); err != nil {
				return err
			}
		case frameQueryCh, frameChallengeCh, frameFinishCh, frameProofReqCh:
			if err := mux.dispatch(typ, payload, ds, st); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
		}
	}
}

// buildSession constructs the prover session for one query from an
// already-taken snapshot — shared by the serial and multiplexed
// conversation paths so they can never diverge. On the v1 path a
// configured Corrupt hook rewrites a clone of the maintained counts
// first — the dishonest cloud proves from doctored state.
func (s *Server) buildSession(snap *engine.Snapshot, ds *engine.Dataset, st connState, kind QueryKind, params QueryParams) (core.ProverSession, error) {
	if st == connV1Done && s.Corrupt != nil {
		counts := s.Corrupt(append([]int64(nil), snap.Counts()...))
		var err error
		if snap, err = engine.SnapshotFromCounts(s.F, ds.UniverseSize(), s.Workers, counts); err != nil {
			return nil, err
		}
	}
	return snap.NewProver(kind, params)
}

// converse drives one serial (pre-mux) query conversation from the
// prover side: the read loop is parked here until the client finishes.
func (s *Server) converse(conn net.Conn, mux *connMux, p core.ProverSession) error {
	opening, err := p.Open()
	if err != nil {
		return err
	}
	if err := mux.write(frameProver, encodeMsg(opening)); err != nil {
		return err
	}
	for {
		typ, payload, err := s.read(conn)
		if err != nil {
			return err
		}
		switch typ {
		case frameFinish:
			return nil
		case frameChallenge:
			ch, err := decodeMsg(payload)
			if err != nil {
				return err
			}
			resp, err := p.Step(ch)
			if err != nil {
				return err
			}
			if err := mux.write(frameProver, encodeMsg(resp)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected frame 0x%02x mid-conversation", ErrProtocol, typ)
		}
	}
}

// BuildProver constructs the prover session for a query by replaying a
// raw stream through the session's Observe path. The serving path never
// does this — provers come from dataset snapshots, and even the
// dishonest-cloud hook rewrites maintained counts — but the replay
// construction remains as the baseline the amortization benchmarks and
// the engine's transcript-equality tests compare against. workers is the
// prover's parallel fan-out (0 serial, n < 0 runtime.NumCPU()); the
// transcript is identical for every value.
func BuildProver(f field.Field, u uint64, kind QueryKind, params QueryParams, ups []stream.Update, workers int) (core.ProverSession, error) {
	observe := func(obs interface{ Observe(stream.Update) error }) error {
		for _, up := range ups {
			if err := obs.Observe(up); err != nil {
				return err
			}
		}
		return nil
	}
	switch kind {
	case QuerySelfJoinSize, QueryFk:
		k := 2
		if kind == QueryFk {
			k = int(params.K)
		}
		proto, err := core.NewFk(f, u, k)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		return p, observe(p)
	case QueryRangeSum:
		proto, err := core.NewRangeSum(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A, params.B)
	case QueryRangeQuery:
		proto, err := core.NewRangeQuery(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A, params.B)
	case QueryIndex:
		proto, err := core.NewIndex(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryDictionary:
		proto, err := core.NewDictionary(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryPredecessor:
		proto, err := core.NewPredecessor(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QuerySuccessor:
		proto, err := core.NewSuccessor(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.A)
	case QueryKLargest:
		proto, err := core.NewKLargest(f, u)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(int(params.K))
	case QueryHeavyHitters:
		proto, err := core.NewHeavyHitters(f, u)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		if err := observe(p); err != nil {
			return nil, err
		}
		return p, p.SetQuery(params.Phi)
	case QueryF0:
		proto, err := core.NewF0(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		proto.Workers = workers
		p := proto.NewProver()
		return p, observe(p)
	case QueryFmax:
		proto, err := core.NewFmax(f, u, params.Phi)
		if err != nil {
			return nil, err
		}
		proto.SetWorkers(workers)
		p := proto.NewProver()
		return p, observe(p)
	case QueryCircuit:
		proto, err := gkr.NewProtocolFor(f, circuit.Spec{Name: params.Circuit, Arg: params.A}, u, workers)
		if err != nil {
			return nil, err
		}
		// The GKR prover takes a dense input vector, so "replay" means
		// accumulating the stream into the circuit's input table; indices
		// the circuit does not read are outside the statement (see
		// gkr.VerifierSession.Observe).
		input := make([]field.Elem, proto.C.InputSize)
		for _, up := range ups {
			if up.Index >= u {
				return nil, fmt.Errorf("wire: index %d outside universe [0,%d)", up.Index, u)
			}
			if up.Index < uint64(len(input)) {
				input[up.Index] = f.Add(input[up.Index], f.FromInt64(up.Delta))
			}
		}
		return proto.NewProverSession(input)
	default:
		return nil, fmt.Errorf("wire: unknown query kind %d", kind)
	}
}

// ---------------------------------------------------------------------
// Client

// Client is the data-owner side: it uploads the stream (keeping only its
// local verifier summaries) and drives query conversations. The v1 flow
// is Hello → SendUpdates → EndStream → Query; the v2 flow is
// OpenDataset → Ingest/Query in any order.
//
// A Client is safe for concurrent use: Query and QueryAsync multiplex
// any number of conversations over the one connection (each on its own
// channel id, demultiplexed by a reader goroutine), and the
// control-plane calls (Hello, OpenDataset, Ingest, EndStream) serialize
// among themselves.
type Client struct {
	conn net.Conn
	// Timeout bounds how long the client waits for each expected server
	// frame (and for each frame write), mirroring Server.IdleTimeout on
	// the other end: a stalled or half-open server surfaces as a typed
	// ErrTimeout instead of hanging Hello/Ingest/Query forever. The
	// connection is closed on timeout — the conversation state is
	// unrecoverable. Set it before the first call; zero means no bound.
	Timeout time.Duration

	// FieldModulus is the field the client agreed on with the server
	// out-of-band (the modulus it builds its own verifiers over). When
	// nonzero, FetchProof rejects any proof whose binding names a
	// different modulus — without it a malicious server could grind the
	// challenge derivation over 2^64 modulus choices. Set it before the
	// first FetchProof/QueryCached call; zero skips the check.
	FieldModulus uint64

	wmu sync.Mutex // serializes frame writes

	cmu    sync.Mutex // serializes control-plane request/response pairs
	mode   connMode   // guarded by cmu
	v1Done bool       // v1 upload acked complete; guarded by cmu
	dsName string     // dataset attached by OpenDataset; guarded by cmu
	dsU    uint64     // its universe size (Open rejects a mismatch); guarded by cmu

	mu      sync.Mutex // guards the demux state below
	handles map[uint32]*QueryHandle
	nextCh  uint32
	readErr error // terminal reader failure, sticky
	srvErr  error // typed server error/budget frame seen on the control channel, sticky

	ctrl       chan ctrlFrame // control-channel frames (acks, refusals)
	readerDone chan struct{}  // closed when the demux reader exits
}

// ctrlFrame is one control-channel frame as delivered by the demux
// reader.
type ctrlFrame struct {
	typ     byte
	payload []byte
}

// ErrTimeout reports that Client.Timeout elapsed while waiting on the
// server; the connection has been closed. Distinguish it with
// errors.Is(err, wire.ErrTimeout).
var ErrTimeout = errors.New("wire: client timeout")

// connMode mirrors the server's flow distinction on the client, so
// mixing the flows fails fast locally instead of desynchronizing the
// conversation (v2 update batches are acknowledged, v1 ones are not).
type connMode int

const (
	modeUnset connMode = iota
	modeV1
	modeV2
)

// Dial connects to a prover server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		handles:    make(map[uint32]*QueryHandle),
		ctrl:       make(chan ctrlFrame, 16),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop is the demux reader: the only goroutine that reads the
// socket. Channel-scoped frames are routed to their conversation
// handle; control frames go to the ctrl queue the request/response
// calls consume.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			c.failReader(err)
			return
		}
		switch typ {
		case frameProverCh, frameErrorCh, frameBudgetCh, frameProofCh:
			id, rest, err := decodeChannel(payload)
			if err != nil {
				c.failReader(err)
				return
			}
			c.mu.Lock()
			h := c.handles[id]
			c.mu.Unlock()
			if h == nil {
				continue // late frame for a finished conversation
			}
			if !h.deliver(muxFrame{typ: typ, payload: rest}) {
				c.failReader(fmt.Errorf("%w: channel %d flooded beyond the lock-step window", ErrProtocol, id))
				return
			}
		case frameOK, frameBudget, frameError:
			if typ != frameOK {
				// Remember the server's parting shot: if the connection
				// dies before anyone reads this frame, later calls still
				// surface the typed cause instead of a bare EOF.
				c.mu.Lock()
				if c.srvErr == nil {
					c.srvErr = ctrlErr(typ, payload)
				}
				c.mu.Unlock()
			}
			select {
			case c.ctrl <- ctrlFrame{typ: typ, payload: payload}:
			default:
				// The server acked something nobody asked about — the
				// conversation is desynchronized beyond recovery.
				c.failReader(fmt.Errorf("%w: unsolicited control frame 0x%02x", ErrProtocol, typ))
				return
			}
		default:
			c.failReader(fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ))
			return
		}
	}
}

// failReader records the reader's terminal error. Open conversations
// and control waiters observe it through readerDone.
func (c *Client) failReader(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.mu.Unlock()
}

// termErr is the error reported once the reader has died: the typed
// server refusal if one arrived, otherwise the transport failure.
func (c *Client) termErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srvErr != nil {
		return c.srvErr
	}
	if c.readErr != nil {
		return c.readErr
	}
	return io.EOF
}

// ctrlErr types a server refusal frame.
func ctrlErr(typ byte, payload []byte) error {
	if typ == frameBudget {
		return fmt.Errorf("%w: %s", ErrBudget, payload)
	}
	return fmt.Errorf("wire: server error: %s", payload)
}

// write sends one frame, serialized against every other writer on the
// connection and bounded by Timeout. When the write fails because the
// server already tore the connection down after an error frame, the
// typed server error is surfaced instead of the raw transport error.
func (c *Client) write(typ byte, payload []byte) error {
	c.wmu.Lock()
	err := func() error {
		if c.Timeout > 0 {
			if err := c.conn.SetWriteDeadline(time.Now().Add(c.Timeout)); err != nil {
				return err
			}
		}
		return writeFrame(c.conn, typ, payload)
	}()
	c.wmu.Unlock()
	if err == nil {
		return nil
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		// A timed-out write may have left a partial frame on the wire —
		// the framing is unrecoverable, per the Timeout contract.
		c.conn.Close()
		return fmt.Errorf("%w: frame write stalled beyond %v", ErrTimeout, c.Timeout)
	}
	// Give the reader a beat to pick up the server's parting error frame
	// from the receive buffer, then prefer it: "index out of range" beats
	// "broken pipe".
	select {
	case <-c.readerDone:
	case <-time.After(50 * time.Millisecond):
	}
	c.mu.Lock()
	srvErr := c.srvErr
	c.mu.Unlock()
	if srvErr != nil {
		return srvErr
	}
	return err
}

// waitCtrl blocks for the next control-channel frame, honoring Timeout.
func (c *Client) waitCtrl() (byte, []byte, error) {
	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case fr := <-c.ctrl:
		return fr.typ, fr.payload, nil
	case <-c.readerDone:
		// Drain a frame that raced in just before the reader died.
		select {
		case fr := <-c.ctrl:
			return fr.typ, fr.payload, nil
		default:
		}
		return 0, nil, c.termErr()
	case <-timeout:
		c.conn.Close()
		return 0, nil, fmt.Errorf("%w: no server response within %v", ErrTimeout, c.Timeout)
	}
}

// Hello announces the universe size and starts a v1 upload into a
// private, per-connection dataset. It waits for the server's
// acknowledgement: the dataset's O(u) tables are admitted against the
// server's memory budget at hello time, and a refusal surfaces here as
// ErrBudget (distinguish it with errors.Is) rather than failing some
// later frame.
func (c *Client) Hello(u uint64) error {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode == modeV2 {
		return fmt.Errorf("wire: Hello on a connection attached to a named dataset")
	}
	if c.mode == modeV1 {
		return fmt.Errorf("wire: Hello twice on one connection")
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], u)
	if err := c.write(frameHello, b[:]); err != nil {
		return err
	}
	if _, err := c.readOK(); err != nil {
		return err
	}
	c.mode = modeV1
	return nil
}

// OpenDataset attaches the connection to the named server-side dataset,
// creating it over a universe of size ≥ u if it does not exist. It
// returns the dataset's current update count — zero for a fresh dataset;
// a verifier must have observed every update already ingested for its
// queries to be accepted. After OpenDataset, Ingest and Query may be
// freely interleaved, and other connections attached to the same name
// see the same data.
func (c *Client) OpenDataset(name string, u uint64) (uint64, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode == modeV1 {
		return 0, fmt.Errorf("wire: OpenDataset on a v1 connection")
	}
	if name == "" || len(name) > maxDatasetName {
		return 0, fmt.Errorf("wire: dataset name must be 1..%d bytes", maxDatasetName)
	}
	if err := c.write(frameOpen, encodeOpen(name, u)); err != nil {
		return 0, err
	}
	count, err := c.readOK()
	if err == nil {
		c.mode = modeV2
		// The server's engine refuses an open whose universe differs from
		// the existing dataset's, so a successful open pins both: proofs
		// fetched on this connection must carry exactly this identity.
		c.dsName, c.dsU = name, u
	}
	return count, err
}

// SendUpdates uploads a batch of stream updates on a v1 connection. The
// caller feeds the same updates to its local verifiers — that is the
// single streaming pass. The server folds each batch into its maintained
// state as it arrives; batches are unacknowledged (EndStream carries the
// ack that covers them all).
func (c *Client) SendUpdates(ups []stream.Update) error {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode != modeV1 {
		return fmt.Errorf("wire: SendUpdates requires a v1 connection (after Hello); use Ingest on named datasets")
	}
	if c.v1Done {
		return fmt.Errorf("wire: SendUpdates after EndStream")
	}
	const batch = 4096
	for len(ups) > 0 {
		n := len(ups)
		if n > batch {
			n = batch
		}
		if err := c.write(frameUpdates, encodeUpdates(ups[:n])); err != nil {
			return err
		}
		ups = ups[n:]
	}
	return nil
}

// Ingest uploads updates into the attached v2 dataset, waiting for the
// server's acknowledgement of every batch. It returns the dataset's
// update count after the last batch (including other connections'
// concurrent ingestion).
func (c *Client) Ingest(ups []stream.Update) (uint64, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode != modeV2 {
		return 0, fmt.Errorf("wire: Ingest requires an attached dataset (call OpenDataset first)")
	}
	const batch = 4096
	var count uint64
	for sent := false; len(ups) > 0 || !sent; sent = true {
		n := len(ups)
		if n > batch {
			n = batch
		}
		if err := c.write(frameUpdates, encodeUpdates(ups[:n])); err != nil {
			return count, err
		}
		var err error
		if count, err = c.readOK(); err != nil {
			return count, err
		}
		ups = ups[n:]
	}
	return count, nil
}

func encodeUpdates(ups []stream.Update) []byte {
	payload := make([]byte, 16*len(ups))
	for i, up := range ups {
		binary.LittleEndian.PutUint64(payload[16*i:], up.Index)
		binary.LittleEndian.PutUint64(payload[16*i+8:], uint64(up.Delta))
	}
	return payload
}

func (c *Client) readOK() (uint64, error) {
	typ, payload, err := c.waitCtrl()
	if err != nil {
		return 0, err
	}
	switch typ {
	case frameOK:
		return decodeCount(payload)
	case frameBudget:
		return 0, fmt.Errorf("%w: %s", ErrBudget, payload)
	case frameError:
		return 0, fmt.Errorf("wire: server error: %s", payload)
	default:
		return 0, fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
}

// EndStream marks a v1 upload complete and waits for the server's
// acknowledgement. v1 update batches are streamed without per-batch
// acks, so this is where a mid-upload ingest failure surfaces, typed,
// instead of desynchronizing the first query.
func (c *Client) EndStream() error {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode != modeV1 {
		return fmt.Errorf("wire: EndStream requires a v1 connection")
	}
	if c.v1Done {
		return fmt.Errorf("wire: EndStream twice")
	}
	if err := c.write(frameEndStream, nil); err != nil {
		return err
	}
	if _, err := c.readOK(); err != nil {
		return err
	}
	c.v1Done = true
	return nil
}

// Query sends the query and drives the conversation between the remote
// prover and the local verifier session. A nil error means the verifier
// accepted; results are read from the concrete verifier afterwards.
// Query is safe to call from many goroutines at once: each call runs on
// its own multiplexed channel (it is QueryAsync + Wait).
func (c *Client) Query(kind QueryKind, params QueryParams, v core.VerifierSession) (core.Stats, error) {
	h, err := c.QueryAsync(kind, params, v)
	if err != nil {
		return core.Stats{}, err
	}
	return h.Wait()
}

// Split-universe client calls: attaching to one slice of a split
// dataset and driving a partial-prover conversation — the leg an
// aggregating router speaks to each slice owner. The verifier-facing
// protocol is unchanged; these calls exist so the aggregator
// (internal/shard, or a test) can collect the owners' exact partial
// messages and fold them with core.SplitAggregator.
package wire

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stream"
)

// OpenDatasetSlice attaches the connection to the named dataset opened
// as the slice [lo, hi) of a split universe of size ≥ globalU, creating
// the slice on first open (see engine.OpenSlice for the geometry
// discipline: bounds over the padded global universe, power-of-two
// width ≥ 2, aligned to itself). It returns the slice's current update
// count. After it, Ingest delivers updates for the owned index range
// and PartialQuery opens partial-prover conversations; whole-transcript
// Query calls are refused by the server — a slice's messages are
// partials, not a complete transcript.
func (c *Client) OpenDatasetSlice(name string, globalU, lo, hi uint64) (uint64, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode == modeV1 {
		return 0, fmt.Errorf("wire: OpenDatasetSlice on a v1 connection")
	}
	if name == "" || len(name) > maxDatasetName {
		return 0, fmt.Errorf("wire: dataset name must be 1..%d bytes", maxDatasetName)
	}
	if err := c.write(frameOpenSlice, encodeOpenSlice(name, globalU, lo, hi)); err != nil {
		return 0, err
	}
	count, err := c.readOK()
	if err == nil {
		c.mode = modeV2
		// The slice's protocol identity is the global universe: every
		// parameter and proof binding is derived from it, never from the
		// slice width.
		c.dsName, c.dsU = name, globalU
	}
	return count, err
}

// IngestBatch uploads ups as exactly one acknowledged updates frame —
// empty batches included. Unlike Ingest it never chunks: a slice
// dataset's version counts *delivered* batches, so an aggregating
// router scattering one global batch across S owners must hand each
// owner exactly one frame (possibly empty) to keep every slice version
// equal to the version a single engine reaches on the same stream.
func (c *Client) IngestBatch(ups []stream.Update) (uint64, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.mode != modeV2 {
		return 0, fmt.Errorf("wire: IngestBatch requires an attached dataset (call OpenDataset or OpenDatasetSlice first)")
	}
	if err := c.write(frameUpdates, encodeUpdates(ups)); err != nil {
		return 0, err
	}
	return c.readOK()
}

// PartialConv is one partial-prover conversation with a slice owner,
// returned by Client.PartialQuery. Unlike QueryHandle it has no driving
// goroutine: the aggregator is the conversation's clock, reading each
// message with Msg and broadcasting each challenge with Challenge, so
// it can hold S conversations in lock-step. Not safe for concurrent use
// (one aggregator goroutine owns it); distinct conversations on one
// Client are independent.
type PartialConv struct {
	h       *QueryHandle
	srvDead bool // server already failed the channel; no finish frame owed
	closed  bool
}

// PartialQuery opens a partial-prover conversation for one query on its
// own channel. The first Msg returns the owner's opening (the dataset
// version and this slice's partial claim + round-1 message); each
// Challenge(r) buys the next Msg, which after the final head fold is
// the slice's leaves. The caller must Finish (or Close) the
// conversation when done with it.
func (c *Client) PartialQuery(kind QueryKind, params QueryParams) (*PartialConv, error) {
	c.cmu.Lock()
	switch {
	case c.mode == modeUnset:
		c.cmu.Unlock()
		return nil, fmt.Errorf("wire: PartialQuery before Hello or OpenDataset")
	case c.mode == modeV1 && !c.v1Done:
		c.cmu.Unlock()
		return nil, fmt.Errorf("wire: PartialQuery before EndStream on a v1 connection")
	}
	c.cmu.Unlock()
	h, err := c.newHandle(nil)
	if err != nil {
		return nil, err
	}
	if err := c.write(framePartialQueryCh, encodeChannel(h.id, encodeQuery(kind, params))); err != nil {
		c.unregister(h.id)
		return nil, err
	}
	return &PartialConv{h: h}, nil
}

// retire releases the handle; late frames for the id are dropped by the
// demux reader.
func (p *PartialConv) retire() {
	if !p.closed {
		p.closed = true
		p.h.c.unregister(p.h.id)
	}
}

// Msg waits for the owner's next message, honoring the client timeout.
// A server-side channel failure (error or budget frame) surfaces typed
// and closes the conversation.
func (p *PartialConv) Msg() (core.Msg, error) {
	if p.closed {
		return core.Msg{}, fmt.Errorf("wire: partial conversation is closed")
	}
	m, srvDead, err := p.h.msg()
	if err != nil {
		p.srvDead = srvDead
		p.retire()
	}
	return m, err
}

// Challenge sends the verifier's broadcast challenge to the owner.
func (p *PartialConv) Challenge(m core.Msg) error {
	if p.closed {
		return fmt.Errorf("wire: partial conversation is closed")
	}
	if err := p.h.c.write(frameChallengeCh, encodeChannel(p.h.id, encodeMsg(m))); err != nil {
		p.retire()
		return err
	}
	return nil
}

// Finish ends the conversation, closing the channel server-side (unless
// the server already failed it) and releasing the handle. It is
// idempotent and safe after an error.
func (p *PartialConv) Finish() error {
	if p.closed {
		return nil
	}
	var err error
	if !p.srvDead {
		err = p.h.c.write(frameFinishCh, encodeChannel(p.h.id, nil))
	}
	p.retire()
	return err
}

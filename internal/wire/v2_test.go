package wire

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/stream"
)

// startServerOpts runs a Server with the given extras on a loopback
// listener.
func startServerOpts(t *testing.T, srv *Server) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }
}

// TestSharedDatasetAcrossConnections: two connections ingest halves of a
// stream into one named dataset; a third attaches and verifies queries
// over the union — no connection ever re-uploads what another sent.
func TestSharedDatasetAcrossConnections(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()

	const u = 1 << 10
	ups := stream.UniformDeltas(u, 100, field.NewSplitMix64(70))
	half := len(ups) / 2

	for i, part := range [][]stream.Update{ups[:half], ups[half:]} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		count, err := c.OpenDataset("metrics", u)
		if err != nil {
			t.Fatalf("uploader %d: open: %v", i, err)
		}
		if int(count) != i*half {
			t.Fatalf("uploader %d saw %d prior updates, want %d", i, count, i*half)
		}
		after, err := c.Ingest(part)
		if err != nil {
			t.Fatalf("uploader %d: ingest: %v", i, err)
		}
		if int(after) != (i+1)*half {
			t.Fatalf("uploader %d: count after ingest = %d", i, after)
		}
		c.Close()
	}

	// The querier observed the full stream locally (the single verifier
	// pass) and attaches to the same dataset by name.
	q, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	count, err := q.OpenDataset("metrics", u)
	if err != nil {
		t.Fatal(err)
	}
	if int(count) != len(ups) {
		t.Fatalf("querier saw %d updates, want %d", count, len(ups))
	}

	f2proto, err := core.NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	f2v := f2proto.NewVerifier(field.NewSplitMix64(71))
	rqproto, err := core.NewRangeQuery(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rqv := rqproto.NewVerifier(field.NewSplitMix64(72))
	for _, up := range ups {
		if err := f2v.Observe(up); err != nil {
			t.Fatal(err)
		}
		if err := rqv.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Query(QuerySelfJoinSize, QueryParams{}, f2v); err != nil {
		t.Fatalf("F2 over shared dataset rejected: %v", err)
	}
	got, err := f2v.Result()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := stream.Apply(ups, u)
	var want field.Elem
	for _, v := range a {
		e := f61.FromInt64(v)
		want = f61.Add(want, f61.Mul(e, e))
	}
	if got != want {
		t.Fatalf("F2 = %d, want %d", got, want)
	}

	// Ingestion continues between queries on the same connection.
	extra := stream.UnitIncrements(u, 500, field.NewSplitMix64(73))
	if _, err := q.Ingest(extra); err != nil {
		t.Fatal(err)
	}
	for _, up := range extra {
		if err := rqv.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := rqv.SetQuery(0, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Query(QueryRangeQuery, QueryParams{A: 0, B: 99}, rqv); err != nil {
		t.Fatalf("range query after further ingestion rejected: %v", err)
	}
}

// TestConcurrentSharedDataset runs ≥4 clients ingesting disjoint shards
// of one stream into a single named dataset concurrently, then querying
// it concurrently — the multi-tenant serving path under -race.
func TestConcurrentSharedDataset(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61, Workers: -1})
	defer stop()

	const (
		clients = 4
		u       = 1 << 11
	)
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(80))
	shard := len(ups) / clients

	// Phase 1: concurrent ingestion of disjoint shards.
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if _, err := cl.OpenDataset("shared", u); err != nil {
				errs <- fmt.Errorf("client %d: open: %w", c, err)
				return
			}
			lo, hi := c*shard, (c+1)*shard
			if c == clients-1 {
				hi = len(ups)
			}
			if _, err := cl.Ingest(ups[lo:hi]); err != nil {
				errs <- fmt.Errorf("client %d: ingest: %w", c, err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Phase 2: concurrent queries against the complete dataset.
	a, _ := stream.Apply(ups, u)
	var wantF2 field.Elem
	for _, v := range a {
		e := f61.FromInt64(v)
		wantF2 = f61.Add(wantF2, f61.Mul(e, e))
	}
	errs = make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			count, err := cl.OpenDataset("shared", u)
			if err != nil {
				errs <- err
				return
			}
			if int(count) != len(ups) {
				errs <- fmt.Errorf("client %d: dataset has %d updates, want %d", c, count, len(ups))
				return
			}
			proto, err := core.NewSelfJoinSize(f61, u)
			if err != nil {
				errs <- err
				return
			}
			v := proto.NewVerifier(field.NewSplitMix64(uint64(500 + c)))
			for _, up := range ups {
				if err := v.Observe(up); err != nil {
					errs <- err
					return
				}
			}
			if _, err := cl.Query(QuerySelfJoinSize, QueryParams{}, v); err != nil {
				errs <- fmt.Errorf("client %d: rejected: %w", c, err)
				return
			}
			got, err := v.Result()
			if err != nil {
				errs <- err
				return
			}
			if got != wantF2 {
				errs <- fmt.Errorf("client %d: F2 = %d, want %d", c, got, wantF2)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestOpenUniverseMismatch: attaching with the wrong universe is refused.
func TestOpenUniverseMismatch(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()

	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.OpenDataset("d", 1<<8); err != nil {
		t.Fatal(err)
	}
	b, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.OpenDataset("d", 1<<9); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Fatalf("universe mismatch not refused: %v", err)
	}
	if _, err := a.OpenDataset("", 1<<8); err == nil {
		t.Error("empty dataset name accepted client-side")
	}
}

// TestServerEngineSharedAcrossListeners: one engine serves the same
// datasets through two servers.
func TestServerEngineSharedAcrossListeners(t *testing.T) {
	eng := engine.New(f61, 0)
	addr1, stop1 := startServerOpts(t, &Server{F: f61, Engine: eng})
	defer stop1()
	addr2, stop2 := startServerOpts(t, &Server{F: f61, Engine: eng})
	defer stop2()

	const u = 1 << 8
	ups := stream.UnitIncrements(u, 200, field.NewSplitMix64(90))
	c1, err := Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.OpenDataset("x", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	count, err := c2.OpenDataset("x", u)
	if err != nil {
		t.Fatal(err)
	}
	if int(count) != len(ups) {
		t.Fatalf("second listener sees %d updates, want %d", count, len(ups))
	}
}

// rawConn sends hand-built frames to probe the server's state machine.
type rawConn struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn}
}

func (r *rawConn) send(typ byte, payload []byte) {
	r.t.Helper()
	if err := writeFrame(r.conn, typ, payload); err != nil {
		r.t.Fatal(err)
	}
}

// expect reads frames until one of type want arrives (acks are
// skipped), then confirms the connection closes.
func (r *rawConn) expect(want byte, context string) {
	r.t.Helper()
	_ = r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		typ, _, err := readFrame(r.conn)
		if err != nil {
			r.t.Fatalf("%s: connection died before frame 0x%02x: %v", context, want, err)
		}
		if typ == want {
			break
		}
		if typ != frameOK {
			r.t.Fatalf("%s: unexpected frame 0x%02x", context, typ)
		}
	}
	if _, _, err := readFrame(r.conn); err == nil {
		r.t.Fatalf("%s: server kept the connection after frame 0x%02x", context, want)
	}
}

// expectError expects a protocol-error frame; expectBudget a
// budget-exhausted frame.
func (r *rawConn) expectError(context string)  { r.expect(frameError, context) }
func (r *rawConn) expectBudget(context string) { r.expect(frameBudget, context) }

func helloPayload(u uint64) []byte { return encodeCount(u) }

// TestFrameStateMachine: out-of-order frames are rejected with an error
// frame instead of being silently accepted.
func TestFrameStateMachine(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()

	oneUpdate := encodeUpdates([]stream.Update{{Index: 1, Delta: 1}})

	t.Run("second hello", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameHello, helloPayload(64))
		rc.send(frameHello, helloPayload(64))
		rc.expectError("hello after hello")
	})
	t.Run("hello after updates", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameHello, helloPayload(64))
		rc.send(frameUpdates, oneUpdate)
		rc.send(frameHello, helloPayload(64))
		rc.expectError("hello mid-stream")
	})
	t.Run("updates after end of stream", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameHello, helloPayload(64))
		rc.send(frameEndStream, nil)
		rc.send(frameUpdates, oneUpdate)
		rc.expectError("updates after end-stream")
	})
	t.Run("updates before hello", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameUpdates, oneUpdate)
		rc.expectError("updates before hello")
	})
	t.Run("query before end of stream", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameHello, helloPayload(64))
		rc.send(frameQuery, encodeQuery(QuerySelfJoinSize, QueryParams{}))
		rc.expectError("query mid-stream")
	})
	t.Run("double end of stream", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameHello, helloPayload(64))
		rc.send(frameEndStream, nil)
		rc.send(frameEndStream, nil)
		rc.expectError("double end-stream")
	})
	t.Run("open after hello", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameHello, helloPayload(64))
		rc.send(frameOpen, encodeOpen("d", 64))
		rc.expectError("open on a v1 connection")
	})
	t.Run("hello after open", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameOpen, encodeOpen("d", 64))
		rc.send(frameHello, helloPayload(64))
		rc.expectError("hello on a v2 connection")
	})
	t.Run("end of stream after open", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameOpen, encodeOpen("d", 64))
		rc.send(frameEndStream, nil)
		rc.expectError("end-stream on a v2 connection")
	})
	t.Run("oversized dataset name", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frameOpen, encodeOpen(strings.Repeat("x", maxDatasetName+1), 64))
		rc.expectError("oversized name")
	})
}

// TestIdleTimeout: a client that connects and stalls is disconnected
// once IdleTimeout elapses, freeing the handler goroutine.
func TestIdleTimeout(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61, IdleTimeout: 100 * time.Millisecond})
	defer stop()

	cases := []struct {
		name  string
		prime func(*rawConn)
	}{
		{"silent from the start", func(*rawConn) {}},
		{"stalls mid-stream", func(rc *rawConn) {
			rc.send(frameHello, helloPayload(64))
			rc.send(frameUpdates, encodeUpdates([]stream.Update{{Index: 3, Delta: 2}}))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := dialRaw(t, addr)
			tc.prime(rc)
			start := time.Now()
			_ = rc.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			// The server abandons the connection; the client observes EOF
			// (or a timeout error frame followed by close).
			for {
				if _, _, err := readFrame(rc.conn); err != nil {
					break
				}
			}
			if waited := time.Since(start); waited > 5*time.Second {
				t.Fatalf("server held a stalled connection for %v", waited)
			}
		})
	}
}

// TestIdleTimeoutDoesNotKillActiveClients: a client that keeps talking
// within the deadline completes its whole session.
func TestIdleTimeoutDoesNotKillActiveClients(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61, IdleTimeout: 2 * time.Second})
	defer stop()

	const u = 1 << 8
	ups := stream.UniformDeltas(u, 20, field.NewSplitMix64(95))
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Hello(u); err != nil {
		t.Fatal(err)
	}
	proto, err := core.NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(field.NewSplitMix64(96))
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.SendUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if err := client.EndStream(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(QuerySelfJoinSize, QueryParams{}, v); err != nil {
		t.Fatalf("active client killed by idle timeout: %v", err)
	}
}

// TestDishonestServerRejectedV2Unaffected: the Corrupt hook only touches
// the v1 path; v2 datasets stay honest.
func TestDishonestServerRejectedV2Unaffected(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61, Corrupt: dropOneItem})
	defer stop()

	const u = 256
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(97))
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.OpenDataset("honest", u); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	proto, err := core.NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(field.NewSplitMix64(98))
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Query(QuerySelfJoinSize, QueryParams{}, v); err != nil {
		t.Fatalf("v2 query on a Corrupt-configured server rejected: %v", err)
	}
}

// TestUniverseCap: the server refuses hello/open universes past its cap
// before allocating anything.
func TestUniverseCap(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61, MaxUniverse: 1 << 12})
	defer stop()

	rc := dialRaw(t, addr)
	rc.send(frameOpen, encodeOpen("big", 1<<13))
	rc.expectError("open past the universe cap")

	rc = dialRaw(t, addr)
	rc.send(frameHello, helloPayload(1<<13))
	rc.expectError("hello past the universe cap")

	// At the cap is fine.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenDataset("ok", 1<<12); err != nil {
		t.Fatalf("open at the cap refused: %v", err)
	}
}

// TestClientModeGuards: mixing the v1 and v2 flows on one connection
// fails fast client-side instead of desynchronizing the framing.
func TestClientModeGuards(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()

	v1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if err := v1.Hello(64); err != nil {
		t.Fatal(err)
	}
	if _, err := v1.Ingest([]stream.Update{{Index: 1, Delta: 1}}); err == nil {
		t.Error("Ingest on a v1 connection did not fail fast")
	}
	if _, err := v1.OpenDataset("d", 64); err == nil {
		t.Error("OpenDataset on a v1 connection did not fail fast")
	}

	v2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if _, err := v2.OpenDataset("d", 64); err != nil {
		t.Fatal(err)
	}
	if err := v2.SendUpdates([]stream.Update{{Index: 1, Delta: 1}}); err == nil {
		t.Error("SendUpdates on a v2 connection did not fail fast")
	}
	if err := v2.EndStream(); err == nil {
		t.Error("EndStream on a v2 connection did not fail fast")
	}
	if err := v2.Hello(64); err == nil {
		t.Error("Hello on a v2 connection did not fail fast")
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v2.SendUpdates(nil); err == nil {
		t.Error("SendUpdates before Hello did not fail fast")
	}
}

// TestPrivateDatasetSlotLimit: v1 private datasets are capped across
// concurrent connections, and slots are returned when connections close.
func TestPrivateDatasetSlotLimit(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61, MaxPrivateDatasets: 1})
	defer stop()

	first, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Hello(64); err != nil {
		t.Fatal(err)
	}
	// Confirm the hello was processed before racing the second one.
	if err := first.SendUpdates([]stream.Update{{Index: 1, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := first.EndStream(); err != nil {
		t.Fatal(err)
	}
	proto, err := core.NewSelfJoinSize(f61, 64)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(field.NewSplitMix64(1))
	if err := v.Observe(stream.Update{Index: 1, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := first.Query(QuerySelfJoinSize, QueryParams{}, v); err != nil {
		t.Fatal(err)
	}

	// Exhaustion is "server full", not a protocol violation: the refusal
	// travels as a budget frame and types as ErrBudget client-side.
	rc := dialRaw(t, addr)
	rc.send(frameHello, helloPayload(64))
	rc.expectBudget("second private dataset past the cap")
	over, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := over.Hello(64); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-cap Hello = %v, want wire.ErrBudget", err)
	}
	over.Close()

	// Freeing the slot admits a new connection. The release runs as the
	// handler unwinds after Close, so poll until a full v1 session
	// succeeds again.
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		err = func() error {
			defer c.Close()
			if err := c.Hello(64); err != nil {
				return err
			}
			if err := c.EndStream(); err != nil {
				return err
			}
			v := proto.NewVerifier(field.NewSplitMix64(2))
			_, err := c.Query(QuerySelfJoinSize, QueryParams{}, v)
			return err
		}()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

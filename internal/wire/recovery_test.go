package wire

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/stream"
)

// recU pads to 512 entries; one dataset's resident tables cost 512*16
// bytes (the budget unit used below).
const (
	recU          = 500
	recOneDataset = 512 * 16
)

// ingestNamed attaches to a named dataset and uploads the stream,
// returning the dataset's update count after the last batch.
func ingestNamed(t *testing.T, addr, name string, ups []stream.Update) {
	t.Helper()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.OpenDataset(name, recU); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Ingest(ups); err != nil {
		t.Fatal(err)
	}
}

// verifyF2Named attaches to a named dataset and runs a verified F2 query
// with a verifier that observed ups locally.
func verifyF2Named(t *testing.T, addr, name string, ups []stream.Update, seed uint64) {
	t.Helper()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	count, err := client.OpenDataset(name, recU)
	if err != nil {
		t.Fatal(err)
	}
	if count != uint64(len(ups)) {
		t.Fatalf("dataset %q holds %d updates, want %d (re-ingestion should not be needed)", name, count, len(ups))
	}
	proto, err := core.NewSelfJoinSize(f61, recU)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(field.NewSplitMix64(seed))
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Query(QuerySelfJoinSize, QueryParams{}, v); err != nil {
		t.Fatalf("query over %q rejected: %v", name, err)
	}
}

// TestCrashRecovery is the restart contract end to end over a real
// socket: a server with a data dir ingests two named datasets and
// checkpoints; the process "crashes" (listener torn down, no orderly
// engine shutdown); a fresh server over the same dir recovers both
// datasets and answers verified queries with no re-ingestion.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	upsA := stream.UniformDeltas(recU, 40, field.NewSplitMix64(400))
	upsB := stream.UnitIncrements(recU, 900, field.NewSplitMix64(401))

	eng1 := engine.New(f61, 0)
	srv1 := &Server{F: f61, Engine: eng1, DataDir: dir}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv1.Serve(ln1) }()
	addr1 := ln1.Addr().String()

	ingestNamed(t, addr1, "alpha", upsA)
	ingestNamed(t, addr1, "beta", upsB)
	if err := eng1.Persist(); err != nil {
		t.Fatal(err)
	}
	// Hard stop: close only the listener. No Server.Close, no final
	// persist — everything after the last checkpoint would be lost, which
	// is exactly the crash model.
	_ = ln1.Close()

	srv2 := &Server{F: f61, DataDir: dir}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv2.Serve(ln2) }()
	defer srv2.Close()

	verifyF2Named(t, ln2.Addr().String(), "alpha", upsA, 402)
	verifyF2Named(t, ln2.Addr().String(), "beta", upsB, 403)
}

// TestServeSurvivesDamagedCheckpoint: one bit-rotted file in the data
// dir must not take the server down — the healthy datasets keep
// serving (engine skip semantics, honored by Serve's startup scan).
func TestServeSurvivesDamagedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ups := stream.UniformDeltas(recU, 25, field.NewSplitMix64(420))
	eng1 := engine.New(f61, 0)
	if err := eng1.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := eng1.Open("good", recU)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	if err := eng1.Persist(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "YmFk.ckpt"), []byte("bit rot"), 0o644); err != nil {
		t.Fatal(err)
	}

	addr, stop := startServerOpts(t, &Server{F: f61, DataDir: dir})
	defer stop()
	verifyF2Named(t, addr, "good", ups, 421)
}

// TestBudgetErrorOverWire: admission refusal reaches the client as the
// typed budget error, distinguishable from protocol failures.
func TestBudgetErrorOverWire(t *testing.T) {
	// No DataDir: the budget is a hard admission cap.
	addr, stop := startServerOpts(t, &Server{F: f61, MemBudget: recOneDataset})
	defer stop()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.OpenDataset("first", recU); err != nil {
		t.Fatal(err)
	}
	_, err = client.OpenDataset("second", recU)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("over-budget open = %v, want wire.ErrBudget", err)
	}
}

// TestWireEvictionTransparent: with a one-dataset budget and a data dir,
// two datasets ping-pong through memory while both keep answering
// verified queries — eviction and rehydration are invisible to clients.
func TestWireEvictionTransparent(t *testing.T) {
	eng := engine.New(f61, 0)
	addr, stop := startServerOpts(t, &Server{
		F:         f61,
		Engine:    eng,
		MemBudget: recOneDataset,
		DataDir:   t.TempDir(),
	})
	defer stop()

	upsA := stream.UniformDeltas(recU, 30, field.NewSplitMix64(410))
	upsB := stream.UnitIncrements(recU, 600, field.NewSplitMix64(411))
	ingestNamed(t, addr, "alpha", upsA)
	ingestNamed(t, addr, "beta", upsB) // evicts alpha

	if ds, ok := eng.Get("alpha"); !ok || ds.Resident() {
		t.Fatalf("alpha should be evicted under a one-dataset budget (ok=%v)", ok)
	}
	verifyF2Named(t, addr, "alpha", upsA, 412) // rehydrates alpha, evicts beta
	if ds, ok := eng.Get("beta"); !ok || ds.Resident() {
		t.Fatalf("beta should be evicted after alpha rehydrated (ok=%v)", ok)
	}
	verifyF2Named(t, addr, "beta", upsB, 413)
	verifyF2Named(t, addr, "alpha", upsA, 414)
}

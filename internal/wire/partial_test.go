package wire

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/stream"
	"repro/internal/sumcheck"
)

// TestWireSplitPartialConversations is the wire half of the
// split-universe contract: two servers each own one slice of a dataset,
// fed by a scatter of the same global batches over OpenDatasetSlice +
// Ingest; partial conversations driven over the wire through
// PartialQuery and folded by a SplitAggregator reproduce, bit for bit,
// the transcript of a single whole-universe server's prover.
func TestWireSplitPartialConversations(t *testing.T) {
	const u = 200 // pads to 256; S=2 slices of width 128
	batches := [][]stream.Update{
		stream.UniformDeltas(u, 120, field.NewSplitMix64(81)),
		stream.UniformDeltas(u, 60, field.NewSplitMix64(82)),
		{{Index: 3, Delta: 4}, {Index: 190, Delta: -2}},
	}

	// Reference: one engine holding the whole dataset.
	ref := engine.New(f61, 0)
	refDS, err := ref.Open("ds", u)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := refDS.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	refSnap := refDS.Snapshot()

	// Two slice-owner servers, one client each.
	const s = 2
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	width := params.U / s
	clients := make([]*Client, s)
	for k := 0; k < s; k++ {
		addr, stop := startServerOpts(t, &Server{F: f61})
		defer stop()
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[k] = c
		lo, hi := uint64(k)*width, uint64(k+1)*width
		if count, err := c.OpenDatasetSlice("ds", u, lo, hi); err != nil || count != 0 {
			t.Fatalf("slice %d open: count %d, err %v", k, count, err)
		}
		// Every global batch is delivered to every owner — Ingest sends an
		// empty batch frame when the scatter owns none of it, so the slice
		// version tracks the global version.
		for _, b := range batches {
			var sub []stream.Update
			for _, up := range b {
				if up.Index >= lo && up.Index < hi {
					sub = append(sub, up)
				}
			}
			if _, err := c.Ingest(sub); err != nil {
				t.Fatalf("slice %d ingest: %v", k, err)
			}
		}
	}

	kinds := []struct {
		name   string
		kind   QueryKind
		params QueryParams
		comb   sumcheck.Combiner
	}{
		{"selfjoin", QuerySelfJoinSize, QueryParams{}, sumcheck.Power{K: 2}},
		{"f3", QueryFk, QueryParams{K: 3}, sumcheck.Power{K: 3}},
		{"rangesum", QueryRangeSum, QueryParams{A: 17, B: 180}, sumcheck.Product{}},
	}
	for _, tc := range kinds {
		challenges := f61.RandVec(field.NewSplitMix64(600), params.D)

		refProver, err := refSnap.NewProver(tc.kind, tc.params)
		if err != nil {
			t.Fatal(err)
		}
		refMsg, err := refProver.Open()
		if err != nil {
			t.Fatal(err)
		}
		refMsgs := []core.Msg{refMsg}
		for j := 0; j < params.D-1; j++ {
			m, err := refProver.Step(core.Msg{Elems: []field.Elem{challenges[j]}})
			if err != nil {
				t.Fatal(err)
			}
			refMsgs = append(refMsgs, m)
		}

		agg, err := core.NewSplitAggregator(f61, u, s, tc.comb, 0)
		if err != nil {
			t.Fatal(err)
		}
		convs := make([]*PartialConv, s)
		parts := make([]core.Msg, s)
		for k, c := range clients {
			if convs[k], err = c.PartialQuery(tc.kind, tc.params); err != nil {
				t.Fatalf("%s slice %d: %v", tc.name, k, err)
			}
			if parts[k], err = convs[k].Msg(); err != nil {
				t.Fatalf("%s slice %d opening: %v", tc.name, k, err)
			}
		}
		opening, err := agg.Open(parts)
		if err != nil {
			t.Fatal(err)
		}
		if agg.Version() != refSnap.Version() {
			t.Fatalf("%s: aggregated version %d, want %d", tc.name, agg.Version(), refSnap.Version())
		}
		msgs := []core.Msg{opening}
		for j := 0; j < agg.Rounds()-1; j++ {
			r := core.Msg{Elems: []field.Elem{challenges[j]}}
			var m core.Msg
			if agg.Broadcast() {
				for k, conv := range convs {
					if err := conv.Challenge(r); err != nil {
						t.Fatalf("%s slice %d round %d: %v", tc.name, k, j+1, err)
					}
				}
				for k, conv := range convs {
					if parts[k], err = conv.Msg(); err != nil {
						t.Fatalf("%s slice %d round %d: %v", tc.name, k, j+1, err)
					}
				}
				if m, err = agg.Collect(parts); err != nil {
					t.Fatalf("%s collect round %d: %v", tc.name, j+1, err)
				}
				if agg.TailStarted() {
					for k, conv := range convs {
						if err := conv.Finish(); err != nil {
							t.Fatalf("%s slice %d finish: %v", tc.name, k, err)
						}
					}
				}
			} else {
				if m, err = agg.Next(challenges[j]); err != nil {
					t.Fatalf("%s tail round %d: %v", tc.name, j+1, err)
				}
			}
			msgs = append(msgs, m)
		}
		if len(msgs) != len(refMsgs) {
			t.Fatalf("%s: %d messages, want %d", tc.name, len(msgs), len(refMsgs))
		}
		for j := range msgs {
			if len(msgs[j].Elems) != len(refMsgs[j].Elems) {
				t.Fatalf("%s message %d: %d elems, want %d", tc.name, j, len(msgs[j].Elems), len(refMsgs[j].Elems))
			}
			for c := range msgs[j].Elems {
				if msgs[j].Elems[c] != refMsgs[j].Elems[c] {
					t.Fatalf("%s message %d elem %d: %d ≠ %d", tc.name, j, c, msgs[j].Elems[c], refMsgs[j].Elems[c])
				}
			}
		}
	}
}

// TestWireSliceRefusals pins the wire-level slice discipline: a
// whole-transcript query on a slice-attached connection fails typed on
// its channel (the connection survives and keeps serving partials), a
// non-seam kind fails typed, and PartialQuery works on a whole dataset
// too — the S=1 degenerate split.
func TestWireSliceRefusals(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const u = 100 // pads to 128
	if _, err := c.OpenDatasetSlice("ds", u, 0, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest([]stream.Update{{Index: 5, Delta: 3}, {Index: 60, Delta: 1}}); err != nil {
		t.Fatal(err)
	}

	// Whole-transcript query: refused per-channel, with the slice bounds
	// in the error.
	proto, err := core.NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(QuerySelfJoinSize, QueryParams{}, proto.NewVerifier(field.NewSplitMix64(5))); err == nil ||
		!strings.Contains(err.Error(), "slice") {
		t.Fatalf("whole-transcript query on a slice: %v", err)
	}
	// Non-seam kind on the partial path: refused per-channel, typed text.
	conv, err := c.PartialQuery(QueryF0, QueryParams{Phi: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conv.Msg(); err == nil || !strings.Contains(err.Error(), "split-universe seam") {
		t.Fatalf("F0 partial = %v, want a seam refusal", err)
	}
	_ = conv.Finish()

	// The connection survived both refusals: a seam-kind partial works.
	conv, err = c.PartialQuery(QuerySelfJoinSize, QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	opening, err := conv.Msg()
	if err != nil {
		t.Fatal(err)
	}
	if len(opening.Ints) != 1 || opening.Ints[0] != 1 {
		t.Fatalf("opening version ints = %v, want [1] after one batch", opening.Ints)
	}
	if err := conv.Finish(); err != nil {
		t.Fatal(err)
	}

	// Mismatched re-attach is refused.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.OpenDatasetSlice("ds", u, 64, 128); err == nil {
		t.Fatal("mismatched slice bounds attached")
	}

	// PartialQuery on a whole dataset: the S=1 degenerate split — its
	// combined transcript under a 1-slice aggregator equals the plain
	// prover transcript (head rounds only; S=1 needs no leaf collect).
	c3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.OpenDataset("whole", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Ingest([]stream.Update{{Index: 9, Delta: 2}}); err != nil {
		t.Fatal(err)
	}
	conv, err = c3.PartialQuery(QuerySelfJoinSize, QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if opening, err = conv.Msg(); err != nil {
		t.Fatal(err)
	}
	if len(opening.Ints) != 1 || opening.Ints[0] != 1 {
		t.Fatalf("whole-dataset partial opening ints = %v, want [1]", opening.Ints)
	}
	if err := conv.Finish(); err != nil {
		t.Fatal(err)
	}
}

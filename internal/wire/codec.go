// Codec shims: the codec itself lives in internal/wire/frames (the
// bottom layer of the wire split — see seam.go for the layer map), and
// these unexported aliases let the client, server, and mux layers keep
// reading naturally. Nothing in this file has behavior; adding one is a
// smell that logic is leaking into the codec layer.
package wire

import "repro/internal/wire/frames"

const (
	frameHello     = frames.Hello
	frameUpdates   = frames.Updates
	frameEndStream = frames.EndStream
	frameQuery     = frames.Query
	frameProver    = frames.Prover
	frameChallenge = frames.Challenge
	frameFinish    = frames.Finish
	frameError     = frames.Error
	frameOpen      = frames.Open
	frameOK        = frames.OK
	frameBudget    = frames.Budget

	frameQueryCh     = frames.QueryCh
	frameChallengeCh = frames.ChallengeCh
	frameProverCh    = frames.ProverCh
	frameFinishCh    = frames.FinishCh
	frameErrorCh     = frames.ErrorCh
	frameBudgetCh    = frames.BudgetCh

	frameProofReqCh = frames.ProofReqCh
	frameProofCh    = frames.ProofCh

	frameHandoff   = frames.Handoff
	frameAdopt     = frames.Adopt
	frameStatsReq  = frames.StatsReq
	frameStatsResp = frames.StatsResp

	frameOpenSlice      = frames.OpenSlice
	framePartialQueryCh = frames.PartialQueryCh
)

const (
	maxFrame       = frames.MaxFrame
	maxDatasetName = frames.MaxDatasetName
	maxCircuitName = frames.MaxCircuitName
)

// ErrProtocol reports a malformed or unexpected frame. It is the
// canonical instance from the codec layer, so errors.Is matches across
// the seam.
var ErrProtocol = frames.ErrProtocol

var (
	writeFrame          = frames.WriteFrame
	readFrame           = frames.ReadFrame
	encodeMsg           = frames.EncodeMsg
	decodeMsg           = frames.DecodeMsg
	encodeQuery         = frames.EncodeQuery
	decodeQuery         = frames.DecodeQuery
	encodeOpen          = frames.EncodeOpen
	decodeOpen          = frames.DecodeOpen
	encodeCount         = frames.EncodeCount
	decodeCount         = frames.DecodeCount
	encodeName          = frames.EncodeName
	decodeName          = frames.DecodeName
	encodeUpdates       = frames.EncodeUpdates
	decodeUpdateColumns = frames.DecodeUpdateColumns
	encodeChannel       = frames.EncodeChannel
	decodeChannel       = frames.DecodeChannel
	encodeProofReq      = frames.EncodeProofReq
	decodeProofReq      = frames.DecodeProofReq
	encodeOpenSlice     = frames.EncodeOpenSlice
	decodeOpenSlice     = frames.DecodeOpenSlice
)

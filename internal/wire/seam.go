// The public seam over the codec layer: everything a protocol
// intermediary needs to speak the wire format without importing the
// frames package. The shard router (internal/shard) is the intended
// consumer — it embeds FlowState to enforce per-connection frame
// legality exactly as the server would, and ChannelPins to route
// channel-scoped frames, while the byte layouts stay reachable through
// the re-exports below. Only internal/wire/... may import frames
// directly; everything else goes through this file (enforced by a test
// in frames and a CI grep).
package wire

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/wire/frames"
)

// Frame type constants, re-exported for protocol intermediaries.
const (
	FrameHello     = frames.Hello
	FrameUpdates   = frames.Updates
	FrameEndStream = frames.EndStream
	FrameQuery     = frames.Query
	FrameProver    = frames.Prover
	FrameChallenge = frames.Challenge
	FrameFinish    = frames.Finish
	FrameError     = frames.Error
	FrameOpen      = frames.Open
	FrameOK        = frames.OK
	FrameBudget    = frames.Budget

	FrameQueryCh     = frames.QueryCh
	FrameChallengeCh = frames.ChallengeCh
	FrameProverCh    = frames.ProverCh
	FrameFinishCh    = frames.FinishCh
	FrameErrorCh     = frames.ErrorCh
	FrameBudgetCh    = frames.BudgetCh

	FrameProofReqCh = frames.ProofReqCh
	FrameProofCh    = frames.ProofCh

	FrameHandoff   = frames.Handoff
	FrameAdopt     = frames.Adopt
	FrameStatsReq  = frames.StatsReq
	FrameStatsResp = frames.StatsResp

	FrameOpenSlice      = frames.OpenSlice
	FramePartialQueryCh = frames.PartialQueryCh
)

// WriteFrame sends one frame: [uint32 length][uint8 type][payload].
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	return frames.WriteFrame(w, typ, payload)
}

// ReadFrame receives one frame, bounding its size to the protocol
// maximum (64 MiB).
func ReadFrame(r io.Reader) (byte, []byte, error) {
	return frames.ReadFrame(r)
}

// DecodeOpen parses an open frame into the dataset name and universe
// size — what a router needs to place the dataset on a shard.
func DecodeOpen(b []byte) (name string, u uint64, err error) {
	return frames.DecodeOpen(b)
}

// EncodeOpenSlice lays out an open-slice frame: the global universe
// size, the slice bounds over the padded global universe, and the
// dataset name — what a router sends each shard that owns one slice of
// a split dataset.
func EncodeOpenSlice(name string, globalU, lo, hi uint64) []byte {
	return frames.EncodeOpenSlice(name, globalU, lo, hi)
}

// DecodeOpenSlice parses an open-slice frame.
func DecodeOpenSlice(b []byte) (name string, globalU, lo, hi uint64, err error) {
	return frames.DecodeOpenSlice(b)
}

// EncodeMsg lays out a protocol message (prover message or verifier
// challenge) — the payload of the conversation frames.
func EncodeMsg(m core.Msg) []byte { return frames.EncodeMsg(m) }

// DecodeMsg parses a protocol message.
func DecodeMsg(b []byte) (core.Msg, error) { return frames.DecodeMsg(b) }

// EncodeQuery lays out a query block (the body of a QueryCh or
// PartialQueryCh frame after the channel id).
func EncodeQuery(kind QueryKind, p QueryParams) []byte { return frames.EncodeQuery(kind, p) }

// DecodeQuery parses a query block.
func DecodeQuery(b []byte) (QueryKind, QueryParams, error) { return frames.DecodeQuery(b) }

// EncodeUpdates lays out an updates batch as (index, delta) pairs.
func EncodeUpdates(ups []stream.Update) []byte { return frames.EncodeUpdates(ups) }

// DecodeUpdateColumns splits an updates payload into index/delta
// columns — the shape a router scatters across slice owners.
func DecodeUpdateColumns(b []byte) (idx []uint64, deltas []int64, err error) {
	return frames.DecodeUpdateColumns(b)
}

// EncodeCount lays out an OK ack payload (a dataset update count).
func EncodeCount(n uint64) []byte { return frames.EncodeCount(n) }

// EncodeChannel prefixes a frame payload with its channel id.
func EncodeChannel(id uint32, payload []byte) []byte { return frames.EncodeChannel(id, payload) }

// DecodeChannel splits a channel-scoped payload into id and body.
func DecodeChannel(b []byte) (uint32, []byte, error) { return frames.DecodeChannel(b) }

// DecodeProofReq parses a proof request body: the pinned dataset
// version (0 = current) and the query block.
func DecodeProofReq(b []byte) (version uint64, kind QueryKind, p QueryParams, err error) {
	return frames.DecodeProofReq(b)
}

// EncodeName lays out a handoff/adopt frame payload.
func EncodeName(name string) []byte { return frames.EncodeName(name) }

// DecodeName parses a handoff/adopt frame payload.
func DecodeName(b []byte) (string, error) { return frames.DecodeName(b) }

// DecodeCount parses an OK ack payload (a dataset update count).
func DecodeCount(b []byte) (uint64, error) { return frames.DecodeCount(b) }

// ChannelID extracts the channel id from a channel-scoped frame payload
// (frames FrameQueryCh..FrameProofCh) without touching the body.
func ChannelID(payload []byte) (uint32, error) {
	id, _, err := frames.DecodeChannel(payload)
	return id, err
}

// ChannelScoped reports whether typ is a channel-scoped frame (its
// payload begins with a uint32 channel id).
func ChannelScoped(typ byte) bool { return frames.ChannelScoped(typ) }

// ---------------------------------------------------------------------
// FlowState: the per-connection frame state machine.

// connState is the frame state machine: which frames are legal next.
type connState int

const (
	connStart  connState = iota // nothing received: expect hello or open
	connV1Load                  // v1 upload in progress
	connV1Done                  // v1 upload finished: queries only
	connV2                      // attached to a named dataset
)

// FlowState tracks one connection's position in the protocol and
// decides which frame types are legal next. It is the state machine the
// server's read loop runs; the shard router embeds its own so a frame
// the server would refuse is refused at the proxy, with the same error,
// before it ever reaches a shard. The zero value is the start state.
//
// Advance both checks legality and applies the state transition the
// frame implies. Callers treat an error as connection-fatal (exactly as
// the server does), so a transition optimistically applied before the
// frame's work completes can never be observed in a bad state.
type FlowState struct {
	st connState
}

// Advance validates typ against the current state and moves the state
// machine. The error strings are the server's canonical refusals.
func (f *FlowState) Advance(typ byte) error {
	switch typ {
	case frameHello:
		if f.st != connStart {
			return fmt.Errorf("%w: hello after the stream started", ErrProtocol)
		}
		f.st = connV1Load
	case frameOpen, frameOpenSlice:
		if f.st != connStart && f.st != connV2 {
			return fmt.Errorf("%w: open on a v1 connection", ErrProtocol)
		}
		f.st = connV2
	case frameUpdates:
		if f.st != connV1Load && f.st != connV2 {
			return fmt.Errorf("%w: updates outside an upload phase", ErrProtocol)
		}
	case frameEndStream:
		if f.st != connV1Load {
			return fmt.Errorf("%w: end-of-stream outside a v1 upload", ErrProtocol)
		}
		f.st = connV1Done
	case frameQuery:
		if f.st != connV1Done && f.st != connV2 {
			return fmt.Errorf("%w: query before end of stream", ErrProtocol)
		}
	case frameQueryCh, frameChallengeCh, frameFinishCh, frameProofReqCh, framePartialQueryCh:
		if f.st != connV1Done && f.st != connV2 {
			return fmt.Errorf("%w: conversation frame before queries are allowed", ErrProtocol)
		}
	case frameHandoff, frameAdopt, frameStatsReq:
		// Admin frames are legal in any state and change none: a handoff
		// names an engine dataset, not the connection's attachment.
	default:
		return fmt.Errorf("%w: unexpected frame 0x%02x", ErrProtocol, typ)
	}
	return nil
}

// V1 reports whether the connection took the v1 private-dataset flow.
func (f *FlowState) V1() bool { return f.st == connV1Load || f.st == connV1Done }

// Attached reports whether the connection can carry conversation
// frames: a v2 attach or a completed v1 upload.
func (f *FlowState) Attached() bool { return f.st == connV1Done || f.st == connV2 }

// ---------------------------------------------------------------------
// ChannelPins: the channel-id routing table.

// ChannelPins maps live channel ids to an owner (the server pins a
// conversation goroutine's inbox, the router pins a backend
// connection), with the mux protocol's tombstone discipline for failed
// channels: lock-step means at most one client frame can cross a
// channel-error on the wire, so a frame for a recently failed id is
// silently dropped (consuming the tombstone) while a frame for a
// never-opened id is a protocol violation. The tombstone set is bounded
// to the newest maxDeadChannels failures. All methods are safe for
// concurrent use.
type ChannelPins struct {
	mu        sync.Mutex
	open      map[uint32]*pinEntry
	dead      map[uint32]struct{}
	deadOrder []uint32
	active    int
}

type pinEntry struct {
	owner any
	// released records that this channel's concurrency slot was already
	// returned: the read loop releases the slot the moment the finish
	// frame arrives — not when the owner gets around to retiring the
	// channel — so a strictly serial client at the concurrency cap is
	// never spuriously refused.
	released bool
}

// maxDeadChannels bounds the tombstone set per connection. A stray
// frame, if one is ever in flight, arrives immediately behind the error
// that orphaned it; tombstones deeper than this are stale.
const maxDeadChannels = 128

// NewChannelPins returns an empty routing table.
func NewChannelPins() *ChannelPins {
	return &ChannelPins{open: make(map[uint32]*pinEntry), dead: make(map[uint32]struct{})}
}

// removeTombstoneLocked consumes a tombstone from both the set and the
// FIFO, so a pruned slot can never evict a fresh tombstone for a reused
// id. Caller holds p.mu.
func (p *ChannelPins) removeTombstoneLocked(id uint32) {
	if _, ok := p.dead[id]; !ok {
		return
	}
	delete(p.dead, id)
	for i, d := range p.deadOrder {
		if d == id {
			p.deadOrder = append(p.deadOrder[:i], p.deadOrder[i+1:]...)
			break
		}
	}
}

// Open registers id with its owner, consuming any tombstone for the
// reused id. A duplicate id is a protocol violation; an open past a
// positive limit reports ok == false with no error (the caller refuses
// the channel with a budget frame — a resource refusal, not a
// violation).
func (p *ChannelPins) Open(id uint32, owner any, limit int) (ok bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.open[id]; dup {
		return false, fmt.Errorf("%w: channel %d is already open", ErrProtocol, id)
	}
	p.removeTombstoneLocked(id) // the id is being reused; the stray never came
	if limit > 0 && p.active >= limit {
		return false, nil
	}
	p.open[id] = &pinEntry{owner: owner}
	p.active++
	return true, nil
}

// Route resolves the owner for an inbound frame on id. finish marks the
// frame as the channel's finish, releasing its concurrency slot
// immediately. A nil owner with ok == true means a tombstone absorbed
// the frame (drop it silently); ok == false means the id was never
// opened (a protocol violation the caller reports).
func (p *ChannelPins) Route(id uint32, finish bool) (owner any, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.open[id]; e != nil {
		if finish && !e.released {
			e.released = true
			p.active--
		}
		return e.owner, true
	}
	if _, dead := p.dead[id]; dead {
		p.removeTombstoneLocked(id)
		return nil, true
	}
	return nil, false
}

// Retire unregisters id if it is still pinned to owner (a reused id
// pinned to a newer owner is left alone), returning its concurrency
// slot if the finish frame did not already. When failed is set, the id
// is tombstoned so the one in-flight frame lock-step permits is dropped
// rather than treated as a violation.
func (p *ChannelPins) Retire(id uint32, owner any, failed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.open[id]; e != nil && e.owner == owner {
		delete(p.open, id)
		if !e.released {
			e.released = true
			p.active--
		}
	}
	if failed {
		if _, ok := p.dead[id]; !ok {
			p.dead[id] = struct{}{}
			p.deadOrder = append(p.deadOrder, id)
			if len(p.deadOrder) > maxDeadChannels {
				delete(p.dead, p.deadOrder[0])
				p.deadOrder = p.deadOrder[1:]
			}
		}
	}
}

// Active reports how many channels currently hold a concurrency slot.
func (p *ChannelPins) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

package wire

import (
	"errors"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
)

var f61 = field.Mersenne()

// dropOneItem is the canonical cheating cloud: it removes a single item
// from the maintained counts (the state a server that "lost" the last
// update would hold).
func dropOneItem(counts []int64) []int64 {
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			counts[i]--
			return counts
		}
		if counts[i] < 0 {
			counts[i]++
			return counts
		}
	}
	return counts
}

// startServer runs a Server on a loopback listener and returns its
// address and a shutdown func.
func startServer(t *testing.T, corrupt func([]int64) []int64) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{F: f61, Corrupt: corrupt}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }
}

func TestMsgRoundTrip(t *testing.T) {
	cases := []core.Msg{
		{},
		{Ints: []uint64{1, 2, 3}},
		{Elems: []field.Elem{7, 8}},
		{Ints: []uint64{9}, Elems: []field.Elem{10, 11, 12}},
	}
	for _, m := range cases {
		got, err := decodeMsg(encodeMsg(m))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Ints) != len(m.Ints) || len(got.Elems) != len(m.Elems) {
			t.Fatalf("roundtrip shape mismatch: %+v vs %+v", got, m)
		}
		for i := range m.Ints {
			if got.Ints[i] != m.Ints[i] {
				t.Fatalf("ints differ at %d", i)
			}
		}
		for i := range m.Elems {
			if got.Elems[i] != m.Elems[i] {
				t.Fatalf("elems differ at %d", i)
			}
		}
	}
	if _, err := decodeMsg([]byte{1, 2, 3}); err == nil {
		t.Error("short message accepted")
	}
	if _, err := decodeMsg(append(encodeMsg(core.Msg{Ints: []uint64{1}}), 0)); err == nil {
		t.Error("oversized message accepted")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	kind, params, err := decodeQuery(encodeQuery(QueryHeavyHitters, QueryParams{A: 5, B: 9, K: -2, Phi: 0.125}))
	if err != nil {
		t.Fatal(err)
	}
	if kind != QueryHeavyHitters || params.A != 5 || params.B != 9 || params.K != -2 || params.Phi != 0.125 {
		t.Fatalf("roundtrip = %v %+v", kind, params)
	}
	if _, _, err := decodeQuery([]byte{1}); err == nil {
		t.Error("short query accepted")
	}
}

// TestEndToEndQueries uploads a stream once and runs several verified
// queries over the same connection — the paper's cloud scenario.
func TestEndToEndQueries(t *testing.T) {
	addr, stop := startServer(t, nil)
	defer stop()

	const u = 1 << 10
	rng := field.NewSplitMix64(900)
	ups := stream.UniformDeltas(u, 100, rng)

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Hello(u); err != nil {
		t.Fatal(err)
	}

	// Local verifiers are created before the upload (they must see the
	// stream) — one per query we plan to ask.
	f2proto, err := core.NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	f2v := f2proto.NewVerifier(field.NewSplitMix64(901))
	rsproto, err := core.NewRangeSum(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rsv := rsproto.NewVerifier(field.NewSplitMix64(902))
	predproto, err := core.NewPredecessor(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	predv := predproto.NewVerifier(field.NewSplitMix64(903))

	for _, up := range ups {
		if err := f2v.Observe(up); err != nil {
			t.Fatal(err)
		}
		if err := rsv.Observe(up); err != nil {
			t.Fatal(err)
		}
		if err := predv.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.SendUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if err := client.EndStream(); err != nil {
		t.Fatal(err)
	}

	// F2 over the wire.
	if _, err := client.Query(QuerySelfJoinSize, QueryParams{}, f2v); err != nil {
		t.Fatalf("remote F2 rejected: %v", err)
	}
	gotF2, err := f2v.Result()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := stream.Apply(ups, u)
	var wantF2 field.Elem
	for _, v := range a {
		e := f61.FromInt64(v)
		wantF2 = f61.Add(wantF2, f61.Mul(e, e))
	}
	if gotF2 != wantF2 {
		t.Fatalf("remote F2 = %d, want %d", gotF2, wantF2)
	}

	// RANGE-SUM over the wire.
	if err := rsv.SetQuery(100, 300); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(QueryRangeSum, QueryParams{A: 100, B: 300}, rsv); err != nil {
		t.Fatalf("remote range-sum rejected: %v", err)
	}
	gotRS, err := rsv.SignedResult()
	if err != nil {
		t.Fatal(err)
	}
	var wantRS int64
	for i := 100; i <= 300; i++ {
		wantRS += a[i]
	}
	if gotRS != wantRS {
		t.Fatalf("remote range-sum = %d, want %d", gotRS, wantRS)
	}

	// PREDECESSOR over the wire.
	if err := predv.SetQuery(500); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(QueryPredecessor, QueryParams{A: 500}, predv); err != nil {
		t.Fatalf("remote predecessor rejected: %v", err)
	}
	pred, found, err := predv.Result()
	if err != nil {
		t.Fatal(err)
	}
	wantPred := int64(-1)
	for i := 500; i >= 0; i-- {
		if a[i] != 0 {
			wantPred = int64(i)
			break
		}
	}
	if !found || int64(pred) != wantPred {
		t.Fatalf("remote predecessor = (%d,%v), want %d", pred, found, wantPred)
	}
}

// TestDishonestServerRejected: a cloud that silently loses an item from
// its maintained counts is caught by the client's verifier over the
// wire.
func TestDishonestServerRejected(t *testing.T) {
	addr, stop := startServer(t, dropOneItem)
	defer stop()

	const u = 256
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(904))
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Hello(u); err != nil {
		t.Fatal(err)
	}
	proto, err := core.NewSelfJoinSize(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(field.NewSplitMix64(905))
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.SendUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if err := client.EndStream(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(QuerySelfJoinSize, QueryParams{}, v); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("dishonest cloud not rejected: %v", err)
	}
}

// TestBuildProverKinds constructs every query kind.
func TestBuildProverKinds(t *testing.T) {
	const u = 128
	ups := stream.UniformDeltas(u, 10, field.NewSplitMix64(906))
	kinds := []struct {
		kind   QueryKind
		params QueryParams
	}{
		{QuerySelfJoinSize, QueryParams{}},
		{QueryFk, QueryParams{K: 3}},
		{QueryRangeSum, QueryParams{A: 1, B: 50}},
		{QueryRangeQuery, QueryParams{A: 1, B: 50}},
		{QueryIndex, QueryParams{A: 5}},
		{QueryDictionary, QueryParams{A: 5}},
		{QueryPredecessor, QueryParams{A: 5}},
		{QuerySuccessor, QueryParams{A: 5}},
		{QueryKLargest, QueryParams{K: 2}},
		{QueryHeavyHitters, QueryParams{Phi: 0.1}},
		{QueryF0, QueryParams{}},
		{QueryFmax, QueryParams{}},
	}
	for _, c := range kinds {
		for _, workers := range []int{0, -1} {
			if _, err := BuildProver(f61, u, c.kind, c.params, ups, workers); err != nil {
				t.Errorf("BuildProver(%d, workers=%d): %v", c.kind, workers, err)
			}
		}
	}
	if _, err := BuildProver(f61, u, QueryKind(99), QueryParams{}, ups, 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

package wire

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/gkr"
	"repro/internal/stream"
)

// recordingVerifier wraps a verifier session and keeps a copy of every
// prover message it consumes, so a multiplexed conversation can be
// compared bit for bit against a serial baseline.
type recordingVerifier struct {
	inner core.VerifierSession
	msgs  []core.Msg
}

func (r *recordingVerifier) record(m core.Msg) {
	r.msgs = append(r.msgs, core.Msg{
		Ints:  append([]uint64(nil), m.Ints...),
		Elems: append([]field.Elem(nil), m.Elems...),
	})
}

func (r *recordingVerifier) Begin(m core.Msg) (core.Msg, bool, error) {
	r.record(m)
	return r.inner.Begin(m)
}

func (r *recordingVerifier) Step(m core.Msg) (core.Msg, bool, error) {
	r.record(m)
	return r.inner.Step(m)
}

func sameTranscript(a, b []core.Msg) error {
	if len(a) != len(b) {
		return fmt.Errorf("round counts differ: %d vs %d", len(a), len(b))
	}
	for r := range a {
		if len(a[r].Ints) != len(b[r].Ints) || len(a[r].Elems) != len(b[r].Elems) {
			return fmt.Errorf("round %d shapes differ", r)
		}
		for i := range a[r].Ints {
			if a[r].Ints[i] != b[r].Ints[i] {
				return fmt.Errorf("round %d int %d differs", r, i)
			}
		}
		for i := range a[r].Elems {
			if a[r].Elems[i] != b[r].Elems[i] {
				return fmt.Errorf("round %d elem %d differs", r, i)
			}
		}
	}
	return nil
}

// muxVerifier builds the verifier session for one query kind with its
// query pre-set, mirroring the engine test helper.
func muxVerifier(t *testing.T, u uint64, kind QueryKind, p QueryParams, seed uint64) (core.VerifierSession, func(stream.Update) error) {
	t.Helper()
	rng := field.NewSplitMix64(seed)
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	switch kind {
	case QuerySelfJoinSize, QueryFk:
		k := 2
		if kind == QueryFk {
			k = int(p.K)
		}
		proto, err := core.NewFk(f61, u, k)
		check(err)
		v := proto.NewVerifier(rng)
		return v, v.Observe
	case QueryRangeSum:
		proto, err := core.NewRangeSum(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A, p.B))
		return v, v.Observe
	case QueryRangeQuery:
		proto, err := core.NewRangeQuery(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A, p.B))
		return v, v.Observe
	case QueryIndex:
		proto, err := core.NewIndex(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A))
		return v, v.Observe
	case QueryDictionary:
		proto, err := core.NewDictionary(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A))
		return v, v.Observe
	case QueryPredecessor:
		proto, err := core.NewPredecessor(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A))
		return v, v.Observe
	case QuerySuccessor:
		proto, err := core.NewSuccessor(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A))
		return v, v.Observe
	case QueryKLargest:
		proto, err := core.NewKLargest(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(int(p.K)))
		return v, v.Observe
	case QueryHeavyHitters:
		proto, err := core.NewHeavyHitters(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.Phi))
		return v, v.Observe
	case QueryF0:
		proto, err := core.NewF0(f61, u, p.Phi)
		check(err)
		v := proto.NewVerifier(rng)
		return v, v.Observe
	case QueryFmax:
		proto, err := core.NewFmax(f61, u, p.Phi)
		check(err)
		v := proto.NewVerifier(rng)
		return v, v.Observe
	case QueryCircuit:
		vs, err := gkr.NewVerifierFor(f61, circuit.Spec{Name: p.Circuit, Arg: p.A}, u, rng)
		check(err)
		return vs, vs.Observe
	default:
		t.Fatalf("unknown kind %d", kind)
		return nil, nil
	}
}

func muxKinds() []struct {
	kind   QueryKind
	params QueryParams
} {
	return []struct {
		kind   QueryKind
		params QueryParams
	}{
		{QuerySelfJoinSize, QueryParams{}},
		{QueryFk, QueryParams{K: 3}},
		{QueryRangeSum, QueryParams{A: 3, B: 200}},
		{QueryRangeQuery, QueryParams{A: 3, B: 200}},
		{QueryIndex, QueryParams{A: 17}},
		{QueryDictionary, QueryParams{A: 17}},
		{QueryPredecessor, QueryParams{A: 99}},
		{QuerySuccessor, QueryParams{A: 99}},
		{QueryKLargest, QueryParams{K: 4}},
		{QueryHeavyHitters, QueryParams{Phi: 0.02}},
		{QueryF0, QueryParams{}},
		{QueryFmax, QueryParams{}},
	}
}

// observeAll feeds the stream to a verifier.
func observeAll(t *testing.T, obs func(stream.Update) error, ups []stream.Update) {
	t.Helper()
	for _, up := range ups {
		if err := obs(up); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMuxQueriesTranscripts is the tentpole contract: for every query
// kind and worker count, k conversations overlapped on ONE connection
// emit transcripts bit-identical to the same k conversations run
// serially on one connection, and all are accepted.
func TestMuxQueriesTranscripts(t *testing.T) {
	const u = 500
	ups := stream.UniformDeltas(u, 20, field.NewSplitMix64(1100))
	kinds := muxKinds()
	for _, workers := range []int{0, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			addr, stop := startServerOpts(t, &Server{F: f61, Workers: workers})
			defer stop()

			cl, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if _, err := cl.OpenDataset("mux", u); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Ingest(ups); err != nil {
				t.Fatal(err)
			}

			seed := func(k int) uint64 { return uint64(20_000 + k) }

			// Serial baseline: the k conversations one after another.
			serial := make([][]core.Msg, len(kinds))
			for k, c := range kinds {
				v, obs := muxVerifier(t, u, c.kind, c.params, seed(k))
				observeAll(t, obs, ups)
				rec := &recordingVerifier{inner: v}
				if _, err := cl.Query(c.kind, c.params, rec); err != nil {
					t.Fatalf("serial %d (kind %d): %v", k, c.kind, err)
				}
				serial[k] = rec.msgs
			}

			// Overlapped: all k in flight at once on the same connection.
			recs := make([]*recordingVerifier, len(kinds))
			handles := make([]*QueryHandle, len(kinds))
			for k, c := range kinds {
				v, obs := muxVerifier(t, u, c.kind, c.params, seed(k))
				observeAll(t, obs, ups)
				recs[k] = &recordingVerifier{inner: v}
				h, err := cl.QueryAsync(c.kind, c.params, recs[k])
				if err != nil {
					t.Fatalf("QueryAsync %d: %v", k, err)
				}
				handles[k] = h
			}
			for k, h := range handles {
				if _, err := h.Wait(); err != nil {
					t.Fatalf("overlapped %d (kind %d) rejected: %v", k, kinds[k].kind, err)
				}
			}
			for k := range kinds {
				if err := sameTranscript(serial[k], recs[k].msgs); err != nil {
					t.Errorf("kind %d workers=%d: overlapped transcript differs from serial: %v", kinds[k].kind, workers, err)
				}
			}
		})
	}
}

// TestMuxIngestionFlowsBetweenConversations: updates sent while
// conversations are in flight are folded (and acked) without waiting
// for the conversations, and the conversations still prove against the
// state they were issued at — frame order on the wire fixes each
// snapshot.
func TestMuxIngestionFlowsBetweenConversations(t *testing.T) {
	const u = 1 << 10
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()

	ups1 := stream.UniformDeltas(u, 50, field.NewSplitMix64(1200))
	ups2 := stream.UnitIncrements(u, 300, field.NewSplitMix64(1201))

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.OpenDataset("flow", u); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Ingest(ups1); err != nil {
		t.Fatal(err)
	}

	// Launch conversations over the ups1 state…
	const k = 4
	handles := make([]*QueryHandle, k)
	for i := 0; i < k; i++ {
		v, obs := muxVerifier(t, u, QuerySelfJoinSize, QueryParams{}, uint64(1300+i))
		observeAll(t, obs, ups1)
		h, err := cl.QueryAsync(QuerySelfJoinSize, QueryParams{}, v)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	// …then ingest more while they are (potentially) mid-flight. The
	// ingest acks must come back without waiting for any conversation.
	count, err := cl.Ingest(ups2)
	if err != nil {
		t.Fatal(err)
	}
	if int(count) != len(ups1)+len(ups2) {
		t.Fatalf("count after interleaved ingest = %d, want %d", count, len(ups1)+len(ups2))
	}
	for i, h := range handles {
		if _, err := h.Wait(); err != nil {
			t.Fatalf("conversation %d (issued before the ingest) rejected: %v", i, err)
		}
	}
	// A conversation issued after the ingest sees the union.
	v, obs := muxVerifier(t, u, QuerySelfJoinSize, QueryParams{}, 1400)
	observeAll(t, obs, ups1)
	observeAll(t, obs, ups2)
	if _, err := cl.Query(QuerySelfJoinSize, QueryParams{}, v); err != nil {
		t.Fatalf("post-ingest conversation rejected: %v", err)
	}
}

// TestMuxV1Concurrent: the v1 flow supports overlapped conversations
// too, and a dishonest v1 server is rejected on every one of them.
func TestMuxV1Concurrent(t *testing.T) {
	const u = 256
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(1500))
	for _, tc := range []struct {
		name    string
		corrupt func([]int64) []int64
		wantErr bool
	}{
		{"honest", nil, false},
		{"dishonest", dropOneItem, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addr, stop := startServerOpts(t, &Server{F: f61, Corrupt: tc.corrupt})
			defer stop()
			cl, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if err := cl.Hello(u); err != nil {
				t.Fatal(err)
			}
			if err := cl.SendUpdates(ups); err != nil {
				t.Fatal(err)
			}
			if err := cl.EndStream(); err != nil {
				t.Fatal(err)
			}
			const k = 4
			handles := make([]*QueryHandle, k)
			for i := 0; i < k; i++ {
				v, obs := muxVerifier(t, u, QuerySelfJoinSize, QueryParams{}, uint64(1600+i))
				observeAll(t, obs, ups)
				if handles[i], err = cl.QueryAsync(QuerySelfJoinSize, QueryParams{}, v); err != nil {
					t.Fatal(err)
				}
			}
			for i, h := range handles {
				_, err := h.Wait()
				if tc.wantErr && !errors.Is(err, core.ErrRejected) {
					t.Errorf("conversation %d against a dishonest cloud: %v, want ErrRejected", i, err)
				}
				if !tc.wantErr && err != nil {
					t.Errorf("conversation %d: %v", i, err)
				}
			}
		})
	}
}

// TestMuxChannelBudget: channel opens past MaxConcurrentQueries get the
// budget-frame treatment — the refused channel fails typed, the
// connection and the in-flight conversation survive, and finishing a
// conversation frees its slot.
func TestMuxChannelBudget(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61, MaxConcurrentQueries: 1})
	defer stop()

	rc := dialRaw(t, addr)
	rc.send(frameHello, helloPayload(64))
	rc.send(frameUpdates, encodeUpdates([]stream.Update{{Index: 1, Delta: 1}}))
	rc.send(frameEndStream, nil)
	// Drain the hello and end-stream acks.
	for acks := 0; acks < 2; {
		typ, _, err := readFrame(rc.conn)
		if err != nil {
			t.Fatal(err)
		}
		if typ != frameOK {
			t.Fatalf("expected ack, got frame 0x%02x", typ)
		}
		acks++
	}
	// Channel 1 opens and parks mid-conversation (we never answer).
	rc.send(frameQueryCh, encodeChannel(1, encodeQuery(QuerySelfJoinSize, QueryParams{})))
	typ, payload, err := readFrame(rc.conn)
	if err != nil {
		t.Fatal(err)
	}
	if id, _, _ := decodeChannel(payload); typ != frameProverCh || id != 1 {
		t.Fatalf("expected the channel-1 opening, got frame 0x%02x ch=%d", typ, id)
	}
	// Channel 2 exceeds the cap: a budget frame for channel 2 only.
	rc.send(frameQueryCh, encodeChannel(2, encodeQuery(QuerySelfJoinSize, QueryParams{})))
	typ, payload, err = readFrame(rc.conn)
	if err != nil {
		t.Fatal(err)
	}
	if id, _, _ := decodeChannel(payload); typ != frameBudgetCh || id != 2 {
		t.Fatalf("expected a channel-2 budget refusal, got frame 0x%02x ch=%d", typ, id)
	}
	// Finish channel 1: the read loop releases the slot the moment the
	// finish frame is processed, so the very next open on the connection
	// must be admitted — a serial client at the cap is never spuriously
	// refused.
	rc.send(frameFinishCh, encodeChannel(1, nil))
	rc.send(frameQueryCh, encodeChannel(3, encodeQuery(QuerySelfJoinSize, QueryParams{})))
	typ, payload, err = readFrame(rc.conn)
	if err != nil {
		t.Fatal(err)
	}
	if id, _, _ := decodeChannel(payload); typ != frameProverCh || id != 3 {
		t.Fatalf("open straight after finish got frame 0x%02x ch=%d, want the channel-3 opening (slot released late?)", typ, id)
	}
	rc.send(frameFinishCh, encodeChannel(3, nil))
}

// TestMuxCrossDatasetResidency crosses the mux channels with the memory
// governor: k concurrent conversations on ONE connection over four
// datasets thrashing a two-dataset Σ budget, so snapshots force
// evictions and rehydrations while other channels are mid-conversation.
// Every transcript must be bit-identical to an uncontended serial
// baseline. Meaningful mostly under -race (the wire-layer extension of
// the engine's TestCrossDatasetContention).
func TestMuxCrossDatasetResidency(t *testing.T) {
	const (
		u         = 500
		nDatasets = 4
	)
	oneDataset := int64(512 * 16) // u padded to 512, 16 bytes/entry
	kinds := muxKinds()
	for _, workers := range []int{0, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv := &Server{F: f61, Workers: workers, MemBudget: 2 * oneDataset, DataDir: t.TempDir()}
			addr, stop := startServerOpts(t, srv)
			defer stop()

			// Ingest a distinct stream into each dataset.
			streams := make([][]stream.Update, nDatasets)
			cl, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			for d := 0; d < nDatasets; d++ {
				streams[d] = stream.UniformDeltas(u, 30, field.NewSplitMix64(uint64(1700+d)))
				if _, err := cl.OpenDataset(fmt.Sprintf("d%d", d), u); err != nil {
					t.Fatal(err)
				}
				if _, err := cl.Ingest(streams[d]); err != nil {
					t.Fatal(err)
				}
			}

			// Baselines: standalone datasets, never evicted, same seeds.
			baseline := make([][]core.Msg, len(kinds))
			for k, c := range kinds {
				d := k % nDatasets
				ds, err := engine.NewDataset(f61, u, workers)
				if err != nil {
					t.Fatal(err)
				}
				if err := ds.Ingest(streams[d]); err != nil {
					t.Fatal(err)
				}
				p, err := ds.Snapshot().NewProver(c.kind, c.params)
				if err != nil {
					t.Fatal(err)
				}
				v, obs := muxVerifier(t, u, c.kind, c.params, uint64(21_000+k))
				observeAll(t, obs, streams[d])
				rec := &recordingVerifier{inner: v}
				if _, err := core.Run(p, rec); err != nil {
					t.Fatalf("baseline %d rejected: %v", k, err)
				}
				baseline[k] = rec.msgs
			}

			// One connection, all kinds in flight, re-attaching round-robin
			// across the four datasets between channel opens: every
			// snapshot can force an eviction of a dataset another live
			// conversation was built from.
			recs := make([]*recordingVerifier, len(kinds))
			handles := make([]*QueryHandle, len(kinds))
			for k, c := range kinds {
				d := k % nDatasets
				if _, err := cl.OpenDataset(fmt.Sprintf("d%d", d), u); err != nil {
					t.Fatal(err)
				}
				v, obs := muxVerifier(t, u, c.kind, c.params, uint64(21_000+k))
				observeAll(t, obs, streams[d])
				recs[k] = &recordingVerifier{inner: v}
				h, err := cl.QueryAsync(c.kind, c.params, recs[k])
				if err != nil {
					t.Fatal(err)
				}
				handles[k] = h
			}
			for k, h := range handles {
				if _, err := h.Wait(); err != nil {
					t.Fatalf("contended conversation %d (kind %d) rejected: %v", k, kinds[k].kind, err)
				}
			}
			for k := range kinds {
				if err := sameTranscript(baseline[k], recs[k].msgs); err != nil {
					t.Errorf("kind %d workers=%d: contended mux transcript differs: %v", kinds[k].kind, workers, err)
				}
			}
		})
	}
}

// TestCloseClosesAllListeners: a server serving several listeners must
// stop all of them on Close, not just the most recently served one.
func TestCloseClosesAllListeners(t *testing.T) {
	srv := &Server{F: f61}
	var lns [2]net.Listener
	var addrs [2]string
	done := make(chan error, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
		go func(ln net.Listener) { done <- srv.Serve(ln) }(ln)
	}
	// Both listeners answer before the Close.
	for _, addr := range addrs {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Hello(64); err != nil {
			t.Fatalf("hello via %s: %v", addr, err)
		}
		cl.Close()
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, ErrServerClosed) {
				t.Fatalf("Serve returned %v, want ErrServerClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("a Serve loop survived Close — its listener was orphaned")
		}
	}
	// Neither address accepts new connections.
	for _, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			t.Fatalf("listener %s still accepting after Close", addr)
		}
	}
}

// TestClientTimeout: a stalled or half-open server surfaces as a typed
// ErrTimeout on every waiting entry point instead of hanging forever.
func TestClientTimeout(t *testing.T) {
	// A "server" that accepts, acks hello and end-stream, then goes
	// silent forever — it never answers queries.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					typ, _, err := readFrame(conn)
					if err != nil {
						return
					}
					switch typ {
					case frameHello, frameEndStream:
						if err := writeFrame(conn, frameOK, encodeCount(0)); err != nil {
							return
						}
					default:
						// swallow everything else, never respond
					}
				}
			}(conn)
		}
	}()

	t.Run("silent before hello ack", func(t *testing.T) {
		// A raw listener that accepts and never speaks at all.
		silent, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer silent.Close()
		go func() {
			for {
				conn, err := silent.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				_, _ = conn.Read(make([]byte, 1<<10)) // read and ignore
				select {}                             // hold the connection open, say nothing
			}
		}()
		cl, err := Dial(silent.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		cl.Timeout = 150 * time.Millisecond
		start := time.Now()
		if err := cl.Hello(64); !errors.Is(err, ErrTimeout) {
			t.Fatalf("Hello against a silent server = %v, want wire.ErrTimeout", err)
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("Hello hung for %v despite the timeout", waited)
		}
	})

	t.Run("silent mid-conversation", func(t *testing.T) {
		cl, err := Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		cl.Timeout = 150 * time.Millisecond
		if err := cl.Hello(64); err != nil {
			t.Fatal(err)
		}
		if err := cl.EndStream(); err != nil {
			t.Fatal(err)
		}
		v, _ := muxVerifier(t, 64, QuerySelfJoinSize, QueryParams{}, 1800)
		start := time.Now()
		if _, err := cl.Query(QuerySelfJoinSize, QueryParams{}, v); !errors.Is(err, ErrTimeout) {
			t.Fatalf("Query against a silent server = %v, want wire.ErrTimeout", err)
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("Query hung for %v despite the timeout", waited)
		}
	})
}

// TestEndStreamSurfacesIngestError: a server-side ingest failure during
// a v1 upload surfaces as a typed error from EndStream (which is acked
// in the mux protocol revision) instead of desynchronizing the first
// query. The trigger is IngestColumns' bounds check: index 510 lands in
// the padding of a 500-entry universe (padded to 512) and must be
// refused.
func TestEndStreamSurfacesIngestError(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Hello(500); err != nil {
		t.Fatal(err)
	}
	// The bad batch: the server refuses it and kills the connection, but
	// v1 batches are unacknowledged so the send itself "succeeds".
	_ = cl.SendUpdates([]stream.Update{{Index: 510, Delta: 1}})
	// Keep streaming, as a client unaware of the failure would.
	_ = cl.SendUpdates(stream.UnitIncrements(500, 100, field.NewSplitMix64(1900)))
	err = cl.EndStream()
	if err == nil {
		t.Fatal("EndStream after a refused batch reported success")
	}
	if !strings.Contains(err.Error(), "outside universe") {
		t.Fatalf("EndStream error = %q, want the server's typed bounds-check failure", err)
	}
}

// TestEndStreamAcked: the happy-path regression for the EndStream ack —
// the ack carries the folded update count.
func TestEndStreamAcked(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()
	rc := dialRaw(t, addr)
	rc.send(frameHello, helloPayload(64))
	rc.send(frameUpdates, encodeUpdates([]stream.Update{{Index: 1, Delta: 1}, {Index: 2, Delta: 5}}))
	rc.send(frameEndStream, nil)
	var counts []uint64
	for i := 0; i < 2; i++ {
		typ, payload, err := readFrame(rc.conn)
		if err != nil {
			t.Fatal(err)
		}
		if typ != frameOK {
			t.Fatalf("frame %d: got 0x%02x, want an ack", i, typ)
		}
		n, err := decodeCount(payload)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, n)
	}
	if counts[0] != 0 || counts[1] != 2 {
		t.Fatalf("acks carried counts %v, want [0 2]", counts)
	}
}

package wire

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/fs"
	"repro/internal/stream"
)

// streamedVerifier builds the offline verifier for a fetched proof: the
// session from the proof's binding RNG, fed the client's own copy of
// the updates.
func streamedVerifier(t *testing.T, b fs.Binding, kind QueryKind, params QueryParams, ups []stream.Update) engine.StreamVerifier {
	t.Helper()
	v, err := engine.NewStreamVerifier(f61, b.Universe, kind, params, b.RNG())
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

// TestProofFetchRoundTrip: a v2 client uploads, fetches the posted
// proof, and verifies it offline against its own streamed fingerprint.
// A second fetch is a cache hit serving bit-identical bytes.
func TestProofFetchRoundTrip(t *testing.T) {
	srv := &Server{F: f61}
	addr, stop := startServerOpts(t, srv)
	defer stop()

	const u = 1 << 10
	ups := stream.UniformDeltas(u, 200, field.NewSplitMix64(90))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenDataset("metrics", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ups); err != nil {
		t.Fatal(err)
	}

	pf, err := c.FetchProof(QuerySelfJoinSize, QueryParams{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Dataset != "metrics" || pf.Version == 0 {
		t.Fatalf("proof binding %+v", pf.Binding)
	}
	v := streamedVerifier(t, pf.Binding, QuerySelfJoinSize, QueryParams{}, ups)
	if err := pf.Binding.Verify(pf, v); err != nil {
		t.Fatalf("offline verification rejected the fetched proof: %v", err)
	}

	// Fetching again (pinned to the proof's version) is a cache hit and
	// returns the same bytes.
	pf2, err := c.FetchProof(QuerySelfJoinSize, QueryParams{}, pf.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pf.Encode(), pf2.Encode()) {
		t.Fatal("second fetch returned different proof bytes")
	}
	st := srv.Stats().ProofCache
	if st.Misses != 1 || st.Hits < 1 {
		t.Fatalf("cache stats %+v, want 1 miss and ≥1 hit", st)
	}

	// QueryCached wraps fetch+verify and surfaces the cost accounting.
	pf3, stats, err := c.QueryCached(QuerySelfJoinSize, QueryParams{}, 0,
		func(b fs.Binding) (core.VerifierSession, error) {
			return streamedVerifier(t, b, QuerySelfJoinSize, QueryParams{}, ups), nil
		})
	if err != nil {
		t.Fatalf("QueryCached: %v", err)
	}
	if stats.Rounds != len(pf3.Messages) || stats.WordsToVerifier == 0 {
		t.Fatalf("stats %+v for %d messages", stats, len(pf3.Messages))
	}
}

// TestProofFetchInvalidation: ingest between two fetches rotates the
// version key — the second proof differs, verifies against the union of
// the updates, and a fetch pinned to the stale version is refused.
func TestProofFetchInvalidation(t *testing.T) {
	srv := &Server{F: f61}
	addr, stop := startServerOpts(t, srv)
	defer stop()

	const u = 512
	ups1 := stream.UnitIncrements(u, 100, field.NewSplitMix64(91))
	ups2 := stream.UnitIncrements(u, 60, field.NewSplitMix64(92))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenDataset("inv", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ups1); err != nil {
		t.Fatal(err)
	}
	pf1, err := c.FetchProof(QueryRangeSum, QueryParams{A: 3, B: 400}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ups2); err != nil {
		t.Fatal(err)
	}
	pf2, err := c.FetchProof(QueryRangeSum, QueryParams{A: 3, B: 400}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pf1.Version == pf2.Version {
		t.Fatalf("ingest did not rotate the proof version (%d)", pf1.Version)
	}
	if bytes.Equal(pf1.Encode(), pf2.Encode()) {
		t.Fatal("proofs at different versions are identical")
	}
	all := append(append([]stream.Update{}, ups1...), ups2...)
	v := streamedVerifier(t, pf2.Binding, QueryRangeSum, QueryParams{A: 3, B: 400}, all)
	if err := pf2.Binding.Verify(pf2, v); err != nil {
		t.Fatalf("post-ingest proof rejected: %v", err)
	}

	// A fetch pinned to the superseded version is refused, not silently
	// served stale.
	if _, err := c.FetchProof(QueryRangeSum, QueryParams{A: 3, B: 400}, pf1.Version); err == nil ||
		!strings.Contains(err.Error(), "not current") {
		t.Fatalf("stale pinned fetch: err = %v, want version refusal", err)
	}
}

// TestProofBitFlipSweep flips one bit in every byte of a wire-fetched
// proof; each mutant must fail decoding or offline verification. The
// query carries a nonzero Phi so no byte of the descriptor is
// flip-degenerate (0.0 and -0.0 compare equal as floats).
func TestProofBitFlipSweep(t *testing.T) {
	srv := &Server{F: f61}
	addr, stop := startServerOpts(t, srv)
	defer stop()

	const u = 64
	ups := stream.UnitIncrements(u, 40, field.NewSplitMix64(93))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenDataset("flip", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	kind, params := QueryKind(QueryHeavyHitters), QueryParams{Phi: 0.05}
	pf, err := c.FetchProof(kind, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := pf.Encode()
	want := pf.Binding
	if err := want.Verify(pf, streamedVerifier(t, want, kind, params, ups)); err != nil {
		t.Fatalf("pristine proof rejected: %v", err)
	}
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 1 << bit
			got, err := fs.DecodeProof(mut)
			if err != nil {
				continue // malformed: rejected at the codec
			}
			v := streamedVerifier(t, want, kind, params, ups)
			if err := want.Verify(got, v); err == nil {
				t.Fatalf("flipping bit %d of byte %d/%d went undetected", bit, i, len(enc))
			}
		}
	}
}

// TestProofFanoutCoalesce: k concurrent verifiers fetching one query
// cost the server one prover run — every other request is a cache hit
// (coalesced into the in-flight generation or served after it).
func TestProofFanoutCoalesce(t *testing.T) {
	srv := &Server{F: f61}
	addr, stop := startServerOpts(t, srv)
	defer stop()

	const u = 1 << 12
	const k = 8
	ups := stream.UniformDeltas(u, 500, field.NewSplitMix64(94))
	up, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := up.OpenDataset("fan", u); err != nil {
		t.Fatal(err)
	}
	if _, err := up.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	up.Close()

	var wg sync.WaitGroup
	errs := make([]error, k)
	proofs := make([]*fs.Proof, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			if _, err := c.OpenDataset("fan", u); err != nil {
				errs[i] = err
				return
			}
			proofs[i], errs[i] = c.FetchProof(QuerySelfJoinSize, QueryParams{}, 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("verifier %d: %v", i, err)
		}
	}
	first := proofs[0].Encode()
	for i, pf := range proofs {
		if !bytes.Equal(first, pf.Encode()) {
			t.Fatalf("verifier %d received different proof bytes", i)
		}
	}
	v := streamedVerifier(t, proofs[0].Binding, QuerySelfJoinSize, QueryParams{}, ups)
	if err := proofs[0].Binding.Verify(proofs[0], v); err != nil {
		t.Fatalf("fanout proof rejected: %v", err)
	}
	st := srv.Stats().ProofCache
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", st.Misses)
	}
	if st.Hits < k-1 {
		t.Fatalf("hits = %d, want ≥ %d", st.Hits, k-1)
	}
}

// TestCheckProofBinding sweeps the client-side binding validation: a
// fetched proof whose header disagrees with any client-pinned value —
// dataset, universe, query, pinned version, declared modulus — is
// rejected, so a malicious server gets no grinding bits from the fields
// that feed the challenge derivation.
func TestCheckProofBinding(t *testing.T) {
	kind, params := QueryKind(QueryRangeSum), QueryParams{A: 3, B: 9}
	good := fs.Binding{
		Modulus:  f61.Modulus(),
		Universe: 1024,
		Dataset:  "d",
		Version:  5,
		Query:    engine.FSQuery(kind, params),
	}
	check := func(b fs.Binding, modulus, version uint64) error {
		return checkProofBinding(&fs.Proof{Binding: b}, modulus, "d", 1024, version, kind, params)
	}
	if err := check(good, f61.Modulus(), 5); err != nil {
		t.Fatalf("fully pinned honest binding rejected: %v", err)
	}
	if err := check(good, 0, 0); err != nil {
		t.Fatalf("unpinned honest binding rejected: %v", err)
	}
	mutate := func(name string, f func(*fs.Binding)) {
		b := good
		f(&b)
		if err := check(b, f61.Modulus(), 5); err == nil {
			t.Errorf("%s: server-controlled binding accepted", name)
		}
	}
	mutate("dataset", func(b *fs.Binding) { b.Dataset = "other" })
	mutate("universe", func(b *fs.Binding) { b.Universe = 2048 })
	mutate("query kind", func(b *fs.Binding) { b.Query.Kind++ })
	mutate("query params", func(b *fs.Binding) { b.Query.B = 10 })
	mutate("pinned version", func(b *fs.Binding) { b.Version = 6 })
	mutate("pinned modulus", func(b *fs.Binding) { b.Modulus++ })
	// Unpinned fields are the server's to assert: version floats when the
	// caller passed 0, the modulus floats only when FieldModulus is 0.
	offVersion := good
	offVersion.Version = 9
	if err := check(offVersion, f61.Modulus(), 0); err != nil {
		t.Fatalf("unpinned version rejected: %v", err)
	}
	offModulus := good
	offModulus.Modulus++
	if err := check(offModulus, 0, 5); err != nil {
		t.Fatalf("undeclared modulus rejected: %v", err)
	}
	if err := check(offModulus, f61.Modulus(), 5); err == nil {
		t.Fatal("declared modulus not enforced")
	}
}

// TestProofFieldModulusPinned: end to end, a client that declares its
// field refuses a proof over any other — here by declaring a modulus the
// server does not use.
func TestProofFieldModulusPinned(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()
	const u = 64
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.FieldModulus = f61.Modulus() - 2 // disagree with the server's field
	if _, err := c.OpenDataset("pin", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(stream.UnitIncrements(u, 10, field.NewSplitMix64(95))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchProof(QuerySelfJoinSize, QueryParams{}, 0); err == nil ||
		!strings.Contains(err.Error(), "binding") {
		t.Fatalf("mismatched modulus: err = %v, want binding rejection", err)
	}
	c.FieldModulus = f61.Modulus()
	if _, err := c.FetchProof(QuerySelfJoinSize, QueryParams{}, 0); err != nil {
		t.Fatalf("matching modulus rejected: %v", err)
	}
}

// TestProofFetchV1Refused: the v1 private-dataset flow has no stable
// cache identity; FetchProof is refused client-side before any frame.
func TestProofFetchV1Refused(t *testing.T) {
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello(64); err != nil {
		t.Fatal(err)
	}
	if err := c.EndStream(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchProof(QuerySelfJoinSize, QueryParams{}, 0); err == nil ||
		!strings.Contains(err.Error(), "named dataset") {
		t.Fatalf("v1 FetchProof: err = %v, want named-dataset refusal", err)
	}
}

// TestProofCacheInvalidatedOnDrop: dropping a dataset purges its cached
// proofs. A recreated dataset restarts its version counter, so the
// cache key (name, version, query) collides with the old entries — a
// stale entry would serve the OLD dataset's proof for the NEW data.
// Regression test for the engine drop path never invalidating the
// cache (the hook wired by hookEngineLocked).
func TestProofCacheInvalidatedOnDrop(t *testing.T) {
	eng := engine.New(f61, 0)
	srv := &Server{F: f61, Engine: eng}
	addr, stop := startServerOpts(t, srv)
	defer stop()

	const u = 512
	ups1 := stream.UnitIncrements(u, 80, field.NewSplitMix64(950))
	ups2 := stream.UnitIncrements(u, 80, field.NewSplitMix64(951))

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenDataset("regen", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ups1); err != nil {
		t.Fatal(err)
	}
	pf1, err := c.FetchProof(QuerySelfJoinSize, QueryParams{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Drop out-of-band (an operator, another tenant) and recreate the
	// name with different data, landing on the same version number.
	eng.Drop("regen")
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if count, err := c2.OpenDataset("regen", u); err != nil || count != 0 {
		t.Fatalf("recreate after drop: count = %d, err = %v", count, err)
	}
	if _, err := c2.Ingest(ups2); err != nil {
		t.Fatal(err)
	}
	pf2, err := c2.FetchProof(QuerySelfJoinSize, QueryParams{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pf1.Version != pf2.Version {
		t.Fatalf("versions %d vs %d: the key collision this test exists for is gone", pf1.Version, pf2.Version)
	}
	if bytes.Equal(pf1.Encode(), pf2.Encode()) {
		t.Fatal("cache served the dropped dataset's proof for the recreated dataset")
	}
	v := streamedVerifier(t, pf2.Binding, QuerySelfJoinSize, QueryParams{}, ups2)
	if err := pf2.Binding.Verify(pf2, v); err != nil {
		t.Fatalf("recreated dataset's proof rejected offline: %v", err)
	}
}

package wire

// CIRCUIT-over-the-wire tests: the GKR workload rides the v2/mux
// protocol like any fixed query kind — transcripts bit-identical across
// worker counts and mux interleaving, dishonest servers rejected, and
// unknown circuit names surfacing as typed per-channel errors that
// leave the connection usable.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
)

// circuitMuxKinds are the registry families driven over the mux wire.
func circuitMuxKinds() []struct {
	kind   QueryKind
	params QueryParams
} {
	return []struct {
		kind   QueryKind
		params QueryParams
	}{
		{QueryCircuit, QueryParams{Circuit: circuit.FamilyF2}},
		{QueryCircuit, QueryParams{Circuit: circuit.FamilyCount}},
		{QueryCircuit, QueryParams{Circuit: circuit.FamilyMatMul, A: 16}},
	}
}

// TestMuxCircuitTranscripts is the wire-layer acceptance test for the
// GKR workload: for every circuit family and worker count, a CIRCUIT
// conversation multiplexed with its siblings on one connection is
// bit-identical to the same conversation run serially, and all are
// accepted.
func TestMuxCircuitTranscripts(t *testing.T) {
	const u = 500
	ups := stream.UniformDeltas(u, 20, field.NewSplitMix64(1700))
	kinds := circuitMuxKinds()
	for _, workers := range []int{0, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			addr, stop := startServerOpts(t, &Server{F: f61, Workers: workers})
			defer stop()

			cl, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if _, err := cl.OpenDataset("gkrmux", u); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Ingest(ups); err != nil {
				t.Fatal(err)
			}

			seed := func(k int) uint64 { return uint64(21_000 + k) }

			// Serial baseline, one conversation at a time.
			serial := make([][]core.Msg, len(kinds))
			for k, c := range kinds {
				v, obs := muxVerifier(t, u, c.kind, c.params, seed(k))
				observeAll(t, obs, ups)
				rec := &recordingVerifier{inner: v}
				if _, err := cl.Query(c.kind, c.params, rec); err != nil {
					t.Fatalf("serial %s: %v", c.params.Circuit, err)
				}
				serial[k] = rec.msgs
			}

			// Overlapped: every family in flight at once.
			recs := make([]*recordingVerifier, len(kinds))
			handles := make([]*QueryHandle, len(kinds))
			for k, c := range kinds {
				v, obs := muxVerifier(t, u, c.kind, c.params, seed(k))
				observeAll(t, obs, ups)
				recs[k] = &recordingVerifier{inner: v}
				h, err := cl.QueryAsync(c.kind, c.params, recs[k])
				if err != nil {
					t.Fatalf("QueryAsync %s: %v", c.params.Circuit, err)
				}
				handles[k] = h
			}
			for k, h := range handles {
				if _, err := h.Wait(); err != nil {
					t.Fatalf("overlapped %s rejected: %v", kinds[k].params.Circuit, err)
				}
			}
			for k := range kinds {
				if err := sameTranscript(serial[k], recs[k].msgs); err != nil {
					t.Errorf("%s workers=%d: overlapped transcript differs from serial: %v", kinds[k].params.Circuit, workers, err)
				}
			}
		})
	}
}

// TestCircuitDishonestServerRejected: a cloud that doctors its
// maintained counts is caught by the client-side GKR verifier for every
// circuit family — the final streamed-input check cannot be fooled.
func TestCircuitDishonestServerRejected(t *testing.T) {
	const u = 256
	addr, stop := startServer(t, func(c []int64) []int64 { c[3]++; return c })
	defer stop()
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(1702))

	for _, c := range circuitMuxKinds() {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		v, obs := muxVerifier(t, u, c.kind, c.params, 1703)
		observeAll(t, obs, ups)
		if err := cl.Hello(u); err != nil {
			t.Fatal(err)
		}
		if err := cl.SendUpdates(ups); err != nil {
			t.Fatal(err)
		}
		if err := cl.EndStream(); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Query(c.kind, c.params, v); !errors.Is(err, core.ErrRejected) {
			t.Errorf("%s: dishonest cloud not rejected: %v", c.params.Circuit, err)
		}
		cl.Close()
	}
}

// TestMuxCircuitUnknownFamily pins the failure mode for a bad circuit
// name: a per-channel error naming the family, a surviving connection,
// and a working follow-up query.
func TestMuxCircuitUnknownFamily(t *testing.T) {
	const u = 128
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.OpenDataset("badcircuit", u); err != nil {
		t.Fatal(err)
	}
	ups := stream.UniformDeltas(u, 10, field.NewSplitMix64(1701))
	if _, err := cl.Ingest(ups); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"NOPE", ""} {
		v, obs := muxVerifier(t, u, QueryCircuit, QueryParams{Circuit: circuit.FamilyF2}, 9)
		observeAll(t, obs, ups)
		_, err = cl.Query(QueryCircuit, QueryParams{Circuit: name}, v)
		if err == nil {
			t.Fatalf("circuit %q: query succeeded, want error", name)
		}
		if !strings.Contains(err.Error(), "unknown circuit family") {
			t.Fatalf("circuit %q: err = %v, want unknown-family text", name, err)
		}
	}

	// The connection survives the failed channels.
	v, obs := muxVerifier(t, u, QueryCircuit, QueryParams{Circuit: circuit.FamilyF2}, 10)
	observeAll(t, obs, ups)
	if _, err := cl.Query(QueryCircuit, QueryParams{Circuit: circuit.FamilyF2}, v); err != nil {
		t.Fatalf("follow-up query after failed channels: %v", err)
	}
}

// TestMuxCircuitOversizeName pins the codec bound: a name longer than
// maxCircuitName is refused client-side before touching the wire.
func TestMuxCircuitOversizeName(t *testing.T) {
	const u = 64
	addr, stop := startServerOpts(t, &Server{F: f61})
	defer stop()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.OpenDataset("longname", u); err != nil {
		t.Fatal(err)
	}
	v, obs := muxVerifier(t, u, QueryCircuit, QueryParams{Circuit: circuit.FamilyF2}, 11)
	observeAll(t, obs, nil)
	long := strings.Repeat("X", maxCircuitName+1)
	if _, err := cl.Query(QueryCircuit, QueryParams{Circuit: long}, v); err == nil {
		t.Fatal("oversize circuit name accepted")
	}
}

package wire

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/stream"
)

// TestServeInitFailureUnregistersListener: when engineInit fails (here:
// DataDir is a regular file, so the directory cannot be created), Serve
// must clear the listener registration on its way out — a later Close
// must not close a listener the server never actually served,
// mirroring Serve's documented net/http contract.
func TestServeInitFailureUnregistersListener(t *testing.T) {
	badDir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(badDir, []byte("file in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &Server{F: f61, DataDir: badDir}
	if err := srv.Serve(ln); err == nil || errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve with an unusable data dir = %v, want an init error", err)
	}
	// The failed Serve must not have kept the caller's listener: Close
	// must leave it accepting.
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after failed Serve: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			conn.Close()
		}
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("listener unusable after failed Serve + Close: %v", err)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatalf("Accept after failed Serve + Close: %v", err)
	}
}

// TestCloseDrainsHandlersBeforeFinalPersist: an orderly shutdown racing
// a client mid-upload must not lose acknowledged batches — Close drains
// the handler goroutines (so no IngestColumns is in flight) before the
// engine's final persist, and a recovery over the same data dir holds
// at least every update the client saw acknowledged.
func TestCloseDrainsHandlersBeforeFinalPersist(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{F: f61, DataDir: dir}
	go func() { _ = srv.Serve(ln) }()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.OpenDataset("load", recU); err != nil {
		t.Fatal(err)
	}
	// Keep ingesting small acknowledged batches until the shutdown cuts
	// the connection; remember the last acknowledged count.
	acked := make(chan uint64, 1)
	go func() {
		rng := field.NewSplitMix64(600)
		var last uint64
		for {
			n, err := cl.Ingest(stream.UnitIncrements(recU, 64, rng))
			if err != nil {
				break
			}
			last = n
		}
		acked <- last
	}()
	// Let the uploader land some batches, then shut down mid-stream.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ds, ok := srv.Engine.Get("load"); ok && ds.Updates() >= 128 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("uploader made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close under load: %v", err)
	}
	last := <-acked
	if last == 0 {
		t.Fatal("no batch was acknowledged before shutdown")
	}

	e2 := engine.New(f61, 0)
	if err := e2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	ds, ok := e2.Get("load")
	if !ok {
		t.Fatal("dataset missing after recovery")
	}
	if got := ds.Updates(); got < last {
		t.Fatalf("recovered %d updates but %d were acknowledged — the final persist ran before the handler drained", got, last)
	}
}

// TestV1HelloBudget: a v1 private dataset is charged against the
// engine's Σ budget at hello — ResidentBytes reflects it, an over-budget
// hello is refused with the typed wire.ErrBudget (not a protocol
// error), and the reservation is released when the connection ends.
func TestV1HelloBudget(t *testing.T) {
	eng := engine.New(f61, 0)
	addr, stop := startServerOpts(t, &Server{F: f61, Engine: eng, MemBudget: recOneDataset})
	defer stop()

	// Oversized: 1<<10 entries cost 2× the budget.
	over, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	if err := over.Hello(1 << 10); !errors.Is(err, ErrBudget) {
		t.Fatalf("over-budget Hello = %v, want wire.ErrBudget", err)
	}

	// Exactly at the budget: admitted and charged.
	fits, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := fits.Hello(recU); err != nil {
		t.Fatalf("in-budget Hello refused: %v", err)
	}
	if got := eng.ResidentBytes(); got != recOneDataset {
		t.Fatalf("ResidentBytes after v1 hello = %d, want %d", got, recOneDataset)
	}
	// The v1 reservation now holds the whole budget: a named dataset
	// cannot be admitted either (no data dir, nothing evictable) — one
	// governor over both flows.
	v2c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v2c.Close()
	if _, err := v2c.OpenDataset("squeezed", recU); !errors.Is(err, ErrBudget) {
		t.Fatalf("open against a v1-exhausted budget = %v, want wire.ErrBudget", err)
	}

	// Closing the v1 connection releases the reservation.
	fits.Close()
	deadline := time.Now().Add(5 * time.Second)
	for eng.ResidentBytes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("v1 reservation never released: %d bytes still charged", eng.ResidentBytes())
		}
		time.Sleep(time.Millisecond)
	}
}

// Package harness runs the paper's experiments (§5) and the ablations
// called out in DESIGN.md, producing the data series behind every figure:
//
//	Fig 2(a): verifier stream-processing time vs n (F2, one- vs multi-round)
//	Fig 2(b): prover proof time vs u              (F2, one- vs multi-round)
//	Fig 2(c): verifier space and communication    (F2, one- vs multi-round)
//	Fig 3(a): SUB-VECTOR prover & verifier time vs u
//	Fig 3(b): SUB-VECTOR space and communication
//	in-text : tamper-rejection suite, proof-check time, IPv6 extrapolation
//	ablation: ℓ/d branching-factor trade-off (§3.1 footnote 1)
//
// Timing methodology: the verifier's stream pass, the prover's proof
// generation, and the verifier's checking are timed separately by
// decorating the protocol sessions; workload generation is excluded.
// Hardware differs from the paper's 2011 Opteron, so EXPERIMENTS.md
// compares shapes and ratios, not absolute seconds.
package harness

import (
	"fmt"
	"time"

	"repro/internal/ccm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/stream"
)

// timedProver accumulates the wall time spent inside the prover session.
type timedProver struct {
	inner   core.ProverSession
	elapsed time.Duration
}

func (tp *timedProver) Open() (core.Msg, error) {
	t0 := time.Now()
	m, err := tp.inner.Open()
	tp.elapsed += time.Since(t0)
	return m, err
}

func (tp *timedProver) Step(ch core.Msg) (core.Msg, error) {
	t0 := time.Now()
	m, err := tp.inner.Step(ch)
	tp.elapsed += time.Since(t0)
	return m, err
}

// timedVerifier accumulates the wall time spent inside the verifier
// session (the proof-checking cost the paper reports as "essentially
// negligible").
type timedVerifier struct {
	inner   core.VerifierSession
	elapsed time.Duration
}

func (tv *timedVerifier) Begin(m core.Msg) (core.Msg, bool, error) {
	t0 := time.Now()
	ch, done, err := tv.inner.Begin(m)
	tv.elapsed += time.Since(t0)
	return ch, done, err
}

func (tv *timedVerifier) Step(m core.Msg) (core.Msg, bool, error) {
	t0 := time.Now()
	ch, done, err := tv.inner.Step(m)
	tv.elapsed += time.Since(t0)
	return ch, done, err
}

// F2Row is one data point of Figure 2.
type F2Row struct {
	Protocol      string // "multi-round" or "one-round"
	U             uint64 // universe size (= n in the paper's setup)
	N             uint64 // stream length
	StreamTime    time.Duration
	UpdatesPerSec float64
	ProveTime     time.Duration
	CheckTime     time.Duration
	SpaceBytes    int
	CommBytes     int
	Accepted      bool
}

// F2MultiRound runs the §3 protocol on the paper's workload (u = n,
// per-item counts uniform in [0, maxDelta]). workers is the prover's
// parallel fan-out (0 serial, n < 0 all cores); the transcript and the
// row's space/communication columns are identical for every value.
func F2MultiRound(f field.Field, u uint64, maxDelta int64, seed uint64, workers int) (F2Row, error) {
	proto, err := core.NewSelfJoinSize(f, u)
	if err != nil {
		return F2Row{}, err
	}
	proto.Workers = workers
	gen := field.NewSplitMix64(seed)
	ups := stream.UniformDeltas(proto.Params.U, maxDelta, gen)
	v := proto.NewVerifier(field.NewSplitMix64(seed + 1))
	p := proto.NewProver()

	t0 := time.Now()
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			return F2Row{}, err
		}
	}
	streamTime := time.Since(t0)
	for _, up := range ups {
		if err := p.Observe(up); err != nil {
			return F2Row{}, err
		}
	}

	tp := &timedProver{inner: p}
	tv := &timedVerifier{inner: v}
	stats, err := core.Run(tp, tv)
	row := F2Row{
		Protocol:      "multi-round",
		U:             proto.Params.U,
		N:             uint64(len(ups)),
		StreamTime:    streamTime,
		UpdatesPerSec: rate(len(ups), streamTime),
		ProveTime:     tp.elapsed,
		CheckTime:     tv.elapsed,
		SpaceBytes:    8 * v.SpaceWords(),
		CommBytes:     stats.CommBytes(),
		Accepted:      err == nil,
	}
	return row, err
}

// F2OneRound runs the CCM baseline on the same workload. workers is the
// prover's parallel fan-out over the proof's evaluation points.
func F2OneRound(f field.Field, u uint64, maxDelta int64, seed uint64, workers int) (F2Row, error) {
	proto, err := ccm.New(f, u)
	if err != nil {
		return F2Row{}, err
	}
	proto.Workers = workers
	gen := field.NewSplitMix64(seed)
	ups := stream.UniformDeltas(proto.U, maxDelta, gen)
	v := proto.NewVerifier(field.NewSplitMix64(seed + 1))
	p := proto.NewProver()

	t0 := time.Now()
	for _, up := range ups {
		if err := v.Observe(up.Index, up.Delta); err != nil {
			return F2Row{}, err
		}
	}
	streamTime := time.Since(t0)
	for _, up := range ups {
		if err := p.Observe(up.Index, up.Delta); err != nil {
			return F2Row{}, err
		}
	}

	t1 := time.Now()
	proof := p.Prove()
	proveTime := time.Since(t1)
	t2 := time.Now()
	_, err = v.Verify(proof)
	checkTime := time.Since(t2)

	row := F2Row{
		Protocol:      "one-round",
		U:             proto.U,
		N:             uint64(len(ups)),
		StreamTime:    streamTime,
		UpdatesPerSec: rate(len(ups), streamTime),
		ProveTime:     proveTime,
		CheckTime:     checkTime,
		SpaceBytes:    8 * v.SpaceWords(),
		CommBytes:     8 * len(proof),
		Accepted:      err == nil,
	}
	return row, err
}

// SubVectorRow is one data point of Figure 3.
type SubVectorRow struct {
	U          uint64
	N          uint64
	Span       uint64 // qR - qL + 1 (the paper uses 1000)
	K          int    // nonzero entries reported
	StreamTime time.Duration
	ProveTime  time.Duration
	CheckTime  time.Duration
	SpaceBytes int
	CommBytes  int
	Accepted   bool
}

// SubVectorRun runs the §4 protocol with a centered query of the given
// span on the paper's workload. workers is the prover's parallel fan-out.
func SubVectorRun(f field.Field, u uint64, span uint64, maxDelta int64, seed uint64, workers int) (SubVectorRow, error) {
	proto, err := core.NewSubVector(f, u)
	if err != nil {
		return SubVectorRow{}, err
	}
	proto.Workers = workers
	if span > proto.Params.U {
		span = proto.Params.U
	}
	gen := field.NewSplitMix64(seed)
	ups := stream.UniformDeltas(proto.Params.U, maxDelta, gen)
	v := proto.NewVerifier(field.NewSplitMix64(seed + 1))
	p := proto.NewProver()

	t0 := time.Now()
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			return SubVectorRow{}, err
		}
	}
	streamTime := time.Since(t0)
	for _, up := range ups {
		if err := p.Observe(up); err != nil {
			return SubVectorRow{}, err
		}
	}
	qL := (proto.Params.U - span) / 2
	qR := qL + span - 1
	if err := v.SetQuery(qL, qR); err != nil {
		return SubVectorRow{}, err
	}
	if err := p.SetQuery(qL, qR); err != nil {
		return SubVectorRow{}, err
	}

	tp := &timedProver{inner: p}
	tv := &timedVerifier{inner: v}
	stats, err := core.Run(tp, tv)
	row := SubVectorRow{
		U:          proto.Params.U,
		N:          uint64(len(ups)),
		Span:       span,
		StreamTime: streamTime,
		ProveTime:  tp.elapsed,
		CheckTime:  tv.elapsed,
		SpaceBytes: 8 * v.SpaceWords(),
		CommBytes:  stats.CommBytes(),
		Accepted:   err == nil,
	}
	if err == nil {
		entries, rerr := v.Result()
		if rerr != nil {
			return row, rerr
		}
		row.K = len(entries)
	}
	return row, err
}

func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// ---------------------------------------------------------------------
// Amortization experiment (ingest once, prove many)
//
// The dataset engine's pitch is that the prover's stream pass is paid
// once, not per query. This experiment measures it: the per-query setup
// cost of the old stream-replay path versus constructing provers from a
// maintained dataset snapshot, with the conversation cost (identical
// transcripts either way) reported separately.

// AmortizedRow is one data point of the ingest-once/prove-many
// experiment.
type AmortizedRow struct {
	U       uint64
	N       uint64
	Queries int
	// IngestOnce is the one-time cost of folding the stream into the
	// dataset's maintained state (batched).
	IngestOnce time.Duration
	// ReplaySetup is the per-query prover construction cost of the old
	// path: a fresh session fed the whole stream through Observe.
	ReplaySetup time.Duration
	// SnapshotSetup is the per-query construction cost from a dataset
	// snapshot, averaged over all queries (no stream is replayed).
	SnapshotSetup time.Duration
	// ProveTime is the mean per-query conversation cost of the snapshot
	// provers (the same work the replay provers do once constructed).
	ProveTime time.Duration
	Accepted  bool
}

// AmortizedF2 ingests a unit-increment stream of length n over [0, u)
// into a dataset once, then runs the F2 query `queries` times from
// snapshots, verifying each conversation. It also measures the replay
// baseline a per-query rebuild would pay. workers is the prover fan-out.
func AmortizedF2(f field.Field, u uint64, n, queries int, seed uint64, workers int) (AmortizedRow, error) {
	row := AmortizedRow{U: u, N: uint64(n), Queries: queries}
	if queries < 1 {
		return row, fmt.Errorf("harness: need at least one query")
	}
	ups := stream.UnitIncrements(u, n, field.NewSplitMix64(seed))

	proto, err := core.NewSelfJoinSize(f, u)
	if err != nil {
		return row, err
	}
	proto.Workers = workers

	// Replay baseline: what every query used to cost before proving began.
	t0 := time.Now()
	replay := proto.NewProver()
	for _, up := range ups {
		if err := replay.Observe(up); err != nil {
			return row, err
		}
	}
	row.ReplaySetup = time.Since(t0)

	// Ingest once into the dataset.
	ds, err := engine.NewDataset(f, u, workers)
	if err != nil {
		return row, err
	}
	t0 = time.Now()
	if err := ds.Ingest(ups); err != nil {
		return row, err
	}
	row.IngestOnce = time.Since(t0)

	// N queries, each a fresh snapshot prover (snapshots are O(1) between
	// ingests; construction borrows the maintained table).
	var setup, prove time.Duration
	for q := 0; q < queries; q++ {
		v := proto.NewVerifier(field.NewSplitMix64(seed + 1 + uint64(q)))
		if err := v.ObserveBatch(ups, workers); err != nil {
			return row, err
		}
		t0 = time.Now()
		p, err := ds.Snapshot().NewProver(engine.QuerySelfJoinSize, engine.QueryParams{})
		if err != nil {
			return row, err
		}
		setup += time.Since(t0)
		tp := &timedProver{inner: p}
		if _, err := core.Run(tp, v); err != nil {
			return row, err
		}
		prove += tp.elapsed
	}
	row.SnapshotSetup = setup / time.Duration(queries)
	row.ProveTime = prove / time.Duration(queries)
	row.Accepted = true
	return row, nil
}

// ---------------------------------------------------------------------
// Durability: what eviction costs a query. A dataset under a one-dataset
// memory budget is forced to disk and back; the cold query pays the
// checkpoint load + field-image rebuild, the warm query only the O(1)
// snapshot + prover construction.

// ColdWarmRow is one data point of the cold-vs-warm query experiment.
type ColdWarmRow struct {
	U          uint64
	N          uint64
	IngestOnce time.Duration // one-time batch ingestion
	ColdSetup  time.Duration // rehydrate from checkpoint + prover construction
	WarmSetup  time.Duration // resident snapshot + prover construction
	ProveCold  time.Duration // conversation time against the rehydrated tables
	ProveWarm  time.Duration // conversation time against resident tables
	Accepted   bool          // both conversations verified
}

// ColdWarmF2 ingests a unit-increment stream of length n over [0, u)
// into a budgeted, durable engine rooted at dir, evicts the dataset by
// admitting a decoy, then times an F2 query cold (transparent
// rehydration) and warm (already resident). Transcripts are identical
// either way; only setup latency differs.
func ColdWarmF2(f field.Field, u uint64, n int, seed uint64, workers int, dir string) (ColdWarmRow, error) {
	row := ColdWarmRow{U: u, N: uint64(n)}
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return row, err
	}
	eng := engine.New(f, workers)
	if err := eng.SetDataDir(dir); err != nil {
		return row, err
	}
	eng.SetBudget(int64(params.U) * 16) // exactly one resident dataset

	ups := stream.UnitIncrements(u, n, field.NewSplitMix64(seed))
	hot, err := eng.Open("hot", u)
	if err != nil {
		return row, err
	}
	t0 := time.Now()
	if err := hot.Ingest(ups); err != nil {
		return row, err
	}
	row.IngestOnce = time.Since(t0)
	if _, err := eng.Open("decoy", u); err != nil { // evicts "hot"
		return row, err
	}
	if hot.Resident() {
		return row, fmt.Errorf("harness: decoy admission did not evict the dataset")
	}

	proto, err := core.NewSelfJoinSize(f, u)
	if err != nil {
		return row, err
	}
	proto.Workers = workers
	query := func(vSeed uint64) (setup, prove time.Duration, err error) {
		v := proto.NewVerifier(field.NewSplitMix64(vSeed))
		if err := v.ObserveBatch(ups, workers); err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		snap, err := hot.SnapshotErr()
		if err != nil {
			return 0, 0, err
		}
		p, err := snap.NewProver(engine.QuerySelfJoinSize, engine.QueryParams{})
		if err != nil {
			return 0, 0, err
		}
		setup = time.Since(t0)
		tp := &timedProver{inner: p}
		if _, err := core.Run(tp, v); err != nil {
			return 0, 0, err
		}
		return setup, tp.elapsed, nil
	}
	if row.ColdSetup, row.ProveCold, err = query(seed + 1); err != nil {
		return row, err
	}
	// The dataset is resident now; the second query is warm.
	if row.WarmSetup, row.ProveWarm, err = query(seed + 2); err != nil {
		return row, err
	}
	row.Accepted = true
	return row, nil
}

// ---------------------------------------------------------------------
// Tamper suite (§5 in-text: "In all cases, the protocols caught the
// error, and rejected the proof.")

// TamperOutcome records one adversarial run.
type TamperOutcome struct {
	Query    string
	Mode     string
	Rejected bool
}

// TamperSuite runs every core query against a battery of dishonest
// provers and reports whether each was rejected. A complete reproduction
// has Rejected == true on every row.
func TamperSuite(f field.Field, u uint64, seed uint64) ([]TamperOutcome, error) {
	gen := field.NewSplitMix64(seed)
	ups := stream.UniformDeltas(u, 100, gen)
	zipf, err := stream.Zipf(u, int(4*u), 1.2, gen)
	if err != nil {
		return nil, err
	}

	flip := func(round int) core.Tamperer {
		return func(r int, m core.Msg) core.Msg {
			if r == round && len(m.Elems) > 0 {
				m.Elems[0]++
			}
			return m
		}
	}
	var out []TamperOutcome
	record := func(query, mode string, err error) {
		out = append(out, TamperOutcome{Query: query, Mode: mode, Rejected: err != nil})
	}

	// F2: flipped opening, flipped mid-round, dropped stream element.
	{
		mk := func(drop bool) (core.ProverSession, core.VerifierSession, error) {
			proto, err := core.NewSelfJoinSize(f, u)
			if err != nil {
				return nil, nil, err
			}
			v := proto.NewVerifier(field.NewSplitMix64(seed + 2))
			p := proto.NewProver()
			for _, up := range ups {
				if err := v.Observe(up); err != nil {
					return nil, nil, err
				}
			}
			pups := ups
			if drop {
				pups = ups[:len(ups)-1]
			}
			for _, up := range pups {
				if err := p.Observe(up); err != nil {
					return nil, nil, err
				}
			}
			return p, v, nil
		}
		for _, mode := range []struct {
			name  string
			round int
			drop  bool
		}{{"flip opening", 0, false}, {"flip round 3", 3, false}, {"drop update", -1, true}} {
			p, v, err := mk(mode.drop)
			if err != nil {
				return nil, err
			}
			var ps core.ProverSession = p
			if mode.round >= 0 {
				ps = &core.TamperedProver{P: p, T: flip(mode.round)}
			}
			_, err = core.Run(ps, v)
			record("SELF-JOIN SIZE", mode.name, err)
		}
	}

	// SUB-VECTOR / RANGE QUERY: flipped answer, flipped sibling hash,
	// dropped entry.
	{
		mk := func() (*core.SubVectorProver, *core.SubVectorVerifier, error) {
			proto, err := core.NewSubVector(f, u)
			if err != nil {
				return nil, nil, err
			}
			v := proto.NewVerifier(field.NewSplitMix64(seed + 3))
			p := proto.NewProver()
			for _, up := range ups {
				if err := v.Observe(up); err != nil {
					return nil, nil, err
				}
				if err := p.Observe(up); err != nil {
					return nil, nil, err
				}
			}
			if err := v.SetQuery(10, 60); err != nil {
				return nil, nil, err
			}
			if err := p.SetQuery(10, 60); err != nil {
				return nil, nil, err
			}
			return p, v, nil
		}
		// Round 1 carries the level-1 sibling of ancestor 10>>1 = 5 (odd),
		// so a flip there always fires for the query [10, 60].
		modes := map[string]core.Tamperer{
			"flip answer value": flip(0),
			"flip sibling hash": flip(1),
			"drop first entry": func(r int, m core.Msg) core.Msg {
				if r == 0 && len(m.Ints) > 0 {
					m.Ints = m.Ints[1:]
					m.Elems = m.Elems[1:]
				}
				return m
			},
		}
		for name, tam := range modes {
			p, v, err := mk()
			if err != nil {
				return nil, err
			}
			_, err = core.Run(&core.TamperedProver{P: p, T: tam}, v)
			record("SUB-VECTOR", name, err)
		}
	}

	// HEAVY HITTERS: inflated count.
	{
		proto, err := core.NewHeavyHitters(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(field.NewSplitMix64(seed + 4))
		p := proto.NewProver()
		for _, up := range zipf {
			if err := v.Observe(up); err != nil {
				return nil, err
			}
			if err := p.Observe(up); err != nil {
				return nil, err
			}
		}
		if err := v.SetQuery(0.05); err != nil {
			return nil, err
		}
		if err := p.SetQuery(0.05); err != nil {
			return nil, err
		}
		tam := func(r int, m core.Msg) core.Msg {
			if r == 0 && len(m.Ints) >= 2 {
				m.Ints[1] += 3
			}
			return m
		}
		_, err = core.Run(&core.TamperedProver{P: p, T: tam}, v)
		record("HEAVY HITTERS", "inflate count", err)
	}

	// RANGE-SUM: flipped claim.
	{
		proto, err := core.NewRangeSum(f, u)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(field.NewSplitMix64(seed + 5))
		p := proto.NewProver()
		for _, up := range ups {
			if err := v.Observe(up); err != nil {
				return nil, err
			}
			if err := p.Observe(up); err != nil {
				return nil, err
			}
		}
		if err := v.SetQuery(0, u/2); err != nil {
			return nil, err
		}
		if err := p.SetQuery(0, u/2); err != nil {
			return nil, err
		}
		_, err = core.Run(&core.TamperedProver{P: p, T: flip(0)}, v)
		record("RANGE-SUM", "flip claim", err)
	}

	// F0: flipped sum-check message (round after the HH phase).
	{
		proto, err := core.NewF0(f, u, 0)
		if err != nil {
			return nil, err
		}
		v := proto.NewVerifier(field.NewSplitMix64(seed + 6))
		p := proto.NewProver()
		for _, up := range zipf {
			if err := v.Observe(up); err != nil {
				return nil, err
			}
			if err := p.Observe(up); err != nil {
				return nil, err
			}
		}
		d := 0
		for cap := uint64(1); cap < u; cap <<= 1 {
			d++
		}
		_, err = core.Run(&core.TamperedProver{P: p, T: flip(d + 1)}, v)
		record("F0", "flip sum-check", err)
	}

	return out, nil
}

// ---------------------------------------------------------------------
// Frequency-based functions (§6.2)

// F0Row is one data point of the frequency-based experiment.
type F0Row struct {
	U         uint64
	F0        uint64
	CommWords int
	ProveTime time.Duration
	CheckTime time.Duration
	Accepted  bool
}

// F0Run verifies the distinct count of a Zipf stream at the default
// φ = u^{-1/2} and reports the (log u, √u·log u) costs of Theorem 6.
// workers is the prover's parallel fan-out.
func F0Run(f field.Field, u uint64, seed uint64, workers int) (F0Row, error) {
	proto, err := core.NewF0(f, u, 0)
	if err != nil {
		return F0Row{}, err
	}
	proto.Workers = workers
	gen := field.NewSplitMix64(seed)
	ups, err := stream.Zipf(proto.TreeParams.U, int(4*proto.TreeParams.U), 1.2, gen)
	if err != nil {
		return F0Row{}, err
	}
	v := proto.NewVerifier(field.NewSplitMix64(seed + 1))
	p := proto.NewProver()
	for _, up := range ups {
		if err := v.Observe(up); err != nil {
			return F0Row{}, err
		}
		if err := p.Observe(up); err != nil {
			return F0Row{}, err
		}
	}
	tp := &timedProver{inner: p}
	tv := &timedVerifier{inner: v}
	stats, err := core.Run(tp, tv)
	row := F0Row{
		U:         proto.TreeParams.U,
		CommWords: stats.CommWords(),
		ProveTime: tp.elapsed,
		CheckTime: tv.elapsed,
		Accepted:  err == nil,
	}
	if err != nil {
		return row, err
	}
	res, err := v.Result()
	if err != nil {
		return row, err
	}
	row.F0 = uint64(res)
	return row, nil
}

// ---------------------------------------------------------------------
// Branching-factor ablation (§3.1 footnote 1)

// BranchingRow is one point of the ℓ/d trade-off sweep.
type BranchingRow struct {
	Ell, D     int
	CommWords  int
	Rounds     int
	SpaceBytes int
	StreamTime time.Duration
	ProveTime  time.Duration
	Accepted   bool
}

// BranchingSweep runs F2 over u with each branching factor; u must be a
// power of every ℓ given.
func BranchingSweep(f field.Field, u uint64, ells []int, seed uint64) ([]BranchingRow, error) {
	var out []BranchingRow
	for _, ell := range ells {
		params, err := exactParams(u, ell)
		if err != nil {
			return nil, err
		}
		proto, err := core.NewFkWithParams(f, params, 2)
		if err != nil {
			return nil, err
		}
		gen := field.NewSplitMix64(seed)
		ups := stream.UniformDeltas(params.U, 100, gen)
		v := proto.NewVerifier(field.NewSplitMix64(seed + 1))
		p := proto.NewProver()
		t0 := time.Now()
		for _, up := range ups {
			if err := v.Observe(up); err != nil {
				return nil, err
			}
		}
		streamTime := time.Since(t0)
		for _, up := range ups {
			if err := p.Observe(up); err != nil {
				return nil, err
			}
		}
		tp := &timedProver{inner: p}
		stats, err := core.Run(tp, v)
		out = append(out, BranchingRow{
			Ell: ell, D: params.D,
			CommWords:  stats.CommWords(),
			Rounds:     stats.Rounds,
			SpaceBytes: 8 * v.SpaceWords(),
			StreamTime: streamTime,
			ProveTime:  tp.elapsed,
			Accepted:   err == nil,
		})
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// IPv6 extrapolation (§5 closing paragraph)

// IPv6Estimate reproduces the paper's closing calculation: 1TB of IPv6
// addresses (~6×10^10 values over a 128-bit domain) from a measured
// multi-round prover rate.
type IPv6Estimate struct {
	MeasuredU        uint64
	MeasuredRate     float64 // updates/second at log u = MeasuredLogU
	MeasuredLogU     int
	TargetN          float64
	TargetLogU       int
	EstimatedSeconds float64
}

// IPv6Extrapolate scales a measured prover rate to the paper's 1TB IPv6
// scenario: cost grows linearly in n and in log u.
func IPv6Extrapolate(measuredU uint64, measuredRate float64) IPv6Estimate {
	logU := 0
	for cap := uint64(1); cap < measuredU; cap <<= 1 {
		logU++
	}
	const targetN = 6e10
	const targetLogU = 128
	scale := float64(targetLogU) / float64(logU)
	return IPv6Estimate{
		MeasuredU:        measuredU,
		MeasuredRate:     measuredRate,
		MeasuredLogU:     logU,
		TargetN:          targetN,
		TargetLogU:       targetLogU,
		EstimatedSeconds: targetN * scale / measuredRate,
	}
}

// exactParams builds (ℓ, d) parameters with ℓ^d = u exactly, for the
// branching ablation where all decompositions must cover the same
// universe.
func exactParams(u uint64, ell int) (lde.Params, error) {
	size := uint64(1)
	d := 0
	for size < u {
		size *= uint64(ell)
		d++
	}
	if size != u {
		return lde.Params{}, fmt.Errorf("harness: %d is not a power of %d", u, ell)
	}
	return lde.NewParams(ell, d)
}

package harness

import (
	"testing"

	"repro/internal/field"
)

var f61 = field.Mersenne()

func TestF2MultiRoundRow(t *testing.T) {
	row, err := F2MultiRound(f61, 1<<10, 1000, 42, 0)
	if err != nil {
		t.Fatalf("row errored: %v", err)
	}
	if !row.Accepted {
		t.Fatal("honest run not accepted")
	}
	if row.U != 1<<10 || row.N != 1<<10 {
		t.Errorf("u=%d n=%d, want 1024", row.U, row.N)
	}
	if row.UpdatesPerSec <= 0 {
		t.Error("no throughput measured")
	}
	// Theorem 4: comm = (3d+1) + (d-1) words = 8·(4d) bytes.
	if row.CommBytes != 8*(4*10) {
		t.Errorf("comm = %d bytes, want %d", row.CommBytes, 8*40)
	}
	if row.SpaceBytes > 8*64 {
		t.Errorf("verifier space %d bytes not O(log u)", row.SpaceBytes)
	}
}

func TestF2OneRoundRow(t *testing.T) {
	row, err := F2OneRound(f61, 1<<10, 1000, 43, 0)
	if err != nil {
		t.Fatalf("row errored: %v", err)
	}
	if !row.Accepted {
		t.Fatal("honest run not accepted")
	}
	// Θ(√u): ℓ=32 → proof 2ℓ-1 = 63 words, space 2ℓ+1 = 65 words.
	if row.CommBytes != 8*63 {
		t.Errorf("comm = %d bytes, want %d", row.CommBytes, 8*63)
	}
	if row.SpaceBytes != 8*65 {
		t.Errorf("space = %d bytes, want %d", row.SpaceBytes, 8*65)
	}
}

// TestFig2Shapes checks the qualitative claims of Figure 2 at small scale:
// the one-round prover grows strictly faster than linear while the
// multi-round prover stays near-linear, and the one-round verifier keeps
// √u space while the multi-round verifier keeps O(log u).
func TestFig2Shapes(t *testing.T) {
	mr1, err := F2MultiRound(f61, 1<<10, 1000, 44, 0)
	if err != nil {
		t.Fatal(err)
	}
	mr2, err := F2MultiRound(f61, 1<<14, 1000, 44, 0)
	if err != nil {
		t.Fatal(err)
	}
	or1, err := F2OneRound(f61, 1<<10, 1000, 44, 0)
	if err != nil {
		t.Fatal(err)
	}
	or2, err := F2OneRound(f61, 1<<14, 1000, 44, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Space: multi-round grows additively (O(log u)), one-round by ~4×
	// (√16 = 4).
	if or2.SpaceBytes < 3*or1.SpaceBytes {
		t.Errorf("one-round space did not grow like √u: %d → %d", or1.SpaceBytes, or2.SpaceBytes)
	}
	if mr2.SpaceBytes > 2*mr1.SpaceBytes {
		t.Errorf("multi-round space grew too fast: %d → %d", mr1.SpaceBytes, mr2.SpaceBytes)
	}
	// Communication likewise.
	if or2.CommBytes < 3*or1.CommBytes {
		t.Errorf("one-round comm did not grow like √u: %d → %d", or1.CommBytes, or2.CommBytes)
	}
	if mr2.CommBytes > 2*mr1.CommBytes {
		t.Errorf("multi-round comm grew too fast: %d → %d", mr1.CommBytes, mr2.CommBytes)
	}
	_ = mr1.ProveTime // timing shape asserted in EXPERIMENTS.md, not in CI
}

func TestSubVectorRow(t *testing.T) {
	row, err := SubVectorRun(f61, 1<<12, 1000, 1000, 45, 0)
	if err != nil {
		t.Fatalf("row errored: %v", err)
	}
	if !row.Accepted {
		t.Fatal("honest run not accepted")
	}
	if row.Span != 1000 {
		t.Errorf("span = %d", row.Span)
	}
	if row.K == 0 {
		t.Error("no entries reported from a dense workload")
	}
	// Communication is dominated by the k reported values (the paper's
	// "the rest is less than 1KB").
	overhead := row.CommBytes - 16*row.K
	if overhead > 1024 {
		t.Errorf("non-answer communication %d bytes exceeds 1KB", overhead)
	}
}

func TestSubVectorSpanClamped(t *testing.T) {
	row, err := SubVectorRun(f61, 64, 1000, 10, 46, 0)
	if err != nil {
		t.Fatal(err)
	}
	if row.Span != 64 {
		t.Errorf("span = %d, want clamped 64", row.Span)
	}
}

func TestTamperSuiteAllRejected(t *testing.T) {
	outcomes, err := TamperSuite(f61, 256, 47)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) < 8 {
		t.Fatalf("only %d outcomes", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Rejected {
			t.Errorf("%s / %s: dishonest prover was accepted", o.Query, o.Mode)
		}
	}
}

func TestBranchingSweep(t *testing.T) {
	rows, err := BranchingSweep(f61, 4096, []int{2, 4, 8, 16}, 48)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if !r.Accepted {
			t.Fatalf("ℓ=%d not accepted", r.Ell)
		}
		if i > 0 {
			// Fewer rounds as ℓ grows; total communication 2dℓ words is
			// non-decreasing (ℓ=2 and ℓ=4 tie exactly) — footnote 1.
			if r.Rounds >= rows[i-1].Rounds {
				t.Errorf("ℓ=%d rounds %d not below ℓ=%d rounds %d", r.Ell, r.Rounds, rows[i-1].Ell, rows[i-1].Rounds)
			}
			if r.CommWords < rows[i-1].CommWords {
				t.Errorf("ℓ=%d comm %d below ℓ=%d comm %d", r.Ell, r.CommWords, rows[i-1].Ell, rows[i-1].CommWords)
			}
		}
	}
	if last, first := rows[len(rows)-1], rows[0]; last.CommWords <= first.CommWords {
		t.Errorf("ℓ=%d comm %d not above ℓ=%d comm %d", last.Ell, last.CommWords, first.Ell, first.CommWords)
	}
	if _, err := BranchingSweep(f61, 4096, []int{3}, 48); err == nil {
		t.Error("non-power branching accepted")
	}
}

func TestIPv6Extrapolate(t *testing.T) {
	est := IPv6Extrapolate(1<<20, 20e6)
	if est.MeasuredLogU != 20 {
		t.Errorf("log u = %d, want 20", est.MeasuredLogU)
	}
	// 6e10 · (128/20) / 20e6 = 19200 seconds.
	if est.EstimatedSeconds < 19000 || est.EstimatedSeconds > 19500 {
		t.Errorf("estimate %.0f s outside expected band", est.EstimatedSeconds)
	}
}

func TestAmortizedF2(t *testing.T) {
	row, err := AmortizedF2(f61, 1<<10, 1<<12, 3, 55, 0)
	if err != nil {
		t.Fatalf("amortized run errored: %v", err)
	}
	if !row.Accepted {
		t.Fatal("honest run not accepted")
	}
	if row.Queries != 3 || row.N != 1<<12 {
		t.Errorf("row = %+v", row)
	}
	if row.SnapshotSetup <= 0 || row.ReplaySetup <= 0 || row.IngestOnce <= 0 {
		t.Errorf("missing timings: %+v", row)
	}
	if _, err := AmortizedF2(f61, 1<<10, 1<<12, 0, 55, 0); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestColdWarmF2(t *testing.T) {
	row, err := ColdWarmF2(f61, 1<<10, 1<<12, 56, 0, t.TempDir())
	if err != nil {
		t.Fatalf("cold/warm run errored: %v", err)
	}
	if !row.Accepted {
		t.Fatal("honest run not accepted")
	}
	if row.ColdSetup <= 0 || row.WarmSetup <= 0 || row.IngestOnce <= 0 {
		t.Errorf("missing timings: %+v", row)
	}
	// The cold query pays the checkpoint load; timing assertions beyond
	// positivity would flake, but the transcripts' acceptance above is
	// the correctness contract.
}

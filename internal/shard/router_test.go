package shard

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/gkr"
	"repro/internal/stream"
	"repro/internal/wire"
)

var f61 = field.Mersenne()

// startShard runs one wire.Server ("engine process") on a loopback
// listener and returns its address.
func startShard(t *testing.T, srv *wire.Server) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }
}

// startRouter runs a Router over the table on a loopback listener.
func startRouter(t *testing.T, tbl *Table) (string, *Router, func()) {
	t.Helper()
	r, err := NewRouter(tbl)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.Serve(ln) }()
	return ln.Addr().String(), r, func() { _ = r.Close() }
}

// twoShards spins up two shard servers (each with its own engine and
// data dir) and a router fronting them, with the named datasets pinned
// so the test controls exactly which shard serves what.
func twoShards(t *testing.T, workers int, routes map[string]string) (routerAddr string, r *Router, tbl *Table) {
	t.Helper()
	var shards []ShardInfo
	for _, name := range []string{"s1", "s2"} {
		dir := t.TempDir()
		srv := &wire.Server{F: f61, Workers: workers, DataDir: dir}
		addr, stop := startShard(t, srv)
		t.Cleanup(stop)
		shards = append(shards, ShardInfo{Name: name, Addr: addr, DataDir: dir})
	}
	tbl = &Table{Shards: shards, Routes: routes}
	addr, r, stop := startRouter(t, tbl)
	t.Cleanup(stop)
	return addr, r, tbl
}

// recordingVerifier keeps a copy of every prover message it consumes,
// so conversations through the router can be compared bit for bit
// against single-engine baselines.
type recordingVerifier struct {
	inner core.VerifierSession
	msgs  []core.Msg
}

func (r *recordingVerifier) record(m core.Msg) {
	r.msgs = append(r.msgs, core.Msg{
		Ints:  append([]uint64(nil), m.Ints...),
		Elems: append([]field.Elem(nil), m.Elems...),
	})
}

func (r *recordingVerifier) Begin(m core.Msg) (core.Msg, bool, error) {
	r.record(m)
	return r.inner.Begin(m)
}

func (r *recordingVerifier) Step(m core.Msg) (core.Msg, bool, error) {
	r.record(m)
	return r.inner.Step(m)
}

func sameTranscript(a, b []core.Msg) error {
	if len(a) != len(b) {
		return fmt.Errorf("round counts differ: %d vs %d", len(a), len(b))
	}
	for r := range a {
		if len(a[r].Ints) != len(b[r].Ints) || len(a[r].Elems) != len(b[r].Elems) {
			return fmt.Errorf("round %d shapes differ", r)
		}
		for i := range a[r].Ints {
			if a[r].Ints[i] != b[r].Ints[i] {
				return fmt.Errorf("round %d int %d differs", r, i)
			}
		}
		for i := range a[r].Elems {
			if a[r].Elems[i] != b[r].Elems[i] {
				return fmt.Errorf("round %d elem %d differs", r, i)
			}
		}
	}
	return nil
}

// newVerifier builds the verifier session for one query kind with its
// query pre-set (the shard-side mirror of the wire test helper).
func newVerifier(t *testing.T, u uint64, kind wire.QueryKind, p wire.QueryParams, seed uint64) (core.VerifierSession, func(stream.Update) error) {
	t.Helper()
	rng := field.NewSplitMix64(seed)
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	switch kind {
	case wire.QuerySelfJoinSize, wire.QueryFk:
		k := 2
		if kind == wire.QueryFk {
			k = int(p.K)
		}
		proto, err := core.NewFk(f61, u, k)
		check(err)
		v := proto.NewVerifier(rng)
		return v, v.Observe
	case wire.QueryRangeSum:
		proto, err := core.NewRangeSum(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A, p.B))
		return v, v.Observe
	case wire.QueryRangeQuery:
		proto, err := core.NewRangeQuery(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A, p.B))
		return v, v.Observe
	case wire.QueryIndex:
		proto, err := core.NewIndex(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A))
		return v, v.Observe
	case wire.QueryDictionary:
		proto, err := core.NewDictionary(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A))
		return v, v.Observe
	case wire.QueryPredecessor:
		proto, err := core.NewPredecessor(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A))
		return v, v.Observe
	case wire.QuerySuccessor:
		proto, err := core.NewSuccessor(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.A))
		return v, v.Observe
	case wire.QueryKLargest:
		proto, err := core.NewKLargest(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(int(p.K)))
		return v, v.Observe
	case wire.QueryHeavyHitters:
		proto, err := core.NewHeavyHitters(f61, u)
		check(err)
		v := proto.NewVerifier(rng)
		check(v.SetQuery(p.Phi))
		return v, v.Observe
	case wire.QueryF0:
		proto, err := core.NewF0(f61, u, p.Phi)
		check(err)
		v := proto.NewVerifier(rng)
		return v, v.Observe
	case wire.QueryFmax:
		proto, err := core.NewFmax(f61, u, p.Phi)
		check(err)
		v := proto.NewVerifier(rng)
		return v, v.Observe
	case wire.QueryCircuit:
		vs, err := gkr.NewVerifierFor(f61, circuit.Spec{Name: p.Circuit, Arg: p.A}, u, rng)
		check(err)
		return vs, vs.Observe
	default:
		t.Fatalf("unknown kind %d", kind)
		return nil, nil
	}
}

// batteryKinds is the full query battery: the paper's 12 streaming
// kinds plus a GKR circuit query.
func batteryKinds() []struct {
	kind   wire.QueryKind
	params wire.QueryParams
} {
	return []struct {
		kind   wire.QueryKind
		params wire.QueryParams
	}{
		{wire.QuerySelfJoinSize, wire.QueryParams{}},
		{wire.QueryFk, wire.QueryParams{K: 3}},
		{wire.QueryRangeSum, wire.QueryParams{A: 3, B: 200}},
		{wire.QueryRangeQuery, wire.QueryParams{A: 3, B: 200}},
		{wire.QueryIndex, wire.QueryParams{A: 17}},
		{wire.QueryDictionary, wire.QueryParams{A: 17}},
		{wire.QueryPredecessor, wire.QueryParams{A: 99}},
		{wire.QuerySuccessor, wire.QueryParams{A: 99}},
		{wire.QueryKLargest, wire.QueryParams{K: 4}},
		{wire.QueryHeavyHitters, wire.QueryParams{Phi: 0.02}},
		{wire.QueryF0, wire.QueryParams{}},
		{wire.QueryFmax, wire.QueryParams{}},
		{wire.QueryCircuit, wire.QueryParams{Circuit: circuit.FamilyF2}},
	}
}

// runBattery runs the full battery over one attached client — serially
// when overlap is false, all conversations in flight at once when true —
// and returns each kind's recorded transcript.
func runBattery(t *testing.T, c *wire.Client, u uint64, ups []stream.Update, seedBase uint64, overlap bool) [][]core.Msg {
	t.Helper()
	kinds := batteryKinds()
	out := make([][]core.Msg, len(kinds))
	if !overlap {
		for k, q := range kinds {
			v, obs := newVerifier(t, u, q.kind, q.params, seedBase+uint64(k))
			for _, up := range ups {
				if err := obs(up); err != nil {
					t.Fatal(err)
				}
			}
			rec := &recordingVerifier{inner: v}
			if _, err := c.Query(q.kind, q.params, rec); err != nil {
				t.Fatalf("kind %d: %v", q.kind, err)
			}
			out[k] = rec.msgs
		}
		return out
	}
	recs := make([]*recordingVerifier, len(kinds))
	handles := make([]*wire.QueryHandle, len(kinds))
	for k, q := range kinds {
		v, obs := newVerifier(t, u, q.kind, q.params, seedBase+uint64(k))
		for _, up := range ups {
			if err := obs(up); err != nil {
				t.Fatal(err)
			}
		}
		recs[k] = &recordingVerifier{inner: v}
		h, err := c.QueryAsync(q.kind, q.params, recs[k])
		if err != nil {
			t.Fatalf("QueryAsync kind %d: %v", q.kind, err)
		}
		handles[k] = h
	}
	for k, h := range handles {
		if _, err := h.Wait(); err != nil {
			t.Fatalf("kind %d rejected: %v", kinds[k].kind, err)
		}
	}
	for k := range kinds {
		out[k] = recs[k].msgs
	}
	return out
}

func dialT(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 30 * time.Second
	t.Cleanup(func() { c.Close() })
	return c
}

// TestRouterBatteryMatchesSingleEngine is the tentpole contract: a
// wire.Client pointed at a router fronting two shards runs the full
// battery (every query kind, serial and overlapped, interleaved with
// ingestion, plus cached-proof fetches) on datasets living on different
// shards, with transcripts and proof bytes bit-identical to the same
// battery against one single-engine server.
func TestRouterBatteryMatchesSingleEngine(t *testing.T) {
	const u = 500
	ups := stream.UniformDeltas(u, 20, field.NewSplitMix64(5100))
	more := stream.UnitIncrements(u, 40, field.NewSplitMix64(5101))

	for _, workers := range []int{0, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Baseline: one engine, no router.
			baseAddr, stopBase := startShard(t, &wire.Server{F: f61, Workers: workers})
			defer stopBase()
			// Router: the same datasets, pinned to different shards.
			routerAddr, _, _ := twoShards(t, workers, map[string]string{"alpha": "s1", "beta": "s2"})

			type run struct {
				serial, overlapped [][]core.Msg
				proof              []byte
				count              uint64
			}
			drive := func(addr, dataset string, seedBase uint64) run {
				c := dialT(t, addr)
				if _, err := c.OpenDataset(dataset, u); err != nil {
					t.Fatal(err)
				}
				if _, err := c.Ingest(ups); err != nil {
					t.Fatal(err)
				}
				serial := runBattery(t, c, u, ups, seedBase, false)
				// Interleave more ingestion, then overlap the whole battery.
				count, err := c.Ingest(more)
				if err != nil {
					t.Fatal(err)
				}
				all := append(append([]stream.Update(nil), ups...), more...)
				overlapped := runBattery(t, c, u, all, seedBase+100, true)
				pf, err := c.FetchProof(wire.QuerySelfJoinSize, wire.QueryParams{}, 0)
				if err != nil {
					t.Fatal(err)
				}
				return run{serial: serial, overlapped: overlapped, proof: pf.Encode(), count: count}
			}

			for di, dataset := range []string{"alpha", "beta"} {
				seedBase := uint64(50_000 + 1000*di)
				base := drive(baseAddr, dataset, seedBase)
				routed := drive(routerAddr, dataset, seedBase)
				if base.count != routed.count {
					t.Fatalf("dataset %q: update counts diverge: %d vs %d", dataset, base.count, routed.count)
				}
				for k := range base.serial {
					if err := sameTranscript(base.serial[k], routed.serial[k]); err != nil {
						t.Errorf("dataset %q kind %d serial: %v", dataset, batteryKinds()[k].kind, err)
					}
					if err := sameTranscript(base.overlapped[k], routed.overlapped[k]); err != nil {
						t.Errorf("dataset %q kind %d overlapped: %v", dataset, batteryKinds()[k].kind, err)
					}
				}
				if !bytes.Equal(base.proof, routed.proof) {
					t.Errorf("dataset %q: cached proof bytes differ between router and single engine", dataset)
				}
			}
		})
	}
}

// TestRouterPlacementSplitsDatasets: unpinned datasets spread across
// shards by consistent hashing, and each shard holds only its own.
func TestRouterPlacementSplitsDatasets(t *testing.T) {
	const u = 64
	routerAddr, r, tbl := twoShards(t, 0, nil)
	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("ds-%02d", i)
		c := dialT(t, routerAddr)
		if _, err := c.OpenDataset(names[i], u); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Ingest(stream.UnitIncrements(u, 3, field.NewSplitMix64(uint64(i)))); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	perShard := map[string]int{}
	routed := r.Table()
	for _, name := range names {
		s, err := routed.Place(name)
		if err != nil {
			t.Fatal(err)
		}
		perShard[s.Name]++
		// The placed shard must actually hold the dataset: opening it
		// there directly reports the ingested count.
		c := dialT(t, shardAddr(tbl, s.Name))
		count, err := c.OpenDataset(name, u)
		if err != nil || count != 3 {
			t.Fatalf("dataset %q on shard %q: count = %d, err = %v", name, s.Name, count, err)
		}
		c.Close()
	}
	if perShard["s1"] == 0 || perShard["s2"] == 0 {
		t.Fatalf("hashing put every dataset on one shard: %v", perShard)
	}
}

func shardAddr(t *Table, name string) string {
	s, _ := t.Shard(name)
	return s.Addr
}

// TestRouterErrorsPassThrough: the typed refusals the wire protocol
// promises — ErrBudget for an over-cap channel, the "not current"
// proof-version error, an unknown-circuit failure — arrive through the
// router exactly as from a direct connection.
func TestRouterErrorsPassThrough(t *testing.T) {
	const u = 256
	var shards []ShardInfo
	for _, name := range []string{"s1", "s2"} {
		srv := &wire.Server{F: f61, MaxConcurrentQueries: 1}
		addr, stop := startShard(t, srv)
		t.Cleanup(stop)
		shards = append(shards, ShardInfo{Name: name, Addr: addr})
	}
	routerAddr, _, stop := startRouter(t, &Table{Shards: shards})
	defer stop()

	c := dialT(t, routerAddr)
	if _, err := c.OpenDataset("errs", u); err != nil {
		t.Fatal(err)
	}
	ups := stream.UniformDeltas(u, 10, field.NewSplitMix64(61))
	if _, err := c.Ingest(ups); err != nil {
		t.Fatal(err)
	}

	// Over-cap channel: with the serial conversation protocol lock-step,
	// hold one conversation open by not answering, then open a second.
	v1, obs1 := newVerifier(t, u, wire.QuerySelfJoinSize, wire.QueryParams{}, 71)
	for _, up := range ups {
		if err := obs1(up); err != nil {
			t.Fatal(err)
		}
	}
	sv := &stallVerifier{inner: v1, gate: make(chan struct{})}
	h1, err := c.QueryAsync(wire.QuerySelfJoinSize, wire.QueryParams{}, sv)
	if err != nil {
		t.Fatal(err)
	}
	v2, obs2 := newVerifier(t, u, wire.QueryFk, wire.QueryParams{K: 3}, 72)
	for _, up := range ups {
		if err := obs2(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query(wire.QueryFk, wire.QueryParams{K: 3}, v2); !errors.Is(err, wire.ErrBudget) {
		t.Fatalf("over-cap channel through router: err = %v, want ErrBudget", err)
	}
	close(sv.gate)
	if _, err := h1.Wait(); err != nil {
		t.Fatalf("stalled conversation: %v", err)
	}

	// Stale proof version: the server's "not current" refusal verbatim.
	if _, err := c.FetchProof(wire.QuerySelfJoinSize, wire.QueryParams{}, 999); err == nil ||
		!strings.Contains(err.Error(), "is not current") {
		t.Fatalf("stale version through router: err = %v, want 'is not current'", err)
	}

	// Unknown circuit family: an ordinary per-channel error, typed as a
	// server error, connection still usable after.
	vC, _ := newVerifier(t, u, wire.QuerySelfJoinSize, wire.QueryParams{}, 73)
	if _, err := c.Query(wire.QueryCircuit, wire.QueryParams{Circuit: "no-such-family"}, vC); err == nil ||
		!strings.Contains(err.Error(), "server error") {
		t.Fatalf("unknown circuit through router: err = %v, want server error", err)
	}
	v3, obs3 := newVerifier(t, u, wire.QuerySelfJoinSize, wire.QueryParams{}, 74)
	for _, up := range ups {
		if err := obs3(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, v3); err != nil {
		t.Fatalf("connection dead after per-channel errors: %v", err)
	}
}

// stallVerifier parks its conversation at the opening message until its
// gate closes, pinning the shard's one concurrency slot. Only the
// handle's own goroutine blocks — the client demux keeps running, so
// the refusal of the second channel still arrives.
type stallVerifier struct {
	inner core.VerifierSession
	gate  chan struct{}
}

func (s *stallVerifier) Begin(m core.Msg) (core.Msg, bool, error) {
	<-s.gate
	return s.inner.Begin(m)
}

func (s *stallVerifier) Step(m core.Msg) (core.Msg, bool, error) { return s.inner.Step(m) }

// TestRouterV1FlowRoundRobin: the v1 private-dataset flow works through
// the router (hello → updates → endstream → serial query), with
// connections spread across shards.
func TestRouterV1FlowRoundRobin(t *testing.T) {
	const u = 128
	routerAddr, _, _ := twoShards(t, 0, nil)
	ups := stream.UniformDeltas(u, 15, field.NewSplitMix64(81))
	for i := 0; i < 3; i++ {
		c := dialT(t, routerAddr)
		if err := c.Hello(u); err != nil {
			t.Fatal(err)
		}
		if err := c.SendUpdates(ups); err != nil {
			t.Fatal(err)
		}
		if err := c.EndStream(); err != nil {
			t.Fatal(err)
		}
		v, obs := newVerifier(t, u, wire.QuerySelfJoinSize, wire.QueryParams{}, uint64(90+i))
		for _, up := range ups {
			if err := obs(up); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, v); err != nil {
			t.Fatalf("v1 query %d through router: %v", i, err)
		}
		c.Close()
	}
}

// TestRouterLiveRebalance moves a dataset between shards while a client
// is actively ingesting through the router, then proves no acknowledged
// batch was lost: the update count equals the acked total, a fresh
// verifier over exactly the acked stream accepts, and the route now
// points at the target.
func TestRouterLiveRebalance(t *testing.T) {
	const u = 256
	const batches = 12
	routerAddr, r, tbl := twoShards(t, 0, map[string]string{"hot": "s1"})

	mk := func(i int) []stream.Update {
		return stream.UnitIncrements(u, 16, field.NewSplitMix64(uint64(7000+i)))
	}

	c := dialT(t, routerAddr)
	if _, err := c.OpenDataset("hot", u); err != nil {
		t.Fatal(err)
	}

	rebalanced := make(chan error, 1)
	var acked []stream.Update
	var ackedCount uint64
	for i := 0; i < batches; i++ {
		if i == 3 {
			// Kick off the migration mid-ingest.
			go func() { rebalanced <- r.Rebalance("hot", "s2") }()
		}
		batch := mk(i)
		for attempt := 0; ; attempt++ {
			count, err := c.Ingest(batch)
			if err == nil {
				ackedCount = count
				break
			}
			if attempt > 10 {
				t.Fatalf("batch %d: %v after %d attempts", i, err, attempt)
			}
			// The batch was NOT acked: the source released the dataset (or
			// the proxy tore down with it). Reconnect — the router routes
			// the re-open to the dataset's current home — and re-send.
			c.Close()
			c = dialT(t, routerAddr)
			if _, err := c.OpenDataset("hot", u); err != nil {
				t.Fatalf("re-open after rebalance: %v", err)
			}
		}
		acked = append(acked, batch...)
	}
	if err := <-rebalanced; err != nil {
		t.Fatalf("rebalance: %v", err)
	}

	if ackedCount != uint64(len(acked)) {
		t.Fatalf("server count %d != acked updates %d: an acked batch was lost or doubled", ackedCount, len(acked))
	}
	if got := r.Table().Routes["hot"]; got != "s2" {
		t.Fatalf("route after rebalance = %q, want s2", got)
	}
	// The target shard holds the dataset (direct open, bypassing the
	// router) with every acked update.
	cd := dialT(t, shardAddr(tbl, "s2"))
	count, err := cd.OpenDataset("hot", u)
	if err != nil || count != uint64(len(acked)) {
		t.Fatalf("target shard: count = %d, err = %v, want %d", count, err, len(acked))
	}
	// And the data is intact: a verifier that observed exactly the acked
	// stream accepts a query through the router against the new home.
	v, obs := newVerifier(t, u, wire.QuerySelfJoinSize, wire.QueryParams{}, 7999)
	for _, up := range acked {
		if err := obs(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, v); err != nil {
		t.Fatalf("query after rebalance rejected: %v", err)
	}
}

// TestRebalanceTranscriptAndProofEquality: the strong bit-equality
// claim across a router-driven move — transcripts and fetched proof
// bytes before the rebalance equal those after, for every battery kind.
func TestRebalanceTranscriptAndProofEquality(t *testing.T) {
	const u = 500
	routerAddr, r, _ := twoShards(t, 0, map[string]string{"mv": "s1"})
	ups := stream.UniformDeltas(u, 20, field.NewSplitMix64(9100))

	c := dialT(t, routerAddr)
	if _, err := c.OpenDataset("mv", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	before := runBattery(t, c, u, ups, 91_000, false)
	pfBefore, err := c.FetchProof(wire.QueryRangeSum, wire.QueryParams{A: 3, B: 200}, 0)
	if err != nil {
		t.Fatal(err)
	}

	if err := r.Rebalance("mv", "s2"); err != nil {
		t.Fatalf("rebalance: %v", err)
	}

	// The old attachment is stale; a fresh connection routes to s2.
	c2 := dialT(t, routerAddr)
	if count, err := c2.OpenDataset("mv", u); err != nil || count != uint64(len(ups)) {
		t.Fatalf("open after move: count = %d, err = %v", count, err)
	}
	after := runBattery(t, c2, u, ups, 91_000, false)
	for k := range before {
		if err := sameTranscript(before[k], after[k]); err != nil {
			t.Errorf("kind %d: transcript differs across rebalance: %v", batteryKinds()[k].kind, err)
		}
	}
	pfAfter, err := c2.FetchProof(wire.QueryRangeSum, wire.QueryParams{A: 3, B: 200}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pfBefore.Encode(), pfAfter.Encode()) {
		t.Errorf("cached proof bytes differ across rebalance")
	}
}

// TestEvacuate: with a shard down, its checkpointed datasets move to a
// survivor and serve there with the data intact.
func TestEvacuate(t *testing.T) {
	const u = 128
	var shards []ShardInfo
	var stops []func()
	for _, name := range []string{"s1", "s2"} {
		dir := t.TempDir()
		srv := &wire.Server{F: f61, DataDir: dir}
		addr, stop := startShard(t, srv)
		stops = append(stops, stop)
		shards = append(shards, ShardInfo{Name: name, Addr: addr, DataDir: dir})
	}
	tbl := &Table{Shards: shards, Routes: map[string]string{"doomed": "s1"}}
	routerAddr, r, stopR := startRouter(t, tbl)
	defer stopR()
	defer stops[1]()

	c := dialT(t, routerAddr)
	if _, err := c.OpenDataset("doomed", u); err != nil {
		t.Fatal(err)
	}
	ups := stream.UniformDeltas(u, 25, field.NewSplitMix64(11_000))
	if _, err := c.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Kill shard 1. Its Close persists dirty datasets — the crash-window
	// story for a real loss is the checkpointer interval.
	stops[0]()

	moved, err := r.Evacuate("s1", "s2")
	if err != nil {
		t.Fatalf("evacuate: %v", err)
	}
	if len(moved) != 1 || moved[0] != "doomed" {
		t.Fatalf("evacuated %v, want [doomed]", moved)
	}
	c2 := dialT(t, routerAddr)
	count, err := c2.OpenDataset("doomed", u)
	if err != nil || count != uint64(len(ups)) {
		t.Fatalf("after evacuation: count = %d, err = %v, want %d", count, err, len(ups))
	}
	v, obs := newVerifier(t, u, wire.QuerySelfJoinSize, wire.QueryParams{}, 11_999)
	for _, up := range ups {
		if err := obs(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c2.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, v); err != nil {
		t.Fatalf("query after evacuation rejected: %v", err)
	}
}

// TestTableRoundTrip: save → load preserves shards and routes, and
// placement is stable across processes (FNV, not map iteration).
func TestTableRoundTrip(t *testing.T) {
	tbl := &Table{
		Shards: []ShardInfo{{Name: "a", Addr: "x:1", DataDir: "/d/a"}, {Name: "b", Addr: "x:2", DataDir: "/d/b"}},
		Routes: map[string]string{"pinned": "b"},
	}
	path := t.TempDir() + "/table.json"
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != 2 || got.Routes["pinned"] != "b" {
		t.Fatalf("round trip mangled the table: %+v", got)
	}
	for _, name := range []string{"pinned", "q1", "q2", "q3"} {
		a, err1 := tbl.Place(name)
		b, err2 := got.Place(name)
		if err1 != nil || err2 != nil || a.Name != b.Name {
			t.Fatalf("placement of %q unstable across save/load: %q vs %q", name, a.Name, b.Name)
		}
	}
	if s, _ := tbl.Place("pinned"); s.Name != "b" {
		t.Fatalf("explicit route ignored: placed on %q", s.Name)
	}
}

// Rebalancing: moving a dataset between shards by checkpoint handoff,
// and the shard-loss repair path that adopts a dead shard's checkpoint
// files wholesale.
//
// The move protocol, in order, with what each step guarantees:
//
//  1. Freeze: new OPENs of the dataset block at the router until the
//     move settles, so no connection can attach to the source after its
//     release.
//  2. Handoff (admin frame → engine.Release on the source): the source
//     persists the final checkpoint, detaches the dataset, and fails
//     every later use of stale attachments with a typed "released for
//     handoff" error — an in-flight ingest batch either lands in full
//     before the final save or fails in full; no acked batch is lost.
//  3. Move: the checkpoint file travels between the shards' data dirs
//     (rename, with a copy fallback across filesystems).
//  4. Adopt (admin frame → engine.Adopt on the target): the target
//     validates and registers the checkpoint; its update count must
//     equal the handoff's.
//  5. Flip: the router pins dataset → target in the routing table (and
//     persists it when TablePath is set), then unfreezes.
//
// A client whose connection died at step 2 reconnects, re-opens (now
// routed to the target), and re-sends its unacknowledged batches —
// ingest acks are per batch, so the client knows exactly which ones.
package shard

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/store"
	"repro/internal/wire"
)

// adminTimeout bounds each admin call a rebalance makes to a shard.
const adminTimeout = 30 * time.Second

// Rebalance moves a dataset to the named target shard by checkpoint
// handoff and flips its route. New OPENs of the dataset are frozen for
// the duration; existing attachments to the source fail typed on next
// use and re-route on reconnect. The dataset must currently exist on
// its placed shard.
func (r *Router) Rebalance(dataset, target string) error {
	tgt, src, err := r.freezeFor(dataset, target)
	if err != nil {
		return err
	}
	defer r.unfreeze(dataset)
	if src.Name == tgt.Name {
		// Already home: just pin the route so a shard-set change cannot
		// move it by rehash.
		return r.flipRoute(dataset, tgt.Name)
	}
	if src.DataDir == "" || tgt.DataDir == "" {
		return fmt.Errorf("shard: rebalance needs data dirs on both %q and %q", src.Name, tgt.Name)
	}
	released, err := adminCall(src.Addr, func(c *wire.Client) (uint64, error) { return c.Handoff(dataset) })
	if err != nil {
		return fmt.Errorf("shard: handoff of %q from %q: %w", dataset, src.Name, err)
	}
	file := store.DatasetFile(dataset)
	if err := moveFile(filepath.Join(src.DataDir, file), filepath.Join(tgt.DataDir, file)); err != nil {
		return fmt.Errorf("shard: moving checkpoint of %q: %w", dataset, err)
	}
	adopted, err := adminCall(tgt.Addr, func(c *wire.Client) (uint64, error) { return c.Adopt(dataset) })
	if err != nil {
		return fmt.Errorf("shard: adopt of %q on %q: %w", dataset, tgt.Name, err)
	}
	if adopted != released {
		return fmt.Errorf("shard: handoff of %q released %d updates but %q adopted %d — checkpoint mismatch",
			dataset, released, tgt.Name, adopted)
	}
	return r.flipRoute(dataset, tgt.Name)
}

// Evacuate is the shard-loss path: the named shard's process is gone
// but its data dir is still reachable. Every checkpoint file it holds
// is moved to the target shard's data dir, adopted there, and routed.
// It returns the datasets recovered. Nothing is handed off — the dead
// shard cannot release — so Evacuate must only run once the lost shard
// is actually down: a live source would keep serving stale data.
func (r *Router) Evacuate(lost, target string) ([]string, error) {
	r.mu.Lock()
	lostS, ok1 := r.table.Shard(lost)
	tgt, ok2 := r.table.Shard(target)
	r.mu.Unlock()
	if !ok1 {
		return nil, fmt.Errorf("shard: unknown shard %q", lost)
	}
	if !ok2 {
		return nil, fmt.Errorf("shard: unknown shard %q", target)
	}
	if lost == target {
		return nil, fmt.Errorf("shard: cannot evacuate %q onto itself", lost)
	}
	if lostS.DataDir == "" || tgt.DataDir == "" {
		return nil, fmt.Errorf("shard: evacuation needs data dirs on both %q and %q", lost, target)
	}
	ents, err := os.ReadDir(lostS.DataDir)
	if err != nil {
		return nil, fmt.Errorf("shard: reading lost shard's data dir: %w", err)
	}
	var moved []string
	var errs []error
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), store.CkptExt) {
			continue
		}
		name, err := store.DatasetName(ent.Name())
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if err := func() error {
			r.freeze(name)
			defer r.unfreeze(name)
			if err := moveFile(filepath.Join(lostS.DataDir, ent.Name()), filepath.Join(tgt.DataDir, ent.Name())); err != nil {
				return err
			}
			if _, err := adminCall(tgt.Addr, func(c *wire.Client) (uint64, error) { return c.Adopt(name) }); err != nil {
				return err
			}
			return r.flipRoute(name, target)
		}(); err != nil {
			errs = append(errs, fmt.Errorf("dataset %q: %w", name, err))
			continue
		}
		moved = append(moved, name)
	}
	return moved, errors.Join(errs...)
}

// freezeFor resolves the move's endpoints and freezes the dataset's
// placement in one step, so the source it returns is exactly the shard
// every pre-freeze OPEN attached to.
func (r *Router) freezeFor(dataset, target string) (tgt, src ShardInfo, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tgt, ok := r.table.Shard(target)
	if !ok {
		return ShardInfo{}, ShardInfo{}, fmt.Errorf("shard: unknown target shard %q", target)
	}
	src, err = r.table.Place(dataset)
	if err != nil {
		return ShardInfo{}, ShardInfo{}, err
	}
	if _, busy := r.migrating[dataset]; busy {
		return ShardInfo{}, ShardInfo{}, fmt.Errorf("shard: dataset %q is already migrating", dataset)
	}
	r.migrating[dataset] = make(chan struct{})
	return tgt, src, nil
}

func (r *Router) freeze(dataset string) {
	r.mu.Lock()
	if _, busy := r.migrating[dataset]; !busy {
		r.migrating[dataset] = make(chan struct{})
	}
	r.mu.Unlock()
}

func (r *Router) unfreeze(dataset string) {
	r.mu.Lock()
	if ch, ok := r.migrating[dataset]; ok {
		close(ch)
		delete(r.migrating, dataset)
	}
	r.mu.Unlock()
}

// flipRoute pins dataset → shard in the table and persists it when the
// router has a TablePath.
func (r *Router) flipRoute(dataset, shardName string) error {
	r.mu.Lock()
	if r.table.Routes == nil {
		r.table.Routes = make(map[string]string)
	}
	r.table.Routes[dataset] = shardName
	// Marshal a snapshot, not the live table: another flip may mutate it
	// while Save serializes outside the lock.
	tbl, path := r.table.clone(), r.TablePath
	r.mu.Unlock()
	if path == "" {
		return nil
	}
	return tbl.Save(path)
}

// RebalanceSlice moves one slice of a split dataset to the named target
// shard by the same checkpoint handoff as Rebalance, then flips the
// slice's owner in the split spec. New OPENs and scatter re-attachments
// of the dataset are frozen for the duration; the proxy's deliverSlice
// retry makes an in-flight ingest survive the move with no acked batch
// lost. The target must not already own another slice of the dataset —
// slice checkpoints are named by dataset alone, so two slices in one
// data dir would collide.
func (r *Router) RebalanceSlice(dataset string, slice int, target string) error {
	tgt, src, err := r.freezeForSlice(dataset, slice, target)
	if err != nil {
		return err
	}
	defer r.unfreeze(dataset)
	if src.Name == tgt.Name {
		return nil // already home; split owners are always explicit, nothing to pin
	}
	if src.DataDir == "" || tgt.DataDir == "" {
		return fmt.Errorf("shard: rebalance needs data dirs on both %q and %q", src.Name, tgt.Name)
	}
	released, err := adminCall(src.Addr, func(c *wire.Client) (uint64, error) { return c.Handoff(dataset) })
	if err != nil {
		return fmt.Errorf("shard: handoff of %q slice %d from %q: %w", dataset, slice, src.Name, err)
	}
	file := store.DatasetFile(dataset)
	if err := moveFile(filepath.Join(src.DataDir, file), filepath.Join(tgt.DataDir, file)); err != nil {
		return fmt.Errorf("shard: moving checkpoint of %q slice %d: %w", dataset, slice, err)
	}
	adopted, err := adminCall(tgt.Addr, func(c *wire.Client) (uint64, error) { return c.Adopt(dataset) })
	if err != nil {
		return fmt.Errorf("shard: adopt of %q slice %d on %q: %w", dataset, slice, tgt.Name, err)
	}
	if adopted != released {
		return fmt.Errorf("shard: handoff of %q slice %d released %d updates but %q adopted %d — checkpoint mismatch",
			dataset, slice, released, tgt.Name, adopted)
	}
	return r.flipSliceOwner(dataset, slice, tgt.Name)
}

// freezeForSlice validates a slice move and freezes the dataset's
// placement in one step.
func (r *Router) freezeForSlice(dataset string, slice int, target string) (tgt, src ShardInfo, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sp, ok := r.table.Splits[dataset]
	if !ok {
		return ShardInfo{}, ShardInfo{}, fmt.Errorf("shard: dataset %q is not split; use Rebalance", dataset)
	}
	if slice < 0 || slice >= sp.Slices {
		return ShardInfo{}, ShardInfo{}, fmt.Errorf("shard: dataset %q has slices 0..%d, not %d", dataset, sp.Slices-1, slice)
	}
	tgt, ok = r.table.Shard(target)
	if !ok {
		return ShardInfo{}, ShardInfo{}, fmt.Errorf("shard: unknown target shard %q", target)
	}
	src, ok = r.table.Shard(sp.Owners[slice])
	if !ok {
		return ShardInfo{}, ShardInfo{}, fmt.Errorf("shard: slice %d of %q owned by unknown shard %q", slice, dataset, sp.Owners[slice])
	}
	for k, name := range sp.Owners {
		if k != slice && name == target {
			return ShardInfo{}, ShardInfo{}, fmt.Errorf("shard: shard %q already owns slice %d of %q", target, k, dataset)
		}
	}
	if _, busy := r.migrating[dataset]; busy {
		return ShardInfo{}, ShardInfo{}, fmt.Errorf("shard: dataset %q is already migrating", dataset)
	}
	r.migrating[dataset] = make(chan struct{})
	return tgt, src, nil
}

// flipSliceOwner records the slice's new home in the split spec and
// persists the table when the router has a TablePath.
func (r *Router) flipSliceOwner(dataset string, slice int, shardName string) error {
	r.mu.Lock()
	sp, ok := r.table.Splits[dataset]
	if !ok || slice < 0 || slice >= len(sp.Owners) {
		r.mu.Unlock()
		return fmt.Errorf("shard: dataset %q slice %d vanished from the split spec mid-move", dataset, slice)
	}
	sp.Owners[slice] = shardName
	tbl, path := r.table.clone(), r.TablePath
	r.mu.Unlock()
	if path == "" {
		return nil
	}
	return tbl.Save(path)
}

// adminCall dials a shard, runs one admin call, and hangs up.
func adminCall(addr string, fn func(*wire.Client) (uint64, error)) (uint64, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	c.Timeout = adminTimeout
	return fn(c)
}

// moveFile renames src onto dst, falling back to copy-and-delete when
// the data dirs live on different filesystems. The copy lands under a
// temporary name and is renamed into place, so the target engine can
// never adopt a half-written checkpoint (store.Load's checksum would
// refuse it regardless).
func moveFile(src, dst string) error {
	if err := os.Rename(src, dst); err == nil {
		return nil
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp := dst + ".moving"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = io.Copy(out, in); err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Remove(src)
}

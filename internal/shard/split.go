// The split-universe path: one dataset too large for a single engine,
// spread as power-of-two slices of its padded universe across several
// shards. Unlike the byte-forwarding routes in router.go, the router is
// a protocol PARTICIPANT here — it attaches to every owner over the
// shard-facing slice calls (wire.OpenDatasetSlice, wire.PartialQuery),
// scatters each ingest batch, and folds the owners' partial-prover
// messages with core.SplitAggregator into the single conversation the
// client sees. The client-facing protocol is unchanged: sip.Client and
// wire.Client speak to a split dataset exactly as to a whole one, and
// the transcript — and therefore every verifier decision and every
// cached Fiat–Shamir proof byte — is bit-identical to a single engine
// holding the whole dataset.
//
// Version discipline: a slice's dataset version counts DELIVERED
// batches (engine.IngestColumns bumps a slice on every delivered batch,
// empty or not), so the scatter delivers every non-empty global batch
// to every owner — one frame each, empty sub-batches included — and
// acks a fully-empty global batch locally. Slice versions then track
// the single-engine version exactly, which is what lets the aggregator
// pin one version across owners and the proof binding carry the same
// version a single engine would.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/field"
	"repro/internal/fs"
	"repro/internal/lde"
	"repro/internal/proofcache"
	"repro/internal/stream"
	"repro/internal/sumcheck"
	"repro/internal/wire"
)

// splitCombiner maps a query kind to the combiner the aggregator folds
// under — the router-side mirror of engine.NewPartialProver's seam
// coverage. Kinds outside the seam fail with the engine's typed error.
func splitCombiner(kind wire.QueryKind, params wire.QueryParams) (sumcheck.Combiner, error) {
	switch kind {
	case wire.QuerySelfJoinSize:
		return sumcheck.Power{K: 2}, nil
	case wire.QueryFk:
		return sumcheck.Power{K: int(params.K)}, nil
	case wire.QueryRangeSum:
		return sumcheck.Product{}, nil
	default:
		return nil, fmt.Errorf("%w: kind %d", engine.ErrNotSplittable, kind)
	}
}

// splitAttach is one client connection's attachment to a split dataset:
// the geometry plus the per-slice owner legs. The owner slice is
// mutable (a slice handoff swaps in a freshly attached client); the
// mutex covers owners and count, which the read loop and conversation
// goroutines share.
type splitAttach struct {
	name   string
	u      uint64 // client-declared global universe
	width  uint64 // slice width over the padded universe
	slices int

	mu     sync.Mutex
	owners []*wire.Client // slice k → its owner leg
	count  uint64         // last acked global update count
}

// bounds returns slice k's [lo, hi) over the padded universe.
func (a *splitAttach) bounds(k int) (lo, hi uint64) {
	return uint64(k) * a.width, uint64(k+1) * a.width
}

func (a *splitAttach) owner(k int) *wire.Client {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.owners[k]
}

// swapOwner installs a replacement leg for slice k. The old client is
// NOT closed: in-flight conversations may still be draining it; the
// proxy's append-only connection list closes it at teardown.
func (a *splitAttach) swapOwner(k int, c *wire.Client) {
	a.mu.Lock()
	a.owners[k] = c
	a.mu.Unlock()
}

func (a *splitAttach) clients() []*wire.Client {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*wire.Client(nil), a.owners...)
}

func (a *splitAttach) setCount(n uint64) {
	a.mu.Lock()
	a.count = n
	a.mu.Unlock()
}

func (a *splitAttach) total() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count
}

// openConvs opens one partial conversation per owner, in slice order.
// The caller must be the client read loop (or hold no later frames):
// opening synchronously in frame-arrival order is what guarantees every
// owner snapshots the same set of this connection's acknowledged
// batches — the same ordering a single engine's mux gives one dataset.
func (a *splitAttach) openConvs(kind wire.QueryKind, params wire.QueryParams) ([]*wire.PartialConv, error) {
	owners := a.clients()
	convs := make([]*wire.PartialConv, len(owners))
	for k, c := range owners {
		conv, err := c.PartialQuery(kind, params)
		if err != nil {
			finishConvs(convs)
			return nil, fmt.Errorf("shard: opening partial conversation on slice %d of %q: %w", k, a.name, err)
		}
		convs[k] = conv
	}
	return convs, nil
}

// finishConvs closes every non-nil conversation; idempotent.
func finishConvs(convs []*wire.PartialConv) {
	for _, c := range convs {
		if c != nil {
			_ = c.Finish()
		}
	}
}

// splitConv is a live split conversation's pin owner: the read loop
// feeds client challenges into ch, and done tells the conversation
// goroutine the client finished (or abandoned) the channel.
type splitConv struct {
	ch   chan core.Msg
	done chan struct{}
	once sync.Once
}

func (sc *splitConv) finish() { sc.once.Do(func() { close(sc.done) }) }

var (
	errSplitFinished = errors.New("shard: split conversation finished by the client")
	errSplitClosed   = errors.New("shard: proxy connection closing")
)

// splitClient returns this connection's owner leg to (shard, dataset),
// dialing on first use. One wire.Client per pair: a client carries a
// single attachment, and distinct split datasets on one proxy
// connection may share a shard.
func (p *proxyConn) splitClient(s ShardInfo, dataset string) (*wire.Client, error) {
	key := s.Name + "\x00" + dataset
	if c := p.splitClients[key]; c != nil {
		return c, nil
	}
	if p.splitClients == nil {
		p.splitClients = make(map[string]*wire.Client)
	}
	c, err := p.dialSplitLeg(s)
	if err != nil {
		return nil, err
	}
	p.splitClients[key] = c
	return c, nil
}

// dialSplitLeg dials a fresh owner leg with the same bounded retry as a
// byte-forwarding backend.
func (p *proxyConn) dialSplitLeg(s ShardInfo) (*wire.Client, error) {
	conn, err := dialBackoff(s.Addr, p.r.DialTimeout, p.r.DialRetryBudget)
	if err != nil {
		return nil, fmt.Errorf("shard: shard %q (%s) is unreachable: %w", s.Name, s.Addr, err)
	}
	c := wire.NewClient(conn)
	if t := p.r.IdleTimeout; t > 0 {
		c.Timeout = t
	}
	p.splitConns = append(p.splitConns, c)
	return c, nil
}

// openSplit attaches the client connection to a split dataset: one
// OpenDatasetSlice per owner, in slice order, then the summed count is
// acked exactly as a single engine would ack its whole-dataset OPEN.
func (p *proxyConn) openSplit(name string, u uint64, pl *splitPlacement) error {
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return err
	}
	if uint64(pl.slices)*2 > params.U {
		return fmt.Errorf("shard: dataset %q: universe %d pads to %d, too small for %d slices (slice width must be ≥ 2)",
			name, u, params.U, pl.slices)
	}
	a := &splitAttach{
		name:   name,
		u:      u,
		width:  params.U / uint64(pl.slices),
		slices: pl.slices,
		owners: make([]*wire.Client, pl.slices),
	}
	var total uint64
	for k, s := range pl.owners {
		c, err := p.splitClient(s, name)
		if err != nil {
			return err
		}
		lo, hi := a.bounds(k)
		n, err := c.OpenDatasetSlice(name, u, lo, hi)
		if err != nil {
			return fmt.Errorf("shard: opening slice %d of %q on shard %q: %w", k, name, s.Name, err)
		}
		a.owners[k] = c
		total += n
	}
	a.count = total
	p.split, p.cur = a, nil
	return p.writeClient(wire.FrameOK, wire.EncodeCount(total))
}

// splitIngest scatters one global updates batch across the owners. A
// non-empty batch is delivered to EVERY owner (empty sub-batches
// included) so slice versions track the global version; a fully-empty
// batch is acked locally, mirroring the engine's no-bump rule for empty
// whole-dataset batches.
func (p *proxyConn) splitIngest(payload []byte) error {
	a := p.split
	idx, deltas, err := wire.DecodeUpdateColumns(payload)
	if err != nil {
		return err
	}
	if len(idx) == 0 {
		return p.writeClient(wire.FrameOK, wire.EncodeCount(a.total()))
	}
	subs := make([][]stream.Update, a.slices)
	for i, ix := range idx {
		if ix >= a.u {
			// The engine's own bounds refusal, verbatim: validated here
			// because each owner only knows its slice.
			return fmt.Errorf("engine: index %d outside universe [0,%d)", ix, a.u)
		}
		k := int(ix / a.width)
		subs[k] = append(subs[k], stream.Update{Index: ix, Delta: deltas[i]})
	}
	var total uint64
	for k := 0; k < a.slices; k++ {
		n, err := p.deliverSlice(a, k, subs[k])
		if err != nil {
			return err
		}
		total += n
	}
	a.setCount(total)
	return p.writeClient(wire.FrameOK, wire.EncodeCount(total))
}

// deliverSlice hands slice k its sub-batch, surviving a concurrent
// slice handoff: a delivery refused mid-migration (the source engine
// released the slice after checkpointing, so the refused batch was not
// applied) is re-sent through a fresh attachment to the slice's new
// home. Three attempts bound a migration storm.
func (p *proxyConn) deliverSlice(a *splitAttach, k int, sub []stream.Update) (uint64, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			if err := p.reattachSlice(a, k); err != nil {
				lastErr = err
				continue
			}
		}
		n, err := a.owner(k).IngestBatch(sub)
		if err == nil {
			return n, nil
		}
		lastErr = err
	}
	return 0, fmt.Errorf("shard: delivering batch to slice %d of %q: %w", k, a.name, lastErr)
}

// reattachSlice re-resolves slice k's owner (waiting out any in-flight
// migration through the gate in resolve) and swaps in a freshly dialed,
// freshly attached leg. The previous leg is left to drain.
func (p *proxyConn) reattachSlice(a *splitAttach, k int) error {
	_, pl, err := p.r.resolve(a.name)
	if err != nil {
		return err
	}
	if pl == nil || pl.slices != a.slices {
		return fmt.Errorf("shard: dataset %q is no longer split %d ways", a.name, a.slices)
	}
	s := pl.owners[k]
	c, err := p.dialSplitLeg(s)
	if err != nil {
		return err
	}
	p.splitClients[s.Name+"\x00"+a.name] = c
	lo, hi := a.bounds(k)
	if _, err := c.OpenDatasetSlice(a.name, a.u, lo, hi); err != nil {
		return fmt.Errorf("shard: re-attaching slice %d of %q on shard %q: %w", k, a.name, s.Name, err)
	}
	a.swapOwner(k, c)
	return nil
}

// refuseChannel fails one channel with the typed per-channel frame the
// server would use, tombstoning the id so the one in-flight client
// frame lock-step permits is absorbed rather than fatal.
func (p *proxyConn) refuseChannel(id uint32, err error) error {
	typ := byte(wire.FrameErrorCh)
	if errors.Is(err, wire.ErrBudget) {
		typ = wire.FrameBudgetCh
	}
	p.pins.Retire(id, nil, true)
	return p.writeClient(typ, wire.EncodeChannel(id, []byte(err.Error())))
}

// splitQuery starts one interactive split conversation: the owner
// conversations open synchronously in the read loop (frame-arrival
// order pins the snapshot set), then a goroutine drives the fold.
func (p *proxyConn) splitQuery(id uint32, payload []byte) error {
	a := p.split
	_, body, err := wire.DecodeChannel(payload)
	if err != nil {
		return err
	}
	kind, params, err := wire.DecodeQuery(body)
	if err != nil {
		return err
	}
	comb, err := splitCombiner(kind, params)
	if err != nil {
		return p.refuseChannel(id, err)
	}
	convs, err := a.openConvs(kind, params)
	if err != nil {
		return err // an owner leg died: connection-fatal, like a lost backend
	}
	sc := &splitConv{ch: make(chan core.Msg, 4), done: make(chan struct{})}
	if _, err := p.pins.Open(id, sc, 0); err != nil {
		finishConvs(convs)
		return err
	}
	p.pumps.Add(1)
	go p.runSplitConv(id, sc, a, comb, kind, params, convs)
	return nil
}

// foldOpenings reads every owner's opening and folds them. A version
// skew (another connection's batch landed between our opens) finishes
// the stale conversations and reopens — bounded retries, because under
// concurrent ingest "the" version is whatever one consistent cut says.
func (p *proxyConn) foldOpenings(a *splitAttach, comb sumcheck.Combiner, kind wire.QueryKind, params wire.QueryParams, convs []*wire.PartialConv) (*core.SplitAggregator, core.Msg, []*wire.PartialConv, error) {
	f := p.r.field()
	for attempt := 0; ; attempt++ {
		parts := make([]core.Msg, len(convs))
		var err error
		for k, conv := range convs {
			if parts[k], err = conv.Msg(); err != nil {
				finishConvs(convs)
				return nil, core.Msg{}, convs, err
			}
		}
		agg, err := core.NewSplitAggregator(f, a.u, a.slices, comb, 0)
		if err != nil {
			finishConvs(convs)
			return nil, core.Msg{}, convs, err
		}
		opening, err := agg.Open(parts)
		if err == nil {
			return agg, opening, convs, nil
		}
		finishConvs(convs)
		if !errors.Is(err, core.ErrSplitVersion) || attempt >= 3 {
			return nil, core.Msg{}, convs, err
		}
		if convs, err = a.openConvs(kind, params); err != nil {
			return nil, core.Msg{}, convs, err
		}
	}
}

// runSplitRounds drives the aggregator from after Open to Done: each
// iteration consumes one verifier challenge and emits one folded prover
// message. Broadcast rounds fan the challenge to every owner and
// collect their partials; once the tail starts the owners are done and
// the aggregator folds alone.
func runSplitRounds(agg *core.SplitAggregator, convs []*wire.PartialConv, challenge func(j int) (core.Msg, error), emit func(core.Msg) error) error {
	for j := 0; !agg.Done(); j++ {
		m, err := challenge(j)
		if err != nil {
			return err
		}
		if len(m.Elems) != 1 {
			return fmt.Errorf("%w: challenge carries %d field elements, want 1", wire.ErrProtocol, len(m.Elems))
		}
		var out core.Msg
		if agg.Broadcast() {
			for _, conv := range convs {
				if err := conv.Challenge(m); err != nil {
					return err
				}
			}
			parts := make([]core.Msg, len(convs))
			for k, conv := range convs {
				if parts[k], err = conv.Msg(); err != nil {
					return err
				}
			}
			if out, err = agg.Collect(parts); err != nil {
				return err
			}
			if agg.TailStarted() {
				finishConvs(convs)
			}
		} else {
			if out, err = agg.Next(m.Elems[0]); err != nil {
				return err
			}
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

// runSplitConv is the conversation goroutine for one interactive split
// query: it plays the server's side of the mux conversation against the
// client while folding the owners underneath.
func (p *proxyConn) runSplitConv(id uint32, sc *splitConv, a *splitAttach, comb sumcheck.Combiner, kind wire.QueryKind, params wire.QueryParams, convs []*wire.PartialConv) {
	defer p.pumps.Done()
	fail := func(err error) {
		finishConvs(convs)
		typ := byte(wire.FrameErrorCh)
		if errors.Is(err, wire.ErrBudget) {
			typ = wire.FrameBudgetCh
		}
		p.pins.Retire(id, sc, true)
		sc.finish()
		_ = p.writeClient(typ, wire.EncodeChannel(id, []byte(err.Error())))
	}
	agg, opening, convs, err := p.foldOpenings(a, comb, kind, params, convs)
	if err != nil {
		fail(err)
		return
	}
	if err := p.writeClient(wire.FrameProverCh, wire.EncodeChannel(id, wire.EncodeMsg(opening))); err != nil {
		finishConvs(convs)
		p.pins.Retire(id, sc, true)
		return
	}
	challenge := func(int) (core.Msg, error) {
		select {
		case m := <-sc.ch:
			return m, nil
		case <-sc.done:
			return core.Msg{}, errSplitFinished
		case <-p.closing:
			return core.Msg{}, errSplitClosed
		}
	}
	emit := func(m core.Msg) error {
		return p.writeClient(wire.FrameProverCh, wire.EncodeChannel(id, wire.EncodeMsg(m)))
	}
	if err := runSplitRounds(agg, convs, challenge, emit); err != nil {
		if errors.Is(err, errSplitFinished) || errors.Is(err, errSplitClosed) {
			// The client walked away (or the proxy is closing): quiet
			// teardown, exactly as the server treats an early finish.
			finishConvs(convs)
			p.pins.Retire(id, sc, false)
			return
		}
		fail(err)
		return
	}
	finishConvs(convs)
	// Conversation complete: wait for the client's finish frame (routed
	// to sc by the read loop) before retiring the pin.
	select {
	case <-sc.done:
	case <-p.closing:
	}
	p.pins.Retire(id, sc, false)
}

// splitProofReq serves one PROOF request against a split dataset. The
// router assembles the Fiat–Shamir proof itself: the challenge stream
// is a pure function of the binding (core.SumcheckChallenges is pinned
// equal to the verifier's), so driving the owners with it and absorbing
// the folded messages into the binding's transcript reproduces the
// exact bytes a single engine's fs.Prove would cache.
func (p *proxyConn) splitProofReq(payload []byte) error {
	a := p.split
	id, body, err := wire.DecodeChannel(payload)
	if err != nil {
		return err
	}
	reqVersion, kind, params, err := wire.DecodeProofReq(body)
	if err != nil {
		return err
	}
	comb, err := splitCombiner(kind, params)
	if err != nil {
		return p.refuseChannel(id, err)
	}
	convs, err := a.openConvs(kind, params)
	if err != nil {
		return err
	}
	p.pumps.Add(1)
	go p.runSplitProof(id, a, comb, kind, params, reqVersion, convs)
	return nil
}

// runSplitProof folds the owners into an encoded proof, through the
// router's proof cache: one assembly per (dataset, version, query),
// shared by every requesting connection.
func (p *proxyConn) runSplitProof(id uint32, a *splitAttach, comb sumcheck.Combiner, kind wire.QueryKind, params wire.QueryParams, reqVersion uint64, convs []*wire.PartialConv) {
	defer p.pumps.Done()
	fail := func(err error) {
		finishConvs(convs)
		typ := byte(wire.FrameErrorCh)
		if errors.Is(err, wire.ErrBudget) {
			typ = wire.FrameBudgetCh
		}
		_ = p.writeClient(typ, wire.EncodeChannel(id, []byte(err.Error())))
	}
	agg, opening, convs, err := p.foldOpenings(a, comb, kind, params, convs)
	if err != nil {
		fail(err)
		return
	}
	if reqVersion != 0 && reqVersion != agg.Version() {
		// The server's version-pin refusal, verbatim.
		finishConvs(convs)
		_ = p.writeClient(wire.FrameErrorCh, wire.EncodeChannel(id, fmt.Appendf(nil,
			"proof version %d is not current (dataset %q is at version %d)", reqVersion, a.name, agg.Version())))
		return
	}
	f := p.r.field()
	binding := fs.Binding{
		Modulus:  f.Modulus(),
		Universe: a.u,
		Dataset:  a.name,
		Version:  agg.Version(),
		Query:    engine.FSQuery(kind, params),
	}
	key := proofcache.Key{Dataset: a.name, Version: agg.Version(), Query: string(binding.Query.Encode())}
	val, err := p.r.proofCacheRef().Get(key, func() ([]byte, error) {
		challenges, err := core.SumcheckChallenges(f, a.u, binding.RNG())
		if err != nil {
			return nil, err
		}
		msgs := []core.Msg{opening}
		chFn := func(j int) (core.Msg, error) {
			return core.Msg{Elems: []field.Elem{challenges[j]}}, nil
		}
		emit := func(m core.Msg) error { msgs = append(msgs, m); return nil }
		if err := runSplitRounds(agg, convs, chFn, emit); err != nil {
			return nil, err
		}
		t := binding.Transcript()
		for _, m := range msgs {
			t.AbsorbMsg("prover", m)
		}
		pf := &fs.Proof{Binding: binding, Messages: msgs, Digest: t.Digest()}
		return pf.Encode(), nil
	})
	// On a cache hit the owner conversations were opened and never
	// driven past their openings; Finish is idempotent either way.
	finishConvs(convs)
	if err != nil {
		fail(err)
		return
	}
	_ = p.writeClient(wire.FrameProofCh, wire.EncodeChannel(id, val))
}

// ---------------------------------------------------------------------
// Aggregated stats.

// AggregatedStats fans a stats request out to every shard and merges
// the replies: summed counters at the top level, the per-shard
// breakdown (plus the router's own split-proof cache, as "router")
// under Shards.
func (r *Router) AggregatedStats() (wire.ServerStats, error) {
	r.maybeReloadTable()
	r.mu.Lock()
	shards := append([]ShardInfo(nil), r.table.Shards...)
	r.mu.Unlock()
	agg := wire.ServerStats{Shards: make(map[string]wire.ServerStats, len(shards)+1)}
	add := func(name string, st wire.ServerStats) {
		agg.ProofCache.Hits += st.ProofCache.Hits
		agg.ProofCache.Misses += st.ProofCache.Misses
		agg.ProofCache.Evictions += st.ProofCache.Evictions
		agg.ProofCache.Coalesced += st.ProofCache.Coalesced
		agg.ProofCache.Bytes += st.ProofCache.Bytes
		agg.ProofCache.Entries += st.ProofCache.Entries
		agg.DatasetsRecovered += st.DatasetsRecovered
		for _, f := range st.RecoveryFailures {
			agg.RecoveryFailures = append(agg.RecoveryFailures, name+": "+f)
		}
		agg.Shards[name] = st
	}
	for _, s := range shards {
		conn, err := dialBackoff(s.Addr, r.DialTimeout, r.DialRetryBudget)
		if err != nil {
			return wire.ServerStats{}, fmt.Errorf("shard: stats from shard %q: %w", s.Name, err)
		}
		c := wire.NewClient(conn)
		if t := r.IdleTimeout; t > 0 {
			c.Timeout = t
		}
		st, err := c.ServerStats()
		_ = c.Close()
		if err != nil {
			return wire.ServerStats{}, fmt.Errorf("shard: stats from shard %q: %w", s.Name, err)
		}
		add(s.Name, st)
	}
	add("router", wire.ServerStats{ProofCache: r.proofCacheRef().Stats()})
	return agg, nil
}

// aggregatedStatsReply answers a client stats request with the merged
// fleet view (Router.AggregateStats mode).
func (p *proxyConn) aggregatedStatsReply() error {
	st, err := p.r.AggregatedStats()
	if err != nil {
		return err
	}
	b, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return p.writeClient(wire.FrameStatsResp, b)
}

// The mux-transparent proxy: one client-facing listener, one read loop
// per client connection, one lazily-dialed backend connection per
// (client connection, shard) pair.
//
// The router runs the same per-connection frame state machine as the
// server (wire.FlowState) so an illegal frame is refused at the edge
// with the server's exact error, and the same channel bookkeeping
// (wire.ChannelPins) so channel-scoped frames route to the backend
// whose dataset opened them — a connection that re-attaches to a second
// dataset keeps its in-flight conversations on the first dataset's
// shard. Frames are forwarded byte-for-byte in both directions: every
// typed refusal a shard emits (budget frames, "not current"
// proof-version errors, unknown query kinds) reaches the client
// unchanged, which is what lets sip.Client and wire.Client work against
// a router with zero API changes.
package shard

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/field"
	"repro/internal/proofcache"
	"repro/internal/wire"
)

// Router proxies the wire protocol over a set of engine shards.
// Configure the fields before Serve; they must not change afterwards
// (the routing table itself may, through Rebalance/SetTable).
type Router struct {
	// IdleTimeout bounds client-side reads and writes, mirroring
	// wire.Server.IdleTimeout. Zero means no deadline.
	IdleTimeout time.Duration
	// DialTimeout bounds each backend dial attempt (default 2s). A
	// backend dial retries with exponential backoff until DialRetryBudget
	// is spent, then the open is failed back to the client.
	DialTimeout time.Duration
	// DialRetryBudget bounds the total wall-clock time spent retrying a
	// backend dial (attempts plus backoff sleeps) before the failure
	// surfaces as ErrBackendUnavailable. Zero means the default 2s.
	DialRetryBudget time.Duration
	// TablePath, when set, is where Rebalance persists the flipped route
	// so it survives a router restart. A serving router also watches the
	// file: place() reloads it when its mtime changes, so a route flipped
	// by a separate process (`siprouter -rebalance`) takes effect without
	// restarting the router.
	TablePath string
	// Field is the prime field the shards compute in. Only the
	// split-universe fold needs it (the byte-forwarding paths are
	// field-agnostic); the zero value means field.Mersenne(), matching
	// the wire server's default.
	Field field.Field
	// AggregateStats, when set, makes the router answer a stats request
	// itself: it fans the request out to every shard and replies with the
	// summed counters plus a per-shard breakdown, instead of forwarding
	// to a single backend.
	AggregateStats bool
	// ProofCacheBudget caps the router's own split-proof cache (bytes) —
	// the cache that serves assembled Fiat–Shamir proofs for split
	// datasets, mirroring wire.Server's per-shard cache. Zero means
	// wire.DefaultProofCacheBudget.
	ProofCacheBudget int64

	mu         sync.Mutex
	table      *Table
	tableMTime time.Time                // mtime of TablePath at the last (re)load
	migrating  map[string]chan struct{} // dataset → closed when its migration settles
	lns        map[net.Listener]struct{}
	conns      map[net.Conn]struct{}
	closed     bool
	rr         int // round-robin cursor for v1 (nameless) placements
	handlers   sync.WaitGroup

	cacheOnce  sync.Once
	proofCache *proofcache.Cache // split-proof cache (lazy; see proofCacheRef)
}

// ErrRouterClosed is returned by Serve after Close.
var ErrRouterClosed = errors.New("shard: router closed")

// ErrBackendUnavailable wraps every backend dial failure after the
// retry budget is spent, so callers (and tests) can detect a dead shard
// with errors.Is rather than by error text.
var ErrBackendUnavailable = errors.New("shard: backend unavailable")

// ErrMigrationInFlight is returned by SetTable while a rebalance is
// mid-handoff: swapping the table then would race the migration's own
// route flip and could silently undo it.
var ErrMigrationInFlight = errors.New("shard: a migration is in flight; retry SetTable after it settles")

const dialBackoffFirst = 50 * time.Millisecond

// field returns the configured field, defaulting to the Mersenne-61
// field the wire server computes in.
func (r *Router) field() field.Field {
	if r.Field.Modulus() == 0 {
		return field.Mersenne()
	}
	return r.Field
}

// proofCacheRef lazily builds the router's split-proof cache.
func (r *Router) proofCacheRef() *proofcache.Cache {
	r.cacheOnce.Do(func() {
		budget := r.ProofCacheBudget
		if budget == 0 {
			budget = wire.DefaultProofCacheBudget
		}
		r.proofCache = proofcache.New(budget)
	})
	return r.proofCache
}

// NewRouter returns a router serving the given table.
func NewRouter(t *Table) (*Router, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	return &Router{
		table:     t,
		migrating: make(map[string]chan struct{}),
	}, nil
}

// Table returns the current routing table (a deep copy: shards,
// routes, and split specs are snapshotted).
func (r *Router) Table() Table {
	r.mu.Lock()
	defer r.mu.Unlock()
	return *r.table.clone()
}

// SetTable swaps the routing table (e.g. after an external edit). Live
// attachments keep their pinned backends; only new OPENs see the new
// placement. It fails with ErrMigrationInFlight while a rebalance is
// mid-handoff — the migration will flip a route on the table it started
// from, and a concurrent swap would drop that flip.
func (r *Router) SetTable(t *Table) error {
	if err := t.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.migrating) > 0 {
		return ErrMigrationInFlight
	}
	r.table = t
	return nil
}

// Serve accepts client connections until the listener closes. Each
// connection is proxied on its own goroutine. Serve may run on several
// listeners concurrently; Close stops them all.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRouterClosed
	}
	if r.lns == nil {
		r.lns = make(map[net.Listener]struct{})
	}
	r.lns[ln] = struct{}{}
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			if !closed {
				delete(r.lns, ln)
			}
			r.mu.Unlock()
			if closed {
				return ErrRouterClosed
			}
			return err
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return ErrRouterClosed
		}
		if r.conns == nil {
			r.conns = make(map[net.Conn]struct{})
		}
		r.conns[conn] = struct{}{}
		r.handlers.Add(1)
		r.mu.Unlock()
		go func() {
			defer r.handlers.Done()
			defer func() {
				conn.Close()
				r.mu.Lock()
				delete(r.conns, conn)
				r.mu.Unlock()
			}()
			p := newProxyConn(r, conn)
			err := p.loop()
			p.close()
			if err != nil && !errors.Is(err, io.EOF) {
				// The server's teardown contract: one final typed error
				// frame, then the close.
				_ = p.writeClient(wire.FrameError, []byte(err.Error()))
			}
		}()
	}
}

// Close stops every listener and live connection and waits the proxy
// goroutines out.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	lns := make([]net.Listener, 0, len(r.lns))
	for ln := range r.lns {
		lns = append(lns, ln)
	}
	r.lns = nil
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	var err error
	for _, ln := range lns {
		err = errors.Join(err, ln.Close())
	}
	for _, c := range conns {
		_ = c.Close()
	}
	r.handlers.Wait()
	return err
}

// migrationGate returns the channel to wait on if the dataset is mid-
// migration, nil otherwise.
func (r *Router) migrationGate(dataset string) <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.migrating[dataset]
}

// maybeReloadTable re-reads TablePath when the file's mtime has moved
// past the last load — the hot-reload path that makes a cross-process
// `siprouter -rebalance` visible to a running router. Errors (file
// vanished mid-edit, half-written JSON) leave the serving table
// untouched; the next placement retries.
func (r *Router) maybeReloadTable() {
	if r.TablePath == "" {
		return
	}
	// Stat, load, and install under one critical section: a reload that
	// read the file before a concurrent flip wrote it must not install
	// its (now stale) table after the flip's, or the flipped route would
	// silently revert.
	r.mu.Lock()
	defer r.mu.Unlock()
	fi, err := os.Stat(r.TablePath)
	if err != nil || fi.ModTime().Equal(r.tableMTime) {
		return
	}
	t, err := LoadTable(r.TablePath)
	if err != nil {
		return
	}
	r.table = t
	r.tableMTime = fi.ModTime()
}

// place resolves a dataset's shard against the current table, waiting
// out an in-flight migration of that dataset first — an OPEN that races
// a rebalance attaches to the new home, never to the released source.
func (r *Router) place(dataset string) (ShardInfo, error) {
	r.maybeReloadTable()
	for {
		ch := r.migrationGate(dataset)
		if ch == nil {
			break
		}
		gateTimeout := r.IdleTimeout
		if gateTimeout <= 0 {
			gateTimeout = time.Minute
		}
		select {
		case <-ch:
		case <-time.After(gateTimeout):
			return ShardInfo{}, fmt.Errorf("shard: dataset %q is mid-migration and did not settle within %v", dataset, gateTimeout)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.table.Place(dataset)
}

// splitPlacement is a resolved split dataset: its slice count and the
// owner shard of each slice, in slice order.
type splitPlacement struct {
	slices int
	owners []ShardInfo
}

// resolve is the split-aware placement: it waits out a migration of the
// dataset like place, then reports either the single owning shard or
// the dataset's split placement.
func (r *Router) resolve(dataset string) (ShardInfo, *splitPlacement, error) {
	r.maybeReloadTable()
	for {
		ch := r.migrationGate(dataset)
		if ch == nil {
			break
		}
		gateTimeout := r.IdleTimeout
		if gateTimeout <= 0 {
			gateTimeout = time.Minute
		}
		select {
		case <-ch:
		case <-time.After(gateTimeout):
			return ShardInfo{}, nil, fmt.Errorf("shard: dataset %q is mid-migration and did not settle within %v", dataset, gateTimeout)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if sp, ok := r.table.Splits[dataset]; ok {
		pl := &splitPlacement{slices: sp.Slices, owners: make([]ShardInfo, sp.Slices)}
		for k, name := range sp.Owners {
			s, ok := r.table.Shard(name)
			if !ok { // validate() forbids this; belt and braces
				return ShardInfo{}, nil, fmt.Errorf("shard: split dataset %q: slice %d owned by unknown shard %q", dataset, k, name)
			}
			pl.owners[k] = s
		}
		return ShardInfo{}, pl, nil
	}
	s, err := r.table.Place(dataset)
	return s, nil, err
}

// nextShard picks a shard round-robin — the placement for v1 private
// datasets, which have no name to hash.
func (r *Router) nextShard() ShardInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.table.Shards[r.rr%len(r.table.Shards)]
	r.rr++
	return s
}

// ---------------------------------------------------------------------
// proxyConn: one client connection's proxy state.

// backend is one shard-side connection owned by a proxyConn. Only the
// client read loop writes to it; its pump goroutine is the only reader.
type backend struct {
	shard ShardInfo
	conn  net.Conn
}

type proxyConn struct {
	r      *Router
	client net.Conn
	cwmu   sync.Mutex // serializes client-side frame writes (pumps + teardown)

	flow     wire.FlowState
	pins     *wire.ChannelPins   // channel id → *backend or *splitConv
	backends map[string]*backend // shard name → connection
	cur      *backend            // backend of the current attachment (nil when split)
	pumps    sync.WaitGroup
	closing  chan struct{} // closed when the proxy tears down

	// Split-universe state. A split dataset is served through per-slice
	// wire.Clients (the router speaks the partial-prover protocol to the
	// owners and folds), not through byte-pump backends.
	split        *splitAttach            // current attachment when it is split
	splitClients map[string]*wire.Client // shard name + "\x00" + dataset → slice client
	splitConns   []*wire.Client          // every slice client ever dialed (append-only, closed in close)
}

func newProxyConn(r *Router, conn net.Conn) *proxyConn {
	return &proxyConn{
		r:        r,
		client:   conn,
		pins:     wire.NewChannelPins(),
		backends: make(map[string]*backend),
		closing:  make(chan struct{}),
	}
}

func (p *proxyConn) close() {
	close(p.closing)
	for _, b := range p.backends {
		_ = b.conn.Close()
	}
	for _, c := range p.splitConns {
		_ = c.Close()
	}
	p.pumps.Wait()
}

// readClient receives one client frame under the idle deadline.
func (p *proxyConn) readClient() (byte, []byte, error) {
	if t := p.r.IdleTimeout; t > 0 {
		if err := p.client.SetReadDeadline(time.Now().Add(t)); err != nil {
			return 0, nil, err
		}
	}
	return wire.ReadFrame(p.client)
}

// writeClient sends one frame to the client, serialized against the
// backend pumps.
func (p *proxyConn) writeClient(typ byte, payload []byte) error {
	p.cwmu.Lock()
	defer p.cwmu.Unlock()
	if t := p.r.IdleTimeout; t > 0 {
		if err := p.client.SetWriteDeadline(time.Now().Add(t)); err != nil {
			return err
		}
	}
	return wire.WriteFrame(p.client, typ, payload)
}

// writeBackend forwards one frame to a shard. Only the client read loop
// calls it, so backend writes need no lock.
func (p *proxyConn) writeBackend(b *backend, typ byte, payload []byte) error {
	if t := p.r.IdleTimeout; t > 0 {
		if err := b.conn.SetWriteDeadline(time.Now().Add(t)); err != nil {
			return err
		}
	}
	if err := wire.WriteFrame(b.conn, typ, payload); err != nil {
		return fmt.Errorf("shard: forwarding to shard %q: %w", b.shard.Name, err)
	}
	return nil
}

// backendFor returns the connection to a shard, dialing it (with
// backoff) on first use by this client connection.
func (p *proxyConn) backendFor(s ShardInfo) (*backend, error) {
	if b := p.backends[s.Name]; b != nil {
		return b, nil
	}
	conn, err := dialBackoff(s.Addr, p.r.DialTimeout, p.r.DialRetryBudget)
	if err != nil {
		return nil, fmt.Errorf("shard: shard %q (%s) is unreachable: %w", s.Name, s.Addr, err)
	}
	b := &backend{shard: s, conn: conn}
	p.backends[s.Name] = b
	p.pumps.Add(1)
	go p.pump(b)
	return b, nil
}

// dialBackoff dials with exponential backoff under a total wall-clock
// budget: a shard mid-restart gets several chances, but a dead shard
// fails the client within the budget rather than after an unbounded
// attempts × timeout product. The per-attempt dial timeout is capped to
// the budget's remainder, so the last attempt cannot overshoot.
func dialBackoff(addr string, dialTimeout, budget time.Duration) (net.Conn, error) {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	if budget <= 0 {
		budget = 2 * time.Second
	}
	deadline := time.Now().Add(budget)
	var err error
	delay := dialBackoffFirst
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				break
			}
			if delay > remaining {
				delay = remaining
			}
			time.Sleep(delay)
			delay *= 2
		}
		perAttempt := dialTimeout
		if remaining := time.Until(deadline); remaining <= 0 {
			if attempt > 0 {
				break
			}
			// Always make at least one attempt, bounded by dialTimeout.
		} else if perAttempt > remaining {
			perAttempt = remaining
		}
		var conn net.Conn
		if conn, err = net.DialTimeout("tcp", addr, perAttempt); err == nil {
			return conn, nil
		}
	}
	return nil, fmt.Errorf("%w (%s): %v", ErrBackendUnavailable, addr, err)
}

// pump forwards one backend's frames to the client verbatim, retiring
// channel pins as the backend fails channels. If the backend dies while
// the client is live, the client connection is failed loudly (a typed
// error frame, then close) — its conversations on that shard are gone
// and a silent stall would strand them.
func (p *proxyConn) pump(b *backend) {
	defer p.pumps.Done()
	for {
		typ, payload, err := wire.ReadFrame(b.conn)
		if err != nil {
			select {
			case <-p.closing: // orderly teardown closed the backend under us
			default:
				_ = p.writeClient(wire.FrameError, fmt.Appendf(nil,
					"shard: connection to shard %q lost: %v", b.shard.Name, err))
				_ = p.client.Close() // unblocks the client read loop
			}
			return
		}
		if typ == wire.FrameErrorCh || typ == wire.FrameBudgetCh {
			// The shard failed this channel; drop the pin so the one
			// client frame lock-step allows is absorbed, exactly as the
			// server's own bookkeeping would.
			if id, err := wire.ChannelID(payload); err == nil {
				p.pins.Retire(id, b, true)
			}
		}
		if err := p.writeClient(typ, payload); err != nil {
			_ = p.client.Close()
			return
		}
	}
}

// loop is the client read loop: legality-check, place, forward.
func (p *proxyConn) loop() error {
	for {
		typ, payload, err := p.readClient()
		if err != nil {
			return err
		}
		// Serial conversation frames never reach the server's top-level
		// loop (its converse() consumes them), so FlowState has no rule
		// for them; the proxy sees every frame at top level and forwards
		// mid-conversation traffic to the attachment's shard.
		if typ == wire.FrameChallenge || typ == wire.FrameFinish {
			if p.cur == nil || !p.flow.Attached() {
				return fmt.Errorf("%w: unexpected frame 0x%02x", wire.ErrProtocol, typ)
			}
			if err := p.writeBackend(p.cur, typ, payload); err != nil {
				return err
			}
			continue
		}
		if err := p.flow.Advance(typ); err != nil {
			return err
		}
		switch typ {
		case wire.FrameHello:
			// A v1 private dataset has no name to place by; spread
			// connections round-robin.
			b, err := p.backendFor(p.r.nextShard())
			if err != nil {
				return err
			}
			p.cur, p.split = b, nil
			if err := p.writeBackend(b, typ, payload); err != nil {
				return err
			}
		case wire.FrameOpen:
			name, u, err := wire.DecodeOpen(payload)
			if err != nil {
				return err
			}
			s, pl, err := p.r.resolve(name)
			if err != nil {
				return err
			}
			if pl != nil {
				if err := p.openSplit(name, u, pl); err != nil {
					return err
				}
				continue
			}
			b, err := p.backendFor(s)
			if err != nil {
				return err
			}
			p.cur, p.split = b, nil
			if err := p.writeBackend(b, typ, payload); err != nil {
				return err
			}
		case wire.FrameOpenSlice:
			// Slices are the router's private leg to the owners; a client
			// attaches to the whole split dataset through a plain OPEN.
			return fmt.Errorf("%w: open-slice is a shard-facing frame; open the dataset by name and let the router split it", wire.ErrProtocol)
		case wire.FrameUpdates:
			if p.split != nil {
				if err := p.splitIngest(payload); err != nil {
					return err
				}
				continue
			}
			if err := p.writeBackend(p.cur, typ, payload); err != nil {
				return err
			}
		case wire.FrameEndStream, wire.FrameQuery:
			// FlowState guarantees an attachment exists. EndStream is v1-
			// only so it never has a split attachment; a serial Query on a
			// split dataset has no single transcript stream to forward.
			if p.split != nil {
				return fmt.Errorf("%w: a split dataset serves queries on mux channels only", wire.ErrProtocol)
			}
			if err := p.writeBackend(p.cur, typ, payload); err != nil {
				return err
			}
		case wire.FrameQueryCh:
			id, err := wire.ChannelID(payload)
			if err != nil {
				return err
			}
			if id == 0 {
				return fmt.Errorf("%w: channel id 0 is reserved for the control plane", wire.ErrProtocol)
			}
			if p.split != nil {
				if err := p.splitQuery(id, payload); err != nil {
					return err
				}
				continue
			}
			// Pin the conversation to the current attachment's shard: a
			// later OPEN moves cur, not in-flight conversations. The shard
			// enforces its own concurrency cap (limit 0 here), and its
			// budget refusal both passes through and unpins (see pump).
			if _, err := p.pins.Open(id, p.cur, 0); err != nil {
				return err
			}
			if err := p.writeBackend(p.cur, typ, payload); err != nil {
				return err
			}
		case wire.FramePartialQueryCh:
			// Router chaining: a downstream aggregator treats this router
			// as one slice owner. Pin and forward like QueryCh — unless the
			// attachment is split here too, which would nest aggregation.
			id, err := wire.ChannelID(payload)
			if err != nil {
				return err
			}
			if id == 0 {
				return fmt.Errorf("%w: channel id 0 is reserved for the control plane", wire.ErrProtocol)
			}
			if p.split != nil {
				if err := p.refuseChannel(id, fmt.Errorf("shard: partial conversations cannot nest: dataset is already split across shards")); err != nil {
					return err
				}
				continue
			}
			if _, err := p.pins.Open(id, p.cur, 0); err != nil {
				return err
			}
			if err := p.writeBackend(p.cur, typ, payload); err != nil {
				return err
			}
		case wire.FrameChallengeCh, wire.FrameFinishCh:
			id, err := wire.ChannelID(payload)
			if err != nil {
				return err
			}
			finish := typ == wire.FrameFinishCh
			owner, ok := p.pins.Route(id, finish)
			if !ok {
				return fmt.Errorf("%w: frame 0x%02x for unknown channel %d", wire.ErrProtocol, typ, id)
			}
			if owner == nil {
				continue // tombstone absorbed a frame that crossed the shard's error
			}
			if sc, split := owner.(*splitConv); split {
				if finish {
					// The conversation goroutine sees done, finishes the
					// owner legs, and retires the pin.
					sc.finish()
					continue
				}
				_, body, err := wire.DecodeChannel(payload)
				if err != nil {
					return err
				}
				m, err := wire.DecodeMsg(body)
				if err != nil {
					return err
				}
				select {
				case sc.ch <- m:
				case <-sc.done:
					// Conversation already over (error path retired it);
					// lock-step says at most one such frame is in flight.
				case <-p.closing:
				}
				continue
			}
			b := owner.(*backend)
			if err := p.writeBackend(b, typ, payload); err != nil {
				return err
			}
			if finish {
				// The finish frame ends the channel on the shard with no
				// reply; fully retire the pin.
				p.pins.Retire(id, b, false)
			}
		case wire.FrameProofReqCh:
			if p.split != nil {
				if err := p.splitProofReq(payload); err != nil {
					return err
				}
				continue
			}
			// One-shot request/response: the reply (or per-channel error)
			// comes straight back on the same backend, no pin needed.
			if err := p.writeBackend(p.cur, typ, payload); err != nil {
				return err
			}
		case wire.FrameHandoff, wire.FrameAdopt:
			// Admin frames place by the named dataset: a handoff reaches
			// the shard that currently serves it, an adopt the shard its
			// (already-flipped) route names. The rebalancer drives shards
			// directly (see rebalance.go); this path exists for operator
			// tooling pointed at the router.
			name, err := wire.DecodeName(payload)
			if err != nil {
				return err
			}
			s, pl, err := p.r.resolve(name)
			if err != nil {
				return err
			}
			if pl != nil {
				return fmt.Errorf("shard: dataset %q is split; move one slice at a time with RebalanceSlice", name)
			}
			b, err := p.backendFor(s)
			if err != nil {
				return err
			}
			if err := p.writeBackend(b, typ, payload); err != nil {
				return err
			}
		case wire.FrameStatsReq:
			if p.r.AggregateStats {
				if err := p.aggregatedStatsReply(); err != nil {
					return err
				}
				continue
			}
			// Stats are per shard; report the current attachment's, or the
			// first shard's for an unattached admin probe.
			b := p.cur
			if b == nil {
				r := p.r
				r.mu.Lock()
				s := r.table.Shards[0]
				r.mu.Unlock()
				if b, err = p.backendFor(s); err != nil {
					return err
				}
			}
			if err := p.writeBackend(b, typ, payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected frame 0x%02x", wire.ErrProtocol, typ)
		}
	}
}

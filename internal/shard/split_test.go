package shard

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/stream"
	"repro/internal/wire"
)

// seamKinds is the split-universe seam: the query kinds a split dataset
// can serve (engine.NewPartialProver's coverage).
func seamKinds() []struct {
	kind   wire.QueryKind
	params wire.QueryParams
} {
	return []struct {
		kind   wire.QueryKind
		params wire.QueryParams
	}{
		{wire.QuerySelfJoinSize, wire.QueryParams{}},
		{wire.QueryFk, wire.QueryParams{K: 3}},
		{wire.QueryRangeSum, wire.QueryParams{A: 17, B: 180}},
	}
}

// splitShards spins up `slices` shard servers and a router splitting
// the named dataset across all of them, one slice each.
func splitShards(t *testing.T, workers, slices int, dataset string) (routerAddr string, r *Router, tbl *Table) {
	t.Helper()
	var shards []ShardInfo
	owners := make([]string, slices)
	for k := 0; k < slices; k++ {
		name := fmt.Sprintf("s%d", k+1)
		dir := t.TempDir()
		srv := &wire.Server{F: f61, Workers: workers, DataDir: dir}
		addr, stop := startShard(t, srv)
		t.Cleanup(stop)
		shards = append(shards, ShardInfo{Name: name, Addr: addr, DataDir: dir})
		owners[k] = name
	}
	tbl = &Table{Shards: shards, Splits: map[string]*SplitSpec{dataset: {Slices: slices, Owners: owners}}}
	addr, r, stop := startRouter(t, tbl)
	t.Cleanup(stop)
	return addr, r, tbl
}

// runSeam runs the seam kinds over one attached client — serially or
// all overlapped — and returns each kind's recorded transcript.
func runSeam(t *testing.T, c *wire.Client, u uint64, ups []stream.Update, seedBase uint64, overlap bool) [][]core.Msg {
	t.Helper()
	kinds := seamKinds()
	out := make([][]core.Msg, len(kinds))
	recs := make([]*recordingVerifier, len(kinds))
	handles := make([]*wire.QueryHandle, len(kinds))
	for k, q := range kinds {
		v, obs := newVerifier(t, u, q.kind, q.params, seedBase+uint64(k))
		for _, up := range ups {
			if err := obs(up); err != nil {
				t.Fatal(err)
			}
		}
		recs[k] = &recordingVerifier{inner: v}
		if !overlap {
			if _, err := c.Query(q.kind, q.params, recs[k]); err != nil {
				t.Fatalf("kind %d: %v", q.kind, err)
			}
			out[k] = recs[k].msgs
			continue
		}
		h, err := c.QueryAsync(q.kind, q.params, recs[k])
		if err != nil {
			t.Fatalf("QueryAsync kind %d: %v", q.kind, err)
		}
		handles[k] = h
	}
	if overlap {
		for k, h := range handles {
			if _, err := h.Wait(); err != nil {
				t.Fatalf("kind %d rejected: %v", kinds[k].kind, err)
			}
			out[k] = recs[k].msgs
		}
	}
	return out
}

// TestSplitUniverseMatchesSingleEngine is the tentpole contract: a
// client pointed at a router splitting one dataset across S shards gets
// bit-identical transcripts — and bit-identical cached Fiat–Shamir
// proof bytes — to the same workload against one engine holding the
// whole dataset, for every seam kind, serial and overlapped, S ∈
// {1, 2, 4}, with and without worker parallelism on the shards.
func TestSplitUniverseMatchesSingleEngine(t *testing.T) {
	const u = 500 // pads to 512: S=4 slices of width 128
	ups := stream.UniformDeltas(u, 120, field.NewSplitMix64(8100))
	more := stream.UnitIncrements(u, 40, field.NewSplitMix64(8101))

	for _, workers := range []int{0, -1} {
		for _, slices := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("workers=%d/slices=%d", workers, slices), func(t *testing.T) {
				baseAddr, stopBase := startShard(t, &wire.Server{F: f61, Workers: workers})
				defer stopBase()
				routerAddr, r, _ := splitShards(t, workers, slices, "big")

				type run struct {
					serial, overlapped [][]core.Msg
					proofs             [][]byte
					count              uint64
				}
				drive := func(addr string, seedBase uint64) run {
					c := dialT(t, addr)
					if n, err := c.OpenDataset("big", u); err != nil || n != 0 {
						t.Fatalf("open: count %d, err %v", n, err)
					}
					if n, err := c.Ingest(ups); err != nil || n != uint64(len(ups)) {
						t.Fatalf("ingest: count %d, err %v", n, err)
					}
					// An empty batch must not skew the version on either path.
					if n, err := c.Ingest(nil); err != nil || n != uint64(len(ups)) {
						t.Fatalf("empty ingest: count %d, err %v", n, err)
					}
					serial := runSeam(t, c, u, ups, seedBase, false)
					count, err := c.Ingest(more)
					if err != nil {
						t.Fatal(err)
					}
					all := append(append([]stream.Update(nil), ups...), more...)
					overlapped := runSeam(t, c, u, all, seedBase+100, true)
					var proofs [][]byte
					for _, q := range seamKinds() {
						pf, err := c.FetchProof(q.kind, q.params, 0)
						if err != nil {
							t.Fatalf("proof kind %d: %v", q.kind, err)
						}
						// Fetch again: the second serve must come out identical
						// (and, on the router, from its split-proof cache).
						pf2, err := c.FetchProof(q.kind, q.params, 0)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(pf.Encode(), pf2.Encode()) {
							t.Fatalf("kind %d: repeated proof fetch returned different bytes", q.kind)
						}
						proofs = append(proofs, pf.Encode())
					}
					return run{serial: serial, overlapped: overlapped, proofs: proofs, count: count}
				}

				base := drive(baseAddr, 80_000)
				routed := drive(routerAddr, 80_000)
				if base.count != routed.count {
					t.Fatalf("update counts diverge: %d vs %d", base.count, routed.count)
				}
				for k := range base.serial {
					if err := sameTranscript(base.serial[k], routed.serial[k]); err != nil {
						t.Errorf("kind %d serial: %v", seamKinds()[k].kind, err)
					}
					if err := sameTranscript(base.overlapped[k], routed.overlapped[k]); err != nil {
						t.Errorf("kind %d overlapped: %v", seamKinds()[k].kind, err)
					}
					if !bytes.Equal(base.proofs[k], routed.proofs[k]) {
						t.Errorf("kind %d: split proof bytes differ from the single-engine proof", seamKinds()[k].kind)
					}
				}
				if st := r.proofCacheRef().Stats(); st.Hits == 0 || st.Misses == 0 {
					t.Errorf("router split-proof cache unused: %+v", st)
				}
			})
		}
	}
}

// TestSplitRefusals pins the split path's error discipline: serial
// queries and slice opens are connection-fatal protocol refusals,
// non-seam kinds and nested partials fail per-channel (the connection
// survives), version pins use the server's exact text, and admin moves
// of a split dataset point at RebalanceSlice.
func TestSplitRefusals(t *testing.T) {
	const u = 200
	routerAddr, _, _ := splitShards(t, 0, 2, "big")

	c := dialT(t, routerAddr)
	if _, err := c.OpenDataset("big", u); err != nil {
		t.Fatal(err)
	}
	ups := stream.UniformDeltas(u, 30, field.NewSplitMix64(8300))
	if _, err := c.Ingest(ups); err != nil {
		t.Fatal(err)
	}

	// Non-seam kind: per-channel refusal with the engine's typed text;
	// the connection keeps serving.
	v0, _ := newVerifier(t, u, wire.QueryF0, wire.QueryParams{}, 8301)
	if _, err := c.Query(wire.QueryF0, wire.QueryParams{}, v0); err == nil ||
		!strings.Contains(err.Error(), "split-universe seam") {
		t.Fatalf("F0 on a split dataset = %v, want a seam refusal", err)
	}
	// Nested partial: per-channel refusal, connection still live.
	conv, err := c.PartialQuery(wire.QuerySelfJoinSize, wire.QueryParams{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conv.Msg(); err == nil || !strings.Contains(err.Error(), "nest") {
		t.Fatalf("partial on a split dataset = %v, want a nesting refusal", err)
	}
	_ = conv.Finish()
	// Seam proof with a stale version pin: the server's exact refusal.
	if _, err := c.FetchProof(wire.QuerySelfJoinSize, wire.QueryParams{}, 99); err == nil ||
		!strings.Contains(err.Error(), "is not current") {
		t.Fatalf("stale version pin = %v, want the not-current refusal", err)
	}
	// Non-seam proof: per-channel seam refusal.
	if _, err := c.FetchProof(wire.QueryF0, wire.QueryParams{}, 0); err == nil ||
		!strings.Contains(err.Error(), "split-universe seam") {
		t.Fatalf("F0 proof = %v, want a seam refusal", err)
	}
	// The connection survived all four refusals: a seam query works.
	v, obs := newVerifier(t, u, wire.QuerySelfJoinSize, wire.QueryParams{}, 8302)
	for _, up := range ups {
		if err := obs(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, v); err != nil {
		t.Fatalf("seam query after refusals: %v", err)
	}
	// Whole-dataset handoff of a split dataset: refused by name.
	if _, err := c.Handoff("big"); err == nil || !strings.Contains(err.Error(), "RebalanceSlice") {
		t.Fatalf("handoff of a split dataset = %v, want a RebalanceSlice pointer", err)
	}

	// OpenDatasetSlice is shard-facing; from a client it is fatal.
	c2 := dialT(t, routerAddr)
	if _, err := c2.OpenDatasetSlice("big", u, 0, 128); err == nil ||
		!strings.Contains(err.Error(), "open the dataset by name") {
		t.Fatalf("client open-slice through router = %v, want a refusal", err)
	}
}

// TestSplitSliceRebalanceMidIngest moves one slice between shards while
// the client streams batches through the router. The proxy's delivery
// retry re-attaches to the slice's new home, so no acked batch is lost
// and the post-move data answers queries identically to an engine that
// saw exactly the acked stream.
func TestSplitSliceRebalanceMidIngest(t *testing.T) {
	const u = 200 // pads to 256; 2 slices of width 128
	const batches = 12

	var shards []ShardInfo
	for _, name := range []string{"s1", "s2", "s3"} {
		dir := t.TempDir()
		srv := &wire.Server{F: f61, DataDir: dir}
		addr, stop := startShard(t, srv)
		t.Cleanup(stop)
		shards = append(shards, ShardInfo{Name: name, Addr: addr, DataDir: dir})
	}
	tbl := &Table{Shards: shards, Splits: map[string]*SplitSpec{
		"big": {Slices: 2, Owners: []string{"s1", "s2"}},
	}}
	routerAddr, r, stop := startRouter(t, tbl)
	defer stop()

	mk := func(i int) []stream.Update {
		return stream.UnitIncrements(u, 16, field.NewSplitMix64(uint64(8400+i)))
	}
	c := dialT(t, routerAddr)
	if _, err := c.OpenDataset("big", u); err != nil {
		t.Fatal(err)
	}

	rebalanced := make(chan error, 1)
	var acked []stream.Update
	var ackedCount uint64
	for i := 0; i < batches; i++ {
		if i == 3 {
			go func() { rebalanced <- r.RebalanceSlice("big", 1, "s3") }()
		}
		batch := mk(i)
		for attempt := 0; ; attempt++ {
			count, err := c.Ingest(batch)
			if err == nil {
				ackedCount = count
				break
			}
			if attempt > 10 {
				t.Fatalf("batch %d: %v after %d attempts", i, err, attempt)
			}
			c.Close()
			c = dialT(t, routerAddr)
			if _, err := c.OpenDataset("big", u); err != nil {
				t.Fatalf("re-open after slice rebalance: %v", err)
			}
		}
		acked = append(acked, batch...)
	}
	if err := <-rebalanced; err != nil {
		t.Fatalf("slice rebalance: %v", err)
	}
	if ackedCount != uint64(len(acked)) {
		t.Fatalf("server count %d != acked updates %d: an acked batch was lost or doubled", ackedCount, len(acked))
	}
	if got := r.Table().Splits["big"].Owners; got[0] != "s1" || got[1] != "s3" {
		t.Fatalf("owners after slice rebalance = %v, want [s1 s3]", got)
	}
	// The moved slice lives on s3 (direct slice open, bypassing the
	// router) and holds its share of the acked updates.
	var want1 uint64
	for _, up := range acked {
		if up.Index >= 128 {
			want1++
		}
	}
	cd := dialT(t, shardAddr(tbl, "s3"))
	if count, err := cd.OpenDatasetSlice("big", u, 128, 256); err != nil || count != want1 {
		t.Fatalf("slice on s3: count = %d, err = %v, want %d", count, err, want1)
	}
	// A verifier that observed exactly the acked stream accepts through
	// the router against the new owner set.
	v, obs := newVerifier(t, u, wire.QuerySelfJoinSize, wire.QueryParams{}, 8499)
	for _, up := range acked {
		if err := obs(up); err != nil {
			t.Fatal(err)
		}
	}
	c2 := dialT(t, routerAddr)
	if n, err := c2.OpenDataset("big", u); err != nil || n != ackedCount {
		t.Fatalf("re-open after move: count %d, err %v", n, err)
	}
	if _, err := c2.Query(wire.QuerySelfJoinSize, wire.QueryParams{}, v); err != nil {
		t.Fatalf("query after slice rebalance rejected: %v", err)
	}
}

// TestDialBackoffBudget: a dead backend fails typed within the retry
// budget, not after an unbounded attempts × timeout product.
func TestDialBackoffBudget(t *testing.T) {
	// A listener opened and immediately closed: a port that refuses.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	_, err = dialBackoff(deadAddr, time.Second, 300*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial of a dead address succeeded")
	}
	if !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("dial error %v is not ErrBackendUnavailable", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("dead dial took %v, want within the ~300ms budget (plus scheduling slack)", elapsed)
	}

	// Through the router: a client opening a dataset routed to the dead
	// shard sees the typed failure promptly.
	tbl := &Table{
		Shards: []ShardInfo{{Name: "dead", Addr: deadAddr}},
		Routes: map[string]string{"ds": "dead"},
	}
	r, err := NewRouter(tbl)
	if err != nil {
		t.Fatal(err)
	}
	r.DialRetryBudget = 300 * time.Millisecond
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.Serve(rln) }()
	defer r.Close()

	c := dialT(t, rln.Addr().String())
	start = time.Now()
	_, err = c.OpenDataset("ds", 64)
	elapsed = time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "backend unavailable") {
		t.Fatalf("open against a dead shard = %v, want a backend-unavailable refusal", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dead-shard open took %v, want bounded by the dial retry budget", elapsed)
	}
}

// TestTableSwapRaces hammers SetTable, hot-reload, and OPEN placement
// around a live Rebalance under the race detector. The invariant: no
// OPEN ever lands on a stale route after the flip — which would observe
// a freshly recreated, EMPTY dataset on the released source.
func TestTableSwapRaces(t *testing.T) {
	const u = 128
	var shards []ShardInfo
	for _, name := range []string{"s1", "s2"} {
		dir := t.TempDir()
		srv := &wire.Server{F: f61, DataDir: dir}
		addr, stop := startShard(t, srv)
		t.Cleanup(stop)
		shards = append(shards, ShardInfo{Name: name, Addr: addr, DataDir: dir})
	}
	path := t.TempDir() + "/table.json"
	tbl := &Table{Shards: shards, Routes: map[string]string{"hot": "s1"}}
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(tbl)
	if err != nil {
		t.Fatal(err)
	}
	r.TablePath = path
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.Serve(ln) }()
	defer r.Close()
	routerAddr := ln.Addr().String()

	c := dialT(t, routerAddr)
	if _, err := c.OpenDataset("hot", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(stream.UnitIncrements(u, 64, field.NewSplitMix64(8600))); err != nil {
		t.Fatal(err)
	}
	c.Close()

	done := make(chan struct{})
	// Set once the migration starts: from then on the hammers stop
	// persisting snapshots (a snapshot taken before the flip and saved
	// or installed after it would revert the route — that is operator
	// garbage-in, not a router race, so the test does not model it).
	var migrating atomic.Bool
	var wg sync.WaitGroup
	// OPEN hammer: every successful attach must see the ingested count.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			cc, err := wire.Dial(routerAddr)
			if err != nil {
				continue
			}
			cc.Timeout = 30 * time.Second
			count, err := cc.OpenDataset("hot", u)
			cc.Close()
			if err == nil && count == 0 {
				t.Error("OPEN attached to a stale route: dataset recreated empty on the released source")
				return
			}
		}
	}()
	// SetTable hammer: swap in fresh snapshots; mid-migration swaps must
	// be refused, never clobber the flip.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if migrating.Load() {
				continue
			}
			snap := r.Table()
			if err := r.SetTable(&snap); err != nil && !errors.Is(err, ErrMigrationInFlight) {
				t.Errorf("SetTable: %v", err)
				return
			}
		}
	}()
	// Hot-reload hammer: persist fresh snapshots and force reloads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if !migrating.Load() {
				snap := r.Table()
				if err := snap.Save(path); err != nil {
					t.Errorf("save: %v", err)
					return
				}
			}
			// The flip itself rewrites the file, so post-migration
			// reloads still do real work.
			r.maybeReloadTable()
		}
	}()

	time.Sleep(20 * time.Millisecond)
	migrating.Store(true)
	if err := r.Rebalance("hot", "s2"); err != nil {
		t.Fatalf("rebalance under churn: %v", err)
	}
	// Let the hammers chew on the post-flip state before stopping.
	time.Sleep(50 * time.Millisecond)
	close(done)
	wg.Wait()

	if got := r.Table().Routes["hot"]; got != "s2" {
		t.Fatalf("route after rebalance = %q, want s2", got)
	}
	cc := dialT(t, routerAddr)
	if count, err := cc.OpenDataset("hot", u); err != nil || count != 64 {
		t.Fatalf("post-race open: count = %d, err = %v, want 64", count, err)
	}
}

// TestAggregatedStats: with AggregateStats set, one stats request fans
// out to every shard and merges — summed proof-cache counters, the
// per-shard breakdown, and the router's own split-proof cache under
// "router".
func TestAggregatedStats(t *testing.T) {
	const u = 200
	var shards []ShardInfo
	for _, name := range []string{"s1", "s2"} {
		srv := &wire.Server{F: f61}
		addr, stop := startShard(t, srv)
		t.Cleanup(stop)
		shards = append(shards, ShardInfo{Name: name, Addr: addr})
	}
	tbl := &Table{
		Shards: shards,
		Routes: map[string]string{"solo": "s1"},
		Splits: map[string]*SplitSpec{"big": {Slices: 2, Owners: []string{"s1", "s2"}}},
	}
	r, err := NewRouter(tbl)
	if err != nil {
		t.Fatal(err)
	}
	r.AggregateStats = true
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.Serve(ln) }()
	defer r.Close()
	routerAddr := ln.Addr().String()

	ups := stream.UniformDeltas(u, 30, field.NewSplitMix64(8700))
	// One whole-dataset proof (lands in s1's cache) and one split proof
	// (lands in the router's own cache).
	c1 := dialT(t, routerAddr)
	if _, err := c1.OpenDataset("solo", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.FetchProof(wire.QuerySelfJoinSize, wire.QueryParams{}, 0); err != nil {
		t.Fatal(err)
	}
	c2 := dialT(t, routerAddr)
	if _, err := c2.OpenDataset("big", u); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Ingest(ups); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.FetchProof(wire.QuerySelfJoinSize, wire.QueryParams{}, 0); err != nil {
		t.Fatal(err)
	}

	st, err := c2.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("breakdown has %d entries (%v), want s1, s2, router", len(st.Shards), st.Shards)
	}
	for _, name := range []string{"s1", "s2", "router"} {
		if _, ok := st.Shards[name]; !ok {
			t.Fatalf("breakdown is missing %q: %v", name, st.Shards)
		}
	}
	if st.Shards["s1"].ProofCache.Misses != 1 {
		t.Errorf("s1 misses = %d, want 1 (the solo proof)", st.Shards["s1"].ProofCache.Misses)
	}
	if st.Shards["router"].ProofCache.Misses != 1 {
		t.Errorf("router misses = %d, want 1 (the split proof)", st.Shards["router"].ProofCache.Misses)
	}
	wantMisses := st.Shards["s1"].ProofCache.Misses + st.Shards["s2"].ProofCache.Misses + st.Shards["router"].ProofCache.Misses
	if st.ProofCache.Misses != wantMisses {
		t.Errorf("summed misses = %d, want %d", st.ProofCache.Misses, wantMisses)
	}
	// The direct method agrees with the wire reply.
	direct, err := r.AggregatedStats()
	if err != nil {
		t.Fatal(err)
	}
	if direct.ProofCache.Misses != st.ProofCache.Misses {
		t.Errorf("AggregatedStats misses = %d, wire reply said %d", direct.ProofCache.Misses, st.ProofCache.Misses)
	}
}

// TestSplitTableRoundTrip: split specs survive save/load, and validate
// rejects the malformed ones.
func TestSplitTableRoundTrip(t *testing.T) {
	shards := []ShardInfo{{Name: "a", Addr: "x:1"}, {Name: "b", Addr: "x:2"}, {Name: "c", Addr: "x:3"}}
	tbl := &Table{
		Shards: shards,
		Splits: map[string]*SplitSpec{"big": {Slices: 2, Owners: []string{"a", "b"}}},
	}
	path := t.TempDir() + "/table.json"
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	sp := got.Splits["big"]
	if sp == nil || sp.Slices != 2 || sp.Owners[0] != "a" || sp.Owners[1] != "b" {
		t.Fatalf("round trip mangled the split spec: %+v", sp)
	}
	if _, err := got.Place("big"); err == nil {
		t.Fatal("Place on a split dataset must error: it has no single home")
	}

	bad := []Table{
		{Shards: shards, Splits: map[string]*SplitSpec{"x": {Slices: 3, Owners: []string{"a", "b", "c"}}}},                            // not a power of two
		{Shards: shards, Splits: map[string]*SplitSpec{"x": {Slices: 2, Owners: []string{"a"}}}},                                      // owner count mismatch
		{Shards: shards, Splits: map[string]*SplitSpec{"x": {Slices: 2, Owners: []string{"a", "a"}}}},                                 // duplicate owner
		{Shards: shards, Splits: map[string]*SplitSpec{"x": {Slices: 2, Owners: []string{"a", "nope"}}}},                              // unknown owner
		{Shards: shards, Routes: map[string]string{"x": "a"}, Splits: map[string]*SplitSpec{"x": {Slices: 1, Owners: []string{"b"}}}}, // routed and split
	}
	for i := range bad {
		if err := bad[i].validate(); err == nil {
			t.Errorf("malformed table %d validated", i)
		}
	}

	// A deep clone is isolated from later mutation.
	cl := tbl.clone()
	tbl.Splits["big"].Owners[0] = "c"
	if cl.Splits["big"].Owners[0] != "a" {
		t.Fatal("clone shares owner storage with the original")
	}
}

// TestSetTableRefusedMidMigration: while any migration gate is open,
// SetTable is refused with the typed error (a swapped-in table could
// silently revert the flip the migration is about to make).
func TestSetTableRefusedMidMigration(t *testing.T) {
	tbl := &Table{Shards: []ShardInfo{{Name: "a", Addr: "x:1"}, {Name: "b", Addr: "x:2"}}}
	r, err := NewRouter(tbl)
	if err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	gate := make(chan struct{})
	r.migrating["ds"] = gate
	r.mu.Unlock()

	snap := r.Table()
	if err := r.SetTable(&snap); !errors.Is(err, ErrMigrationInFlight) {
		t.Fatalf("SetTable during a migration = %v, want ErrMigrationInFlight", err)
	}
	r.mu.Lock()
	close(gate)
	delete(r.migrating, "ds")
	r.mu.Unlock()
	if err := r.SetTable(&snap); err != nil {
		t.Fatalf("SetTable after the migration settled: %v", err)
	}
}

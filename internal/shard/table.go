// Package shard is the horizontal scaling layer of the prover service:
// a router that owns the client-facing listener and spreads named
// datasets across N independent engine processes ("shards"), speaking
// the v2 mux wire protocol transparently in both directions.
//
// Placement is per dataset, not per connection: an OPEN frame names a
// dataset, the router places it (consistent hashing over the shard set,
// overridable per dataset through the routing table), pins the
// connection's attachment to that shard, and from then on forwards
// conversation, PROOF, and ingest frames by channel id. A sip.Client or
// wire.Client pointed at the router works unchanged — typed refusals
// (budget frames, "not current" proof-version errors, unknown query
// kinds) pass through byte-for-byte.
//
// Rebalancing is checkpoint handoff, not state streaming: the source
// engine persists and releases the dataset (engine.Release), the router
// moves the checkpoint file between shard data dirs, the target adopts
// it (engine.Adopt), and the route flips. The checkpoint codec is
// deterministic and the field image a pure function of the counts, so
// transcripts and cached-proof bytes are bit-identical across the move.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
)

// ShardInfo names one engine process: its registry name, the address
// its wire.Server listens on, and the data dir its checkpoints live in
// (the rebalancer moves .ckpt files between these dirs, so they must be
// reachable from wherever the rebalance runs).
type ShardInfo struct {
	Name    string
	Addr    string
	DataDir string
}

// Table is the routing state: the shard set plus explicit per-dataset
// placement overrides. Datasets without an override place by consistent
// hashing over the shard names, so adding a shard moves ~1/N of the
// unpinned datasets and a rebalance pins exactly the dataset it moved.
// The zero Routes map is valid (everything hashes).
type Table struct {
	Shards []ShardInfo
	// Routes maps dataset name → shard name, overriding the hash ring.
	// Rebalance writes the moved dataset's new home here, so a route,
	// once flipped, survives shard-set changes.
	Routes map[string]string `json:",omitempty"`
	// Splits maps dataset name → split-universe placement: the dataset
	// is too large for one engine, so each listed owner holds one
	// power-of-two slice of its padded universe and the router folds
	// their partial-prover messages into the single transcript a client
	// sees. A dataset is either routed or split, never both.
	Splits map[string]*SplitSpec `json:",omitempty"`
}

// SplitSpec places one split-universe dataset: slice k of Slices lives
// on shard Owners[k]. Slices must be a power of two (the sum-check
// folds the index space in half per round, so the slice boundary must
// sit on a fold boundary) and each owner must be a distinct registered
// shard — one slice per shard keeps the on-disk checkpoint name
// (derived from the dataset name alone) collision-free within a data
// dir.
type SplitSpec struct {
	Slices int
	Owners []string
}

// vnodesPerShard is the ring multiplicity: enough virtual nodes that
// the keyspace splits within a few percent of evenly for small N.
const vnodesPerShard = 150

// Shard returns the shard registered under name.
func (t *Table) Shard(name string) (ShardInfo, bool) {
	for _, s := range t.Shards {
		if s.Name == name {
			return s, true
		}
	}
	return ShardInfo{}, false
}

// Place resolves the shard serving a dataset: the explicit route if one
// is pinned, the consistent-hash owner otherwise.
func (t *Table) Place(dataset string) (ShardInfo, error) {
	if len(t.Shards) == 0 {
		return ShardInfo{}, fmt.Errorf("shard: table has no shards")
	}
	if _, split := t.Splits[dataset]; split {
		return ShardInfo{}, fmt.Errorf("shard: dataset %q is split across shards; it has no single placement", dataset)
	}
	if want, ok := t.Routes[dataset]; ok {
		s, ok := t.Shard(want)
		if !ok {
			return ShardInfo{}, fmt.Errorf("shard: dataset %q is routed to unknown shard %q", dataset, want)
		}
		return s, nil
	}
	ring := t.ring()
	h := hash64(dataset)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].point >= h })
	if i == len(ring) {
		i = 0 // wrap: the successor of the largest point is the smallest
	}
	return t.Shards[ring[i].shard], nil
}

type ringEntry struct {
	point uint64
	shard int // index into Shards
}

// ring builds the sorted consistent-hash ring. Rebuilt per placement:
// placement happens once per OPEN frame, not per query, and N·vnodes is
// tiny; keeping the table a plain value keeps reload/serialize trivial.
func (t *Table) ring() []ringEntry {
	ring := make([]ringEntry, 0, len(t.Shards)*vnodesPerShard)
	for si, s := range t.Shards {
		for v := 0; v < vnodesPerShard; v++ {
			ring = append(ring, ringEntry{point: hash64(fmt.Sprintf("%s#%d", s.Name, v)), shard: si})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].point < ring[j].point })
	return ring
}

// hash64 is FNV-1a over the key, passed through a SplitMix64-style
// finalizer. FNV is stable across processes and Go versions — which a
// routing hash must be (a map-seeded hash would place datasets
// differently on every restart) — but on its own it avalanches the high
// bits poorly for keys differing only in trailing bytes: sequential
// dataset names ("ds-00", "ds-01", …) would hash within a span far
// smaller than one vnode arc and all land on the same shard. The
// finalizer spreads them across the ring.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the SplitMix64 output permutation (Steele et al.), a
// fixed bijection with full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// validate rejects tables the router cannot serve from.
func (t *Table) validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("shard: table has no shards")
	}
	seen := make(map[string]struct{}, len(t.Shards))
	for _, s := range t.Shards {
		if s.Name == "" || s.Addr == "" {
			return fmt.Errorf("shard: every shard needs a name and an address (got %+v)", s)
		}
		if _, dup := seen[s.Name]; dup {
			return fmt.Errorf("shard: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = struct{}{}
	}
	for ds, want := range t.Routes {
		if _, ok := t.Shard(want); !ok {
			return fmt.Errorf("shard: dataset %q is routed to unknown shard %q", ds, want)
		}
	}
	for ds, sp := range t.Splits {
		if sp == nil {
			return fmt.Errorf("shard: split dataset %q has no spec", ds)
		}
		if _, routed := t.Routes[ds]; routed {
			return fmt.Errorf("shard: dataset %q is both routed and split", ds)
		}
		if sp.Slices < 1 || sp.Slices&(sp.Slices-1) != 0 {
			return fmt.Errorf("shard: split dataset %q: slice count %d is not a power of two", ds, sp.Slices)
		}
		if len(sp.Owners) != sp.Slices {
			return fmt.Errorf("shard: split dataset %q: %d owners for %d slices", ds, len(sp.Owners), sp.Slices)
		}
		owners := make(map[string]struct{}, len(sp.Owners))
		for k, name := range sp.Owners {
			if _, ok := t.Shard(name); !ok {
				return fmt.Errorf("shard: split dataset %q: slice %d owned by unknown shard %q", ds, k, name)
			}
			if _, dup := owners[name]; dup {
				return fmt.Errorf("shard: split dataset %q: shard %q owns more than one slice", ds, name)
			}
			owners[name] = struct{}{}
		}
	}
	return nil
}

// clone deep-copies the table, so a snapshot handed out (or marshaled
// for Save) is immune to later in-place flips under the router's lock.
func (t *Table) clone() *Table {
	c := &Table{Shards: append([]ShardInfo(nil), t.Shards...)}
	if t.Routes != nil {
		c.Routes = make(map[string]string, len(t.Routes))
		for ds, s := range t.Routes {
			c.Routes[ds] = s
		}
	}
	if t.Splits != nil {
		c.Splits = make(map[string]*SplitSpec, len(t.Splits))
		for ds, sp := range t.Splits {
			c.Splits[ds] = &SplitSpec{Slices: sp.Slices, Owners: append([]string(nil), sp.Owners...)}
		}
	}
	return c
}

// LoadTable reads a routing table from its JSON file.
func LoadTable(path string) (*Table, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Table
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("shard: parsing table %s: %w", path, err)
	}
	if err := t.validate(); err != nil {
		return nil, fmt.Errorf("shard: table %s: %w", path, err)
	}
	return &t, nil
}

// Save writes the table back as JSON (atomically: temp file + rename),
// so a route flipped by a rebalance survives a router restart.
func (t *Table) Save(path string) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

package core

import (
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

// TestPolarizationIdentity verifies §3.2's observation that the inner
// product reduces to three F2 computations:
//
//	F2(a+b) = F2(a) + F2(b) + 2·⟨a,b⟩
//
// by running four independent verified protocols (three F2, one inner
// product) and checking the identity between their *verified* outputs.
func TestPolarizationIdentity(t *testing.T) {
	const u = 256
	rng := field.NewSplitMix64(701)
	upsA := stream.UniformDeltas(u, 40, rng)
	upsB := stream.UniformDeltas(u, 40, rng)
	both := append(append([]stream.Update(nil), upsA...), upsB...)

	runF2 := func(ups []stream.Update, seed uint64) field.Elem {
		proto, err := NewSelfJoinSize(f61, u)
		if err != nil {
			t.Fatal(err)
		}
		v := proto.NewVerifier(field.NewSplitMix64(seed))
		p := proto.NewProver()
		observeAll(t, v, ups)
		observeAll(t, p, ups)
		if _, err := Run(p, v); err != nil {
			t.Fatalf("F2 rejected: %v", err)
		}
		res, err := v.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	f2A := runF2(upsA, 702)
	f2B := runF2(upsB, 703)
	f2AB := runF2(both, 704)

	ipProto, err := NewInnerProduct(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	v := ipProto.NewVerifier(field.NewSplitMix64(705))
	p := ipProto.NewProver()
	for _, up := range upsA {
		if err := v.ObserveA(up); err != nil {
			t.Fatal(err)
		}
		if err := p.ObserveA(up); err != nil {
			t.Fatal(err)
		}
	}
	for _, up := range upsB {
		if err := v.ObserveB(up); err != nil {
			t.Fatal(err)
		}
		if err := p.ObserveB(up); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(p, v); err != nil {
		t.Fatalf("inner product rejected: %v", err)
	}
	ip, err := v.Result()
	if err != nil {
		t.Fatal(err)
	}

	lhs := f2AB
	rhs := f61.Add(f61.Add(f2A, f2B), f61.Mul(2, ip))
	if lhs != rhs {
		t.Fatalf("polarization identity violated: F2(a+b)=%d, F2(a)+F2(b)+2⟨a,b⟩=%d", lhs, rhs)
	}
}

// TestRangeSumEqualsInnerProduct verifies that RANGE-SUM is "a special
// case of INNER PRODUCT" (§3.2): running the generic inner-product
// protocol with an explicitly streamed indicator vector must agree with
// the range-sum protocol, whose verifier computes the indicator's LDE
// analytically in O(log² u).
func TestRangeSumEqualsInnerProduct(t *testing.T) {
	const u = 512
	qL, qR := uint64(100), uint64(300)
	rng := field.NewSplitMix64(706)
	pairs, err := stream.DistinctKV(u, 80, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	ups := stream.KVUpdates(pairs)

	// Range-sum protocol.
	rsProto, err := NewRangeSum(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	rsV := rsProto.NewVerifier(field.NewSplitMix64(707))
	rsP := rsProto.NewProver()
	observeAll(t, rsV, ups)
	observeAll(t, rsP, ups)
	if err := rsV.SetQuery(qL, qR); err != nil {
		t.Fatal(err)
	}
	if err := rsP.SetQuery(qL, qR); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(rsP, rsV); err != nil {
		t.Fatalf("range-sum rejected: %v", err)
	}
	rsResult, err := rsV.Result()
	if err != nil {
		t.Fatal(err)
	}

	// Generic inner product with the indicator streamed as vector b.
	ipProto, err := NewInnerProduct(f61, u)
	if err != nil {
		t.Fatal(err)
	}
	ipV := ipProto.NewVerifier(field.NewSplitMix64(708))
	ipP := ipProto.NewProver()
	for _, up := range ups {
		if err := ipV.ObserveA(up); err != nil {
			t.Fatal(err)
		}
		if err := ipP.ObserveA(up); err != nil {
			t.Fatal(err)
		}
	}
	for i := qL; i <= qR; i++ {
		ind := stream.Update{Index: i, Delta: 1}
		if err := ipV.ObserveB(ind); err != nil {
			t.Fatal(err)
		}
		if err := ipP.ObserveB(ind); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(ipP, ipV); err != nil {
		t.Fatalf("inner product rejected: %v", err)
	}
	ipResult, err := ipV.Result()
	if err != nil {
		t.Fatal(err)
	}
	if rsResult != ipResult {
		t.Fatalf("range-sum %d ≠ inner product with indicator %d", rsResult, ipResult)
	}
}

// TestFkViaMultiEqualsSingle: batched and standalone protocols agree on
// every slot.
func TestFkViaMultiEqualsSingle(t *testing.T) {
	const u = 128
	rng := field.NewSplitMix64(709)
	ups := stream.UniformDeltas(u, 25, rng)
	multi, err := NewMultiFk(f61, u, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	mv := multi.NewVerifier(field.NewSplitMix64(710))
	mp := multi.NewProver()
	for _, up := range ups {
		for slot := 0; slot < 3; slot++ {
			if err := mv.Observe(slot, up); err != nil {
				t.Fatal(err)
			}
			if err := mp.Observe(slot, up); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := Run(mp, mv); err != nil {
		t.Fatalf("batch rejected: %v", err)
	}
	results, err := mv.Results()
	if err != nil {
		t.Fatal(err)
	}
	for slot, k := range []int{1, 2, 3} {
		if want := refFk(t, ups, u, k); results[slot] != want {
			t.Fatalf("slot %d (F%d) = %d, want %d", slot, k, results[slot], want)
		}
	}
}

package core

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/hashtree"
	"repro/internal/stream"
)

// HeavyHitters is the protocol of §6.1: report every item whose frequency
// is at least φn, with frequencies, such that no heavy hitter can be
// omitted. The verifier maintains the root of the count-augmented hash
// tree in O(log u) words; the prover reveals, level by level from the
// leaves, the children of every heavy node (subtree count ≥ φn). Light
// children of heavy parents act as witnesses that none of their
// descendants are heavy. Cost: (1/φ · log u, 1/φ · log u) with log u
// rounds.
//
// Frequencies must be non-negative (insert-only streams, or deletions
// that never drive a count below zero): the count-monotonicity that makes
// "parent of a heavy node is heavy" true is what guarantees completeness.
type HeavyHitters struct {
	F      field.Field
	Params hashtree.Params

	// Workers is the prover's parallel fan-out for building each hash-tree
	// level; see SubVector.Workers.
	Workers int
}

// NewHeavyHitters returns the protocol for universes of size ≥ u.
func NewHeavyHitters(f field.Field, u uint64) (*HeavyHitters, error) {
	params, err := hashtree.ParamsForUniverse(u)
	if err != nil {
		return nil, err
	}
	if !f.Valid() {
		return nil, fmt.Errorf("core: invalid field")
	}
	return &HeavyHitters{F: f, Params: params}, nil
}

// HeavyHitter is one verified heavy item.
type HeavyHitter struct {
	Index uint64
	Count int64
}

// Threshold converts the fraction φ and stream length n into the absolute
// count threshold: an item is heavy iff count ≥ max(1, ⌈φn⌉). Both
// parties derive it identically.
func Threshold(phi float64, n int64) int64 {
	t := int64(math.Ceil(phi * float64(n)))
	if t < 1 {
		t = 1
	}
	return t
}

// hhNode is a parsed (index, count, hash) triple from a round message.
type hhNode struct {
	idx   uint64
	count int64
	hash  field.Elem
}

// parseHHMsg decodes a level message: Ints = [idx0, count0, idx1, count1,
// …], Elems = [hash0, hash1, …]. It validates sortedness, sibling-pair
// completeness, canonical hashes, and non-negative counts.
func parseHHMsg(f field.Field, m Msg, levelSize uint64) ([]hhNode, error) {
	if len(m.Ints)%2 != 0 || len(m.Ints)/2 != len(m.Elems) {
		return nil, reject("heavy-hitters message shape invalid (%d ints, %d elems)", len(m.Ints), len(m.Elems))
	}
	nodes := make([]hhNode, len(m.Elems))
	for i := range nodes {
		idx, cnt := m.Ints[2*i], m.Ints[2*i+1]
		if idx >= levelSize {
			return nil, reject("node index %d outside level of size %d", idx, levelSize)
		}
		if cnt > math.MaxInt64 {
			return nil, reject("count %d out of range", cnt)
		}
		h := m.Elems[i]
		if uint64(h) >= f.Modulus() {
			return nil, reject("node hash not canonical")
		}
		nodes[i] = hhNode{idx: idx, count: int64(cnt), hash: h}
		if i > 0 && nodes[i-1].idx >= idx {
			return nil, reject("nodes not strictly increasing at index %d", idx)
		}
	}
	// Sibling pairs must be complete: (2k, 2k+1) adjacent.
	if len(nodes)%2 != 0 {
		return nil, reject("heavy-hitters message has unpaired node")
	}
	for i := 0; i < len(nodes); i += 2 {
		if nodes[i].idx&1 != 0 || nodes[i+1].idx != nodes[i].idx+1 {
			return nil, reject("nodes %d,%d are not a sibling pair", nodes[i].idx, nodes[i+1].idx)
		}
	}
	return nodes, nil
}

// HeavyHittersVerifier runs the verifier side.
type HeavyHittersVerifier struct {
	proto *HeavyHitters
	h     *hashtree.Hasher
	root  *hashtree.RootEvaluator

	phi      float64
	hasQuery bool

	threshold int64
	level     int               // index l of the next expected message M_l
	computed  map[uint64]hhNode // C_level: heavy nodes at 'level' computed from M_{level-1}
	result    []HeavyHitter
	done      bool
}

// NewVerifier samples the augmented per-level randomness (r_j, q_j) and
// returns a verifier ready to observe the stream.
func (p *HeavyHitters) NewVerifier(rng field.RNG) *HeavyHittersVerifier {
	h := hashtree.NewAugmentedHasher(p.F, p.Params, hashtree.Affine, rng)
	return &HeavyHittersVerifier{proto: p, h: h, root: hashtree.NewRootEvaluator(h)}
}

// Observe folds one stream update into the augmented root.
func (v *HeavyHittersVerifier) Observe(up stream.Update) error {
	return v.root.Update(up.Index, up.Delta)
}

// SetQuery fixes the heaviness fraction φ ∈ (0, 1].
func (v *HeavyHittersVerifier) SetQuery(phi float64) error {
	if !(phi > 0 && phi <= 1) {
		return fmt.Errorf("core: heavy-hitters fraction %v outside (0,1]", phi)
	}
	v.phi, v.hasQuery = phi, true
	return nil
}

// Begin consumes M_0: the leaf children of every heavy level-1 node.
func (v *HeavyHittersVerifier) Begin(opening Msg) (Msg, bool, error) {
	if !v.hasQuery {
		return Msg{}, false, fmt.Errorf("core: heavy-hitters query not set")
	}
	if v.computed != nil || v.done {
		return Msg{}, false, fmt.Errorf("core: heavy-hitters verifier already started")
	}
	n := v.root.Total()
	if n < 0 {
		return Msg{}, false, fmt.Errorf("core: heavy hitters undefined for negative total %d", n)
	}
	v.threshold = Threshold(v.phi, n)
	nodes, err := parseHHMsg(v.proto.F, opening, v.proto.Params.U)
	if err != nil {
		return Msg{}, false, err
	}
	f := v.proto.F
	for _, nd := range nodes {
		// Leaf hashes are the field image of the count.
		if nd.hash != f.FromInt64(nd.count) {
			return Msg{}, false, reject("leaf %d hash/count mismatch", nd.idx)
		}
		if nd.count < 0 {
			return Msg{}, false, reject("leaf %d has negative count", nd.idx)
		}
		if nd.count >= v.threshold {
			v.result = append(v.result, HeavyHitter{Index: nd.idx, Count: nd.count})
		}
	}
	return v.fold(nodes, nil)
}

// Step consumes M_level for level = 1 .. D-1.
func (v *HeavyHittersVerifier) Step(response Msg) (Msg, bool, error) {
	if v.computed == nil || v.done {
		return Msg{}, false, fmt.Errorf("core: heavy-hitters verifier not mid-conversation")
	}
	levelSize := v.proto.Params.U >> v.level
	nodes, err := parseHHMsg(v.proto.F, response, levelSize)
	if err != nil {
		return Msg{}, false, err
	}
	// Cross-check against the nodes computed from the previous message:
	// every computed heavy node must reappear with identical hash and
	// count; new nodes must be light.
	seen := 0
	for _, nd := range nodes {
		if c, ok := v.computed[nd.idx]; ok {
			if c.count != nd.count || c.hash != nd.hash {
				return Msg{}, false, reject("level %d node %d mismatches computed value", v.level, nd.idx)
			}
			seen++
		} else {
			if nd.count < 0 {
				return Msg{}, false, reject("level %d node %d has negative count", v.level, nd.idx)
			}
			if nd.count >= v.threshold {
				return Msg{}, false, reject("level %d node %d claims heavy but its children were never revealed", v.level, nd.idx)
			}
		}
	}
	if seen != len(v.computed) {
		return Msg{}, false, reject("level %d omits %d verified heavy nodes", v.level, len(v.computed)-seen)
	}
	return v.fold(nodes, v.computed)
}

// fold computes the parents of the provided sibling pairs, checks they are
// heavy, and either finishes at the root or emits the next (r, q) reveal.
func (v *HeavyHittersVerifier) fold(nodes []hhNode, _ map[uint64]hhNode) (Msg, bool, error) {
	f := v.proto.F
	childLevel := v.level
	parents := make(map[uint64]hhNode, len(nodes)/2)
	for i := 0; i < len(nodes); i += 2 {
		l, r := nodes[i], nodes[i+1]
		count := l.count + r.count
		hash := v.h.Combine(childLevel+1, l.hash, r.hash, f.FromInt64(count))
		parents[l.idx>>1] = hhNode{idx: l.idx >> 1, count: count, hash: hash}
	}
	// Every revealed pair must justify itself: its parent is heavy.
	for _, p := range parents {
		if p.count < v.threshold {
			return Msg{}, false, reject("level %d node %d revealed children but is light (%d < %d)",
				childLevel+1, p.idx, p.count, v.threshold)
		}
	}
	v.level++
	v.computed = parents

	if v.level == v.proto.Params.D {
		// The parents are the root (or nothing, for an empty stream).
		var rootHash field.Elem
		var rootCount int64
		if p, ok := parents[0]; ok {
			rootHash, rootCount = p.hash, p.count
		}
		if len(parents) > 1 {
			return Msg{}, false, reject("multiple roots reconstructed")
		}
		if rootHash != v.root.Root() {
			return Msg{}, false, reject("reconstructed root %d ≠ streamed root %d", rootHash, v.root.Root())
		}
		if rootCount != v.root.Total() {
			return Msg{}, false, reject("reconstructed total %d ≠ streamed total %d", rootCount, v.root.Total())
		}
		v.done = true
		return Msg{}, true, nil
	}
	// Reveal (r_level, q_level) so the prover can hash the current level.
	return Msg{Elems: []field.Elem{v.h.R[v.level-1], v.h.Q[v.level-1]}}, false, nil
}

// Result returns the verified heavy hitters (ascending index order) and
// the threshold that was applied.
func (v *HeavyHittersVerifier) Result() ([]HeavyHitter, int64, error) {
	if !v.done {
		return nil, 0, fmt.Errorf("core: heavy-hitters result unavailable before acceptance")
	}
	return v.result, v.threshold, nil
}

// SpaceWords reports the verifier's working memory: the 2d level
// parameters, root and n, plus the per-level frontier of heavy nodes
// (O(1/φ) words, as in the paper's (1/φ log u, 1/φ log u) accounting).
func (v *HeavyHittersVerifier) SpaceWords() int {
	return v.root.SpaceWords() + 3*len(v.computed)
}

// ---------------------------------------------------------------------

// HeavyHittersProver runs the prover side: it maintains the dense
// frequency table and total Σδ over the stream (O(u) words, independent
// of stream length), builds the count skeleton at Open, and hashes one
// level per revealed (r, q).
type HeavyHittersProver struct {
	proto *HeavyHitters
	// counts is owned (mutated by Observe) for streaming provers; shared
	// read-only for snapshot-built provers.
	counts   []int64
	total    int64
	shared   bool
	tree     *hashtree.IncrementalTree
	phi      float64
	hasQuery bool

	threshold int64
}

// NewProver returns a prover ready to observe the stream.
func (p *HeavyHitters) NewProver() *HeavyHittersProver {
	return &HeavyHittersProver{proto: p, counts: make([]int64, p.Params.U)}
}

// NewProverFromCounts returns a prover over a shared dense count table
// (length Params.U) with the given stream total Σδ — the maintained state
// of a dataset engine. Construction replays nothing; the transcript is
// bit-identical to a streaming prover whose stream aggregates to the same
// table and total.
func (p *HeavyHitters) NewProverFromCounts(counts []int64, total int64) (*HeavyHittersProver, error) {
	if uint64(len(counts)) != p.Params.U {
		return nil, fmt.Errorf("core: count table has %d entries, want %d", len(counts), p.Params.U)
	}
	return &HeavyHittersProver{proto: p, counts: counts, total: total, shared: true}, nil
}

// Observe folds one stream update into the frequency table.
func (pr *HeavyHittersProver) Observe(up stream.Update) error {
	if pr.shared {
		return fmt.Errorf("core: prover built from a snapshot cannot observe updates")
	}
	if up.Index >= pr.proto.Params.U {
		return fmt.Errorf("core: index %d outside universe [0,%d)", up.Index, pr.proto.Params.U)
	}
	pr.counts[up.Index] += up.Delta
	pr.total += up.Delta
	return nil
}

// SetQuery fixes the heaviness fraction φ.
func (pr *HeavyHittersProver) SetQuery(phi float64) error {
	if !(phi > 0 && phi <= 1) {
		return fmt.Errorf("core: heavy-hitters fraction %v outside (0,1]", phi)
	}
	pr.phi, pr.hasQuery = phi, true
	return nil
}

// Open builds the count skeleton and emits M_0.
func (pr *HeavyHittersProver) Open() (Msg, error) {
	if !pr.hasQuery {
		return Msg{}, fmt.Errorf("core: heavy-hitters query not set")
	}
	tree, err := hashtree.NewIncrementalFromCounts(pr.proto.F, pr.proto.Params, hashtree.Affine, pr.counts)
	if err != nil {
		return Msg{}, err
	}
	tree.Workers = pr.proto.Workers
	pr.tree = tree
	pr.threshold = Threshold(pr.phi, pr.total)
	return pr.levelMsg(0)
}

// Step consumes the revealed (r_l, q_l), hashes level l, and emits M_l.
func (pr *HeavyHittersProver) Step(challenge Msg) (Msg, error) {
	if pr.tree == nil {
		return Msg{}, fmt.Errorf("core: heavy-hitters prover not opened")
	}
	if len(challenge.Elems) != 2 {
		return Msg{}, fmt.Errorf("core: heavy-hitters challenge has %d elems, want 2", len(challenge.Elems))
	}
	if err := pr.tree.Extend(challenge.Elems[0], challenge.Elems[1]); err != nil {
		return Msg{}, err
	}
	return pr.levelMsg(pr.tree.BuiltLevels())
}

func (pr *HeavyHittersProver) levelMsg(l int) (Msg, error) {
	kids, err := pr.tree.HeavyChildren(l, pr.threshold)
	if err != nil {
		return Msg{}, err
	}
	var msg Msg
	for _, nd := range kids {
		if nd.Count < 0 {
			return Msg{}, fmt.Errorf("core: heavy hitters require non-negative frequencies (node %d has %d)", nd.Index, nd.Count)
		}
		msg.Ints = append(msg.Ints, nd.Index, uint64(nd.Count))
		msg.Elems = append(msg.Elems, nd.Hash)
	}
	return msg, nil
}

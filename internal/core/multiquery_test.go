package core

import (
	"errors"
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

// TestMultiFkEndToEnd: a batch of F2, F3 and F4 queries over two distinct
// streams, verified in one conversation sharing a single random point
// (§7 "Multiple Queries").
func TestMultiFkEndToEnd(t *testing.T) {
	const u = 512
	proto, err := NewMultiFk(f61, u, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(601)
	upsA := stream.UniformDeltas(u, 30, rng)
	upsB := stream.UnitIncrements(u, 2000, rng)

	v := proto.NewVerifier(rng)
	p := proto.NewProver()
	// Slots 0 and 1 watch stream A; slot 2 watches stream B.
	for _, up := range upsA {
		for _, slot := range []int{0, 1} {
			if err := v.Observe(slot, up); err != nil {
				t.Fatal(err)
			}
			if err := p.Observe(slot, up); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, up := range upsB {
		if err := v.Observe(2, up); err != nil {
			t.Fatal(err)
		}
		if err := p.Observe(2, up); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := Run(p, v)
	if err != nil {
		t.Fatalf("batch rejected: %v", err)
	}
	results, err := v.Results()
	if err != nil {
		t.Fatal(err)
	}
	if want := refFk(t, upsA, u, 2); results[0] != want {
		t.Fatalf("slot 0 (F2) = %d, want %d", results[0], want)
	}
	if want := refFk(t, upsA, u, 3); results[1] != want {
		t.Fatalf("slot 1 (F3) = %d, want %d", results[1], want)
	}
	if want := refFk(t, upsB, u, 4); results[2] != want {
		t.Fatalf("slot 2 (F4) = %d, want %d", results[2], want)
	}
	// Direct-sum accounting: d rounds total (not 3d), message sizes sum.
	d := proto.Params.D
	if stats.Rounds != d {
		t.Fatalf("rounds = %d, want %d (shared schedule)", stats.Rounds, d)
	}
	wantWords := 3 + d*(3+4+5) + (d - 1)
	if stats.CommWords() != wantWords {
		t.Fatalf("comm = %d words, want %d", stats.CommWords(), wantWords)
	}
}

// TestMultiFkTamperOneSlot: corrupting any single slot's polynomial in
// the batch rejects the whole conversation.
func TestMultiFkTamperOneSlot(t *testing.T) {
	const u = 128
	proto, err := NewMultiFk(f61, u, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := field.NewSplitMix64(602)
	ups := stream.UniformDeltas(u, 20, rng)
	for _, corruptPos := range []int{2, 5} { // slot 0's g, then slot 1's g
		v := proto.NewVerifier(field.NewSplitMix64(603))
		p := proto.NewProver()
		for _, up := range ups {
			for slot := 0; slot < 2; slot++ {
				if err := v.Observe(slot, up); err != nil {
					t.Fatal(err)
				}
				if err := p.Observe(slot, up); err != nil {
					t.Fatal(err)
				}
			}
		}
		pos := corruptPos
		tp := &TamperedProver{P: p, T: func(r int, m Msg) Msg {
			if r == 2 && pos < len(m.Elems) {
				m.Elems[pos]++
			}
			return m
		}}
		if _, err := Run(tp, v); !errors.Is(err, ErrRejected) {
			t.Fatalf("corrupting batched position %d not rejected: %v", pos, err)
		}
	}
}

func TestMultiFkValidation(t *testing.T) {
	if _, err := NewMultiFk(f61, 64, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := NewMultiFk(f61, 64, []int{2, 0}); err == nil {
		t.Error("zero-order moment accepted")
	}
	proto, err := NewMultiFk(f61, 64, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	v := proto.NewVerifier(field.NewSplitMix64(604))
	if err := v.Observe(1, stream.Update{}); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, _, err := v.Begin(Msg{Elems: make([]field.Elem, 2)}); err == nil {
		t.Error("short opening accepted")
	}
	p := proto.NewProver()
	if err := p.Observe(0, stream.Update{Index: 64, Delta: 1}); err == nil {
		t.Error("out-of-universe update accepted")
	}
	if _, err := p.Step(Msg{Elems: []field.Elem{1}}); err == nil {
		t.Error("step before open accepted")
	}
}

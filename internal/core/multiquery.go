package core

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/stream"
	"repro/internal/sumcheck"
)

// MultiFk implements the "Multiple Queries" direct-sum observation of the
// paper's §7: "it is safe to run multiple queries in parallel
// round-by-round using the same randomly chosen values, and obtain the
// same guarantees for each query."
//
// A batch of frequency-moment queries — over distinct streams and/or
// distinct moment orders — shares one secret point r and one challenge
// schedule. Round j carries all g_j^{(q)} polynomials in one message, and
// one challenge r_j answers them all, so the batch costs one protocol's
// rounds and the *sum* of the message sizes, instead of independent
// randomness and bookkeeping per query.
//
// (Re-running a protocol *sequentially* with the same randomness remains
// unsafe — after a conversation the prover knows r. Parallel composition
// is safe precisely because every round-j message across the batch is
// committed before r_j is revealed.)
type MultiFk struct {
	F      field.Field
	Params lde.Params
	Ks     []int // moment order per query slot

	// Workers is the prover's parallel fan-out, shared by every slot; see
	// Fk.Workers.
	Workers int
}

// NewMultiFk returns a batch protocol with one slot per entry of ks, all
// over the same universe decomposition (ℓ=2).
func NewMultiFk(f field.Field, u uint64, ks []int) (*MultiFk, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("core: empty query batch")
	}
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return nil, err
	}
	for _, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("core: frequency moment order %d < 1", k)
		}
		cfg := sumcheck.Config{Field: f, Params: params, Combiner: sumcheck.Power{K: k}}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
	}
	return &MultiFk{F: f, Params: params, Ks: append([]int(nil), ks...)}, nil
}

func (p *MultiFk) cfg(slot int) sumcheck.Config {
	return sumcheck.Config{Field: p.F, Params: p.Params, Combiner: sumcheck.Power{K: p.Ks[slot]}, Workers: p.Workers}
}

// batchLen is the number of field elements all slots' round messages
// occupy together.
func (p *MultiFk) batchLen() int {
	n := 0
	for slot := range p.Ks {
		n += p.cfg(slot).MessageLen()
	}
	return n
}

// MultiFkVerifier runs all slots' verifiers against one challenge
// schedule.
type MultiFkVerifier struct {
	proto  *MultiFk
	pt     *lde.Point
	evs    []*lde.Evaluator
	scs    []*sumcheck.Verifier
	claims []field.Elem
	done   bool
}

// NewVerifier samples the single shared point r.
func (p *MultiFk) NewVerifier(rng field.RNG) *MultiFkVerifier {
	pt := lde.RandomPoint(p.F, p.Params, rng)
	evs := make([]*lde.Evaluator, len(p.Ks))
	for i := range evs {
		evs[i] = lde.NewEvaluator(pt)
	}
	return &MultiFkVerifier{proto: p, pt: pt, evs: evs}
}

// Observe folds one update of the slot-th stream. Queries over the same
// stream simply Observe identical updates into their slots.
func (v *MultiFkVerifier) Observe(slot int, up stream.Update) error {
	if slot < 0 || slot >= len(v.evs) {
		return fmt.Errorf("core: slot %d out of range", slot)
	}
	return v.evs[slot].Update(up.Index, up.Delta)
}

// Begin consumes the batched opening: all claims, then all slots' g_1
// evaluations, concatenated in slot order.
func (v *MultiFkVerifier) Begin(opening Msg) (Msg, bool, error) {
	if v.scs != nil {
		return Msg{}, false, fmt.Errorf("core: multi-query verifier already started")
	}
	want := len(v.proto.Ks) + v.proto.batchLen()
	if len(opening.Ints) != 0 || len(opening.Elems) != want {
		return Msg{}, false, reject("multi-query opening has %d elems, want %d", len(opening.Elems), want)
	}
	v.claims = append([]field.Elem(nil), opening.Elems[:len(v.proto.Ks)]...)
	v.scs = make([]*sumcheck.Verifier, len(v.proto.Ks))
	for slot := range v.proto.Ks {
		expected := v.proto.F.Pow(v.evs[slot].Value(), uint64(v.proto.Ks[slot]))
		sc, err := sumcheck.NewVerifier(v.proto.cfg(slot), v.pt.R, v.claims[slot], expected)
		if err != nil {
			return Msg{}, false, err
		}
		v.scs[slot] = sc
	}
	return v.absorb(opening.Elems[len(v.proto.Ks):])
}

// Step consumes one batched round message.
func (v *MultiFkVerifier) Step(response Msg) (Msg, bool, error) {
	if v.scs == nil || v.done {
		return Msg{}, false, fmt.Errorf("core: multi-query verifier not mid-conversation")
	}
	if len(response.Ints) != 0 || len(response.Elems) != v.proto.batchLen() {
		return Msg{}, false, reject("multi-query round has %d elems, want %d", len(response.Elems), v.proto.batchLen())
	}
	return v.absorb(response.Elems)
}

func (v *MultiFkVerifier) absorb(elems []field.Elem) (Msg, bool, error) {
	off := 0
	for slot, sc := range v.scs {
		n := v.proto.cfg(slot).MessageLen()
		if err := sc.Receive(elems[off : off+n]); err != nil {
			return Msg{}, false, reject("slot %d: %v", slot, err)
		}
		off += n
	}
	if v.scs[0].Done() {
		v.done = true
		return Msg{}, true, nil
	}
	// One shared challenge answers every slot (they run in lockstep, so
	// all Challenge() values are the same coordinate of r).
	ch, err := v.scs[0].Challenge()
	if err != nil {
		return Msg{}, false, err
	}
	return Msg{Elems: []field.Elem{ch}}, false, nil
}

// Results returns all verified moments, in slot order.
func (v *MultiFkVerifier) Results() ([]field.Elem, error) {
	if !v.done {
		return nil, fmt.Errorf("core: multi-query results unavailable before acceptance")
	}
	return append([]field.Elem(nil), v.claims...), nil
}

// MultiFkProver holds one table per slot.
type MultiFkProver struct {
	proto  *MultiFk
	tables [][]field.Elem
	scs    []*sumcheck.Prover
}

// NewProver returns a prover with one table per slot.
func (p *MultiFk) NewProver() *MultiFkProver {
	tables := make([][]field.Elem, len(p.Ks))
	for i := range tables {
		tables[i] = make([]field.Elem, p.Params.U)
	}
	return &MultiFkProver{proto: p, tables: tables}
}

// Observe folds one update of the slot-th stream.
func (pr *MultiFkProver) Observe(slot int, up stream.Update) error {
	if slot < 0 || slot >= len(pr.tables) {
		return fmt.Errorf("core: slot %d out of range", slot)
	}
	if up.Index >= pr.proto.Params.U {
		return fmt.Errorf("core: index %d outside universe [0,%d)", up.Index, pr.proto.Params.U)
	}
	f := pr.proto.F
	pr.tables[slot][up.Index] = f.Add(pr.tables[slot][up.Index], f.FromInt64(up.Delta))
	return nil
}

// Open emits all claims followed by all slots' round-1 polynomials.
func (pr *MultiFkProver) Open() (Msg, error) {
	pr.scs = make([]*sumcheck.Prover, len(pr.proto.Ks))
	claims := make([]field.Elem, len(pr.proto.Ks))
	var body []field.Elem
	for slot := range pr.proto.Ks {
		sc, err := sumcheck.NewProver(pr.proto.cfg(slot), pr.tables[slot])
		if err != nil {
			return Msg{}, err
		}
		pr.scs[slot] = sc
		claims[slot] = sc.Total()
		g1, err := sc.RoundMessage()
		if err != nil {
			return Msg{}, err
		}
		body = append(body, g1...)
	}
	return Msg{Elems: append(claims, body...)}, nil
}

// Step folds the shared challenge into every slot and emits the batched
// next-round message.
func (pr *MultiFkProver) Step(challenge Msg) (Msg, error) {
	if pr.scs == nil {
		return Msg{}, fmt.Errorf("core: multi-query prover not opened")
	}
	if len(challenge.Elems) != 1 {
		return Msg{}, fmt.Errorf("core: challenge has %d elems, want 1", len(challenge.Elems))
	}
	var body []field.Elem
	for _, sc := range pr.scs {
		if err := sc.Fold(challenge.Elems[0]); err != nil {
			return Msg{}, err
		}
		g, err := sc.RoundMessage()
		if err != nil {
			return Msg{}, err
		}
		body = append(body, g...)
	}
	return Msg{Elems: body}, nil
}

package core

import (
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

// The FromTable / FromCounts constructors let a dataset engine build
// prover sessions from maintained aggregate state instead of stream
// replay. These tests pin the core-level contract: identical transcripts
// to the streaming path, strict length validation, and immutability of
// the borrowed state. (The full per-kind transcript matrix lives in
// internal/engine.)

func TestFkProverFromTableMatchesStreaming(t *testing.T) {
	f := field.Mersenne()
	const u = 300
	ups := stream.UniformDeltas(u, 50, field.NewSplitMix64(31))

	proto, err := NewFk(f, u, 2)
	if err != nil {
		t.Fatal(err)
	}
	streamed := proto.NewProver()
	table := make([]field.Elem, proto.Params.U)
	for _, up := range ups {
		if err := streamed.Observe(up); err != nil {
			t.Fatal(err)
		}
		table[up.Index] = f.Add(table[up.Index], f.FromInt64(up.Delta))
	}
	shared, err := proto.NewProverFromTable(table)
	if err != nil {
		t.Fatal(err)
	}

	for i, pr := range []*FkProver{streamed, shared} {
		v := proto.NewVerifier(field.NewSplitMix64(32))
		for _, up := range ups {
			if err := v.Observe(up); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := Run(pr, v); err != nil {
			t.Fatalf("prover %d rejected: %v", i, err)
		}
	}
	if err := shared.Observe(stream.Update{Index: 0, Delta: 1}); err == nil {
		t.Fatal("shared-table prover accepted an update")
	}
}

func TestFromStateLengthValidation(t *testing.T) {
	f := field.Mersenne()
	const u = 128
	short := make([]field.Elem, 7)
	shortCounts := make([]int64, 7)

	fk, err := NewFk(f, u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fk.NewProverFromTable(short); err == nil {
		t.Error("Fk accepted a short table")
	}
	rs, err := NewRangeSum(f, u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.NewProverFromTable(short); err == nil {
		t.Error("RangeSum accepted a short table")
	}
	sv, err := NewSubVector(f, u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.NewProverFromCounts(shortCounts); err == nil {
		t.Error("SubVector accepted a short count table")
	}
	hh, err := NewHeavyHitters(f, u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hh.NewProverFromCounts(shortCounts, 0); err == nil {
		t.Error("HeavyHitters accepted a short count table")
	}
	fb, err := NewF0(f, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fb.NewProverFromCounts(shortCounts, 0); err == nil {
		t.Error("FrequencyBased accepted a short count table")
	}
	fm, err := NewFmax(f, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm.NewProverFromCounts(shortCounts, 0); err == nil {
		t.Error("Fmax accepted a short count table")
	}
}

func TestTreeProverFromCountsRefusesObserve(t *testing.T) {
	f := field.Mersenne()
	const u = 64
	counts := make([]int64, u)
	counts[3] = 2

	sv, err := NewSubVector(f, u)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := sv.NewProverFromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Observe(stream.Update{Index: 1, Delta: 1}); err == nil {
		t.Error("SubVector snapshot prover accepted an update")
	}
	hh, err := NewHeavyHitters(f, u)
	if err != nil {
		t.Fatal(err)
	}
	hpr, err := hh.NewProverFromCounts(counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := hpr.Observe(stream.Update{Index: 1, Delta: 1}); err == nil {
		t.Error("HeavyHitters snapshot prover accepted an update")
	}
	if counts[1] != 0 {
		t.Error("borrowed counts mutated")
	}
}

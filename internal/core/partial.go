// Split-universe sessions: the distributed form of the §3 aggregation
// protocols, built on the partial-prover seam in internal/sumcheck.
//
// A dataset too large for one prover is split into S contiguous,
// aligned slices of its (padded) universe. Each slice owner runs a
// PartialProver session: its opening and round messages are exact
// partials of the single-prover messages, summed elementwise by an
// aggregator sitting between the verifier and the S owners. After the
// head rounds have folded each slice to a single entry per table (its
// "leaves"), the aggregator collects the leaves and serves the
// remaining rounds itself from a tail prover — the verifier speaks the
// unchanged protocol and the transcript is bit-identical to the
// single-prover run.
//
// Message shapes on the aggregator↔owner leg:
//
//	opening:  Ints=[version]  Elems=[claim, g_1(0..deg)]
//	round j:  Elems=[g_j(0..deg)]      (head rounds 2..h)
//	leaves:   Elems=[leaf_1..leaf_T]   (after the h-th fold; T = arity)
//
// The version rides the opening so the aggregator can pin one dataset
// version across all S slices (ErrSplitVersion on skew) and bind
// Fiat–Shamir proofs to it.
package core

import (
	"errors"
	"fmt"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/sumcheck"
)

// ErrSplitVersion reports slice openings that disagree on the dataset
// version: an ingest scatter was racing the query and the aggregator
// must retry rather than fold partials of different dataset states.
var ErrSplitVersion = errors.New("core: split slices disagree on dataset version")

// PartialProver is the slice owner's session for one aggregation query:
// a ProverSession whose messages are this slice's exact partials. It is
// driven by the aggregator, not by a verifier — after its final fold it
// emits its leaves instead of a round message.
type PartialProver struct {
	cfg     sumcheck.Config // global configuration; Params span the full universe
	lo, hi  uint64
	tables  [][]field.Elem // slice subtables, borrowed read-only
	version uint64
	sc      *sumcheck.Prover
	headD   int
}

func newPartialProver(cfg sumcheck.Config, lo, hi, version uint64, tables ...[]field.Elem) (*PartialProver, error) {
	sp, err := sumcheck.SliceParams(cfg.Params, lo, hi)
	if err != nil {
		return nil, err
	}
	for t, tab := range tables {
		if uint64(len(tab)) != sp.U {
			return nil, fmt.Errorf("core: slice table %d has %d entries, want %d", t, len(tab), sp.U)
		}
	}
	return &PartialProver{cfg: cfg, lo: lo, hi: hi, tables: tables, version: version, headD: sp.D}, nil
}

// NewPartialProverFromTable returns the slice-owner session for the
// universe slice [lo, hi) of p.Params. table holds the slice's hi−lo
// entries (global index i stored at i−lo), borrowed read-only; version
// is the dataset version the opening reports to the aggregator.
func (p *Fk) NewPartialProverFromTable(table []field.Elem, lo, hi, version uint64) (*PartialProver, error) {
	return newPartialProver(p.scConfig(), lo, hi, version, table)
}

// NewPartialProverFromTable returns the slice-owner session for a
// range-sum query over the global range [qL, qR] (validated against the
// full universe). The slice materializes its part of the indicator
// itself — the intersection of the query range with [lo, hi) — so no
// second table travels.
func (p *RangeSum) NewPartialProverFromTable(table []field.Elem, lo, hi, version, qL, qR uint64) (*PartialProver, error) {
	if qL > qR || qR >= p.Params.U {
		return nil, fmt.Errorf("core: bad range [%d,%d] for universe %d", qL, qR, p.Params.U)
	}
	indicator := make([]field.Elem, len(table))
	for i := max(qL, lo); i <= qR && i < hi; i++ {
		indicator[i-lo] = 1
	}
	return newPartialProver(p.scConfig(), lo, hi, version, table, indicator)
}

// Open computes this slice's partial claim and round-1 partial,
// prefixed by the dataset version for the aggregator's skew check.
func (pr *PartialProver) Open() (Msg, error) {
	sc, err := sumcheck.NewPartialProver(pr.cfg, pr.lo, pr.hi, pr.tables...)
	if err != nil {
		return Msg{}, err
	}
	pr.sc = sc
	claim := sc.Total()
	g1, err := sc.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Ints: []uint64{pr.version}, Elems: append([]field.Elem{claim}, g1...)}, nil
}

// Step folds the broadcast challenge and produces the next partial
// message — or, after the final head fold, this slice's leaves.
func (pr *PartialProver) Step(challenge Msg) (Msg, error) {
	if pr.sc == nil {
		return Msg{}, fmt.Errorf("core: partial prover not opened")
	}
	if len(challenge.Elems) != 1 {
		return Msg{}, fmt.Errorf("core: partial challenge has %d elems, want 1", len(challenge.Elems))
	}
	if err := pr.sc.Fold(challenge.Elems[0]); err != nil {
		return Msg{}, err
	}
	if pr.sc.Round() == pr.headD {
		leaves, err := pr.sc.Leaves()
		if err != nil {
			return Msg{}, err
		}
		return Msg{Elems: leaves}, nil
	}
	g, err := pr.sc.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Elems: g}, nil
}

// ---------------------------------------------------------------------

// SplitAggregator folds S slice owners' partial messages into the
// single-prover transcript. It sits between the verifier (which speaks
// the unchanged protocol) and the owners:
//
//	parts := <Open on every owner, slice order>
//	opening, _ := agg.Open(parts)            // → verifier
//	for each verifier challenge r:
//	    if agg.Broadcast() {
//	        parts := <Step(r) on every owner>  // partials, or leaves
//	        m, _ := agg.Collect(parts)
//	        if agg.TailStarted() { <finish the owner conversations> }
//	    } else {
//	        m, _ := agg.Next(r)                // tail rounds, local
//	    }
//	    // m → verifier
//
// Because field addition is exact and the tail prover resumes from the
// exact global folded table, every emitted message is bit-identical to
// the single-prover run.
type SplitAggregator struct {
	cfg     sumcheck.Config
	slices  int
	hd      int // head rounds served by the owners (= slice depth)
	round   int // combined messages emitted so far
	version uint64
	tail    *sumcheck.Prover
}

// NewSplitAggregator builds the aggregator for a universe of size ≥ u
// (original, unpadded) split into `slices` equal aligned slices.
// Slice counts must be powers of two small enough that each slice has
// width ≥ 2. workers bounds the tail prover's fan-out (the tail tables
// have only `slices` entries, so it rarely matters).
func NewSplitAggregator(f field.Field, u uint64, slices int, comb sumcheck.Combiner, workers int) (*SplitAggregator, error) {
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return nil, err
	}
	if slices < 1 || uint64(slices) > params.U || params.U%uint64(slices) != 0 {
		return nil, fmt.Errorf("core: cannot split universe %d into %d slices", params.U, slices)
	}
	width := params.U / uint64(slices)
	sp, err := sumcheck.SliceParams(params, 0, width)
	if err != nil {
		return nil, err
	}
	cfg := sumcheck.Config{Field: f, Params: params, Combiner: comb, Workers: workers}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SplitAggregator{cfg: cfg, slices: slices, hd: sp.D}, nil
}

// Rounds returns the total number of protocol rounds d.
func (a *SplitAggregator) Rounds() int { return a.cfg.Params.D }

// HeadRounds returns the number of rounds served by the slice owners.
func (a *SplitAggregator) HeadRounds() int { return a.hd }

// Slices returns the slice count S.
func (a *SplitAggregator) Slices() int { return a.slices }

// Version returns the dataset version pinned by the openings.
func (a *SplitAggregator) Version() uint64 { return a.version }

// Done reports whether every round message has been emitted.
func (a *SplitAggregator) Done() bool { return a.round == a.cfg.Params.D }

// Broadcast reports whether the verifier's challenge for the round just
// emitted must be broadcast to the owners (true through the leaf
// round); afterwards the tail prover answers locally via Next.
func (a *SplitAggregator) Broadcast() bool {
	return a.round < a.hd || (a.round == a.hd && a.slices > 1)
}

// TailStarted reports whether the owners' conversations are complete
// (their leaves are folded into the tail prover).
func (a *SplitAggregator) TailStarted() bool { return a.tail != nil }

// Open combines the S slice openings (slice order) into the opening the
// verifier sees, pinning the dataset version all slices must share.
func (a *SplitAggregator) Open(parts []Msg) (Msg, error) {
	if a.round != 0 {
		return Msg{}, fmt.Errorf("core: split aggregator already opened")
	}
	want := 1 + a.cfg.MessageLen()
	for k, part := range parts {
		if len(part.Ints) != 1 || len(part.Elems) != want {
			return Msg{}, fmt.Errorf("core: slice %d opening has %d ints and %d elems, want 1 and %d",
				k, len(part.Ints), len(part.Elems), want)
		}
		if k == 0 {
			a.version = part.Ints[0]
		} else if part.Ints[0] != a.version {
			return Msg{}, fmt.Errorf("%w: slice 0 at %d, slice %d at %d", ErrSplitVersion, a.version, k, part.Ints[0])
		}
	}
	out, err := a.sum(parts, want)
	if err != nil {
		return Msg{}, err
	}
	a.round = 1
	return out, nil
}

// Collect combines the owners' responses to a broadcast challenge: the
// next combined round message during the head, or — on the leaf round —
// the owners' leaves, from which it seeds the tail prover and emits the
// first tail message.
func (a *SplitAggregator) Collect(parts []Msg) (Msg, error) {
	if a.round == 0 || !a.Broadcast() {
		return Msg{}, fmt.Errorf("core: no broadcast outstanding at round %d", a.round)
	}
	if a.round < a.hd {
		for k, part := range parts {
			if len(part.Ints) != 0 {
				return Msg{}, fmt.Errorf("core: slice %d round message carries unexpected ints", k)
			}
		}
		out, err := a.sum(parts, a.cfg.MessageLen())
		if err != nil {
			return Msg{}, err
		}
		a.round++
		return out, nil
	}
	// Leaf round: each part is one fully folded entry per table.
	arity := a.cfg.Combiner.Arity()
	if len(parts) != a.slices {
		return Msg{}, fmt.Errorf("core: %d slice responses, want %d", len(parts), a.slices)
	}
	leaves := make([][]field.Elem, a.slices)
	for k, part := range parts {
		if len(part.Ints) != 0 || len(part.Elems) != arity {
			return Msg{}, fmt.Errorf("core: slice %d leaves have %d ints and %d elems, want 0 and %d",
				k, len(part.Ints), len(part.Elems), arity)
		}
		leaves[k] = part.Elems
	}
	tail, err := sumcheck.NewTailProver(a.cfg, leaves)
	if err != nil {
		return Msg{}, err
	}
	a.tail = tail
	g, err := tail.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	a.round++
	return Msg{Elems: g}, nil
}

// Next serves a tail round: it folds the verifier's challenge into the
// tail prover and emits the next message, no owner round trip needed.
func (a *SplitAggregator) Next(r field.Elem) (Msg, error) {
	if a.tail == nil {
		return Msg{}, fmt.Errorf("core: tail not started at round %d", a.round)
	}
	if a.Done() {
		return Msg{}, fmt.Errorf("core: all %d rounds already emitted", a.cfg.Params.D)
	}
	if err := a.tail.Fold(r); err != nil {
		return Msg{}, err
	}
	g, err := a.tail.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	a.round++
	return Msg{Elems: g}, nil
}

func (a *SplitAggregator) sum(parts []Msg, wantElems int) (Msg, error) {
	if len(parts) != a.slices {
		return Msg{}, fmt.Errorf("core: %d slice responses, want %d", len(parts), a.slices)
	}
	f := a.cfg.Field
	out := make([]field.Elem, wantElems)
	for k, part := range parts {
		if len(part.Elems) != wantElems {
			return Msg{}, fmt.Errorf("core: slice %d response has %d elems, want %d", k, len(part.Elems), wantElems)
		}
		for _, e := range part.Elems {
			if uint64(e) >= f.Modulus() {
				return Msg{}, fmt.Errorf("core: slice %d response contains non-canonical element", k)
			}
		}
		f.AddSlices(out, out, part.Elems)
	}
	return Msg{Elems: out}, nil
}

// ---------------------------------------------------------------------

// SumcheckChallenges replicates the challenge schedule of the Fk and
// RangeSum verifiers: both consume their RNG solely by sampling the
// secret evaluation point, and the challenges they reveal are exactly
// that point's coordinates in order. An aggregator generating a
// Fiat–Shamir proof derives the schedule from the binding's RNG with
// this function and drives the distributed conversation itself — the
// recorded messages come out bit-identical to the single-prover proof.
// (TestSumcheckChallengesMatchVerifier pins this equivalence.)
func SumcheckChallenges(f field.Field, u uint64, rng field.RNG) ([]field.Elem, error) {
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return nil, err
	}
	return lde.RandomPoint(f, params, rng).R, nil
}

package core

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/lde"
	"repro/internal/stream"
	"repro/internal/sumcheck"
)

// Fk is the frequency-moment protocol of §3: SELF-JOIN SIZE for K=2 and
// the k-th frequency moment in general. With the default ℓ=2 it is a
// (log u, log u) protocol (Theorem 4); the per-round message carries
// K(ℓ-1)+1 words, which is how the communication grows to O(K log u) for
// higher moments (§3.2).
type Fk struct {
	F      field.Field
	Params lde.Params
	K      int

	// Workers sets the prover's parallel fan-out (sumcheck.Config.Workers
	// semantics: 0 serial, n > 0 that many goroutines, n < 0
	// runtime.NumCPU()). Set it before the prover opens the conversation.
	// Transcripts are bit-identical for every value; the verifier is
	// unaffected.
	Workers int
}

// NewFk returns the Fk protocol over a universe of size ≥ u with the
// paper's default decomposition ℓ=2, d=⌈log2 u⌉.
func NewFk(f field.Field, u uint64, k int) (*Fk, error) {
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return nil, err
	}
	return NewFkWithParams(f, params, k)
}

// NewFkWithParams allows a custom (ℓ, d) decomposition — used by the
// branching-factor ablation of §3.1 footnote 1.
func NewFkWithParams(f field.Field, params lde.Params, k int) (*Fk, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: frequency moment order %d < 1", k)
	}
	p := &Fk{F: f, Params: params, K: k}
	if err := p.scConfig().Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewSelfJoinSize returns the SELF-JOIN SIZE (F2) protocol, the paper's
// headline aggregation query.
func NewSelfJoinSize(f field.Field, u uint64) (*Fk, error) {
	return NewFk(f, u, 2)
}

func (p *Fk) scConfig() sumcheck.Config {
	return sumcheck.Config{Field: p.F, Params: p.Params, Combiner: sumcheck.Power{K: p.K}, Workers: p.Workers}
}

// ---------------------------------------------------------------------

// FkVerifier is the verifier session: O(log u) space, O(log u) time per
// stream update.
type FkVerifier struct {
	proto *Fk
	pt    *lde.Point
	ev    *lde.Evaluator
	sc    *sumcheck.Verifier
	claim field.Elem
	done  bool
}

// NewVerifier samples the secret point r (before the stream, as required)
// and returns a verifier ready to observe updates.
func (p *Fk) NewVerifier(rng field.RNG) *FkVerifier {
	pt := lde.RandomPoint(p.F, p.Params, rng)
	return &FkVerifier{proto: p, pt: pt, ev: lde.NewEvaluator(pt)}
}

// Observe folds one stream update into the running LDE evaluation.
func (v *FkVerifier) Observe(up stream.Update) error {
	return v.ev.Update(up.Index, up.Delta)
}

// ObserveBatch folds a batch of updates through a worker pool
// (lde.Evaluator.BulkUpdate). The state afterwards is bit-identical to
// observing the batch one update at a time; use it when the owner has
// updates in hand (e.g. while uploading file chunks) rather than one by
// one. workers follows the parallel.Workers convention.
func (v *FkVerifier) ObserveBatch(ups []stream.Update, workers int) error {
	idx := make([]uint64, len(ups))
	deltas := make([]int64, len(ups))
	for i, up := range ups {
		idx[i], deltas[i] = up.Index, up.Delta
	}
	return v.ev.BulkUpdate(idx, deltas, workers)
}

// Begin consumes the opening message [claim, g_1(0..deg)].
func (v *FkVerifier) Begin(opening Msg) (Msg, bool, error) {
	if v.sc != nil {
		return Msg{}, false, fmt.Errorf("core: Fk verifier already started")
	}
	cfg := v.proto.scConfig()
	if len(opening.Ints) != 0 || len(opening.Elems) != 1+cfg.MessageLen() {
		return Msg{}, false, reject("Fk opening has %d ints and %d elems, want 0 and %d",
			len(opening.Ints), len(opening.Elems), 1+cfg.MessageLen())
	}
	v.claim = opening.Elems[0]
	expected := v.proto.F.Pow(v.ev.Value(), uint64(v.proto.K))
	sc, err := sumcheck.NewVerifier(cfg, v.pt.R, v.claim, expected)
	if err != nil {
		return Msg{}, false, err
	}
	v.sc = sc
	return v.absorb(opening.Elems[1:])
}

// Step consumes one round message g_j(0..deg).
func (v *FkVerifier) Step(response Msg) (Msg, bool, error) {
	if v.sc == nil || v.done {
		return Msg{}, false, fmt.Errorf("core: Fk verifier not mid-conversation")
	}
	if len(response.Ints) != 0 {
		return Msg{}, false, reject("Fk round message carries unexpected ints")
	}
	return v.absorb(response.Elems)
}

func (v *FkVerifier) absorb(evals []field.Elem) (Msg, bool, error) {
	if err := v.sc.Receive(evals); err != nil {
		return Msg{}, false, reject("%v", err)
	}
	if v.sc.Done() {
		v.done = true
		return Msg{}, true, nil
	}
	ch, err := v.sc.Challenge()
	if err != nil {
		return Msg{}, false, err
	}
	return Msg{Elems: []field.Elem{ch}}, false, nil
}

// Result returns the verified frequency moment (as a field element; the
// paper assumes p is chosen large enough that Fk < p).
func (v *FkVerifier) Result() (field.Elem, error) {
	if !v.done {
		return 0, fmt.Errorf("core: Fk result unavailable before acceptance")
	}
	return v.claim, nil
}

// SpaceWords reports the verifier's working memory in the paper's
// accounting: the streaming LDE state plus the sum-check round state.
func (v *FkVerifier) SpaceWords() int {
	n := v.ev.SpaceWords()
	if v.sc != nil {
		n += v.sc.SpaceWords()
	} else {
		n += v.proto.scConfig().MessageLen() + 2
	}
	return n
}

// ---------------------------------------------------------------------

// FkProver is the honest prover: it stores the full frequency vector
// (O(min(u,n)) space) and spends O(K·u) field operations across all
// rounds (Appendix B.1).
type FkProver struct {
	proto  *Fk
	table  []field.Elem
	shared bool
	sc     *sumcheck.Prover
}

// NewProver returns a prover ready to observe updates.
func (p *Fk) NewProver() *FkProver {
	return &FkProver{proto: p, table: make([]field.Elem, p.Params.U)}
}

// NewProverFromTable returns a prover over a prebuilt dense frequency
// table (the field image of the counts, length Params.U), borrowed
// read-only — typically a dataset-engine snapshot. Construction is O(1):
// no stream is replayed, and the sum-check copies the table at Open, so
// many sessions can share one snapshot. The transcript is bit-identical
// to a streaming prover that observed any stream aggregating to the same
// table.
func (p *Fk) NewProverFromTable(table []field.Elem) (*FkProver, error) {
	if uint64(len(table)) != p.Params.U {
		return nil, fmt.Errorf("core: table has %d entries, want %d", len(table), p.Params.U)
	}
	return &FkProver{proto: p, table: table, shared: true}, nil
}

// Observe folds one stream update into the frequency vector.
func (pr *FkProver) Observe(up stream.Update) error {
	if pr.shared {
		return fmt.Errorf("core: prover built from a snapshot cannot observe updates")
	}
	if up.Index >= pr.proto.Params.U {
		return fmt.Errorf("core: index %d outside universe [0,%d)", up.Index, pr.proto.Params.U)
	}
	f := pr.proto.F
	pr.table[up.Index] = f.Add(pr.table[up.Index], f.FromInt64(up.Delta))
	return nil
}

// Open computes the claimed moment and the unprompted round-1 polynomial.
func (pr *FkProver) Open() (Msg, error) {
	sc, err := sumcheck.NewProver(pr.proto.scConfig(), pr.table)
	if err != nil {
		return Msg{}, err
	}
	pr.sc = sc
	claim := sc.Total()
	g1, err := sc.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Elems: append([]field.Elem{claim}, g1...)}, nil
}

// Step folds the revealed challenge r_j and produces g_{j+1}.
func (pr *FkProver) Step(challenge Msg) (Msg, error) {
	if pr.sc == nil {
		return Msg{}, fmt.Errorf("core: Fk prover not opened")
	}
	if len(challenge.Elems) != 1 {
		return Msg{}, fmt.Errorf("core: Fk challenge has %d elems, want 1", len(challenge.Elems))
	}
	if err := pr.sc.Fold(challenge.Elems[0]); err != nil {
		return Msg{}, err
	}
	g, err := pr.sc.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Elems: g}, nil
}

// ---------------------------------------------------------------------

// InnerProduct is the JOIN SIZE protocol of §3.2: two streams A and B with
// frequency vectors a, b; the claim is Σ_i a_i·b_i. The prover sends
// polynomials claimed to be partial sums of f_a·f_b and the verifier's
// final check is g_d(r_d) = f_a(r)·f_b(r).
type InnerProduct struct {
	F      field.Field
	Params lde.Params

	// Workers is the prover's parallel fan-out; see Fk.Workers.
	Workers int
}

// NewInnerProduct returns the protocol for universes of size ≥ u (ℓ=2).
func NewInnerProduct(f field.Field, u uint64) (*InnerProduct, error) {
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return nil, err
	}
	return &InnerProduct{F: f, Params: params}, nil
}

func (p *InnerProduct) scConfig() sumcheck.Config {
	return sumcheck.Config{Field: p.F, Params: p.Params, Combiner: sumcheck.Product{}, Workers: p.Workers}
}

// InnerProductVerifier evaluates both LDEs at the same secret point.
type InnerProductVerifier struct {
	proto *InnerProduct
	pt    *lde.Point
	evA   *lde.Evaluator
	evB   *lde.Evaluator
	sc    *sumcheck.Verifier
	claim field.Elem
	done  bool
}

// NewVerifier samples the secret point and returns the verifier.
func (p *InnerProduct) NewVerifier(rng field.RNG) *InnerProductVerifier {
	pt := lde.RandomPoint(p.F, p.Params, rng)
	return &InnerProductVerifier{proto: p, pt: pt, evA: lde.NewEvaluator(pt), evB: lde.NewEvaluator(pt)}
}

// ObserveA folds an update of stream A.
func (v *InnerProductVerifier) ObserveA(up stream.Update) error {
	return v.evA.Update(up.Index, up.Delta)
}

// ObserveB folds an update of stream B.
func (v *InnerProductVerifier) ObserveB(up stream.Update) error {
	return v.evB.Update(up.Index, up.Delta)
}

// Begin consumes the opening [claim, g_1(0..2)].
func (v *InnerProductVerifier) Begin(opening Msg) (Msg, bool, error) {
	if v.sc != nil {
		return Msg{}, false, fmt.Errorf("core: inner-product verifier already started")
	}
	cfg := v.proto.scConfig()
	if len(opening.Ints) != 0 || len(opening.Elems) != 1+cfg.MessageLen() {
		return Msg{}, false, reject("inner-product opening has %d ints and %d elems, want 0 and %d",
			len(opening.Ints), len(opening.Elems), 1+cfg.MessageLen())
	}
	v.claim = opening.Elems[0]
	expected := v.proto.F.Mul(v.evA.Value(), v.evB.Value())
	sc, err := sumcheck.NewVerifier(cfg, v.pt.R, v.claim, expected)
	if err != nil {
		return Msg{}, false, err
	}
	v.sc = sc
	return v.absorb(opening.Elems[1:])
}

// Step consumes one round message.
func (v *InnerProductVerifier) Step(response Msg) (Msg, bool, error) {
	if v.sc == nil || v.done {
		return Msg{}, false, fmt.Errorf("core: inner-product verifier not mid-conversation")
	}
	if len(response.Ints) != 0 {
		return Msg{}, false, reject("inner-product round message carries unexpected ints")
	}
	return v.absorb(response.Elems)
}

func (v *InnerProductVerifier) absorb(evals []field.Elem) (Msg, bool, error) {
	if err := v.sc.Receive(evals); err != nil {
		return Msg{}, false, reject("%v", err)
	}
	if v.sc.Done() {
		v.done = true
		return Msg{}, true, nil
	}
	ch, err := v.sc.Challenge()
	if err != nil {
		return Msg{}, false, err
	}
	return Msg{Elems: []field.Elem{ch}}, false, nil
}

// Result returns the verified inner product.
func (v *InnerProductVerifier) Result() (field.Elem, error) {
	if !v.done {
		return 0, fmt.Errorf("core: inner-product result unavailable before acceptance")
	}
	return v.claim, nil
}

// InnerProductProver stores both frequency vectors.
type InnerProductProver struct {
	proto  *InnerProduct
	tables [2][]field.Elem
	sc     *sumcheck.Prover
}

// NewProver returns a prover ready to observe both streams.
func (p *InnerProduct) NewProver() *InnerProductProver {
	return &InnerProductProver{
		proto:  p,
		tables: [2][]field.Elem{make([]field.Elem, p.Params.U), make([]field.Elem, p.Params.U)},
	}
}

// ObserveA folds an update of stream A.
func (pr *InnerProductProver) ObserveA(up stream.Update) error { return pr.observe(0, up) }

// ObserveB folds an update of stream B.
func (pr *InnerProductProver) ObserveB(up stream.Update) error { return pr.observe(1, up) }

func (pr *InnerProductProver) observe(t int, up stream.Update) error {
	if up.Index >= pr.proto.Params.U {
		return fmt.Errorf("core: index %d outside universe [0,%d)", up.Index, pr.proto.Params.U)
	}
	f := pr.proto.F
	pr.tables[t][up.Index] = f.Add(pr.tables[t][up.Index], f.FromInt64(up.Delta))
	return nil
}

// Open computes the claimed inner product and round-1 polynomial.
func (pr *InnerProductProver) Open() (Msg, error) {
	sc, err := sumcheck.NewProver(pr.proto.scConfig(), pr.tables[0], pr.tables[1])
	if err != nil {
		return Msg{}, err
	}
	pr.sc = sc
	claim := sc.Total()
	g1, err := sc.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Elems: append([]field.Elem{claim}, g1...)}, nil
}

// Step folds the challenge and produces the next polynomial.
func (pr *InnerProductProver) Step(challenge Msg) (Msg, error) {
	if pr.sc == nil {
		return Msg{}, fmt.Errorf("core: inner-product prover not opened")
	}
	if len(challenge.Elems) != 1 {
		return Msg{}, fmt.Errorf("core: challenge has %d elems, want 1", len(challenge.Elems))
	}
	if err := pr.sc.Fold(challenge.Elems[0]); err != nil {
		return Msg{}, err
	}
	g, err := pr.sc.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Elems: g}, nil
}

// ---------------------------------------------------------------------

// RangeSum is the RANGE-SUM protocol of §3.2: a stream of distinct
// (key, value) pairs followed by a query [qL, qR]; the answer is the sum
// of values with keys in the range. It is the inner product of a with the
// range indicator b, whose LDE the verifier evaluates itself in O(log² u)
// via the canonical-interval decomposition — no second stream needed.
type RangeSum struct {
	F      field.Field
	Params lde.Params

	// Workers is the prover's parallel fan-out; see Fk.Workers.
	Workers int
}

// NewRangeSum returns the protocol for universes of size ≥ u. The
// indicator evaluation requires ℓ=2.
func NewRangeSum(f field.Field, u uint64) (*RangeSum, error) {
	params, err := lde.ParamsForUniverse(u, 2)
	if err != nil {
		return nil, err
	}
	return &RangeSum{F: f, Params: params}, nil
}

func (p *RangeSum) scConfig() sumcheck.Config {
	return sumcheck.Config{Field: p.F, Params: p.Params, Combiner: sumcheck.Product{}, Workers: p.Workers}
}

// RangeSumVerifier streams f_a(r); the query is set after the stream.
type RangeSumVerifier struct {
	proto    *RangeSum
	pt       *lde.Point
	ev       *lde.Evaluator
	sc       *sumcheck.Verifier
	qL, qR   uint64
	hasQuery bool
	claim    field.Elem
	done     bool
}

// NewVerifier samples the secret point and returns the verifier.
func (p *RangeSum) NewVerifier(rng field.RNG) *RangeSumVerifier {
	pt := lde.RandomPoint(p.F, p.Params, rng)
	return &RangeSumVerifier{proto: p, pt: pt, ev: lde.NewEvaluator(pt)}
}

// Observe folds one (key, value) pair, encoded as an update.
func (v *RangeSumVerifier) Observe(up stream.Update) error {
	return v.ev.Update(up.Index, up.Delta)
}

// SetQuery fixes the range [qL, qR]; it must be called after the stream
// and before Begin. (This is the point where a real deployment transmits
// the query to the cloud; the two words are accounted by the transport.)
func (v *RangeSumVerifier) SetQuery(qL, qR uint64) error {
	if qL > qR || qR >= v.proto.Params.U {
		return fmt.Errorf("core: bad range [%d,%d] for universe %d", qL, qR, v.proto.Params.U)
	}
	v.qL, v.qR, v.hasQuery = qL, qR, true
	return nil
}

// Begin consumes the opening [claim, g_1(0..2)].
func (v *RangeSumVerifier) Begin(opening Msg) (Msg, bool, error) {
	if !v.hasQuery {
		return Msg{}, false, fmt.Errorf("core: range-sum query not set")
	}
	if v.sc != nil {
		return Msg{}, false, fmt.Errorf("core: range-sum verifier already started")
	}
	cfg := v.proto.scConfig()
	if len(opening.Ints) != 0 || len(opening.Elems) != 1+cfg.MessageLen() {
		return Msg{}, false, reject("range-sum opening has %d ints and %d elems, want 0 and %d",
			len(opening.Ints), len(opening.Elems), 1+cfg.MessageLen())
	}
	v.claim = opening.Elems[0]
	fb, err := lde.EvalRangeIndicator(v.pt, v.qL, v.qR)
	if err != nil {
		return Msg{}, false, err
	}
	expected := v.proto.F.Mul(v.ev.Value(), fb)
	sc, err := sumcheck.NewVerifier(cfg, v.pt.R, v.claim, expected)
	if err != nil {
		return Msg{}, false, err
	}
	v.sc = sc
	return v.absorb(opening.Elems[1:])
}

// Step consumes one round message.
func (v *RangeSumVerifier) Step(response Msg) (Msg, bool, error) {
	if v.sc == nil || v.done {
		return Msg{}, false, fmt.Errorf("core: range-sum verifier not mid-conversation")
	}
	if len(response.Ints) != 0 {
		return Msg{}, false, reject("range-sum round message carries unexpected ints")
	}
	return v.absorb(response.Elems)
}

func (v *RangeSumVerifier) absorb(evals []field.Elem) (Msg, bool, error) {
	if err := v.sc.Receive(evals); err != nil {
		return Msg{}, false, reject("%v", err)
	}
	if v.sc.Done() {
		v.done = true
		return Msg{}, true, nil
	}
	ch, err := v.sc.Challenge()
	if err != nil {
		return Msg{}, false, err
	}
	return Msg{Elems: []field.Elem{ch}}, false, nil
}

// Result returns the verified range sum as a field element.
func (v *RangeSumVerifier) Result() (field.Elem, error) {
	if !v.done {
		return 0, fmt.Errorf("core: range-sum result unavailable before acceptance")
	}
	return v.claim, nil
}

// SignedResult lifts the result to the centered signed representative,
// correct whenever |true sum| < p/2 (values may be negative in the
// general update model).
func (v *RangeSumVerifier) SignedResult() (int64, error) {
	e, err := v.Result()
	if err != nil {
		return 0, err
	}
	return v.proto.F.Centered(e), nil
}

// RangeSumProver stores the key–value vector and materializes the
// indicator once the query arrives.
type RangeSumProver struct {
	proto    *RangeSum
	table    []field.Elem
	shared   bool
	qL, qR   uint64
	hasQuery bool
	sc       *sumcheck.Prover
}

// NewProver returns a prover ready to observe the stream.
func (p *RangeSum) NewProver() *RangeSumProver {
	return &RangeSumProver{proto: p, table: make([]field.Elem, p.Params.U)}
}

// NewProverFromTable returns a prover over a prebuilt dense key–value
// table, borrowed read-only; see Fk.NewProverFromTable.
func (p *RangeSum) NewProverFromTable(table []field.Elem) (*RangeSumProver, error) {
	if uint64(len(table)) != p.Params.U {
		return nil, fmt.Errorf("core: table has %d entries, want %d", len(table), p.Params.U)
	}
	return &RangeSumProver{proto: p, table: table, shared: true}, nil
}

// Observe folds one (key, value) pair.
func (pr *RangeSumProver) Observe(up stream.Update) error {
	if pr.shared {
		return fmt.Errorf("core: prover built from a snapshot cannot observe updates")
	}
	if up.Index >= pr.proto.Params.U {
		return fmt.Errorf("core: index %d outside universe [0,%d)", up.Index, pr.proto.Params.U)
	}
	f := pr.proto.F
	pr.table[up.Index] = f.Add(pr.table[up.Index], f.FromInt64(up.Delta))
	return nil
}

// SetQuery fixes the queried range.
func (pr *RangeSumProver) SetQuery(qL, qR uint64) error {
	if qL > qR || qR >= pr.proto.Params.U {
		return fmt.Errorf("core: bad range [%d,%d] for universe %d", qL, qR, pr.proto.Params.U)
	}
	pr.qL, pr.qR, pr.hasQuery = qL, qR, true
	return nil
}

// Open computes the claimed sum and round-1 polynomial.
func (pr *RangeSumProver) Open() (Msg, error) {
	if !pr.hasQuery {
		return Msg{}, fmt.Errorf("core: range-sum query not set")
	}
	indicator := make([]field.Elem, pr.proto.Params.U)
	for i := pr.qL; i <= pr.qR; i++ {
		indicator[i] = 1
	}
	sc, err := sumcheck.NewProver(pr.proto.scConfig(), pr.table, indicator)
	if err != nil {
		return Msg{}, err
	}
	pr.sc = sc
	claim := sc.Total()
	g1, err := sc.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Elems: append([]field.Elem{claim}, g1...)}, nil
}

// Step folds the challenge and produces the next polynomial.
func (pr *RangeSumProver) Step(challenge Msg) (Msg, error) {
	if pr.sc == nil {
		return Msg{}, fmt.Errorf("core: range-sum prover not opened")
	}
	if len(challenge.Elems) != 1 {
		return Msg{}, fmt.Errorf("core: challenge has %d elems, want 1", len(challenge.Elems))
	}
	if err := pr.sc.Fold(challenge.Elems[0]); err != nil {
		return Msg{}, err
	}
	g, err := pr.sc.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Elems: g}, nil
}

package core

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/hashtree"
	"repro/internal/lde"
	"repro/internal/poly"
	"repro/internal/stream"
	"repro/internal/sumcheck"
)

// FrequencyBased implements the §6.2 protocol for any statistic of the
// form F(a) = Σ_{i∈[u]} h(a_i):
//
//  1. the φ-heavy hitters H (frequency ≥ T = ⌈φn⌉, default φ = u^{-1/2})
//     are identified and *verified* with the §6.1 protocol; the verifier
//     accumulates F′ = Σ_{v∈H} h(a_v) and removes each reported heavy
//     item from its streamed LDE value: f̃_a(r) = f_a(r) − Σ a_v·χ_v(r);
//  2. a sum-check runs on h̃ ∘ f̃_a, where h̃ is the unique polynomial of
//     degree < T agreeing with h on {0,…,T−1} — low degree because every
//     residual frequency is below the threshold;
//  3. the result is F = Σ_{x₁} g₁(x₁) + F′ − |H|·h(0).
//
// The cost is (log u, √u·log u) for φ = u^{-1/2} (Theorem 6). As in the
// paper, frequencies must be non-negative and n = Θ(u) keeps the degree
// bound at ~√u. We compose the two sub-protocols sequentially (2·log u
// rounds); the paper notes they can also be interleaved round-by-round.
type FrequencyBased struct {
	F          field.Field
	TreeParams hashtree.Params
	LdeParams  lde.Params
	Phi        float64
	H          func(count int64) field.Elem

	// Workers is the prover's parallel fan-out, applied to both phases
	// (hash-tree levels and the residual sum-check); see Fk.Workers.
	Workers int
}

// maxInterpolationDegree caps the threshold-derived degree of h̃ so a
// mis-set φ cannot request gigabyte-sized round messages.
const maxInterpolationDegree = 1 << 16

// NewFrequencyBased returns the protocol for universes of size ≥ u with
// statistic h. phi = 0 selects the paper's default φ = u^{-1/2}.
func NewFrequencyBased(f field.Field, u uint64, phi float64, h func(int64) field.Elem) (*FrequencyBased, error) {
	if h == nil {
		return nil, fmt.Errorf("core: frequency-based statistic h is nil")
	}
	tp, err := hashtree.ParamsForUniverse(u)
	if err != nil {
		return nil, err
	}
	lp, err := lde.NewParams(2, tp.D)
	if err != nil {
		return nil, err
	}
	if phi == 0 {
		phi = 1 / math.Sqrt(float64(tp.U))
	}
	if !(phi > 0 && phi <= 1) {
		return nil, fmt.Errorf("core: fraction %v outside (0,1]", phi)
	}
	return &FrequencyBased{F: f, TreeParams: tp, LdeParams: lp, Phi: phi, H: h}, nil
}

// NewF0 returns the distinct-elements protocol (F0): h(0)=0, h(i)=1.
func NewF0(f field.Field, u uint64, phi float64) (*FrequencyBased, error) {
	return NewFrequencyBased(f, u, phi, func(c int64) field.Elem {
		if c != 0 {
			return 1
		}
		return 0
	})
}

// NewInverseDistribution returns the protocol counting items with
// frequency exactly k ≥ 1 (a point query on the inverse distribution).
func NewInverseDistribution(f field.Field, u uint64, phi float64, k int64) (*FrequencyBased, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: inverse-distribution point %d < 1", k)
	}
	return NewFrequencyBased(f, u, phi, func(c int64) field.Elem {
		if c == k {
			return 1
		}
		return 0
	})
}

// freqPhase tracks the sequential composition.
type freqPhase int

const (
	phaseHH freqPhase = iota
	phaseSCOpening
	phaseSC
	phaseDone
)

// FrequencyBasedVerifier runs the verifier: the augmented tree root and
// the LDE evaluation are maintained simultaneously over the stream, both
// in O(log u) words.
type FrequencyBasedVerifier struct {
	proto *FrequencyBased
	hh    *HeavyHittersVerifier
	pt    *lde.Point
	ev    *lde.Evaluator

	phase     freqPhase
	threshold int64
	fPrime    field.Elem
	hCount    int64
	fTildeR   field.Elem
	sc        *sumcheck.Verifier
	scClaim   field.Elem
	result    field.Elem
}

// NewVerifier samples both the tree randomness and the LDE point.
func (p *FrequencyBased) NewVerifier(rng field.RNG) *FrequencyBasedVerifier {
	hhProto := &HeavyHitters{F: p.F, Params: p.TreeParams}
	pt := lde.RandomPoint(p.F, p.LdeParams, rng)
	return &FrequencyBasedVerifier{
		proto: p,
		hh:    hhProto.NewVerifier(rng),
		pt:    pt,
		ev:    lde.NewEvaluator(pt),
	}
}

// SetH replaces the statistic (used by Fmax, whose h depends on the
// claimed bound). Must be called before the heavy-hitter phase finishes.
func (v *FrequencyBasedVerifier) SetH(h func(int64) field.Elem) { v.proto = cloneFreqProto(v.proto, h) }

func cloneFreqProto(p *FrequencyBased, h func(int64) field.Elem) *FrequencyBased {
	cp := *p
	cp.H = h
	return &cp
}

// Observe folds one stream update into both running summaries.
func (v *FrequencyBasedVerifier) Observe(up stream.Update) error {
	if err := v.hh.Observe(up); err != nil {
		return err
	}
	return v.ev.Update(up.Index, up.Delta)
}

// Begin starts the heavy-hitter phase.
func (v *FrequencyBasedVerifier) Begin(opening Msg) (Msg, bool, error) {
	if err := v.hh.SetQuery(v.proto.Phi); err != nil {
		return Msg{}, false, err
	}
	ch, hhDone, err := v.hh.Begin(opening)
	if err != nil {
		return Msg{}, false, err
	}
	if hhDone {
		return v.transition()
	}
	return ch, false, nil
}

// Step advances whichever phase is active.
func (v *FrequencyBasedVerifier) Step(response Msg) (Msg, bool, error) {
	switch v.phase {
	case phaseHH:
		ch, hhDone, err := v.hh.Step(response)
		if err != nil {
			return Msg{}, false, err
		}
		if hhDone {
			return v.transition()
		}
		return ch, false, nil
	case phaseSCOpening:
		return v.beginSumcheck(response)
	case phaseSC:
		if len(response.Ints) != 0 {
			return Msg{}, false, reject("sum-check round message carries unexpected ints")
		}
		return v.absorb(response.Elems)
	default:
		return Msg{}, false, fmt.Errorf("core: frequency-based verifier already finished")
	}
}

// transition closes the heavy-hitter phase: it folds the verified heavy
// items out of the LDE value and asks the prover (empty challenge) for the
// sum-check opening.
func (v *FrequencyBasedVerifier) transition() (Msg, bool, error) {
	if v.proto.H == nil {
		return Msg{}, false, fmt.Errorf("core: statistic h not set")
	}
	hitters, threshold, err := v.hh.Result()
	if err != nil {
		return Msg{}, false, err
	}
	v.threshold = threshold
	if threshold > maxInterpolationDegree {
		return Msg{}, false, fmt.Errorf("core: threshold %d exceeds supported degree %d — decrease φ·n", threshold, maxInterpolationDegree)
	}
	f := v.proto.F
	v.fTildeR = v.ev.Value()
	for _, hh := range hitters {
		v.fPrime = f.Add(v.fPrime, v.proto.H(hh.Count))
		contrib := f.Mul(f.FromInt64(hh.Count), v.pt.ChiOfIndex(hh.Index))
		v.fTildeR = f.Sub(v.fTildeR, contrib)
		v.hCount++
	}
	v.phase = phaseSCOpening
	return Msg{}, false, nil
}

func (v *FrequencyBasedVerifier) scConfig() sumcheck.Config {
	return sumcheck.Config{
		Field:  v.proto.F,
		Params: v.proto.LdeParams,
		// The verifier never evaluates h̃ through the combiner; it only
		// needs the degree bound T-1 to size messages.
		Combiner: sumcheck.PolyFn{MinDegree: int(v.threshold) - 1},
	}
}

// beginSumcheck consumes the sum-check opening [claim, g_1(0..deg)].
func (v *FrequencyBasedVerifier) beginSumcheck(opening Msg) (Msg, bool, error) {
	cfg := v.scConfig()
	if len(opening.Ints) != 0 || len(opening.Elems) != 1+cfg.MessageLen() {
		return Msg{}, false, reject("sum-check opening has %d elems, want %d", len(opening.Elems), 1+cfg.MessageLen())
	}
	v.scClaim = opening.Elems[0]
	f := v.proto.F
	expected, err := poly.EvalOracleInterpolant(f, int(v.threshold),
		func(i uint64) field.Elem { return v.proto.H(int64(i)) }, v.fTildeR)
	if err != nil {
		return Msg{}, false, err
	}
	sc, err := sumcheck.NewVerifier(cfg, v.pt.R, v.scClaim, expected)
	if err != nil {
		return Msg{}, false, err
	}
	v.sc = sc
	v.phase = phaseSC
	return v.absorb(opening.Elems[1:])
}

func (v *FrequencyBasedVerifier) absorb(evals []field.Elem) (Msg, bool, error) {
	if err := v.sc.Receive(evals); err != nil {
		return Msg{}, false, reject("%v", err)
	}
	if v.sc.Done() {
		f := v.proto.F
		// F = Σ g₁ + F′ − |H|·h(0).
		v.result = f.Sub(f.Add(v.scClaim, v.fPrime), f.Mul(f.FromInt64(v.hCount), v.proto.H(0)))
		v.phase = phaseDone
		return Msg{}, true, nil
	}
	ch, err := v.sc.Challenge()
	if err != nil {
		return Msg{}, false, err
	}
	return Msg{Elems: []field.Elem{ch}}, false, nil
}

// Result returns the verified statistic F(a).
func (v *FrequencyBasedVerifier) Result() (field.Elem, error) {
	if v.phase != phaseDone {
		return 0, fmt.Errorf("core: frequency-based result unavailable before acceptance")
	}
	return v.result, nil
}

// HeavyHitters returns the verified heavy set used in phase 1 (valid once
// the protocol finished).
func (v *FrequencyBasedVerifier) HeavyHitters() ([]HeavyHitter, int64, error) {
	return v.hh.Result()
}

// ---------------------------------------------------------------------

// FrequencyBasedProver runs the prover: the heavy-hitters prover first,
// then a sum-check over the residual vector with the interpolated h̃.
// Total time O(u^{3/2}) for the default φ (Theorem 6).
type FrequencyBasedProver struct {
	proto *FrequencyBased
	hh    *HeavyHittersProver
	sc    *sumcheck.Prover
}

// NewProver returns a prover ready to observe the stream.
func (p *FrequencyBased) NewProver() *FrequencyBasedProver {
	hhProto := &HeavyHitters{F: p.F, Params: p.TreeParams, Workers: p.Workers}
	return &FrequencyBasedProver{proto: p, hh: hhProto.NewProver()}
}

// NewProverFromCounts returns a prover over a shared dense count table
// with the given stream total Σδ (dataset-engine state); no stream is
// replayed and the transcript matches the streaming prover's exactly.
func (p *FrequencyBased) NewProverFromCounts(counts []int64, total int64) (*FrequencyBasedProver, error) {
	hhProto := &HeavyHitters{F: p.F, Params: p.TreeParams, Workers: p.Workers}
	hh, err := hhProto.NewProverFromCounts(counts, total)
	if err != nil {
		return nil, err
	}
	return &FrequencyBasedProver{proto: p, hh: hh}, nil
}

// SetH replaces the statistic (see FrequencyBasedVerifier.SetH).
func (pr *FrequencyBasedProver) SetH(h func(int64) field.Elem) {
	pr.proto = cloneFreqProto(pr.proto, h)
}

// Observe records one stream update.
func (pr *FrequencyBasedProver) Observe(up stream.Update) error { return pr.hh.Observe(up) }

// Open starts the heavy-hitter phase.
func (pr *FrequencyBasedProver) Open() (Msg, error) {
	if err := pr.hh.SetQuery(pr.proto.Phi); err != nil {
		return Msg{}, err
	}
	return pr.hh.Open()
}

// Step dispatches on the challenge shape: 2 elements is a heavy-hitter
// reveal (r_l, q_l), 0 elements the transition request for the sum-check
// opening, 1 element a sum-check fold challenge.
func (pr *FrequencyBasedProver) Step(challenge Msg) (Msg, error) {
	switch len(challenge.Elems) {
	case 2:
		return pr.hh.Step(challenge)
	case 0:
		return pr.openSumcheck()
	case 1:
		if pr.sc == nil {
			return Msg{}, fmt.Errorf("core: sum-check phase not opened")
		}
		if err := pr.sc.Fold(challenge.Elems[0]); err != nil {
			return Msg{}, err
		}
		g, err := pr.sc.RoundMessage()
		if err != nil {
			return Msg{}, err
		}
		return Msg{Elems: g}, nil
	default:
		return Msg{}, fmt.Errorf("core: unrecognized challenge shape (%d elems)", len(challenge.Elems))
	}
}

// openSumcheck builds the residual table ã (heavy entries zeroed),
// interpolates h̃ on {0,…,T−1}, and emits the sum-check opening.
func (pr *FrequencyBasedProver) openSumcheck() (Msg, error) {
	if pr.proto.H == nil {
		return Msg{}, fmt.Errorf("core: statistic h not set")
	}
	threshold := pr.hh.threshold
	if threshold < 1 {
		return Msg{}, fmt.Errorf("core: heavy-hitter phase not run")
	}
	if threshold > maxInterpolationDegree {
		return Msg{}, fmt.Errorf("core: threshold %d exceeds supported degree %d", threshold, maxInterpolationDegree)
	}
	f := pr.proto.F
	table := make([]field.Elem, pr.proto.LdeParams.U)
	for i, c := range pr.hh.counts {
		if c == 0 {
			continue
		}
		if c < 0 {
			return Msg{}, fmt.Errorf("core: frequency-based protocols require non-negative frequencies (index %d has %d)", i, c)
		}
		if c >= threshold {
			continue // heavy: removed from the residual stream
		}
		table[i] = f.FromInt64(c)
	}
	// h̃ interpolates h on 0..T-1 (all residual frequencies lie there).
	xs := make([]field.Elem, threshold)
	ys := make([]field.Elem, threshold)
	for i := int64(0); i < threshold; i++ {
		xs[i] = f.FromInt64(i)
		ys[i] = pr.proto.H(i)
	}
	htilde, err := poly.Interpolate(f, xs, ys)
	if err != nil {
		return Msg{}, err
	}
	cfg := sumcheck.Config{
		Field:    f,
		Params:   pr.proto.LdeParams,
		Combiner: sumcheck.PolyFn{H: htilde, MinDegree: int(threshold) - 1},
		Workers:  pr.proto.Workers,
	}
	sc, err := sumcheck.NewProver(cfg, table)
	if err != nil {
		return Msg{}, err
	}
	pr.sc = sc
	claim := sc.Total()
	g1, err := sc.RoundMessage()
	if err != nil {
		return Msg{}, err
	}
	return Msg{Elems: append([]field.Elem{claim}, g1...)}, nil
}

package core

import (
	"testing"

	"repro/internal/field"
	"repro/internal/stream"
)

// recordingProver captures every message a prover session emits.
type recordingProver struct {
	inner ProverSession
	msgs  []Msg
}

func (rp *recordingProver) Open() (Msg, error) {
	m, err := rp.inner.Open()
	rp.msgs = append(rp.msgs, cloneMsg(m))
	return m, err
}

func (rp *recordingProver) Step(ch Msg) (Msg, error) {
	m, err := rp.inner.Step(ch)
	rp.msgs = append(rp.msgs, cloneMsg(m))
	return m, err
}

func sameTranscript(t *testing.T, name string, a, b []Msg) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d messages vs %d", name, len(a), len(b))
	}
	for i := range a {
		if len(a[i].Ints) != len(b[i].Ints) || len(a[i].Elems) != len(b[i].Elems) {
			t.Fatalf("%s: message %d shape differs", name, i)
		}
		for j := range a[i].Ints {
			if a[i].Ints[j] != b[i].Ints[j] {
				t.Fatalf("%s: message %d int %d differs: %d vs %d", name, i, j, a[i].Ints[j], b[i].Ints[j])
			}
		}
		for j := range a[i].Elems {
			if a[i].Elems[j] != b[i].Elems[j] {
				t.Fatalf("%s: message %d elem %d differs: %d vs %d", name, i, j, a[i].Elems[j], b[i].Elems[j])
			}
		}
	}
}

// TestParallelProversBitIdenticalTranscripts: for every protocol that
// threads a Workers option, the parallel prover must emit the exact
// transcript of the serial prover and still be accepted.
func TestParallelProversBitIdenticalTranscripts(t *testing.T) {
	f := field.Mersenne()
	const u = 1 << 13
	ups := stream.UniformDeltas(u, 100, field.NewSplitMix64(61))
	zipf, err := stream.Zipf(1<<8, 4<<8, 1.2, field.NewSplitMix64(62))
	if err != nil {
		t.Fatal(err)
	}

	type runResult struct {
		msgs []Msg
	}
	run := func(t *testing.T, workers int, seed uint64, build func(workers int) (ProverSession, VerifierSession, error)) runResult {
		t.Helper()
		p, v, err := build(workers)
		if err != nil {
			t.Fatal(err)
		}
		rp := &recordingProver{inner: p}
		if _, err := Run(rp, v); err != nil {
			t.Fatalf("workers=%d: honest prover rejected: %v", workers, err)
		}
		_ = seed
		return runResult{msgs: rp.msgs}
	}

	cases := []struct {
		name  string
		build func(workers int) (ProverSession, VerifierSession, error)
	}{
		{"Fk", func(workers int) (ProverSession, VerifierSession, error) {
			proto, err := NewFk(f, u, 3)
			if err != nil {
				return nil, nil, err
			}
			proto.Workers = workers
			v := proto.NewVerifier(field.NewSplitMix64(63))
			p := proto.NewProver()
			for _, up := range ups {
				if err := v.Observe(up); err != nil {
					return nil, nil, err
				}
				if err := p.Observe(up); err != nil {
					return nil, nil, err
				}
			}
			return p, v, nil
		}},
		{"RangeSum", func(workers int) (ProverSession, VerifierSession, error) {
			proto, err := NewRangeSum(f, u)
			if err != nil {
				return nil, nil, err
			}
			proto.Workers = workers
			v := proto.NewVerifier(field.NewSplitMix64(64))
			p := proto.NewProver()
			for _, up := range ups {
				if err := v.Observe(up); err != nil {
					return nil, nil, err
				}
				if err := p.Observe(up); err != nil {
					return nil, nil, err
				}
			}
			if err := v.SetQuery(10, u/2); err != nil {
				return nil, nil, err
			}
			return p, v, p.SetQuery(10, u/2)
		}},
		{"SubVector", func(workers int) (ProverSession, VerifierSession, error) {
			proto, err := NewSubVector(f, u)
			if err != nil {
				return nil, nil, err
			}
			proto.Workers = workers
			v := proto.NewVerifier(field.NewSplitMix64(65))
			p := proto.NewProver()
			for _, up := range ups {
				if err := v.Observe(up); err != nil {
					return nil, nil, err
				}
				if err := p.Observe(up); err != nil {
					return nil, nil, err
				}
			}
			if err := v.SetQuery(100, 1100); err != nil {
				return nil, nil, err
			}
			return p, v, p.SetQuery(100, 1100)
		}},
		{"F0", func(workers int) (ProverSession, VerifierSession, error) {
			proto, err := NewF0(f, 1<<8, 0)
			if err != nil {
				return nil, nil, err
			}
			proto.Workers = workers
			v := proto.NewVerifier(field.NewSplitMix64(66))
			p := proto.NewProver()
			for _, up := range zipf {
				if err := v.Observe(up); err != nil {
					return nil, nil, err
				}
				if err := p.Observe(up); err != nil {
					return nil, nil, err
				}
			}
			return p, v, nil
		}},
		{"MultiFk", func(workers int) (ProverSession, VerifierSession, error) {
			proto, err := NewMultiFk(f, u, []int{2, 3})
			if err != nil {
				return nil, nil, err
			}
			proto.Workers = workers
			v := proto.NewVerifier(field.NewSplitMix64(67))
			p := proto.NewProver()
			for _, up := range ups {
				for slot := 0; slot < 2; slot++ {
					if err := v.Observe(slot, up); err != nil {
						return nil, nil, err
					}
					if err := p.Observe(slot, up); err != nil {
						return nil, nil, err
					}
				}
			}
			return p, v, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := run(t, 0, 1, tc.build)
			for _, workers := range []int{1, 4, -1} {
				par := run(t, workers, 1, tc.build)
				sameTranscript(t, tc.name, serial.msgs, par.msgs)
			}
		})
	}
}
